package main

import (
	"testing"
	"time"
)

func TestParseMaintenance(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	ws, err := parseMaintenance("DC1-DC4:5m:15m:30s, DC2-DC3:1h:90m", now)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("got %d windows", len(ws))
	}
	w := ws[0]
	if w.SrcDC != "DC1" || w.DstDC != "DC4" {
		t.Fatalf("link %s-%s", w.SrcDC, w.DstDC)
	}
	if !w.Start.Equal(now.Add(5*time.Minute)) || !w.End.Equal(now.Add(15*time.Minute)) || w.Lead != 30*time.Second {
		t.Fatalf("window %+v", w)
	}
	if ws[1].Lead != 0 {
		t.Fatalf("default lead %v", ws[1].Lead)
	}

	for _, bad := range []string{
		"",
		"DC1DC4:5m:15m",
		"DC1-DC4:5m",
		"DC1-DC4:15m:5m",
		"DC1-DC4:x:15m",
		"DC1-DC4:5m:15m:-1s",
	} {
		if _, err := parseMaintenance(bad, now); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
