// Command bate-controller runs the central BATE controller (§4): it
// listens for broker and client connections, admits BA demands in near
// real time, reschedules periodically and precomputes failure backups.
//
// Usage:
//
//	bate-controller -listen :7001 -topology Testbed6 -period 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bate/internal/controller"
	"bate/internal/overload"
	"bate/internal/parallel"
	"bate/internal/partition"
	"bate/internal/paxos"
	"bate/internal/routing"
	"bate/internal/store"
	"bate/internal/topo"
)

func main() {
	listen := flag.String("listen", ":7001", "listen address")
	topoName := flag.String("topology", "Testbed6", "built-in topology name or topology file path")
	period := flag.Duration("period", 10*time.Second, "online scheduler period")
	maxFail := flag.Int("maxfail", 2, "scenario pruning depth y")
	k := flag.Int("k", 4, "tunnels per pair (k-shortest paths)")
	replicaID := flag.Int("replica", 0, "replica id for master election (0 = standalone)")
	electPeers := flag.String("peers", "", "election peers as id=host:port,... (includes self)")
	electListen := flag.String("election-listen", "", "election listen address (required with -replica)")
	procs := flag.Int("procs", 0, "worker pool size for parallel admission/scheduling (0 = all cores)")
	storeDir := flag.String("store", "", "durable state store directory (WAL + snapshots; empty = in-memory only)")
	compactEvery := flag.Duration("compact-every", 5*time.Minute, "store compaction cadence (with -store)")
	noSync := flag.Bool("store-nosync", false, "skip fsync per WAL append (throughput over durability)")
	recoveryDeadline := flag.Duration("recovery-deadline", 2*time.Second, "failure-recovery deadline: backup hit, then budgeted optimal, then greedy floor within this bound")
	electDialTimeout := flag.Duration("election-dial-timeout", time.Second, "per-peer dial timeout during master election")
	electSendTimeout := flag.Duration("election-send-timeout", time.Second, "per-peer send deadline during master election")
	jsonWire := flag.Bool("json-wire", false, "answer every session in the JSON debug codec, ignoring binary negotiation (packet-capture friendly)")
	partitions := flag.Int("partitions", 0, "hierarchical scheduling: split the topology into k regions solved in parallel (0/1 = global LP)")
	partitionGap := flag.Float64("partition-gap", 0, "hierarchical scheduling: max relative optimality-gap bound before falling back to the global LP (0 = 2%)")
	maxInflight := flag.Int("max-inflight", 0, "overload protection: admission gate base concurrency; shed excess client requests with retry-after hints instead of queueing unboundedly (0 = disabled)")
	shedPrio := flag.String("shed-priority", "submit", "overload protection: least-critical class the gate may shed — submit (sheds submits and status polls) or status (sheds only status polls); withdrawals and link events are never shed (with -max-inflight)")
	rateLimit := flag.Float64("rate-limit", 0, "overload protection: per-client token-bucket rate (requests/sec, 0 = unlimited; with -max-inflight)")
	batchLP := flag.Bool("batch-lp", false, "route reschedules above the batch row threshold through the batched matrix-form first-order solver (PDHG) with a transparent simplex fallback")
	maintenance := flag.String("maintenance", "", "planned maintenance windows as SRC-DST:START:END[:LEAD],... with durations relative to startup (e.g. DC1-DC4:5m:15m:30s); each link drains LEAD before START and returns to service at END")
	flag.Parse()

	if *procs < 0 {
		log.Fatal("bate-controller: -procs must be >= 0")
	}
	parallel.SetDefaultSize(*procs)

	net0, err := topo.Resolve(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	tunnels := routing.Compute(net0, routing.KShortest, *k)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("bate-controller: %s on %s, scheduling every %v, %d workers",
		net0, ln.Addr(), *period, parallel.Default().Size())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *replicaID > 0 {
		peers, err := parsePeers(*electPeers)
		if err != nil {
			log.Fatal(err)
		}
		if *electListen == "" {
			log.Fatal("bate-controller: -election-listen is required with -replica")
		}
		eln, err := net.Listen("tcp", *electListen)
		if err != nil {
			log.Fatal(err)
		}
		elector, err := controller.NewElector(paxos.NodeID(*replicaID), peers, *listen, log.Printf)
		if err != nil {
			log.Fatal(err)
		}
		elector.SetDialTimeout(*electDialTimeout)
		elector.SetSendTimeout(*electSendTimeout)
		leader, err := elector.Run(ctx, eln)
		if err != nil {
			log.Fatal(err)
		}
		if !elector.IsLeader() {
			log.Printf("bate-controller: replica %d standing by; master is %s", *replicaID, leader)
			<-ctx.Done()
			return
		}
		log.Printf("bate-controller: replica %d elected master", *replicaID)
	}

	// Only the election winner opens the store (single writer): a
	// promoted standby replays the dead master's WAL and takes over
	// with the full demand book instead of an empty one.
	cfg := controller.Config{
		Net: net0, Tunnels: tunnels, MaxFail: *maxFail, SchedulePeriod: *period,
		RecoveryDeadline: *recoveryDeadline,
		ForceJSONWire:    *jsonWire,
		BatchLP:          *batchLP,
	}
	if *batchLP {
		log.Printf("bate-controller: batched first-order scheduling engine enabled")
	}
	if *maintenance != "" {
		windows, err := parseMaintenance(*maintenance, time.Now())
		if err != nil {
			log.Fatal(err)
		}
		cfg.Maintenance = windows
		log.Printf("bate-controller: %d maintenance windows scheduled", len(windows))
	}
	if *partitions > 1 {
		cfg.Partition = &partition.Options{Regions: *partitions, GapThreshold: *partitionGap}
		log.Printf("bate-controller: hierarchical scheduling over %d regions", *partitions)
	}
	if *maxInflight > 0 {
		prio, err := overload.ParsePriority(*shedPrio)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Overload = &overload.Options{
			MaxInflight:   *maxInflight,
			ShedPriority:  prio,
			RatePerClient: *rateLimit,
		}
		log.Printf("bate-controller: admission gate: %d slots (adaptive), shedding %s and below, %g req/s per client",
			*maxInflight, prio, *rateLimit)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, net0, store.Options{NoSync: *noSync})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		cfg.Store = st
		cfg.CompactEvery = *compactEvery
		log.Printf("bate-controller: durable store at %s (%d WAL records replayed)",
			*storeDir, st.WALRecords())
	}
	ctrl, err := controller.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if err := ctrl.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
}

// parseMaintenance parses "-maintenance SRC-DST:START:END[:LEAD],..."
// into maintenance windows; START/END/LEAD are Go durations measured
// from now (controller startup).
func parseMaintenance(s string, now time.Time) ([]controller.MaintenanceWindow, error) {
	var out []controller.MaintenanceWindow
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fmt.Errorf("bate-controller: bad maintenance window %q (want SRC-DST:START:END[:LEAD])", part)
		}
		src, dst, ok := strings.Cut(fields[0], "-")
		if !ok || src == "" || dst == "" {
			return nil, fmt.Errorf("bate-controller: bad maintenance link %q (want SRC-DST)", fields[0])
		}
		start, err := time.ParseDuration(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bate-controller: maintenance window %q: bad start: %v", part, err)
		}
		end, err := time.ParseDuration(fields[2])
		if err != nil {
			return nil, fmt.Errorf("bate-controller: maintenance window %q: bad end: %v", part, err)
		}
		if end <= start {
			return nil, fmt.Errorf("bate-controller: maintenance window %q ends before it starts", part)
		}
		w := controller.MaintenanceWindow{
			SrcDC: src, DstDC: dst,
			Start: now.Add(start), End: now.Add(end),
		}
		if len(fields) == 4 {
			lead, err := time.ParseDuration(fields[3])
			if err != nil || lead < 0 {
				return nil, fmt.Errorf("bate-controller: maintenance window %q: bad lead %q", part, fields[3])
			}
			w.Lead = lead
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bate-controller: -maintenance given but no windows parsed")
	}
	return out, nil
}

// parsePeers parses "1=host:port,2=host:port" into the election map.
func parsePeers(s string) (map[paxos.NodeID]string, error) {
	peers := make(map[paxos.NodeID]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bate-controller: bad peer %q (want id=addr)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil || id <= 0 {
			return nil, fmt.Errorf("bate-controller: bad peer id %q", kv[0])
		}
		peers[paxos.NodeID(id)] = kv[1]
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("bate-controller: -peers is required with -replica")
	}
	return peers, nil
}
