// Command batesim runs standalone simulations: the per-second
// testbed-style emulation (§5.1), the event-driven large-scale
// simulation (§5.2), or the wire load harness, for any built-in
// topology and TE scheme.
//
// Usage:
//
//	batesim -mode time  -topology Testbed6 -te BATE -horizon 600 -rate 2
//	batesim -mode event -topology B4 -te TEAVAR -admission none -rate 3
//	batesim -mode load  -clients 100000 -wire both -bench-out BENCH_wire.json
//	batesim -mode load  -overload -ramp 5 -bench-out BENCH_overload.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/chaos/soak"
	"bate/internal/demand"
	"bate/internal/metrics"
	"bate/internal/overload"
	"bate/internal/parallel"
	"bate/internal/partition"
	"bate/internal/routing"
	"bate/internal/sim"
	"bate/internal/topo"
	"bate/internal/wire"
)

func parseTE(s string) (sim.TEKind, error) {
	for _, k := range sim.AllKinds() {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown TE scheme %q", s)
}

func parseAdmission(s string) (sim.AdmissionMode, error) {
	switch strings.ToLower(s) {
	case "none":
		return sim.AdmitNone, nil
	case "fixed":
		return sim.AdmitFixedOnly, nil
	case "bate":
		return sim.AdmitBATE, nil
	case "opt", "optimal":
		return sim.AdmitOptimal, nil
	}
	return 0, fmt.Errorf("unknown admission mode %q", s)
}

func main() {
	mode := flag.String("mode", "time", "time (per-second §5.1), event (§5.2), prices (link shadow prices), chaos (full-stack fault-injection soak), or load (wire protocol load harness)")
	topoName := flag.String("topology", "Testbed6", "built-in topology name or topology file path")
	teName := flag.String("te", "BATE", "TE scheme: BATE, FFC, TEAVAR, SWAN, SMORE, B4")
	admName := flag.String("admission", "bate", "admission: none, fixed, bate, opt")
	horizon := flag.Float64("horizon", 600, "simulated seconds")
	rate := flag.Float64("rate", 0.2, "Poisson arrivals per minute per s-d pair")
	durMean := flag.Float64("duration", 300, "mean demand duration (s)")
	bwMin := flag.Float64("bwmin", 10, "min demand bandwidth (Mbps)")
	bwMax := flag.Float64("bwmax", 50, "max demand bandwidth (Mbps)")
	maxFail := flag.Int("maxfail", 2, "scenario pruning depth y")
	seed := flag.Int64("seed", 1, "random seed")
	procs := flag.Int("procs", 0, "worker pool size for parallel admission/scheduling (0 = all cores)")
	workloadIn := flag.String("workload", "", "load the workload from a JSON file instead of generating")
	traceIn := flag.String("trace", "", "replay a link failure trace file (time mode)")
	scenarioName := flag.String("scenario", "", "hostile scenario preset (overrides -workload/-trace/-rate and arms -audit-slo); one of: "+strings.Join(sim.ScenarioFamilies(), ", "))
	scheduleIn := flag.String("schedule", "", "scenario schedule file (srlg/storm/maint/link lines): outages and storms feed the trace, risk groups the scheduler, maintenance windows the proactive drain (time mode)")
	srlgFile := flag.String("srlg-file", "", "schedule file read for its srlg groups only: makes the scheduler and injector correlation-aware without scripting any outages (time mode)")
	srlgStorm := flag.Int("srlg-storm", 0, "generate N seeded SRLG storms over the loaded risk groups (requires -schedule, -srlg-file or -scenario; time mode)")
	auditSLO := flag.Bool("audit-slo", false, "run the online SLO auditor, print the violation breakdown and refund exposure, and fail if the offline recomputation disagrees (time mode)")
	workloadOut := flag.String("save-workload", "", "write the generated workload to a JSON file")
	chaosSeed := flag.Int64("chaos-seed", 0, "seeded fault injection: in time mode, generate a chaos outage trace when -trace is absent; mode 'chaos' runs the full-stack soak under this seed (0 = off)")
	clients := flag.Int("clients", 100000, "load mode: simulated clients (one submit+withdraw each)")
	conns := flag.Int("conns", 32, "load mode: TCP connections multiplexing the clients")
	batch := flag.Int("batch", 64, "load mode: submits per submit-batch frame")
	wireName := flag.String("wire", "both", "load mode: codec to drive — binary, json, or both")
	statusEvery := flag.Int("status-every", 0, "load mode: status poll every N batches per conn (0 = default, <0 = off)")
	realAdm := flag.Bool("load-real", false, "load mode: run the real admission pipeline instead of stub admission")
	benchOut := flag.String("bench-out", "", "load mode: write the bench report JSON here (WireBenchReport, or OverloadBenchReport with -overload)")
	baseline := flag.String("baseline", "", "load mode: committed bench report to gate against")
	tolerance := flag.Float64("tolerance", 0.2, "load mode: fractional regression tolerance for -baseline")
	overloadRun := flag.Bool("overload", false, "load mode: run the overload/backpressure scenario (1x calibration then a -ramp× flood against the admission gate) instead of the codec throughput harness")
	maxInflight := flag.Int("max-inflight", 4, "overload scenario: admission gate base concurrency (AIMD may grow it up to 4×)")
	ramp := flag.Int("ramp", 5, "overload scenario: offered-load multiple of calibrated capacity for the flood phase")
	shedPrio := flag.String("shed-priority", "submit", "overload scenario: least-critical class the gate may shed (submit sheds submits+status, status sheds only status; withdrawals are never shed)")
	clientRetryMax := flag.Int("client-retry-max", 8, "overload scenario: consecutive retry-afters a client tolerates per submission before abandoning it")
	overloadSec := flag.Float64("overload-sec", 2, "overload scenario: wall-clock seconds per phase")
	partitions := flag.Int("partitions", 0, "hierarchical scheduling: split the topology into k regions solved in parallel (0/1 = global LP)")
	partitionGap := flag.Float64("partition-gap", 0, "hierarchical scheduling: max relative optimality-gap bound before falling back to the global LP (0 = 2%)")
	batchLP := flag.Bool("batch-lp", false, "route BATE scheduling rounds above the batch row threshold through the batched matrix-form first-order solver (PDHG) with a transparent simplex fallback")
	flag.Parse()

	if *procs < 0 {
		log.Fatal("batesim: -procs must be >= 0")
	}
	parallel.SetDefaultSize(*procs)

	popts := partitionOptions(*partitions, *partitionGap)
	if *mode == "chaos" {
		runChaosSoak(*chaosSeed, *seed, *partitions)
		return
	}
	if *mode == "load" {
		if *overloadRun {
			runOverloadBench(*topoName, *maxInflight, *ramp, *shedPrio, *clientRetryMax,
				*overloadSec, *seed, *benchOut, *baseline, *tolerance)
			return
		}
		runWireLoad(*topoName, *clients, *conns, *batch, *statusEvery, *wireName, *realAdm, *seed,
			*benchOut, *baseline, *tolerance)
		return
	}

	net0, err := topo.Resolve(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := parseTE(*teName)
	if err != nil {
		log.Fatal(err)
	}
	adm, err := parseAdmission(*admName)
	if err != nil {
		log.Fatal(err)
	}
	tunnels := routing.Compute(net0, routing.KShortest, 4)

	// Assemble the failure schedule: a hostile preset, a schedule file,
	// or an SRLG file (groups only), optionally topped with generated
	// SRLG storms.
	var hostile *sim.HostileScenario
	var sched *sim.Schedule
	if *scenarioName != "" {
		if *workloadIn != "" || *traceIn != "" || *scheduleIn != "" || *srlgFile != "" {
			log.Fatal("batesim: -scenario is a complete preset; drop -workload/-trace/-schedule/-srlg-file")
		}
		hostile, err = sim.BuildHostileScenario(*scenarioName, net0, *horizon, *seed)
		if err != nil {
			log.Fatal(err)
		}
		sched = hostile.Schedule
		*auditSLO = true
	} else if *scheduleIn != "" {
		if *srlgFile != "" || *traceIn != "" {
			log.Fatal("batesim: -schedule already scripts outages; drop -srlg-file/-trace")
		}
		f, err := os.Open(*scheduleIn)
		if err != nil {
			log.Fatal(err)
		}
		sched, err = sim.ParseSchedule(f, net0)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else if *srlgFile != "" {
		f, err := os.Open(*srlgFile)
		if err != nil {
			log.Fatal(err)
		}
		full, err := sim.ParseSchedule(f, net0)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		sched = &sim.Schedule{Groups: full.Groups}
	}
	if *srlgStorm > 0 {
		if sched == nil || len(sched.Groups) == 0 {
			log.Fatal("batesim: -srlg-storm needs risk groups; supply -schedule, -srlg-file or -scenario")
		}
		sched.Storms = append(sched.Storms,
			sim.GenerateSRLGStorms(sched.Groups, *seed, *horizon, *srlgStorm)...)
		fmt.Printf("batesim: generated %d SRLG storms over %d groups\n", *srlgStorm, len(sched.Groups))
	}
	if (sched != nil || *auditSLO) && *mode != "time" {
		log.Fatal("batesim: -scenario/-schedule/-srlg-file/-srlg-storm/-audit-slo apply to -mode time")
	}

	var workload []*demand.Demand
	if hostile != nil {
		workload = hostile.Workload
	} else if *workloadIn != "" {
		f, err := os.Open(*workloadIn)
		if err != nil {
			log.Fatal(err)
		}
		workload, err = demand.Load(f, net0)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		gen := demand.NewGenerator(net0, demand.GeneratorConfig{
			ArrivalsPerMinute: *rate,
			MeanDurationSec:   *durMean,
			MinBandwidth:      *bwMin,
			MaxBandwidth:      *bwMax,
			Targets:           demand.TestbedTargets,
		}, rng)
		workload = gen.Generate(*horizon)
	}
	if *workloadOut != "" {
		f, err := os.Create(*workloadOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := demand.Save(f, net0, workload); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("batesim: wrote %d demands to %s", len(workload), *workloadOut)
	}
	fmt.Printf("batesim: %s, %s TE, %s admission, %d demands over %.0fs\n",
		net0, kind, adm, len(workload), *horizon)

	var trace []sim.FailureEvent
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			log.Fatal(err)
		}
		trace, err = sim.ParseTrace(f, net0)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else if *chaosSeed != 0 {
		// Seed-replayable outage schedule in place of a trace file.
		n := int(*horizon / 60)
		if n < 4 {
			n = 4
		}
		trace = sim.ChaosTrace(net0, *chaosSeed, *horizon, n)
		fmt.Printf("batesim: chaos seed %d: %d scripted outages\n", *chaosSeed, len(trace))
	}

	switch *mode {
	case "time":
		cfg := sim.TimeSimConfig{
			Net: net0, Tunnels: tunnels, Workload: workload,
			HorizonSec: *horizon, ScheduleEverySec: 60,
			TE:        sim.TEConfig{Kind: kind, MaxFail: *maxFail, Partition: popts, BatchLP: *batchLP},
			Admission: adm, MaxFail: *maxFail, Seed: *seed, Trace: trace,
			Audit: *auditSLO,
		}
		if sched != nil {
			// Maintenance windows ride through cfg.Maintenance (drain
			// lead + outage), so strip them before expanding the trace or
			// they would be applied twice.
			noMaint := *sched
			noMaint.Maintenance = nil
			cfg.Trace = append(cfg.Trace, noMaint.AllEvents()...)
			cfg.RiskGroups = sched.Groups
			cfg.TE.Groups = sched.Groups
			cfg.Maintenance = sched.Maintenance
			fmt.Printf("batesim: schedule: %d groups, %d storms, %d maintenance windows, %d trace events\n",
				len(sched.Groups), len(sched.Storms), len(sched.Maintenance), len(cfg.Trace))
		}
		res, err := sim.RunTimeSim(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("arrived=%d admitted=%d rejected=%d\n", res.Arrived, res.Admitted, res.Rejected)
		fmt.Printf("satisfaction=%.2f%% loss=%.4f%% profit=%.0f/%.0f\n",
			res.SatisfactionRatio()*100, res.LossRatio*100, res.Profit, res.FullCharge)
		fmt.Printf("mean admission delay=%.2fms\n", metrics.Mean(res.AdmissionDelaysSec)*1000)
		if *auditSLO {
			reportSLO(workload, res)
		}
	case "event":
		res, err := sim.RunEventSim(sim.EventSimConfig{
			Net: net0, Tunnels: tunnels, Workload: workload,
			HorizonSec: *horizon, ScheduleEverySec: 120,
			TE:        sim.TEConfig{Kind: kind, MaxFail: *maxFail, Partition: popts, BatchLP: *batchLP},
			Admission: adm, MaxFail: *maxFail, ProfitSamples: 1, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("arrived=%d admitted=%d rejected=%d\n", res.Arrived, res.Admitted, res.Rejected)
		fmt.Printf("satisfaction=%.2f%% mean-util=%.2f%% mean-profit-after-failure=%.2f%%\n",
			res.SatisfactionRatio()*100, res.MeanUtilization()*100,
			metrics.Mean(res.ProfitRatios)*100)
	case "prices":
		// Treat the whole workload as concurrently active and price
		// every link's capacity at the scheduling optimum.
		in := &alloc.Input{Net: net0, Tunnels: tunnels, Demands: workload}
		prices, err := bate.LinkPrices(in, bate.ScheduleOptions{MaxFail: *maxFail})
		if err != nil {
			log.Fatal(err)
		}
		t := metrics.NewTable("link", "capacity (Mbps)", "shadow price")
		for _, l := range net0.Links() {
			t.AddRow(
				fmt.Sprintf("%s->%s", net0.NodeName(l.Src), net0.NodeName(l.Dst)),
				fmt.Sprintf("%.0f", l.Capacity),
				fmt.Sprintf("%.4f", prices[l.ID]),
			)
		}
		fmt.Print(t.String())
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// runWireLoad runs the wire load harness (batesim -mode load): 10^5+
// simulated clients against one controller, per codec, optionally
// gating the derived speedup/alloc ratios against a committed
// baseline report.
func runWireLoad(topoName string, clients, conns, batch, statusEvery int, wireName string, realAdm bool, seed int64, benchOut, baseline string, tolerance float64) {
	net0, err := topo.Resolve(topoName)
	if err != nil {
		log.Fatal(err)
	}
	tunnels := routing.Compute(net0, routing.KShortest, 4)
	var codecs []wire.Codec
	switch wireName {
	case "both":
		codecs = []wire.Codec{wire.CodecBinary, wire.CodecJSON}
	default:
		c, err := wire.ParseCodec(wireName)
		if err != nil {
			log.Fatal(err)
		}
		codecs = []wire.Codec{c}
	}
	results := map[wire.Codec]*sim.LoadResult{}
	for _, codec := range codecs {
		res, err := sim.RunLoadSim(sim.LoadConfig{
			Net: net0, Tunnels: tunnels,
			Clients: clients, Conns: conns, Batch: batch,
			StatusEvery: statusEvery,
			Codec:       codec, RealAdmission: realAdm, Seed: seed,
		})
		if err != nil {
			log.Fatalf("batesim: load (%s): %v", codec, err)
		}
		results[codec] = res
		fmt.Printf("wire=%s clients=%d conns=%d batch=%d: %.0f admissions/sec, p50=%.3fms p99=%.3fms, %.1f allocs/op, %.0f bytes/op (%.2fs, %d ops)\n",
			res.Codec, res.Clients, res.Conns, res.Batch,
			res.AdmissionsPerSec, res.P50AckMs, res.P99AckMs,
			res.AllocsPerOp, res.BytesPerOp, res.ElapsedSec, res.OpsTotal)
	}
	report := sim.NewWireBenchReport(net0.Name(), clients, results[wire.CodecBinary], results[wire.CodecJSON])
	if report.Binary != nil && report.JSON != nil {
		fmt.Printf("binary vs json: %.2fx admissions/sec, %.3fx allocs/op\n",
			report.SpeedupAdmissionsPerSec, report.AllocsPerOpRatio)
	}
	if benchOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("batesim: wrote %s", benchOut)
	}
	if baseline != "" {
		data, err := os.ReadFile(baseline)
		if err != nil {
			log.Fatal(err)
		}
		var base sim.WireBenchReport
		if err := json.Unmarshal(data, &base); err != nil {
			log.Fatalf("batesim: parse %s: %v", baseline, err)
		}
		if regs := sim.CompareWireBench(report, &base, tolerance); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("wire-bench gate: within ±%.0f%% of %s\n", tolerance*100, baseline)
	}
}

// runOverloadBench runs the overload scenario (batesim -mode load
// -overload): calibrate goodput at 1x, flood at -ramp× capacity, and
// check that the admission gate sheds lowest-priority-first while
// goodput holds ≥90% of calibration, optionally gating against a
// committed OverloadBenchReport baseline.
func runOverloadBench(topoName string, maxInflight, ramp int, shedPrio string, retryMax int, durationSec float64, seed int64, benchOut, baseline string, tolerance float64) {
	net0, err := topo.Resolve(topoName)
	if err != nil {
		log.Fatal(err)
	}
	prio, err := overload.ParsePriority(shedPrio)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sim.RunOverloadSim(sim.OverloadConfig{
		Net: net0, Tunnels: routing.Compute(net0, routing.KShortest, 4),
		MaxInflight: maxInflight, Ramp: ramp, ShedPriority: prio,
		RetryMax: retryMax, Seed: seed,
		Duration: time.Duration(durationSec * float64(time.Second)),
	})
	if err != nil {
		log.Fatalf("batesim: overload: %v", err)
	}
	for _, res := range []*sim.OverloadResult{report.Baseline, report.Overload} {
		fmt.Printf("phase=%s clients=%d: %.0f admitted/sec (%d offered, %d shed: %d submit/%d status/%d critical, %d gave up), p50=%.3fms p99=%.3fms\n",
			res.Phase, res.Clients, res.GoodputPerSec, res.Offered,
			res.ShedSubmit+res.ShedStatus+res.ShedCritical,
			res.ShedSubmit, res.ShedStatus, res.ShedCritical, res.GaveUp,
			res.P50AckMs, res.P99AckMs)
	}
	fmt.Printf("goodput ratio %.2fx of calibrated capacity at %dx offered load; gate: %d admitted, %d shed, %d queue timeouts, limit %d\n",
		report.GoodputRatio, report.Ramp, report.Gate.Admitted,
		report.Gate.ShedByPrio[overload.PCritical]+report.Gate.ShedByPrio[overload.PSubmit]+report.Gate.ShedByPrio[overload.PStatus],
		report.Gate.Timeouts, report.Gate.Limit)
	if benchOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("batesim: wrote %s", benchOut)
	}
	if baseline != "" {
		data, err := os.ReadFile(baseline)
		if err != nil {
			log.Fatal(err)
		}
		var base sim.OverloadBenchReport
		if err := json.Unmarshal(data, &base); err != nil {
			log.Fatalf("batesim: parse %s: %v", baseline, err)
		}
		if regs := sim.CompareOverloadBench(report, &base, tolerance); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("overload-bench gate: within ±%.0f%% of %s\n", tolerance*100, baseline)
	}
}

// reportSLO prints the audit verdict (violations by cause, refund
// exposure) and cross-checks the online auditor against the offline
// recomputation — the command-line face of the zero-unnoticed-
// violations gate. Exits non-zero when the two disagree.
func reportSLO(workload []*demand.Demand, res *sim.TimeSimResult) {
	violations := map[sim.ViolationCause]int{}
	for _, r := range res.SLOReports {
		if r.Violated {
			violations[r.Cause]++
		}
	}
	total := violations[sim.CauseOutage] + violations[sim.CauseCongestion] + violations[sim.CauseShed] + violations[sim.CauseNone]
	fmt.Printf("slo audit: %d demands audited, %d violated (outage=%d congestion=%d shed=%d), refund exposure=%.0f\n",
		len(res.SLOReports), total,
		violations[sim.CauseOutage], violations[sim.CauseCongestion], violations[sim.CauseShed],
		sim.RefundExposure(res.SLOReports))
	offline := sim.RecomputeSLO(workload, res.SLOLog, 0.01)
	if err := sim.CompareSLOReports(res.SLOReports, offline); err != nil {
		fmt.Fprintf(os.Stderr, "SLO AUDIT MISMATCH: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("slo audit: online matches offline recomputation (%d reports)\n", len(offline))
}

// partitionOptions maps the -partitions/-partition-gap flags to
// ScheduleOptions.Partition (nil when partitioning is off).
func partitionOptions(k int, gap float64) *partition.Options {
	if k <= 1 {
		return nil
	}
	return &partition.Options{Regions: k, GapThreshold: gap}
}

// runChaosSoak drives the full controller stack (election, durable
// store, brokers, lossy client) under a seeded fault schedule and
// prints the run report — the command-line face of the chaos soak
// harness in internal/chaos/soak.
func runChaosSoak(chaosSeed, fallbackSeed int64, partitions int) {
	seed := chaosSeed
	if seed == 0 {
		seed = fallbackSeed
	}
	dir, err := os.MkdirTemp("", "batesim-chaos-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rep, err := soak.Run(soak.Config{Seed: seed, Dir: dir, Partitions: partitions, Logf: log.Printf})
	if err != nil {
		log.Fatalf("batesim: chaos soak: %v", err)
	}
	fmt.Printf("chaos soak seed=%d: leader %s (agreed=%v)\n", rep.Seed, rep.Leader, rep.LeaderAgreed)
	fmt.Printf("demands: %d acked, %d rejected, %d withdrawn, %d on final book (epoch %d)\n",
		len(rep.AckedIDs), rep.Rejected, len(rep.WithdrawnIDs), len(rep.FinalIDs), rep.FinalEpoch)
	fmt.Printf("recovery: %d down events -> %d backup hits, %d optimal, %d greedy (%d fallbacks, max %dms)\n",
		rep.DownEvents, rep.BackupHits, rep.Optimal, rep.Greedy, rep.Fallbacks, rep.MaxRecoveryMs)
	fmt.Printf("degraded modes: %d solver denials, %d broker reconnects, %d WAL repairs, %d append retries\n",
		rep.SolverDenials, rep.Reconnects, rep.StoreRepairs, rep.AppendRetries)
	fmt.Printf("end-state digest: %s\n", rep.Digest)
}
