// Command bateexp regenerates the paper's tables and figures.
//
// Usage:
//
//	bateexp [-quick] [-seed N] all
//	bateexp [-quick] [-seed N] fig13 table3 ...
//	bateexp [-quick] wireload
//	bateexp -list
//
// Each subcommand prints the rows/series of the corresponding paper
// artifact; see EXPERIMENTS.md for the paper-vs-measured record.
// The wireload subcommand is not a paper artifact: it runs the wire
// codec load harness (binary vs JSON) at smoke or full scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bate/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	seed := flag.Int64("seed", 1, "random seed")
	repeats := flag.Int("repeats", 0, "override per-experiment repetition count")
	list := flag.Bool("list", false, "list experiment ids and exit")
	benchOut := flag.String("bench-out", "", "bench runners: write the machine-readable report here")
	baseline := flag.String("baseline", "", "bench runners: gate against this committed report")
	tolerance := flag.Float64("tolerance", 0, "bench runners: fractional regression tolerance for -baseline (0 = 20%)")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: bateexp [-quick] [-seed N] all|<experiment-id>...")
		fmt.Fprintln(os.Stderr, "known experiments:", experiments.IDs())
		os.Exit(2)
	}
	opts := experiments.Options{
		Quick: *quick, Seed: *seed, Repeats: *repeats,
		BenchOut: *benchOut, Baseline: *baseline, Tolerance: *tolerance,
	}

	var runners []experiments.Runner
	if len(args) == 1 && args[0] == "all" {
		runners = experiments.All()
	} else {
		for _, id := range args {
			r, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}
	for _, r := range runners {
		start := time.Now()
		if err := r.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s completed in %v]\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
