// Command bate-broker runs a per-DC broker (§4): it keeps a long-lived
// TCP session to the controller, enforces pushed allocations with
// token-bucket limiters, and reports link events.
//
// Usage:
//
//	bate-broker -dc DC1 -controller localhost:7001
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"
	"time"

	"bate/internal/broker"
	"bate/internal/wire"
)

func main() {
	dc := flag.String("dc", "", "datacenter name (must match a topology node)")
	addr := flag.String("controller", "localhost:7001", "controller address")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats reporting period (0 = off)")
	wireName := flag.String("wire", "binary", "wire codec to negotiate: binary, or json for debugging")
	flag.Parse()
	if *dc == "" {
		log.Fatal("bate-broker: -dc is required")
	}
	codec, err := wire.ParseCodec(*wireName)
	if err != nil {
		log.Fatal(err)
	}

	b := broker.New(*dc, *addr)
	b.SetWireCodec(codec)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := b.ReportStats(); err != nil {
						log.Printf("bate-broker: stats: %v", err)
					}
				}
			}
		}()
	}
	log.Printf("bate-broker: %s connecting to %s", *dc, *addr)
	if err := b.Run(ctx); err != nil {
		log.Fatal(err)
	}
}
