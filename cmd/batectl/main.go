// Command batectl submits BA demands to a running controller and
// withdraws them, and inspects/compacts a controller's durable state
// store offline.
//
// Usage:
//
//	batectl -controller localhost:7001 submit -src DC1 -dst DC4 -bw 500 -target 0.999
//	batectl -controller localhost:7001 withdraw -id 3
//	batectl store inspect -dir /var/lib/bate -topology Testbed6
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"time"

	"bate/internal/store"
	"bate/internal/topo"
	"bate/internal/wire"
)

func main() {
	addr := flag.String("controller", "localhost:7001", "controller address")
	wireName := flag.String("wire", "binary", "wire codec to negotiate: binary, or json for debugging with a packet capture")
	retryMax := flag.Int("client-retry-max", 8, "retries when the controller sheds the request with a retry-after hint (overloaded controller); each retry backs off by the hinted delay with jitter")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	if args[0] == "store" {
		// Offline store tooling: no controller connection.
		storeCmd(args[1:])
		return
	}
	codec, err := wire.ParseCodec(*wireName)
	if err != nil {
		log.Fatal(err)
	}
	conn, err := wire.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Role: "client", Codec: codec}}); err != nil {
		log.Fatal(err)
	}

	switch args[0] {
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		src := fs.String("src", "", "source DC")
		dst := fs.String("dst", "", "destination DC")
		bw := fs.Float64("bw", 0, "bandwidth (Mbps)")
		target := fs.Float64("target", 0.99, "availability target (fraction)")
		charge := fs.Float64("charge", 0, "charge (default: 1 per Mbps)")
		refund := fs.Float64("refund", 0.10, "refund fraction on SLA violation")
		fs.Parse(args[1:])
		if *charge == 0 {
			*charge = *bw
		}
		reply, err := sendRetry(conn, &wire.Message{Type: wire.TypeSubmit, Submit: &wire.Submit{
			Src: *src, Dst: *dst, Bandwidth: *bw, Target: *target,
			Charge: *charge, RefundFrac: *refund,
		}}, *retryMax)
		if err != nil {
			log.Fatal(err)
		}
		if reply.AdmitResult == nil {
			log.Fatalf("unexpected reply: %+v", reply)
		}
		r := reply.AdmitResult
		if r.Admitted {
			fmt.Printf("admitted: id=%d method=%s delay=%.2fms\n", r.DemandID, r.Method, r.DelayMs)
		} else {
			fmt.Printf("rejected: method=%s delay=%.2fms\n", r.Method, r.DelayMs)
			os.Exit(1)
		}
	case "status":
		reply, err := sendRetry(conn, &wire.Message{Type: wire.TypeStatus}, *retryMax)
		if err != nil {
			log.Fatal(err)
		}
		if reply.Status == nil {
			log.Fatalf("unexpected reply: %+v", reply)
		}
		fmt.Printf("epoch %d, %d demands\n", reply.Status.Epoch, len(reply.Status.Demands))
		for _, d := range reply.Status.Demands {
			met := "MET"
			if d.Achieved < d.Target {
				met = "AT RISK"
			}
			fmt.Printf("  id=%d %s->%s %.0f Mbps target=%.4g%% achieved=%.4g%% allocated=%.0f Mbps %s\n",
				d.DemandID, d.Src, d.Dst, d.Bandwidth, d.Target*100, d.Achieved*100, d.Allocated, met)
		}
	case "withdraw":
		fs := flag.NewFlagSet("withdraw", flag.ExitOnError)
		id := fs.Int("id", -1, "demand id")
		fs.Parse(args[1:])
		if *id < 0 {
			log.Fatal("batectl: -id is required")
		}
		if _, err := sendRetry(conn, &wire.Message{Type: wire.TypeWithdraw, WithdrawID: *id}, *retryMax); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("withdrawn: id=%d\n", *id)
	default:
		usage()
	}
}

// sendRetry sends m and waits for the reply, honoring the overload
// protocol: a TypeRetryAfter reply means the controller shed the
// request, so back off by the hinted delay (with jitter, so retrying
// clients do not re-collide) and resend, up to retryMax times.
func sendRetry(conn *wire.Conn, m *wire.Message, retryMax int) (*wire.Message, error) {
	for attempt := 0; ; attempt++ {
		if err := conn.Send(m); err != nil {
			return nil, err
		}
		reply, err := conn.Recv()
		if err != nil {
			return nil, err
		}
		if reply.Type != wire.TypeRetryAfter {
			return reply, nil
		}
		hint, reason := 50*time.Millisecond, "overloaded"
		if reply.RetryAfter != nil {
			if reply.RetryAfter.RetryAfterMs > 0 {
				hint = time.Duration(reply.RetryAfter.RetryAfterMs) * time.Millisecond
			}
			if reply.RetryAfter.Reason != "" {
				reason = reply.RetryAfter.Reason
			}
		}
		if attempt >= retryMax {
			return nil, fmt.Errorf("controller shed the request %d times (last: %s); giving up", attempt+1, reason)
		}
		d := time.Duration(float64(hint) * (0.5 + rand.Float64()))
		log.Printf("batectl: controller overloaded (%s), retrying in %v (%d/%d)", reason, d.Round(time.Millisecond), attempt+1, retryMax)
		time.Sleep(d)
	}
}

// storeCmd implements the offline store subcommands. Run these
// against a stopped controller's store directory (the store is
// single-writer; compacting under a live master would race it).
func storeCmd(args []string) {
	if len(args) == 0 {
		usage()
	}
	fs := flag.NewFlagSet("store "+args[0], flag.ExitOnError)
	dir := fs.String("dir", "", "store directory")
	topoName := fs.String("topology", "Testbed6", "built-in topology name or topology file path")
	fs.Parse(args[1:])
	if *dir == "" {
		log.Fatal("batectl: -dir is required")
	}
	net0, err := topo.Resolve(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	switch args[0] {
	case "inspect":
		sum, err := store.Inspect(*dir, net0)
		if err != nil {
			log.Fatal(err)
		}
		printSummary(sum)
	case "compact":
		st, err := store.Open(*dir, net0, store.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		before := st.WALRecords()
		if err := st.Compact(st.Restored()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("compacted: %d WAL records folded into snapshot\n", before)
		sum, err := store.Inspect(*dir, net0)
		if err != nil {
			log.Fatal(err)
		}
		printSummary(sum)
	default:
		usage()
	}
}

func printSummary(sum *store.Summary) {
	fmt.Printf("store %s\n", sum.Dir)
	if sum.SnapshotBytes < 0 {
		fmt.Println("  snapshot: none")
	} else {
		fmt.Printf("  snapshot: %d bytes, %d demands\n", sum.SnapshotBytes, sum.SnapshotDemands)
	}
	fmt.Printf("  wal: %d bytes, %d records", sum.WALBytes, sum.WALRecords)
	if sum.TornTail {
		fmt.Printf(" (torn tail: crash mid-append, truncated on next open)")
	}
	fmt.Println()
	types := make([]store.RecordType, 0, len(sum.RecordsByType))
	for t := range sum.RecordsByType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		fmt.Printf("    %-9s %d\n", t, sum.RecordsByType[t])
	}
	fmt.Printf("  replayed state: %d demands (%d with allocations), epoch %d, %d links down, next id %d\n",
		sum.Demands, sum.AllocatedDemands, sum.Epoch, sum.LinksDown, sum.NextID)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  batectl [-controller addr] [-client-retry-max N] submit -src DC1 -dst DC4 -bw 500 [-target 0.999] [-charge N] [-refund 0.1]
  batectl [-controller addr] [-client-retry-max N] status
  batectl [-controller addr] [-client-retry-max N] withdraw -id N
  batectl store inspect -dir DIR [-topology NAME]
  batectl store compact -dir DIR [-topology NAME]`)
	os.Exit(2)
}
