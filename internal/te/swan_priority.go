package te

import (
	"fmt"
	"sort"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/lp"
)

// SWAN's full design [24] serves three priority classes — interactive,
// elastic and background — allocating higher classes first and letting
// lower classes use what remains. SWANPriority implements that
// progressive allocation; the single-class SWAN above is the paper's
// simplification ("let SWAN maximize the total throughput of all
// users").

// PriorityOf maps a demand to its SWAN class: 0 = interactive (highest)
// and larger numbers are lower classes.
type PriorityOf func(*demand.Demand) int

// PriorityByTarget buckets demands the way an inter-DC operator would:
// four-nines-and-up targets are interactive, anything with a real
// availability target is elastic, best-effort is background.
func PriorityByTarget(d *demand.Demand) int {
	switch {
	case d.Target >= 0.9995:
		return 0
	case d.Target > 0:
		return 1
	default:
		return 2
	}
}

// SWANPriority computes the multi-class SWAN allocation: classes are
// processed from highest priority down, each maximizing its own
// delivered bandwidth subject to the link capacity left over by the
// classes above it.
func SWANPriority(in *alloc.Input, priority PriorityOf) (alloc.Allocation, error) {
	if priority == nil {
		priority = PriorityByTarget
	}
	// Group demands by class.
	classes := make(map[int][]*demand.Demand)
	var order []int
	for _, d := range in.Demands {
		c := priority(d)
		if _, ok := classes[c]; !ok {
			order = append(order, c)
		}
		classes[c] = append(classes[c], d)
	}
	sort.Ints(order)

	result := alloc.New(in)
	caps := alloc.FullCapacities(in)
	for _, cls := range order {
		sub := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels, Demands: classes[cls]}
		p := lp.NewProblem()
		p.SetMaximize()
		fv := alloc.AddFlowVars(p, sub, caps, nil)
		gv := grantVars(p, sub)
		for _, d := range sub.Demands {
			for pi := range d.Pairs {
				p.SetCost(gv[d.ID][pi], 1)
				terms := deliveredTerms(sub, fv, d, pi, allUpClass())
				terms = append(terms, lp.Term{Var: gv[d.ID][pi], Coef: -1})
				p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: 0})
			}
		}
		sol, err := p.Solve()
		if err != nil {
			return nil, fmt.Errorf("te: SWAN priority class %d: %w", cls, err)
		}
		classAlloc := fv.Extract(sol)
		// Install and drain the consumed capacity before the next class.
		for _, d := range sub.Demands {
			result[d.ID] = classAlloc[d.ID]
			for pi := range d.Pairs {
				tunnels := sub.TunnelsFor(d, pi)
				for ti, f := range classAlloc[d.ID][pi] {
					if f <= 0 {
						continue
					}
					for _, e := range tunnels[ti].Links {
						caps[e] -= f
						if caps[e] < 0 {
							caps[e] = 0
						}
					}
				}
			}
		}
	}
	return result, nil
}
