// Package te implements the baseline traffic-engineering schemes BATE
// is compared against in §5: FFC [39], TEAVAR [15], SWAN [24], SMORE
// [36] and B4 [26]. All operate on the shared alloc.Input model and
// produce alloc.Allocation bandwidth assignments.
//
// TEAVAR is implemented as the chance-constrained variant that shares
// BATE's scenario-class relaxation but applies one global availability
// level β to every demand — precisely the "one-size-fits-all" behaviour
// the paper critiques (§2.1). FFC enumerates every tunnel-state
// reachable with at most k concurrent link failures and guarantees the
// granted bandwidth in all of them.
package te

import (
	"fmt"
	"math"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/lp"
	"bate/internal/scenario"
)

// Scheme names, for experiment tables.
const (
	NameFFC    = "FFC"
	NameTEAVAR = "TEAVAR"
	NameSWAN   = "SWAN"
	NameSMORE  = "SMORE"
	NameB4     = "B4"
)

// grantVars adds one "granted bandwidth" variable per (demand, pair),
// bounded by the demanded bandwidth.
func grantVars(p *lp.Problem, in *alloc.Input) map[int][]lp.VarID {
	gv := make(map[int][]lp.VarID, len(in.Demands))
	for _, d := range in.Demands {
		row := make([]lp.VarID, len(d.Pairs))
		for pi, pr := range d.Pairs {
			row[pi] = p.AddVariable(fmt.Sprintf("g[d%d,p%d]", d.ID, pi), 0, pr.Bandwidth, 0)
		}
		gv[d.ID] = row
	}
	return gv
}

// deliveredTerms returns the LP terms Σ_t f^t_d v_t for pair pi of d,
// restricted to tunnels up in the class mask (bit numbering follows
// alloc.Input.AllTunnelsFor: pairs concatenated in order).
func deliveredTerms(in *alloc.Input, fv alloc.FlowVars, d *demand.Demand, pi int, cls scenario.Class) []lp.Term {
	bit := 0
	for q := 0; q < pi; q++ {
		bit += len(in.TunnelsFor(d, q))
	}
	tunnels := in.TunnelsFor(d, pi)
	terms := make([]lp.Term, 0, len(tunnels))
	for ti := range tunnels {
		if cls.TunnelUp(bit + ti) {
			terms = append(terms, lp.Term{Var: fv[d.ID][pi][ti], Coef: 1})
		}
	}
	return terms
}

// allUpClass returns a class in which every tunnel is up.
func allUpClass() scenario.Class { return scenario.Class{UpMask: math.MaxUint64} }

// FFC computes the Forward Fault Correction allocation protecting
// against any combination of at most k concurrent link failures. It is
// a two-stage LP: first maximize the common granted fraction t of
// every demand (the conservative even scaling of Fig. 2(b)), then
// maximize the total granted bandwidth holding t.
func FFC(in *alloc.Input, k int) (alloc.Allocation, error) {
	if k < 0 {
		return nil, fmt.Errorf("te: FFC k=%d must be >= 0", k)
	}
	classes, err := demandClasses(in, k)
	if err != nil {
		return nil, err
	}
	// Stage 1: max t with granted >= t * b.
	build := func(tFixed float64) (*lp.Problem, alloc.FlowVars, map[int][]lp.VarID, lp.VarID) {
		p := lp.NewProblem()
		p.SetMaximize()
		fv := alloc.AddFlowVars(p, in, alloc.FullCapacities(in), nil)
		gv := grantVars(p, in)
		var tv lp.VarID = -1
		if tFixed < 0 {
			tv = p.AddVariable("t", 0, 1, 1)
		}
		for _, d := range in.Demands {
			for pi, pr := range d.Pairs {
				if pr.Bandwidth <= 0 {
					continue
				}
				if tFixed < 0 {
					// granted - t*b >= 0
					p.AddConstraint(lp.Constraint{
						Terms: []lp.Term{{Var: gv[d.ID][pi], Coef: 1}, {Var: tv, Coef: -pr.Bandwidth}},
						Op:    lp.GE, RHS: 0,
					})
				} else {
					p.AddConstraint(lp.Constraint{
						Terms: []lp.Term{{Var: gv[d.ID][pi], Coef: 1}},
						Op:    lp.GE, RHS: tFixed * pr.Bandwidth,
					})
					p.SetCost(gv[d.ID][pi], 1)
				}
				// FFC protection: delivered >= granted in every ≤k-failure class.
				for _, cls := range classes[d.ID] {
					terms := deliveredTerms(in, fv, d, pi, cls)
					terms = append(terms, lp.Term{Var: gv[d.ID][pi], Coef: -1})
					p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: 0})
				}
			}
		}
		return p, fv, gv, tv
	}
	p1, _, _, tv := build(-1)
	sol1, err := p1.Solve()
	if err != nil {
		return nil, fmt.Errorf("te: FFC stage 1: %w", err)
	}
	t := sol1.Value(tv)
	p2, fv, gv, _ := build(t * (1 - 1e-9))
	sol2, err := p2.Solve()
	if err != nil {
		return nil, fmt.Errorf("te: FFC stage 2: %w", err)
	}
	a := fv.Extract(sol2)
	// FFC flows send at their guaranteed rate g, spread over the
	// protection split: scale each pair's allocation down so it sums
	// to g (the conservative behaviour of Fig. 2(b) and Table 3).
	for _, d := range in.Demands {
		for pi := range d.Pairs {
			g := sol2.Value(gv[d.ID][pi])
			sum := 0.0
			for _, f := range a[d.ID][pi] {
				sum += f
			}
			if sum <= g || sum <= 0 {
				continue
			}
			scale := g / sum
			for ti := range a[d.ID][pi] {
				a[d.ID][pi][ti] *= scale
			}
		}
	}
	return a, nil
}

// demandClasses computes, per demand, the tunnel-state classes
// reachable with at most k concurrent failures.
func demandClasses(in *alloc.Input, k int) (map[int][]scenario.Class, error) {
	out := make(map[int][]scenario.Class, len(in.Demands))
	for _, d := range in.Demands {
		cls, _, err := scenario.CachedClassesFor(in.Net, nil, in.AllTunnelsFor(d), k)
		if err != nil {
			return nil, fmt.Errorf("te: classes for demand %d: %w", d.ID, err)
		}
		out[d.ID] = cls
	}
	return out, nil
}

// TEAVAR computes a one-size-fits-all availability allocation in two
// stages, mirroring the utilization-availability balance of [15]:
// first maximize total granted bandwidth (network utilization), then —
// holding the grants — maximize every demand's class-weighted
// availability toward the single global level beta. All demands share
// the same β pressure regardless of their own targets (the §2.1
// critique); availability above β earns only a vanishing reward.
func TEAVAR(in *alloc.Input, beta float64, maxFail int) (alloc.Allocation, error) {
	if beta < 0 || beta >= 1 {
		return nil, fmt.Errorf("te: TEAVAR beta=%v out of [0,1)", beta)
	}
	classes, err := demandClasses(in, maxFail)
	if err != nil {
		return nil, err
	}
	// Stage 1: pure throughput.
	first, err := SWAN(in)
	if err != nil {
		return nil, fmt.Errorf("te: TEAVAR stage 1: %w", err)
	}
	granted := make(map[int][]float64, len(in.Demands))
	for _, d := range in.Demands {
		row := make([]float64, len(d.Pairs))
		for pi, pr := range d.Pairs {
			row[pi] = math.Min(first.AllocatedFor(d, pi), pr.Bandwidth)
		}
		granted[d.ID] = row
	}
	// Stage 2: same grants, maximum uniform availability.
	p := lp.NewProblem()
	p.SetMaximize()
	fv := alloc.AddFlowVars(p, in, alloc.FullCapacities(in), nil)
	for _, d := range in.Demands {
		cls := classes[d.ID]
		bv := make([]lp.VarID, len(cls))
		availTerms := make([]lp.Term, 0, len(cls))
		for ci, c := range cls {
			// Availability beyond β earns nothing (TEAVAR's CVaR is
			// blind past its level); the slack below β costs 100, so
			// every demand is pushed to the same β and no further —
			// the one-size-fits-all behaviour of §2.1.
			bv[ci] = p.AddVariable(fmt.Sprintf("B[d%d,c%d]", d.ID, ci), 0, 1, 0)
			availTerms = append(availTerms, lp.Term{Var: bv[ci], Coef: c.Prob})
		}
		slack := p.AddVariable(fmt.Sprintf("s[d%d]", d.ID), 0, beta, -100)
		availTerms = append(availTerms, lp.Term{Var: slack, Coef: 1})
		p.AddConstraint(lp.Constraint{Terms: availTerms, Op: lp.GE, RHS: beta})
		for pi, pr := range d.Pairs {
			if pr.Bandwidth <= 0 {
				continue
			}
			g := granted[d.ID][pi]
			// The grant must remain deliverable with all tunnels up.
			anchor := deliveredTerms(in, fv, d, pi, allUpClass())
			p.AddConstraint(lp.Constraint{Terms: anchor, Op: lp.GE, RHS: g * (1 - 1e-9)})
			for ci, c := range cls {
				// delivered ≥ B·granted is bilinear; linearize around
				// the full demand: delivered_cls ≥ b·B - (b - granted).
				terms := deliveredTerms(in, fv, d, pi, c)
				terms = append(terms, lp.Term{Var: bv[ci], Coef: -pr.Bandwidth})
				p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: g - pr.Bandwidth})
			}
		}
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, fmt.Errorf("te: TEAVAR stage 2: %w", err)
	}
	return fv.Extract(sol), nil
}

// SWAN maximizes total throughput with no failure protection [24]
// (single priority class; the paper lets SWAN "maximize the total
// throughput of all users").
func SWAN(in *alloc.Input) (alloc.Allocation, error) {
	p := lp.NewProblem()
	p.SetMaximize()
	fv := alloc.AddFlowVars(p, in, alloc.FullCapacities(in), nil)
	gv := grantVars(p, in)
	for _, d := range in.Demands {
		for pi := range d.Pairs {
			p.SetCost(gv[d.ID][pi], 1)
			terms := deliveredTerms(in, fv, d, pi, allUpClass())
			terms = append(terms, lp.Term{Var: gv[d.ID][pi], Coef: -1})
			p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: 0})
		}
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, fmt.Errorf("te: SWAN: %w", err)
	}
	return fv.Extract(sol), nil
}

// SMORE pairs oblivious-routing tunnels with adaptive rate allocation
// [36]: maximize total throughput, then minimize the maximum link
// utilization among throughput-optimal allocations (its load-balancing
// objective). The caller supplies oblivious tunnels in the input; the
// LP itself is routing-agnostic.
func SMORE(in *alloc.Input) (alloc.Allocation, error) {
	// Stage 1: throughput.
	first, err := SWAN(in)
	if err != nil {
		return nil, fmt.Errorf("te: SMORE stage 1: %w", err)
	}
	granted := make(map[int][]float64, len(in.Demands))
	total := 0.0
	for _, d := range in.Demands {
		row := make([]float64, len(d.Pairs))
		for pi, pr := range d.Pairs {
			got := math.Min(first.AllocatedFor(d, pi), pr.Bandwidth)
			row[pi] = got
			total += got
		}
		granted[d.ID] = row
	}
	// Stage 2: same throughput, minimum max-utilization.
	p := lp.NewProblem()
	fv := alloc.AddFlowVars(p, in, alloc.FullCapacities(in), nil)
	u := p.AddVariable("maxutil", 0, 1, 1) // minimize U
	for _, l := range in.Net.Links() {
		// link load - U*cap <= 0; rebuild load terms from tunnels.
		var terms []lp.Term
		for _, d := range in.Demands {
			for pi := range d.Pairs {
				tunnels := in.TunnelsFor(d, pi)
				for ti, t := range tunnels {
					if t.Uses(l.ID) {
						terms = append(terms, lp.Term{Var: fv[d.ID][pi][ti], Coef: 1})
					}
				}
			}
		}
		if len(terms) == 0 {
			continue
		}
		terms = append(terms, lp.Term{Var: u, Coef: -l.Capacity})
		p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.LE, RHS: 0})
	}
	for _, d := range in.Demands {
		for pi := range d.Pairs {
			terms := deliveredTerms(in, fv, d, pi, allUpClass())
			p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE,
				RHS: granted[d.ID][pi] * (1 - 1e-9)})
		}
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, fmt.Errorf("te: SMORE stage 2: %w", err)
	}
	_ = total
	return fv.Extract(sol), nil
}

// B4 computes max-min fair allocations via bandwidth waterfilling
// [26]: the common delivered bandwidth level t of all unfrozen demand
// pairs is raised until either some pairs saturate their demand
// (frozen as satisfied) or a bottleneck stops them (frozen at t);
// repeat until every pair is frozen.
func B4(in *alloc.Input) (alloc.Allocation, error) {
	type pairKey struct{ id, pi int }
	frozen := make(map[pairKey]float64) // absolute granted Mbps when frozen
	var lastAlloc alloc.Allocation

	totalPairs := 0
	for _, d := range in.Demands {
		for _, pr := range d.Pairs {
			if pr.Bandwidth > 0 {
				totalPairs++
			}
		}
	}

	for round := 0; len(frozen) < totalPairs && round <= totalPairs; round++ {
		// The water level cannot exceed the smallest unfrozen demand.
		minB := math.Inf(1)
		for _, d := range in.Demands {
			for pi, pr := range d.Pairs {
				if pr.Bandwidth <= 0 {
					continue
				}
				if _, ok := frozen[pairKey{d.ID, pi}]; !ok && pr.Bandwidth < minB {
					minB = pr.Bandwidth
				}
			}
		}
		p := lp.NewProblem()
		p.SetMaximize()
		fv := alloc.AddFlowVars(p, in, alloc.FullCapacities(in), nil)
		tv := p.AddVariable("t", 0, minB, 1)
		for _, d := range in.Demands {
			for pi, pr := range d.Pairs {
				if pr.Bandwidth <= 0 {
					continue
				}
				terms := deliveredTerms(in, fv, d, pi, allUpClass())
				if fr, ok := frozen[pairKey{d.ID, pi}]; ok {
					p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE,
						RHS: fr * (1 - 1e-9)})
				} else {
					terms = append(terms, lp.Term{Var: tv, Coef: -1})
					p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: 0})
				}
			}
		}
		sol, err := p.Solve()
		if err != nil {
			return nil, fmt.Errorf("te: B4 round %d: %w", round, err)
		}
		t := sol.Value(tv)
		// Refinement: hold the water level, maximize total granted so
		// pairs with slack rise above t before the freeze test.
		p2 := lp.NewProblem()
		p2.SetMaximize()
		fv2 := alloc.AddFlowVars(p2, in, alloc.FullCapacities(in), nil)
		gv2 := grantVars(p2, in)
		for _, d := range in.Demands {
			for pi, pr := range d.Pairs {
				if pr.Bandwidth <= 0 {
					continue
				}
				p2.SetCost(gv2[d.ID][pi], 1)
				terms := deliveredTerms(in, fv2, d, pi, allUpClass())
				gterms := append(append([]lp.Term(nil), terms...),
					lp.Term{Var: gv2[d.ID][pi], Coef: -1})
				p2.AddConstraint(lp.Constraint{Terms: gterms, Op: lp.GE, RHS: 0})
				floor := math.Min(t, pr.Bandwidth)
				if fr, ok := frozen[pairKey{d.ID, pi}]; ok {
					floor = fr
				}
				p2.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE,
					RHS: floor * (1 - 1e-9)})
			}
		}
		sol2, err := p2.Solve()
		if err != nil {
			return nil, fmt.Errorf("te: B4 refine %d: %w", round, err)
		}
		lastAlloc = fv2.Extract(sol2)
		// Freeze saturated pairs (demand met) and bottlenecked pairs
		// (delivered stuck at the water level).
		prevFrozen := len(frozen)
		for _, d := range in.Demands {
			for pi, pr := range d.Pairs {
				k := pairKey{d.ID, pi}
				if _, ok := frozen[k]; ok || pr.Bandwidth <= 0 {
					continue
				}
				delivered := lastAlloc.AllocatedFor(d, pi)
				switch {
				case delivered >= pr.Bandwidth-1e-6:
					frozen[k] = pr.Bandwidth
				case delivered <= t+1e-6:
					frozen[k] = t
				}
			}
		}
		if len(frozen) == prevFrozen {
			// No progress; freeze the rest at their delivered level.
			for _, d := range in.Demands {
				for pi, pr := range d.Pairs {
					k := pairKey{d.ID, pi}
					if _, ok := frozen[k]; !ok && pr.Bandwidth > 0 {
						frozen[k] = lastAlloc.AllocatedFor(d, pi)
					}
				}
			}
		}
	}
	if lastAlloc == nil {
		return alloc.New(in), nil
	}
	return lastAlloc, nil
}
