package te

import (
	"math"
	"testing"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/routing"
	"bate/internal/topo"
)

// fig2Input reproduces the §2.2 motivating example: user1 wants 6 Gbps
// at 99%, user2 wants 12 Gbps at 90%, both DC1->DC4.
func fig2Input(t *testing.T) *alloc.Input {
	t.Helper()
	n := topo.Toy()
	ts := routing.Compute(n, routing.KShortest, 2)
	dc1, _ := n.NodeByName("DC1")
	dc4, _ := n.NodeByName("DC4")
	u1 := &demand.Demand{ID: 0, Pairs: []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 6000}}, Target: 0.99}
	u2 := &demand.Demand{ID: 1, Pairs: []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 12000}}, Target: 0.90}
	return &alloc.Input{Net: n, Tunnels: ts, Demands: []*demand.Demand{u1, u2}}
}

func allUp(routing.Tunnel) bool { return true }

func TestFFCFig2Conservative(t *testing.T) {
	in := fig2Input(t)
	a, err := FFC(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCapacity(in, 1e-3); err != nil {
		t.Fatal(err)
	}
	// FFC's guaranteed bandwidth is capped by what survives any single
	// link failure: user1 gets ≈ 3.33 Gbps, user2 ≈ 6.67 Gbps, each
	// spread evenly over both paths (the Fig. 2(b) numbers: 1.67 and
	// 3.33 Gbps per path).
	u1, u2 := in.Demands[0], in.Demands[1]
	got1 := a.Delivered(in, u1, 0, allUp)
	got2 := a.Delivered(in, u2, 0, allUp)
	if math.Abs(got1-3333) > 40 || math.Abs(got2-6667) > 40 {
		t.Fatalf("FFC granted %v/%v, want ≈ 3333/6667", got1, got2)
	}
	for ti := range in.TunnelsFor(u1, 0) {
		if math.Abs(a[u1.ID][0][ti]-1667) > 40 {
			t.Fatalf("u1 tunnel %d carries %v, want ≈ 1667", ti, a[u1.ID][0][ti])
		}
		if math.Abs(a[u2.ID][0][ti]-3333) > 40 {
			t.Fatalf("u2 tunnel %d carries %v, want ≈ 3333", ti, a[u2.ID][0][ti])
		}
	}
	// Neither demand's bandwidth target is ever fully met — FFC is
	// conservative (the §2.2 critique; Fig. 9 shows demand-level
	// availability 0 for under-allocated FFC demands).
	for _, d := range in.Demands {
		ok, err := alloc.Satisfies(in, a, d, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("demand %d should not meet its BA target under FFC", d.ID)
		}
	}
}

func TestTEAVARFig2GrantsAll(t *testing.T) {
	in := fig2Input(t)
	a, err := TEAVAR(in, 0.90, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCapacity(in, 1e-3); err != nil {
		t.Fatal(err)
	}
	// With a single 90% level, capacity suffices to grant both users
	// their full bandwidth (Fig. 2(c)).
	for _, d := range in.Demands {
		if got := a.Delivered(in, d, 0, allUp); got < d.Pairs[0].Bandwidth-1 {
			t.Fatalf("demand %d delivered %v, want %v", d.ID, got, d.Pairs[0].Bandwidth)
		}
	}
}

func TestTEAVARBetaValidation(t *testing.T) {
	in := fig2Input(t)
	if _, err := TEAVAR(in, 1.0, 2); err == nil {
		t.Fatal("expected beta validation error")
	}
	if _, err := TEAVAR(in, -0.1, 2); err == nil {
		t.Fatal("expected beta validation error")
	}
}

func TestTEAVARHighBetaStillGrantsThroughput(t *testing.T) {
	// TEAVAR trades availability for utilization: even at β = 0.999 it
	// keeps the throughput-maximal grants (stage 1) and only then
	// pushes availability toward β — the one-size-fits-all behaviour
	// that lets high-β demands miss their own targets.
	in := fig2Input(t)
	a, err := TEAVAR(in, 0.999, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, d := range in.Demands {
		total += math.Min(a.Delivered(in, d, 0, allUp), d.Pairs[0].Bandwidth)
	}
	if total < 18000-1 {
		t.Fatalf("granted %v, want full 18000 despite high beta", total)
	}
	// The stage-2 availability push places user1 (the smaller demand)
	// on a mix that keeps both demands' availability at least at the
	// two-path level.
	for _, d := range in.Demands {
		av, err := alloc.AchievedAvailability(in, a, d, 2)
		if err != nil {
			t.Fatal(err)
		}
		if av < 0.9 {
			t.Fatalf("demand %d availability %v after the β push", d.ID, av)
		}
	}
}

func TestSWANMaxThroughput(t *testing.T) {
	in := fig2Input(t)
	a, err := SWAN(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCapacity(in, 1e-3); err != nil {
		t.Fatal(err)
	}
	// Total demand 18 Gbps fits in the 20 Gbps cut; SWAN should
	// deliver it all.
	total := 0.0
	for _, d := range in.Demands {
		total += math.Min(a.Delivered(in, d, 0, allUp), d.Pairs[0].Bandwidth)
	}
	if total < 18000-1 {
		t.Fatalf("SWAN throughput %v, want 18000", total)
	}
}

func TestSWANSaturatesCut(t *testing.T) {
	// Demand exceeding the 20 Gbps cut: SWAN should deliver exactly
	// the cut.
	n := topo.Toy()
	ts := routing.Compute(n, routing.KShortest, 2)
	dc1, _ := n.NodeByName("DC1")
	dc4, _ := n.NodeByName("DC4")
	d := &demand.Demand{ID: 0, Pairs: []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 50000}}}
	in := &alloc.Input{Net: n, Tunnels: ts, Demands: []*demand.Demand{d}}
	a, err := SWAN(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Delivered(in, d, 0, allUp); math.Abs(got-20000) > 1 {
		t.Fatalf("delivered %v, want 20000", got)
	}
}

func TestB4MaxMinFairness(t *testing.T) {
	// Two equal demands over one shared 10 Gbps bottleneck: each must
	// get half.
	n := topo.NewBuilder("line").
		AddLink("a", "b", 10000, 0.001).
		MustBuild()
	ts := routing.Compute(n, routing.KShortest, 2)
	a0, _ := n.NodeByName("a")
	b0, _ := n.NodeByName("b")
	d1 := &demand.Demand{ID: 0, Pairs: []demand.PairDemand{{Src: a0, Dst: b0, Bandwidth: 8000}}}
	d2 := &demand.Demand{ID: 1, Pairs: []demand.PairDemand{{Src: a0, Dst: b0, Bandwidth: 8000}}}
	in := &alloc.Input{Net: n, Tunnels: ts, Demands: []*demand.Demand{d1, d2}}
	a, err := B4(in)
	if err != nil {
		t.Fatal(err)
	}
	g1 := a.Delivered(in, d1, 0, allUp)
	g2 := a.Delivered(in, d2, 0, allUp)
	if math.Abs(g1-5000) > 10 || math.Abs(g2-5000) > 10 {
		t.Fatalf("B4 shares %v/%v, want 5000/5000", g1, g2)
	}
}

func TestB4UnevenDemands(t *testing.T) {
	// Small demand (2 Gbps) and big demand (20 Gbps) on a 10 Gbps
	// bottleneck: max-min gives the small one all of its demand, the
	// big one the rest.
	n := topo.NewBuilder("line").
		AddLink("a", "b", 10000, 0.001).
		MustBuild()
	ts := routing.Compute(n, routing.KShortest, 2)
	a0, _ := n.NodeByName("a")
	b0, _ := n.NodeByName("b")
	d1 := &demand.Demand{ID: 0, Pairs: []demand.PairDemand{{Src: a0, Dst: b0, Bandwidth: 2000}}}
	d2 := &demand.Demand{ID: 1, Pairs: []demand.PairDemand{{Src: a0, Dst: b0, Bandwidth: 20000}}}
	in := &alloc.Input{Net: n, Tunnels: ts, Demands: []*demand.Demand{d1, d2}}
	a, err := B4(in)
	if err != nil {
		t.Fatal(err)
	}
	g1 := a.Delivered(in, d1, 0, allUp)
	g2 := a.Delivered(in, d2, 0, allUp)
	if g1 < 2000-10 {
		t.Fatalf("small demand got %v, want 2000", g1)
	}
	if g2 < 8000-10 {
		t.Fatalf("big demand got %v, want ≥ 8000", g2)
	}
}

func TestSMORENoWorseThroughputLowerUtil(t *testing.T) {
	in := fig2Input(t)
	swan, err := SWAN(in)
	if err != nil {
		t.Fatal(err)
	}
	smore, err := SMORE(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := smore.CheckCapacity(in, 1e-3); err != nil {
		t.Fatal(err)
	}
	tput := func(a alloc.Allocation) float64 {
		sum := 0.0
		for _, d := range in.Demands {
			sum += math.Min(a.Delivered(in, d, 0, allUp), d.Pairs[0].Bandwidth)
		}
		return sum
	}
	if tput(smore) < tput(swan)-1 {
		t.Fatalf("SMORE throughput %v < SWAN %v", tput(smore), tput(swan))
	}
	if smore.MaxUtilization(in) > swan.MaxUtilization(in)+1e-6 {
		t.Fatalf("SMORE max util %v > SWAN %v", smore.MaxUtilization(in), swan.MaxUtilization(in))
	}
}

func TestFFCValidation(t *testing.T) {
	in := fig2Input(t)
	if _, err := FFC(in, -1); err == nil {
		t.Fatal("expected k validation error")
	}
}

func TestFFCZeroFailures(t *testing.T) {
	// k=0 degenerates to throughput maximization with even scaling.
	in := fig2Input(t)
	a, err := FFC(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range in.Demands {
		if got := a.Delivered(in, d, 0, allUp); got < d.Pairs[0].Bandwidth-1 {
			t.Fatalf("k=0 demand %d delivered %v", d.ID, got)
		}
	}
}

func TestSchemesOnTestbed(t *testing.T) {
	// Smoke test: every scheme allocates within capacity on the 6-DC
	// testbed with the Table 3 demand trio.
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	name := func(s string) topo.NodeID {
		id, _ := n.NodeByName(s)
		return id
	}
	demands := []*demand.Demand{
		{ID: 0, Pairs: []demand.PairDemand{{Src: name("DC1"), Dst: name("DC3"), Bandwidth: 1000}}, Target: 0.995},
		{ID: 1, Pairs: []demand.PairDemand{{Src: name("DC1"), Dst: name("DC4"), Bandwidth: 500}}, Target: 0.999},
		{ID: 2, Pairs: []demand.PairDemand{{Src: name("DC1"), Dst: name("DC5"), Bandwidth: 1500}}, Target: 0.95},
	}
	in := &alloc.Input{Net: n, Tunnels: ts, Demands: demands}
	schemes := map[string]func() (alloc.Allocation, error){
		NameFFC:    func() (alloc.Allocation, error) { return FFC(in, 1) },
		NameTEAVAR: func() (alloc.Allocation, error) { return TEAVAR(in, 0.999, 2) },
		NameSWAN:   func() (alloc.Allocation, error) { return SWAN(in) },
		NameSMORE:  func() (alloc.Allocation, error) { return SMORE(in) },
		NameB4:     func() (alloc.Allocation, error) { return B4(in) },
	}
	for name, f := range schemes {
		a, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := a.CheckCapacity(in, 1e-3); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Total() <= 0 {
			t.Fatalf("%s: empty allocation", name)
		}
	}
}

func TestSWANPriorityInteractiveWins(t *testing.T) {
	// One 10 Gbps bottleneck; an interactive (99.99%) demand and a
	// background bulk demand both want 8 Gbps. Priority SWAN serves the
	// interactive demand fully and gives background the leftovers;
	// single-class SWAN splits arbitrarily.
	n := topo.NewBuilder("line").
		AddLink("a", "b", 10000, 0.0001).
		MustBuild()
	ts := routing.Compute(n, routing.KShortest, 1)
	a0, _ := n.NodeByName("a")
	b0, _ := n.NodeByName("b")
	interactive := &demand.Demand{ID: 0, Pairs: []demand.PairDemand{{Src: a0, Dst: b0, Bandwidth: 8000}}, Target: 0.9999}
	bulk := &demand.Demand{ID: 1, Pairs: []demand.PairDemand{{Src: a0, Dst: b0, Bandwidth: 8000}}, Target: 0}
	in := &alloc.Input{Net: n, Tunnels: ts, Demands: []*demand.Demand{interactive, bulk}}

	a, err := SWANPriority(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCapacity(in, 1e-3); err != nil {
		t.Fatal(err)
	}
	gi := a.Delivered(in, interactive, 0, allUp)
	gb := a.Delivered(in, bulk, 0, allUp)
	if gi < 8000-1 {
		t.Fatalf("interactive got %v, want full 8000", gi)
	}
	if gb > 2000+1 {
		t.Fatalf("background got %v, want the 2000 leftover", gb)
	}
}

func TestSWANPriorityCustomClasses(t *testing.T) {
	in := fig2Input(t)
	// Invert the default: the 90% user outranks the 99% one.
	prio := func(d *demand.Demand) int {
		if d.ID == 1 {
			return 0
		}
		return 1
	}
	a, err := SWANPriority(in, prio)
	if err != nil {
		t.Fatal(err)
	}
	// User2 (12 Gbps) is served first; capacity still covers both.
	if got := a.Delivered(in, in.Demands[1], 0, allUp); got < 12000-1 {
		t.Fatalf("priority user got %v", got)
	}
}

func TestPriorityByTarget(t *testing.T) {
	cases := []struct {
		target float64
		want   int
	}{
		{0.9999, 0}, {0.9995, 0}, {0.999, 1}, {0.9, 1}, {0, 2},
	}
	for _, c := range cases {
		d := &demand.Demand{Target: c.target}
		if got := PriorityByTarget(d); got != c.want {
			t.Errorf("PriorityByTarget(%v) = %d, want %d", c.target, got, c.want)
		}
	}
}
