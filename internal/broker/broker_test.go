package broker

import (
	"testing"
	"time"

	"bate/internal/wire"
)

func TestRateLimiterBasics(t *testing.T) {
	now := time.Unix(0, 0)
	rl := NewRateLimiter(8, 1, now) // 8 Mbps = 1 MB/s, 1s burst
	if got := rl.Rate(); got != 8 {
		t.Fatalf("Rate = %v", got)
	}
	// Bucket starts full: 1 MB available.
	if !rl.Allow(1_000_000, now) {
		t.Fatal("full bucket should allow 1 MB")
	}
	if rl.Allow(1, now) {
		t.Fatal("empty bucket should refuse")
	}
	// After 0.5 s, ~500 KB refilled.
	later := now.Add(500 * time.Millisecond)
	if !rl.Allow(400_000, later) {
		t.Fatal("refill should allow 400 KB after 0.5s")
	}
	if rl.Allow(200_000, later) {
		t.Fatal("over-budget send should be refused")
	}
}

func TestRateLimiterCapsAtBurst(t *testing.T) {
	now := time.Unix(0, 0)
	rl := NewRateLimiter(8, 1, now)
	// After a long idle the bucket must not exceed one burst.
	much := now.Add(time.Hour)
	if !rl.Allow(1_000_000, much) {
		t.Fatal("burst should be available")
	}
	if rl.Allow(1_000_000, much) {
		t.Fatal("bucket must cap at one burst second")
	}
}

func TestRateLimiterSetRate(t *testing.T) {
	now := time.Unix(0, 0)
	rl := NewRateLimiter(8, 1, now)
	rl.SetRate(80, now)
	if got := rl.Rate(); got != 80 {
		t.Fatalf("Rate = %v after SetRate", got)
	}
	// Tokens clamp to the new burst (10 MB) - already below it.
	if !rl.Allow(1_000_000, now) {
		t.Fatal("tokens should persist across SetRate")
	}
	// Rate decrease clamps tokens down.
	rl2 := NewRateLimiter(80, 1, now)
	rl2.SetRate(8, now)
	if rl2.Allow(2_000_000, now) {
		t.Fatal("tokens must clamp to the lower burst")
	}
	if rl.Allow(-1, now) {
		t.Fatal("negative size must be refused")
	}
}

func TestRateLimiterSustainedRate(t *testing.T) {
	now := time.Unix(0, 0)
	rl := NewRateLimiter(8, 0.1, now) // 1 MB/s
	sent := 0
	const chunk = 10_000
	for i := 0; i < 2000; i++ {
		now = now.Add(time.Millisecond)
		for rl.Allow(chunk, now) {
			sent += chunk
		}
	}
	// 2 s at 1 MB/s ≈ 2 MB (plus one burst).
	if sent < 1_900_000 || sent > 2_300_000 {
		t.Fatalf("sustained send %d bytes over 2s, want ≈ 2 MB", sent)
	}
}

func TestNextHopFor(t *testing.T) {
	hops := []string{"DC1", "DC2", "DC5", "DC4"}
	cases := []struct{ dc, want string }{
		{"DC1", "DC2"},
		{"DC2", "DC5"},
		{"DC5", "DC4"},
		{"DC4", ""}, // destination forwards nothing
		{"DC9", ""},
	}
	for _, c := range cases {
		if got := nextHopFor(c.dc, hops); got != c.want {
			t.Errorf("nextHopFor(%s) = %q, want %q", c.dc, got, c.want)
		}
	}
}

func TestApplyAlloc(t *testing.T) {
	b := New("DC2", "unused:0")
	b.SetLogf(func(string, ...interface{}) {})
	label1, _ := wire.Label(1, 0)
	label2, _ := wire.Label(2, 1)
	b.applyAlloc(&wire.AllocUpdate{
		Epoch: 3,
		Tunnels: []wire.TunnelAlloc{
			{Label: label1, Hops: []string{"DC1", "DC2", "DC3"}, Rate: 100},
			{Label: label2, Hops: []string{"DC4", "DC5"}, Rate: 50}, // not via DC2
		},
	})
	if b.Epoch() != 3 {
		t.Fatalf("epoch = %d", b.Epoch())
	}
	if b.NumEntries() != 1 {
		t.Fatalf("entries = %d, want 1 (only the DC2 tunnel)", b.NumEntries())
	}
	e, ok := b.Lookup(label1)
	if !ok || e.NextHop != "DC3" || e.Limiter.Rate() != 100 {
		t.Fatalf("entry %+v", e)
	}
	// A scheduled (non-backup) push replaces the table.
	b.applyAlloc(&wire.AllocUpdate{Epoch: 4, Tunnels: nil})
	if b.NumEntries() != 0 {
		t.Fatal("scheduled push must replace the table")
	}
	// A backup push layers on top.
	b.applyAlloc(&wire.AllocUpdate{
		Epoch: 5, Backup: true,
		Tunnels: []wire.TunnelAlloc{{Label: label1, Hops: []string{"DC2", "DC3"}, Rate: 10}},
	})
	if b.NumEntries() != 1 {
		t.Fatal("backup push must install entries")
	}
}

func TestApplyAllocUpdatesExistingEntry(t *testing.T) {
	b := New("DC1", "unused:0")
	b.SetLogf(func(string, ...interface{}) {})
	label, _ := wire.Label(7, 2)
	push := func(rate float64, backup bool) {
		b.applyAlloc(&wire.AllocUpdate{
			Epoch: 1, Backup: backup,
			Tunnels: []wire.TunnelAlloc{{Label: label, Hops: []string{"DC1", "DC2"}, Rate: rate}},
		})
	}
	push(100, false)
	push(40, true) // backup update reuses the limiter
	e, _ := b.Lookup(label)
	if e.Limiter.Rate() != 40 {
		t.Fatalf("rate = %v, want 40", e.Limiter.Rate())
	}
}

func TestReportWithoutConnection(t *testing.T) {
	b := New("DC1", "unused:0")
	if err := b.ReportLink("DC1", "DC2", false); err == nil {
		t.Fatal("expected not-connected error")
	}
	if err := b.ReportStats(); err == nil {
		t.Fatal("expected not-connected error")
	}
}

// End-to-end data plane: a packet walks the tunnel DC1→DC2→DC5→DC4
// through each broker's forwarding table under rate limiting.
func TestForwardAlongTunnel(t *testing.T) {
	hops := []string{"DC1", "DC2", "DC5", "DC4"}
	label, _ := wire.Label(3, 1)
	brokers := make(map[string]*Broker)
	for _, dc := range hops[:len(hops)-1] {
		b := New(dc, "unused:0")
		b.SetLogf(func(string, ...interface{}) {})
		b.applyAlloc(&wire.AllocUpdate{
			Epoch:   1,
			Tunnels: []wire.TunnelAlloc{{Label: label, Hops: hops, Rate: 8}}, // 1 MB/s
		})
		brokers[dc] = b
	}
	now := time.Unix(0, 0)
	cur := hops[0]
	for cur != hops[len(hops)-1] {
		next, ok := brokers[cur].Forward(label, 1000, now)
		if !ok {
			t.Fatalf("packet dropped at %s", cur)
		}
		cur = next
	}
	// Unknown label drops.
	if _, ok := brokers["DC1"].Forward(0xfff, 100, now); ok {
		t.Fatal("unknown label forwarded")
	}
	// Saturating the limiter drops excess traffic at the ingress.
	dropped := false
	for i := 0; i < 3000; i++ {
		if _, ok := brokers["DC1"].Forward(label, 1000, now); !ok {
			dropped = true
			break
		}
	}
	if !dropped {
		t.Fatal("rate limiter never engaged")
	}
}
