package broker

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"bate/internal/metrics"
	"bate/internal/wire"
)

var mReconnects = metrics.NewCounter("broker.reconnects")

// ForwardingEntry is one label-switched rule on the DC's edge switch:
// traffic carrying Label leaves toward NextHop at the enforced rate.
type ForwardingEntry struct {
	Label   uint32
	NextHop string
	Limiter *RateLimiter
}

// Broker is the per-DC agent of §4. It keeps a long-lived TCP session
// to the controller, enforces pushed allocations, and reports link
// events. All exported methods are safe for concurrent use.
type Broker struct {
	dc   string
	addr string

	mu      sync.Mutex
	conn    *wire.Conn
	epoch   uint64
	entries map[uint32]*ForwardingEntry
	onAlloc func(*wire.AllocUpdate)
	dialer  func(addr string) (*wire.Conn, error)
	codec   wire.Codec

	logf func(string, ...interface{})
}

// New creates a broker for datacenter dc that will connect to the
// controller at addr. Sessions negotiate the binary wire codec by
// default; SetWireCodec selects the JSON debug codec instead.
func New(dc, addr string) *Broker {
	return &Broker{
		dc:      dc,
		addr:    addr,
		entries: make(map[uint32]*ForwardingEntry),
		codec:   wire.CodecBinary,
		logf:    log.Printf,
	}
}

// SetLogf overrides the logger (tests use a silent one).
func (b *Broker) SetLogf(f func(string, ...interface{})) { b.logf = f }

// SetWireCodec selects the codec the broker's Hello negotiates
// (default binary). Set before Run.
func (b *Broker) SetWireCodec(c wire.Codec) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.codec = c
}

// SetDialer replaces the controller dialer, e.g. with a chaos-wrapped
// one. Set before Run.
func (b *Broker) SetDialer(dial func(addr string) (*wire.Conn, error)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dialer = dial
}

// OnAlloc registers a callback invoked after each applied allocation
// update (used by examples to observe pushes).
func (b *Broker) OnAlloc(f func(*wire.AllocUpdate)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onAlloc = f
}

// Run keeps a controller session alive until ctx is cancelled: it
// connects, processes pushes, and on any connection failure redials
// with jittered exponential backoff (capped at 5s). State survives
// disconnects — forwarding entries keep enforcing the last applied
// epoch while the session is down, and the controller re-pushes the
// current allocation on hello, which re-syncs the epoch. Run returns
// nil on ctx cancellation and an error only for failures that cannot
// heal by reconnecting.
func (b *Broker) Run(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		err := b.session(ctx)
		if ctx.Err() != nil {
			return nil
		}
		if err == nil {
			// Session loops exit only on error or cancellation.
			err = fmt.Errorf("broker %s: session closed", b.dc)
		}
		mReconnects.Inc()
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2+1)))
		b.logf("broker %s: session lost (%v), reconnecting in %v (last epoch %d still enforced)",
			b.dc, err, sleep, b.Epoch())
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(sleep):
		}
		if backoff < 5*time.Second {
			backoff *= 2
			if backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
		}
	}
}

// session runs one connect-hello-receive loop.
func (b *Broker) session(ctx context.Context) error {
	b.mu.Lock()
	dial := b.dialer
	b.mu.Unlock()
	if dial == nil {
		dial = wire.Dial
	}
	conn, err := dial(b.addr)
	if err != nil {
		return err
	}
	b.mu.Lock()
	b.conn = conn
	epoch := b.epoch
	codec := b.codec
	b.mu.Unlock()
	defer func() {
		conn.Close()
		b.mu.Lock()
		if b.conn == conn {
			b.conn = nil
		}
		b.mu.Unlock()
	}()
	if err := conn.Send(&wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Role: "broker", DC: b.dc, Codec: codec}}); err != nil {
		return err
	}
	if epoch > 0 {
		b.logf("broker %s: reconnected, awaiting re-sync from epoch %d", b.dc, epoch)
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	for {
		m, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("broker %s: %w", b.dc, err)
		}
		switch m.Type {
		case wire.TypeAllocUpdate:
			b.applyAlloc(m.Alloc)
		case wire.TypePing:
			conn.Send(&wire.Message{Type: wire.TypePong, Seq: m.Seq})
		default:
			b.logf("broker %s: unexpected message %s", b.dc, m.Type)
		}
	}
}

// applyAlloc installs forwarding entries and rate limits from an
// allocation push, replacing the previous epoch's rules.
func (b *Broker) applyAlloc(u *wire.AllocUpdate) {
	if u == nil {
		return
	}
	now := time.Now()
	b.mu.Lock()
	// Backup activations layer on top of the current epoch; scheduled
	// pushes replace the table.
	if !u.Backup {
		b.entries = make(map[uint32]*ForwardingEntry, len(u.Tunnels))
	}
	for _, t := range u.Tunnels {
		next := nextHopFor(b.dc, t.Hops)
		if next == "" {
			continue // tunnel does not traverse this DC
		}
		if e, ok := b.entries[t.Label]; ok {
			e.NextHop = next
			e.Limiter.SetRate(t.Rate, now)
			continue
		}
		b.entries[t.Label] = &ForwardingEntry{
			Label:   t.Label,
			NextHop: next,
			Limiter: NewRateLimiter(t.Rate, 0.1, now),
		}
	}
	b.epoch = u.Epoch
	cb := b.onAlloc
	b.mu.Unlock()
	if cb != nil {
		cb(u)
	}
}

// nextHopFor returns the hop after dc in the tunnel's hop list, or ""
// if dc is not on the tunnel (or is its destination).
func nextHopFor(dc string, hops []string) string {
	for i := 0; i+1 < len(hops); i++ {
		if hops[i] == dc {
			return hops[i+1]
		}
	}
	return ""
}

// Lookup returns the forwarding entry for a label, if installed.
func (b *Broker) Lookup(label uint32) (*ForwardingEntry, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[label]
	return e, ok
}

// Epoch returns the allocation epoch last applied.
func (b *Broker) Epoch() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch
}

// NumEntries returns the installed rule count.
func (b *Broker) NumEntries() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// ReportLink sends a link up/down observation to the controller (the
// Network Agent's monitoring duty).
func (b *Broker) ReportLink(srcDC, dstDC string, up bool) error {
	b.mu.Lock()
	conn := b.conn
	b.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("broker %s: not connected", b.dc)
	}
	return conn.Send(&wire.Message{Type: wire.TypeLinkEvent, LinkEvent: &wire.LinkEvent{
		SrcDC: srcDC, DstDC: dstDC, Up: up, AtUnixMs: time.Now().UnixMilli(),
	}})
}

// ReportStats sends the current enforced rates to the controller.
func (b *Broker) ReportStats() error {
	b.mu.Lock()
	conn := b.conn
	rates := make(map[string]float64, len(b.entries))
	for label, e := range b.entries {
		rates[fmt.Sprintf("%#x", label)] = e.Limiter.Rate()
	}
	b.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("broker %s: not connected", b.dc)
	}
	return conn.Send(&wire.Message{Type: wire.TypeStats, Stats: &wire.Stats{DC: b.dc, Rates: rates}})
}

// Forward emulates the label-switched data plane: a packet of n bytes
// carrying label arrives at this DC's edge switch and is forwarded to
// the tunnel's next hop if (and only if) the entry exists and its
// enforced rate admits the packet. It returns the next-hop DC name.
func (b *Broker) Forward(label uint32, n int, now time.Time) (string, bool) {
	b.mu.Lock()
	e, ok := b.entries[label]
	b.mu.Unlock()
	if !ok {
		return "", false // no rule: drop (§4: ingress marks, others match)
	}
	if !e.Limiter.Allow(n, now) {
		return "", false // rate-limited by the Bandwidth Enforcer
	}
	return e.NextHop, true
}
