// Package broker implements the per-DC broker of §4: it receives
// bandwidth allocations from the central controller, enforces them
// with token-bucket rate limiters (the Bandwidth Enforcer), installs
// label-based forwarding entries (the Network Agent), and reports
// link events back to the controller.
package broker

import (
	"sync"
	"time"
)

// RateLimiter is a token-bucket limiter enforcing a tunnel's allocated
// rate. Rates are in Mbps; Allow is called with payload sizes in
// bytes. The bucket holds up to Burst seconds of tokens.
type RateLimiter struct {
	mu       sync.Mutex
	rateBps  float64 // bytes per second
	burstSec float64
	tokens   float64
	last     time.Time
}

// NewRateLimiter returns a limiter for rateMbps with the given burst
// window in seconds (default 0.1 s when <= 0).
func NewRateLimiter(rateMbps, burstSec float64, now time.Time) *RateLimiter {
	if burstSec <= 0 {
		burstSec = 0.1
	}
	rl := &RateLimiter{
		rateBps:  rateMbps * 1e6 / 8,
		burstSec: burstSec,
		last:     now,
	}
	rl.tokens = rl.rateBps * burstSec // start full
	return rl
}

// SetRate updates the enforced rate (controller pushed a new
// allocation). The bucket is clamped to the new burst size.
func (rl *RateLimiter) SetRate(rateMbps float64, now time.Time) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	rl.refill(now)
	rl.rateBps = rateMbps * 1e6 / 8
	if max := rl.rateBps * rl.burstSec; rl.tokens > max {
		rl.tokens = max
	}
}

// Rate returns the enforced rate in Mbps.
func (rl *RateLimiter) Rate() float64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.rateBps * 8 / 1e6
}

// Allow reports whether n bytes may be sent at time now, consuming
// tokens if so.
func (rl *RateLimiter) Allow(n int, now time.Time) bool {
	if n < 0 {
		return false
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	rl.refill(now)
	if float64(n) > rl.tokens {
		return false
	}
	rl.tokens -= float64(n)
	return true
}

// refill adds tokens for elapsed time; callers hold mu.
func (rl *RateLimiter) refill(now time.Time) {
	dt := now.Sub(rl.last).Seconds()
	if dt <= 0 {
		return
	}
	rl.last = now
	rl.tokens += rl.rateBps * dt
	if max := rl.rateBps * rl.burstSec; rl.tokens > max {
		rl.tokens = max
	}
}
