package broker

import (
	"context"
	"net"
	"testing"
	"time"

	"bate/internal/wire"
)

// fakeController accepts broker sessions, answers the hello with one
// alloc push, then optionally kills the session.
func fakeController(t *testing.T, ln net.Listener, epochs []uint64, killAfterPush bool, sessions chan<- struct{}) {
	t.Helper()
	go func() {
		for i := 0; ; i++ {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			conn := wire.New(nc)
			hello, err := conn.Recv()
			if err != nil || hello.Type != wire.TypeHello {
				conn.Close()
				continue
			}
			epoch := epochs[len(epochs)-1]
			if i < len(epochs) {
				epoch = epochs[i]
			}
			conn.Send(&wire.Message{Type: wire.TypeAllocUpdate, Alloc: &wire.AllocUpdate{
				Epoch: epoch,
				Tunnels: []wire.TunnelAlloc{
					{Label: 0x001001, Hops: []string{"DC1", "DC2"}, Rate: 100},
				},
			}})
			select {
			case sessions <- struct{}{}:
			default:
			}
			if killAfterPush {
				conn.Close()
				continue
			}
			go func() {
				for {
					if _, err := conn.Recv(); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()
}

func TestRunReconnectsAfterSessionLoss(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	sessions := make(chan struct{}, 16)
	fakeController(t, ln, []uint64{3, 4, 5}, true, sessions)

	b := New("DC1", ln.Addr().String())
	b.SetLogf(func(string, ...interface{}) {})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	before := mReconnects.Load()
	done := make(chan error, 1)
	go func() { done <- b.Run(ctx) }()

	// The controller kills every session right after its push; the
	// broker must come back at least three times, re-syncing the epoch
	// each time.
	deadline := time.After(10 * time.Second)
	for got := 0; got < 3; {
		select {
		case <-sessions:
			got++
		case <-deadline:
			t.Fatalf("saw only %d sessions before timeout", got)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return b.Epoch() >= 3 })
	if n := mReconnects.Load() - before; n < 2 {
		t.Fatalf("broker.reconnects advanced by %d, want >= 2", n)
	}
	if _, ok := b.Lookup(0x001001); !ok {
		t.Fatal("forwarding entry lost across reconnects")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v on cancellation, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

func TestRunRetriesInitialDial(t *testing.T) {
	// Reserve an address with nothing listening, start the broker, then
	// bring the controller up: the broker's dial retry must find it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	b := New("DC1", addr)
	b.SetLogf(func(string, ...interface{}) {})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- b.Run(ctx) }()

	time.Sleep(150 * time.Millisecond) // let at least one dial fail
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer ln2.Close()
	sessions := make(chan struct{}, 4)
	fakeController(t, ln2, []uint64{9}, false, sessions)

	select {
	case <-sessions:
	case <-time.After(10 * time.Second):
		t.Fatal("broker never reached the late controller")
	}
	waitFor(t, 5*time.Second, func() bool { return b.Epoch() == 9 })
	cancel()
	<-done
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
