package chaos

// TornWALArtifacts derives corrupted WAL byte streams from a set of
// valid record frames: the same fault shapes the disk front produces
// at runtime (short writes, torn tails, partially-flushed pages),
// packaged as fuzz-corpus seeds so the store's record parser is
// exercised on exactly what the injector can leave on disk.
//
// The artifacts are a pure function of (seed, frames): stable corpus
// across runs.
func TornWALArtifacts(seed int64, frames [][]byte) [][]byte {
	if len(frames) == 0 {
		return nil
	}
	inj := New(seed)
	stream := make([]byte, 0)
	for _, f := range frames {
		stream = append(stream, f...)
	}
	pick := func(idx uint64) []byte { return frames[inj.Intn("art/frame", idx, len(frames))] }
	cut := func(b []byte, idx uint64, key string) []byte {
		if len(b) == 0 {
			return b
		}
		return b[:inj.Intn(key, idx, len(b))]
	}
	clone := func(b []byte) []byte { return append([]byte(nil), b...) }

	var out [][]byte
	// Torn tail: the full stream cut mid-record (crash mid-append).
	out = append(out, clone(cut(stream, 0, "art/cut")))
	// Short write followed by a successful retry of the same record —
	// the exact layout a writer without tail repair leaves behind: a
	// partial frame becomes interior garbage once the retry lands.
	f := pick(1)
	short := clone(cut(f, 1, "art/short"))
	out = append(out, append(short, f...))
	// Partially-flushed final page: full-length record with trailing
	// bytes zeroed (CRC mismatch exactly at the tail).
	f = pick(2)
	z := clone(f)
	for k := len(z) - 1 - inj.Intn("art/zero", 2, len(z)/2+1); k < len(z); k++ {
		if k >= 0 {
			z[k] = 0
		}
	}
	out = append(out, z)
	// Bit rot: a mid-stream flip (interior corruption, must be a
	// typed CorruptError, never a truncation).
	r := clone(stream)
	r[inj.Intn("art/flip", 3, len(r))] ^= 0x40
	out = append(out, r)
	// Doubled record (duplicate append after a lost ack) with a torn
	// final copy.
	f = pick(4)
	d := append(clone(f), f...)
	out = append(out, cut(d, 4, "art/dcut"))
	return out
}
