// Package chaos is a deterministic, seed-replayable fault injector
// for BATE's distributed control stack. It attacks three fronts:
//
//   - the wire: net.Conn wrappers injecting delays, mid-frame stalls,
//     connection drops and directional partitions between named
//     endpoints (conn.go), plus message-level drop/duplicate/reorder
//     decisions for protocol state machines (msg.go);
//   - the disk: a store.File-compatible WAL shim injecting short
//     writes and fsync errors (fs.go), and a torn-record artifact
//     generator feeding the WAL fuzz corpus (artifacts.go);
//   - the solver: a budget gate forcing RecoverOptimal / the
//     scheduling LP to "time out" on a deterministic cadence;
//   - admission: a budget gate forcing the overload gate to shed
//     every Nth sheddable request, so the retry-after protocol and
//     priority floor replay deterministically from a seed.
//
// Every decision derives from the seed through counter-indexed
// hashing, never from shared mutable RNG state, so a replay with the
// same seed makes the same calls fail — the property the chaos soak
// harness (internal/chaos/soak) uses to assert byte-identical end
// state across runs.
package chaos

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bate/internal/metrics"
)

// ErrInjected is the sentinel wrapped by every injected fault, so
// callers (and tests) can distinguish chaos from genuine failures.
var ErrInjected = errors.New("chaos: injected fault")

// Front-wide counters; the soak harness snapshots deltas of these to
// prove faults actually fired.
var (
	mConnDelays     = metrics.NewCounter("chaos.conn_delays")
	mConnStalls     = metrics.NewCounter("chaos.conn_stalls")
	mConnDrops      = metrics.NewCounter("chaos.conn_drops")
	mPartitionKills = metrics.NewCounter("chaos.partition_kills")
	mDialRefusals   = metrics.NewCounter("chaos.dial_refusals")
	mShortWrites    = metrics.NewCounter("chaos.fs_short_writes")
	mSyncFails      = metrics.NewCounter("chaos.fs_sync_errors")
	mSolverDenials  = metrics.NewCounter("chaos.solver_denials")
	mMsgDrops       = metrics.NewCounter("chaos.msg_drops")
	mMsgDups        = metrics.NewCounter("chaos.msg_dups")
	mMsgReorders    = metrics.NewCounter("chaos.msg_reorders")
	mAdmitDenials   = metrics.NewCounter("chaos.admission_denials")
)

// Injector derives deterministic fault decisions from a seed. Each
// decision is a pure function of (seed, key, index): no internal
// state, safe for concurrent use, identical across replays.
type Injector struct {
	seed int64
}

// New returns an injector for the given seed.
func New(seed int64) *Injector { return &Injector{seed: seed} }

// Seed returns the injector's seed.
func (i *Injector) Seed() int64 { return i.seed }

// splitmix is the SplitMix64 finalizer: a cheap, well-distributed
// 64-bit mixer.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// word hashes (seed, key, idx) to a 64-bit value.
func (i *Injector) word(key string, idx uint64) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for k := 0; k < len(key); k++ {
		h ^= uint64(key[k])
		h *= 1099511628211
	}
	return splitmix(splitmix(uint64(i.seed)^h) ^ splitmix(idx))
}

// Roll returns a deterministic value in [0,1) for (key, idx).
func (i *Injector) Roll(key string, idx uint64) float64 {
	return float64(i.word(key, idx)>>11) / (1 << 53)
}

// Hit reports a Bernoulli(prob) trial for (key, idx).
func (i *Injector) Hit(key string, idx uint64, prob float64) bool {
	return prob > 0 && i.Roll(key, idx) < prob
}

// Intn returns a deterministic value in [0,n) for (key, idx).
func (i *Injector) Intn(key string, idx uint64, n int) int {
	if n <= 0 {
		return 0
	}
	return int(i.word(key, idx) % uint64(n))
}

// everyNth reports whether the idx-th operation (0-based) fails under
// a fail-every-N cadence: the first failure lands on index n-1, so a
// fresh counter always gets at least n-1 clean operations first and
// failures are never consecutive (n >= 2). A count-based cadence —
// unlike a time window — survives replays with different timing: the
// k-th append fails no matter when it happens.
func everyNth(idx uint64, n int) bool {
	return n >= 2 && idx%uint64(n) == uint64(n-1)
}

// SolverConfig tunes the solver-budget front.
type SolverConfig struct {
	// EveryN fails every Nth solver call per operation kind (0 or 1
	// disables). N >= 2 guarantees the call after a denial succeeds,
	// which is what lets the degraded-mode ladder always terminate.
	EveryN int
	// MidSolveEveryN aborts every Nth solve mid-iteration through the
	// lp Cancel hook (0 or 1 disables): the PivotWatcher for solve k
	// returns an injected error on its very first poll iff
	// everyNth(k, N), exercising the Aborted path rather than the
	// gate-denial path. Counted separately from EveryN so the two
	// cadences compose deterministically.
	MidSolveEveryN int
}

// SolverBudget forces solver "timeouts" on a deterministic cadence.
// Hand its Gate method to bate.ScheduleOptions.Gate /
// bate.RecoverOptions.Gate (via controller.Config.SolverGate).
type SolverBudget struct {
	cfg SolverConfig

	mu    sync.Mutex
	calls map[string]uint64
}

// NewSolverBudget returns a solver-budget injector.
func NewSolverBudget(cfg SolverConfig) *SolverBudget {
	return &SolverBudget{cfg: cfg, calls: make(map[string]uint64)}
}

// Gate implements the solver gate: it counts calls per operation kind
// and denies every Nth with an ErrInjected-wrapped error.
func (s *SolverBudget) Gate(op string) error {
	s.mu.Lock()
	idx := s.calls[op]
	s.calls[op] = idx + 1
	s.mu.Unlock()
	if everyNth(idx, s.cfg.EveryN) {
		mSolverDenials.Inc()
		return fmt.Errorf("solver budget exhausted for %s (call %d): %w", op, idx, ErrInjected)
	}
	return nil
}

// Calls returns how many times op has been gated so far.
func (s *SolverBudget) Calls(op string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[op]
}

// PivotWatcher returns a Cancel closure for one solve of the given
// operation kind, to be passed as lp.Options.Cancel. The solve's
// ordinal is taken at PivotWatcher time (counter key "mid:"+op), and
// the closure denies every poll of every MidSolveEveryN-th solve —
// deterministic in the solve ordinal, independent of pivot timing, so
// replays abort the same solves. With MidSolveEveryN disabled the
// closure is nil, costing the solver nothing.
func (s *SolverBudget) PivotWatcher(op string) func() error {
	if s.cfg.MidSolveEveryN <= 1 {
		return nil
	}
	key := "mid:" + op
	s.mu.Lock()
	idx := s.calls[key]
	s.calls[key] = idx + 1
	s.mu.Unlock()
	if !everyNth(idx, s.cfg.MidSolveEveryN) {
		return nil
	}
	// One closure may be polled from several goroutines at once (the
	// partitioned path hands the same Cancel to every concurrent
	// region sub-solve), so the one-shot metric increment must be
	// atomic.
	var fired atomic.Bool
	return func() error {
		if fired.CompareAndSwap(false, true) {
			mSolverDenials.Inc()
		}
		return fmt.Errorf("mid-solve budget exhausted for %s (solve %d): %w", op, idx, ErrInjected)
	}
}

// AdmissionConfig tunes the admission-budget front.
type AdmissionConfig struct {
	// EveryN sheds every Nth sheddable admission per priority class (0
	// or 1 disables). N >= 2 guarantees the attempt after a denial
	// passes this front, so a retrying client always terminates.
	EveryN int
}

// AdmissionBudget forces priority-aware load sheds on a deterministic
// cadence — the admission-control sibling of SolverBudget. Hand its
// Gate method to overload.Options.ShedGate via a closure mapping the
// priority to its String(). Decisions are counter-indexed per class,
// never time- or queue-state-based, so a replay with the same seed
// sheds the same requests.
type AdmissionBudget struct {
	cfg AdmissionConfig

	mu    sync.Mutex
	calls map[string]uint64
}

// NewAdmissionBudget returns an admission-budget injector.
func NewAdmissionBudget(cfg AdmissionConfig) *AdmissionBudget {
	return &AdmissionBudget{cfg: cfg, calls: make(map[string]uint64)}
}

// Gate counts sheddable acquires per priority class and sheds every
// Nth. The gate only consults it for sheddable classes, so critical
// traffic (withdrawals, link events) can never be injected away.
func (a *AdmissionBudget) Gate(class string) bool {
	a.mu.Lock()
	idx := a.calls[class]
	a.calls[class] = idx + 1
	a.mu.Unlock()
	if everyNth(idx, a.cfg.EveryN) {
		mAdmitDenials.Inc()
		return true
	}
	return false
}

// Calls returns how many times class has been gated so far.
func (a *AdmissionBudget) Calls(class string) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.calls[class]
}

// Partition is a directional connectivity cut between two named
// endpoints, active during [Start, End) relative to Net.Start. Use two
// mirrored entries for a full bidirectional cut.
type Partition struct {
	From  string        `json:"from"`
	To    string        `json:"to"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
}

// LinkOutage is one scheduled link failure in an adversarial failure
// trace, identified by link index (the caller maps indices to its
// topology's link ids).
type LinkOutage struct {
	Link   int     `json:"link"`
	DownAt float64 `json:"down_at_sec"`
	UpAt   float64 `json:"up_at_sec"`
}

// LinkOutages derives a deterministic adversarial outage schedule from
// the seed: roughly half the outages concentrate on one "cursed" link
// (the Fig. 1(b) heavy tail: a few links contribute most failures),
// the rest spread across the others, and outages may overlap so
// concurrent-failure recovery paths get exercised. Outages are sorted
// by DownAt and repaired within the horizon.
func LinkOutages(seed int64, numLinks int, horizon float64, n int) []LinkOutage {
	if numLinks <= 0 || n <= 0 || horizon <= 0 {
		return nil
	}
	inj := New(seed)
	cursed := inj.Intn("outage/cursed", 0, numLinks)
	out := make([]LinkOutage, 0, n)
	for k := 0; k < n; k++ {
		idx := uint64(k)
		link := cursed
		if !inj.Hit("outage/curse", idx, 0.5) {
			link = inj.Intn("outage/link", idx, numLinks)
		}
		downAt := inj.Roll("outage/down", idx) * horizon * 0.8
		dur := (0.02 + 0.08*inj.Roll("outage/dur", idx)) * horizon
		upAt := downAt + dur
		if upAt > horizon {
			upAt = horizon
		}
		out = append(out, LinkOutage{Link: link, DownAt: downAt, UpAt: upAt})
	}
	sortOutages(out)
	return out
}

func sortOutages(out []LinkOutage) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].DownAt < out[j-1].DownAt; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}
