package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestInjectorDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for idx := uint64(0); idx < 200; idx++ {
		if a.Roll("k", idx) != b.Roll("k", idx) {
			t.Fatalf("Roll diverged at idx %d", idx)
		}
		if a.Intn("k", idx, 17) != b.Intn("k", idx, 17) {
			t.Fatalf("Intn diverged at idx %d", idx)
		}
	}
	c := New(43)
	same := 0
	for idx := uint64(0); idx < 200; idx++ {
		if a.Roll("k", idx) == c.Roll("k", idx) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/200 identical rolls", same)
	}
	// Distinct keys decorrelate too.
	same = 0
	for idx := uint64(0); idx < 200; idx++ {
		if a.Roll("k", idx) == a.Roll("k2", idx) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different keys produced %d/200 identical rolls", same)
	}
}

func TestRollDistribution(t *testing.T) {
	inj := New(7)
	hits := 0
	const trials = 10000
	for idx := uint64(0); idx < trials; idx++ {
		if inj.Hit("dist", idx, 0.3) {
			hits++
		}
	}
	frac := float64(hits) / trials
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("Hit(0.3) fired %.3f of the time", frac)
	}
}

func TestEveryNth(t *testing.T) {
	var fired []uint64
	for idx := uint64(0); idx < 10; idx++ {
		if everyNth(idx, 3) {
			fired = append(fired, idx)
		}
	}
	want := []uint64{2, 5, 8}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
	for idx := uint64(0); idx < 10; idx++ {
		if everyNth(idx, 0) || everyNth(idx, 1) {
			t.Fatalf("cadence 0/1 should be disabled, fired at %d", idx)
		}
	}
}

func TestSolverBudgetGate(t *testing.T) {
	sb := NewSolverBudget(SolverConfig{EveryN: 2})
	var denials []int
	for i := 0; i < 6; i++ {
		if err := sb.Gate("recover"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("denial not wrapped in ErrInjected: %v", err)
			}
			denials = append(denials, i)
		}
	}
	if len(denials) != 3 || denials[0] != 1 || denials[1] != 3 || denials[2] != 5 {
		t.Fatalf("denials = %v, want [1 3 5]", denials)
	}
	// Independent per-op counters: a fresh op gets its clean call first.
	if err := sb.Gate("schedule"); err != nil {
		t.Fatalf("first call on new op denied: %v", err)
	}
	if sb.Calls("recover") != 6 || sb.Calls("schedule") != 1 {
		t.Fatalf("calls = %d/%d", sb.Calls("recover"), sb.Calls("schedule"))
	}
}

func TestSolverBudgetPivotWatcher(t *testing.T) {
	// Disabled (0 or 1): nil closures, no counter taken, so enabling
	// the front later cannot shift the gate cadence of a replay.
	for _, n := range []int{0, 1} {
		sb := NewSolverBudget(SolverConfig{MidSolveEveryN: n})
		if c := sb.PivotWatcher("schedule"); c != nil {
			t.Fatalf("MidSolveEveryN=%d: watcher not nil", n)
		}
		if got := sb.Calls("mid:schedule"); got != 0 {
			t.Fatalf("MidSolveEveryN=%d: counter advanced to %d while disabled", n, got)
		}
	}

	sb := NewSolverBudget(SolverConfig{MidSolveEveryN: 3})
	var aborted []int
	for i := 0; i < 9; i++ {
		cancel := sb.PivotWatcher("schedule")
		if cancel == nil {
			continue
		}
		// The closure must deny every poll of the doomed solve, not
		// just the first, so any pivot cadence observes the abort.
		for poll := 0; poll < 3; poll++ {
			err := cancel()
			if err == nil {
				t.Fatalf("solve %d poll %d: doomed solve not denied", i, poll)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("denial not wrapped in ErrInjected: %v", err)
			}
		}
		aborted = append(aborted, i)
	}
	if len(aborted) != 3 || aborted[0] != 2 || aborted[1] != 5 || aborted[2] != 8 {
		t.Fatalf("aborted solves = %v, want [2 5 8]", aborted)
	}
	// The mid-solve counter is keyed separately from the gate's, so
	// the two fronts compose without shifting each other's cadence.
	if err := sb.Gate("schedule"); err != nil {
		t.Fatalf("gate denied with EveryN disabled: %v", err)
	}
	if sb.Calls("mid:schedule") != 9 || sb.Calls("schedule") != 1 {
		t.Fatalf("calls = %d/%d, want 9/1", sb.Calls("mid:schedule"), sb.Calls("schedule"))
	}
}

// TestPivotWatcherConcurrentPolls: the partitioned scheduling path
// hands one watcher closure to every concurrent region sub-solve, so
// polling it from several goroutines must be race-free (run under
// -race) and must increment the denial metric exactly once.
func TestPivotWatcherConcurrentPolls(t *testing.T) {
	sb := NewSolverBudget(SolverConfig{MidSolveEveryN: 2})
	var cancel func() error
	for i := 0; i < 4 && cancel == nil; i++ {
		cancel = sb.PivotWatcher("schedule")
	}
	if cancel == nil {
		t.Fatal("no doomed solve in 4 ordinals with MidSolveEveryN=2")
	}
	before := mSolverDenials.Load()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for poll := 0; poll < 100; poll++ {
				if cancel() == nil {
					t.Error("doomed solve not denied")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := mSolverDenials.Load() - before; got != 1 {
		t.Fatalf("denial metric advanced by %d, want 1", got)
	}
}

func TestAdmissionBudgetGate(t *testing.T) {
	ab := NewAdmissionBudget(AdmissionConfig{EveryN: 3})
	var sheds []int
	for i := 0; i < 9; i++ {
		if ab.Gate("submit") {
			sheds = append(sheds, i)
		}
	}
	if len(sheds) != 3 || sheds[0] != 2 || sheds[1] != 5 || sheds[2] != 8 {
		t.Fatalf("sheds = %v, want [2 5 8]", sheds)
	}
	// Per-class counters: a fresh class gets its clean calls first, so
	// one class's flood cannot starve another's budget.
	if ab.Gate("status") {
		t.Fatal("first call on new class shed")
	}
	if ab.Calls("submit") != 9 || ab.Calls("status") != 1 {
		t.Fatalf("calls = %d/%d", ab.Calls("submit"), ab.Calls("status"))
	}
	// Disabled budgets never shed.
	off := NewAdmissionBudget(AdmissionConfig{})
	for i := 0; i < 8; i++ {
		if off.Gate("submit") {
			t.Fatal("disabled budget shed")
		}
	}
}

func TestLinkOutagesDeterministicAndSorted(t *testing.T) {
	a := LinkOutages(11, 16, 100, 12)
	b := LinkOutages(11, 16, 100, 12)
	if len(a) != 12 || len(b) != 12 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].DownAt < a[i-1].DownAt {
			t.Fatalf("outages not sorted at %d", i)
		}
		if a[i].Link < 0 || a[i].Link >= 16 {
			t.Fatalf("link %d out of range", a[i].Link)
		}
		if a[i].UpAt <= a[i].DownAt || a[i].UpAt > 100 {
			t.Fatalf("bad window %+v", a[i])
		}
	}
	c := LinkOutages(12, 16, 100, 12)
	diff := false
	for i := range c {
		if c[i] != a[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestFSShortWriteAndSyncCadence(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(FSConfig{WriteEveryN: 3, SyncEveryN: 2})
	f, err := fs.OpenWAL(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	payload := []byte("0123456789")
	var wrote []byte
	for i := 0; i < 6; i++ {
		n, err := f.Write(payload)
		if i == 2 || i == 5 { // idx 2, 5 under everyNth(,3)
			if err == nil || !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d: want injected short write, got n=%d err=%v", i, n, err)
			}
			if n != len(payload)/2 {
				t.Fatalf("write %d: short write landed %d bytes, want %d", i, n, len(payload)/2)
			}
			wrote = append(wrote, payload[:n]...)
			continue
		}
		if err != nil || n != len(payload) {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
		wrote = append(wrote, payload...)
	}
	// idx 1, 3 fail under everyNth(,2)
	for i := 0; i < 4; i++ {
		err := f.Sync()
		if i == 1 || i == 3 {
			if err == nil || !errors.Is(err, ErrInjected) {
				t.Fatalf("sync %d: want injected error, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	// What landed on disk matches the simulated short-write layout, and
	// truncate (tail repair's tool) passes through clean.
	got, err := os.ReadFile(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wrote) {
		t.Fatalf("on-disk bytes diverge: got %d bytes, want %d", len(got), len(wrote))
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	sw, sf := fs.Faults()
	if sw != 2 || sf != 2 {
		t.Fatalf("Faults() = %d,%d want 2,2", sw, sf)
	}
}

func TestMsgFaultsDeterminism(t *testing.T) {
	cfg := MsgConfig{DropProb: 0.2, DupProb: 0.1, ReorderProb: 0.2}
	a, b := NewMsgFaults(99, cfg), NewMsgFaults(99, cfg)
	counts := map[MsgAction]int{}
	for i := 0; i < 500; i++ {
		va, vb := a.Judge(), b.Judge()
		if va != vb {
			t.Fatalf("verdict %d diverged: %v vs %v", i, va, vb)
		}
		counts[va]++
		if pa, pb := a.Pick(7), b.Pick(7); pa != pb {
			t.Fatalf("pick %d diverged: %d vs %d", i, pa, pb)
		}
	}
	for _, act := range []MsgAction{Deliver, Drop, Duplicate, Reorder} {
		if counts[act] == 0 {
			t.Fatalf("action %v never fired in 500 judgments: %v", act, counts)
		}
	}
}

func TestTornWALArtifactsDeterministic(t *testing.T) {
	frames := [][]byte{
		[]byte("frame-one-payload-xxxx"),
		[]byte("frame-two-payload-yyyyyy"),
		[]byte("frame-three-zz"),
	}
	a := TornWALArtifacts(5, frames)
	b := TornWALArtifacts(5, frames)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("artifact counts %d/%d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("artifact %d diverged", i)
		}
	}
	if got := TornWALArtifacts(5, nil); got != nil {
		t.Fatalf("empty frames should yield nil, got %d artifacts", len(got))
	}
}

func TestNetPartitionWindow(t *testing.T) {
	inj := New(1)
	n := NewNet(inj, NetConfig{Partitions: []Partition{
		{From: "a", To: "b", Start: 0, End: 50 * time.Millisecond},
	}})
	if n.Partitioned("a", "b") {
		t.Fatal("partitioned before Start")
	}
	n.Start()
	defer n.Stop()
	if !n.Partitioned("a", "b") {
		t.Fatal("not partitioned inside window")
	}
	if n.Partitioned("b", "a") {
		t.Fatal("reverse direction should be open (directional cut)")
	}
	if _, err := n.Dial("a", "b", "127.0.0.1:1", 10*time.Millisecond); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial through partition: want ErrInjected, got %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	if n.Partitioned("a", "b") {
		t.Fatal("still partitioned after window end")
	}
}

func TestNetPartitionKillsLiveConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()

	inj := New(2)
	n := NewNet(inj, NetConfig{Partitions: []Partition{
		{From: "x", To: "y", Start: 30 * time.Millisecond, End: time.Second},
	}})
	c, err := n.Dial("x", "y", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-accepted
	defer srv.Close()

	n.Start()
	defer n.Stop()
	// The reader is blocked when the window opens; the armed timer must
	// force-close the conn so the read returns instead of hanging.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(buf)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read succeeded across partition")
		}
	case <-time.After(time.Second):
		t.Fatal("blocked reader not released by partition cut")
	}
	// Writes inside the window fail with the injected sentinel.
	if _, err := c.Write([]byte("hi")); err == nil {
		t.Fatal("write succeeded across partition")
	}
}

func TestFaultConnDropAndStall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()

	// DropProb 1: the very first write kills the connection.
	n := NewNet(New(3), NetConfig{DropProb: 1})
	c, err := n.Dial("a", "b", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("doomed")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected drop, got %v", err)
	}
	c.Close()

	// StallProb 1: the write completes but takes at least the stall.
	n2 := NewNet(New(4), NetConfig{StallProb: 1, Stall: 40 * time.Millisecond})
	c2, err := n2.Dial("a", "b", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	start := time.Now()
	if _, err := c2.Write([]byte("slow-frame")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("stalled write returned in %v, want >= 40ms", d)
	}
}
