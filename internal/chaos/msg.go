package chaos

// The message front makes fault decisions for protocol-level
// simulations (the paxos chaos suite): whole messages are dropped,
// duplicated or reordered, the classic asynchronous-network adversary
// a consensus protocol must stay safe under.

// MsgConfig tunes the message front.
type MsgConfig struct {
	DropProb    float64 `json:"drop_prob,omitempty"`
	DupProb     float64 `json:"dup_prob,omitempty"`
	ReorderProb float64 `json:"reorder_prob,omitempty"`
}

// MsgAction is a delivery verdict for one in-flight message.
type MsgAction int

// Verdicts. Reorder means "push to the back of the queue instead of
// delivering now"; Duplicate means "deliver now and enqueue a copy".
const (
	Deliver MsgAction = iota
	Drop
	Duplicate
	Reorder
)

func (a MsgAction) String() string {
	switch a {
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Reorder:
		return "reorder"
	}
	return "unknown"
}

// MsgFaults makes deterministic per-message verdicts. Judgments are
// indexed by an internal counter, so a single-goroutine simulation
// replays identically for the same seed.
type MsgFaults struct {
	inj *Injector
	cfg MsgConfig
	n   uint64
}

// NewMsgFaults returns a message-fault judge for the given seed.
func NewMsgFaults(seed int64, cfg MsgConfig) *MsgFaults {
	return &MsgFaults{inj: New(seed), cfg: cfg}
}

// Judge returns the verdict for the next in-flight message.
func (m *MsgFaults) Judge() MsgAction {
	idx := m.n
	m.n++
	r := m.inj.Roll("msg/verdict", idx)
	switch {
	case r < m.cfg.DropProb:
		mMsgDrops.Inc()
		return Drop
	case r < m.cfg.DropProb+m.cfg.DupProb:
		mMsgDups.Inc()
		return Duplicate
	case r < m.cfg.DropProb+m.cfg.DupProb+m.cfg.ReorderProb:
		mMsgReorders.Inc()
		return Reorder
	}
	return Deliver
}

// Pick returns a deterministic index in [0,n), for choosing which
// queued message to pop next (delivery-order scrambling).
func (m *MsgFaults) Pick(n int) int {
	idx := m.n
	m.n++
	return m.inj.Intn("msg/pick", idx, n)
}
