package chaos

import (
	"fmt"
	"os"
	"sync/atomic"
)

// FSConfig tunes the disk front. Cadences are count-based, not
// time-based, so the k-th write fails on every replay regardless of
// timing, and (with N >= 2) failures are never consecutive — which is
// what lets a bounded-retry writer always make progress.
type FSConfig struct {
	// WriteEveryN makes every Nth WAL write a short write (half the
	// buffer lands, then an injected error). 0 or 1 disables.
	WriteEveryN int `json:"write_every_n,omitempty"`
	// SyncEveryN fails every Nth fsync. 0 or 1 disables.
	SyncEveryN int `json:"sync_every_n,omitempty"`
}

// FS opens WAL files wrapped with the disk fault plan. Hand OpenWAL
// (via an adapter closure) to store.Options.OpenWAL.
type FS struct {
	cfg    FSConfig
	writes atomic.Uint64
	syncs  atomic.Uint64
}

// NewFS returns a disk-fault injector.
func NewFS(cfg FSConfig) *FS { return &FS{cfg: cfg} }

// OpenWAL opens path the way the store would, wrapped with faults.
func (fs *FS) OpenWAL(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &File{f: f, fs: fs}, nil
}

// Faults reports how many faults the front injected (short writes,
// failed fsyncs).
func (fs *FS) Faults() (shortWrites, syncFails uint64) {
	w, s := fs.writes.Load(), fs.syncs.Load()
	n := func(count uint64, every int) uint64 {
		if every < 2 {
			return 0
		}
		return count / uint64(every)
	}
	return n(w, fs.cfg.WriteEveryN), n(s, fs.cfg.SyncEveryN)
}

// File is a store.File-compatible WAL handle with injected faults.
// Reads (replay) and truncates (tail repair) pass through clean: the
// injector attacks the append path, the repair machinery is the thing
// under test.
type File struct {
	f  *os.File
	fs *FS
}

func (c *File) Write(p []byte) (int, error) {
	idx := c.fs.writes.Add(1) - 1
	if everyNth(idx, c.fs.cfg.WriteEveryN) && len(p) > 1 {
		mShortWrites.Inc()
		half := len(p) / 2
		n, err := c.f.Write(p[:half])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("short write (%d of %d bytes): %w", n, len(p), ErrInjected)
	}
	return c.f.Write(p)
}

func (c *File) Sync() error {
	idx := c.fs.syncs.Add(1) - 1
	if everyNth(idx, c.fs.cfg.SyncEveryN) {
		mSyncFails.Inc()
		return fmt.Errorf("fsync: %w", ErrInjected)
	}
	return c.f.Sync()
}

func (c *File) Read(p []byte) (int, error)                { return c.f.Read(p) }
func (c *File) Seek(off int64, whence int) (int64, error) { return c.f.Seek(off, whence) }
func (c *File) Truncate(size int64) error                 { return c.f.Truncate(size) }
func (c *File) Stat() (os.FileInfo, error)                { return c.f.Stat() }
func (c *File) Close() error                              { return c.f.Close() }
