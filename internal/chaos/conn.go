package chaos

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// NetConfig tunes the wire front.
type NetConfig struct {
	// DelayProb delays a write by up to MaxDelay.
	DelayProb float64       `json:"delay_prob,omitempty"`
	MaxDelay  time.Duration `json:"max_delay,omitempty"`
	// StallProb splits a write in half and stalls between the halves —
	// the mid-frame wedge a per-frame read deadline must catch.
	StallProb float64       `json:"stall_prob,omitempty"`
	Stall     time.Duration `json:"stall,omitempty"`
	// DropProb kills the connection on a write.
	DropProb float64 `json:"drop_prob,omitempty"`
	// Partitions are directional connectivity cuts relative to Start.
	Partitions []Partition `json:"partitions,omitempty"`
}

// Net injects wire faults between named endpoints. Wrap dialed
// connections with Wrap (or dial through Dial); call Start when the
// fault clock should begin: partition windows are relative to it, and
// each window opening force-closes the live connections it cuts, so a
// peer blocked in a read observes the partition instead of sleeping
// through it.
type Net struct {
	inj *Injector
	cfg NetConfig

	mu      sync.Mutex
	started bool
	t0      time.Time
	conns   map[*faultConn]struct{}
	timers  []*time.Timer
	// dials counts wrapped connections per directed edge. Keying fault
	// decisions by (edge, per-edge index) — not a global counter —
	// keeps one edge's fault schedule independent of how other edges'
	// dials interleave with it, which is what lets a replay with
	// different goroutine timing see identical per-edge faults.
	dials map[string]uint64
}

// NewNet returns a wire-fault injector sharing inj's seed.
func NewNet(inj *Injector, cfg NetConfig) *Net {
	return &Net{inj: inj, cfg: cfg, conns: make(map[*faultConn]struct{}), dials: make(map[string]uint64)}
}

// Start begins the fault clock and arms the partition windows.
func (n *Net) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	n.t0 = time.Now()
	for _, p := range n.cfg.Partitions {
		p := p
		n.timers = append(n.timers, time.AfterFunc(p.Start, func() { n.cutConns(p) }))
	}
}

// Stop disarms pending partition timers (for test cleanup).
func (n *Net) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, t := range n.timers {
		t.Stop()
	}
	n.timers = nil
}

// cutConns force-closes live connections between a partition's
// endpoints when its window opens.
func (n *Net) cutConns(p Partition) {
	n.mu.Lock()
	var victims []*faultConn
	for c := range n.conns {
		if (c.from == p.From && c.to == p.To) || (c.from == p.To && c.to == p.From) {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		mPartitionKills.Inc()
		c.Conn.Close()
	}
}

// Partitioned reports whether from->to traffic is currently cut.
func (n *Net) Partitioned(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started {
		return false
	}
	now := time.Since(n.t0)
	for _, p := range n.cfg.Partitions {
		if p.From == from && p.To == to && now >= p.Start && now < p.End {
			return true
		}
	}
	return false
}

// Dial connects from the named endpoint to addr (owned by the named
// peer), refusing while a partition covers either direction — a TCP
// handshake needs both.
func (n *Net) Dial(from, to, addr string, timeout time.Duration) (net.Conn, error) {
	if n.Partitioned(from, to) || n.Partitioned(to, from) {
		mDialRefusals.Inc()
		// A real partition manifests as a dial timeout, not an instant
		// refusal; a short sleep keeps retry loops honest without
		// dominating test wall-clock.
		wait := 25 * time.Millisecond
		if timeout > 0 && timeout < wait {
			wait = timeout
		}
		time.Sleep(wait)
		return nil, fmt.Errorf("dial %s->%s (%s): partitioned: %w", from, to, addr, ErrInjected)
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return n.Wrap(nc, from, to), nil
}

// Wrap returns nc with the fault plan applied to the from->to edge.
func (n *Net) Wrap(nc net.Conn, from, to string) net.Conn {
	c := &faultConn{Conn: nc, net: n, from: from, to: to}
	edge := from + "->" + to
	n.mu.Lock()
	idx := n.dials[edge]
	n.dials[edge] = idx + 1
	n.conns[c] = struct{}{}
	n.mu.Unlock()
	c.key = fmt.Sprintf("conn/%s/%d", edge, idx)
	return c
}

// forget deregisters a closed connection.
func (n *Net) forget(c *faultConn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// faultConn is a net.Conn with the write-side fault plan. Deadline
// and address methods pass through to the wrapped connection.
type faultConn struct {
	net.Conn
	net      *Net
	from, to string
	key      string
	writes   atomic.Uint64
	closed   atomic.Bool
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.net.Partitioned(c.from, c.to) {
		mPartitionKills.Inc()
		c.Close()
		return 0, fmt.Errorf("write %s->%s: partitioned: %w", c.from, c.to, ErrInjected)
	}
	inj, cfg := c.net.inj, c.net.cfg
	idx := c.writes.Add(1) - 1
	if inj.Hit(c.key+"/drop", idx, cfg.DropProb) {
		mConnDrops.Inc()
		c.Close()
		return 0, fmt.Errorf("write %s->%s: connection dropped: %w", c.from, c.to, ErrInjected)
	}
	if cfg.MaxDelay > 0 && inj.Hit(c.key+"/delay", idx, cfg.DelayProb) {
		mConnDelays.Inc()
		time.Sleep(time.Duration(inj.Roll(c.key+"/delayamt", idx) * float64(cfg.MaxDelay)))
	}
	if cfg.Stall > 0 && len(p) > 1 && inj.Hit(c.key+"/stall", idx, cfg.StallProb) {
		mConnStalls.Inc()
		half := len(p) / 2
		n1, err := c.Conn.Write(p[:half])
		if err != nil {
			return n1, err
		}
		time.Sleep(cfg.Stall)
		n2, err := c.Conn.Write(p[half:])
		return n1 + n2, err
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Read(p []byte) (int, error) {
	// The reverse direction carries the bytes this Read consumes; a
	// partition there kills the connection (with TCP, a cut manifests
	// to a blocked reader as a reset or a deadline, not silence
	// forever — Start's window timers handle the mid-read case).
	if c.net.Partitioned(c.to, c.from) {
		mPartitionKills.Inc()
		c.Close()
		return 0, fmt.Errorf("read %s<-%s: partitioned: %w", c.from, c.to, ErrInjected)
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		c.net.forget(c)
	}
	return c.Conn.Close()
}
