package chaos

// Correlated-failure schedules: where LinkOutages attacks one link at
// a time, these generators take whole shared-risk groups (or every
// link touching one region) down together — the fiber-cut / regional-
// disaster bursts the availability model's correlated classes exist
// for. Like every chaos front, schedules are pure functions of the
// seed via counter-indexed hashing, so a replay storms the same groups
// at the same times.

// GroupOutage is one scheduled whole-group outage, identified by group
// index (the caller maps indices to its risk groups or regions).
type GroupOutage struct {
	Group  int     `json:"group"`
	DownAt float64 `json:"down_at_sec"`
	UpAt   float64 `json:"up_at_sec"`
}

// SRLGStorms derives a deterministic storm schedule over numGroups
// shared-risk groups: roughly half the storms hit one "cursed" group
// (shared conduits fail repeatedly; the heavy tail again, one level
// up), the rest spread across the others. Storms are short relative to
// the horizon but may overlap, so multi-group concurrent failures —
// the scenarios a per-link failure model assigns vanishing probability
// — actually occur. Sorted by DownAt; repairs clipped to the horizon.
func SRLGStorms(seed int64, numGroups int, horizon float64, n int) []GroupOutage {
	if numGroups <= 0 || n <= 0 || horizon <= 0 {
		return nil
	}
	inj := New(seed)
	cursed := inj.Intn("storm/cursed", 0, numGroups)
	out := make([]GroupOutage, 0, n)
	for k := 0; k < n; k++ {
		idx := uint64(k)
		group := cursed
		if !inj.Hit("storm/curse", idx, 0.5) {
			group = inj.Intn("storm/group", idx, numGroups)
		}
		downAt := inj.Roll("storm/down", idx) * horizon * 0.8
		dur := (0.02 + 0.06*inj.Roll("storm/dur", idx)) * horizon
		upAt := downAt + dur
		if upAt > horizon {
			upAt = horizon
		}
		out = append(out, GroupOutage{Group: group, DownAt: downAt, UpAt: upAt})
	}
	sortGroupOutages(out)
	return out
}

// RegionalDisasters derives a deterministic burst schedule over
// numRegions regions (the caller maps a region index to the set of
// links incident to that DC or metro). Disasters are rarer and longer
// than SRLG storms — a region goes dark for 10-25% of the horizon —
// and each one picks its region independently, so consecutive
// disasters can compound on a region that has not finished repairing.
func RegionalDisasters(seed int64, numRegions int, horizon float64, n int) []GroupOutage {
	if numRegions <= 0 || n <= 0 || horizon <= 0 {
		return nil
	}
	inj := New(seed)
	out := make([]GroupOutage, 0, n)
	for k := 0; k < n; k++ {
		idx := uint64(k)
		region := inj.Intn("disaster/region", idx, numRegions)
		downAt := inj.Roll("disaster/down", idx) * horizon * 0.7
		dur := (0.10 + 0.15*inj.Roll("disaster/dur", idx)) * horizon
		upAt := downAt + dur
		if upAt > horizon {
			upAt = horizon
		}
		out = append(out, GroupOutage{Group: region, DownAt: downAt, UpAt: upAt})
	}
	sortGroupOutages(out)
	return out
}

func sortGroupOutages(out []GroupOutage) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].DownAt < out[j-1].DownAt; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}
