package soak

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

// chaosSeeds reads the seed list from CHAOS_SEEDS (comma-separated;
// CI injects two fixed seeds plus one rotating from the run number).
func chaosSeeds(t *testing.T) []int64 {
	env := os.Getenv("CHAOS_SEEDS")
	if env == "" {
		env = "1,7"
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

// TestChaosSoak is the headline robustness harness: a full elected
// controller stack under seeded wire, filesystem and solver faults.
// Per seed it asserts the degraded-mode invariants, then replays the
// same seed into a fresh directory and demands a byte-identical
// compacted end state.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not short")
	}
	const deadline = 750 * time.Millisecond
	logf := func(string, ...interface{}) {}
	if os.Getenv("CHAOS_VERBOSE") != "" {
		logf = t.Logf
	}
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			artifact := ""
			if dir := os.Getenv("CHAOS_ARTIFACT_DIR"); dir != "" {
				artifact = filepath.Join(dir, fmt.Sprintf("soak-seed-%d.json", seed))
			}
			runOnce := func(tag string, jsonWire bool) *Report {
				rep, err := Run(Config{
					Seed: seed, Dir: t.TempDir(),
					RecoveryDeadline: deadline,
					ArtifactPath:     artifact,
					JSONWire:         jsonWire,
					Logf:             logf,
				})
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				return rep
			}
			rep := runOnce("run", false)

			// At most one master: all three replicas agreed.
			if !rep.LeaderAgreed {
				t.Fatal("replicas did not agree on a leader")
			}
			// No acked admission lost, no double admission: the final
			// book is exactly the acked set minus the withdrawals.
			want := surviving(rep.AckedIDs, rep.WithdrawnIDs)
			if !reflect.DeepEqual(rep.FinalIDs, want) {
				t.Errorf("final book %v, want acked-minus-withdrawn %v", rep.FinalIDs, want)
			}
			if len(rep.AckedIDs) < 2 {
				t.Errorf("only %d demands acked; the plan needs at least the two withdrawals", len(rep.AckedIDs))
			}
			// Every link failure recovered, and by the planned rungs:
			// one backup hit and one deeper-than-backup miss per episode.
			if rep.DownEvents != 4 {
				t.Errorf("saw %d down events, want 4", rep.DownEvents)
			}
			if got := rep.BackupHits + rep.Optimal + rep.Greedy; got != int64(rep.DownEvents) {
				t.Errorf("%d recoveries for %d down events — a failure went unrecovered", got, rep.DownEvents)
			}
			if rep.BackupHits != 2 {
				t.Errorf("backup hits = %d, want 2", rep.BackupHits)
			}
			if rep.Greedy < 1 {
				t.Errorf("greedy floor never used (gated recovery should force it)")
			}
			if rep.Fallbacks < 3 {
				t.Errorf("bate.recovery_fallback advanced by %d, want >= 3", rep.Fallbacks)
			}
			if rep.SolverDenials != 2 {
				t.Errorf("solver denials = %d, want 2 (one schedule, one recover)", rep.SolverDenials)
			}
			if rep.MaxRecoveryMs > (2 * deadline).Milliseconds() {
				t.Errorf("max recovery %dms exceeds 2x the %v deadline", rep.MaxRecoveryMs, deadline)
			}
			// The partition window must have cost broker-DC1 its session.
			if rep.Reconnects < 1 {
				t.Errorf("broker.reconnects advanced by %d, want >= 1", rep.Reconnects)
			}
			// The chaos fs cadence guarantees injected append faults; all
			// must have been repaired and retried, none surfaced to a client.
			if rep.StoreRepairs < 1 {
				t.Errorf("store.append_repairs advanced by %d, want >= 1", rep.StoreRepairs)
			}
			if rep.Digest == "" {
				t.Fatal("no end-state digest")
			}

			// Same seed, fresh directory: byte-identical end state.
			replay := runOnce("replay", false)
			if replay.Digest != rep.Digest {
				t.Errorf("replay digest %s != original %s", replay.Digest, rep.Digest)
			}
			if replay.FinalEpoch != rep.FinalEpoch {
				t.Errorf("replay epoch %d != original %d", replay.FinalEpoch, rep.FinalEpoch)
			}
			if !reflect.DeepEqual(replay.AckedIDs, rep.AckedIDs) {
				t.Errorf("replay acked %v != original %v", replay.AckedIDs, rep.AckedIDs)
			}
			if !reflect.DeepEqual(replay.FinalIDs, rep.FinalIDs) {
				t.Errorf("replay book %v != original %v", replay.FinalIDs, rep.FinalIDs)
			}

			// Same seed forced to the JSON debug codec: the codec must
			// not change a single admission decision, and because every
			// fault draw is a pure function of (seed, edge, count) —
			// never of frame bytes — the end state digest is identical
			// too.
			jsRep := runOnce("json-wire", true)
			if jsRep.Digest != rep.Digest {
				t.Errorf("json-wire digest %s != binary %s", jsRep.Digest, rep.Digest)
			}
			if !reflect.DeepEqual(jsRep.AckedIDs, rep.AckedIDs) {
				t.Errorf("json-wire acked %v != binary %v", jsRep.AckedIDs, rep.AckedIDs)
			}
			if !reflect.DeepEqual(jsRep.FinalIDs, rep.FinalIDs) {
				t.Errorf("json-wire book %v != binary %v", jsRep.FinalIDs, rep.FinalIDs)
			}
			if jsRep.Rejected != rep.Rejected {
				t.Errorf("json-wire rejected %d != binary %d", jsRep.Rejected, rep.Rejected)
			}
		})
	}
}

// TestChaosSoakPartitioned runs the soak with hierarchical scheduling
// enabled: the decomposition must not cost determinism (same seed
// replays byte-identical) nor change a single admission or election
// decision relative to the global-LP soak.
func TestChaosSoakPartitioned(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not short")
	}
	const deadline = 750 * time.Millisecond
	logf := func(string, ...interface{}) {}
	if os.Getenv("CHAOS_VERBOSE") != "" {
		logf = t.Logf
	}
	seed := chaosSeeds(t)[0]
	runOnce := func(tag string, partitions int) *Report {
		rep, err := Run(Config{
			Seed: seed, Dir: t.TempDir(),
			RecoveryDeadline: deadline,
			Partitions:       partitions,
			Logf:             logf,
		})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		return rep
	}
	part := runOnce("partitioned", 2)
	if !part.LeaderAgreed {
		t.Fatal("partitioned soak: replicas did not agree on a leader")
	}
	if part.Digest == "" {
		t.Fatal("partitioned soak: no end-state digest")
	}

	// Same seed, same partitioning, fresh directory: byte-identical.
	replay := runOnce("partitioned-replay", 2)
	if replay.Digest != part.Digest {
		t.Errorf("partitioned replay digest %s != original %s", replay.Digest, part.Digest)
	}
	if !reflect.DeepEqual(replay.AckedIDs, part.AckedIDs) {
		t.Errorf("partitioned replay acked %v != original %v", replay.AckedIDs, part.AckedIDs)
	}

	// Against the global-LP soak the allocation may differ (that is the
	// point of the gap bound) but every discrete decision must match:
	// leadership, admissions, withdrawals, rejections.
	global := runOnce("global", 0)
	if global.LeaderAgreed != part.LeaderAgreed {
		t.Errorf("leader agreement differs: partitioned %v, global %v", part.LeaderAgreed, global.LeaderAgreed)
	}
	if !reflect.DeepEqual(global.AckedIDs, part.AckedIDs) {
		t.Errorf("partitioned acked %v != global %v", part.AckedIDs, global.AckedIDs)
	}
	if !reflect.DeepEqual(global.FinalIDs, part.FinalIDs) {
		t.Errorf("partitioned book %v != global %v", part.FinalIDs, global.FinalIDs)
	}
	if global.Rejected != part.Rejected {
		t.Errorf("partitioned rejected %d != global %d", part.Rejected, global.Rejected)
	}
}

// TestChaosSoakMidSolve runs the soak with the solver budget's
// mid-solve front armed: the pivot watcher dooms every third schedule
// from inside the simplex pivot loop (through the controller's
// SolverWatch hook), which must degrade exactly like a door-gate
// denial — the current allocation survives, the abort is counted, and
// the same seed still replays byte-identically.
func TestChaosSoakMidSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not short")
	}
	const deadline = 750 * time.Millisecond
	logf := func(string, ...interface{}) {}
	if os.Getenv("CHAOS_VERBOSE") != "" {
		logf = t.Logf
	}
	seed := chaosSeeds(t)[0]
	runOnce := func(tag string, pivots int) *Report {
		rep, err := Run(Config{
			Seed: seed, Dir: t.TempDir(),
			RecoveryDeadline: deadline,
			MidSolvePivots:   pivots,
			Logf:             logf,
		})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		return rep
	}
	mid := runOnce("mid-solve", 3)
	if !mid.LeaderAgreed {
		t.Fatal("mid-solve soak: replicas did not agree on a leader")
	}
	if mid.Digest == "" {
		t.Fatal("mid-solve soak: no end-state digest")
	}
	// Aborting a solve mid-pivot must not bend the book invariant.
	if want := surviving(mid.AckedIDs, mid.WithdrawnIDs); !reflect.DeepEqual(mid.FinalIDs, want) {
		t.Errorf("mid-solve final book %v, want acked-minus-withdrawn %v", mid.FinalIDs, want)
	}

	// Same seed, same cadence, fresh directory: byte-identical, down
	// to the injected abort count.
	replay := runOnce("mid-solve-replay", 3)
	if replay.Digest != mid.Digest {
		t.Errorf("mid-solve replay digest %s != original %s", replay.Digest, mid.Digest)
	}
	if replay.SolverDenials != mid.SolverDenials {
		t.Errorf("mid-solve replay denials %d != original %d", replay.SolverDenials, mid.SolverDenials)
	}

	// Against the unarmed soak: exactly one extra denial (the doomed
	// phase-7b solve), and every discrete decision unchanged — a
	// mid-pivot abort costs allocation freshness, never book state.
	plain := runOnce("plain", 0)
	if mid.SolverDenials != plain.SolverDenials+1 {
		t.Errorf("mid-solve denials %d, want plain's %d + 1", mid.SolverDenials, plain.SolverDenials)
	}
	if !reflect.DeepEqual(plain.AckedIDs, mid.AckedIDs) {
		t.Errorf("mid-solve acked %v != plain %v", mid.AckedIDs, plain.AckedIDs)
	}
	if !reflect.DeepEqual(plain.FinalIDs, mid.FinalIDs) {
		t.Errorf("mid-solve book %v != plain %v", mid.FinalIDs, plain.FinalIDs)
	}
	if plain.Rejected != mid.Rejected {
		t.Errorf("mid-solve rejected %d != plain %d", mid.Rejected, plain.Rejected)
	}
}

// TestChaosSoakOverload runs the soak with the admission gate wired to
// the seeded admission budget: every third sheddable request is shed
// with an explicit retry-after. Shedding must stay deterministic (same
// seed replays byte-identical through the retries), must never touch
// critical traffic, and must never lose or double-admit a demand — the
// final book is still exactly acked-minus-withdrawn.
func TestChaosSoakOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not short")
	}
	const deadline = 750 * time.Millisecond
	logf := func(string, ...interface{}) {}
	if os.Getenv("CHAOS_VERBOSE") != "" {
		logf = t.Logf
	}
	seed := chaosSeeds(t)[0]
	runOnce := func(tag string, overload bool) *Report {
		rep, err := Run(Config{
			Seed: seed, Dir: t.TempDir(),
			RecoveryDeadline: deadline,
			Overload:         overload,
			Logf:             logf,
		})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		return rep
	}
	ov := runOnce("overload", true)
	if !ov.LeaderAgreed {
		t.Fatal("overload soak: replicas did not agree on a leader")
	}
	if ov.Digest == "" {
		t.Fatal("overload soak: no end-state digest")
	}
	// The budget must actually have fired, every shed must be explicit
	// (the gate counter equals the injected denials: nothing shed for
	// any other reason in this ample-slot config), and the clients must
	// have seen at least one retry-after — but possibly fewer than the
	// gate sent, since sheds on the lossy connection can be lost.
	if ov.AdmissionDenials < 1 {
		t.Errorf("admission budget never fired (denials = %d)", ov.AdmissionDenials)
	}
	if ov.GateSheds != ov.AdmissionDenials {
		t.Errorf("gate sheds %d != injected denials %d — a shed came from queue state, which cannot replay", ov.GateSheds, ov.AdmissionDenials)
	}
	if ov.ClientSheds < 1 || ov.ClientSheds > ov.GateSheds {
		t.Errorf("clients saw %d sheds, want between 1 and the gate's %d", ov.ClientSheds, ov.GateSheds)
	}
	// Shedding with retries must not bend the book invariant.
	if want := surviving(ov.AckedIDs, ov.WithdrawnIDs); !reflect.DeepEqual(ov.FinalIDs, want) {
		t.Errorf("overload final book %v, want acked-minus-withdrawn %v", ov.FinalIDs, want)
	}

	// Same seed, fresh directory: the retries replay byte-identical,
	// down to the injected shed count.
	replay := runOnce("overload-replay", true)
	if replay.Digest != ov.Digest {
		t.Errorf("overload replay digest %s != original %s", replay.Digest, ov.Digest)
	}
	if !reflect.DeepEqual(replay.AckedIDs, ov.AckedIDs) {
		t.Errorf("overload replay acked %v != original %v", replay.AckedIDs, ov.AckedIDs)
	}
	if !reflect.DeepEqual(replay.FinalIDs, ov.FinalIDs) {
		t.Errorf("overload replay book %v != original %v", replay.FinalIDs, ov.FinalIDs)
	}
	if replay.AdmissionDenials != ov.AdmissionDenials {
		t.Errorf("overload replay denials %d != original %d", replay.AdmissionDenials, ov.AdmissionDenials)
	}

	// Against the gate-less soak every discrete decision must match:
	// shedding delays requests, it never changes their outcome.
	plain := runOnce("plain", false)
	if !reflect.DeepEqual(plain.AckedIDs, ov.AckedIDs) {
		t.Errorf("overload acked %v != plain %v", ov.AckedIDs, plain.AckedIDs)
	}
	if !reflect.DeepEqual(plain.FinalIDs, ov.FinalIDs) {
		t.Errorf("overload book %v != plain %v", ov.FinalIDs, plain.FinalIDs)
	}
	if plain.Rejected != ov.Rejected {
		t.Errorf("overload rejected %d != plain %d", ov.Rejected, plain.Rejected)
	}
}

// TestChaosSoakMaintenance runs the soak with the proactive-drain end
// phase armed: a planned link is drained (traffic rescheduled off it
// while it is still up), verified, and undrained, both reschedules
// running against the seeded solver budget. The drain must stay
// deterministic (same seed replays byte-identical) and, because it
// runs after every shared phase, must not change a single discrete
// decision relative to the plain soak.
func TestChaosSoakMaintenance(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not short")
	}
	const deadline = 750 * time.Millisecond
	logf := func(string, ...interface{}) {}
	if os.Getenv("CHAOS_VERBOSE") != "" {
		logf = t.Logf
	}
	seed := chaosSeeds(t)[0]
	runOnce := func(tag string, maintenance bool) *Report {
		rep, err := Run(Config{
			Seed: seed, Dir: t.TempDir(),
			RecoveryDeadline: deadline,
			Maintenance:      maintenance,
			Logf:             logf,
		})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		return rep
	}
	mnt := runOnce("maintenance", true)
	if !mnt.LeaderAgreed {
		t.Fatal("maintenance soak: replicas did not agree on a leader")
	}
	if mnt.Digest == "" {
		t.Fatal("maintenance soak: no end-state digest")
	}
	if mnt.Drains != 1 || mnt.Undrains != 1 {
		t.Errorf("drains/undrains = %d/%d, want 1/1", mnt.Drains, mnt.Undrains)
	}
	// Draining must not bend the book invariant.
	if want := surviving(mnt.AckedIDs, mnt.WithdrawnIDs); !reflect.DeepEqual(mnt.FinalIDs, want) {
		t.Errorf("maintenance final book %v, want acked-minus-withdrawn %v", mnt.FinalIDs, want)
	}

	// Same seed, fresh directory: byte-identical through the drain.
	replay := runOnce("maintenance-replay", true)
	if replay.Digest != mnt.Digest {
		t.Errorf("maintenance replay digest %s != original %s", replay.Digest, mnt.Digest)
	}
	if replay.Drains != mnt.Drains || replay.Undrains != mnt.Undrains {
		t.Errorf("maintenance replay drains/undrains %d/%d != original %d/%d",
			replay.Drains, replay.Undrains, mnt.Drains, mnt.Undrains)
	}
	if !reflect.DeepEqual(replay.FinalIDs, mnt.FinalIDs) {
		t.Errorf("maintenance replay book %v != original %v", replay.FinalIDs, mnt.FinalIDs)
	}

	// Against the plain soak every discrete decision must match: the
	// drain phase runs after all of them.
	plain := runOnce("plain", false)
	if plain.Drains != 0 || plain.Undrains != 0 {
		t.Errorf("plain soak drained links: %d/%d", plain.Drains, plain.Undrains)
	}
	if !reflect.DeepEqual(plain.AckedIDs, mnt.AckedIDs) {
		t.Errorf("maintenance acked %v != plain %v", mnt.AckedIDs, plain.AckedIDs)
	}
	if !reflect.DeepEqual(plain.FinalIDs, mnt.FinalIDs) {
		t.Errorf("maintenance book %v != plain %v", mnt.FinalIDs, plain.FinalIDs)
	}
	if plain.Rejected != mnt.Rejected {
		t.Errorf("maintenance rejected %d != plain %d", mnt.Rejected, plain.Rejected)
	}
}

// surviving returns acked minus withdrawn, sorted (both inputs are).
func surviving(acked, withdrawn []int) []int {
	gone := make(map[int]bool, len(withdrawn))
	for _, id := range withdrawn {
		gone[id] = true
	}
	out := []int{}
	for _, id := range acked {
		if !gone[id] {
			out = append(out, id)
		}
	}
	return out
}
