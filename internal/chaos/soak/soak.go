// Package soak drives the full controller stack — a three-replica
// Paxos election, the winning controller with a durable store, per-DC
// brokers and a demand-submitting client — under a seeded fault
// schedule covering all three chaos fronts (wire, filesystem, solver
// budget). The same seed replays the exact same run: every fault
// decision is a pure function of (seed, edge, count), never of
// wall-clock time, so the store's compacted end state is byte-identical
// across replays.
package soak

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"time"

	"bate/internal/broker"
	"bate/internal/chaos"
	"bate/internal/controller"
	"bate/internal/metrics"
	"bate/internal/overload"
	"bate/internal/partition"
	"bate/internal/paxos"
	"bate/internal/routing"
	"bate/internal/store"
	"bate/internal/topo"
	"bate/internal/wire"
)

// Config parameterizes one soak run.
type Config struct {
	// Seed drives every fault decision; the same seed replays the same
	// run byte-for-byte.
	Seed int64
	// Dir is the store directory (required; must be empty or fresh).
	Dir string
	// Demands is how many BA demands the client submits (default 6).
	Demands int
	// RecoveryDeadline bounds each link-failure recovery (default 750ms).
	RecoveryDeadline time.Duration
	// ArtifactPath, when set, receives the fault schedule as JSON before
	// the run starts — a failing CI seed leaves its schedule behind.
	ArtifactPath string
	// JSONWire forces the debug JSON codec on every connection
	// (controller locked to JSON, every peer hello requests JSON). The
	// default soaks the binary codec, so mid-frame stall faults tear
	// binary frames; a forced-JSON run of the same seed must reach the
	// same admission decisions.
	JSONWire bool
	// Partitions, when > 1, runs the controller's reschedules through
	// hierarchical (partitioned) scheduling. The decomposition is
	// deterministic, so a partitioned run of the same seed must still
	// replay byte-identically.
	Partitions int
	// Overload enables the admission gate with the chaos admission
	// budget as its shed gate: every Nth sheddable request is shed with
	// an explicit retry-after, on a counter cadence — never from queue
	// state, which would replay differently — so the same seed still
	// reaches a byte-identical end state through the retries.
	Overload bool
	// MidSolvePivots, when > 1, arms the solver budget's mid-solve
	// front: every Nth solver-backed operation is aborted from inside
	// the pivot loop (via the controller's SolverWatch hook) instead of
	// gated at the door. Like the gate, the cadence is a deterministic
	// counter, so the same seed replays byte-identically; zero leaves
	// the pivot watcher inert and digests unchanged.
	MidSolvePivots int
	// Maintenance arms the proactive-drain end phase: after the final
	// status, the first planned link is drained (rescheduling moves
	// traffic off it while it is still up), verified empty, and
	// undrained. Both reschedules consult the seeded solver budget —
	// a gated one keeps the allocation, like any periodic round — and
	// the phase runs after every shared phase so the solver-gate call
	// indices of a non-maintenance run of the same seed are untouched.
	Maintenance bool
	// Logf receives narrative; nil is silent.
	Logf func(string, ...interface{})
}

// codec is the wire codec every soak connection negotiates.
func (cfg Config) codec() wire.Codec {
	if cfg.JSONWire {
		return wire.CodecJSON
	}
	return wire.CodecBinary
}

// Schedule is the JSON fault-schedule artifact: everything needed to
// reason about (or re-run) a failing seed.
type Schedule struct {
	Seed      int64                 `json:"seed"`
	Election  chaos.NetConfig       `json:"election_net"`
	Wire      chaos.NetConfig       `json:"wire_net"`
	FS        chaos.FSConfig        `json:"fs"`
	Solver    chaos.SolverConfig    `json:"solver"`
	Admission chaos.AdmissionConfig `json:"admission"`
	Demands   []DemandPlan          `json:"demands"`
	Events    []LinkEventPlan       `json:"events"`
}

// DemandPlan is one planned client submission.
type DemandPlan struct {
	Src       string  `json:"src"`
	Dst       string  `json:"dst"`
	Bandwidth float64 `json:"bandwidth"`
	Target    float64 `json:"target"`
}

// LinkEventPlan is one planned link up/down report.
type LinkEventPlan struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
	Up  bool   `json:"up"`
}

// Report is what one soak run observed; the caller asserts invariants
// over it. Counter fields are deltas over this run; MaxRecoveryMs is
// the process-wide high-water mark (max gauges do not reset).
type Report struct {
	Seed         int64
	Leader       string
	LeaderAgreed bool

	AckedIDs     []int
	Rejected     int
	WithdrawnIDs []int
	FinalIDs     []int
	FinalEpoch   uint64

	DownEvents    int
	BackupHits    int64
	Optimal       int64
	Greedy        int64
	Fallbacks     int64
	SolverDenials int64
	Reconnects    int64
	StoreRepairs  int64
	AppendRetries int64
	MaxRecoveryMs int64

	// Overload-variant observations: injected shed decisions, total
	// gate sheds, and the retry-after replies the clients actually saw
	// and honored. Sheds on the lossy connection can be lost in
	// transit, so ClientSheds <= GateSheds.
	AdmissionDenials int64
	GateSheds        int64
	ClientSheds      int64

	// Maintenance-variant observations: drain/undrain transitions.
	Drains   int64
	Undrains int64

	// Digest is the sha256 of the compacted snapshot.json — the
	// byte-identical-replay witness.
	Digest string
}

// Run executes one seeded soak and returns its report. Any error is a
// harness failure (an invariant the caller cannot even evaluate).
func Run(cfg Config) (*Report, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("soak: Dir is required")
	}
	if cfg.Demands <= 0 {
		cfg.Demands = 6
	}
	if cfg.RecoveryDeadline <= 0 {
		cfg.RecoveryDeadline = 750 * time.Millisecond
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	inj := chaos.New(cfg.Seed)
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)

	// ---- Fault schedule (written out before anything can fail). ----
	electionCfg := chaos.NetConfig{
		// A brief one-sided partition between replicas 2 and 3: both
		// still reach replica 1, so the quorum holds and the election
		// must converge anyway.
		Partitions: []chaos.Partition{{From: "elector-2", To: "elector-3", Start: 0, End: 300 * time.Millisecond}},
	}
	wireCfg := chaos.NetConfig{
		DelayProb: 0.20, MaxDelay: 30 * time.Millisecond,
		StallProb: 0.10, Stall: 20 * time.Millisecond,
		DropProb: 0.25,
		// Cut broker-DC1's controller session mid-run; the reconnect
		// loop must bring it back and re-sync the epoch.
		Partitions: []chaos.Partition{{From: "broker-DC1", To: "controller", Start: 400 * time.Millisecond, End: 900 * time.Millisecond}},
	}
	fsCfg := chaos.FSConfig{WriteEveryN: 5, SyncEveryN: 7}
	solverCfg := chaos.SolverConfig{EveryN: 2, MidSolveEveryN: cfg.MidSolvePivots}
	admissionCfg := chaos.AdmissionConfig{}
	if cfg.Overload {
		admissionCfg.EveryN = 3
	}

	plans := demandPlans(n, inj, cfg.Demands)
	links := pickLinks(n, inj, 4)
	events := linkEventPlan(n, links)

	if cfg.ArtifactPath != "" {
		sched := Schedule{
			Seed: cfg.Seed, Election: electionCfg, Wire: wireCfg,
			FS: fsCfg, Solver: solverCfg, Admission: admissionCfg,
			Demands: plans, Events: events,
		}
		if err := writeJSON(cfg.ArtifactPath, &sched); err != nil {
			return nil, fmt.Errorf("soak: write artifact: %w", err)
		}
	}

	before := metrics.Snapshot()
	rep := &Report{Seed: cfg.Seed}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// ---- Phase 1: elect a master under a partial partition. ----
	leader, ctrlLn, err := elect(ctx, inj, electionCfg, logf)
	if err != nil {
		return nil, err
	}
	rep.Leader, rep.LeaderAgreed = leader, true
	defer ctrlLn.Close()
	addr := ctrlLn.Addr().String()
	logf("soak: elected master %s", addr)

	// ---- Phase 2: the winner's controller over a chaos-backed store. ----
	fs := chaos.NewFS(fsCfg)
	st, err := store.Open(cfg.Dir, n, store.Options{
		Logf:    logf,
		OpenWAL: func(path string) (store.File, error) { return fs.OpenWAL(path) },
	})
	if err != nil {
		return nil, fmt.Errorf("soak: open store: %w", err)
	}
	defer st.Close()
	budget := chaos.NewSolverBudget(solverCfg)
	var popts *partition.Options
	if cfg.Partitions > 1 {
		popts = &partition.Options{Regions: cfg.Partitions}
	}
	var ovOpts *overload.Options
	if cfg.Overload {
		admitBudget := chaos.NewAdmissionBudget(admissionCfg)
		ovOpts = &overload.Options{
			// Ample concurrency for a serial client: every shed in this
			// soak comes from the seeded budget, never from queue state,
			// which timing could replay differently.
			MaxInflight: 64,
			ShedGate:    func(p overload.Priority) bool { return admitBudget.Gate(p.String()) },
		}
	}
	ctl, err := controller.New(controller.Config{
		Net: n, Tunnels: ts, MaxFail: 2, BackupDepth: 1,
		Store: st, FrameTimeout: 10 * time.Second,
		RecoveryDeadline: cfg.RecoveryDeadline,
		SolverGate:       budget.Gate,
		SolverWatch:      budget.PivotWatcher,
		ForceJSONWire:    cfg.JSONWire,
		Partition:        popts,
		Overload:         ovOpts,
		Logf:             logf,
	})
	if err != nil {
		return nil, err
	}
	go ctl.Serve(ctx, ctrlLn)

	// ---- Phase 3: brokers dialing through the chaos wire. ----
	wireNet := chaos.NewNet(inj, wireCfg)
	defer wireNet.Stop()
	wireNet.Start()
	for _, dc := range []string{"DC1", "DC2"} {
		b := broker.New(dc, addr)
		b.SetLogf(func(string, ...interface{}) {})
		b.SetWireCodec(cfg.codec())
		edge := "broker-" + dc
		b.SetDialer(func(a string) (*wire.Conn, error) {
			nc, err := wireNet.Dial(edge, "controller", a, 2*time.Second)
			if err != nil {
				return nil, err
			}
			return wire.New(nc), nil
		})
		go b.Run(ctx)
	}

	// ---- Phase 4: client submissions over a lossy connection. ----
	clean, err := dialClean(addr, "client", "", cfg.codec())
	if err != nil {
		return nil, fmt.Errorf("soak: clean client dial: %w", err)
	}
	defer clean.Close()
	cl := &chaosClient{net: wireNet, addr: addr, codec: cfg.codec()}
	defer cl.drop()
	for _, p := range plans {
		id, admitted, err := submitWithRetry(cl, clean, p)
		if err != nil {
			return nil, err
		}
		if admitted {
			rep.AckedIDs = append(rep.AckedIDs, id)
		} else {
			rep.Rejected++
		}
	}
	sort.Ints(rep.AckedIDs)
	logf("soak: %d demands acked, %d rejected", len(rep.AckedIDs), rep.Rejected)

	// ---- Phase 5: reschedule (solver gate index 0 passes) to build
	// the backup set the recovery ladder's first rung needs. ----
	if err := ctl.Reschedule(); err != nil {
		return nil, fmt.Errorf("soak: reschedule: %w", err)
	}

	// ---- Phase 6: the link-failure plan over a clean monitor session
	// (ping/pong as a barrier after every event). ----
	mon, err := newMonitor(addr, cfg.codec())
	if err != nil {
		return nil, err
	}
	defer mon.close()
	for _, ev := range events {
		if err := mon.linkEvent(ev); err != nil {
			return nil, fmt.Errorf("soak: link event %v: %w", ev, err)
		}
		if !ev.Up {
			rep.DownEvents++
		}
	}

	// ---- Phase 7: a second reschedule hits the gated solver (index 1
	// denied) and must keep the current allocation. ----
	if err := ctl.Reschedule(); err == nil {
		return nil, fmt.Errorf("soak: second reschedule was not gated")
	} else {
		logf("soak: gated reschedule degraded as expected: %v", err)
	}

	// ---- Phase 7b: with the mid-solve front armed, one more
	// reschedule exercises it. Solve index 2 passes the door gate
	// (EveryN 2 denies odd indices), so its fate is decided purely by
	// the pivot watcher's own cadence — with MidSolvePivots 3 it is
	// doomed from inside the pivot loop and must degrade exactly like
	// a gate denial, keeping the current allocation. ----
	if cfg.MidSolvePivots > 1 {
		err := ctl.Reschedule()
		doomed := 2%cfg.MidSolvePivots == cfg.MidSolvePivots-1
		switch {
		case doomed && err == nil:
			return nil, fmt.Errorf("soak: mid-solve-doomed reschedule was not aborted")
		case !doomed && err != nil:
			return nil, fmt.Errorf("soak: mid-solve reschedule: %w", err)
		case err != nil:
			logf("soak: mid-solve abort degraded as expected: %v", err)
		}
	}

	// ---- Phase 8: withdrawals over the lossy connection. ----
	for _, id := range firstN(rep.AckedIDs, 2) {
		if err := withdrawWithRetry(cl, id); err != nil {
			return nil, err
		}
		rep.WithdrawnIDs = append(rep.WithdrawnIDs, id)
	}

	// ---- Phase 9: final state via the clean connection. ----
	status, err := clean.statusWithRetry()
	if err != nil || status.Status == nil {
		return nil, fmt.Errorf("soak: final status: %v", err)
	}
	rep.FinalIDs = []int{}
	for _, d := range status.Status.Demands {
		rep.FinalIDs = append(rep.FinalIDs, d.DemandID)
	}
	sort.Ints(rep.FinalIDs)
	rep.FinalEpoch = status.Status.Epoch

	// ---- Phase 9b (maintenance variant): proactively drain the first
	// planned link, verify no allocation remains on it, and return it
	// to service. ----
	if cfg.Maintenance {
		l := links[0]
		src, dst := n.NodeName(l.Src), n.NodeName(l.Dst)
		if err := ctl.DrainLink(src, dst); err != nil {
			return nil, fmt.Errorf("soak: drain %s-%s: %w", src, dst, err)
		}
		if got := ctl.DrainedLinks(); len(got) != 1 {
			return nil, fmt.Errorf("soak: drained set %v after DrainLink", got)
		}
		logf("soak: drained %s-%s for maintenance", src, dst)
		if err := ctl.UndrainLink(src, dst); err != nil {
			return nil, fmt.Errorf("soak: undrain %s-%s: %w", src, dst, err)
		}
		if got := ctl.DrainedLinks(); len(got) != 0 {
			return nil, fmt.Errorf("soak: drained set %v after UndrainLink", got)
		}
	}

	// The DC1 partition window guarantees at least one broker
	// reconnect; wait (bounded) for the counter to reflect it.
	waitUntil(10*time.Second, func() bool {
		return metrics.Snapshot()["broker.reconnects"]-before["broker.reconnects"] >= 1
	})

	// ---- Phase 10: compact and fingerprint the end state. Compaction
	// itself runs through the chaos fs, so it gets bounded retries. ----
	var cerr error
	for attempt := 0; attempt < 4; attempt++ {
		if cerr = ctl.CompactStore(); cerr == nil {
			break
		}
		logf("soak: compact attempt %d: %v", attempt, cerr)
	}
	if cerr != nil {
		return nil, fmt.Errorf("soak: compact: %w", cerr)
	}
	raw, err := os.ReadFile(filepath.Join(cfg.Dir, "snapshot.json"))
	if err != nil {
		return nil, fmt.Errorf("soak: read snapshot: %w", err)
	}
	rep.Digest = fmt.Sprintf("%x", sha256.Sum256(raw))

	after := metrics.Snapshot()
	delta := func(k string) int64 { return after[k] - before[k] }
	rep.BackupHits = delta("bate.recovery_backup_hits")
	rep.Optimal = delta("bate.recovery_optimal")
	rep.Greedy = delta("bate.recovery_greedy")
	rep.Fallbacks = delta("bate.recovery_fallback")
	rep.SolverDenials = delta("chaos.solver_denials")
	rep.Reconnects = delta("broker.reconnects")
	rep.StoreRepairs = delta("store.append_repairs")
	rep.AppendRetries = delta("controller.append_retries")
	rep.MaxRecoveryMs = after["bate.recovery_max_ms"]
	rep.AdmissionDenials = delta("chaos.admission_denials")
	rep.GateSheds = delta("overload.shed_total")
	rep.ClientSheds = cl.sheds + clean.sheds
	rep.Drains = delta("controller.drains")
	rep.Undrains = delta("controller.undrains")
	return rep, nil
}

// elect pre-binds three election and three controller listeners, runs
// the three electors through the chaos net, and returns the agreed
// leader plus the winner's (still-bound) controller listener. The two
// losing controller listeners are closed.
func elect(ctx context.Context, inj *chaos.Injector, cfg chaos.NetConfig, logf func(string, ...interface{})) (string, net.Listener, error) {
	enet := chaos.NewNet(inj, cfg)
	enet.Start()
	defer enet.Stop()

	var elns, clns []net.Listener
	closeAll := func(lns []net.Listener) {
		for _, ln := range lns {
			ln.Close()
		}
	}
	for i := 0; i < 3; i++ {
		eln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll(elns)
			closeAll(clns)
			return "", nil, err
		}
		cln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			eln.Close()
			closeAll(elns)
			closeAll(clns)
			return "", nil, err
		}
		elns, clns = append(elns, eln), append(clns, cln)
	}

	peers := make(map[paxos.NodeID]string, 3)
	addrName := make(map[string]string, 3)
	for i, ln := range elns {
		peers[paxos.NodeID(i+1)] = ln.Addr().String()
		addrName[ln.Addr().String()] = fmt.Sprintf("elector-%d", i+1)
	}
	ectx, ecancel := context.WithTimeout(ctx, 45*time.Second)
	defer ecancel()
	type outcome struct {
		leader string
		err    error
	}
	results := make(chan outcome, 3)
	for i := 0; i < 3; i++ {
		i := i
		e, err := controller.NewElector(paxos.NodeID(i+1), peers, clns[i].Addr().String(), logf)
		if err != nil {
			closeAll(elns)
			closeAll(clns)
			return "", nil, err
		}
		e.SetDialTimeout(200 * time.Millisecond)
		e.SetSendTimeout(200 * time.Millisecond)
		me := fmt.Sprintf("elector-%d", i+1)
		e.SetDialer(func(addr string, timeout time.Duration) (net.Conn, error) {
			return enet.Dial(me, addrName[addr], addr, timeout)
		})
		go func() {
			leader, err := e.Run(ectx, elns[i])
			results <- outcome{leader, err}
		}()
	}
	var leaders []string
	for i := 0; i < 3; i++ {
		r := <-results
		if r.err != nil {
			closeAll(clns)
			return "", nil, fmt.Errorf("soak: election: %w", r.err)
		}
		leaders = append(leaders, r.leader)
	}
	if leaders[0] != leaders[1] || leaders[1] != leaders[2] {
		closeAll(clns)
		return "", nil, fmt.Errorf("soak: split brain: replicas elected %v", leaders)
	}
	var winner net.Listener
	for _, ln := range clns {
		if ln.Addr().String() == leaders[0] {
			winner = ln
		} else {
			ln.Close()
		}
	}
	if winner == nil {
		return "", nil, fmt.Errorf("soak: leader %q is not a replica address", leaders[0])
	}
	return leaders[0], winner, nil
}

// demandPlans builds the seeded submission plan. Each demand carries a
// unique bandwidth, which is what lets a retrying client recognize its
// own earlier submission in a status reply after a lost ack.
func demandPlans(n *topo.Network, inj *chaos.Injector, count int) []DemandPlan {
	var plans []DemandPlan
	for i := 0; i < count; i++ {
		src := inj.Intn("soak/src", uint64(i), n.NumNodes())
		dst := inj.Intn("soak/dst", uint64(i), n.NumNodes()-1)
		if dst >= src {
			dst++ // skip self, still uniform over the others
		}
		plans = append(plans, DemandPlan{
			Src: n.NodeName(topo.NodeID(src)), Dst: n.NodeName(topo.NodeID(dst)),
			Bandwidth: 40 + 7*float64(i), Target: 0.999,
		})
	}
	return plans
}

// pickLinks selects count distinct links by seeded draws.
func pickLinks(n *topo.Network, inj *chaos.Injector, count int) []topo.Link {
	seen := make(map[int]bool)
	var out []topo.Link
	for k := uint64(0); len(out) < count; k++ {
		i := inj.Intn("soak/link", k, n.NumLinks())
		if seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, n.Links()[i])
	}
	return out
}

// linkEventPlan builds the failure choreography over four links A-D:
// two overlapping-failure episodes. Each episode's first failure is a
// single-link down (a precomputed-backup hit); the second makes the
// down set two links deep — beyond the backup depth — forcing the
// ladder past its first rung. The second episode's miss lands on the
// gated solver, forcing the greedy floor.
func linkEventPlan(n *topo.Network, links []topo.Link) []LinkEventPlan {
	name := func(l topo.Link, up bool) LinkEventPlan {
		return LinkEventPlan{Src: n.NodeName(l.Src), Dst: n.NodeName(l.Dst), Up: up}
	}
	a, b, c, d := links[0], links[1], links[2], links[3]
	return []LinkEventPlan{
		name(a, false), // backup hit
		name(b, false), // miss -> budgeted optimal (gate idx 0 passes)
		name(b, true),
		name(a, true),
		name(c, false), // backup hit
		name(d, false), // miss -> gate idx 1 denies -> greedy floor
		name(d, true),
		name(c, true),
	}
}

// chaosClient is a serial client over the lossy wire: any transport
// error drops the connection and the next call redials.
type chaosClient struct {
	net   *chaos.Net
	addr  string
	codec wire.Codec
	conn  *wire.Conn
	seq   uint64
	sheds int64
}

func (cl *chaosClient) ensure() error {
	if cl.conn != nil {
		return nil
	}
	nc, err := cl.net.Dial("client", "controller", cl.addr, 2*time.Second)
	if err != nil {
		return err
	}
	c := wire.New(nc)
	if err := c.Send(&wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Role: "client", Codec: cl.codec}}); err != nil {
		c.Close()
		return err
	}
	cl.conn = c
	return nil
}

func (cl *chaosClient) drop() {
	if cl.conn != nil {
		cl.conn.Close()
		cl.conn = nil
	}
}

// roundTrip sends one request and reads its reply. The chaos drop
// fault closes the connection before any byte is written, so a
// transport error here means the controller never saw the request —
// except for a lost reply after a landed request, which the callers'
// dedup/idempotency logic covers.
func (cl *chaosClient) roundTrip(m *wire.Message) (*wire.Message, error) {
	if err := cl.ensure(); err != nil {
		return nil, err
	}
	cl.seq++
	m.Seq = cl.seq
	if err := cl.conn.Send(m); err != nil {
		cl.drop()
		return nil, err
	}
	cl.conn.SetDeadline(time.Now().Add(10 * time.Second))
	r, err := cl.conn.Recv()
	if err != nil {
		cl.drop()
		return nil, err
	}
	cl.conn.SetDeadline(time.Time{})
	return r, nil
}

// cleanConn is a fault-free control connection (status queries and
// dedup lookups must not themselves be subject to chaos).
type cleanConn struct {
	conn  *wire.Conn
	seq   uint64
	sheds int64
}

func dialClean(addr, role, dc string, codec wire.Codec) (*cleanConn, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := c.Send(&wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Role: role, DC: dc, Codec: codec}}); err != nil {
		c.Close()
		return nil, err
	}
	return &cleanConn{conn: c}, nil
}

func (cc *cleanConn) roundTrip(m *wire.Message) (*wire.Message, error) {
	cc.seq++
	m.Seq = cc.seq
	if err := cc.conn.Send(m); err != nil {
		return nil, err
	}
	cc.conn.SetDeadline(time.Now().Add(10 * time.Second))
	defer cc.conn.SetDeadline(time.Time{})
	return cc.conn.Recv()
}

func (cc *cleanConn) Close() { cc.conn.Close() }

// statusWithRetry polls status, honoring retry-after sheds: the clean
// connection is still a client-role session, so its status polls are
// sheddable by the injected admission budget.
func (cc *cleanConn) statusWithRetry() (*wire.Message, error) {
	for attempt := 0; attempt < 8; attempt++ {
		r, err := cc.roundTrip(&wire.Message{Type: wire.TypeStatus})
		if err != nil {
			return nil, err
		}
		if r.Type == wire.TypeRetryAfter {
			cc.sheds++
			sleepHint(r.RetryAfter)
			continue
		}
		return r, nil
	}
	return nil, fmt.Errorf("soak: status shed on every attempt")
}

// submitWithRetry pushes one demand through the lossy client. Before
// every retry it checks, over the clean connection, whether an earlier
// attempt actually landed (recognized by the demand's unique
// bandwidth) — the no-acked-admission-lost, no-double-admission rule.
func submitWithRetry(cl *chaosClient, clean *cleanConn, p DemandPlan) (int, bool, error) {
	for attempt := 0; attempt < 60; attempt++ {
		if attempt > 0 {
			if id, ok := findByBandwidth(clean, p.Bandwidth); ok {
				return id, true, nil
			}
		}
		r, err := cl.roundTrip(&wire.Message{Type: wire.TypeSubmit, Submit: &wire.Submit{
			Src: p.Src, Dst: p.Dst, Bandwidth: p.Bandwidth, Target: p.Target,
			Charge: p.Bandwidth, RefundFrac: 0.5,
		}})
		if err != nil {
			continue
		}
		if r.Type == wire.TypeRetryAfter {
			// Shed before dispatch: the controller holds no book entry,
			// so a plain resend cannot double-admit. The admission budget
			// never sheds twice in a row, so the retry gets through.
			cl.sheds++
			sleepHint(r.RetryAfter)
			continue
		}
		if r.Type != wire.TypeAdmitResult || r.AdmitResult == nil {
			continue
		}
		if !r.AdmitResult.Admitted {
			return 0, false, nil
		}
		return r.AdmitResult.DemandID, true, nil
	}
	return 0, false, fmt.Errorf("soak: submit %s->%s never got through", p.Src, p.Dst)
}

func findByBandwidth(clean *cleanConn, bw float64) (int, bool) {
	r, err := clean.statusWithRetry()
	if err != nil || r.Status == nil {
		return 0, false
	}
	for _, d := range r.Status.Demands {
		if d.Bandwidth == bw {
			return d.DemandID, true
		}
	}
	return 0, false
}

// withdrawWithRetry retries until the Pong ack arrives; withdrawal is
// idempotent on the controller, so a retry after a lost ack is safe.
func withdrawWithRetry(cl *chaosClient, id int) error {
	for attempt := 0; attempt < 60; attempt++ {
		r, err := cl.roundTrip(&wire.Message{Type: wire.TypeWithdraw, WithdrawID: id})
		if err != nil {
			continue
		}
		if r.Type == wire.TypePong {
			return nil
		}
		if r.Type == wire.TypeRetryAfter {
			// Withdrawals are critical-priority, so the gate never sheds
			// them by injection; this only fires under genuine pressure
			// (never in the soak config, which has ample slots).
			cl.sheds++
			sleepHint(r.RetryAfter)
		}
	}
	return fmt.Errorf("soak: withdraw %d never acked", id)
}

// sleepHint honors a retry-after hint, defaulting to 20ms and capping
// at 200ms so a hostile hint cannot stall the soak.
func sleepHint(ra *wire.RetryAfter) {
	d := 20 * time.Millisecond
	if ra != nil && ra.RetryAfterMs > 0 {
		d = time.Duration(ra.RetryAfterMs) * time.Millisecond
	}
	if d > 200*time.Millisecond {
		d = 200 * time.Millisecond
	}
	time.Sleep(d)
}

// monitor is a clean broker-role session used to report link events,
// with ping/pong as a processing barrier: when the pong for a given
// seq arrives, every earlier message on the session — link events
// included — has been handled by the controller.
type monitor struct {
	conn  *wire.Conn
	seq   uint64
	pongs chan uint64
}

func newMonitor(addr string, codec wire.Codec) (*monitor, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := c.Send(&wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Role: "broker", DC: "DC3", Codec: codec}}); err != nil {
		c.Close()
		return nil, err
	}
	m := &monitor{conn: c, pongs: make(chan uint64, 16)}
	go func() {
		for {
			msg, err := c.Recv()
			if err != nil {
				close(m.pongs)
				return
			}
			if msg.Type == wire.TypePong {
				m.pongs <- msg.Seq
			}
			// Alloc pushes to this pseudo-broker are observed and dropped.
		}
	}()
	return m, nil
}

func (m *monitor) linkEvent(ev LinkEventPlan) error {
	if err := m.conn.Send(&wire.Message{Type: wire.TypeLinkEvent, LinkEvent: &wire.LinkEvent{
		SrcDC: ev.Src, DstDC: ev.Dst, Up: ev.Up,
	}}); err != nil {
		return err
	}
	return m.barrier()
}

func (m *monitor) barrier() error {
	m.seq++
	want := m.seq
	if err := m.conn.Send(&wire.Message{Type: wire.TypePing, Seq: want}); err != nil {
		return err
	}
	deadline := time.After(20 * time.Second)
	for {
		select {
		case seq, ok := <-m.pongs:
			if !ok {
				return fmt.Errorf("soak: monitor session died before pong %d", want)
			}
			if seq == want {
				return nil
			}
		case <-deadline:
			return fmt.Errorf("soak: barrier %d timed out", want)
		}
	}
}

func (m *monitor) close() { m.conn.Close() }

func firstN(xs []int, n int) []int {
	if len(xs) < n {
		n = len(xs)
	}
	return xs[:n]
}

func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

func writeJSON(path string, v interface{}) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
