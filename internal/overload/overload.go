// Package overload is the controller's admission-control layer for
// its *own* request path: a priority-aware bounded queue in front of
// a concurrency limiter, so a flash crowd degrades the cheapest
// requests first instead of everyone at once.
//
// Three mechanisms compose:
//
//   - a concurrency limiter with an adaptive (AIMD) ceiling driven by
//     observed request latency: when handling slows past the target,
//     the ceiling shrinks multiplicatively; when it recovers, the
//     ceiling creeps back up additively;
//   - a bounded wait queue with CoDel-style sojourn shedding: a
//     request that cannot start within its queue deadline (or the
//     client's own request deadline, whichever is tighter) is shed
//     with an explicit retry-after hint instead of timing out
//     silently. When the queue is full, the lowest-priority newest
//     waiter is evicted first — withdraw/link-event > submit >
//     status, mirroring how the PR-4 recovery ladder degrades solve
//     quality rather than deadline;
//   - per-client token buckets, so one chatty client cannot starve
//     the rest even below the global ceiling.
//
// Every shed is explicit: the caller turns the Decision into a
// TypeRetryAfter frame, never a dropped request.
package overload

import (
	"fmt"
	"sync"
	"time"

	"bate/internal/metrics"
)

// Priority orders request classes; numerically lower is more
// critical. Shedding always starts from the numerically highest
// (cheapest) class present.
type Priority int8

const (
	// PCritical: withdrawals and link events. Dropping a withdrawal
	// leaks booked bandwidth; dropping a link event delays recovery.
	PCritical Priority = iota
	// PSubmit: new demand submissions. Shedding one costs a customer,
	// not correctness.
	PSubmit
	// PStatus: status polls. Pure observability; first against the
	// wall, and servable from a snapshot when shed.
	PStatus

	numPriorities
)

// String names the priority for flags and reports.
func (p Priority) String() string {
	switch p {
	case PCritical:
		return "critical"
	case PSubmit:
		return "submit"
	case PStatus:
		return "status"
	}
	return fmt.Sprintf("priority-%d", int(p))
}

// ParsePriority parses a -shed-priority flag value.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "critical", "withdraw":
		return PCritical, nil
	case "submit":
		return PSubmit, nil
	case "status":
		return PStatus, nil
	}
	return PSubmit, fmt.Errorf("overload: unknown priority %q (want critical, submit or status)", s)
}

// Options configures a Gate. The zero value of any field selects its
// default.
type Options struct {
	// MaxInflight is the initial concurrency ceiling (default 64).
	MaxInflight int
	// MinInflight is the adaptive floor (default 1).
	MinInflight int
	// MaxCeiling caps adaptive growth (default 4x MaxInflight).
	MaxCeiling int
	// QueueBound is the maximum number of sheddable waiters queued
	// across all priorities (default 4x MaxInflight). Unsheddable
	// priorities bypass the bound: there are at most a handful of
	// critical requests per connection in flight.
	QueueBound int
	// QueueTimeout is the CoDel-style sojourn bound: a request still
	// queued after this long is shed (default 100ms).
	QueueTimeout time.Duration
	// LatencyTarget drives the AIMD ceiling: when the EWMA of request
	// latency exceeds it, the ceiling decreases multiplicatively;
	// otherwise it increases additively (default 50ms; negative
	// disables adaptation).
	LatencyTarget time.Duration
	// AdjustEvery is how many releases pass between AIMD adjustments
	// (default 16).
	AdjustEvery int
	// ShedPriority is the most critical class the gate may shed;
	// classes numerically below it are never shed, only queued
	// (default PSubmit: submits and status polls are sheddable).
	// PCritical (withdrawals, link events) is never sheddable: the
	// zero value and anything below PSubmit clamp up to PSubmit.
	ShedPriority Priority
	// RatePerClient is the per-client token-bucket refill rate in
	// requests/sec (default 0 = unlimited).
	RatePerClient float64
	// BurstPerClient is the bucket depth (default 2x RatePerClient).
	BurstPerClient float64
	// RetryAfterBase scales the retry-after hint handed to shed
	// clients; the hint grows with queue pressure (default 50ms).
	RetryAfterBase time.Duration
	// ShedGate, when non-nil, is consulted on every sheddable acquire
	// and forces a shed when it returns true. The chaos admission
	// front hooks in here so shedding decisions replay
	// deterministically from a seed.
	ShedGate func(p Priority) bool
	// Clock overrides time.Now for tests (nil = time.Now).
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	if o.MinInflight <= 0 {
		o.MinInflight = 1
	}
	if o.MaxCeiling <= 0 {
		o.MaxCeiling = 4 * o.MaxInflight
	}
	if o.QueueBound <= 0 {
		o.QueueBound = 4 * o.MaxInflight
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 100 * time.Millisecond
	}
	if o.LatencyTarget == 0 {
		o.LatencyTarget = 50 * time.Millisecond
	}
	if o.AdjustEvery <= 0 {
		o.AdjustEvery = 16
	}
	if o.ShedPriority < PSubmit {
		o.ShedPriority = PSubmit
	}
	if o.ShedPriority >= numPriorities {
		o.ShedPriority = numPriorities - 1
	}
	if o.BurstPerClient <= 0 {
		o.BurstPerClient = 2 * o.RatePerClient
	}
	if o.BurstPerClient < 1 {
		// A bucket that can never hold one whole token denies its
		// client forever; any configured rate must let single
		// requests through eventually.
		o.BurstPerClient = 1
	}
	if o.RetryAfterBase <= 0 {
		o.RetryAfterBase = 50 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Shed reasons, surfaced in Decision.Reason and the retry-after frame.
const (
	ReasonQueueFull  = "queue-full"
	ReasonQueueDelay = "queue-timeout"
	ReasonDeadline   = "deadline"
	ReasonRateLimit  = "rate-limit"
	ReasonInjected   = "injected"
	ReasonGateClosed = "gate-closed"
)

// Decision is the outcome of one Acquire. When OK, the caller runs
// the request and must call Release with the observed latency; when
// shed, RetryAfterMs and Reason describe the explicit reject the
// caller owes the client.
type Decision struct {
	OK           bool
	RetryAfterMs int64
	Reason       string
}

var (
	mAdmitted   = metrics.NewCounter("overload.admitted")
	mShedTotal  = metrics.NewCounter("overload.shed_total")
	mShedByPrio = [numPriorities]*metrics.Counter{
		metrics.NewCounter("overload.shed_critical"),
		metrics.NewCounter("overload.shed_submit"),
		metrics.NewCounter("overload.shed_status"),
	}
	mQueueTimeouts = metrics.NewCounter("overload.queue_timeouts")
	mRateLimited   = metrics.NewCounter("overload.rate_limited")
	mEvictions     = metrics.NewCounter("overload.queue_evictions")
	mLimitRaises   = metrics.NewCounter("overload.limit_raises")
	mLimitDrops    = metrics.NewCounter("overload.limit_drops")
	mInflightPeak  = metrics.NewMaxGauge("overload.inflight_peak")
	mQueuePeak     = metrics.NewMaxGauge("overload.queue_peak")
)

// waiter is one queued request.
type waiter struct {
	prio    Priority
	enq     time.Time
	granted chan Decision // buffered(1); receives exactly one decision
	done    bool          // granted or shed; guarded by Gate.mu
}

// Counters is a point-in-time snapshot of one gate's own tallies
// (distinct from the process-wide metrics registry, so a harness can
// difference two phases of the same process).
type Counters struct {
	Admitted   int64
	ShedByPrio [int(numPriorities)]int64
	Evictions  int64
	RateLimit  int64
	Timeouts   int64
	Limit      int
}

// Gate is the admission gate. All methods are safe for concurrent
// use.
type Gate struct {
	opts Options

	mu       sync.Mutex
	inflight int
	limit    float64
	queues   [numPriorities][]*waiter
	queued   int // sheddable waiters only (bound enforcement)
	ewmaMs   float64
	releases int
	lastShed time.Time
	closed   bool

	buckets *buckets

	counters Counters
}

// NewGate builds a gate from options.
func NewGate(opts Options) *Gate {
	o := opts.withDefaults()
	g := &Gate{opts: o, limit: float64(o.MaxInflight)}
	if o.RatePerClient > 0 {
		g.buckets = newBuckets(o.RatePerClient, o.BurstPerClient, o.Clock)
	}
	return g
}

// Limit reports the current adaptive concurrency ceiling.
func (g *Gate) Limit() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return int(g.limit)
}

// Snapshot returns the gate's own counters.
func (g *Gate) Snapshot() Counters {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.counters
	c.Limit = int(g.limit)
	return c
}

// Overloaded reports whether the gate is saturated right now:
// requests are queued, or the inflight count has reached the ceiling.
// The controller keys its graceful degradations off this — status
// from snapshot, submit coalescing, deferred reschedules.
func (g *Gate) Overloaded() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queued > 0 || g.inflight >= int(g.limit)
}

// Close sheds every queued waiter and makes further Acquires shed
// immediately. Used on controller shutdown so no session blocks the
// drain.
func (g *Gate) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closed = true
	for p := range g.queues {
		for _, w := range g.queues[p] {
			if !w.done {
				w.done = true
				w.granted <- Decision{OK: false, RetryAfterMs: g.retryAfterLocked(), Reason: ReasonGateClosed}
			}
		}
		g.queues[p] = nil
	}
	g.queued = 0
}

// shed records one shed decision for priority p.
func (g *Gate) shedLocked(p Priority, reason string) Decision {
	g.lastShed = g.opts.Clock()
	g.counters.ShedByPrio[p]++
	mShedTotal.Inc()
	if int(p) < len(mShedByPrio) {
		mShedByPrio[p].Inc()
	}
	return Decision{OK: false, RetryAfterMs: g.retryAfterLocked(), Reason: reason}
}

// retryAfterLocked derives the backoff hint from queue pressure: the
// deeper the queue relative to the ceiling, the longer clients should
// stay away. Deterministic — clients add their own jitter.
func (g *Gate) retryAfterLocked() int64 {
	base := g.opts.RetryAfterBase.Milliseconds()
	lim := g.limit
	if lim < 1 {
		lim = 1
	}
	ms := base * (1 + int64(float64(g.queued)/lim))
	if max := int64(2000); ms > max {
		ms = max
	}
	return ms
}

// Acquire asks for one execution slot. client keys the per-client
// rate limit ("" skips it); deadline is the client's own request
// budget (0 = none), which tightens the queue-sojourn bound. The
// call blocks at most min(QueueTimeout, deadline).
func (g *Gate) Acquire(client string, p Priority, deadline time.Duration) Decision {
	if p < 0 {
		p = 0
	}
	if p >= numPriorities {
		p = numPriorities - 1
	}
	sheddable := p >= g.opts.ShedPriority

	g.mu.Lock()
	if g.closed {
		d := g.shedLocked(p, ReasonGateClosed)
		g.mu.Unlock()
		return d
	}
	if sheddable {
		if g.buckets != nil && client != "" && !g.buckets.allow(client) {
			g.counters.RateLimit++
			mRateLimited.Inc()
			d := g.shedLocked(p, ReasonRateLimit)
			g.mu.Unlock()
			return d
		}
		if g.opts.ShedGate != nil && g.opts.ShedGate(p) {
			d := g.shedLocked(p, ReasonInjected)
			g.mu.Unlock()
			return d
		}
	}
	// Fast path: a free slot and nobody more critical waiting.
	if g.inflight < int(g.limit) && !g.waitersAheadLocked(p) {
		g.inflight++
		g.counters.Admitted++
		mAdmitted.Inc()
		mInflightPeak.Observe(int64(g.inflight))
		g.mu.Unlock()
		return Decision{OK: true}
	}
	// Queue bound: sheddable waiters compete for QueueBound places;
	// an incoming request evicts the newest waiter of the cheapest
	// class strictly below its own priority, or is shed itself.
	if sheddable && g.queued >= g.opts.QueueBound {
		if !g.evictCheaperLocked(p) {
			d := g.shedLocked(p, ReasonQueueFull)
			g.mu.Unlock()
			return d
		}
	}
	w := &waiter{prio: p, enq: g.opts.Clock(), granted: make(chan Decision, 1)}
	g.queues[p] = append(g.queues[p], w)
	if sheddable {
		g.queued++
		mQueuePeak.Observe(int64(g.queued))
	}
	g.mu.Unlock()

	wait := g.opts.QueueTimeout
	reason := ReasonQueueDelay
	if deadline > 0 && deadline < wait {
		wait = deadline
		reason = ReasonDeadline
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case d := <-w.granted:
		return d
	case <-timer.C:
	}
	// Sojourn bound hit; race the grant under the lock.
	g.mu.Lock()
	if w.done {
		// A grant (or eviction) landed between timer fire and lock.
		g.mu.Unlock()
		return <-w.granted
	}
	g.removeLocked(w)
	g.counters.Timeouts++
	mQueueTimeouts.Inc()
	d := g.shedLocked(p, reason)
	g.mu.Unlock()
	return d
}

// waitersAheadLocked reports whether any waiter of priority <= p is
// queued (strict priority: never overtake a peer or better).
func (g *Gate) waitersAheadLocked(p Priority) bool {
	for q := Priority(0); q <= p; q++ {
		if len(g.queues[q]) > 0 {
			return true
		}
	}
	return false
}

// evictCheaperLocked sheds the newest waiter of the numerically
// highest class strictly above p, freeing one queue place. Reports
// whether anything was evicted.
func (g *Gate) evictCheaperLocked(p Priority) bool {
	for q := numPriorities - 1; q > p; q-- {
		qs := g.queues[q]
		if len(qs) == 0 {
			continue
		}
		w := qs[len(qs)-1]
		g.queues[q] = qs[:len(qs)-1]
		w.done = true
		g.queued--
		g.counters.Evictions++
		mEvictions.Inc()
		w.granted <- g.shedLocked(q, ReasonQueueFull)
		return true
	}
	return false
}

// removeLocked deletes w from its queue (timeout path).
func (g *Gate) removeLocked(w *waiter) {
	qs := g.queues[w.prio]
	for i, x := range qs {
		if x == w {
			g.queues[w.prio] = append(qs[:i], qs[i+1:]...)
			break
		}
	}
	w.done = true
	if w.prio >= g.opts.ShedPriority {
		g.queued--
	}
}

// Release returns a slot, feeds the AIMD controller with the
// observed request latency, and hands freed slots to waiters in
// strict priority order (oldest first within a class).
func (g *Gate) Release(latency time.Duration) {
	g.mu.Lock()
	if g.inflight > 0 {
		g.inflight--
	}
	g.adjustLocked(latency)
	for g.inflight < int(g.limit) {
		w := g.popLocked()
		if w == nil {
			break
		}
		g.inflight++
		g.counters.Admitted++
		mAdmitted.Inc()
		mInflightPeak.Observe(int64(g.inflight))
		w.granted <- Decision{OK: true}
	}
	g.mu.Unlock()
}

// popLocked takes the oldest waiter of the most critical non-empty
// class.
func (g *Gate) popLocked() *waiter {
	for p := Priority(0); p < numPriorities; p++ {
		if len(g.queues[p]) == 0 {
			continue
		}
		w := g.queues[p][0]
		g.queues[p] = g.queues[p][1:]
		w.done = true
		if p >= g.opts.ShedPriority {
			g.queued--
		}
		return w
	}
	return nil
}

// adjustLocked runs the AIMD step: EWMA the latency, and every
// AdjustEvery releases compare it against the target — over it,
// multiplicative decrease; under it, additive increase.
func (g *Gate) adjustLocked(latency time.Duration) {
	if g.opts.LatencyTarget < 0 {
		return
	}
	ms := float64(latency.Microseconds()) / 1000
	const alpha = 0.2
	if g.ewmaMs == 0 {
		g.ewmaMs = ms
	} else {
		g.ewmaMs = (1-alpha)*g.ewmaMs + alpha*ms
	}
	g.releases++
	if g.releases < g.opts.AdjustEvery {
		return
	}
	g.releases = 0
	target := float64(g.opts.LatencyTarget.Microseconds()) / 1000
	switch {
	case g.ewmaMs > target:
		g.limit *= 0.85
		if g.limit < float64(g.opts.MinInflight) {
			g.limit = float64(g.opts.MinInflight)
		}
		mLimitDrops.Inc()
	default:
		g.limit++
		if g.limit > float64(g.opts.MaxCeiling) {
			g.limit = float64(g.opts.MaxCeiling)
		}
		mLimitRaises.Inc()
	}
}
