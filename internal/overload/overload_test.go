package overload

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for bucket/stamp tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func TestAcquireReleaseFastPath(t *testing.T) {
	g := NewGate(Options{MaxInflight: 2})
	d1 := g.Acquire("a", PSubmit, 0)
	d2 := g.Acquire("b", PSubmit, 0)
	if !d1.OK || !d2.OK {
		t.Fatalf("expected both admitted: %+v %+v", d1, d2)
	}
	if !g.Overloaded() {
		t.Fatal("at the ceiling the gate should report overloaded")
	}
	g.Release(time.Millisecond)
	g.Release(time.Millisecond)
	if g.Overloaded() {
		t.Fatal("idle gate should not report overloaded")
	}
	c := g.Snapshot()
	if c.Admitted != 2 {
		t.Fatalf("admitted = %d, want 2", c.Admitted)
	}
}

func TestPriorityOrderOnRelease(t *testing.T) {
	g := NewGate(Options{MaxInflight: 1, QueueTimeout: 5 * time.Second, LatencyTarget: -1})
	if d := g.Acquire("a", PSubmit, 0); !d.OK {
		t.Fatalf("first acquire shed: %+v", d)
	}
	order := make(chan Priority, 2)
	var wg sync.WaitGroup
	start := func(p Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if d := g.Acquire("b", p, 0); d.OK {
				order <- p
				g.Release(time.Millisecond)
			}
		}()
	}
	start(PStatus)
	// Let the status waiter enqueue first, then the critical one.
	waitQueued(t, g, 1)
	start(PCritical)
	waitQueued(t, g, 2)
	g.Release(time.Millisecond)
	wg.Wait()
	if first := <-order; first != PCritical {
		t.Fatalf("first granted priority = %v, want critical", first)
	}
}

// waitQueued blocks until n waiters (any priority) are queued.
func waitQueued(t *testing.T, g *Gate, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		g.mu.Lock()
		total := 0
		for p := range g.queues {
			total += len(g.queues[p])
		}
		g.mu.Unlock()
		if total >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("never saw %d queued waiters", n)
}

func TestQueueFullShedsLowestPriorityFirst(t *testing.T) {
	g := NewGate(Options{MaxInflight: 1, QueueBound: 1, QueueTimeout: 5 * time.Second, LatencyTarget: -1})
	if d := g.Acquire("a", PSubmit, 0); !d.OK {
		t.Fatal("first acquire shed")
	}
	// One status waiter fills the queue.
	statusDone := make(chan Decision, 1)
	go func() { statusDone <- g.Acquire("b", PStatus, 0) }()
	waitQueued(t, g, 1)
	// An incoming submit evicts the queued status waiter rather than
	// being shed itself.
	submitDone := make(chan Decision, 1)
	go func() { submitDone <- g.Acquire("c", PSubmit, 0) }()
	evicted := <-statusDone
	if evicted.OK {
		t.Fatal("status waiter should have been evicted")
	}
	if evicted.Reason != ReasonQueueFull {
		t.Fatalf("eviction reason = %q, want %q", evicted.Reason, ReasonQueueFull)
	}
	if evicted.RetryAfterMs <= 0 {
		t.Fatal("eviction must carry a retry-after hint")
	}
	// Now a second status poll finds the queue full of its own class
	// and is shed directly.
	if d := g.Acquire("d", PStatus, 0); d.OK || d.Reason != ReasonQueueFull {
		t.Fatalf("expected queue-full shed for status, got %+v", d)
	}
	g.Release(time.Millisecond)
	if d := <-submitDone; !d.OK {
		t.Fatalf("queued submit should have been granted, got %+v", d)
	}
	c := g.Snapshot()
	if c.ShedByPrio[PCritical] != 0 {
		t.Fatalf("critical sheds = %d, want 0", c.ShedByPrio[PCritical])
	}
	if c.ShedByPrio[PStatus] != 2 {
		t.Fatalf("status sheds = %d, want 2 (one eviction, one direct)", c.ShedByPrio[PStatus])
	}
}

func TestCriticalNeverShed(t *testing.T) {
	g := NewGate(Options{MaxInflight: 1, QueueBound: 1, QueueTimeout: 5 * time.Second, LatencyTarget: -1})
	if d := g.Acquire("a", PSubmit, 0); !d.OK {
		t.Fatal("first acquire shed")
	}
	// Fill the sheddable queue.
	go g.Acquire("b", PStatus, 0)
	waitQueued(t, g, 1)
	// Critical requests bypass the bound and the rate limiter: they
	// queue regardless.
	done := make(chan Decision, 1)
	go func() { done <- g.Acquire("c", PCritical, 0) }()
	waitQueued(t, g, 2)
	g.Release(time.Millisecond)
	if d := <-done; !d.OK {
		t.Fatalf("critical request was shed: %+v", d)
	}
	g.Release(time.Millisecond)
}

func TestQueueTimeoutSheds(t *testing.T) {
	g := NewGate(Options{MaxInflight: 1, QueueTimeout: 20 * time.Millisecond, LatencyTarget: -1})
	if d := g.Acquire("a", PSubmit, 0); !d.OK {
		t.Fatal("first acquire shed")
	}
	d := g.Acquire("b", PSubmit, 0) // blocks ~20ms, then shed
	if d.OK {
		t.Fatal("expected sojourn-bound shed")
	}
	if d.Reason != ReasonQueueDelay {
		t.Fatalf("reason = %q, want %q", d.Reason, ReasonQueueDelay)
	}
	if g.Snapshot().Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", g.Snapshot().Timeouts)
	}
}

func TestClientDeadlineTightensSojourn(t *testing.T) {
	g := NewGate(Options{MaxInflight: 1, QueueTimeout: 5 * time.Second, LatencyTarget: -1})
	if d := g.Acquire("a", PSubmit, 0); !d.OK {
		t.Fatal("first acquire shed")
	}
	t0 := time.Now()
	d := g.Acquire("b", PSubmit, 15*time.Millisecond)
	if d.OK {
		t.Fatal("expected deadline shed")
	}
	if d.Reason != ReasonDeadline {
		t.Fatalf("reason = %q, want %q", d.Reason, ReasonDeadline)
	}
	if waited := time.Since(t0); waited > time.Second {
		t.Fatalf("waited %v; the 15ms client deadline should bound the queue", waited)
	}
}

func TestAIMDCeilingAdapts(t *testing.T) {
	g := NewGate(Options{MaxInflight: 8, MinInflight: 1, LatencyTarget: 10 * time.Millisecond, AdjustEvery: 1})
	// Slow requests shrink the ceiling multiplicatively.
	for i := 0; i < 10; i++ {
		if d := g.Acquire("a", PSubmit, 0); d.OK {
			g.Release(100 * time.Millisecond)
		}
	}
	if lim := g.Limit(); lim >= 8 {
		t.Fatalf("limit = %d after sustained slow acks, want < 8", lim)
	}
	// Fast requests grow it back additively. The EWMA has to wash out
	// first, so this takes more rounds.
	for i := 0; i < 200; i++ {
		if d := g.Acquire("a", PSubmit, 0); d.OK {
			g.Release(time.Millisecond)
		}
	}
	if lim := g.Limit(); lim < 8 {
		t.Fatalf("limit = %d after recovery, want >= 8", lim)
	}
	if lim := g.Limit(); lim > 32 {
		t.Fatalf("limit = %d, want capped at MaxCeiling 32", lim)
	}
}

func TestPerClientRateLimit(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(Options{MaxInflight: 100, RatePerClient: 10, BurstPerClient: 2, Clock: clk.Now})
	for i := 0; i < 2; i++ {
		if d := g.Acquire("chatty", PSubmit, 0); !d.OK {
			t.Fatalf("burst acquire %d shed: %+v", i, d)
		}
		g.Release(time.Millisecond)
	}
	d := g.Acquire("chatty", PSubmit, 0)
	if d.OK || d.Reason != ReasonRateLimit {
		t.Fatalf("expected rate-limit shed, got %+v", d)
	}
	// A different client is unaffected.
	if d := g.Acquire("quiet", PSubmit, 0); !d.OK {
		t.Fatalf("other client shed: %+v", d)
	}
	g.Release(time.Millisecond)
	// Refill at 10/sec: 100ms buys one token back.
	clk.Advance(100 * time.Millisecond)
	if d := g.Acquire("chatty", PSubmit, 0); !d.OK {
		t.Fatalf("post-refill acquire shed: %+v", d)
	}
	g.Release(time.Millisecond)
	// Critical requests bypass the bucket entirely.
	if d := g.Acquire("chatty", PCritical, 0); !d.OK {
		t.Fatalf("critical should bypass rate limit: %+v", d)
	}
	g.Release(time.Millisecond)
}

// TestFractionalRateFirstRequestPasses pins the sub-1-req/s burst
// clamp: with rate 0.2 the defaulted burst (2x rate = 0.4) could
// never hold one whole token, denying every request forever. The
// burst floor of 1 lets a fresh client's first request through and
// the refill lets later ones through eventually.
func TestFractionalRateFirstRequestPasses(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(Options{MaxInflight: 100, RatePerClient: 0.2, Clock: clk.Now})
	if d := g.Acquire("fresh", PSubmit, 0); !d.OK {
		t.Fatalf("fresh client's first request shed: %+v", d)
	}
	g.Release(time.Millisecond)
	if d := g.Acquire("fresh", PSubmit, 0); d.OK || d.Reason != ReasonRateLimit {
		t.Fatalf("second immediate request should rate-limit, got %+v", d)
	}
	// 5 seconds at 0.2/sec refills one token.
	clk.Advance(5 * time.Second)
	if d := g.Acquire("fresh", PSubmit, 0); !d.OK {
		t.Fatalf("post-refill request shed: %+v", d)
	}
	g.Release(time.Millisecond)
}

func TestShedGateInjection(t *testing.T) {
	calls := 0
	g := NewGate(Options{MaxInflight: 4, ShedGate: func(p Priority) bool {
		calls++
		return calls%2 == 0 // shed every second sheddable acquire
	}})
	var shed, ok int
	for i := 0; i < 6; i++ {
		d := g.Acquire("a", PSubmit, 0)
		if d.OK {
			ok++
			g.Release(time.Millisecond)
		} else {
			if d.Reason != ReasonInjected {
				t.Fatalf("reason = %q, want %q", d.Reason, ReasonInjected)
			}
			shed++
		}
	}
	if ok != 3 || shed != 3 {
		t.Fatalf("ok=%d shed=%d, want 3/3", ok, shed)
	}
	// The gate never fires for unsheddable priorities.
	before := calls
	if d := g.Acquire("a", PCritical, 0); !d.OK {
		t.Fatal("critical shed by injection gate")
	}
	g.Release(time.Millisecond)
	if calls != before {
		t.Fatal("ShedGate consulted for a critical request")
	}
}

func TestCloseShedsWaiters(t *testing.T) {
	g := NewGate(Options{MaxInflight: 1, QueueTimeout: 5 * time.Second, LatencyTarget: -1})
	if d := g.Acquire("a", PSubmit, 0); !d.OK {
		t.Fatal("first acquire shed")
	}
	done := make(chan Decision, 1)
	go func() { done <- g.Acquire("b", PSubmit, 0) }()
	waitQueued(t, g, 1)
	g.Close()
	if d := <-done; d.OK || d.Reason != ReasonGateClosed {
		t.Fatalf("expected gate-closed shed, got %+v", d)
	}
	if d := g.Acquire("c", PSubmit, 0); d.OK {
		t.Fatal("closed gate admitted a request")
	}
}

func TestParsePriority(t *testing.T) {
	for in, want := range map[string]Priority{
		"critical": PCritical, "withdraw": PCritical,
		"submit": PSubmit, "status": PStatus,
	} {
		got, err := ParsePriority(in)
		if err != nil || got != want {
			t.Fatalf("ParsePriority(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePriority("bogus"); err == nil {
		t.Fatal("ParsePriority accepted garbage")
	}
}

// TestConcurrentChurn is a race-detector smoke: many goroutines
// acquiring at mixed priorities while the ceiling adapts.
func TestConcurrentChurn(t *testing.T) {
	g := NewGate(Options{MaxInflight: 4, QueueBound: 8, QueueTimeout: 10 * time.Millisecond, AdjustEvery: 4})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := Priority(i % int(numPriorities))
			for j := 0; j < 20; j++ {
				if d := g.Acquire("client", p, 0); d.OK {
					g.Release(time.Duration(j%3) * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	c := g.Snapshot()
	if c.Admitted == 0 {
		t.Fatal("nothing admitted under churn")
	}
}
