package overload

import (
	"time"
)

// buckets is a per-client token-bucket table. Access is guarded by
// the owning Gate's mutex, so the table itself is unsynchronized.
type buckets struct {
	rate  float64 // tokens per second
	burst float64
	clock func() time.Time
	m     map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxClients bounds the table so a flood of one-shot client
// addresses cannot balloon memory; past the bound the oldest-refilled
// entry is recycled.
const maxClients = 16384

func newBuckets(rate, burst float64, clock func() time.Time) *buckets {
	return &buckets{rate: rate, burst: burst, clock: clock, m: make(map[string]*bucket)}
}

// allow takes one token from key's bucket, refilling by elapsed time
// first. A brand-new client starts with a full burst.
func (t *buckets) allow(key string) bool {
	now := t.clock()
	b, ok := t.m[key]
	if !ok {
		if len(t.m) >= maxClients {
			t.evictOldest()
		}
		b = &bucket{tokens: t.burst, last: now}
		t.m[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * t.rate
		if b.tokens > t.burst {
			b.tokens = t.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictOldest drops the entry with the stalest refill time — the
// client least likely to still be connected.
func (t *buckets) evictOldest() {
	var (
		oldestKey string
		oldest    time.Time
		first     = true
	)
	for k, b := range t.m {
		if first || b.last.Before(oldest) {
			oldestKey, oldest, first = k, b.last, false
		}
	}
	if oldestKey != "" {
		delete(t.m, oldestKey)
	}
}
