package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if q := c.Quantile(0); q != 1 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := c.Quantile(1); q != 4 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	if pts := c.Points(5); len(pts) != 5 || pts[0][1] != 0 || pts[4][1] != 1 {
		t.Fatalf("Points = %v", pts)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || !math.IsNaN(c.Quantile(0.5)) || c.Points(3) != nil {
		t.Fatal("empty CDF misbehaves")
	}
}

// Property: At is monotone non-decreasing.
func TestCDFMonotone(t *testing.T) {
	f := func(samples []float64, a, b float64) bool {
		if len(samples) == 0 {
			return true
		}
		for i := range samples {
			if math.IsNaN(samples[i]) {
				samples[i] = 0
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c := NewCDF(samples)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStddev(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if s := Stddev([]float64{2, 2, 2}); s != 0 {
		t.Fatalf("Stddev = %v", s)
	}
	if s := Stddev([]float64{1, 3}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("Stddev = %v, want 1", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Stddev(nil)) {
		t.Fatal("empty stats should be NaN")
	}
}

func TestErrorBar(t *testing.T) {
	eb := NewErrorBar([]float64{1, 5, 3})
	if eb.Min != 1 || eb.Max != 5 || eb.Avg != 3 {
		t.Fatalf("ErrorBar = %+v", eb)
	}
	if !strings.Contains(eb.String(), "3.000") {
		t.Fatalf("String = %q", eb.String())
	}
	empty := NewErrorBar(nil)
	if !math.IsNaN(empty.Avg) {
		t.Fatal("empty error bar should be NaN")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowv("beta", 2.5)
	tb.AddRow("toolongcell")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // header, sep, 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[2], "alpha") {
		t.Fatalf("table malformed:\n%s", s)
	}
	if !strings.Contains(lines[3], "2.5") {
		t.Fatalf("AddRowv formatting:\n%s", s)
	}
}
