// Package metrics provides the small statistics helpers the
// experiment harness uses to report results the way the paper does:
// CDFs (Figs 1, 8, 11), min/avg/max error bars (§5.2 "the error bar
// paints the maximal, average and minimal value"), and fixed-width
// text tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)))
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Points samples the CDF at n evenly spaced probability levels,
// returning (value, probability) rows suitable for plotting a figure's
// curve.
func (c *CDF) Points(n int) [][2]float64 {
	if n < 2 || len(c.sorted) == 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		out = append(out, [2]float64{c.Quantile(q), q})
	}
	return out
}

// Mean returns the arithmetic mean of samples (NaN when empty).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Stddev returns the population standard deviation.
func Stddev(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	m := Mean(samples)
	sum := 0.0
	for _, v := range samples {
		sum += (v - m) * (v - m)
	}
	return math.Sqrt(sum / float64(len(samples)))
}

// ErrorBar is the min/avg/max triple the paper's error bars paint.
type ErrorBar struct {
	Min, Avg, Max float64
}

// NewErrorBar summarizes samples.
func NewErrorBar(samples []float64) ErrorBar {
	if len(samples) == 0 {
		return ErrorBar{Min: math.NaN(), Avg: math.NaN(), Max: math.NaN()}
	}
	eb := ErrorBar{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range samples {
		eb.Min = math.Min(eb.Min, v)
		eb.Max = math.Max(eb.Max, v)
	}
	eb.Avg = Mean(samples)
	return eb
}

// String formats as "avg [min, max]".
func (e ErrorBar) String() string {
	return fmt.Sprintf("%.3f [%.3f, %.3f]", e.Avg, e.Min, e.Max)
}

// Table renders fixed-width text tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped,
// missing cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowv appends a row of values formatted with %v (floats with %.3g).
func (t *Table) AddRowv(cells ...interface{}) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			parts[i] = fmt.Sprintf("%.4g", v)
		default:
			parts[i] = fmt.Sprint(c)
		}
	}
	t.AddRow(parts...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
