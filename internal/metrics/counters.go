package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. Counters are
// cheap enough for hot paths (a single atomic add) and safe for
// concurrent use; the parallel solve engine, the scenario class cache
// and the admission batcher all report through them.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registry name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative for gauge-style corrections, though
// counters are conventionally monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// MaxGauge tracks the maximum value ever observed (e.g. the
// high-water mark of concurrently busy pool workers).
type MaxGauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registry name.
func (g *MaxGauge) Name() string { return g.name }

// Observe records v if it exceeds the current maximum.
func (g *MaxGauge) Observe(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the maximum observed so far.
func (g *MaxGauge) Load() int64 { return g.v.Load() }

// registry holds every named counter and gauge created through
// NewCounter/NewMaxGauge so operators can snapshot the whole process.
var registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*MaxGauge
}

// NewCounter returns the process-wide counter with the given name,
// creating it on first use. Names are conventionally dotted paths,
// e.g. "scenario.class_cache.hits".
func NewCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.counters == nil {
		registry.counters = make(map[string]*Counter)
	}
	if c, ok := registry.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	registry.counters[name] = c
	return c
}

// NewMaxGauge returns the process-wide max gauge with the given name,
// creating it on first use.
func NewMaxGauge(name string) *MaxGauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.gauges == nil {
		registry.gauges = make(map[string]*MaxGauge)
	}
	if g, ok := registry.gauges[name]; ok {
		return g
	}
	g := &MaxGauge{name: name}
	registry.gauges[name] = g
	return g
}

// Snapshot returns the current value of every registered counter and
// gauge, keyed by name. The map is a copy; mutating it has no effect.
func Snapshot() map[string]int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]int64, len(registry.counters)+len(registry.gauges))
	for name, c := range registry.counters {
		out[name] = c.Load()
	}
	for name, g := range registry.gauges {
		out[name] = g.Load()
	}
	return out
}

// SnapshotNames returns the registered metric names in sorted order,
// for stable diagnostic output.
func SnapshotNames() []string {
	snap := Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
