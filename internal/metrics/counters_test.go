package metrics

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter("test.counter.basics")
	if c.Load() != 0 {
		t.Fatalf("fresh counter = %d", c.Load())
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
	if NewCounter("test.counter.basics") != c {
		t.Fatal("NewCounter did not return the registered instance")
	}
	if c.Name() != "test.counter.basics" {
		t.Fatalf("name %q", c.Name())
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter("test.counter.concurrent")
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 16000 {
		t.Fatalf("got %d, want 16000", got)
	}
}

func TestMaxGauge(t *testing.T) {
	g := NewMaxGauge("test.gauge.max")
	g.Observe(5)
	g.Observe(3)
	g.Observe(9)
	g.Observe(7)
	if got := g.Load(); got != 9 {
		t.Fatalf("got %d, want 9", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				g.Observe(int64(w*100 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := g.Load(); got != 799 {
		t.Fatalf("after concurrent observes: got %d, want 799", got)
	}
}

func TestSnapshot(t *testing.T) {
	NewCounter("test.snapshot.a").Add(7)
	NewMaxGauge("test.snapshot.b").Observe(3)
	snap := Snapshot()
	if snap["test.snapshot.a"] != 7 {
		t.Fatalf("snapshot a = %d", snap["test.snapshot.a"])
	}
	if snap["test.snapshot.b"] != 3 {
		t.Fatalf("snapshot b = %d", snap["test.snapshot.b"])
	}
	names := SnapshotNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}
