package lp

import "math"

// intTol is the integrality tolerance for branch & bound.
const intTol = 1e-6

// defaultMaxNodes bounds the branch & bound search.
const defaultMaxNodes = 200000

// solveMILP solves the problem honouring integral variables via
// depth-first branch & bound on the LP relaxation.
func (p *Problem) solveMILP() (*Solution, error) {
	return p.solveMILPOpts(Options{})
}

// (FirstIncumbent handling lives in solveMILPOpts: feasibility-style
// searches return the first integral solution instead of proving
// optimality.)

type bbNode struct {
	lo, hi []float64
	// warm is the parent relaxation's optimal basis; a child's LP
	// differs only in one variable bound, so the revised engine can
	// usually restore feasibility in a few dual pivots instead of a
	// cold two-phase solve.
	warm *Basis
}

func (p *Problem) solveMILPOpts(opts Options) (*Solution, error) {
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = defaultMaxNodes
	}
	ns := len(p.vars)
	rootLo := make([]float64, ns)
	rootHi := make([]float64, ns)
	for j, v := range p.vars {
		rootLo[j], rootHi[j] = v.lower, v.upper
	}

	// Internally minimize; flip the sign for maximization problems at
	// the comparison points (Solution.Objective is already sense-true
	// because solveLP computes c'x directly).
	sign := 1.0
	if p.maximize {
		sign = -1
	}

	var (
		incumbent    *Solution
		incumbentVal = math.Inf(1) // sign-adjusted (minimization view)
		nodes        int
		pivots       int
		anyFeasible  bool
		hitLimit     bool
	)
	eng := opts.Engine.resolve(opts.Warm)
	if eng == EngineBatch {
		// Branch & bound needs exact vertex solutions and warm-startable
		// bases; the first-order engine provides neither. Node
		// relaxations always use the revised simplex.
		eng = EngineRevised
	}
	nodeOpts := Options{Pivot: opts.Pivot, Engine: eng, Cancel: opts.Cancel}
	stack := []bbNode{{lo: rootLo, hi: rootHi, warm: opts.Warm}}
	for len(stack) > 0 {
		if nodes >= maxNodes {
			hitLimit = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		nodeOpts.Warm = nd.warm
		relax, err := p.solveLPWith(nd.lo, nd.hi, nodeOpts)
		pivots += relax.Iterations
		if err != nil {
			if relax.Status == Unbounded {
				// An unbounded relaxation at the root means the MILP is
				// unbounded (or the formulation is broken); deeper nodes
				// cannot be unbounded if the root was not.
				return &Solution{Status: Unbounded, Nodes: nodes, Iterations: pivots}, ErrUnbounded
			}
			if relax.Status == Aborted {
				// A deadline/budget abort is not an infeasible branch:
				// pruning here would silently return a wrong "optimal".
				// Surface the best incumbent so far as aborted.
				sol := &Solution{Status: Aborted, Nodes: nodes, Iterations: pivots}
				if incumbent != nil {
					sol.Objective = incumbent.Objective
					sol.values = incumbent.values
				}
				return sol, ErrAborted
			}
			continue // infeasible branch
		}
		bound := sign * relax.Objective
		if bound >= incumbentVal-1e-9 {
			continue // cannot improve
		}
		// Find the most fractional integral variable.
		branch := -1
		bestFrac := intTol
		for j, v := range p.vars {
			if !v.integral {
				continue
			}
			x := relax.values[j]
			f := math.Abs(x - math.Round(x))
			if f > bestFrac {
				bestFrac = f
				branch = j
			}
		}
		if branch < 0 {
			// Integral solution; round off tolerance noise.
			vals := append([]float64(nil), relax.values...)
			obj := 0.0
			for j, v := range p.vars {
				if v.integral {
					vals[j] = math.Round(vals[j])
				}
				obj += v.cost * vals[j]
			}
			anyFeasible = true
			if sign*obj < incumbentVal {
				incumbentVal = sign * obj
				incumbent = &Solution{Status: Optimal, Objective: obj, values: vals}
			}
			if opts.FirstIncumbent {
				break
			}
			continue
		}
		x := relax.values[branch]
		// Down branch: x <= floor; up branch: x >= ceil. Push down
		// last so it is explored first (DFS dives toward 0 first,
		// which empirically prunes well for BATE's accept/reject
		// binaries when maximizing acceptance).
		var childWarm *Basis
		if eng == EngineRevised && !opts.ColdStart {
			childWarm = relax.basis
		}
		up := bbNode{lo: append([]float64(nil), nd.lo...), hi: append([]float64(nil), nd.hi...), warm: childWarm}
		up.lo[branch] = math.Ceil(x - intTol)
		down := bbNode{lo: append([]float64(nil), nd.lo...), hi: append([]float64(nil), nd.hi...), warm: childWarm}
		down.hi[branch] = math.Floor(x + intTol)
		if p.maximize {
			// Explore the up branch first when maximizing: binaries in
			// BATE's MILPs reward being 1.
			stack = append(stack, down, up)
		} else {
			stack = append(stack, up, down)
		}
	}
	if incumbent == nil {
		st := Infeasible
		err := ErrInfeasible
		if hitLimit {
			st, err = IterLimit, ErrIterLimit
		}
		return &Solution{Status: st, Nodes: nodes, Iterations: pivots}, err
	}
	_ = anyFeasible
	incumbent.Nodes = nodes
	incumbent.Iterations = pivots
	if hitLimit {
		// Best-effort incumbent: report it but flag the limit.
		incumbent.Status = IterLimit
		return incumbent, ErrIterLimit
	}
	return incumbent, nil
}
