package lp

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// lcg is a tiny deterministic generator for test problem data.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / float64(1<<53)
}

// randomCoverLP builds a feasible, bounded covering-style LP: boxed
// nonnegative variables, GE rows with nonnegative coefficients and
// RHS set to a fraction of each row's maximum activity, plus a few LE
// budget rows. The shape resembles the scheduling LP (covering rows
// against capacity rows).
func randomCoverLP(nVars, nRows int, seed uint64) *Problem {
	r := lcg(seed)
	p := NewProblem()
	for j := 0; j < nVars; j++ {
		p.AddVariable(fmt.Sprintf("x%d", j), 0, 1+4*r.next(), 0.5+r.next())
	}
	for i := 0; i < nRows; i++ {
		var terms []Term
		maxAct := 0.0
		for j := 0; j < nVars; j++ {
			if r.next() < 0.3 {
				c := 0.5 + r.next()
				terms = append(terms, Term{Var: VarID(j), Coef: c})
				maxAct += c * p.vars[j].upper
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: VarID(i % nVars), Coef: 1})
			maxAct = p.vars[i%nVars].upper
		}
		p.AddConstraint(Constraint{Terms: terms, Op: GE, RHS: 0.3 * maxAct})
	}
	// A few loose LE budget rows keep some duals negative.
	for i := 0; i < nRows/10+1; i++ {
		var terms []Term
		for j := 0; j < nVars; j += 3 {
			terms = append(terms, Term{Var: VarID(j), Coef: 1})
		}
		ub := 0.0
		for _, t := range terms {
			ub += p.vars[t.Var].upper
		}
		p.AddConstraint(Constraint{Terms: terms, Op: LE, RHS: 0.9 * ub})
	}
	return p
}

func TestBatchMatchesRevisedObjective(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		p := randomCoverLP(40, 60, seed*0x9E3779B97F4A7C15)
		rsol, err := p.SolveOpts(Options{Engine: EngineRevised})
		if err != nil {
			t.Fatalf("seed %d: revised: %v", seed, err)
		}
		bsol, err := p.SolveOpts(Options{Engine: EngineBatch, BatchMinRows: 1})
		if err != nil {
			t.Fatalf("seed %d: batch: %v", seed, err)
		}
		tol := 1e-4 * (1 + math.Abs(rsol.Objective))
		if d := math.Abs(bsol.Objective - rsol.Objective); d > tol {
			t.Fatalf("seed %d: batch obj %.9g vs revised %.9g (diff %g > tol %g)",
				seed, bsol.Objective, rsol.Objective, d, tol)
		}
	}
}

func TestBatchSmallInstanceIdenticalToRevised(t *testing.T) {
	// Below the row threshold EngineBatch must be the revised solve,
	// bit for bit.
	p := randomCoverLP(12, 10, 42)
	rsol, err := p.SolveOpts(Options{Engine: EngineRevised})
	if err != nil {
		t.Fatal(err)
	}
	bsol, err := p.SolveOpts(Options{Engine: EngineBatch}) // 11 rows < DefaultBatchMinRows
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rsol.Values(), bsol.Values()) {
		t.Fatalf("values differ:\nrevised: %v\nbatch:   %v", rsol.Values(), bsol.Values())
	}
	if rsol.Objective != bsol.Objective {
		t.Fatalf("objective differs: %v vs %v", rsol.Objective, bsol.Objective)
	}
}

func TestBatchDualSigns(t *testing.T) {
	// min 2x s.t. x >= 3 → GE dual = 2; budget x <= 10 slack → dual 0.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 2)
	p.AddConstraint(Constraint{Terms: []Term{{Var: x, Coef: 1}}, Op: GE, RHS: 3})
	p.AddConstraint(Constraint{Terms: []Term{{Var: x, Coef: 1}}, Op: LE, RHS: 10})
	sol, err := p.SolveOpts(Options{Engine: EngineBatch, BatchMinRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Dual(0)-2) > 1e-3 {
		t.Fatalf("GE dual %g, want 2", sol.Dual(0))
	}
	if math.Abs(sol.Dual(1)) > 1e-3 {
		t.Fatalf("slack LE dual %g, want 0", sol.Dual(1))
	}
}

func TestBatchInfeasibleFallsBack(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 1, 1)
	p.AddConstraint(Constraint{Terms: []Term{{Var: x, Coef: 1}}, Op: GE, RHS: 2})
	_, err := p.SolveOpts(Options{Engine: EngineBatch, BatchMinRows: 1})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestBatchEmptyConstraintFallsBack(t *testing.T) {
	// A constraint with no terms cannot lower into the blocked form (a
	// zero-width block would divide by zero in the kernels), so
	// EngineBatch must route the whole problem to the simplex, which
	// handles the vacuous row exactly.
	p := randomCoverLP(40, 60, 10)
	p.AddConstraint(Constraint{Op: GE, RHS: 0}) // vacuous 0 >= 0
	rsol, err := p.SolveOpts(Options{Engine: EngineRevised})
	if err != nil {
		t.Fatal(err)
	}
	bsol, err := p.SolveOpts(Options{Engine: EngineBatch, BatchMinRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rsol.Values(), bsol.Values()) {
		t.Fatal("empty-row problem must take the simplex path bit for bit")
	}
}

func TestCancelAbortsRevised(t *testing.T) {
	p := randomCoverLP(40, 60, 7)
	canceled := errors.New("deadline")
	sol, err := p.SolveOpts(Options{Engine: EngineRevised, Cancel: func() error { return canceled }})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if sol.Status != Aborted {
		t.Fatalf("status %v, want Aborted", sol.Status)
	}
}

func TestCancelAbortsBatch(t *testing.T) {
	p := randomCoverLP(40, 60, 8)
	sol, err := p.SolveOpts(Options{
		Engine: EngineBatch, BatchMinRows: 1,
		Cancel: func() error { return errors.New("stop") },
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if sol.Status != Aborted {
		t.Fatalf("status %v, want Aborted", sol.Status)
	}
}

func TestCancelAbortsMILP(t *testing.T) {
	// A MILP whose node relaxation aborts must surface Aborted, not a
	// silently pruned "infeasible".
	p := NewProblem()
	p.SetMaximize()
	for j := 0; j < 8; j++ {
		p.AddBinary(fmt.Sprintf("b%d", j), 1)
	}
	var terms []Term
	for j := 0; j < 8; j++ {
		terms = append(terms, Term{Var: VarID(j), Coef: 1})
	}
	p.AddConstraint(Constraint{Terms: terms, Op: LE, RHS: 3})
	_, err := p.SolveOpts(Options{Engine: EngineRevised, Cancel: func() error { return errors.New("stop") }})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
}

func TestCancelNilNeverAborts(t *testing.T) {
	p := randomCoverLP(20, 30, 9)
	if _, err := p.SolveOpts(Options{Engine: EngineRevised}); err != nil {
		t.Fatalf("nil Cancel must not abort: %v", err)
	}
}
