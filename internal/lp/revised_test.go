package lp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomLP generates a small random LP with a mix of operators, bound
// patterns and objective senses. Continuous random data keeps the
// instances generic (unique optima almost surely), so dense and
// revised must agree on values and duals, not just the objective.
func randomLP(rng *rand.Rand) *Problem {
	p := NewProblem()
	if rng.Intn(2) == 0 {
		p.SetMaximize()
	}
	n := 1 + rng.Intn(7)
	m := 1 + rng.Intn(7)
	for j := 0; j < n; j++ {
		up := math.Inf(1)
		if rng.Intn(2) == 0 {
			up = 0.5 + 4*rng.Float64()
		}
		p.AddVariable(fmt.Sprintf("x%d", j), 0, up, -5+10*rng.Float64())
	}
	for i := 0; i < m; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.6 {
				terms = append(terms, Term{Var: VarID(j), Coef: -3 + 6*rng.Float64()})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: VarID(rng.Intn(n)), Coef: 1 + rng.Float64()})
		}
		p.AddConstraint(Constraint{
			Name:  fmt.Sprintf("c%d", i),
			Terms: terms, Op: Op(rng.Intn(3)), RHS: -5 + 10*rng.Float64(),
		})
	}
	return p
}

// compareEngines solves p with both engines and fails on any
// disagreement. Duals are compared only when checkDuals is set
// (degenerate instances have non-unique duals).
func compareEngines(t *testing.T, p *Problem, checkDuals bool, label string) {
	t.Helper()
	ds, _ := p.solveLPDense(nil, nil, Auto)
	rs, _ := p.solveLPRevised(nil, nil, Options{})
	if ds.Status != rs.Status {
		t.Fatalf("%s: status dense=%v revised=%v", label, ds.Status, rs.Status)
	}
	if ds.Status != Optimal {
		return
	}
	tol := 1e-6 * (1 + math.Abs(ds.Objective))
	if diff := math.Abs(ds.Objective - rs.Objective); diff > tol {
		t.Fatalf("%s: objective dense=%.12g revised=%.12g (diff %g)", label, ds.Objective, rs.Objective, diff)
	}
	if !checkDuals {
		return
	}
	for i := range ds.duals {
		if d := math.Abs(ds.duals[i] - rs.duals[i]); d > 1e-6*(1+math.Abs(ds.duals[i])) {
			t.Fatalf("%s: dual[%d] dense=%g revised=%g", label, i, ds.duals[i], rs.duals[i])
		}
	}
}

// TestEngineEquivalenceRandom is the property-based equivalence suite:
// 200 seeded random LPs spanning feasible, infeasible and unbounded
// instances with upper-bounded variables and every operator.
func TestEngineEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	statuses := make(map[Status]int)
	for k := 0; k < 200; k++ {
		p := randomLP(rng)
		ds, _ := p.solveLPDense(nil, nil, Auto)
		statuses[ds.Status]++
		compareEngines(t, p, true, fmt.Sprintf("case %d", k))
	}
	// The generator must actually exercise all three outcomes.
	for _, st := range []Status{Optimal, Infeasible, Unbounded} {
		if statuses[st] == 0 {
			t.Fatalf("generator produced no %v instances: %v", st, statuses)
		}
	}
}

// TestEngineEquivalenceDegenerate covers crafted degenerate and
// boundary instances where pivoting is most fragile. Duals are not
// compared (non-unique at degenerate optima).
func TestEngineEquivalenceDegenerate(t *testing.T) {
	cases := map[string]func() *Problem{
		"beale-cycling": func() *Problem {
			// Beale's classic cycling example for Dantzig pivoting.
			p := NewProblem()
			x1 := p.AddVariable("x1", 0, math.Inf(1), -0.75)
			x2 := p.AddVariable("x2", 0, math.Inf(1), 150)
			x3 := p.AddVariable("x3", 0, math.Inf(1), -0.02)
			x4 := p.AddVariable("x4", 0, math.Inf(1), 6)
			p.AddConstraint(Constraint{Terms: []Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, Op: LE, RHS: 0})
			p.AddConstraint(Constraint{Terms: []Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, Op: LE, RHS: 0})
			p.AddConstraint(Constraint{Terms: []Term{{x3, 1}}, Op: LE, RHS: 1})
			return p
		},
		"degenerate-vertex": func() *Problem {
			// Three constraints meet at (1,1): multiple optimal bases.
			p := NewProblem()
			x := p.AddVariable("x", 0, math.Inf(1), -1)
			y := p.AddVariable("y", 0, math.Inf(1), -1)
			p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Op: LE, RHS: 2})
			p.AddConstraint(Constraint{Terms: []Term{{x, 1}}, Op: LE, RHS: 1})
			p.AddConstraint(Constraint{Terms: []Term{{y, 1}}, Op: LE, RHS: 1})
			p.AddConstraint(Constraint{Terms: []Term{{x, 2}, {y, 1}}, Op: LE, RHS: 3})
			return p
		},
		"fixed-variable": func() *Problem {
			// A variable fixed by equal bounds plus binding equalities.
			p := NewProblem()
			x := p.AddVariable("x", 2, 2, 1)
			y := p.AddVariable("y", 0, 5, 1)
			p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Op: EQ, RHS: 4})
			return p
		},
		"all-upper-bounded": func() *Problem {
			// Optimum rests on upper bounds, not constraint rows.
			p := NewProblem()
			p.SetMaximize()
			x := p.AddVariable("x", 0, 1, 3)
			y := p.AddVariable("y", 0, 2, 2)
			z := p.AddVariable("z", 0, 3, 1)
			p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}, {z, 1}}, Op: LE, RHS: 10})
			return p
		},
		"redundant-rows": func() *Problem {
			p := NewProblem()
			x := p.AddVariable("x", 0, math.Inf(1), 1)
			y := p.AddVariable("y", 0, math.Inf(1), 2)
			p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Op: EQ, RHS: 3})
			p.AddConstraint(Constraint{Terms: []Term{{x, 2}, {y, 2}}, Op: EQ, RHS: 6})
			p.AddConstraint(Constraint{Terms: []Term{{x, 1}}, Op: GE, RHS: 1})
			return p
		},
		"zero-rhs-degenerate": func() *Problem {
			p := NewProblem()
			x := p.AddVariable("x", 0, math.Inf(1), -1)
			y := p.AddVariable("y", 0, math.Inf(1), -2)
			p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, -1}}, Op: LE, RHS: 0})
			p.AddConstraint(Constraint{Terms: []Term{{x, -1}, {y, 1}}, Op: LE, RHS: 0})
			p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Op: LE, RHS: 4})
			return p
		},
	}
	for name, build := range cases {
		compareEngines(t, build(), false, name)
	}
}

func TestAddConstraintRejectsNonFinite(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	p := NewProblem()
	x := p.AddVariable("x", 0, 1, 1)
	mustPanic("nan-coef", func() {
		p.AddConstraint(Constraint{Terms: []Term{{x, math.NaN()}}, Op: LE, RHS: 1})
	})
	mustPanic("inf-coef", func() {
		p.AddConstraint(Constraint{Terms: []Term{{x, math.Inf(-1)}}, Op: LE, RHS: 1})
	})
	mustPanic("nan-rhs", func() {
		p.AddConstraint(Constraint{Terms: []Term{{x, 1}}, Op: LE, RHS: math.NaN()})
	})
	mustPanic("inf-rhs", func() {
		p.AddConstraint(Constraint{Terms: []Term{{x, 1}}, Op: GE, RHS: math.Inf(1)})
	})
	// A finite constraint still goes through.
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}}, Op: LE, RHS: 1})
	if p.NumConstraints() != 1 {
		t.Fatalf("valid constraint rejected")
	}
}

func TestWarmStartReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 50; k++ {
		p := randomLP(rng)
		first, err := p.SolveOpts(Options{Engine: EngineRevised})
		if err != nil {
			continue // warm starts only apply after an optimal solve
		}
		if first.Basis() == nil {
			t.Fatalf("case %d: optimal revised solve returned nil basis", k)
		}
		if first.WarmStarted {
			t.Fatalf("case %d: cold solve flagged as warm", k)
		}
		second, err := p.SolveOpts(Options{Engine: EngineRevised, Warm: first.Basis()})
		if err != nil {
			t.Fatalf("case %d: warm re-solve failed: %v", k, err)
		}
		if !second.WarmStarted {
			t.Fatalf("case %d: identical re-solve did not warm-start", k)
		}
		if second.Iterations > first.Iterations {
			t.Fatalf("case %d: warm solve used more pivots (%d) than cold (%d)",
				k, second.Iterations, first.Iterations)
		}
		tol := 1e-6 * (1 + math.Abs(first.Objective))
		if math.Abs(second.Objective-first.Objective) > tol {
			t.Fatalf("case %d: warm objective %g != cold %g", k, second.Objective, first.Objective)
		}
	}
}

// TestWarmStartAfterBoundChange mimics a branch-and-bound child: the
// parent's basis warm-starts a problem whose only change is one
// tightened variable bound, and the result must match a cold dense
// solve of the modified problem.
func TestWarmStartAfterBoundChange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for k := 0; k < 80; k++ {
		p := randomLP(rng)
		parent, err := p.SolveOpts(Options{Engine: EngineRevised})
		if err != nil {
			continue
		}
		j := rng.Intn(p.NumVariables())
		v := parent.Value(VarID(j))
		// Tighten around (or away from) the parent's optimal value.
		if rng.Intn(2) == 0 {
			p.SetBounds(VarID(j), math.Ceil(v-1e-6), math.Inf(1))
		} else {
			p.SetBounds(VarID(j), 0, math.Max(0, math.Floor(v+1e-6)))
		}
		warm, werr := p.SolveOpts(Options{Engine: EngineRevised, Warm: parent.Basis()})
		cold, cerr := p.solveLPDense(nil, nil, Auto)
		if warm.Status != cold.Status {
			t.Fatalf("case %d: status warm=%v dense=%v (warm err %v, cold err %v)",
				k, warm.Status, cold.Status, werr, cerr)
		}
		if cold.Status == Optimal {
			tol := 1e-6 * (1 + math.Abs(cold.Objective))
			if math.Abs(warm.Objective-cold.Objective) > tol {
				t.Fatalf("case %d: warm objective %g != dense %g", k, warm.Objective, cold.Objective)
			}
		}
	}
}

// TestWarmStartShapeMismatch verifies a stale basis from a different
// problem shape is ignored, not misapplied.
func TestWarmStartShapeMismatch(t *testing.T) {
	p1 := NewProblem()
	x := p1.AddVariable("x", 0, 10, 1)
	p1.AddConstraint(Constraint{Terms: []Term{{x, 1}}, Op: GE, RHS: 2})
	s1, err := p1.SolveOpts(Options{Engine: EngineRevised})
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewProblem()
	a := p2.AddVariable("a", 0, 10, 1)
	b := p2.AddVariable("b", 0, 10, 2)
	p2.AddConstraint(Constraint{Terms: []Term{{a, 1}, {b, 1}}, Op: GE, RHS: 3})
	p2.AddConstraint(Constraint{Terms: []Term{{b, 1}}, Op: LE, RHS: 1})
	s2, err := p2.SolveOpts(Options{Engine: EngineRevised, Warm: s1.Basis()})
	if err != nil {
		t.Fatal(err)
	}
	if s2.WarmStarted {
		t.Fatal("mismatched basis should not warm-start")
	}
	if math.Abs(s2.Objective-3) > 1e-6 {
		t.Fatalf("objective %g, want 3", s2.Objective)
	}
	// Same-shape but different-operator problems must also miss.
	p3 := NewProblem()
	y := p3.AddVariable("y", 0, 10, 1)
	p3.AddConstraint(Constraint{Terms: []Term{{y, 1}}, Op: LE, RHS: 2})
	s3, err := p3.SolveOpts(Options{Engine: EngineRevised, Warm: s1.Basis()})
	if err != nil {
		t.Fatal(err)
	}
	if s3.WarmStarted {
		t.Fatal("operator-mismatched basis should not warm-start")
	}
}

// TestBasisNilForDense: the dense engine does not produce a basis.
func TestBasisNilForDense(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 1, 1)
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}}, Op: GE, RHS: 0.5})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Basis() != nil {
		t.Fatal("dense solve returned a basis")
	}
}

// randomMILP generates a small mixed LP/binary problem.
func randomMILP(rng *rand.Rand) *Problem {
	p := NewProblem()
	if rng.Intn(2) == 0 {
		p.SetMaximize()
	}
	n := 2 + rng.Intn(4)
	for j := 0; j < n; j++ {
		if rng.Intn(2) == 0 {
			p.AddBinary(fmt.Sprintf("b%d", j), -4+8*rng.Float64())
		} else {
			p.AddVariable(fmt.Sprintf("x%d", j), 0, 3+2*rng.Float64(), -4+8*rng.Float64())
		}
	}
	m := 1 + rng.Intn(4)
	for i := 0; i < m; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.7 {
				terms = append(terms, Term{Var: VarID(j), Coef: -3 + 6*rng.Float64()})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: VarID(rng.Intn(n)), Coef: 1})
		}
		p.AddConstraint(Constraint{Terms: terms, Op: Op(rng.Intn(2)), RHS: 1 + 5*rng.Float64()})
	}
	return p
}

// TestMILPWarmMatchesCold: warm-started branch & bound (children reuse
// the parent basis) reaches the same optimum as cold revised and dense
// runs, without using more pivots in total.
func TestMILPWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	warmPivots, coldPivots := 0, 0
	for k := 0; k < 60; k++ {
		p := randomMILP(rng)
		warm, werr := p.SolveOpts(Options{Engine: EngineRevised})
		cold, cerr := p.SolveOpts(Options{Engine: EngineRevised, ColdStart: true})
		dense, derr := p.SolveOpts(Options{Engine: EngineDense})
		if (werr == nil) != (derr == nil) || (cerr == nil) != (derr == nil) {
			t.Fatalf("case %d: err warm=%v cold=%v dense=%v", k, werr, cerr, derr)
		}
		if warm.Status != dense.Status || cold.Status != dense.Status {
			t.Fatalf("case %d: status warm=%v cold=%v dense=%v", k, warm.Status, cold.Status, dense.Status)
		}
		if derr == nil {
			tol := 1e-6 * (1 + math.Abs(dense.Objective))
			if math.Abs(warm.Objective-dense.Objective) > tol {
				t.Fatalf("case %d: warm MILP objective %g != dense %g", k, warm.Objective, dense.Objective)
			}
			if math.Abs(cold.Objective-dense.Objective) > tol {
				t.Fatalf("case %d: cold MILP objective %g != dense %g", k, cold.Objective, dense.Objective)
			}
		}
		warmPivots += warm.Iterations
		coldPivots += cold.Iterations
	}
	if warmPivots > coldPivots {
		t.Fatalf("warm-started B&B used more pivots (%d) than cold (%d)", warmPivots, coldPivots)
	}
}
