package lp_test

import (
	"fmt"
	"math"

	"bate/internal/lp"
)

// Example solves a small maximization LP and reads values and duals.
func Example() {
	p := lp.NewProblem()
	p.SetMaximize()
	x := p.AddVariable("x", 0, math.Inf(1), 3)
	y := p.AddVariable("y", 0, math.Inf(1), 5)
	p.AddConstraint(lp.Constraint{Terms: []lp.Term{{Var: x, Coef: 1}}, Op: lp.LE, RHS: 4})
	p.AddConstraint(lp.Constraint{Terms: []lp.Term{{Var: y, Coef: 2}}, Op: lp.LE, RHS: 12})
	p.AddConstraint(lp.Constraint{Terms: []lp.Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, Op: lp.LE, RHS: 18})

	sol, err := p.Solve()
	if err != nil {
		panic(err)
	}
	fmt.Printf("objective %.0f at x=%.0f y=%.0f\n", sol.Objective, sol.Value(x), sol.Value(y))
	fmt.Printf("shadow price of the third constraint: %.0f\n", sol.Dual(2))
	// Output:
	// objective 36 at x=2 y=6
	// shadow price of the third constraint: 1
}

// ExampleProblem_AddBinary solves a tiny knapsack with branch & bound.
func ExampleProblem_AddBinary() {
	p := lp.NewProblem()
	p.SetMaximize()
	a := p.AddBinary("a", 10)
	b := p.AddBinary("b", 13)
	c := p.AddBinary("c", 7)
	p.AddConstraint(lp.Constraint{
		Terms: []lp.Term{{Var: a, Coef: 5}, {Var: b, Coef: 6}, {Var: c, Coef: 4}},
		Op:    lp.LE, RHS: 10,
	})
	sol, err := p.Solve()
	if err != nil {
		panic(err)
	}
	fmt.Printf("best value %.0f picking a=%.0f b=%.0f c=%.0f\n",
		sol.Objective, sol.Value(a), sol.Value(b), sol.Value(c))
	// Output:
	// best value 20 picking a=0 b=1 c=1
}
