package lp

import "math"

// The sparse revised simplex engine. Unlike the dense tableau, it
// (1) keeps the constraint matrix in CSC form and touches only
// nonzeros, (2) handles variable bounds natively — nonbasic variables
// sit at a bound and may "bound-flip" without a basis change — so no
// explicit upper-bound rows are materialized, and (3) maintains the
// basis inverse in product form (basis.go) with periodic
// refactorization. A bounded dual simplex restores primal feasibility
// from a warm-start basis after RHS or bound changes (branch & bound
// children, re-scheduling rounds), avoiding a cold Phase 1.

// Nonbasic/basic variable states.
const (
	atLower int8 = iota
	atUpper
	isBasic
)

const (
	// pivotTol is the minimum |pivot| accepted in ratio tests.
	pivotTol = 1e-9
	// stablePivotTol triggers a refactorization retry when the FTRAN'd
	// pivot element is suspiciously small.
	stablePivotTol = 1e-7
	// feasTol is the primal/dual feasibility tolerance for warm starts.
	feasTol = 1e-7
)

// revised is the working state of one revised-simplex solve.
type revised struct {
	p        *Problem
	ns       int // structural variables
	m        int // constraint rows
	artLo    int // first artificial column (== csc.n)
	ncols    int // csc.n + m artificials
	csc      *cscMatrix
	slackCol []int32
	rhs      []float64
	artSign  []float64 // per-row artificial coefficient (±1)

	lo, hi []float64 // per column, artificials included
	cost   []float64 // current-phase cost per column
	status []int8
	rowVar []int32   // basic column per row
	xB     []float64 // basic value per row

	fac           factorization
	sinceRefactor int
	rule          PivotRule
	pivots        int
	cancel        func() error

	// dense scratch vectors, all length m
	work, work2, y []float64
	artInd         [1]int32
	artVal         [1]float64
}

// newRevisedBase builds the problem-shaped state (bounds, CSC, scratch)
// without choosing a starting basis. It returns ErrInfeasible when a
// bound override leaves lo > hi, matching newTableau.
func newRevisedBase(p *Problem, overrideLo, overrideHi []float64) (*revised, error) {
	ns := len(p.vars)
	m := len(p.cons)
	csc, slackCol := buildCSC(p)
	r := &revised{
		p: p, ns: ns, m: m,
		artLo: csc.n, ncols: csc.n + m,
		csc: csc, slackCol: slackCol,
	}
	r.lo = make([]float64, r.ncols)
	r.hi = make([]float64, r.ncols)
	r.cost = make([]float64, r.ncols)
	r.status = make([]int8, r.ncols)
	r.rowVar = make([]int32, m)
	r.xB = make([]float64, m)
	r.rhs = make([]float64, m)
	r.artSign = make([]float64, m)
	r.work = make([]float64, m)
	r.work2 = make([]float64, m)
	r.y = make([]float64, m)

	for j, v := range p.vars {
		r.lo[j], r.hi[j] = v.lower, v.upper
	}
	if overrideLo != nil {
		copy(r.lo[:ns], overrideLo)
	}
	if overrideHi != nil {
		copy(r.hi[:ns], overrideHi)
	}
	for j := 0; j < ns; j++ {
		if r.lo[j] > r.hi[j]+eps {
			return nil, ErrInfeasible
		}
	}
	for j := ns; j < r.artLo; j++ {
		r.hi[j] = math.Inf(1) // slacks/surpluses in [0, +inf)
	}
	for i, c := range p.cons {
		r.rhs[i] = c.RHS
		r.artSign[i] = 1
	}
	r.fac.reset(m)
	return r, nil
}

// colOf materializes column j (CSC column or implicit artificial).
func (r *revised) colOf(j int32) ([]int32, []float64) {
	if int(j) < r.artLo {
		return r.csc.col(int(j))
	}
	row := int32(int(j) - r.artLo)
	r.artInd[0] = row
	r.artVal[0] = r.artSign[row]
	return r.artInd[:], r.artVal[:]
}

// boundValue returns the resting value of a nonbasic column.
func (r *revised) boundValue(j int) float64 {
	if r.status[j] == atUpper {
		return r.hi[j]
	}
	return r.lo[j]
}

// initCold installs the textbook starting basis: structural variables
// at their lower bound, each row's slack basic where it can absorb the
// residual, an artificial (with matching sign) elsewhere. Artificials
// not needed by any row start fixed at zero.
func (r *revised) initCold() {
	for j := 0; j < r.artLo; j++ {
		r.status[j] = atLower
	}
	// Residual r_i = b_i - A·x_nonbasic with structurals at lower.
	res := r.work
	copy(res, r.rhs)
	for j := 0; j < r.ns; j++ {
		if x := r.lo[j]; x != 0 {
			ind, val := r.csc.col(j)
			for k, row := range ind {
				res[row] -= val[k] * x
			}
		}
	}
	for i, c := range r.p.cons {
		aj := r.artLo + i
		r.lo[aj], r.hi[aj] = 0, 0 // fixed unless it becomes basic below
		basic := -1
		switch {
		case c.Op == LE && res[i] >= 0:
			basic = int(r.slackCol[i])
		case c.Op == GE && res[i] <= 0:
			basic = int(r.slackCol[i])
		default:
			if res[i] < 0 {
				r.artSign[i] = -1
			}
			r.hi[aj] = math.Inf(1)
			basic = aj
		}
		r.status[basic] = isBasic
		r.rowVar[i] = int32(basic)
	}
	r.refactorNow()
}

// initWarm installs a snapshotted basis. It reports false (leaving the
// state unusable) when the factorization is singular.
func (r *revised) initWarm(b *Basis) bool {
	copy(r.status[:r.artLo], b.status)
	for i := range b.artSign {
		r.artSign[i] = float64(b.artSign[i])
	}
	// Artificials are fixed at zero in a warm solve even when basic.
	for i := 0; i < r.m; i++ {
		aj := r.artLo + i
		r.lo[aj], r.hi[aj] = 0, 0
		r.status[aj] = atLower
	}
	for j := 0; j < r.artLo; j++ {
		if r.status[j] == atUpper && math.IsInf(r.hi[j], 1) {
			r.status[j] = atLower
		}
	}
	copy(r.rowVar, b.rowVar)
	for _, j := range r.rowVar {
		r.status[j] = isBasic
	}
	if !r.refactorNow() {
		return false
	}
	return true
}

// snapshot captures the current basis for warm-starting later solves.
func (r *revised) snapshot() *Basis {
	b := &Basis{
		ns: r.ns, m: r.m,
		ops:     make([]Op, r.m),
		status:  make([]int8, r.artLo),
		rowVar:  make([]int32, r.m),
		artSign: make([]int8, r.m),
	}
	for i, c := range r.p.cons {
		b.ops[i] = c.Op
	}
	copy(b.status, r.status[:r.artLo])
	copy(b.rowVar, r.rowVar)
	for i, s := range r.artSign {
		b.artSign[i] = int8(s)
	}
	return b
}

// refactorNow rebuilds the eta file from the current basic columns and
// recomputes the basic values from scratch (flushing drift).
func (r *revised) refactorNow() bool {
	rowVar, ok := r.fac.refactor(r.m, r.rowVar, r.colOf, r.work2)
	if !ok {
		return false
	}
	r.rowVar = rowVar
	r.sinceRefactor = 0
	r.computeXB()
	return true
}

// refactorEvery bounds the eta-file length before a rebuild.
func (r *revised) refactorEvery() int {
	n := r.m / 4
	if n < 32 {
		n = 32
	}
	if n > 120 {
		n = 120
	}
	return n
}

// computeXB recomputes x_B = B⁻¹(b - N·x_N) into xB.
func (r *revised) computeXB() {
	v := r.work
	copy(v, r.rhs)
	for j := 0; j < r.artLo; j++ {
		if r.status[j] == isBasic {
			continue
		}
		if x := r.boundValue(j); x != 0 {
			ind, val := r.csc.col(j)
			for k, row := range ind {
				v[row] -= val[k] * x
			}
		}
	}
	// Nonbasic artificials are fixed at zero: no contribution.
	r.fac.ftran(v)
	copy(r.xB, v)
}

// computeY computes the simplex multipliers y = c_B B⁻¹ into r.y.
func (r *revised) computeY() {
	for i, j := range r.rowVar {
		r.y[i] = r.cost[j]
	}
	r.fac.btran(r.y)
}

// reducedCost returns d_j = c_j - y·a_j for a CSC column.
func (r *revised) reducedCost(j int) float64 {
	d := r.cost[j]
	ind, val := r.csc.col(j)
	for k, row := range ind {
		d -= r.y[row] * val[k]
	}
	return d
}

// ftranCol scatters column j into work and FTRANs it: work = B⁻¹ a_j.
func (r *revised) ftranCol(j int) []float64 {
	w := r.work
	for i := range w {
		w[i] = 0
	}
	ind, val := r.colOf(int32(j))
	for k, row := range ind {
		w[row] = val[k]
	}
	r.fac.ftran(w)
	return w
}

// price selects the entering column and its direction (+1 from lower,
// -1 from upper). Artificial columns never price in: once nonbasic
// they are fixed at zero. Returns -1 at optimality.
func (r *revised) price(bland bool) (int, float64) {
	enter := -1
	sigma := 1.0
	best := -eps
	for j := 0; j < r.artLo; j++ {
		st := r.status[j]
		if st == isBasic || r.hi[j]-r.lo[j] <= 0 {
			continue
		}
		d := r.reducedCost(j)
		var score float64
		if st == atLower {
			score = d // want d < -eps
		} else {
			score = -d // at upper: want d > eps
		}
		if score < -eps {
			if bland {
				enter = j
				if st == atUpper {
					sigma = -1
				}
				return enter, sigma
			}
			if score < best {
				best = score
				enter = j
				if st == atUpper {
					sigma = -1
				} else {
					sigma = 1
				}
			}
		}
	}
	return enter, sigma
}

// aborted polls the caller's cancel hook on a pivot-count cadence so
// deadline and chaos-budget aborts land mid-iteration.
func (r *revised) aborted() bool {
	return r.cancel != nil && r.pivots%cancelCheckEvery == 0 && r.cancel() != nil
}

// primal runs bounded primal simplex iterations to optimality.
func (r *revised) primal(phase1 bool) Status {
	for {
		if r.pivots >= maxPivots {
			return IterLimit
		}
		if r.aborted() {
			return Aborted
		}
		bland := r.rule == Bland || (r.rule != Dantzig && r.pivots >= blandThreshold)
		r.computeY()
		enter, sigma := r.price(bland)
		if enter < 0 {
			return Optimal
		}
		w := r.ftranCol(enter)

		// Ratio test: the entering variable moves by sigma·t from its
		// bound; basic i changes at rate -sigma·w_i. Blockers are basic
		// variables hitting a bound, or the entering variable reaching
		// its opposite bound (a bound flip, no basis change).
		tMax := r.hi[enter] - r.lo[enter]
		leave := -1
		leaveToUpper := false
		bestT := math.Inf(1)
		for i := 0; i < r.m; i++ {
			delta := sigma * w[i]
			bi := r.rowVar[i]
			if delta > pivotTol {
				t := (r.xB[i] - r.lo[bi]) / delta
				if t < 0 {
					t = 0
				}
				if t < bestT-eps || (t < bestT+eps && (leave < 0 || bi < r.rowVar[leave])) {
					bestT = t
					leave = i
					leaveToUpper = false
				}
			} else if delta < -pivotTol {
				if hb := r.hi[bi]; !math.IsInf(hb, 1) {
					t := (hb - r.xB[i]) / (-delta)
					if t < 0 {
						t = 0
					}
					if t < bestT-eps || (t < bestT+eps && (leave < 0 || bi < r.rowVar[leave])) {
						bestT = t
						leave = i
						leaveToUpper = true
					}
				}
			}
		}
		if leave < 0 && math.IsInf(tMax, 1) {
			if phase1 {
				// Phase-1 objective is bounded below by 0; a free ray
				// means numerical trouble. Mirror the dense engine.
				return Infeasible
			}
			return Unbounded
		}
		if leave < 0 || tMax <= bestT {
			// Bound flip: the entering variable crosses to its other
			// bound; the basis is unchanged.
			r.pivots++
			for i := 0; i < r.m; i++ {
				r.xB[i] -= sigma * tMax * w[i]
			}
			if r.status[enter] == atLower {
				r.status[enter] = atUpper
			} else {
				r.status[enter] = atLower
			}
			continue
		}
		// A suspiciously small pivot right after a long eta file is
		// usually drift: refactorize and retry the iteration.
		if pv := math.Abs(w[leave]); pv < stablePivotTol && r.sinceRefactor > 0 {
			if !r.refactorNow() {
				return IterLimit
			}
			continue
		}
		r.pivotStep(leave, enter, sigma, bestT, leaveToUpper, w)
	}
}

// pivotStep applies one basis exchange: entering column `enter` moves
// by sigma·t, basic row `leave` leaves at the bound it hit.
func (r *revised) pivotStep(leave, enter int, sigma, t float64, leaveToUpper bool, w []float64) {
	r.pivots++
	for i := 0; i < r.m; i++ {
		if i == leave {
			continue
		}
		r.xB[i] -= sigma * t * w[i]
	}
	lv := r.rowVar[leave]
	if leaveToUpper {
		r.status[lv] = atUpper
	} else {
		r.status[lv] = atLower
	}
	if int(lv) >= r.artLo {
		// An artificial that leaves the basis never returns.
		r.lo[lv], r.hi[lv] = 0, 0
		r.status[lv] = atLower
	}
	var entVal float64
	if sigma > 0 {
		entVal = r.lo[enter] + t
	} else {
		entVal = r.hi[enter] - t
	}
	r.xB[leave] = entVal
	r.status[enter] = isBasic
	r.rowVar[leave] = int32(enter)
	r.fac.push(w, int32(leave))
	r.sinceRefactor++
	if r.sinceRefactor >= r.refactorEvery() {
		r.refactorNow()
	}
}

// infeasSum returns the total residual infeasibility (the phase-1
// objective): the mass still carried by basic artificials.
func (r *revised) infeasSum() float64 {
	s := 0.0
	for i, j := range r.rowVar {
		if int(j) >= r.artLo && r.xB[i] > 0 {
			s += r.xB[i]
		}
	}
	return s
}

// setPhase1Costs prices only the artificials.
func (r *revised) setPhase1Costs() {
	for j := range r.cost {
		if j >= r.artLo {
			r.cost[j] = 1
		} else {
			r.cost[j] = 0
		}
	}
}

// setPhase2Costs installs the real objective (negated for
// maximization, matching the dense engine's internal minimization).
func (r *revised) setPhase2Costs() {
	for j := range r.cost {
		r.cost[j] = 0
	}
	for j, v := range r.p.vars {
		c := v.cost
		if r.p.maximize {
			c = -c
		}
		r.cost[j] = c
	}
}

// fixArtificials pins every artificial to zero after phase 1.
func (r *revised) fixArtificials() {
	for i := 0; i < r.m; i++ {
		aj := r.artLo + i
		r.lo[aj], r.hi[aj] = 0, 0
	}
}

// run executes the cold two-phase solve.
func (r *revised) run() Status {
	needPhase1 := false
	for _, j := range r.rowVar {
		if int(j) >= r.artLo {
			needPhase1 = true
			break
		}
	}
	if needPhase1 {
		r.setPhase1Costs()
		if st := r.primal(true); st != Optimal {
			return st
		}
		if r.infeasSum() > 1e-7 {
			return Infeasible
		}
		r.fixArtificials()
	}
	r.setPhase2Costs()
	return r.primal(false)
}

// runWarm attempts to solve from an installed warm basis. The second
// return is false when the basis is neither primal- nor dual-feasible
// under the current bounds and costs — the caller should cold start.
func (r *revised) runWarm() (Status, bool) {
	r.setPhase2Costs()
	if r.primalFeasible() {
		return r.primal(false), true
	}
	if r.dualFeasible() {
		st := r.dualSimplex()
		if st == Optimal {
			// Polish: degenerate dual exits can leave slightly negative
			// reduced costs; finish with primal iterations.
			return r.primal(false), true
		}
		return st, true
	}
	return IterLimit, false
}

// primalFeasible reports whether every basic value is within bounds.
func (r *revised) primalFeasible() bool {
	for i, j := range r.rowVar {
		if r.xB[i] < r.lo[j]-feasTol || r.xB[i] > r.hi[j]+feasTol {
			return false
		}
	}
	return true
}

// dualFeasible reports whether the reduced costs are consistent with
// every nonbasic resting position under the phase-2 costs.
func (r *revised) dualFeasible() bool {
	r.computeY()
	for j := 0; j < r.artLo; j++ {
		st := r.status[j]
		if st == isBasic || r.hi[j]-r.lo[j] <= 0 {
			continue
		}
		d := r.reducedCost(j)
		if st == atLower && d < -feasTol {
			return false
		}
		if st == atUpper && d > feasTol {
			return false
		}
	}
	return true
}

// dualSimplex restores primal feasibility from a dual-feasible basis:
// the standard bounded-variable dual iteration (leaving row by largest
// bound violation, entering column by the dual ratio test). Returns
// Optimal once primal feasible, Infeasible when dual-unbounded (the
// problem has no feasible point), IterLimit on the pivot cap.
func (r *revised) dualSimplex() Status {
	for {
		if r.pivots >= maxPivots {
			return IterLimit
		}
		if r.aborted() {
			return Aborted
		}
		leave := -1
		worst := feasTol
		below := false
		for i, j := range r.rowVar {
			if v := r.lo[j] - r.xB[i]; v > worst {
				worst = v
				leave = i
				below = true
			}
			if v := r.xB[i] - r.hi[j]; v > worst {
				worst = v
				leave = i
				below = false
			}
		}
		if leave < 0 {
			return Optimal
		}
		// rho = row `leave` of B⁻¹; alpha_j = rho·a_j.
		rho := r.work2
		for i := range rho {
			rho[i] = 0
		}
		rho[leave] = 1
		r.fac.btran(rho)
		r.computeY()

		enter := -1
		bestRatio := math.Inf(1)
		bestAlpha := 0.0
		for j := 0; j < r.artLo; j++ {
			st := r.status[j]
			if st == isBasic || r.hi[j]-r.lo[j] <= 0 {
				continue
			}
			alpha := 0.0
			ind, val := r.csc.col(j)
			for k, row := range ind {
				alpha += rho[row] * val[k]
			}
			// Eligibility: moving j in its feasible direction must push
			// the leaving basic toward its violated bound.
			ok := false
			if below {
				ok = (st == atLower && alpha < -pivotTol) || (st == atUpper && alpha > pivotTol)
			} else {
				ok = (st == atLower && alpha > pivotTol) || (st == atUpper && alpha < -pivotTol)
			}
			if !ok {
				continue
			}
			d := r.reducedCost(j)
			mag := d
			if st == atUpper {
				mag = -d
			}
			if mag < 0 {
				mag = 0 // tolerance noise; treat as degenerate
			}
			ratio := mag / math.Abs(alpha)
			if ratio < bestRatio-eps || (ratio < bestRatio+eps && math.Abs(alpha) > math.Abs(bestAlpha)) {
				bestRatio = ratio
				bestAlpha = alpha
				enter = j
			}
		}
		if enter < 0 {
			return Infeasible // dual unbounded
		}
		w := r.ftranCol(enter)
		if pv := math.Abs(w[leave]); pv < stablePivotTol && r.sinceRefactor > 0 {
			if !r.refactorNow() {
				return IterLimit
			}
			continue
		}
		sigma := 1.0
		if r.status[enter] == atUpper {
			sigma = -1
		}
		lv := r.rowVar[leave]
		target := r.lo[lv]
		if !below {
			target = r.hi[lv]
		}
		t := (r.xB[leave] - target) / (sigma * w[leave])
		if t < 0 {
			t = 0
		}
		r.pivotStep(leave, enter, sigma, t, !below, w)
	}
}

// extract recovers structural values, clamping tolerance noise at the
// bounds exactly as the dense engine does for zero.
func (r *revised) extract() []float64 {
	vals := make([]float64, r.ns)
	for j := 0; j < r.ns; j++ {
		if r.status[j] != isBasic {
			vals[j] = r.boundValue(j)
		}
	}
	for i, j := range r.rowVar {
		if int(j) < r.ns {
			vals[j] = r.xB[i]
		}
	}
	for j := range vals {
		if vals[j] < 0 && vals[j] > -1e-7 {
			vals[j] = 0
		}
		if hb := r.hi[j]; vals[j] > hb && vals[j] < hb+1e-7 {
			vals[j] = hb
		}
	}
	return vals
}

// extractDuals returns the user-constraint duals in the problem's own
// sense. With rows stored unnegated, the multiplier of row i is
// exactly the derivative of the internal (minimization) objective with
// respect to b_i; maximization flips the sign back to the user sense.
func (r *revised) extractDuals() []float64 {
	r.setPhase2Costs()
	r.computeY()
	duals := make([]float64, r.m)
	copy(duals, r.y)
	if r.p.maximize {
		for i := range duals {
			duals[i] = -duals[i]
		}
	}
	return duals
}
