package lp

import "math"

// PivotRule selects the entering-column strategy of the simplex.
type PivotRule int8

// Pivot rules. Auto uses Dantzig and falls back to Bland after
// blandThreshold pivots to guarantee termination on degenerate
// problems; the pure rules exist for the ablation benchmarks.
const (
	Auto PivotRule = iota
	Dantzig
	Bland
)

// Options tunes the solver.
type Options struct {
	Pivot PivotRule
	// MaxNodes bounds branch & bound nodes (0 = default 200000).
	MaxNodes int
	// FirstIncumbent stops branch & bound at the first integral
	// solution instead of proving optimality — the feasibility-check
	// mode used by admission control.
	FirstIncumbent bool
	// Engine selects the simplex implementation; EngineAuto uses the
	// dense tableau unless Warm is supplied.
	Engine Engine
	// Warm seeds the revised engine with a previously optimal basis of
	// a structurally identical problem; ignored by the dense engine.
	Warm *Basis
	// ColdStart disables parent-basis warm-starting inside branch &
	// bound (benchmark/ablation control).
	ColdStart bool
	// Cancel, when non-nil, is polled every few dozen pivots (and per
	// branch-and-bound node, and per first-order check interval); a
	// non-nil return aborts the solve with Status Aborted / ErrAborted.
	// Deadline-bounded recovery and the chaos solver budget hook in
	// here so a runaway solve stops mid-iteration, not just between
	// phases. The dense reference engine does not poll it.
	Cancel func() error
	// BatchMinRows overrides the constraint-count threshold below
	// which EngineBatch quietly routes to the revised simplex (first-
	// order iterations only pay off on big instances, and small ones
	// must stay byte-identical to the simplex path). 0 means
	// DefaultBatchMinRows; 1 forces the batch solver on any size
	// (tests and ablations).
	BatchMinRows int
}

// SolveOpts is Solve with explicit Options.
func (p *Problem) SolveOpts(opts Options) (*Solution, error) {
	if p.HasIntegers() {
		return p.solveMILPOpts(opts)
	}
	return p.solveLPWith(nil, nil, opts)
}

// tableau is a dense two-phase primal simplex working state.
type tableau struct {
	p       *Problem
	m, n    int         // rows, columns (excluding RHS)
	a       [][]float64 // m rows of n+1 (last entry is RHS)
	basis   []int       // basic column per row
	deleted []bool      // redundant rows discovered in phase 1
	meta    []rowMeta   // user-constraint mapping for dual recovery
	nStruct int
	artLo   int       // first artificial column
	lo      []float64 // lower-bound shift per structural variable
	rule    PivotRule
	pivots  int

	cvec    []float64 // current phase costs per column
	reduced []float64 // reduced costs per column
}

// newTableau builds the initial tableau. overrideLo/overrideHi, when
// non-nil, replace the problem's variable bounds (used by branch &
// bound). It returns an error iff some variable has lo > hi.
func newTableau(p *Problem, overrideLo, overrideHi []float64) (*tableau, error) {
	ns := len(p.vars)
	lo := make([]float64, ns)
	hi := make([]float64, ns)
	for j, v := range p.vars {
		lo[j], hi[j] = v.lower, v.upper
	}
	if overrideLo != nil {
		copy(lo, overrideLo)
	}
	if overrideHi != nil {
		copy(hi, overrideHi)
	}
	for j := range lo {
		if lo[j] > hi[j]+eps {
			return nil, ErrInfeasible
		}
	}

	// Row set: the problem's constraints plus one LE row per finite
	// shifted upper bound.
	type row struct {
		coefs   []float64
		op      Op
		rhs     float64
		userIdx int
		negated bool
	}
	rows := make([]row, 0, len(p.cons)+ns)
	for ci, c := range p.cons {
		r := row{coefs: make([]float64, ns), op: c.Op, rhs: c.RHS, userIdx: ci}
		for _, t := range c.Terms {
			r.coefs[t.Var] += t.Coef
			r.rhs -= t.Coef * lo[t.Var] // shift x = x' + lo
		}
		rows = append(rows, r)
	}
	for j := 0; j < ns; j++ {
		if up := hi[j] - lo[j]; !math.IsInf(up, 1) {
			r := row{coefs: make([]float64, ns), op: LE, rhs: up, userIdx: -1}
			r.coefs[j] = 1
			rows = append(rows, r)
		}
	}
	// Normalize RHS >= 0.
	for i := range rows {
		if rows[i].rhs < 0 {
			rows[i].negated = true
			for j := range rows[i].coefs {
				rows[i].coefs[j] = -rows[i].coefs[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].op {
			case LE:
				rows[i].op = GE
			case GE:
				rows[i].op = LE
			}
		}
	}
	m := len(rows)
	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.op {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}
	n := ns + nSlack + nArt
	t := &tableau{
		p: p, m: m, n: n,
		a:       make([][]float64, m),
		basis:   make([]int, m),
		deleted: make([]bool, m),
		nStruct: ns,
		artLo:   ns + nSlack,
		lo:      lo,
		meta:    make([]rowMeta, m),
	}
	slack, art := ns, t.artLo
	for i, r := range rows {
		t.a[i] = make([]float64, n+1)
		copy(t.a[i], r.coefs)
		t.a[i][n] = r.rhs
		t.meta[i] = rowMeta{userIdx: r.userIdx, negated: r.negated, auxSign: 1}
		switch r.op {
		case LE:
			t.a[i][slack] = 1
			t.basis[i] = slack
			t.meta[i].auxCol = slack
			slack++
		case GE:
			t.a[i][slack] = -1
			slack++
			t.a[i][art] = 1
			t.basis[i] = art
			t.meta[i].auxCol = art
			art++
		case EQ:
			t.a[i][art] = 1
			t.basis[i] = art
			t.meta[i].auxCol = art
			art++
		}
	}
	return t, nil
}

// run executes both simplex phases and returns the status.
func (t *tableau) run() Status {
	// Phase 1: minimize the sum of artificials.
	if t.artLo < t.n {
		cv := make([]float64, t.n)
		for j := t.artLo; j < t.n; j++ {
			cv[j] = 1
		}
		t.setCosts(cv)
		if st := t.optimize(true); st != Optimal {
			return st
		}
		if t.objValue() > 1e-7 {
			return Infeasible
		}
		t.purgeArtificials()
	}
	// Phase 2: the real objective (negated for maximization).
	cv := make([]float64, t.n)
	for j := 0; j < t.nStruct; j++ {
		c := t.p.vars[j].cost
		if t.p.maximize {
			c = -c
		}
		cv[j] = c
	}
	t.setCosts(cv)
	return t.optimize(false)
}

// setCosts installs a cost vector and recomputes reduced costs.
func (t *tableau) setCosts(cv []float64) {
	t.cvec = cv
	t.reduced = make([]float64, t.n)
	copy(t.reduced, cv)
	for i := 0; i < t.m; i++ {
		if t.deleted[i] {
			continue
		}
		cb := cv[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.n; j++ {
			t.reduced[j] -= cb * row[j]
		}
	}
}

// objValue returns the current objective value (phase costs).
func (t *tableau) objValue() float64 {
	v := 0.0
	for i := 0; i < t.m; i++ {
		if !t.deleted[i] {
			v += t.cvec[t.basis[i]] * t.a[i][t.n]
		}
	}
	return v
}

// optimize pivots until optimality. In phase 1 artificial columns may
// enter; in phase 2 they may not.
func (t *tableau) optimize(phase1 bool) Status {
	limit := t.n
	if phase1 {
		limit = t.n
	} else {
		limit = t.artLo
	}
	for iter := 0; ; iter++ {
		if t.pivots >= maxPivots {
			return IterLimit
		}
		bland := t.rule == Bland || (t.rule != Dantzig && t.pivots >= blandThreshold)
		// Entering column.
		enter := -1
		best := -eps
		for j := 0; j < limit; j++ {
			if t.reduced[j] < -eps {
				if bland {
					enter = j
					break
				}
				if t.reduced[j] < best {
					best = t.reduced[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.deleted[i] {
				continue
			}
			aij := t.a[i][enter]
			if aij <= eps {
				continue
			}
			ratio := t.a[i][t.n] / aij
			if ratio < bestRatio-eps ||
				(ratio < bestRatio+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			if phase1 {
				// Phase-1 objective is bounded below by 0; a missing
				// ratio means numerical trouble. Treat as infeasible.
				return Infeasible
			}
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot performs a full tableau pivot making column enter basic in row
// leave, updating reduced costs incrementally.
func (t *tableau) pivot(leave, enter int) {
	t.pivots++
	prow := t.a[leave]
	pv := prow[enter]
	inv := 1 / pv
	for j := 0; j <= t.n; j++ {
		prow[j] *= inv
	}
	prow[enter] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == leave || t.deleted[i] {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j <= t.n; j++ {
			row[j] -= f * prow[j]
		}
		row[enter] = 0 // exact
	}
	f := t.reduced[enter]
	if f != 0 {
		for j := 0; j < t.n; j++ {
			t.reduced[j] -= f * prow[j]
		}
		t.reduced[enter] = 0
	}
	t.basis[leave] = enter
}

// purgeArtificials removes basic artificials after phase 1 by pivoting
// them out on any non-artificial column, or marking the row redundant
// if none exists.
func (t *tableau) purgeArtificials() {
	for i := 0; i < t.m; i++ {
		if t.deleted[i] || t.basis[i] < t.artLo {
			continue
		}
		pivoted := false
		for j := 0; j < t.artLo; j++ {
			if math.Abs(t.a[i][j]) > 1e-7 {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			t.deleted[i] = true
		}
	}
}

// extract recovers the structural variable values (undoing the
// lower-bound shift).
func (t *tableau) extract() []float64 {
	vals := make([]float64, t.nStruct)
	copy(vals, t.lo)
	for i := 0; i < t.m; i++ {
		if t.deleted[i] {
			continue
		}
		if b := t.basis[i]; b < t.nStruct {
			vals[b] += t.a[i][t.n]
		}
	}
	// Clamp tiny negatives produced by roundoff.
	for j := range vals {
		if vals[j] < 0 && vals[j] > -1e-7 {
			vals[j] = 0
		}
	}
	return vals
}
