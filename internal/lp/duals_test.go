package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDualsSimpleMin(t *testing.T) {
	// min x + 2y s.t. x + y >= 4 (binding), y >= 1 (binding):
	// optimum x=3, y=1, obj=5. Duals: raising the first RHS by 1 costs
	// +1 (x grows), raising the second costs +1 (swap x for y: +2-1).
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	y := p.AddVariable("y", 0, math.Inf(1), 2)
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Op: GE, RHS: 4})
	p.AddConstraint(Constraint{Terms: []Term{{y, 1}}, Op: GE, RHS: 1})
	sol := solveOK(t, p)
	if !near(sol.Objective, 5) {
		t.Fatalf("obj = %v", sol.Objective)
	}
	if !near(sol.Dual(0), 1) || !near(sol.Dual(1), 1) {
		t.Fatalf("duals = %v, want [1 1]", sol.Duals())
	}
}

func TestDualsMaxLE(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
	// Known duals: 0, 1.5, 1.
	p := NewProblem()
	p.SetMaximize()
	x := p.AddVariable("x", 0, math.Inf(1), 3)
	y := p.AddVariable("y", 0, math.Inf(1), 5)
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}}, Op: LE, RHS: 4})
	p.AddConstraint(Constraint{Terms: []Term{{y, 2}}, Op: LE, RHS: 12})
	p.AddConstraint(Constraint{Terms: []Term{{x, 3}, {y, 2}}, Op: LE, RHS: 18})
	sol := solveOK(t, p)
	want := []float64{0, 1.5, 1}
	for i, w := range want {
		if !near(sol.Dual(i), w) {
			t.Fatalf("dual[%d] = %v, want %v (all: %v)", i, sol.Dual(i), w, sol.Duals())
		}
	}
}

// Strong duality: for feasible bounded LPs with default variable
// bounds [0, inf), c'x* == Σ y_i b_i.
func TestStrongDualityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(6)
		p := NewProblem()
		p.SetMaximize()
		vars := make([]VarID, n)
		x0 := make([]float64, n)
		for j := range vars {
			x0[j] = rng.Float64() * 5
			vars[j] = p.AddVariable("x", 0, math.Inf(1), rng.Float64()*3)
		}
		for i := 0; i < m; i++ {
			terms := make([]Term, n)
			rhs := 0.0
			for j := range terms {
				c := rng.Float64() + 0.05 // positive => bounded max
				terms[j] = Term{vars[j], c}
				rhs += c * x0[j]
			}
			p.AddConstraint(Constraint{Terms: terms, Op: LE, RHS: rhs})
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dualObj := 0.0
		for i, c := range p.cons {
			dualObj += sol.Dual(i) * c.RHS
		}
		if math.Abs(dualObj-sol.Objective) > 1e-6*(1+math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: primal %v != dual %v (duals %v)",
				trial, sol.Objective, dualObj, sol.Duals())
		}
		// Complementary slackness: positive dual => binding constraint.
		for i, c := range p.cons {
			if math.Abs(sol.Dual(i)) < 1e-9 {
				continue
			}
			lhs := 0.0
			for _, tm := range c.Terms {
				lhs += tm.Coef * sol.Value(tm.Var)
			}
			if math.Abs(lhs-c.RHS) > 1e-6 {
				t.Fatalf("trial %d: dual %v on slack constraint %d (lhs %v rhs %v)",
					trial, sol.Dual(i), i, lhs, c.RHS)
			}
		}
	}
}

func TestDualsSignConventionMin(t *testing.T) {
	// Minimization with a binding <= constraint: dual must be <= 0
	// (loosening a <= in a min problem cannot hurt).
	// min -x s.t. x <= 5 → x=5, dual = -1.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), -1)
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}}, Op: LE, RHS: 5})
	sol := solveOK(t, p)
	if !near(sol.Dual(0), -1) {
		t.Fatalf("dual = %v, want -1", sol.Dual(0))
	}
}

func TestDualsEquality(t *testing.T) {
	// min x + y s.t. x + y == 10: dual = 1 (each extra unit costs 1).
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	y := p.AddVariable("y", 0, math.Inf(1), 2)
	_ = y
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Op: EQ, RHS: 10})
	sol := solveOK(t, p)
	if !near(sol.Dual(0), 1) {
		t.Fatalf("dual = %v, want 1", sol.Dual(0))
	}
}

func TestDualsUnavailableForMILP(t *testing.T) {
	p := NewProblem()
	p.SetMaximize()
	a := p.AddBinary("a", 1)
	p.AddConstraint(Constraint{Terms: []Term{{a, 1}}, Op: LE, RHS: 1})
	sol := solveOK(t, p)
	if sol.Duals() != nil {
		t.Fatal("MILP solutions must not report duals")
	}
	if sol.Dual(0) != 0 || sol.Dual(99) != 0 {
		t.Fatal("Dual() must be 0 when unavailable")
	}
}

// Capacity duals price WAN links: on the Fig. 2 toy instance the
// binding capacity rows carry the marginal bandwidth value.
func TestDualsNegatedRow(t *testing.T) {
	// A constraint written with negative RHS exercises row negation:
	// min x s.t. -x <= -3 (i.e. x >= 3) → dual of the <= row is -1.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	p.AddConstraint(Constraint{Terms: []Term{{x, -1}}, Op: LE, RHS: -3})
	sol := solveOK(t, p)
	if !near(sol.Value(x), 3) {
		t.Fatalf("x = %v", sol.Value(x))
	}
	if !near(sol.Dual(0), -1) {
		t.Fatalf("dual = %v, want -1 (obj rises 1 per unit RHS decrease)", sol.Dual(0))
	}
}
