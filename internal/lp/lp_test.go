package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v (status %v)", err, sol.Status)
	}
	return sol
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMin(t *testing.T) {
	// min x + 2y  s.t. x + y >= 4, x <= 3; expect x=3, y=1, obj=5.
	p := NewProblem()
	x := p.AddVariable("x", 0, 3, 1)
	y := p.AddVariable("y", 0, math.Inf(1), 2)
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Op: GE, RHS: 4})
	sol := solveOK(t, p)
	if !near(sol.Objective, 5) || !near(sol.Value(x), 3) || !near(sol.Value(y), 1) {
		t.Fatalf("got obj=%v x=%v y=%v", sol.Objective, sol.Value(x), sol.Value(y))
	}
}

func TestSimpleMax(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → x=2, y=6, obj=36.
	p := NewProblem()
	p.SetMaximize()
	x := p.AddVariable("x", 0, math.Inf(1), 3)
	y := p.AddVariable("y", 0, math.Inf(1), 5)
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}}, Op: LE, RHS: 4})
	p.AddConstraint(Constraint{Terms: []Term{{y, 2}}, Op: LE, RHS: 12})
	p.AddConstraint(Constraint{Terms: []Term{{x, 3}, {y, 2}}, Op: LE, RHS: 18})
	sol := solveOK(t, p)
	if !near(sol.Objective, 36) || !near(sol.Value(x), 2) || !near(sol.Value(y), 6) {
		t.Fatalf("got obj=%v x=%v y=%v", sol.Objective, sol.Value(x), sol.Value(y))
	}
}

func TestEquality(t *testing.T) {
	// min x+y s.t. x + y = 10, x - y = 2 → x=6, y=4.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	y := p.AddVariable("y", 0, math.Inf(1), 1)
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Op: EQ, RHS: 10})
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, -1}}, Op: EQ, RHS: 2})
	sol := solveOK(t, p)
	if !near(sol.Value(x), 6) || !near(sol.Value(y), 4) {
		t.Fatalf("got x=%v y=%v", sol.Value(x), sol.Value(y))
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 1, 1)
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}}, Op: GE, RHS: 5})
	sol, err := p.Solve()
	if err != ErrInfeasible || sol.Status != Infeasible {
		t.Fatalf("got %v / %v, want infeasible", sol.Status, err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	p.SetMaximize()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	p.AddConstraint(Constraint{Terms: []Term{{x, -1}}, Op: LE, RHS: 1})
	sol, err := p.Solve()
	if err != ErrUnbounded || sol.Status != Unbounded {
		t.Fatalf("got %v / %v, want unbounded", sol.Status, err)
	}
}

func TestLowerBoundShift(t *testing.T) {
	// min x + y with x >= 2, y >= 3, x + y >= 7 → obj 7.
	p := NewProblem()
	x := p.AddVariable("x", 2, math.Inf(1), 1)
	y := p.AddVariable("y", 3, math.Inf(1), 1)
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Op: GE, RHS: 7})
	sol := solveOK(t, p)
	if !near(sol.Objective, 7) {
		t.Fatalf("obj = %v, want 7", sol.Objective)
	}
	if sol.Value(x) < 2-1e-9 || sol.Value(y) < 3-1e-9 {
		t.Fatalf("bounds violated: x=%v y=%v", sol.Value(x), sol.Value(y))
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicate equality rows exercise artificial purge / row deletion.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	y := p.AddVariable("y", 0, math.Inf(1), 1)
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Op: EQ, RHS: 4})
	p.AddConstraint(Constraint{Terms: []Term{{x, 2}, {y, 2}}, Op: EQ, RHS: 8})
	sol := solveOK(t, p)
	if !near(sol.Objective, 4) {
		t.Fatalf("obj = %v, want 4", sol.Objective)
	}
}

func TestDegenerateBeale(t *testing.T) {
	// Beale's classic cycling example; must terminate via Bland fallback.
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7
	// s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
	//      0.5x4 - 90x5 - 0.02x6 + 3x7 <= 0
	//      x6 <= 1
	// Optimum: -0.05 at x6=1.
	p := NewProblem()
	x4 := p.AddVariable("x4", 0, math.Inf(1), -0.75)
	x5 := p.AddVariable("x5", 0, math.Inf(1), 150)
	x6 := p.AddVariable("x6", 0, math.Inf(1), -0.02)
	x7 := p.AddVariable("x7", 0, math.Inf(1), 6)
	p.AddConstraint(Constraint{Terms: []Term{{x4, 0.25}, {x5, -60}, {x6, -0.04}, {x7, 9}}, Op: LE, RHS: 0})
	p.AddConstraint(Constraint{Terms: []Term{{x4, 0.5}, {x5, -90}, {x6, -0.02}, {x7, 3}}, Op: LE, RHS: 0})
	p.AddConstraint(Constraint{Terms: []Term{{x6, 1}}, Op: LE, RHS: 1})
	for _, rule := range []PivotRule{Auto, Bland} {
		sol, err := p.SolveOpts(Options{Pivot: rule})
		if err != nil {
			t.Fatalf("rule %v: %v", rule, err)
		}
		if !near(sol.Objective, -0.05) {
			t.Fatalf("rule %v: obj = %v, want -0.05", rule, sol.Objective)
		}
	}
}

func TestDuplicateTermsSummed(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {x, 1}}, Op: GE, RHS: 6})
	sol := solveOK(t, p)
	if !near(sol.Value(x), 3) {
		t.Fatalf("x = %v, want 3 (2x >= 6)", sol.Value(x))
	}
}

// feasible reports whether vals satisfies all constraints and bounds.
func feasible(p *Problem, vals []float64) bool {
	for j, v := range p.vars {
		if vals[j] < v.lower-1e-6 || vals[j] > v.upper+1e-6 {
			return false
		}
	}
	for _, c := range p.cons {
		lhs := 0.0
		for _, t := range c.Terms {
			lhs += t.Coef * vals[t.Var]
		}
		switch c.Op {
		case LE:
			if lhs > c.RHS+1e-6 {
				return false
			}
		case GE:
			if lhs < c.RHS-1e-6 {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > 1e-6 {
				return false
			}
		}
	}
	return true
}

// TestRandomLPFeasibilityAndOptimality generates random LPs that are
// feasible by construction (constraints are a'x <= a'x0 for a random
// x0 >= 0) and checks (1) the solution is feasible, (2) it is at least
// as good as x0, and (3) Dantzig and Bland agree on the objective.
func TestRandomLPFeasibilityAndOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(8)
		p := NewProblem()
		p.SetMaximize()
		x0 := make([]float64, n)
		vars := make([]VarID, n)
		for j := 0; j < n; j++ {
			x0[j] = rng.Float64() * 10
			vars[j] = p.AddVariable("x", 0, math.Inf(1), rng.Float64()*4-1)
		}
		bounded := false
		for i := 0; i < m; i++ {
			terms := make([]Term, n)
			rhs := 0.0
			allPos := true
			for j := 0; j < n; j++ {
				c := rng.Float64()*4 - 1
				if c <= 0 {
					allPos = false
				}
				terms[j] = Term{vars[j], c}
				rhs += c * x0[j]
			}
			if allPos {
				bounded = true
			}
			p.AddConstraint(Constraint{Terms: terms, Op: LE, RHS: rhs})
		}
		if !bounded {
			// Force boundedness so the max cannot run away.
			terms := make([]Term, n)
			rhs := 0.0
			for j := 0; j < n; j++ {
				terms[j] = Term{vars[j], 1}
				rhs += x0[j]
			}
			p.AddConstraint(Constraint{Terms: terms, Op: LE, RHS: rhs + 100})
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible(p, sol.Values()) {
			t.Fatalf("trial %d: infeasible solution %v", trial, sol.Values())
		}
		obj0 := 0.0
		for j := range x0 {
			obj0 += p.vars[j].cost * x0[j]
		}
		if sol.Objective < obj0-1e-6 {
			t.Fatalf("trial %d: obj %v worse than known point %v", trial, sol.Objective, obj0)
		}
		bl, err := p.SolveOpts(Options{Pivot: Bland})
		if err != nil {
			t.Fatalf("trial %d bland: %v", trial, err)
		}
		if math.Abs(bl.Objective-sol.Objective) > 1e-5 {
			t.Fatalf("trial %d: dantzig %v != bland %v", trial, sol.Objective, bl.Objective)
		}
	}
}

func TestKnapsackMILP(t *testing.T) {
	// max 10a + 13b + 7c s.t. 5a + 6b + 4c <= 10, binary → b+c (20).
	p := NewProblem()
	p.SetMaximize()
	a := p.AddBinary("a", 10)
	b := p.AddBinary("b", 13)
	c := p.AddBinary("c", 7)
	p.AddConstraint(Constraint{Terms: []Term{{a, 5}, {b, 6}, {c, 4}}, Op: LE, RHS: 10})
	sol := solveOK(t, p)
	if !near(sol.Objective, 20) {
		t.Fatalf("obj = %v, want 20", sol.Objective)
	}
	if !near(sol.Value(a), 0) || !near(sol.Value(b), 1) || !near(sol.Value(c), 1) {
		t.Fatalf("got a=%v b=%v c=%v", sol.Value(a), sol.Value(b), sol.Value(c))
	}
}

func TestMILPWithContinuous(t *testing.T) {
	// max x + 10y, x continuous in [0, 5.5], y binary,
	// s.t. x + 6y <= 9 → y=1, x=3, obj 13.
	p := NewProblem()
	p.SetMaximize()
	x := p.AddVariable("x", 0, 5.5, 1)
	y := p.AddBinary("y", 10)
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 6}}, Op: LE, RHS: 9})
	sol := solveOK(t, p)
	if !near(sol.Objective, 13) || !near(sol.Value(y), 1) || !near(sol.Value(x), 3) {
		t.Fatalf("got obj=%v x=%v y=%v", sol.Objective, sol.Value(x), sol.Value(y))
	}
}

func TestMILPInfeasible(t *testing.T) {
	p := NewProblem()
	a := p.AddBinary("a", 1)
	b := p.AddBinary("b", 1)
	p.AddConstraint(Constraint{Terms: []Term{{a, 1}, {b, 1}}, Op: GE, RHS: 3})
	sol, err := p.Solve()
	if err != ErrInfeasible || sol.Status != Infeasible {
		t.Fatalf("got %v / %v, want infeasible", sol.Status, err)
	}
}

// bruteForceBinary enumerates all binary assignments and returns the
// best objective of feasible ones (maximization), or NaN if none.
func bruteForceBinary(p *Problem, bins []VarID) float64 {
	best := math.NaN()
	n := len(bins)
	vals := make([]float64, len(p.vars))
	for mask := 0; mask < 1<<n; mask++ {
		for i, v := range bins {
			vals[v] = float64((mask >> i) & 1)
		}
		if !feasible(p, vals) {
			continue
		}
		obj := 0.0
		for j, v := range p.vars {
			obj += v.cost * vals[j]
		}
		if math.IsNaN(best) || obj > best {
			best = obj
		}
	}
	return best
}

func TestMILPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		m := 1 + rng.Intn(4)
		p := NewProblem()
		p.SetMaximize()
		bins := make([]VarID, n)
		for j := 0; j < n; j++ {
			bins[j] = p.AddBinary("b", rng.Float64()*10)
		}
		for i := 0; i < m; i++ {
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				terms[j] = Term{bins[j], rng.Float64() * 5}
			}
			p.AddConstraint(Constraint{Terms: terms, Op: LE, RHS: rng.Float64() * float64(n) * 2})
		}
		want := bruteForceBinary(p, bins)
		sol, err := p.Solve()
		if math.IsNaN(want) {
			if err != ErrInfeasible {
				t.Fatalf("trial %d: want infeasible, got %v obj=%v", trial, err, sol.Objective)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: milp %v != brute force %v", trial, sol.Objective, want)
		}
	}
}

func TestSolutionAccessors(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 2, -1)
	sol := solveOK(t, p)
	if len(sol.Values()) != 1 || !near(sol.Value(x), 2) {
		t.Fatalf("Values() = %v", sol.Values())
	}
	if sol.Nodes != 1 {
		t.Fatalf("Nodes = %d, want 1 for pure LP", sol.Nodes)
	}
}

func TestStatusAndOpStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Fatal("Status strings wrong")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("Op strings wrong")
	}
	if Status(99).String() != "unknown" || Op(9).String() != "?" {
		t.Fatal("fallback strings wrong")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	p := NewProblem()
	mustPanic("negative lower", func() { p.AddVariable("x", -1, 1, 0) })
	mustPanic("upper<lower", func() { p.AddVariable("x", 2, 1, 0) })
	x := p.AddVariable("x", 0, 1, 0)
	mustPanic("bad constraint var", func() {
		p.AddConstraint(Constraint{Terms: []Term{{x + 5, 1}}, Op: LE, RHS: 1})
	})
	mustPanic("bad SetBounds", func() { p.SetBounds(x, 3, 1) })
}

func TestSetIntegral(t *testing.T) {
	p := NewProblem()
	p.SetMaximize()
	x := p.AddVariable("x", 0, 2.5, 1)
	p.SetIntegral(x)
	if !p.HasIntegers() {
		t.Fatal("SetIntegral not recorded")
	}
	sol := solveOK(t, p)
	if !near(sol.Value(x), 2) {
		t.Fatalf("x = %v, want integral 2", sol.Value(x))
	}
	if sol.Nodes < 1 {
		t.Fatal("no branch-and-bound nodes reported")
	}
}

func TestMILPNodeLimit(t *testing.T) {
	// A tiny node budget on a problem whose relaxation is fractional:
	// either an incumbent is found within budget or IterLimit reported.
	rng := rand.New(rand.NewSource(55))
	p := NewProblem()
	p.SetMaximize()
	n := 14
	bins := make([]VarID, n)
	for j := range bins {
		bins[j] = p.AddBinary("b", 1+rng.Float64())
	}
	terms := make([]Term, n)
	for j := range terms {
		terms[j] = Term{bins[j], 1 + rng.Float64()}
	}
	p.AddConstraint(Constraint{Terms: terms, Op: LE, RHS: float64(n) / 3})
	sol, err := p.SolveOpts(Options{MaxNodes: 2})
	if err == nil {
		// Found and proved optimal within 2 nodes; acceptable.
		return
	}
	if sol.Status != IterLimit {
		t.Fatalf("status = %v, want iteration-limit", sol.Status)
	}
	// A larger budget must solve it.
	if _, err := p.SolveOpts(Options{MaxNodes: 100000}); err != nil {
		t.Fatalf("full solve: %v", err)
	}
}

func TestMILPMinimization(t *testing.T) {
	// Set-cover-ish minimization: min a+b+c s.t. a+b >= 1, b+c >= 1,
	// a+c >= 1 over binaries → pick any two, objective 2.
	p := NewProblem()
	a := p.AddBinary("a", 1)
	b := p.AddBinary("b", 1)
	c := p.AddBinary("c", 1)
	p.AddConstraint(Constraint{Terms: []Term{{a, 1}, {b, 1}}, Op: GE, RHS: 1})
	p.AddConstraint(Constraint{Terms: []Term{{b, 1}, {c, 1}}, Op: GE, RHS: 1})
	p.AddConstraint(Constraint{Terms: []Term{{a, 1}, {c, 1}}, Op: GE, RHS: 1})
	sol := solveOK(t, p)
	if !near(sol.Objective, 2) {
		t.Fatalf("obj = %v, want 2", sol.Objective)
	}
}

func TestZeroVariableProblem(t *testing.T) {
	p := NewProblem()
	sol := solveOK(t, p)
	if sol.Objective != 0 || len(sol.Values()) != 0 {
		t.Fatalf("empty problem: %+v", sol)
	}
}

func TestFixedVariableViaBounds(t *testing.T) {
	// lower == upper pins the variable.
	p := NewProblem()
	x := p.AddVariable("x", 3, 3, 1)
	y := p.AddVariable("y", 0, math.Inf(1), 1)
	p.AddConstraint(Constraint{Terms: []Term{{x, 1}, {y, 1}}, Op: GE, RHS: 5})
	sol := solveOK(t, p)
	if !near(sol.Value(x), 3) || !near(sol.Value(y), 2) {
		t.Fatalf("x=%v y=%v", sol.Value(x), sol.Value(y))
	}
}
