package lp

import "bate/internal/metrics"

// Process-wide solver instrumentation. Paired with the bate and
// scenario counters these show where scheduling time goes: how often
// the revised engine refactorizes, how many warm starts land, and how
// the pivot work splits across engines.
var (
	factorizations = metrics.NewCounter("lp.factorizations")
	warmstartHits  = metrics.NewCounter("lp.warmstart_hits")
	warmstartMiss  = metrics.NewCounter("lp.warmstart_misses")
	pivotsDense    = metrics.NewCounter("lp.pivots_dense")
	pivotsRevised  = metrics.NewCounter("lp.pivots_revised")
)
