package lp

import "bate/internal/metrics"

// Process-wide solver instrumentation. Paired with the bate and
// scenario counters these show where scheduling time goes: how often
// the revised engine refactorizes, how many warm starts land, and how
// the pivot work splits across engines.
var (
	factorizations = metrics.NewCounter("lp.factorizations")
	warmstartHits  = metrics.NewCounter("lp.warmstart_hits")
	warmstartMiss  = metrics.NewCounter("lp.warmstart_misses")
	pivotsDense    = metrics.NewCounter("lp.pivots_dense")
	pivotsRevised  = metrics.NewCounter("lp.pivots_revised")
	abortsCtr      = metrics.NewCounter("lp.aborts")

	// Batch (first-order) engine instrumentation: solves routed to the
	// batch path, PDHG iterations spent there, solves that fell back to
	// the revised simplex (non-convergence or polish failure), and
	// solves routed to simplex because they were under the size
	// threshold.
	batchSolves    = metrics.NewCounter("lp.batch_solves")
	batchIters     = metrics.NewCounter("lp.batch_iterations")
	batchFallbacks = metrics.NewCounter("lp.batch_fallbacks")
	batchSmall     = metrics.NewCounter("lp.batch_small_bypass")
)
