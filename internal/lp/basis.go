package lp

// Basis factorization for the revised simplex: the basis inverse is
// held in product form (PFI) as a sequence of eta matrices. Each pivot
// appends one eta; FTRAN applies the file forward, BTRAN applies the
// transposes in reverse. The file is rebuilt (refactorized) from the
// current basic columns once it grows past refactorEvery etas, which
// both bounds FTRAN/BTRAN cost and flushes accumulated roundoff.

// etaDropTol discards eta entries below this magnitude.
const etaDropTol = 1e-12

// singularTol is the minimum acceptable pivot magnitude during
// refactorization; below it the candidate basis is declared singular.
const singularTol = 1e-8

// eta is one product-form update: an identity matrix whose column
// `pivot` is replaced by the vector with pivotVal at the pivot row and
// val[k] at row ind[k] elsewhere.
type eta struct {
	pivot    int32
	pivotVal float64
	ind      []int32
	val      []float64
}

// factorization is the eta-file representation of B⁻¹.
type factorization struct {
	m    int
	etas []eta
}

// reset empties the eta file.
func (f *factorization) reset(m int) {
	f.m = m
	f.etas = f.etas[:0]
}

// ftran solves B z = a in place: v holds a on entry, B⁻¹a on exit.
func (f *factorization) ftran(v []float64) {
	for k := range f.etas {
		e := &f.etas[k]
		t := v[e.pivot]
		if t == 0 {
			continue
		}
		v[e.pivot] = t * e.pivotVal
		for i, r := range e.ind {
			v[r] += t * e.val[i]
		}
	}
}

// btran solves Bᵀ y = c in place: v holds c on entry, B⁻ᵀc on exit.
func (f *factorization) btran(v []float64) {
	for k := len(f.etas) - 1; k >= 0; k-- {
		e := &f.etas[k]
		s := e.pivotVal * v[e.pivot]
		for i, r := range e.ind {
			s += e.val[i] * v[r]
		}
		v[e.pivot] = s
	}
}

// push appends the eta for a pivot on row r of the FTRAN'd entering
// column w (w = B⁻¹ a_enter). w is left dirty.
func (f *factorization) push(w []float64, r int32) {
	pv := 1 / w[r]
	var ind []int32
	var val []float64
	for i, x := range w {
		if int32(i) == r || x == 0 {
			continue
		}
		if x < etaDropTol && x > -etaDropTol {
			continue
		}
		ind = append(ind, int32(i))
		val = append(val, -x*pv)
	}
	f.etas = append(f.etas, eta{pivot: r, pivotVal: pv, ind: ind, val: val})
}

// refactor rebuilds the eta file from the basic column set. basic
// lists one column per row (any order); colOf materializes a column's
// nonzeros. On success it returns the row each basic column pivoted on
// (rowVar[row] = column) and true; on a singular basis it returns
// false with the factorization left unusable.
func (f *factorization) refactor(m int, basic []int32, colOf func(j int32) ([]int32, []float64), work []float64) ([]int32, bool) {
	f.reset(m)
	factorizations.Inc()
	// Process sparsest columns first: unit slack/artificial columns
	// pivot trivially and keep the etas of later, denser columns short.
	order := make([]int32, len(basic))
	copy(order, basic)
	nnzOf := func(j int32) int {
		ind, _ := colOf(j)
		return len(ind)
	}
	// Insertion sort by nnz (m is moderate; basic is mostly unit cols).
	for i := 1; i < len(order); i++ {
		j, nj := order[i], nnzOf(order[i])
		k := i - 1
		for k >= 0 && nnzOf(order[k]) > nj {
			order[k+1] = order[k]
			k--
		}
		order[k+1] = j
	}
	rowUsed := make([]bool, m)
	rowVar := make([]int32, m)
	for i := range rowVar {
		rowVar[i] = -1
	}
	for _, j := range order {
		ind, val := colOf(j)
		for i := range work {
			work[i] = 0
		}
		for k, r := range ind {
			work[r] = val[k]
		}
		f.ftran(work)
		// Pivot on the largest-magnitude entry in an unused row.
		best, bestAbs := int32(-1), singularTol
		for r := 0; r < m; r++ {
			if rowUsed[r] {
				continue
			}
			a := work[r]
			if a < 0 {
				a = -a
			}
			if a > bestAbs {
				bestAbs = a
				best = int32(r)
			}
		}
		if best < 0 {
			return nil, false
		}
		// Identity columns (slack already pivoting its own untouched
		// row with coefficient 1) need no eta.
		if !(work[best] == 1 && isUnitVector(work, best)) {
			f.push(work, best)
		}
		rowUsed[best] = true
		rowVar[best] = j
	}
	return rowVar, true
}

// isUnitVector reports whether w is exactly e_r (value checked by the
// caller); used to skip identity etas during refactorization.
func isUnitVector(w []float64, r int32) bool {
	for i, x := range w {
		if int32(i) != r && x != 0 {
			return false
		}
	}
	return true
}

// Basis is an opaque snapshot of an optimal revised-simplex basis,
// reusable to warm-start a later solve of a structurally identical
// problem (same variable and constraint counts, same constraint
// operators). Obtain one from Solution.Basis after a revised-engine
// solve and pass it back via Options.Warm.
type Basis struct {
	ns, m   int
	ops     []Op
	status  []int8  // per structural+slack column
	rowVar  []int32 // basic column per row (may include artificials)
	artSign []int8  // per-row artificial column sign
}

// matches reports whether the snapshot fits problem p's shape.
func (b *Basis) matches(p *Problem) bool {
	if b == nil || b.ns != len(p.vars) || b.m != len(p.cons) {
		return false
	}
	for i, c := range p.cons {
		if b.ops[i] != c.Op {
			return false
		}
	}
	return true
}
