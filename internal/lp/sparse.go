package lp

// Sparse column storage for the revised simplex. BATE's LPs are
// extremely sparse — an Eq. 3-4 row touches one demand's tunnels plus
// one B variable, a capacity row the flows crossing one link — so the
// constraint matrix is stored once in compressed-sparse-column (CSC)
// form and every solver pass works on column nonzeros instead of dense
// tableau rows.

// cscMatrix is a compressed-sparse-column matrix: column j's nonzeros
// are rows ind[ptr[j]:ptr[j+1]] with values val[ptr[j]:ptr[j+1]].
type cscMatrix struct {
	m, n int
	ptr  []int32
	ind  []int32
	val  []float64
}

// col returns column j's row indices and values.
func (c *cscMatrix) col(j int) ([]int32, []float64) {
	return c.ind[c.ptr[j]:c.ptr[j+1]], c.val[c.ptr[j]:c.ptr[j+1]]
}

// buildCSC assembles the CSC matrix of the problem's structural
// columns followed by one slack/surplus column per LE/GE row (+e_i for
// LE, -e_i for GE). Duplicate variables within one constraint are
// summed, matching the dense tableau's semantics. slackCol[i] is the
// CSC column of row i's slack, or -1 for EQ rows.
func buildCSC(p *Problem) (csc *cscMatrix, slackCol []int32) {
	ns := len(p.vars)
	m := len(p.cons)

	// Count structural nonzeros per column, summing duplicates via a
	// per-row scatter into acc (touched tracks dirtied entries).
	acc := make([]float64, ns)
	touched := make([]int32, 0, 16)
	counts := make([]int32, ns)
	nSlack := 0
	for _, c := range p.cons {
		touched = touched[:0]
		for _, t := range c.Terms {
			if acc[t.Var] == 0 {
				touched = append(touched, int32(t.Var))
			}
			acc[t.Var] += t.Coef
		}
		for _, j := range touched {
			if acc[j] != 0 {
				counts[j]++
			}
			acc[j] = 0
		}
		if c.Op != EQ {
			nSlack++
		}
	}

	n := ns + nSlack
	ptr := make([]int32, n+1)
	for j := 0; j < ns; j++ {
		ptr[j+1] = ptr[j] + counts[j]
	}
	for j := ns; j < n; j++ {
		ptr[j+1] = ptr[j] + 1 // unit slack columns
	}
	nnz := ptr[n]
	ind := make([]int32, nnz)
	val := make([]float64, nnz)

	// Fill structural columns row by row; next[j] is the write cursor.
	next := make([]int32, ns)
	copy(next, ptr[:ns])
	for i, c := range p.cons {
		touched = touched[:0]
		for _, t := range c.Terms {
			if acc[t.Var] == 0 {
				touched = append(touched, int32(t.Var))
			}
			acc[t.Var] += t.Coef
		}
		for _, j := range touched {
			if acc[j] != 0 {
				ind[next[j]] = int32(i)
				val[next[j]] = acc[j]
				next[j]++
			}
			acc[j] = 0
		}
	}
	// Slack columns in row order.
	slackCol = make([]int32, m)
	sc := int32(ns)
	for i, c := range p.cons {
		switch c.Op {
		case LE:
			ind[ptr[sc]] = int32(i)
			val[ptr[sc]] = 1
			slackCol[i] = sc
			sc++
		case GE:
			ind[ptr[sc]] = int32(i)
			val[ptr[sc]] = -1
			slackCol[i] = sc
			sc++
		default:
			slackCol[i] = -1
		}
	}
	return &cscMatrix{m: m, n: n, ptr: ptr, ind: ind, val: val}, slackCol
}
