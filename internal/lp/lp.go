// Package lp provides a self-contained linear-programming and
// mixed-integer-linear-programming solver used by BATE's traffic
// scheduling (Eq. 7), optimal admission control (Appendix A) and
// failure recovery (Eq. 12). It substitutes for the commercial solver
// (Gurobi) used in the paper.
//
// The LP solver is a dense two-phase primal simplex with Dantzig
// pivoting and a Bland anti-cycling fallback. The MILP solver is a
// depth-first branch & bound over the LP relaxation. Problem sizes in
// BATE are moderate (hundreds to a few thousands of rows) after
// scenario aggregation, which dense simplex handles comfortably.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int8

// Constraint operators.
const (
	LE Op = iota // <=
	GE           // >=
	EQ           // ==
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// VarID indexes a variable within a Problem.
type VarID int

// Term is one coefficient of a linear expression.
type Term struct {
	Var  VarID
	Coef float64
}

// Constraint is a linear constraint sum(Terms) Op RHS.
type Constraint struct {
	Name  string
	Terms []Term
	Op    Op
	RHS   float64
}

// variable holds per-variable problem data.
type variable struct {
	name     string
	lower    float64 // >= 0 after model normalization
	upper    float64 // may be +Inf
	cost     float64
	integral bool
}

// Problem is a linear (or mixed-integer) program. The zero value is a
// minimization problem with no variables. Problems are not safe for
// concurrent mutation.
type Problem struct {
	vars     []variable
	cons     []Constraint
	maximize bool
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem { return &Problem{} }

// SetMaximize switches the problem to maximization.
func (p *Problem) SetMaximize() { p.maximize = true }

// AddVariable adds a continuous variable with bounds [lower, upper]
// and objective coefficient cost, returning its id. Lower must be
// finite and >= 0 (BATE's variables are all nonnegative); upper may be
// math.Inf(1).
func (p *Problem) AddVariable(name string, lower, upper, cost float64) VarID {
	if lower < 0 || math.IsInf(lower, 1) || math.IsNaN(lower) {
		panic(fmt.Sprintf("lp: variable %s: invalid lower bound %v", name, lower))
	}
	if upper < lower {
		panic(fmt.Sprintf("lp: variable %s: upper %v < lower %v", name, upper, lower))
	}
	p.vars = append(p.vars, variable{name: name, lower: lower, upper: upper, cost: cost})
	return VarID(len(p.vars) - 1)
}

// AddBinary adds a binary (0/1 integral) variable.
func (p *Problem) AddBinary(name string, cost float64) VarID {
	id := p.AddVariable(name, 0, 1, cost)
	p.vars[id].integral = true
	return id
}

// SetIntegral marks an existing variable as integral.
func (p *Problem) SetIntegral(v VarID) { p.vars[v].integral = true }

// SetCost overwrites the objective coefficient of v.
func (p *Problem) SetCost(v VarID, cost float64) { p.vars[v].cost = cost }

// SetBounds overwrites the bounds of v.
func (p *Problem) SetBounds(v VarID, lower, upper float64) {
	if lower < 0 || upper < lower {
		panic(fmt.Sprintf("lp: SetBounds(%v, %v, %v): invalid", v, lower, upper))
	}
	p.vars[v].lower = lower
	p.vars[v].upper = upper
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.vars) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// HasIntegers reports whether any variable is marked integral.
func (p *Problem) HasIntegers() bool {
	for _, v := range p.vars {
		if v.integral {
			return true
		}
	}
	return false
}

// AddConstraint appends a constraint. Terms referring to out-of-range
// variables, non-finite coefficients, and non-finite RHS values panic
// (like AddVariable) so modelling bugs surface at the call site rather
// than as mysterious pivot behaviour. Duplicate variables within one
// constraint are summed.
func (p *Problem) AddConstraint(c Constraint) {
	for _, t := range c.Terms {
		if t.Var < 0 || int(t.Var) >= len(p.vars) {
			panic(fmt.Sprintf("lp: constraint %s: unknown variable %d", c.Name, t.Var))
		}
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			panic(fmt.Sprintf("lp: constraint %s: invalid coefficient %v for variable %d", c.Name, t.Coef, t.Var))
		}
	}
	if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
		panic(fmt.Sprintf("lp: constraint %s: invalid RHS %v", c.Name, c.RHS))
	}
	p.cons = append(p.cons, c)
}

// Status reports the outcome of a solve.
type Status int8

// Solver statuses.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
	// Aborted means Options.Cancel asked the solve to stop
	// mid-iteration (deadline hit, chaos budget fired). The partial
	// state is discarded; callers keep their previous allocation.
	Aborted
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case Aborted:
		return "aborted"
	}
	return "unknown"
}

// Solution holds the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64
	values    []float64
	duals     []float64
	// Iterations counts simplex pivots (LP) or total pivots across
	// all branch-and-bound nodes (MILP).
	Iterations int
	// Nodes counts branch-and-bound nodes explored (1 for pure LPs).
	Nodes int
	// WarmStarted reports whether the solve reused a supplied warm
	// basis (revised engine only).
	WarmStarted bool
	basis       *Basis
}

// Basis returns the optimal simplex basis when the solve used the
// revised engine and reached optimality, or nil otherwise. Pass it back
// via Options.Warm to warm-start a later solve of a structurally
// identical problem.
func (s *Solution) Basis() *Basis { return s.basis }

// Value returns the optimal value of variable v.
func (s *Solution) Value(v VarID) float64 { return s.values[v] }

// Values returns the full solution vector indexed by VarID. The slice
// must not be modified.
func (s *Solution) Values() []float64 { return s.values }

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrIterLimit  = errors.New("lp: iteration limit exceeded")
	ErrAborted    = errors.New("lp: solve aborted")
)

const (
	eps = 1e-9
	// blandThreshold switches from Dantzig to Bland pivoting to break
	// degenerate cycles.
	blandThreshold = 2000
	maxPivots      = 200000
	// cancelCheckEvery bounds how many pivots (or first-order
	// iterations) run between Options.Cancel polls: cheap enough to be
	// free, frequent enough that a deadline abort lands within
	// microseconds of firing.
	cancelCheckEvery = 64
)

// Solve solves the problem. Integral variables are honoured via branch
// & bound; pure LPs go straight to the simplex. The returned Solution
// always carries a Status; err is non-nil iff Status != Optimal.
func (p *Problem) Solve() (*Solution, error) {
	if p.HasIntegers() {
		return p.solveMILP()
	}
	return p.solveLPWith(nil, nil, Options{})
}
