package lp

import (
	"fmt"
	"math"
	"os"
	"sync"
)

// Engine selects the simplex implementation.
type Engine int8

// Engines. EngineAuto resolves to the dense tableau — the longest-lived
// reference implementation — unless a warm-start basis is supplied, in
// which case only the revised engine can use it. EngineRevised is the
// sparse revised simplex: it touches only matrix nonzeros, handles
// bounds without materializing bound rows, and supports warm starts.
// EngineBatch is the first-order (restarted PDHG) batch solver in
// lp/batch: above Options.BatchMinRows it iterates matrix-vector
// products instead of pivoting, below it routes to the revised simplex
// unchanged, and on non-convergence it transparently falls back to
// the revised simplex.
const (
	EngineAuto Engine = iota
	EngineDense
	EngineRevised
	EngineBatch
)

func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineDense:
		return "dense"
	case EngineRevised:
		return "revised"
	case EngineBatch:
		return "batch"
	}
	return "?"
}

// resolve maps EngineAuto to a concrete engine.
func (e Engine) resolve(warm *Basis) Engine {
	if e != EngineAuto {
		return e
	}
	if warm != nil {
		return EngineRevised
	}
	return EngineDense
}

// Cross-check mode: when LP_CROSSCHECK is set (and not "0"), every LP
// solve runs both engines and panics if Status or objective disagree
// beyond 1e-6 relative. Debug-only — it doubles (at least) the solve
// cost.
var crosscheckState struct {
	once sync.Once
	on   bool
}

func crosscheckOn() bool {
	crosscheckState.once.Do(func() {
		v := os.Getenv("LP_CROSSCHECK")
		crosscheckState.on = v != "" && v != "0"
	})
	return crosscheckState.on
}

// solveLPWith is the single LP entry point: every Solve/SolveOpts/B&B
// node lands here and dispatches on the resolved engine.
func (p *Problem) solveLPWith(overrideLo, overrideHi []float64, opts Options) (*Solution, error) {
	eng := opts.Engine.resolve(opts.Warm)
	if eng == EngineBatch {
		return p.solveLPBatch(overrideLo, overrideHi, opts)
	}
	if crosscheckOn() {
		return p.solveLPCrosscheck(overrideLo, overrideHi, opts, eng)
	}
	if eng == EngineRevised {
		return p.solveLPRevised(overrideLo, overrideHi, opts)
	}
	return p.solveLPDense(overrideLo, overrideHi, opts.Pivot)
}

// solveLPDense runs the dense two-phase tableau simplex.
func (p *Problem) solveLPDense(overrideLo, overrideHi []float64, rule PivotRule) (*Solution, error) {
	t, err := newTableau(p, overrideLo, overrideHi)
	if err != nil {
		// Bound-infeasible (lo > hi after branching).
		return &Solution{Status: Infeasible}, ErrInfeasible
	}
	t.rule = rule
	st := t.run()
	pivotsDense.Add(int64(t.pivots))
	sol := &Solution{Status: st, Iterations: t.pivots, Nodes: 1}
	switch st {
	case Infeasible:
		return sol, ErrInfeasible
	case Unbounded:
		return sol, ErrUnbounded
	case IterLimit:
		return sol, ErrIterLimit
	}
	sol.values = t.extract()
	sol.duals = t.extractDuals(len(p.cons))
	for j, v := range p.vars {
		sol.Objective += v.cost * sol.values[j]
	}
	return sol, nil
}

// solveLPRevised runs the sparse revised simplex, warm-starting from
// opts.Warm when the snapshot fits and remains usable. Warm-start
// infeasibility verdicts come from the dual simplex, whose wrong answer
// would silently prune branch-and-bound subtrees — they are always
// re-confirmed by a cold solve.
func (p *Problem) solveLPRevised(overrideLo, overrideHi []float64, opts Options) (*Solution, error) {
	r, err := newRevisedBase(p, overrideLo, overrideHi)
	if err != nil {
		return &Solution{Status: Infeasible}, ErrInfeasible
	}
	r.rule = opts.Pivot
	r.cancel = opts.Cancel
	var st Status
	warmUsed := false
	if opts.Warm != nil && opts.Warm.matches(p) && r.initWarm(opts.Warm) {
		var usable bool
		st, usable = r.runWarm()
		if usable && st == Infeasible {
			usable = false // cold-confirm dual-simplex infeasibility
		}
		warmUsed = usable
	}
	if warmUsed {
		warmstartHits.Inc()
	} else {
		if opts.Warm != nil {
			warmstartMiss.Inc()
		}
		prior := r.pivots
		r, _ = newRevisedBase(p, overrideLo, overrideHi)
		r.rule = opts.Pivot
		r.cancel = opts.Cancel
		r.pivots = prior // keep the count monotone across the restart
		r.initCold()
		st = r.run()
	}
	pivotsRevised.Add(int64(r.pivots))
	sol := &Solution{Status: st, Iterations: r.pivots, Nodes: 1, WarmStarted: warmUsed}
	switch st {
	case Infeasible:
		return sol, ErrInfeasible
	case Unbounded:
		return sol, ErrUnbounded
	case Aborted:
		abortsCtr.Inc()
		return sol, ErrAborted
	case IterLimit:
		if r.pivots < maxPivots {
			// Numerical bail (singular refactorization), not a genuine
			// pivot-cap hit: fall back to the dense reference engine.
			return p.solveLPDense(overrideLo, overrideHi, opts.Pivot)
		}
		return sol, ErrIterLimit
	}
	sol.values = r.extract()
	sol.duals = r.extractDuals()
	for j, v := range p.vars {
		sol.Objective += v.cost * sol.values[j]
	}
	sol.basis = r.snapshot()
	return sol, nil
}

// solveLPCrosscheck runs both engines and compares their verdicts,
// returning the resolved engine's result.
func (p *Problem) solveLPCrosscheck(overrideLo, overrideHi []float64, opts Options, eng Engine) (*Solution, error) {
	dsol, derr := p.solveLPDense(overrideLo, overrideHi, opts.Pivot)
	rsol, rerr := p.solveLPRevised(overrideLo, overrideHi, opts)
	if dsol.Status != IterLimit && rsol.Status != IterLimit &&
		dsol.Status != Aborted && rsol.Status != Aborted {
		if dsol.Status != rsol.Status {
			panic(fmt.Sprintf("lp: crosscheck status mismatch: dense=%v revised=%v (%d vars, %d cons)",
				dsol.Status, rsol.Status, len(p.vars), len(p.cons)))
		}
		if dsol.Status == Optimal {
			// The dense tableau's phase-1/extraction noise scales with
			// the RHS magnitudes (a binary fixed to 0 by branching can
			// come back as ~1e-6·max|b|), so compare 1e-6 relative to
			// problem scale, not just to the objective.
			scale := 1.0
			for _, c := range p.cons {
				if a := math.Abs(c.RHS); a > scale {
					scale = a
				}
			}
			tol := 1e-6 * (scale + math.Abs(dsol.Objective))
			if d := math.Abs(dsol.Objective - rsol.Objective); d > tol {
				panic(fmt.Sprintf("lp: crosscheck objective mismatch: dense=%.12g revised=%.12g diff=%g (%d vars, %d cons)",
					dsol.Objective, rsol.Objective, d, len(p.vars), len(p.cons)))
			}
		}
	}
	if eng == EngineRevised {
		return rsol, rerr
	}
	return dsol, derr
}
