package lp

// Dual values (shadow prices) for the problem's constraints, recovered
// from the final simplex tableau. BATE uses link-capacity duals as the
// marginal value of WAN bandwidth: the objective improvement per extra
// Mbps on a link, which prices capacity upgrades.
//
// Conventions: the dual of constraint i is the derivative of the
// optimal objective with respect to the constraint's RHS, in the
// problem's own sense (minimize or maximize). For a minimization
// problem, a binding >= constraint has a nonnegative dual and a
// binding <= constraint a nonpositive one; maximization flips signs.

// Duals returns the dual value per constraint (indexed as added via
// AddConstraint). Only available for pure LPs solved to optimality;
// MILP solutions return nil.
func (s *Solution) Duals() []float64 { return s.duals }

// Dual returns the dual value of constraint i (0 when unavailable).
func (s *Solution) Dual(i int) float64 {
	if s.duals == nil || i < 0 || i >= len(s.duals) {
		return 0
	}
	return s.duals[i]
}

// rowMeta records how a user constraint maps onto internal tableau
// rows: its auxiliary column and whether the row was negated during
// RHS normalization.
type rowMeta struct {
	userIdx int  // index into Problem.cons, or -1 for bound rows
	auxCol  int  // slack/surplus/artificial column holding ±e_i
	auxSign int8 // +1 if the aux column is +e_i, -1 for surplus (-e_i)
	negated bool // row multiplied by -1 during normalization
}

// extractDuals computes the user-constraint duals from the final
// reduced costs: with simplex multipliers y = c_B B⁻¹, the reduced
// cost of an auxiliary column ±e_i is c_aux ∓ y_i and c_aux = 0 in
// phase 2, so y_i = ∓reduced[aux].
func (t *tableau) extractDuals(nCons int) []float64 {
	duals := make([]float64, nCons)
	for i, m := range t.meta {
		if m.userIdx < 0 || t.deleted[i] {
			// Bound rows have no user constraint; redundant rows
			// (purged in phase 1) carry zero marginal value.
			continue
		}
		y := -t.reduced[m.auxCol]
		if m.auxSign < 0 {
			y = -y
		}
		if m.negated {
			y = -y
		}
		if t.p.maximize {
			// Internally we minimized -c'x; the user-sense dual flips.
			y = -y
		}
		duals[m.userIdx] = y
	}
	return duals
}
