package lp

import (
	"fmt"
	"math"
	"os"
	"sync"

	"bate/internal/lp/batch"
)

// DefaultBatchMinRows is the constraint count below which EngineBatch
// routes to the revised simplex instead: first-order iterations only
// amortize on large instances, and small instances must stay
// byte-identical to the simplex path (the k=1 golden tests).
const DefaultBatchMinRows = 400

// Batch solves that converge are additionally re-solved on the
// revised simplex and compared when LP_BATCH_CROSSCHECK is set (and
// not "0"). The comparison tolerance is first-order loose (the batch
// solver stops at a relative KKT tolerance, not at a vertex).
var batchCrosscheckState struct {
	once sync.Once
	on   bool
}

func batchCrosscheckOn() bool {
	batchCrosscheckState.once.Do(func() {
		v := os.Getenv("LP_BATCH_CROSSCHECK")
		batchCrosscheckState.on = v != "" && v != "0"
	})
	return batchCrosscheckState.on
}

// solveLPBatch dispatches EngineBatch: instances under the size
// threshold route to the revised simplex unchanged (bit-for-bit the
// same solve), larger ones go to the first-order batch solver with a
// transparent revised-simplex fallback on non-convergence.
func (p *Problem) solveLPBatch(overrideLo, overrideHi []float64, opts Options) (*Solution, error) {
	minRows := opts.BatchMinRows
	if minRows <= 0 {
		minRows = DefaultBatchMinRows
	}
	if len(p.cons) < minRows {
		batchSmall.Inc()
		ro := opts
		ro.Engine = EngineRevised
		return p.solveLPWith(overrideLo, overrideHi, ro)
	}
	// The blocked form cannot represent a row with no columns (a
	// constraint whose term list is empty — vacuously feasible or
	// trivially infeasible depending on the RHS); the simplex lowering
	// handles those exactly, so such problems bypass the batch solver.
	for _, c := range p.cons {
		if len(c.Terms) == 0 {
			batchFallbacks.Inc()
			ro := opts
			ro.Engine = EngineRevised
			return p.solveLPWith(overrideLo, overrideHi, ro)
		}
	}
	batchSolves.Inc()
	f, senses := p.batchForm(overrideLo, overrideHi)
	res := batch.Solve(f, batch.Options{Cancel: opts.Cancel})
	batchIters.Add(int64(res.Iterations))
	switch res.Status {
	case batch.Aborted:
		abortsCtr.Inc()
		return &Solution{Status: Aborted, Iterations: res.Iterations, Nodes: 1}, ErrAborted
	case batch.IterLimit:
		// Non-convergence covers genuinely hard, infeasible and
		// unbounded instances alike: the simplex delivers the exact
		// verdict.
		batchFallbacks.Inc()
		ro := opts
		ro.Engine = EngineRevised
		sol, err := p.solveLPWith(overrideLo, overrideHi, ro)
		if sol != nil {
			sol.Iterations += res.Iterations
		}
		return sol, err
	}
	sol := &Solution{Status: Optimal, Iterations: res.Iterations, Nodes: 1}
	sol.values = res.X
	sol.duals = make([]float64, len(p.cons))
	for i, y := range res.Y {
		// User-sense duals: row i was negated into GE form iff the
		// user wrote LE, and the revised engine's convention reports
		// the internal-minimization multiplier, sign-flipped for
		// maximization.
		d := y * senses[i]
		if p.maximize {
			d = -d
		}
		sol.duals[i] = d
	}
	for j, v := range p.vars {
		sol.Objective += v.cost * res.X[j]
	}
	if batchCrosscheckOn() {
		ro := opts
		ro.Engine = EngineRevised
		rsol, rerr := p.solveLPWith(overrideLo, overrideHi, ro)
		if rerr != nil {
			panic(fmt.Sprintf("lp: batch crosscheck: batch converged but simplex failed: %v (%d vars, %d cons)",
				rerr, len(p.vars), len(p.cons)))
		}
		scale := 1.0
		for _, c := range p.cons {
			if a := math.Abs(c.RHS); a > scale {
				scale = a
			}
		}
		tol := 1e-4 * (scale + math.Abs(rsol.Objective))
		if d := math.Abs(sol.Objective - rsol.Objective); d > tol {
			panic(fmt.Sprintf("lp: batch crosscheck objective mismatch: batch=%.12g revised=%.12g diff=%g (%d vars, %d cons)",
				sol.Objective, rsol.Objective, d, len(p.vars), len(p.cons)))
		}
	}
	return sol, nil
}

// batchForm lowers the Problem (with optional bound overrides) into
// the batch package's GE/EQ normal form, one single-row block per
// constraint. The returned sign vector maps internal GE duals back to
// user-sense rows (-1 for rows the lowering negated). Callers that
// can expose block structure (bate's scheduling assembly) build their
// Form directly instead of going through here.
func (p *Problem) batchForm(overrideLo, overrideHi []float64) (*batch.Form, []float64) {
	b := batch.NewBuilder(len(p.vars))
	for j, v := range p.vars {
		lo, hi := v.lower, v.upper
		if overrideLo != nil {
			lo = overrideLo[j]
		}
		if overrideHi != nil {
			hi = overrideHi[j]
		}
		b.SetBounds(j, lo, hi)
		cost := v.cost
		if p.maximize {
			cost = -cost
		}
		b.SetCost(j, cost)
	}
	senses := make([]float64, len(p.cons))
	cols := make([]int, 0, 16)
	vals := make([]float64, 0, 16)
	for ci, c := range p.cons {
		cols = cols[:0]
		vals = vals[:0]
		// Duplicate variables within one constraint are summed, like
		// the simplex lowering does.
		idx := make(map[VarID]int, len(c.Terms))
		for _, t := range c.Terms {
			if k, ok := idx[t.Var]; ok {
				vals[k] += t.Coef
				continue
			}
			idx[t.Var] = len(cols)
			cols = append(cols, int(t.Var))
			vals = append(vals, t.Coef)
		}
		switch c.Op {
		case LE:
			b.AddRowLE(cols, vals, c.RHS)
			senses[ci] = -1
		case GE:
			b.AddRow(batch.GE, cols, vals, c.RHS)
			senses[ci] = 1
		case EQ:
			b.AddRow(batch.EQ, cols, vals, c.RHS)
			senses[ci] = 1
		}
	}
	return b.Build(), senses
}
