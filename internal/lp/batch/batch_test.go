package batch

import (
	"math"
	"testing"
)

// adjointForm builds a form mixing single rows and a multi-row block
// with extra scattered entries, for kernel identities.
func adjointForm() *Form {
	b := NewBuilder(6)
	b.AddRow(GE, []int{0, 2, 4}, []float64{1, -2, 3}, 1)
	b.AddRowLE([]int{1, 3}, []float64{2, 5}, 7)
	b.AddBlockGE(
		[]int{0, 1, 2},
		[]float64{
			1, 0, 2,
			0, 3, 1,
			4, 1, 0,
		},
		[]int{3, 4, -1},
		[]float64{-1.5, 2.5, 0},
		[]float64{0, 0, 0},
	)
	b.AddRow(EQ, []int{5}, []float64{1}, 2)
	return b.Build()
}

func TestKernelAdjoint(t *testing.T) {
	f := adjointForm()
	x := []float64{1, -2, 3, 0.5, -1, 2}
	y := []float64{2, -1, 0.5, 3, -2, 1}
	if len(y) != f.NumRows {
		t.Fatalf("form has %d rows, want %d", f.NumRows, len(y))
	}
	kx := make([]float64, f.NumRows)
	kty := make([]float64, f.NumCols)
	scr := f.Scratch()
	f.MulK(x, kx, scr)
	f.MulKT(y, kty, scr)
	lhs, rhs := 0.0, 0.0
	for i, v := range kx {
		lhs += y[i] * v
	}
	for j, v := range kty {
		rhs += x[j] * v
	}
	if math.Abs(lhs-rhs) > 1e-12*(1+math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: y'Kx=%g x'K'y=%g", lhs, rhs)
	}
}

func TestBlockEquivalentToRows(t *testing.T) {
	// The same matrix assembled as one block vs individual rows must
	// produce identical MulK results.
	cols := []int{1, 3, 4}
	vals := []float64{
		1, 2, 0,
		0, 1, 3,
	}
	xcol := []int{0, 2}
	xval := []float64{-1, 4}

	bb := NewBuilder(5)
	bb.AddBlockGE(cols, vals, xcol, xval, []float64{1, 2})
	fb := bb.Build()

	rb := NewBuilder(5)
	rb.AddRow(GE, []int{1, 3, 0}, []float64{1, 2, -1}, 1)
	rb.AddRow(GE, []int{3, 4, 2}, []float64{1, 3, 4}, 2)
	fr := rb.Build()

	x := []float64{1, 2, 3, 4, 5}
	ob := make([]float64, 2)
	or := make([]float64, 2)
	fb.MulK(x, ob, fb.Scratch())
	fr.MulK(x, or, fr.Scratch())
	for i := range ob {
		if math.Abs(ob[i]-or[i]) > 1e-12 {
			t.Fatalf("row %d: block %g vs rows %g", i, ob[i], or[i])
		}
	}
}

func TestSolveTinyLP(t *testing.T) {
	// min x0 + 2*x1  s.t.  x0 + x1 >= 1,  x0 <= 0.4  ⇒ x = (0.4, 0.6), obj 1.6
	b := NewBuilder(2)
	b.SetCost(0, 1)
	b.SetCost(1, 2)
	b.SetBounds(0, 0, 0.4)
	b.AddRow(GE, []int{0, 1}, []float64{1, 1}, 1)
	res := Solve(b.Build(), Options{EpsFeas: 1e-8, EpsGap: 1e-8})
	if res.Status != Converged {
		t.Fatalf("status %v, residuals p=%g d=%g g=%g", res.Status, res.PrimalRes, res.DualRes, res.Gap)
	}
	if math.Abs(res.Objective-1.6) > 1e-5 {
		t.Fatalf("objective %g, want 1.6", res.Objective)
	}
	if math.Abs(res.X[0]-0.4) > 1e-4 || math.Abs(res.X[1]-0.6) > 1e-4 {
		t.Fatalf("x = %v, want (0.4, 0.6)", res.X)
	}
	// GE dual: loosening the >= 1 row by one unit saves 2 (x1's cost).
	if math.Abs(res.Y[0]-2) > 1e-3 {
		t.Fatalf("dual %g, want 2", res.Y[0])
	}
}

func TestSolveEqualityRow(t *testing.T) {
	// min x0 + x1  s.t.  x0 - x1 == 0.5, x0 + x1 >= 1  ⇒ (0.75, 0.25)
	b := NewBuilder(2)
	b.SetCost(0, 1)
	b.SetCost(1, 1)
	b.AddRow(EQ, []int{0, 1}, []float64{1, -1}, 0.5)
	b.AddRow(GE, []int{0, 1}, []float64{1, 1}, 1)
	res := Solve(b.Build(), Options{EpsFeas: 1e-8, EpsGap: 1e-8})
	if res.Status != Converged {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[0]-0.75) > 1e-4 || math.Abs(res.X[1]-0.25) > 1e-4 {
		t.Fatalf("x = %v, want (0.75, 0.25)", res.X)
	}
}

func TestSolveAborts(t *testing.T) {
	b := NewBuilder(2)
	b.SetCost(0, 1)
	b.AddRow(GE, []int{0, 1}, []float64{1, 1}, 1)
	stop := func() error { return errStop }
	res := Solve(b.Build(), Options{Cancel: stop})
	if res.Status != Aborted {
		t.Fatalf("status %v, want Aborted", res.Status)
	}
}

type stopErr struct{}

func (stopErr) Error() string { return "stop" }

var errStop error = stopErr{}

func TestSolveIterLimitOnInfeasible(t *testing.T) {
	// x >= 2 with x <= 1 bound cannot converge; the solver must come
	// back IterLimit (the caller's cue to fall back to simplex).
	b := NewBuilder(1)
	b.SetBounds(0, 0, 1)
	b.AddRow(GE, []int{0}, []float64{1}, 2)
	res := Solve(b.Build(), Options{MaxIters: 500})
	if res.Status != IterLimit {
		t.Fatalf("status %v, want IterLimit", res.Status)
	}
}
