package batch

import "math"

// Status reports the outcome of a first-order solve.
type Status int8

// Solve outcomes. The solver has no infeasibility certificate: an
// infeasible or unbounded form simply fails to converge and comes
// back IterLimit, which callers treat as "fall back to simplex".
const (
	Converged Status = iota
	IterLimit
	Aborted
)

func (s Status) String() string {
	switch s {
	case Converged:
		return "converged"
	case IterLimit:
		return "iteration-limit"
	case Aborted:
		return "aborted"
	}
	return "unknown"
}

// Options tunes the first-order solver.
type Options struct {
	// MaxIters bounds PDHG iterations (0 = 25000).
	MaxIters int
	// EpsFeas is the per-row relative primal feasibility tolerance
	// (0 = 1e-6): every row's violation satisfies
	// viol_i ≤ EpsFeas·(1+|q_i|+‖K_i·‖∞), so small-RHS rows converge
	// as tightly relative to their own scale as large-RHS ones.
	EpsFeas float64
	// EpsDual is the relative dual feasibility tolerance (0 = EpsFeas):
	// max unabsorbed reduced cost ≤ EpsDual·(1+‖c‖∞). Callers that
	// certify optimality through the gap (and retire primal debt by
	// polishing) can afford a looser dual tolerance than primal.
	EpsDual float64
	// EpsGap is the relative duality-gap tolerance (0 = 1e-6).
	EpsGap float64
	// CheckEvery is the iteration cadence of termination/restart
	// checks and Cancel polls (0 = 64).
	CheckEvery int
	// Cancel, when non-nil, is polled every CheckEvery iterations; a
	// non-nil return aborts with Status Aborted.
	Cancel func() error
}

// Result is a first-order solve outcome. X and Y are in the original
// (unscaled) space; Y follows the form's row senses (≥ 0 on GE rows).
type Result struct {
	Status     Status
	X, Y       []float64
	Objective  float64 // cᵀx
	Iterations int
	// Final relative KKT residuals.
	PrimalRes, DualRes, Gap float64
}

const (
	ruizIters    = 10
	powerIters   = 40
	stepSafety   = 0.95 // τσ‖K‖² = stepSafety² < 1
	restartSuff  = 0.2  // restart on sufficient KKT decay...
	restartNec   = 0.8  // ...or on necessary decay + stalled progress
	weightSmooth = 0.5  // log-space smoothing of the primal weight
)

// solverState carries the scaled problem and iterate workspace.
type solverState struct {
	f      *Form     // scaled copy
	dr, dc []float64 // cumulative Ruiz scalings (K' = Dr·K·Dc)
	q, c   []float64 // unscaled RHS and cost (for residuals)
	qs, cs []float64 // scaled RHS and cost
	lo, hi []float64 // scaled bounds
	x, y   []float64 // current scaled iterates
	x0, y0 []float64 // Halpern anchor
	xn, yn []float64 // next iterates
	kty    []float64 // K'ᵀy workspace
	kx     []float64 // K'·(2x⁺-x) workspace
	scr    []float64 // block gather scratch

	// Unscaled check workspace.
	ux, uy, ured []float64
	uact         []float64

	normK    float64
	omega    float64
	qInf     float64
	cInf     float64
	rowScale []float64 // unscaled row inf-norms, for per-row tolerances
	hasBound []bool    // hi finite per column
}

// Solve runs the restarted-Halpern PDHG solver on f. f is not
// modified (the solver scales a private copy of the matrix values).
func Solve(f *Form, opts Options) *Result {
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = 25000
	}
	epsFeas := opts.EpsFeas
	if epsFeas <= 0 {
		epsFeas = 1e-6
	}
	epsDual := opts.EpsDual
	if epsDual <= 0 {
		epsDual = epsFeas
	}
	epsGap := opts.EpsGap
	if epsGap <= 0 {
		epsGap = 1e-6
	}
	checkEvery := opts.CheckEvery
	if checkEvery <= 0 {
		checkEvery = 64
	}

	s := newSolverState(f)
	tau := stepSafety / (s.normK * s.omega)
	sigma := stepSafety * s.omega / s.normK

	best := &Result{Status: IterLimit, PrimalRes: math.Inf(1), DualRes: math.Inf(1), Gap: math.Inf(1)}
	bestMu := math.Inf(1)
	muAnchor := math.Inf(1)
	muPrev := math.Inf(1)
	var xr, yr []float64 // iterate at previous restart, for ω updates
	k := 0               // iterations since last restart

	for t := 0; t < maxIters; t++ {
		if t%checkEvery == 0 {
			if opts.Cancel != nil && opts.Cancel() != nil {
				best.Status = Aborted
				best.Iterations = t
				return best
			}
			pr, prG, dr, gap, pObj := s.kktResiduals()
			if math.IsNaN(pr) || math.IsNaN(dr) {
				best.Iterations = t
				return best // numerical blow-up; caller falls back
			}
			// The restart/best signal uses the global primal measure: the
			// per-row one is spiky on zero-RHS rows mid-convergence and
			// would wreck the anchor schedule.
			mu := math.Sqrt(prG*prG + dr*dr + gap*gap)
			if mu < bestMu {
				bestMu = mu
				best.PrimalRes, best.DualRes, best.Gap, best.Objective = pr, dr, gap, pObj
				best.X = append(best.X[:0], s.ux...)
				best.Y = append(best.Y[:0], s.uy...)
			}
			if pr <= epsFeas && dr <= epsDual && gap <= epsGap {
				best.Status = Converged
				best.Iterations = t
				best.PrimalRes, best.DualRes, best.Gap, best.Objective = pr, dr, gap, pObj
				best.X = append(best.X[:0], s.ux...)
				best.Y = append(best.Y[:0], s.uy...)
				return best
			}
			// Restart: sufficient KKT decay since the anchor, or
			// necessary decay with stalled progress.
			if mu <= restartSuff*muAnchor || (mu <= restartNec*muAnchor && mu > muPrev) {
				if xr != nil {
					dx, dy := dist2(s.x, xr), dist2(s.y, yr)
					if dx > 1e-12 && dy > 1e-12 {
						s.omega = math.Exp(weightSmooth*math.Log(dy/dx) + (1-weightSmooth)*math.Log(s.omega))
						tau = stepSafety / (s.normK * s.omega)
						sigma = stepSafety * s.omega / s.normK
					}
				}
				xr = append(xr[:0], s.x...)
				yr = append(yr[:0], s.y...)
				copy(s.x0, s.x)
				copy(s.y0, s.y)
				muAnchor = mu
				k = 0
			}
			muPrev = mu
		}
		s.step(tau, sigma, k)
		k++
	}
	best.Iterations = maxIters
	return best
}

// newSolverState scales the form (Ruiz equilibration), estimates ‖K‖
// by power iteration and initializes the iterates at zero (clamped to
// the primal box).
func newSolverState(f *Form) *solverState {
	m, n := f.NumRows, f.NumCols
	s := &solverState{
		q: f.Q, c: f.C,
		dr: make([]float64, m), dc: make([]float64, n),
		x: make([]float64, n), y: make([]float64, m),
		x0: make([]float64, n), y0: make([]float64, m),
		xn: make([]float64, n), yn: make([]float64, m),
		kty: make([]float64, n), kx: make([]float64, m),
		ux: make([]float64, n), uy: make([]float64, m),
		ured: make([]float64, n), uact: make([]float64, m),
		rowScale: make([]float64, m),
		hasBound: make([]bool, n),
	}
	f.rowInfNorms(s.rowScale) // unscaled row magnitudes, before equilibration
	for i := range s.dr {
		s.dr[i] = 1
	}
	for j := range s.dc {
		s.dc[j] = 1
	}
	// Private scaled copy: Cols/XCol patterns are shared (read-only),
	// values are cloned.
	fc := *f
	fc.Blocks = make([]Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := b
		nb.Vals = append([]float64(nil), b.Vals...)
		if b.XVal != nil {
			nb.XVal = append([]float64(nil), b.XVal...)
		}
		fc.Blocks[i] = nb
	}
	s.f = &fc
	s.scr = fc.Scratch()

	// Ruiz equilibration.
	rn := make([]float64, m)
	cn := make([]float64, n)
	for it := 0; it < ruizIters; it++ {
		for i := range rn {
			rn[i] = 0
		}
		for j := range cn {
			cn[j] = 0
		}
		s.f.rowInfNorms(rn)
		s.f.colInfNorms(cn)
		for i := range rn {
			if rn[i] > 0 {
				rn[i] = 1 / math.Sqrt(rn[i])
			} else {
				rn[i] = 1
			}
		}
		for j := range cn {
			if cn[j] > 0 {
				cn[j] = 1 / math.Sqrt(cn[j])
			} else {
				cn[j] = 1
			}
		}
		s.f.scaleRowsCols(rn, cn)
		for i := range s.dr {
			s.dr[i] *= rn[i]
		}
		for j := range s.dc {
			s.dc[j] *= cn[j]
		}
	}
	// Scaled data: q' = Dr·q, c' = Dc·c, x = Dc·x' ⇒ bounds /= dc.
	s.qs = make([]float64, m)
	s.cs = make([]float64, n)
	s.lo = make([]float64, n)
	s.hi = make([]float64, n)
	for i := range s.qs {
		s.qs[i] = f.Q[i] * s.dr[i]
	}
	for j := range s.cs {
		s.cs[j] = f.C[j] * s.dc[j]
		s.lo[j] = f.Lo[j] / s.dc[j]
		s.hi[j] = f.Hi[j] / s.dc[j] // +Inf stays +Inf
		s.hasBound[j] = !math.IsInf(f.Hi[j], 1)
	}
	s.qInf = infNorm(f.Q)
	s.cInf = infNorm(f.C)

	// ‖K'‖₂ by power iteration on K'ᵀK' (deterministic start).
	v := make([]float64, n)
	for j := range v {
		v[j] = 1 + float64((j*2654435761)%1021)/2048
	}
	lam := 1.0
	for it := 0; it < powerIters; it++ {
		s.f.MulK(v, s.kx, s.scr)
		s.f.MulKT(s.kx, s.kty, s.scr)
		nv := norm2(s.kty)
		if nv < 1e-30 {
			break
		}
		lam = nv / norm2(v)
		for j := range v {
			v[j] = s.kty[j] / nv
		}
	}
	s.normK = math.Sqrt(lam) * 1.02 // inflate: power iteration underestimates
	if s.normK < 1e-12 {
		s.normK = 1
	}

	// Initial primal weight: balance the objective and RHS scales.
	cn2, qn2 := norm2(s.cs), norm2(s.qs)
	s.omega = 1
	if cn2 > 1e-12 && qn2 > 1e-12 {
		s.omega = math.Min(1e4, math.Max(1e-4, cn2/qn2))
	}

	clampBounds(s.x, s.lo, s.hi)
	copy(s.x0, s.x)
	return s
}

// step runs one Halpern-anchored PDHG iteration: a plain PDHG step
// from (x, y), then a blend toward the anchor with weight 1/(k+2).
func (s *solverState) step(tau, sigma float64, k int) {
	// Primal: x⁺ = Π[lo,hi](x - τ(c - K'ᵀy)).
	s.f.MulKT(s.y, s.kty, s.scr)
	for j, xj := range s.x {
		s.xn[j] = xj - tau*(s.cs[j]-s.kty[j])
	}
	clampBounds(s.xn, s.lo, s.hi)
	// Dual: y⁺ = Π_cone(y + σ(q - K'(2x⁺ - x))).
	for j, xj := range s.xn {
		s.kty[j] = 2*xj - s.x[j] // reuse kty as extrapolation buffer
	}
	s.f.MulK(s.kty, s.kx, s.scr)
	for i, yi := range s.y {
		s.yn[i] = yi + sigma*(s.qs[i]-s.kx[i])
	}
	clampDual(s.yn, s.f.Sense)
	// Halpern anchor blend; the box and cone are convex, so the blend
	// of two feasible points needs no re-projection.
	w := 1 / float64(k+2)
	for j := range s.xn {
		s.x[j] = w*s.x0[j] + (1-w)*s.xn[j]
	}
	for i := range s.yn {
		s.y[i] = w*s.y0[i] + (1-w)*s.yn[i]
	}
}

// kktResiduals computes the unscaled relative KKT residuals and the
// primal objective at the current iterate, filling s.ux/s.uy with the
// unscaled primal/dual points. One MulK and one MulKT per call.
// primal is the per-row-relative violation used for termination;
// primalGlobal is the ‖q‖∞-relative violation, a smoother signal that
// drives the restart/primal-weight dynamics.
func (s *solverState) kktResiduals() (primal, primalGlobal, dual, gap, pObj float64) {
	// Unscale: x = Dc·x', y = Dr·y'.
	for j, xj := range s.x {
		s.ux[j] = xj * s.dc[j]
	}
	for i, yi := range s.y {
		s.uy[i] = yi * s.dr[i]
	}
	// Unscaled activity Kx = Dr⁻¹(K'x').
	s.f.MulK(s.x, s.uact, s.scr)
	primal = 0.0
	maxViol := 0.0
	for i, a := range s.uact {
		a /= s.dr[i]
		v := s.q[i] - a
		if s.f.Sense[i] == EQ {
			v = math.Abs(v)
		} else if v < 0 {
			v = 0
		}
		if v > maxViol {
			maxViol = v
		}
		// Per-row relative violation, normalized by the row's own
		// magnitude: small-RHS rows (demand bandwidths, availability
		// targets) must converge as tightly relative to their scale as
		// the large-capacity rows, or downstream polishing drowns in
		// their absolute debt. A ‖q‖∞-global measure would let one big
		// link capacity mask ~1e-2 deficits on 100-unit demand rows.
		if r := v / (1 + math.Abs(s.q[i]) + s.rowScale[i]); r > primal {
			primal = r
		}
	}
	primalGlobal = maxViol / (1 + s.qInf)

	// Unscaled reduced costs r = c - Kᵀy = c - Dc⁻¹(K'ᵀy').
	s.f.MulKT(s.y, s.kty, s.scr)
	maxDual := 0.0
	dObj := 0.0
	for j := range s.ured {
		r := s.c[j] - s.kty[j]/s.dc[j]
		s.ured[j] = r
		if s.hasBound[j] {
			// Boxed column: any reduced-cost sign is absorbed by a
			// bound multiplier; it prices into the dual objective.
			if r > 0 {
				dObj += s.f.Lo[j] * r
			} else {
				dObj += s.f.Hi[j] * r
			}
		} else {
			if r > 0 {
				dObj += s.f.Lo[j] * r
			} else if -r > maxDual {
				maxDual = -r // no finite upper bound to absorb r < 0
			}
		}
	}
	dual = maxDual / (1 + s.cInf)

	pObj = 0.0
	for j, xj := range s.ux {
		pObj += s.c[j] * xj
	}
	for i, yi := range s.uy {
		dObj += s.q[i] * yi
	}
	gap = math.Abs(pObj-dObj) / (1 + math.Abs(pObj) + math.Abs(dObj))
	return primal, primalGlobal, dual, gap, pObj
}
