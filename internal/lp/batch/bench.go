package batch

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchRow is one topology's batch-vs-revised measurement in
// BENCH_batch.json. Speedup is revised-simplex wall-clock over the
// batched first-order solve; ObjGap is the relative objective excess
// of the batch schedule ((batch - revised) / revised, signed);
// Violations counts demands whose batch allocation failed the
// capacity or availability verification (must be zero); Fallbacks
// counts rounds the batch path handed back to the simplex.
type BenchRow struct {
	Topology   string  `json:"topology"`
	Nodes      int     `json:"nodes"`
	Links      int     `json:"links"`
	Demands    int     `json:"demands"`
	MaxFail    int     `json:"max_fail"`
	Rows       int     `json:"lp_rows"`
	Cols       int     `json:"lp_cols"`
	RevisedMs  float64 `json:"revised_ms"`
	BatchMs    float64 `json:"batch_ms"`
	Speedup    float64 `json:"speedup"`
	RevisedObj float64 `json:"revised_objective"`
	BatchObj   float64 `json:"batch_objective"`
	ObjGap     float64 `json:"obj_gap"`
	Iterations int     `json:"batch_iterations"`
	Violations int     `json:"violations"`
	Fallbacks  int     `json:"fallbacks"`
}

// BenchReport is the BENCH_batch.json schema.
type BenchReport struct {
	Schema string     `json:"schema"`
	Scale  string     `json:"scale"` // "full" or "smoke"
	Rows   []BenchRow `json:"rows"`
}

// BenchSchema names the current report layout.
const BenchSchema = "bate/batch-bench/v1"

// DefaultObjGapThreshold is the objective-gap floor below which
// baseline drift is treated as noise by CompareBench.
const DefaultObjGapThreshold = 1e-3

// WriteBench writes the report as indented JSON.
func WriteBench(path string, r *BenchReport) error {
	r.Schema = BenchSchema
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadBench loads a report written by WriteBench.
func ReadBench(path string) (*BenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("batch: parse %s: %w", path, err)
	}
	return &r, nil
}

// CompareBench gates cur against a committed baseline: per topology,
// the speedup may not drop below base·(1-tol), |ObjGap| may not
// exceed the larger of base·(1+tol) and DefaultObjGapThreshold,
// violations must stay zero, and fallbacks may not exceed the
// baseline count. It returns human-readable regression lines; empty
// means the gate passes.
func CompareBench(cur, base *BenchReport, tol float64) []string {
	var regressions []string
	rows := make(map[string]BenchRow, len(cur.Rows))
	for _, r := range cur.Rows {
		rows[r.Topology] = r
	}
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	for _, b := range base.Rows {
		c, ok := rows[b.Topology]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from current report", b.Topology))
			continue
		}
		if minSpeed := b.Speedup * (1 - tol); c.Speedup < minSpeed {
			regressions = append(regressions, fmt.Sprintf(
				"%s: speedup %.2fx below %.2fx (baseline %.2fx, tol %.0f%%)",
				b.Topology, c.Speedup, minSpeed, b.Speedup, tol*100))
		}
		maxGap := abs(b.ObjGap) * (1 + tol)
		if maxGap < DefaultObjGapThreshold {
			maxGap = DefaultObjGapThreshold
		}
		if abs(c.ObjGap) > maxGap {
			regressions = append(regressions, fmt.Sprintf(
				"%s: |obj gap| %.5f above %.5f (baseline %.5f, tol %.0f%%)",
				b.Topology, abs(c.ObjGap), maxGap, b.ObjGap, tol*100))
		}
		if c.Violations > 0 {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d feasibility violation(s)", b.Topology, c.Violations))
		}
		if c.Fallbacks > b.Fallbacks {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d fallback(s), baseline %d", b.Topology, c.Fallbacks, b.Fallbacks))
		}
	}
	return regressions
}
