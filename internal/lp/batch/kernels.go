package batch

import "math"

// Vectorized kernels over the blocked form. Every pass amortizes the
// gather/scatter of a block's shared column pattern across all of its
// rows: MulK gathers x[Cols] once and runs a dense mat-vec over the
// block values; MulKT accumulates the block's contribution densely
// and scatters once. The scratch slice must have capacity maxWidth
// (use (*Form).Scratch).

// Scratch returns a kernel scratch buffer sized for the form.
func (f *Form) Scratch() []float64 { return make([]float64, f.maxWidth) }

// MulK computes out = Kx. out must have length NumRows.
func (f *Form) MulK(x, out, scratch []float64) {
	for i := range f.Blocks {
		b := &f.Blocks[i]
		w := len(b.Cols)
		g := scratch[:w]
		for k, c := range b.Cols {
			g[k] = x[c]
		}
		nr := len(b.Vals) / w
		for r := 0; r < nr; r++ {
			row := b.Vals[r*w : (r+1)*w]
			s := 0.0
			for k, v := range row {
				s += v * g[k]
			}
			if b.XCol != nil {
				if c := b.XCol[r]; c >= 0 {
					s += b.XVal[r] * x[c]
				}
			}
			out[b.Row0+r] = s
		}
	}
}

// MulKT computes out = Kᵀy, overwriting out. out must have length
// NumCols.
func (f *Form) MulKT(y, out, scratch []float64) {
	for j := range out {
		out[j] = 0
	}
	for i := range f.Blocks {
		b := &f.Blocks[i]
		w := len(b.Cols)
		acc := scratch[:w]
		for k := range acc {
			acc[k] = 0
		}
		nr := len(b.Vals) / w
		for r := 0; r < nr; r++ {
			yr := y[b.Row0+r]
			if yr != 0 {
				row := b.Vals[r*w : (r+1)*w]
				for k, v := range row {
					acc[k] += yr * v
				}
			}
			if b.XCol != nil {
				if c := b.XCol[r]; c >= 0 {
					out[c] += b.XVal[r] * yr
				}
			}
		}
		for k, c := range b.Cols {
			out[c] += acc[k]
		}
	}
}

// rowInfNorms accumulates max |K_ij| per row into norms (not reset).
func (f *Form) rowInfNorms(norms []float64) {
	for i := range f.Blocks {
		b := &f.Blocks[i]
		w := len(b.Cols)
		nr := len(b.Vals) / w
		for r := 0; r < nr; r++ {
			m := norms[b.Row0+r]
			for _, v := range b.Vals[r*w : (r+1)*w] {
				if a := math.Abs(v); a > m {
					m = a
				}
			}
			if b.XCol != nil && b.XCol[r] >= 0 {
				if a := math.Abs(b.XVal[r]); a > m {
					m = a
				}
			}
			norms[b.Row0+r] = m
		}
	}
}

// colInfNorms accumulates max |K_ij| per column into norms (not
// reset).
func (f *Form) colInfNorms(norms []float64) {
	for i := range f.Blocks {
		b := &f.Blocks[i]
		w := len(b.Cols)
		nr := len(b.Vals) / w
		for r := 0; r < nr; r++ {
			row := b.Vals[r*w : (r+1)*w]
			for k, v := range row {
				if a := math.Abs(v); a > norms[b.Cols[k]] {
					norms[b.Cols[k]] = a
				}
			}
			if b.XCol != nil {
				if c := b.XCol[r]; c >= 0 {
					if a := math.Abs(b.XVal[r]); a > norms[c] {
						norms[c] = a
					}
				}
			}
		}
	}
}

// scaleRowsCols rescales every entry K_ij *= dr[i]*dc[j] in place.
func (f *Form) scaleRowsCols(dr, dc []float64) {
	for i := range f.Blocks {
		b := &f.Blocks[i]
		w := len(b.Cols)
		nr := len(b.Vals) / w
		for r := 0; r < nr; r++ {
			s := dr[b.Row0+r]
			row := b.Vals[r*w : (r+1)*w]
			for k := range row {
				row[k] *= s * dc[b.Cols[k]]
			}
			if b.XCol != nil {
				if c := b.XCol[r]; c >= 0 {
					b.XVal[r] *= s * dc[c]
				}
			}
		}
	}
}

// clampBounds projects x onto [lo, hi] in place.
func clampBounds(x, lo, hi []float64) {
	for j, v := range x {
		if v < lo[j] {
			x[j] = lo[j]
		} else if v > hi[j] {
			x[j] = hi[j]
		}
	}
}

// clampDual projects y onto the dual cone in place: y ≥ 0 on GE rows,
// free on EQ rows.
func clampDual(y []float64, sense []Sense) {
	for i, v := range y {
		if v < 0 && sense[i] == GE {
			y[i] = 0
		}
	}
}

// infNorm returns max |v_i|.
func infNorm(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// norm2 returns the Euclidean norm.
func norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// dist2 returns ‖a-b‖₂.
func dist2(a, b []float64) float64 {
	s := 0.0
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
