// Package batch implements the matrix-form batched LP backend: a
// blocked sparse matrix representation assembled in bulk (no per-row
// constraint objects), vectorized residual/projection/objective
// kernels over that representation, and a first-order primal-dual
// solver (restarted Halpern PDHG with diagonal preconditioning, in
// the style of PDLP) that solves the whole scenario-class batch in
// matrix-vector passes instead of simplex pivots.
//
// The form solved is
//
//	minimize    cᵀx
//	subject to  (Kx)_i ≥ q_i   (GE rows; ≤ rows are negated on entry)
//	            (Kx)_i = q_i   (EQ rows)
//	            lo ≤ x ≤ hi    (hi may be +Inf)
//
// Rows are stored in blocks. A block is a group of rows sharing one
// column-index pattern — in BATE's scheduling LP all scenario classes
// of a (demand, pair) share the pair's tunnel columns, so their
// delivered-bandwidth rows form a dense (classes × tunnels) block —
// plus at most one extra scattered entry per row (the class's own B
// column). Kernels gather the shared columns once per block and run
// dense passes over the block values, which is where the batching
// wins over row-at-a-time CSR: one gather and one scatter amortize
// across every class in the block, and the per-shape preconditioner
// state is computed once and reused by every row of the block.
//
// The package is self-contained (no dependency on package lp); the
// lp package adapts Problems onto it.
package batch

import (
	"fmt"
	"math"
)

// Sense is a row's comparison sense after LE-normalization.
type Sense int8

// Row senses. LE rows do not exist in a Form: builders negate them
// into GE rows so the dual cone is simply y ≥ 0 on GE rows and free
// on EQ rows.
const (
	GE Sense = iota
	EQ
)

// Block is a group of consecutive rows sharing one column pattern.
// Vals is row-major dense: row r of the block has coefficients
// Vals[r*len(Cols) : (r+1)*len(Cols)] on columns Cols, plus — when
// XCol is non-nil — one extra entry XVal[r] on column XCol[r]
// (XCol[r] < 0 means no extra entry for that row).
type Block struct {
	Row0 int
	Cols []int
	Vals []float64
	XCol []int
	XVal []float64
}

// Rows returns the number of rows in the block.
func (b *Block) Rows() int {
	if len(b.Cols) == 0 {
		if b.XCol != nil {
			return len(b.XCol)
		}
		return 0
	}
	return len(b.Vals) / len(b.Cols)
}

// Form is the assembled matrix-form LP.
type Form struct {
	NumCols int
	NumRows int
	C       []float64 // objective, minimization
	Lo, Hi  []float64 // bounds; Hi entries may be +Inf
	Q       []float64 // per-row RHS
	Sense   []Sense   // per-row sense
	Blocks  []Block

	maxWidth int // widest block column pattern, for kernel scratch
}

// NNZ returns the stored entry count (block zeros included — they are
// part of the dense batch layout).
func (f *Form) NNZ() int {
	n := 0
	for i := range f.Blocks {
		b := &f.Blocks[i]
		n += len(b.Vals)
		if b.XCol != nil {
			for _, c := range b.XCol {
				if c >= 0 {
					n++
				}
			}
		}
	}
	return n
}

// Builder assembles a Form. Row order is the order of Add calls;
// column count is fixed at construction.
type Builder struct {
	f Form
}

// NewBuilder returns a builder for an LP with numCols variables, all
// initially costless with bounds [0, +Inf).
func NewBuilder(numCols int) *Builder {
	b := &Builder{}
	b.f.NumCols = numCols
	b.f.C = make([]float64, numCols)
	b.f.Lo = make([]float64, numCols)
	b.f.Hi = make([]float64, numCols)
	for j := range b.f.Hi {
		b.f.Hi[j] = math.Inf(1)
	}
	return b
}

// SetCost sets the objective coefficient of column j.
func (b *Builder) SetCost(j int, c float64) {
	if math.IsNaN(c) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("batch: invalid cost %v for column %d", c, j))
	}
	b.f.C[j] = c
}

// SetBounds sets the bounds of column j. hi may be +Inf.
func (b *Builder) SetBounds(j int, lo, hi float64) {
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || hi < lo {
		panic(fmt.Sprintf("batch: invalid bounds [%v, %v] for column %d", lo, hi, j))
	}
	b.f.Lo[j] = lo
	b.f.Hi[j] = hi
}

func (b *Builder) checkCols(cols []int) {
	for _, c := range cols {
		if c < 0 || c >= b.f.NumCols {
			panic(fmt.Sprintf("batch: column %d out of range [0, %d)", c, b.f.NumCols))
		}
	}
}

// AddRow appends a single row with the given sense; it is a 1-row
// block. Returns the global row index.
func (b *Builder) AddRow(sense Sense, cols []int, vals []float64, rhs float64) int {
	if len(cols) == 0 {
		// The kernels derive a block's row count as len(Vals)/len(Cols);
		// a zero-width row would divide by zero there. Callers must
		// keep vacuous rows out of the form (lp.solveLPBatch routes
		// problems containing one to the simplex instead).
		panic("batch: AddRow: empty column pattern")
	}
	if len(cols) != len(vals) {
		panic("batch: AddRow: len(cols) != len(vals)")
	}
	b.checkCols(cols)
	row := b.f.NumRows
	b.f.Blocks = append(b.f.Blocks, Block{
		Row0: row,
		Cols: append([]int(nil), cols...),
		Vals: append([]float64(nil), vals...),
	})
	b.f.Q = append(b.f.Q, rhs)
	b.f.Sense = append(b.f.Sense, sense)
	b.f.NumRows++
	return row
}

// AddRowLE appends a ≤ row, negating it into the GE normal form.
func (b *Builder) AddRowLE(cols []int, vals []float64, rhs float64) int {
	neg := make([]float64, len(vals))
	for i, v := range vals {
		neg[i] = -v
	}
	return b.AddRow(GE, cols, neg, -rhs)
}

// AddBlockGE appends a block of GE rows sharing the column pattern
// cols. vals is row-major dense with width len(cols); xcol/xval give
// each row's optional extra scattered entry (xcol[r] < 0 = none) and
// may both be nil. rhs has one entry per row. Returns the global row
// index of the block's first row.
func (b *Builder) AddBlockGE(cols []int, vals []float64, xcol []int, xval []float64, rhs []float64) int {
	w := len(cols)
	if w == 0 {
		panic("batch: AddBlockGE: empty column pattern")
	}
	if len(vals)%w != 0 {
		panic("batch: AddBlockGE: len(vals) not a multiple of len(cols)")
	}
	nr := len(vals) / w
	if len(rhs) != nr || (xcol != nil && (len(xcol) != nr || len(xval) != nr)) {
		panic("batch: AddBlockGE: row-count mismatch")
	}
	b.checkCols(cols)
	if xcol != nil {
		for _, c := range xcol {
			if c >= b.f.NumCols {
				panic(fmt.Sprintf("batch: extra column %d out of range", c))
			}
		}
	}
	row := b.f.NumRows
	b.f.Blocks = append(b.f.Blocks, Block{Row0: row, Cols: cols, Vals: vals, XCol: xcol, XVal: xval})
	b.f.Q = append(b.f.Q, rhs...)
	for i := 0; i < nr; i++ {
		b.f.Sense = append(b.f.Sense, GE)
	}
	b.f.NumRows += nr
	return row
}

// Build finalizes and returns the form. The builder must not be used
// afterwards.
func (b *Builder) Build() *Form {
	f := b.f
	f.maxWidth = 0
	for i := range f.Blocks {
		if w := len(f.Blocks[i].Cols); w > f.maxWidth {
			f.maxWidth = w
		}
	}
	b.f = Form{}
	return &f
}
