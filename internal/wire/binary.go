package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// Codec selects the on-the-wire encoding for outgoing frames. Both
// ends of a connection can read either codec on a per-frame basis —
// a binary frame starts with the magic byte 0xBA, a JSON frame with
// the 0x00 top byte of its 4-byte big-endian length prefix (lengths
// are capped at MaxFrame = 1 MiB, so the top byte is always zero) —
// which is what makes the one-byte Hello negotiation safe: the Hello
// itself always travels as JSON on a fresh connection.
type Codec uint8

const (
	// CodecJSON is the debug/compat codec: 4-byte big-endian length
	// prefix plus an encoding/json Message. Every peer speaks it; it is
	// the default until a Hello negotiates otherwise.
	CodecJSON Codec = 0
	// CodecBinary is the compact codec: fixed header (magic, version,
	// type tag, uvarint body length) plus hand-rolled per-type bodies.
	CodecBinary Codec = 1
)

// String names the codec for flags and logs.
func (c Codec) String() string {
	if c == CodecBinary {
		return "binary"
	}
	return "json"
}

// ParseCodec parses a -wire flag value.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "json":
		return CodecJSON, nil
	case "binary", "bin":
		return CodecBinary, nil
	}
	return CodecJSON, fmt.Errorf("wire: unknown codec %q (want binary or json)", s)
}

// Binary frame header: [magic][version][tag][uvarint body length].
// Version 1 bodies start with a uvarint Seq; version 2 bodies carry a
// uvarint DeadlineMs between the Seq and the payload. A sender emits
// version 2 only for frames that actually carry a deadline, so peers
// that never set one keep producing (and only ever need to accept)
// version 1 — the deadline extension deploys without a flag day.
const (
	binaryMagic           = 0xBA // never the top byte of a JSON length prefix
	binaryVersion         = 1
	binaryVersionDeadline = 2
)

// Message-type tags. tagJSONMsg wraps any message the binary codec
// has no hand-rolled body for (Paxos, future types) as JSON inside a
// binary frame, so the codec never needs a fallback renegotiation.
const (
	tagHello            = 1
	tagSubmit           = 2
	tagAdmitResult      = 3
	tagSubmitBatch      = 4
	tagAdmitBatchResult = 5
	tagAllocUpdate      = 6
	tagLinkEvent        = 7
	tagWithdraw         = 8
	tagStats            = 9
	tagPing             = 10
	tagPong             = 11
	tagError            = 12
	tagStatus           = 13
	tagStatusReply      = 14
	tagJSONMsg          = 15
	tagRetryAfter       = 16
)

// typeTag maps a message type to its binary tag; the second result is
// false for types that ride the tagJSONMsg fallback.
func typeTag(t Type) (byte, bool) {
	switch t {
	case TypeHello:
		return tagHello, true
	case TypeSubmit:
		return tagSubmit, true
	case TypeAdmitResult:
		return tagAdmitResult, true
	case TypeSubmitBatch:
		return tagSubmitBatch, true
	case TypeAdmitBatchResult:
		return tagAdmitBatchResult, true
	case TypeAllocUpdate:
		return tagAllocUpdate, true
	case TypeLinkEvent:
		return tagLinkEvent, true
	case TypeWithdraw:
		return tagWithdraw, true
	case TypeStats:
		return tagStats, true
	case TypePing:
		return tagPing, true
	case TypePong:
		return tagPong, true
	case TypeError:
		return tagError, true
	case TypeStatus:
		return tagStatus, true
	case TypeStatusReply:
		return tagStatusReply, true
	case TypeRetryAfter:
		return tagRetryAfter, true
	}
	return tagJSONMsg, false
}

// ---- primitive encoders -------------------------------------------

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// ---- primitive decoder --------------------------------------------

// breader decodes a binary body with sticky error state, so per-field
// bound checks cannot be forgotten on any decode path (fuzz-critical).
// intern, when non-nil, dedups decoded strings: DC names and method
// strings repeat on every frame of a session, and interning turns the
// per-string allocation into a map hit.
type breader struct {
	b      []byte
	off    int
	err    error
	intern map[string]string
}

// Interning bounds: never cache long strings (frame errors, values)
// and stop growing a session's table past a few thousand entries so a
// hostile peer cannot balloon it.
const (
	maxInternLen  = 64
	maxInternSize = 4096
)

func (r *breader) fail() {
	if r.err == nil {
		r.err = ErrBadFrame
	}
}

func (r *breader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *breader) bool() bool { return r.byte() != 0 }

func (r *breader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *breader) svarint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *breader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *breader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail()
		return ""
	}
	bs := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	if r.intern != nil && n <= maxInternLen {
		// The map lookup keyed by string(bs) does not allocate; only a
		// miss pays for the string.
		if s, ok := r.intern[string(bs)]; ok {
			return s
		}
		s := string(bs)
		if len(r.intern) < maxInternSize {
			r.intern[s] = s
		}
		return s
	}
	return string(bs)
}

// count reads an element count and bounds it by the bytes remaining
// (every element costs at least one byte), so a hostile frame cannot
// force a huge slice allocation from a tiny body.
func (r *breader) count() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail()
		return 0
	}
	return int(n)
}

// ---- per-type bodies ----------------------------------------------

func appendSubmit(b []byte, s *Submit) []byte {
	b = binary.AppendVarint(b, int64(s.DemandID))
	b = appendStr(b, s.Src)
	b = appendStr(b, s.Dst)
	b = appendF64(b, s.Bandwidth)
	b = appendF64(b, s.Target)
	b = appendF64(b, s.Charge)
	b = appendF64(b, s.RefundFrac)
	return b
}

func readSubmit(r *breader) Submit {
	return Submit{
		DemandID:   int(r.svarint()),
		Src:        r.str(),
		Dst:        r.str(),
		Bandwidth:  r.f64(),
		Target:     r.f64(),
		Charge:     r.f64(),
		RefundFrac: r.f64(),
	}
}

func appendAdmitResult(b []byte, a *AdmitResult) []byte {
	b = binary.AppendVarint(b, int64(a.DemandID))
	b = appendBool(b, a.Admitted)
	b = appendStr(b, a.Method)
	b = appendF64(b, a.DelayMs)
	return b
}

func readAdmitResult(r *breader) AdmitResult {
	return AdmitResult{
		DemandID: int(r.svarint()),
		Admitted: r.bool(),
		Method:   r.str(),
		DelayMs:  r.f64(),
	}
}

func appendAlloc(b []byte, u *AllocUpdate) []byte {
	b = binary.AppendUvarint(b, u.Epoch)
	b = appendBool(b, u.Backup)
	b = binary.AppendUvarint(b, uint64(len(u.Tunnels)))
	for i := range u.Tunnels {
		t := &u.Tunnels[i]
		b = binary.AppendUvarint(b, uint64(t.Label))
		b = appendF64(b, t.Rate)
		b = binary.AppendUvarint(b, uint64(len(t.Hops)))
		for _, h := range t.Hops {
			b = appendStr(b, h)
		}
	}
	return b
}

func readAlloc(r *breader) AllocUpdate {
	u := AllocUpdate{Epoch: r.uvarint(), Backup: r.bool()}
	n := r.count()
	if n > 0 {
		u.Tunnels = make([]TunnelAlloc, 0, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		t := TunnelAlloc{Label: uint32(r.uvarint()), Rate: r.f64()}
		hn := r.count()
		if hn > 0 {
			t.Hops = make([]string, 0, hn)
		}
		for j := 0; j < hn && r.err == nil; j++ {
			t.Hops = append(t.Hops, r.str())
		}
		u.Tunnels = append(u.Tunnels, t)
	}
	return u
}

func appendLinkEvent(b []byte, e *LinkEvent) []byte {
	b = appendStr(b, e.SrcDC)
	b = appendStr(b, e.DstDC)
	b = appendBool(b, e.Up)
	b = binary.AppendVarint(b, e.AtUnixMs)
	b = appendF64(b, e.RateMbps)
	return b
}

func readLinkEvent(r *breader) LinkEvent {
	return LinkEvent{
		SrcDC:    r.str(),
		DstDC:    r.str(),
		Up:       r.bool(),
		AtUnixMs: r.svarint(),
		RateMbps: r.f64(),
	}
}

func appendStats(b []byte, s *Stats) []byte {
	b = appendStr(b, s.DC)
	b = binary.AppendUvarint(b, uint64(len(s.Rates)))
	for k, v := range s.Rates {
		b = appendStr(b, k)
		b = appendF64(b, v)
	}
	return b
}

func readStats(r *breader) Stats {
	s := Stats{DC: r.str()}
	n := r.count()
	if n > 0 {
		s.Rates = make(map[string]float64, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		k := r.str()
		v := r.f64()
		if r.err == nil {
			s.Rates[k] = v
		}
	}
	return s
}

func appendStatusReply(b []byte, s *StatusReply) []byte {
	b = binary.AppendUvarint(b, s.Epoch)
	b = binary.AppendUvarint(b, uint64(len(s.Demands)))
	for i := range s.Demands {
		d := &s.Demands[i]
		b = binary.AppendVarint(b, int64(d.DemandID))
		b = appendStr(b, d.Src)
		b = appendStr(b, d.Dst)
		b = appendF64(b, d.Bandwidth)
		b = appendF64(b, d.Target)
		b = appendF64(b, d.Achieved)
		b = appendF64(b, d.Allocated)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Counters)))
	for k, v := range s.Counters {
		b = appendStr(b, k)
		b = binary.AppendVarint(b, v)
	}
	return b
}

func readStatusReply(r *breader) StatusReply {
	s := StatusReply{Epoch: r.uvarint()}
	n := r.count()
	if n > 0 {
		s.Demands = make([]DemandStatus, 0, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		s.Demands = append(s.Demands, DemandStatus{
			DemandID:  int(r.svarint()),
			Src:       r.str(),
			Dst:       r.str(),
			Bandwidth: r.f64(),
			Target:    r.f64(),
			Achieved:  r.f64(),
			Allocated: r.f64(),
		})
	}
	cn := r.count()
	if cn > 0 {
		s.Counters = make(map[string]int64, cn)
	}
	for i := 0; i < cn && r.err == nil; i++ {
		k := r.str()
		v := r.svarint()
		if r.err == nil {
			s.Counters[k] = v
		}
	}
	return s
}

// ---- frame body encode/decode -------------------------------------

// appendBinaryBody appends the binary body for m (uvarint Seq plus a
// type-specific payload) and returns the buffer with the tag and
// header version to place in the frame header. Pointer payloads carry
// a one-byte presence flag so a nil payload survives a round trip
// exactly as JSON's omitempty does — the cross-codec fuzz target
// depends on that. A non-zero DeadlineMs promotes the frame to header
// version 2 and rides as a uvarint right after the Seq; tagJSONMsg
// frames stay version 1 because the embedded JSON already carries the
// deadline field.
func appendBinaryBody(b []byte, m *Message) ([]byte, byte, byte, error) {
	tag, ok := typeTag(m.Type)
	if !ok {
		data, err := json.Marshal(m)
		if err != nil {
			return b, 0, 0, fmt.Errorf("wire: marshal: %w", err)
		}
		b = binary.AppendUvarint(b, m.Seq)
		return append(b, data...), tagJSONMsg, binaryVersion, nil
	}
	ver := byte(binaryVersion)
	b = binary.AppendUvarint(b, m.Seq)
	if m.DeadlineMs > 0 {
		ver = binaryVersionDeadline
		b = binary.AppendUvarint(b, uint64(m.DeadlineMs))
	}
	switch tag {
	case tagHello:
		if b = appendBool(b, m.Hello != nil); m.Hello != nil {
			b = appendStr(b, m.Hello.Role)
			b = appendStr(b, m.Hello.DC)
			b = append(b, byte(m.Hello.Codec))
		}
	case tagSubmit:
		if b = appendBool(b, m.Submit != nil); m.Submit != nil {
			b = appendSubmit(b, m.Submit)
		}
	case tagAdmitResult:
		if b = appendBool(b, m.AdmitResult != nil); m.AdmitResult != nil {
			b = appendAdmitResult(b, m.AdmitResult)
		}
	case tagSubmitBatch:
		b = binary.AppendUvarint(b, uint64(len(m.SubmitBatch)))
		for i := range m.SubmitBatch {
			b = appendSubmit(b, &m.SubmitBatch[i])
		}
	case tagAdmitBatchResult:
		b = binary.AppendUvarint(b, uint64(len(m.AdmitBatchResult)))
		for i := range m.AdmitBatchResult {
			b = appendAdmitResult(b, &m.AdmitBatchResult[i])
		}
	case tagAllocUpdate:
		if b = appendBool(b, m.Alloc != nil); m.Alloc != nil {
			b = appendAlloc(b, m.Alloc)
		}
	case tagLinkEvent:
		if b = appendBool(b, m.LinkEvent != nil); m.LinkEvent != nil {
			b = appendLinkEvent(b, m.LinkEvent)
		}
	case tagWithdraw:
		b = binary.AppendVarint(b, int64(m.WithdrawID))
	case tagStats:
		if b = appendBool(b, m.Stats != nil); m.Stats != nil {
			b = appendStats(b, m.Stats)
		}
	case tagPing, tagPong, tagStatus:
		// Seq-only frames.
	case tagError:
		b = appendStr(b, m.Error)
	case tagStatusReply:
		if b = appendBool(b, m.Status != nil); m.Status != nil {
			b = appendStatusReply(b, m.Status)
		}
	case tagRetryAfter:
		if b = appendBool(b, m.RetryAfter != nil); m.RetryAfter != nil {
			b = binary.AppendVarint(b, m.RetryAfter.RetryAfterMs)
			b = appendStr(b, m.RetryAfter.Reason)
		}
	}
	return b, tag, ver, nil
}

// decodeBinaryBody decodes a binary frame body under header version
// ver. Trailing bytes after the decoded payload are ignored so a
// newer peer may append fields without breaking older decoders.
// intern may be nil.
func decodeBinaryBody(tag, ver byte, body []byte, intern map[string]string) (*Message, error) {
	r := &breader{b: body, intern: intern}
	seq := r.uvarint()
	var deadlineMs int64
	if ver >= binaryVersionDeadline {
		deadlineMs = int64(r.uvarint())
	}
	if tag == tagJSONMsg {
		if r.err != nil {
			return nil, r.err
		}
		var m Message
		if err := json.Unmarshal(body[r.off:], &m); err != nil {
			return nil, fmt.Errorf("%w: embedded json: %v", ErrBadFrame, err)
		}
		m.Seq = seq
		if m.DeadlineMs == 0 {
			m.DeadlineMs = deadlineMs
		}
		return &m, nil
	}
	m := &Message{Seq: seq, DeadlineMs: deadlineMs}
	switch tag {
	case tagHello:
		m.Type = TypeHello
		if r.bool() {
			h := Hello{Role: r.str(), DC: r.str(), Codec: Codec(r.byte())}
			m.Hello = &h
		}
	case tagSubmit:
		m.Type = TypeSubmit
		if r.bool() {
			s := readSubmit(r)
			m.Submit = &s
		}
	case tagAdmitResult:
		m.Type = TypeAdmitResult
		if r.bool() {
			a := readAdmitResult(r)
			m.AdmitResult = &a
		}
	case tagSubmitBatch:
		m.Type = TypeSubmitBatch
		n := r.count()
		if n > 0 {
			m.SubmitBatch = make([]Submit, 0, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			m.SubmitBatch = append(m.SubmitBatch, readSubmit(r))
		}
	case tagAdmitBatchResult:
		m.Type = TypeAdmitBatchResult
		n := r.count()
		if n > 0 {
			m.AdmitBatchResult = make([]AdmitResult, 0, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			m.AdmitBatchResult = append(m.AdmitBatchResult, readAdmitResult(r))
		}
	case tagAllocUpdate:
		m.Type = TypeAllocUpdate
		if r.bool() {
			u := readAlloc(r)
			m.Alloc = &u
		}
	case tagLinkEvent:
		m.Type = TypeLinkEvent
		if r.bool() {
			e := readLinkEvent(r)
			m.LinkEvent = &e
		}
	case tagWithdraw:
		m.Type = TypeWithdraw
		m.WithdrawID = int(r.svarint())
	case tagStats:
		m.Type = TypeStats
		if r.bool() {
			s := readStats(r)
			m.Stats = &s
		}
	case tagPing:
		m.Type = TypePing
	case tagPong:
		m.Type = TypePong
	case tagStatus:
		m.Type = TypeStatus
	case tagError:
		m.Type = TypeError
		m.Error = r.str()
	case tagStatusReply:
		m.Type = TypeStatusReply
		if r.bool() {
			s := readStatusReply(r)
			m.Status = &s
		}
	case tagRetryAfter:
		m.Type = TypeRetryAfter
		if r.bool() {
			ra := RetryAfter{RetryAfterMs: r.svarint(), Reason: r.str()}
			m.RetryAfter = &ra
		}
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrBadFrame, tag)
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}
