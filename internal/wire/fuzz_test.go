package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"
)

// frameBytes encodes m as a single frame under the given codec.
func frameBytes(t interface{ Fatal(...any) }, m *Message, codec Codec) []byte {
	stored, off, err := encodeFrame(nil, m, codec)
	if err != nil {
		t.Fatal(err)
	}
	return stored[off:]
}

// FuzzBinaryFrame drives raw bytes through the frame reader: header
// sniffing, version/tag/varint parsing and every per-type body
// decoder. The decoder must never panic, never allocate beyond
// MaxFrame, and always either produce a message or a typed error.
func FuzzBinaryFrame(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(frameBytes(f, m, CodecBinary))
		f.Add(frameBytes(f, m, CodecJSON))
	}
	// Truncations and hostile headers.
	ping := frameBytes(f, &Message{Type: TypePing, Seq: 9}, CodecBinary)
	f.Add(ping[:2])
	f.Add([]byte{binaryMagic})
	f.Add([]byte{binaryMagic, binaryVersion, tagSubmitBatch, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{binaryMagic, 2, tagPing, 0})
	f.Add([]byte{0x00, 0x10, 0x00, 0x01})
	f.Add([]byte("GET / HTTP/1.1\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := &Conn{r: bufio.NewReader(bytes.NewReader(data))}
		// A stream may hold several frames; bound the walk.
		for i := 0; i < 64; i++ {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if m == nil {
				t.Fatal("nil message with nil error")
			}
		}
	})
}

// normalize maps empty slices/maps to nil so binary and JSON round
// trips compare equal: JSON's omitempty collapses both spellings and
// the binary codec does not preserve the distinction either.
func normalize(m *Message) {
	if len(m.SubmitBatch) == 0 {
		m.SubmitBatch = nil
	}
	if len(m.AdmitBatchResult) == 0 {
		m.AdmitBatchResult = nil
	}
	if m.Alloc != nil {
		if len(m.Alloc.Tunnels) == 0 {
			m.Alloc.Tunnels = nil
		}
		for i := range m.Alloc.Tunnels {
			if len(m.Alloc.Tunnels[i].Hops) == 0 {
				m.Alloc.Tunnels[i].Hops = nil
			}
		}
	}
	if m.Stats != nil && len(m.Stats.Rates) == 0 {
		m.Stats.Rates = nil
	}
	if m.Status != nil {
		if len(m.Status.Demands) == 0 {
			m.Status.Demands = nil
		}
		if len(m.Status.Counters) == 0 {
			m.Status.Counters = nil
		}
	}
}

// roundTrip encodes m under codec and decodes it back via the frame
// reader.
func roundTrip(t *testing.T, m *Message, codec Codec) *Message {
	t.Helper()
	frame := frameBytes(t, m, codec)
	c := &Conn{r: bufio.NewReader(bytes.NewReader(frame))}
	got, err := c.Recv()
	if err != nil {
		t.Fatalf("%s round trip of %+v: %v", codec, m, err)
	}
	return got
}

// finite replaces NaN/Inf with a finite stand-in: the JSON codec
// cannot carry them at all, and the protocol only ships finite
// rates/targets in practice.
func finite(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return -1.5
	}
	return f
}

// FuzzCodecRoundTrip cross-checks the two codecs: any message must
// decode to the same value whether it traveled as binary or as JSON.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(7), 3, "DC1", "DC4", 500.0, 0.999, 10.0, true, uint32(0x1002), uint64(4), 2, "fixed")
	f.Add(uint64(0), 0, "", "", 0.0, 0.0, 0.0, false, uint32(0), uint64(0), 0, "")
	f.Add(uint64(1<<63), -4096, "a\x00b", "\xff\xfe", math.MaxFloat64, -0.0, 1e-308, true, uint32(1<<24), uint64(99), 7, "日本語")
	f.Fuzz(func(t *testing.T, seq uint64, id int, src, dst string, bw, target, rate float64,
		admitted bool, label uint32, epoch uint64, count int, method string) {
		bw, target, rate = finite(bw), finite(target), finite(rate)
		// encoding/json coerces invalid UTF-8 to U+FFFD; the binary
		// codec ships raw bytes. Compare on the common domain.
		src = strings.ToValidUTF8(src, "�")
		dst = strings.ToValidUTF8(dst, "�")
		method = strings.ToValidUTF8(method, "�")
		if count < 0 {
			count = -count
		}
		count %= 8
		batch := make([]Submit, 0, count)
		hops := make([]string, 0, count)
		for i := 0; i < count; i++ {
			batch = append(batch, Submit{DemandID: id + i, Src: src, Dst: dst, Bandwidth: bw, Target: target, Charge: rate, RefundFrac: target})
			hops = append(hops, src)
		}
		msgs := []*Message{
			{Type: TypeHello, Seq: seq, Hello: &Hello{Role: src, DC: dst, Codec: Codec(label % 2)}},
			{Type: TypeSubmit, Seq: seq, Submit: &Submit{DemandID: id, Src: src, Dst: dst, Bandwidth: bw, Target: target, Charge: rate, RefundFrac: target}},
			{Type: TypeAdmitResult, Seq: seq, AdmitResult: &AdmitResult{DemandID: id, Admitted: admitted, Method: method, DelayMs: rate}},
			{Type: TypeSubmitBatch, Seq: seq, SubmitBatch: batch},
			{Type: TypeAllocUpdate, Seq: seq, Alloc: &AllocUpdate{Epoch: epoch, Backup: admitted, Tunnels: []TunnelAlloc{{Label: label, Hops: hops, Rate: rate}}}},
			{Type: TypeLinkEvent, Seq: seq, LinkEvent: &LinkEvent{SrcDC: src, DstDC: dst, Up: admitted, AtUnixMs: int64(id), RateMbps: rate}},
			{Type: TypeStats, Seq: seq, Stats: &Stats{DC: src, Rates: map[string]float64{method: rate}}},
			{Type: TypeWithdraw, Seq: seq, WithdrawID: id},
			{Type: TypeError, Seq: seq, Error: method},
			{Type: TypeSubmit, Seq: seq, DeadlineMs: int64(epoch % (1 << 40)), Submit: &Submit{DemandID: id, Src: src, Dst: dst, Bandwidth: bw, Target: target}},
			{Type: TypeRetryAfter, Seq: seq, RetryAfter: &RetryAfter{RetryAfterMs: int64(id), Reason: method}},
			{Type: TypeStatusReply, Seq: seq, Status: &StatusReply{Epoch: epoch, Demands: []DemandStatus{{DemandID: id, Src: src, Dst: dst, Bandwidth: bw, Target: target, Achieved: rate, Allocated: bw}}, Counters: map[string]int64{method: int64(id)}}},
		}
		for _, m := range msgs {
			viaBinary := roundTrip(t, m, CodecBinary)
			viaJSON := roundTrip(t, m, CodecJSON)
			normalize(m)
			normalize(viaBinary)
			normalize(viaJSON)
			if !reflect.DeepEqual(viaBinary, m) {
				t.Fatalf("binary round trip diverged for %s:\n got  %#v\n want %#v", m.Type, viaBinary, m)
			}
			if !reflect.DeepEqual(viaBinary, viaJSON) {
				t.Fatalf("codecs disagree for %s:\n binary %#v\n json   %#v", m.Type, viaBinary, viaJSON)
			}
		}
	})
}

// FuzzLabelSplit keeps the 24-bit label packing an exact inverse pair
// under the binary codec's uvarint transport.
func FuzzLabelSplit(f *testing.F) {
	f.Add(uint32(0x1002))
	f.Fuzz(func(t *testing.T, label uint32) {
		label &= 0xffffff
		d, tn := SplitLabel(label)
		back, err := Label(d, tn)
		if err != nil {
			t.Fatalf("Label(%d,%d): %v", d, tn, err)
		}
		if back != label {
			t.Fatalf("label %#x split to (%d,%d) repacked to %#x", label, d, tn, back)
		}
		var buf []byte
		buf = binary.AppendUvarint(buf, uint64(label))
		got, n := binary.Uvarint(buf)
		if n <= 0 || uint32(got) != label {
			t.Fatalf("uvarint transport mangled label %#x", label)
		}
	})
}
