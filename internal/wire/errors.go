package wire

import "errors"

// Typed frame errors. The controller counts these separately from
// clean peer disconnects (io.EOF between frames): a peer that hangs
// up is routine churn, a peer that sends damaged frames is a bug or
// an attack, and conflating the two in metrics hides both.
var (
	// ErrFrameTooLarge reports a frame whose declared body exceeds
	// MaxFrame, on either the send or the receive side.
	ErrFrameTooLarge = errors.New("wire: frame exceeds max size")

	// ErrShortRead reports a connection that died, or went silent past
	// the idle deadline, in the middle of a frame: the header promised
	// more bytes than ever arrived.
	ErrShortRead = errors.New("wire: short read mid-frame")

	// ErrBadMagic reports a frame that starts with neither the binary
	// magic byte nor a JSON length prefix — the peer is not speaking
	// this protocol at all.
	ErrBadMagic = errors.New("wire: bad frame magic")

	// ErrBadVersion reports a binary frame with an unsupported
	// protocol version byte.
	ErrBadVersion = errors.New("wire: unsupported protocol version")

	// ErrBadFrame reports a frame whose body failed to decode under
	// the codec its header named.
	ErrBadFrame = errors.New("wire: malformed frame body")

	// ErrSendQueueFull reports a coalescing writer whose bounded queue
	// stayed full past the enqueue grace: the peer has stopped
	// draining. The error is sticky — the connection is considered
	// wedged and its owner should evict the peer.
	ErrSendQueueFull = errors.New("wire: send queue full (slow peer)")
)
