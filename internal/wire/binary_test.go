package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"
)

// allMessages returns one populated message per type, covering every
// hand-rolled binary body plus the tagJSONMsg fallback (Paxos).
func allMessages() []*Message {
	return []*Message{
		{Type: TypeHello, Seq: 1, Hello: &Hello{Role: "broker", DC: "DC2", Codec: CodecBinary}},
		{Type: TypeSubmit, Seq: 2, Submit: &Submit{DemandID: 3, Src: "DC1", Dst: "DC4", Bandwidth: 500, Target: 0.999, Charge: 500, RefundFrac: 0.1}},
		{Type: TypeAdmitResult, Seq: 3, AdmitResult: &AdmitResult{DemandID: 1, Admitted: true, Method: "fixed", DelayMs: 1.5}},
		{Type: TypeSubmitBatch, Seq: 4, SubmitBatch: []Submit{
			{DemandID: 0, Src: "DC1", Dst: "DC2", Bandwidth: 10, Target: 0.9},
			{DemandID: 0, Src: "DC2", Dst: "DC3", Bandwidth: 20, Target: 0.99, Charge: 7, RefundFrac: 0.5},
		}},
		{Type: TypeAdmitBatchResult, Seq: 5, AdmitBatchResult: []AdmitResult{
			{DemandID: 4, Admitted: true, Method: "stub"},
			{DemandID: 0, Admitted: false, Method: "stub", DelayMs: 0.25},
		}},
		{Type: TypeAllocUpdate, Seq: 6, Alloc: &AllocUpdate{Epoch: 4, Backup: true, Tunnels: []TunnelAlloc{
			{Label: 0x1002, Hops: []string{"DC1", "DC2"}, Rate: 100},
			{Label: 0x2003, Hops: []string{"DC1", "DC3", "DC2"}, Rate: 55.5},
		}}},
		{Type: TypeLinkEvent, Seq: 7, LinkEvent: &LinkEvent{SrcDC: "DC1", DstDC: "DC2", Up: false, AtUnixMs: -99, RateMbps: 3.5}},
		{Type: TypeWithdraw, Seq: 8, WithdrawID: 12},
		{Type: TypeStats, Seq: 9, Stats: &Stats{DC: "DC1", Rates: map[string]float64{"t0": 5, "t1": 7.25}}},
		{Type: TypePing, Seq: 10},
		{Type: TypePong, Seq: 11},
		{Type: TypeError, Seq: 12, Error: "boom"},
		{Type: TypeStatus, Seq: 13},
		{Type: TypeStatusReply, Seq: 14, Status: &StatusReply{
			Epoch:   9,
			Demands: []DemandStatus{{DemandID: 2, Src: "DC1", Dst: "DC2", Bandwidth: 100, Target: 0.99, Achieved: 0.995, Allocated: 100}},
			Counters: map[string]int64{
				"admission.total": 42,
			},
		}},
		{Type: TypePaxos, Seq: 15, Paxos: &PaxosMsg{Kind: 2, From: 1, To: 0, BallotRound: 7, BallotNode: 1, Value: "leader"}},
		// Nil payloads must survive a round trip as nil (presence flag).
		{Type: TypeSubmit, Seq: 16},
		{Type: TypeAllocUpdate, Seq: 17, Alloc: &AllocUpdate{Epoch: 1}},
		{Type: TypeRetryAfter, Seq: 18, RetryAfter: &RetryAfter{RetryAfterMs: 150, Reason: "queue-full"}},
		{Type: TypeRetryAfter, Seq: 19},
		// Deadline-carrying frames ride header version 2.
		{Type: TypeSubmit, Seq: 20, DeadlineMs: 250, Submit: &Submit{DemandID: 5, Src: "DC1", Dst: "DC2", Bandwidth: 10, Target: 0.99}},
		{Type: TypeStatus, Seq: 21, DeadlineMs: 40},
	}
}

// binaryPair returns two ends that have both negotiated the binary
// codec.
func binaryPair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	ca, cb := pipePair(t)
	ca.SetCodec(CodecBinary)
	cb.SetCodec(CodecBinary)
	return ca, cb
}

func TestBinaryAllTypesRoundTrip(t *testing.T) {
	ca, cb := binaryPair(t)
	msgs := allMessages()
	go func() {
		for _, m := range msgs {
			if err := ca.Send(m); err != nil {
				t.Errorf("send %s: %v", m.Type, err)
				return
			}
		}
	}()
	for _, want := range msgs {
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("type %s:\n got  %+v\n want %+v", want.Type, got, want)
		}
		if cb.RecvCodec() != CodecBinary {
			t.Fatalf("frame for %s arrived as %s", want.Type, cb.RecvCodec())
		}
	}
}

func TestHelloNegotiatesBinary(t *testing.T) {
	ca, cb := pipePair(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Server side: reads the hello, mirrors the codec on replies.
		m, err := cb.Recv()
		if err != nil || m.Type != TypeHello {
			t.Errorf("recv hello: %v %v", m, err)
			return
		}
		if cb.SendCodec() != CodecBinary {
			t.Errorf("server tx codec after hello = %s, want binary", cb.SendCodec())
		}
		cb.Send(&Message{Type: TypePong, Seq: m.Seq})
	}()
	if ca.SendCodec() != CodecJSON {
		t.Fatalf("fresh conn tx codec = %s, want json", ca.SendCodec())
	}
	if err := ca.Send(&Message{Type: TypeHello, Seq: 1, Hello: &Hello{Role: "client", Codec: CodecBinary}}); err != nil {
		t.Fatal(err)
	}
	if ca.SendCodec() != CodecBinary {
		t.Fatalf("client tx codec after hello = %s, want binary", ca.SendCodec())
	}
	reply, err := ca.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypePong || reply.Seq != 1 {
		t.Fatalf("reply %+v", reply)
	}
	if ca.RecvCodec() != CodecBinary {
		t.Fatalf("reply codec = %s, want binary (server must mirror)", ca.RecvCodec())
	}
	<-done
}

func TestLockCodecIgnoresNegotiation(t *testing.T) {
	ca, cb := pipePair(t)
	cb.LockCodec(CodecJSON)
	done := make(chan struct{})
	go func() {
		defer close(done)
		m, err := cb.Recv()
		if err != nil || m.Type != TypeHello {
			t.Errorf("recv hello: %v %v", m, err)
			return
		}
		cb.Send(&Message{Type: TypePong, Seq: m.Seq})
	}()
	ca.Send(&Message{Type: TypeHello, Seq: 5, Hello: &Hello{Role: "client", Codec: CodecBinary}})
	reply, err := ca.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypePong {
		t.Fatalf("reply %+v", reply)
	}
	if ca.RecvCodec() != CodecJSON {
		t.Fatalf("locked server replied with %s, want json", ca.RecvCodec())
	}
	<-done
}

func TestUnknownFutureCodecFallsBackToJSON(t *testing.T) {
	ca, cb := pipePair(t)
	go cb.Recv()
	ca.Send(&Message{Type: TypeHello, Hello: &Hello{Role: "client", Codec: Codec(9)}})
	if ca.SendCodec() != CodecJSON {
		t.Fatalf("unknown codec negotiated to %s, want json fallback", ca.SendCodec())
	}
}

func TestMixedCodecsOnOneConnection(t *testing.T) {
	// A binary sender and a JSON sender can share a receiver: the codec
	// is sniffed per frame.
	ca, cb := pipePair(t)
	go func() {
		ca.SetCodec(CodecBinary)
		ca.Send(&Message{Type: TypePing, Seq: 1})
		ca.SetCodec(CodecJSON)
		ca.Send(&Message{Type: TypePing, Seq: 2})
		ca.SetCodec(CodecBinary)
		ca.Send(&Message{Type: TypePing, Seq: 3})
	}()
	wantCodec := []Codec{CodecBinary, CodecJSON, CodecBinary}
	for i := uint64(1); i <= 3; i++ {
		m, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != i || cb.RecvCodec() != wantCodec[i-1] {
			t.Fatalf("frame %d: seq %d codec %s", i, m.Seq, cb.RecvCodec())
		}
	}
}

func TestBadMagicTypedError(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	ca := New(a)
	go b.Write([]byte("GET / HTTP/1.1\r\n"))
	_, err := ca.Recv()
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadVersionTypedError(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	ca := New(a)
	go b.Write([]byte{binaryMagic, 99, tagPing, 0})
	_, err := ca.Recv()
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestOversizeTypedErrors(t *testing.T) {
	// JSON header path.
	a, b := net.Pipe()
	defer a.Close()
	ca := New(a)
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
		b.Write(hdr[:])
	}()
	if _, err := ca.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("json path: err = %v, want ErrFrameTooLarge", err)
	}
	// Binary header path.
	a2, b2 := net.Pipe()
	defer a2.Close()
	ca2 := New(a2)
	go func() {
		frame := []byte{binaryMagic, binaryVersion, tagPing}
		frame = binary.AppendUvarint(frame, MaxFrame+1)
		b2.Write(frame)
	}()
	if _, err := ca2.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("binary path: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestShortReadTypedError(t *testing.T) {
	a, b := net.Pipe()
	ca := New(a)
	ca.SetIdleTimeout(50 * time.Millisecond)
	go func() {
		frame := []byte{binaryMagic, binaryVersion, tagError}
		frame = binary.AppendUvarint(frame, 100) // promises 100 bytes...
		frame = append(frame, "only-a-few"...)   // ...delivers 10, then dies
		b.Write(frame)
		b.Close()
	}()
	_, err := ca.Recv()
	if !errors.Is(err, ErrShortRead) {
		t.Fatalf("err = %v, want ErrShortRead", err)
	}
	a.Close()
}

func TestBinaryTruncatedFrameTimesOut(t *testing.T) {
	// The chaos layer stalls peers mid-frame; a binary frame must tear
	// on the idle deadline exactly like a JSON frame does.
	a, b := net.Pipe()
	defer a.Close()
	ca := New(a)
	ca.SetIdleTimeout(50 * time.Millisecond)
	go func() {
		frame := []byte{binaryMagic, binaryVersion, tagError}
		frame = binary.AppendUvarint(frame, 100)
		frame = append(frame, "partial"...)
		b.Write(frame) // ...then stalls with the conn open
	}()
	done := make(chan error, 1)
	go func() {
		_, err := ca.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrShortRead) {
			t.Fatalf("err = %v, want ErrShortRead", err)
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("err = %v, want to wrap a net timeout", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv blocked on a half-written binary frame")
	}
}

func TestBinaryGarbageBodyTypedError(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	ca := New(a)
	go func() {
		// Valid header, body too short for the submit it declares.
		body := []byte{7, 1} // seq=7, present=true, then nothing
		frame := []byte{binaryMagic, binaryVersion, tagSubmit}
		frame = binary.AppendUvarint(frame, uint64(len(body)))
		frame = append(frame, body...)
		b.Write(frame)
	}()
	_, err := ca.Recv()
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestCoalescedPipelinedSends(t *testing.T) {
	ca, cb := binaryPair(t)
	ca.EnableCoalescing()
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			if err := ca.Send(&Message{Type: TypePing, Seq: uint64(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := cb.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Seq != uint64(i) {
			t.Fatalf("frame %d arrived out of order (seq %d)", i, m.Seq)
		}
	}
}

func TestCoalescedCloseFlushesQueuedFrames(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := New(a), New(b)
	defer cb.Close()
	ca.EnableCoalescing()
	recvd := make(chan *Message, 1)
	go func() {
		m, err := cb.Recv()
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		recvd <- m
	}()
	if err := ca.Send(&Message{Type: TypePing, Seq: 77}); err != nil {
		t.Fatal(err)
	}
	ca.Close() // must drain the queue before closing the socket
	select {
	case m := <-recvd:
		if m.Seq != 77 {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued frame dropped by Close")
	}
}

func TestCoalescedConcurrentSenders(t *testing.T) {
	ca, cb := binaryPair(t)
	ca.EnableCoalescing()
	const n = 100
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ca.Send(&Message{Type: TypePing, Seq: uint64(i)})
		}(i)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		m, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if seen[m.Seq] {
			t.Fatalf("duplicate seq %d (frame corruption)", m.Seq)
		}
		seen[m.Seq] = true
	}
	wg.Wait()
}

func TestCoalescedStickyWriteError(t *testing.T) {
	a, b := net.Pipe()
	ca := New(a)
	ca.EnableCoalescing()
	b.Close() // peer gone: writes will fail
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := ca.Send(&Message{Type: TypePing}); err != nil {
			ca.Close()
			return // sticky error surfaced on a later Send, as documented
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("send kept succeeding against a closed peer")
}

func TestBinaryOversizeSendRejected(t *testing.T) {
	ca, cb := binaryPair(t)
	go cb.Recv()
	big := make([]byte, MaxFrame)
	for i := range big {
		big[i] = 'x'
	}
	err := ca.Send(&Message{Type: TypeError, Error: string(big)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestDecodeIgnoresTrailingBytes(t *testing.T) {
	// Forward compatibility: a newer peer may append fields to a body.
	body := binary.AppendUvarint(nil, 42) // seq
	body = binary.AppendVarint(body, 7)   // withdraw id
	body = append(body, 0xde, 0xad)       // future fields
	m, err := decodeBinaryBody(tagWithdraw, binaryVersion, body, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeWithdraw || m.Seq != 42 || m.WithdrawID != 7 {
		t.Fatalf("got %+v", m)
	}
}

func TestBinaryFrameReadsFromRawBytes(t *testing.T) {
	// Lock the layout down: a frame is [magic][version][tag][uvarint
	// len][body], byte for byte. If this test breaks, the protocol
	// version must be bumped.
	bp := getBuf()
	stored, off, err := encodeFrame((*bp)[:0], &Message{Type: TypePing, Seq: 300}, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	frame := stored[off:]
	wantBody := binary.AppendUvarint(nil, 300)
	want := []byte{binaryMagic, binaryVersion, tagPing}
	want = binary.AppendUvarint(want, uint64(len(wantBody)))
	want = append(want, wantBody...)
	if !bytes.Equal(frame, want) {
		t.Fatalf("frame layout changed:\n got  %x\n want %x", frame, want)
	}
	// And it must decode back through a reader.
	c := &Conn{r: bufio.NewReader(bytes.NewReader(frame))}
	m, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypePing || m.Seq != 300 {
		t.Fatalf("got %+v", m)
	}
}
