package wire

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := New(a), New(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

func TestRoundTrip(t *testing.T) {
	ca, cb := pipePair(t)
	want := &Message{
		Type: TypeSubmit,
		Seq:  7,
		Submit: &Submit{
			DemandID: 3, Src: "DC1", Dst: "DC4",
			Bandwidth: 500, Target: 0.999, Charge: 500, RefundFrac: 0.1,
		},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ca.Send(want); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	got, err := cb.Recv()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.Seq != 7 || got.Submit == nil ||
		got.Submit.Bandwidth != 500 || got.Submit.Src != "DC1" {
		t.Fatalf("got %+v", got)
	}
}

func TestAllTypesRoundTrip(t *testing.T) {
	ca, cb := pipePair(t)
	msgs := []*Message{
		{Type: TypeHello, Hello: &Hello{Role: "broker", DC: "DC2"}},
		{Type: TypeAdmitResult, AdmitResult: &AdmitResult{DemandID: 1, Admitted: true, Method: "fixed", DelayMs: 1.5}},
		{Type: TypeAllocUpdate, Alloc: &AllocUpdate{Epoch: 4, Tunnels: []TunnelAlloc{{Label: 0x1002, Hops: []string{"DC1", "DC2"}, Rate: 100}}}},
		{Type: TypeLinkEvent, LinkEvent: &LinkEvent{SrcDC: "DC1", DstDC: "DC2", Up: false, AtUnixMs: 99}},
		{Type: TypeStats, Stats: &Stats{DC: "DC1", Rates: map[string]float64{"t0": 5}}},
		{Type: TypeWithdraw, WithdrawID: 12},
		{Type: TypePing},
		{Type: TypeError, Error: "boom"},
	}
	go func() {
		for _, m := range msgs {
			if err := ca.Send(m); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	for _, want := range msgs {
		got, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type {
			t.Fatalf("got type %s, want %s", got.Type, want.Type)
		}
	}
}

func TestConcurrentSenders(t *testing.T) {
	ca, cb := pipePair(t)
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ca.Send(&Message{Type: TypePing, Seq: uint64(i)})
		}(i)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		m, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if seen[m.Seq] {
			t.Fatalf("duplicate seq %d (frame corruption)", m.Seq)
		}
		seen[m.Seq] = true
	}
	wg.Wait()
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Message, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		c := New(nc)
		defer c.Close()
		m, err := c.Recv()
		if err != nil {
			return
		}
		c.Send(&Message{Type: TypePong, Seq: m.Seq})
		done <- m
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(&Message{Type: TypePing, Seq: 42}); err != nil {
		t.Fatal(err)
	}
	reply, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypePong || reply.Seq != 42 {
		t.Fatalf("reply %+v", reply)
	}
	select {
	case m := <-done:
		if m.Seq != 42 {
			t.Fatal("server saw wrong message")
		}
	case <-time.After(time.Second):
		t.Fatal("server never received")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	ca, cb := pipePair(t)
	go cb.Recv() // keep the pipe drained if the send partially goes out
	big := strings.Repeat("x", MaxFrame)
	err := ca.Send(&Message{Type: TypeError, Error: big})
	if err == nil {
		t.Fatal("expected oversize error")
	}
}

func TestTruncatedFrameTimesOut(t *testing.T) {
	// A peer that sends a frame header plus part of the body and then
	// goes silent must not block the reader goroutine forever once an
	// idle timeout is set (the controller sets one on every session).
	a, b := net.Pipe()
	defer a.Close()
	ca := New(a)
	ca.SetIdleTimeout(50 * time.Millisecond)
	go func() {
		var hdr [4]byte
		hdr[3] = 100 // declares a 100-byte body
		b.Write(hdr[:])
		b.Write([]byte(`{"type":"pi`)) // ...then stalls mid-frame
	}()
	done := make(chan error, 1)
	go func() {
		_, err := ca.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned a message from a truncated frame")
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("err = %v, want a timeout", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv blocked on a half-written frame")
	}
}

func TestIdleTimeoutAllowsIdleConnections(t *testing.T) {
	// The deadline bounds frame *completion*, not the wait between
	// frames: a connection idle far past the timeout still delivers
	// the next message.
	a, b := net.Pipe()
	defer a.Close()
	ca, cb := New(a), New(b)
	defer cb.Close()
	ca.SetIdleTimeout(30 * time.Millisecond)
	go func() {
		time.Sleep(120 * time.Millisecond) // 4x the idle timeout
		cb.Send(&Message{Type: TypePing, Seq: 9})
	}()
	m, err := ca.Recv()
	if err != nil {
		t.Fatalf("idle connection killed by frame timeout: %v", err)
	}
	if m.Type != TypePing || m.Seq != 9 {
		t.Fatalf("got %+v", m)
	}
}

func TestOversizedFrameHeaderRejected(t *testing.T) {
	// A header declaring a body beyond MaxFrame must fail Recv without
	// attempting the allocation.
	a, b := net.Pipe()
	defer a.Close()
	ca := New(a)
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
		b.Write(hdr[:])
	}()
	if _, err := ca.Recv(); err == nil || !strings.Contains(err.Error(), "exceeds max") {
		t.Fatalf("oversized frame header: err = %v", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	ca, _ := pipePair(t)
	if err := ca.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ca.Close(); err != nil {
		t.Fatal("second close should be nil")
	}
}

func TestLabelRoundTrip(t *testing.T) {
	f := func(d, tn uint16) bool {
		di, ti := int(d%4096), int(tn%4096)
		l, err := Label(di, ti)
		if err != nil {
			return false
		}
		gd, gt := SplitLabel(l)
		return gd == di && gt == ti
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Label(4096, 0); err == nil {
		t.Fatal("demand id over 12 bits must fail")
	}
	if _, err := Label(0, -1); err == nil {
		t.Fatal("negative tunnel id must fail")
	}
}
