package wire

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// TestDeadlinePromotesHeaderVersion pins the wire layout: a frame
// without a deadline stays header version 1 byte-for-byte, a frame
// with one is version 2 and carries the deadline between Seq and the
// payload.
func TestDeadlinePromotesHeaderVersion(t *testing.T) {
	plain := frameBytes(t, &Message{Type: TypeStatus, Seq: 3}, CodecBinary)
	if plain[1] != binaryVersion {
		t.Fatalf("no-deadline frame version = %d, want %d", plain[1], binaryVersion)
	}
	dl := frameBytes(t, &Message{Type: TypeStatus, Seq: 3, DeadlineMs: 40}, CodecBinary)
	if dl[1] != binaryVersionDeadline {
		t.Fatalf("deadline frame version = %d, want %d", dl[1], binaryVersionDeadline)
	}
	// [magic][ver][tag][len=2][seq=3][deadline=40]
	want := []byte{binaryMagic, binaryVersionDeadline, tagStatus, 2, 3, 40}
	if !bytes.Equal(dl, want) {
		t.Fatalf("deadline frame = %#v, want %#v", dl, want)
	}
}

// TestDeadlineRoundTripBothCodecs checks a deadline survives binary
// and JSON transport and that the codecs agree.
func TestDeadlineRoundTripBothCodecs(t *testing.T) {
	m := &Message{Type: TypeSubmit, Seq: 9, DeadlineMs: 125,
		Submit: &Submit{DemandID: 1, Src: "DC1", Dst: "DC2", Bandwidth: 10, Target: 0.99}}
	for _, codec := range []Codec{CodecBinary, CodecJSON} {
		got := roundTrip(t, m, codec)
		if got.DeadlineMs != 125 {
			t.Fatalf("%s: deadline = %d, want 125", codec, got.DeadlineMs)
		}
		if got.Submit == nil || got.Submit.DemandID != 1 {
			t.Fatalf("%s: payload lost: %+v", codec, got)
		}
	}
	// Paxos rides the tagJSONMsg fallback; its deadline travels inside
	// the embedded JSON under header version 1.
	pm := &Message{Type: TypePaxos, Seq: 2, DeadlineMs: 30, Paxos: &PaxosMsg{Kind: 1, From: 1}}
	frame := frameBytes(t, pm, CodecBinary)
	if frame[1] != binaryVersion {
		t.Fatalf("json-fallback frame version = %d, want %d", frame[1], binaryVersion)
	}
	if got := roundTrip(t, pm, CodecBinary); got.DeadlineMs != 30 {
		t.Fatalf("fallback deadline = %d, want 30", got.DeadlineMs)
	}
}

// TestRetryAfterRoundTrip covers the typed overload reject on both
// codecs, including the nil-payload presence flag.
func TestRetryAfterRoundTrip(t *testing.T) {
	for _, m := range []*Message{
		{Type: TypeRetryAfter, Seq: 4, RetryAfter: &RetryAfter{RetryAfterMs: 200, Reason: "queue-timeout"}},
		{Type: TypeRetryAfter, Seq: 5},
	} {
		for _, codec := range []Codec{CodecBinary, CodecJSON} {
			got := roundTrip(t, m, codec)
			if got.Type != TypeRetryAfter || got.Seq != m.Seq {
				t.Fatalf("%s: envelope %+v", codec, got)
			}
			if (got.RetryAfter == nil) != (m.RetryAfter == nil) {
				t.Fatalf("%s: presence flag lost: %+v", codec, got)
			}
			if m.RetryAfter != nil && *got.RetryAfter != *m.RetryAfter {
				t.Fatalf("%s: payload = %+v, want %+v", codec, got.RetryAfter, m.RetryAfter)
			}
		}
	}
}

// TestCoalescedOversizeSendSurfaces: satellite requirement — an
// encode-side ErrFrameTooLarge must come back from Send synchronously
// even in coalescing mode, not vanish into the async writer.
func TestCoalescedOversizeSendSurfaces(t *testing.T) {
	ca, cb := pipePair(t)
	ca.SetCodec(CodecBinary)
	ca.EnableCoalescing()
	go func() { // keep the writer drained so the queue is not the cause
		for {
			if _, err := cb.Recv(); err != nil {
				return
			}
		}
	}()
	err := ca.Send(&Message{Type: TypeError, Seq: 1, Error: strings.Repeat("x", MaxFrame+1)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("coalesced oversize send err = %v, want ErrFrameTooLarge", err)
	}
	// The connection is still usable: the oversize frame never entered
	// the queue.
	if err := ca.Send(&Message{Type: TypePing, Seq: 2}); err != nil {
		t.Fatalf("send after oversize reject: %v", err)
	}
}

// TestCoalescedBadFrameSurfaces: a malformed inbound frame still
// yields ErrBadFrame from Recv while the connection is in coalescing
// mode, and the sender of the garbage learns about it via the
// receiver's typed error reply instead of silence.
func TestCoalescedBadFrameSurfaces(t *testing.T) {
	ca, cb := pipePair(t)
	ca.EnableCoalescing()
	cb.EnableCoalescing()
	// A binary frame whose declared body is one byte of garbage for
	// tagSubmit (presence flag true, then nothing).
	go func() {
		raw := []byte{binaryMagic, binaryVersion, tagSubmit, 2, 0 /*seq*/, 1 /*present*/}
		nc := ca.nc
		nc.Write(raw)
	}()
	_, err := cb.Recv()
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("recv err = %v, want ErrBadFrame", err)
	}
	// The receiver can still send an explicit error frame back through
	// its coalescing writer — the reject path stays open.
	if err := cb.Send(&Message{Type: TypeError, Error: "bad frame"}); err != nil {
		t.Fatalf("error reply after bad frame: %v", err)
	}
	reply, err := ca.Recv()
	if err != nil || reply.Type != TypeError {
		t.Fatalf("sender never saw the typed error: %v %+v", err, reply)
	}
}

// TestEnqueueBoundRejectsSlowPeer: a peer that stops draining fails
// Send with ErrSendQueueFull within the enqueue grace instead of
// pinning buffers until Close, and the error is sticky.
func TestEnqueueBoundRejectsSlowPeer(t *testing.T) {
	a, b := net.Pipe()
	ca := New(a)
	defer b.Close()
	ca.SetCodec(CodecBinary)
	ca.SetEnqueueGrace(5 * time.Millisecond)
	ca.EnableCoalescing()
	// Nobody reads from b: the writer wedges on the pipe, the queue
	// fills, and Send must fail within the bounded grace.
	var sawFull bool
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < SendQueueDepth+10_000 && time.Now().Before(deadline); i++ {
		if err := ca.Send(&Message{Type: TypePing, Seq: uint64(i)}); err != nil {
			if !errors.Is(err, ErrSendQueueFull) {
				t.Fatalf("send err = %v, want ErrSendQueueFull", err)
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("queue never reported full against a wedged peer")
	}
	// Sticky: the very next Send fails immediately with the same error.
	t0 := time.Now()
	if err := ca.Send(&Message{Type: TypePing, Seq: 999}); !errors.Is(err, ErrSendQueueFull) {
		t.Fatalf("second send err = %v, want sticky ErrSendQueueFull", err)
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("sticky reject took %v, want immediate", d)
	}
	// Close still returns; the wedged writer is cut loose by the
	// bounded drain grace.
	done := make(chan struct{})
	go func() { ca.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a wedged coalescing writer")
	}
}

// TestV2FrameFromRawBytes proves an independently constructed v2
// frame decodes, so the version check is about capability, not an
// exact-match lockstep.
func TestV2FrameFromRawBytes(t *testing.T) {
	frame := []byte{binaryMagic, binaryVersionDeadline, tagWithdraw, 4, 7 /*seq*/, 99 /*deadline*/, 2 /*id zigzag(1)*/, 0xde}
	c := &Conn{r: bufio.NewReader(bytes.NewReader(frame))}
	m, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeWithdraw || m.Seq != 7 || m.DeadlineMs != 99 || m.WithdrawID != 1 {
		t.Fatalf("decoded %+v", m)
	}
	// Version 3 is still rejected.
	bad := []byte{binaryMagic, 3, tagPing, 1, 0}
	c = &Conn{r: bufio.NewReader(bytes.NewReader(bad))}
	if _, err := c.Recv(); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("v3 err = %v, want ErrBadVersion", err)
	}
}
