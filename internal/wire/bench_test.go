package wire

import (
	"bufio"
	"io"
	"testing"
)

// repeatReader replays one frame forever, so Recv benchmarks measure
// steady-state decode cost without a socket in the way.
type repeatReader struct {
	data []byte
	off  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func benchMessages() map[string]*Message {
	batch := make([]Submit, 32)
	for i := range batch {
		batch[i] = Submit{Src: "DC1", Dst: "DC4", Bandwidth: 100 + float64(i), Target: 0.999, Charge: 10, RefundFrac: 0.5}
	}
	return map[string]*Message{
		"submit":      {Type: TypeSubmit, Seq: 7, Submit: &Submit{DemandID: 3, Src: "DC1", Dst: "DC4", Bandwidth: 500, Target: 0.999, Charge: 500, RefundFrac: 0.1}},
		"submitbatch": {Type: TypeSubmitBatch, Seq: 8, SubmitBatch: batch},
		"admitresult": {Type: TypeAdmitResult, Seq: 9, AdmitResult: &AdmitResult{DemandID: 3, Admitted: true, Method: "fixed", DelayMs: 0.4}},
		"withdraw":    {Type: TypeWithdraw, Seq: 10, WithdrawID: 3},
	}
}

func BenchmarkEncode(b *testing.B) {
	for name, m := range benchMessages() {
		for _, codec := range []Codec{CodecBinary, CodecJSON} {
			b.Run(name+"/"+codec.String(), func(b *testing.B) {
				b.ReportAllocs()
				bp := getBuf()
				var bytes int64
				for i := 0; i < b.N; i++ {
					stored, off, err := encodeFrame((*bp)[:0], m, codec)
					if err != nil {
						b.Fatal(err)
					}
					*bp = stored
					bytes += int64(len(stored) - off)
				}
				b.ReportMetric(float64(bytes)/float64(b.N), "frame-bytes")
			})
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	for name, m := range benchMessages() {
		for _, codec := range []Codec{CodecBinary, CodecJSON} {
			b.Run(name+"/"+codec.String(), func(b *testing.B) {
				frame := frameBytes(b, m, codec)
				c := &Conn{r: bufio.NewReader(&repeatReader{data: frame})}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.Recv(); err != nil && err != io.EOF {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
