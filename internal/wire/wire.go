// Package wire implements the communication channel of §4: framed
// messages over long-lived TCP connections between the central
// controller, the per-DC brokers, and user clients.
//
// Two codecs share one connection. Every connection starts in the
// JSON debug/compat codec (4-byte big-endian length prefix + JSON
// body); a Hello carrying Codec=CodecBinary switches both directions
// to the compact binary protocol (fixed header: magic, version, type
// tag, uvarint body length; hand-rolled per-type bodies). Receivers
// sniff the codec per frame from the first byte, so mixed-version
// peers interoperate without any out-of-band version handshake.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bate/internal/metrics"
)

// MaxFrame bounds a single message frame (1 MiB); larger frames are
// rejected to protect against corrupt peers. Keeping the bound under
// 1<<24 also guarantees the top byte of a JSON length prefix is zero,
// which is what lets a receiver distinguish JSON frames from binary
// frames (magic 0xBA) by their first byte.
const MaxFrame = 1 << 20

// Type discriminates messages.
type Type string

// Message types.
const (
	TypeHello       Type = "hello"        // broker/client -> controller
	TypeSubmit      Type = "submit"       // client -> controller: BA demand
	TypeAdmitResult Type = "admit-result" // controller -> client
	// TypeSubmitBatch submits several demands at once; the controller
	// admits them as one batch (parallel speculation, serial-equivalent
	// decisions) and answers with TypeAdmitBatchResult.
	TypeSubmitBatch      Type = "submit-batch"       // client -> controller
	TypeAdmitBatchResult Type = "admit-batch-result" // controller -> client
	TypeAllocUpdate      Type = "alloc-update"       // controller -> broker
	TypeLinkEvent        Type = "link-event"         // broker -> controller
	TypeWithdraw         Type = "withdraw"           // client -> controller: demand done
	TypeStats            Type = "stats"              // broker -> controller
	TypePing             Type = "ping"
	TypePong             Type = "pong"
	TypeError            Type = "error"
	TypePaxos            Type = "paxos"  // controller-replica election traffic
	TypeStatus           Type = "status" // client -> controller: demand status query
	TypeStatusReply      Type = "status-reply"
	// TypeRetryAfter is the controller's explicit overload reject: the
	// request was shed (never silently dropped) and the client should
	// retry after the hinted backoff plus its own jitter.
	TypeRetryAfter Type = "retry-after"
)

// Hello announces a peer. Role is "broker" or "client"; DC names the
// broker's datacenter. Codec asks the receiver to answer with the
// named codec; the sender switches its own transmit codec to the same
// value right after the Hello goes out (the Hello itself always rides
// the codec in force before it, JSON on a fresh connection). Old
// peers omit the field and keep the JSON default.
type Hello struct {
	Role  string `json:"role"`
	DC    string `json:"dc,omitempty"`
	Codec Codec  `json:"codec,omitempty"`
}

// Submit carries a BA demand request: bandwidth (Mbps) between two
// DCs with an availability target, a charge and a refund fraction.
type Submit struct {
	DemandID   int     `json:"demand_id"`
	Src        string  `json:"src_dc"`
	Dst        string  `json:"dst_dc"`
	Bandwidth  float64 `json:"bandwidth_mbps"`
	Target     float64 `json:"target"`
	Charge     float64 `json:"charge"`
	RefundFrac float64 `json:"refund_frac"`
}

// AdmitResult answers a Submit.
type AdmitResult struct {
	DemandID int    `json:"demand_id"`
	Admitted bool   `json:"admitted"`
	Method   string `json:"method"`
	// DelayMs is the controller-side admission latency.
	DelayMs float64 `json:"delay_ms"`
}

// TunnelAlloc is one tunnel's share of a demand's bandwidth. Label is
// the 24-bit forwarding label (12-bit demand, 12-bit tunnel; §4).
type TunnelAlloc struct {
	Label uint32   `json:"label"`
	Hops  []string `json:"hops"` // DC names, source first
	Rate  float64  `json:"rate_mbps"`
}

// AllocUpdate pushes the current allocations relevant to one broker.
type AllocUpdate struct {
	Epoch   uint64        `json:"epoch"`
	Tunnels []TunnelAlloc `json:"tunnels"`
	// Backup indicates this is a precomputed failure backup being
	// activated rather than a scheduled allocation.
	Backup bool `json:"backup,omitempty"`
}

// LinkEvent reports a link state change observed by a broker's
// network agent.
type LinkEvent struct {
	SrcDC    string  `json:"src_dc"`
	DstDC    string  `json:"dst_dc"`
	Up       bool    `json:"up"`
	AtUnixMs int64   `json:"at_unix_ms"`
	RateMbps float64 `json:"rate_mbps,omitempty"`
}

// Stats carries a broker's periodic rate observations.
type Stats struct {
	DC    string             `json:"dc"`
	Rates map[string]float64 `json:"rates_mbps"`
}

// DemandStatus is one demand's line in a status reply.
type DemandStatus struct {
	DemandID  int     `json:"demand_id"`
	Src       string  `json:"src_dc"`
	Dst       string  `json:"dst_dc"`
	Bandwidth float64 `json:"bandwidth_mbps"`
	Target    float64 `json:"target"`
	// Achieved is the controller's current availability estimate for
	// the installed allocation (post-processing over failure
	// scenarios).
	Achieved float64 `json:"achieved"`
	// Allocated is the bandwidth currently reserved across tunnels.
	Allocated float64 `json:"allocated_mbps"`
}

// StatusReply answers a TypeStatus query.
type StatusReply struct {
	Demands []DemandStatus `json:"demands"`
	Epoch   uint64         `json:"epoch"`
	// Counters is a snapshot of the controller's internal metrics
	// (admissions, scheduling solves, scenario-cache hit rates, worker
	// pool usage).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// RetryAfter is the payload of a TypeRetryAfter frame: an explicit
// overload reject. RetryAfterMs is the controller's backoff hint
// (clients add their own jitter so shed herds do not re-arrive in
// sync); Reason names the shed cause (see internal/overload).
type RetryAfter struct {
	RetryAfterMs int64  `json:"retry_after_ms"`
	Reason       string `json:"reason,omitempty"`
}

// PaxosMsg carries one Paxos protocol message between controller
// replicas (§4: master election). Paxos frames ride the tagJSONMsg
// fallback under the binary codec; election traffic is too rare to
// earn a hand-rolled body.
type PaxosMsg struct {
	Kind           int8   `json:"kind"`
	From           int    `json:"from"`
	To             int    `json:"to"`
	BallotRound    uint64 `json:"ballot_round"`
	BallotNode     int    `json:"ballot_node"`
	AccBallotRound uint64 `json:"acc_ballot_round,omitempty"`
	AccBallotNode  int    `json:"acc_ballot_node,omitempty"`
	AccValue       string `json:"acc_value,omitempty"`
	HasAccepted    bool   `json:"has_accepted,omitempty"`
	Value          string `json:"value,omitempty"`
}

// Message is the frame envelope; exactly one payload field matching
// Type is set.
type Message struct {
	Type Type   `json:"type"`
	Seq  uint64 `json:"seq,omitempty"`
	// DeadlineMs is the sender's request budget in milliseconds: how
	// long the sender is still willing to wait for the answer. The
	// controller's admission gate sheds a request it cannot start
	// within this budget instead of doing work nobody will read. Zero
	// means no deadline. On the binary codec a non-zero deadline
	// promotes the frame to header version 2 (older frames stay
	// version 1, so peers that never set deadlines interoperate
	// unchanged); on JSON it is just another optional field.
	DeadlineMs  int64        `json:"deadline_ms,omitempty"`
	Hello       *Hello       `json:"hello,omitempty"`
	Submit      *Submit      `json:"submit,omitempty"`
	AdmitResult *AdmitResult `json:"admit_result,omitempty"`
	// SubmitBatch/AdmitBatchResult carry TypeSubmitBatch requests and
	// their per-demand answers, index-aligned with the request.
	SubmitBatch      []Submit      `json:"submit_batch,omitempty"`
	AdmitBatchResult []AdmitResult `json:"admit_batch_result,omitempty"`
	Alloc            *AllocUpdate  `json:"alloc,omitempty"`
	LinkEvent        *LinkEvent    `json:"link_event,omitempty"`
	Stats            *Stats        `json:"stats,omitempty"`
	Paxos            *PaxosMsg     `json:"paxos,omitempty"`
	Status           *StatusReply  `json:"status,omitempty"`
	RetryAfter       *RetryAfter   `json:"retry_after,omitempty"`
	WithdrawID       int           `json:"withdraw_id,omitempty"`
	Error            string        `json:"error,omitempty"`
}

// Wire-level metrics, reported through the process-wide registry and
// surfaced in StatusReply.Counters.
var (
	mFramesSent = metrics.NewCounter("wire.frames_sent")
	mFramesRecv = metrics.NewCounter("wire.frames_recv")
	mBytesSent  = metrics.NewCounter("wire.bytes_sent")
	mBytesRecv  = metrics.NewCounter("wire.bytes_recv")
	mFlushes    = metrics.NewCounter("wire.flushes")
	mBinaryRecv = metrics.NewCounter("wire.binary_frames_recv")
	mJSONRecv   = metrics.NewCounter("wire.json_frames_recv")
	mOversize   = metrics.NewCounter("wire.frame_too_large")
	mShortReads = metrics.NewCounter("wire.short_reads")
	mDecodeErrs = metrics.NewCounter("wire.decode_errors")
	mEnqRejects = metrics.NewCounter("wire.enqueue_rejects")
)

// bufPool recycles frame encode/decode buffers across connections.
// Buffers that grew past 64 KiB are dropped rather than pooled so a
// single jumbo frame does not pin memory forever.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

const maxPooledBuf = 64 << 10

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// qframe is one encoded frame queued for the coalescing writer: the
// pooled storage buffer plus the offset where the frame begins.
type qframe struct {
	bp  *[]byte
	off int
}

// Conn is a framed, concurrency-safe message connection. Reads and
// writes may proceed concurrently; writes are serialized internally.
type Conn struct {
	nc   net.Conn
	r    *bufio.Reader
	idle time.Duration

	wmu     sync.Mutex
	w       *bufio.Writer
	pending atomic.Int32 // senders between encode and write (sync mode)

	tx       atomic.Uint32 // Codec for outgoing frames
	txPinned atomic.Bool   // LockCodec called; ignore negotiation
	rx       atomic.Uint32 // Codec of the most recently received frame

	// strIntern dedups decoded strings across this connection's
	// frames; touched only by the reader goroutine.
	strIntern map[string]string

	// Coalescing mode (EnableCoalescing): Send enqueues encoded
	// frames; a single writer goroutine drains bursts and flushes once
	// per burst instead of once per frame.
	coalesce bool
	sendq    chan qframe
	qgrace   time.Duration
	closing  chan struct{}
	drained  chan struct{}
	werr     atomic.Value // sticky write error (error)

	once     sync.Once
	closeErr error
}

// SetIdleTimeout bounds how long Recv waits for the remainder of a
// frame once its first byte has arrived. Waiting for a frame to
// *start* is never bounded — long-lived control channels sit idle by
// design — but a peer that goes silent mid-frame (a half-written
// frame from a crashed or wedged sender) fails the read instead of
// blocking the reader goroutine forever. Zero (the default) disables
// the bound. Set before handing the Conn to a reader goroutine.
func (c *Conn) SetIdleTimeout(d time.Duration) { c.idle = d }

// New wraps an established net.Conn. The connection starts in the
// JSON codec; a Hello negotiates the binary codec (see Hello.Codec).
func New(nc net.Conn) *Conn {
	return &Conn{nc: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
}

// Dial connects to addr with a sane timeout and wraps the connection.
func Dial(addr string) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		// Long-lived control channel: keep-alives detect dead peers.
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
		tc.SetNoDelay(true)
	}
	return New(nc), nil
}

// SendCodec reports the codec outgoing frames currently use.
func (c *Conn) SendCodec() Codec { return Codec(c.tx.Load()) }

// RecvCodec reports the codec of the most recently received frame
// (CodecJSON before any frame arrives).
func (c *Conn) RecvCodec() Codec { return Codec(c.rx.Load()) }

// SetCodec sets the outgoing codec directly, bypassing negotiation.
func (c *Conn) SetCodec(codec Codec) { c.tx.Store(uint32(codec)) }

// LockCodec pins the outgoing codec: subsequent Hello negotiation is
// ignored. The controller uses this to force the JSON debug codec on
// every session regardless of what peers ask for.
func (c *Conn) LockCodec(codec Codec) {
	c.tx.Store(uint32(codec))
	c.txPinned.Store(true)
}

// negotiate applies a Hello's codec request to the transmit side.
// Unknown future codecs fall back to JSON — the one codec every
// implementation speaks.
func (c *Conn) negotiate(codec Codec) {
	if c.txPinned.Load() {
		return
	}
	if codec != CodecBinary {
		codec = CodecJSON
	}
	c.tx.Store(uint32(codec))
}

// EnableCoalescing switches the connection to an asynchronous writer:
// Send enqueues encoded frames and returns, and a dedicated goroutine
// writes queued frames back-to-back, flushing once per burst instead
// of once per frame. Under pipelined load this collapses hundreds of
// small syscalls into one. The cost is weaker error reporting — a
// write failure surfaces on a *later* Send as a sticky error — and
// that SetWriteDeadline no longer bounds an individual Send, so the
// election path must NOT use it. Call once, before the Conn is shared
// between goroutines; the controller enables it on accepted sessions
// and the load harness on its clients.
func (c *Conn) EnableCoalescing() {
	if c.coalesce {
		return
	}
	c.coalesce = true
	c.sendq = make(chan qframe, SendQueueDepth)
	if c.qgrace == 0 {
		c.qgrace = DefaultEnqueueGrace
	}
	c.closing = make(chan struct{})
	c.drained = make(chan struct{})
	go c.writeLoop()
}

// Coalescing-writer bounds. SendQueueDepth is the hard cap on queued
// frames per connection; DefaultEnqueueGrace is how long a Send waits
// for a place in a full queue before declaring the peer slow. Together
// they bound how many pooled frame buffers one stalled peer can pin:
// depth × MaxFrame worst-case, instead of "until Close" before.
const (
	SendQueueDepth      = 256
	DefaultEnqueueGrace = 100 * time.Millisecond
)

// SetEnqueueGrace overrides DefaultEnqueueGrace (how long a Send may
// block on a full coalescing queue before failing with
// ErrSendQueueFull). Call before EnableCoalescing.
func (c *Conn) SetEnqueueGrace(d time.Duration) { c.qgrace = d }

// encodeFrame appends one framed message to b under the given codec.
// It returns the (possibly grown) buffer and the offset where the
// frame starts: the binary path reserves header space up front and
// backfills it so the body is encoded exactly once, with no copy.
func encodeFrame(b []byte, m *Message, codec Codec) ([]byte, int, error) {
	if codec != CodecBinary {
		data, err := json.Marshal(m)
		if err != nil {
			return b, 0, fmt.Errorf("wire: marshal: %w", err)
		}
		if len(data) > MaxFrame {
			return b, 0, fmt.Errorf("wire: frame of %d bytes exceeds max %d: %w", len(data), MaxFrame, ErrFrameTooLarge)
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
		b = append(b, hdr[:]...)
		return append(b, data...), 0, nil
	}
	const maxHdr = 3 + binary.MaxVarintLen32
	b = append(b, make([]byte, maxHdr)...)
	b, tag, ver, err := appendBinaryBody(b, m)
	if err != nil {
		return b, 0, err
	}
	bodyLen := len(b) - maxHdr
	if bodyLen > MaxFrame {
		return b, 0, fmt.Errorf("wire: frame of %d bytes exceeds max %d: %w", bodyLen, MaxFrame, ErrFrameTooLarge)
	}
	var vbuf [binary.MaxVarintLen32]byte
	vn := binary.PutUvarint(vbuf[:], uint64(bodyLen))
	off := maxHdr - 3 - vn
	b[off] = binaryMagic
	b[off+1] = ver
	b[off+2] = tag
	copy(b[off+3:maxHdr], vbuf[:vn])
	return b, off, nil
}

// Send writes one message frame using the connection's current
// outgoing codec. Sending a Hello switches the outgoing codec to the
// Hello's requested codec once the Hello itself is on the wire.
func (c *Conn) Send(m *Message) error {
	codec := Codec(c.tx.Load())
	bp := getBuf()
	stored, off, err := encodeFrame((*bp)[:0], m, codec)
	*bp = stored[:0]
	if err != nil {
		putBuf(bp)
		return err
	}
	*bp = stored
	if c.coalesce {
		err = c.enqueue(qframe{bp, off})
	} else {
		err = c.writeFrame(qframe{bp, off})
	}
	if err != nil {
		return err
	}
	if m.Type == TypeHello && m.Hello != nil {
		c.negotiate(m.Hello.Codec)
	}
	return nil
}

// writeFrame writes one frame synchronously. Concurrent senders
// coalesce flushes opportunistically: only the last sender with no
// successor pending pays the flush.
func (c *Conn) writeFrame(f qframe) error {
	frame := (*f.bp)[f.off:]
	c.pending.Add(1)
	c.wmu.Lock()
	_, err := c.w.Write(frame)
	if c.pending.Add(-1) == 0 && err == nil {
		if err = c.w.Flush(); err == nil {
			mFlushes.Inc()
		}
	}
	c.wmu.Unlock()
	mFramesSent.Inc()
	mBytesSent.Add(int64(len(frame)))
	putBuf(f.bp)
	if err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	return nil
}

// enqueue hands a frame to the coalescing writer. The queue is
// bounded: a frame that cannot find a place within the enqueue grace
// means the peer has stopped draining its TCP window, and the
// connection fails sticky with ErrSendQueueFull so the owner (the
// controller's broker push path) can evict the slow peer instead of
// letting it pin frame buffers indefinitely.
func (c *Conn) enqueue(f qframe) error {
	if e, ok := c.werr.Load().(error); ok && e != nil {
		putBuf(f.bp)
		return fmt.Errorf("wire: write: %w", e)
	}
	select {
	case c.sendq <- f:
		return nil
	case <-c.closing:
		putBuf(f.bp)
		return net.ErrClosed
	default:
	}
	timer := time.NewTimer(c.qgrace)
	defer timer.Stop()
	select {
	case c.sendq <- f:
		return nil
	case <-c.closing:
		putBuf(f.bp)
		return net.ErrClosed
	case <-timer.C:
		putBuf(f.bp)
		mEnqRejects.Inc()
		c.werr.Store(ErrSendQueueFull)
		return fmt.Errorf("wire: enqueue: %w", ErrSendQueueFull)
	}
}

// writeLoop is the coalescing writer: it drains every queued frame
// back-to-back and flushes only when the queue runs empty, then
// blocks for the next frame. On Close it drains what is queued,
// flushes, and exits.
func (c *Conn) writeLoop() {
	defer close(c.drained)
	writeOne := func(f qframe) {
		frame := (*f.bp)[f.off:]
		if e, ok := c.werr.Load().(error); !ok || e == nil {
			if _, err := c.w.Write(frame); err != nil {
				c.werr.Store(err)
			}
		}
		mFramesSent.Inc()
		mBytesSent.Add(int64(len(frame)))
		putBuf(f.bp)
	}
	flush := func() {
		if e, ok := c.werr.Load().(error); ok && e != nil {
			return
		}
		if err := c.w.Flush(); err != nil {
			c.werr.Store(err)
			return
		}
		mFlushes.Inc()
	}
	for {
		select {
		case f := <-c.sendq:
			writeOne(f)
			for done := false; !done; {
				select {
				case f := <-c.sendq:
					writeOne(f)
				default:
					done = true
				}
			}
			flush()
		case <-c.closing:
			for done := false; !done; {
				select {
				case f := <-c.sendq:
					writeOne(f)
				default:
					done = true
				}
			}
			flush()
			return
		}
	}
}

// Recv reads the next message frame, blocking until one arrives or
// the connection fails. The codec is sniffed per frame from the first
// byte: 0xBA opens a binary frame, 0x00 a JSON length prefix. With an
// idle timeout set (SetIdleTimeout), the wait for the first byte is
// unbounded but the rest of the frame must arrive within the timeout.
func (c *Conn) Recv() (*Message, error) {
	first, err := c.r.ReadByte()
	if err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	if c.idle > 0 {
		c.nc.SetReadDeadline(time.Now().Add(c.idle))
		defer c.nc.SetReadDeadline(time.Time{})
	}
	var m *Message
	switch first {
	case binaryMagic:
		m, err = c.recvBinary()
	case 0:
		m, err = c.recvJSON()
	default:
		mDecodeErrs.Inc()
		return nil, fmt.Errorf("wire: frame starts with %#02x: %w", first, ErrBadMagic)
	}
	if err != nil {
		return nil, err
	}
	mFramesRecv.Inc()
	if m.Type == TypeHello && m.Hello != nil {
		c.negotiate(m.Hello.Codec)
	}
	return m, nil
}

// recvJSON reads a JSON frame; the leading zero byte of the length
// prefix has already been consumed.
func (c *Conn) recvJSON() (*Message, error) {
	var hdr [3]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		mShortReads.Inc()
		return nil, fmt.Errorf("wire: read header: %w: %w", ErrShortRead, err)
	}
	n := uint32(hdr[0])<<16 | uint32(hdr[1])<<8 | uint32(hdr[2])
	if n > MaxFrame {
		mOversize.Inc()
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds max %d: %w", n, MaxFrame, ErrFrameTooLarge)
	}
	bp := getBuf()
	if cap(*bp) < int(n) {
		*bp = make([]byte, n)
	}
	body := (*bp)[:n]
	if _, err := io.ReadFull(c.r, body); err != nil {
		putBuf(bp)
		mShortReads.Inc()
		return nil, fmt.Errorf("wire: read body: %w: %w", ErrShortRead, err)
	}
	mBytesRecv.Add(int64(n) + 4)
	var m Message
	err := json.Unmarshal(body, &m)
	putBuf(bp)
	if err != nil {
		mDecodeErrs.Inc()
		return nil, fmt.Errorf("wire: unmarshal: %w: %v", ErrBadFrame, err)
	}
	mJSONRecv.Inc()
	c.rx.Store(uint32(CodecJSON))
	return &m, nil
}

// recvBinary reads a binary frame; the magic byte has already been
// consumed.
func (c *Conn) recvBinary() (*Message, error) {
	ver, err := c.r.ReadByte()
	if err != nil {
		mShortReads.Inc()
		return nil, fmt.Errorf("wire: read version: %w: %w", ErrShortRead, err)
	}
	if ver < binaryVersion || ver > binaryVersionDeadline {
		mDecodeErrs.Inc()
		return nil, fmt.Errorf("wire: frame version %d: %w", ver, ErrBadVersion)
	}
	tag, err := c.r.ReadByte()
	if err != nil {
		mShortReads.Inc()
		return nil, fmt.Errorf("wire: read tag: %w: %w", ErrShortRead, err)
	}
	n, err := binary.ReadUvarint(c.r)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			mShortReads.Inc()
			return nil, fmt.Errorf("wire: read length: %w: %w", ErrShortRead, err)
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			mShortReads.Inc()
			return nil, fmt.Errorf("wire: read length: %w: %w", ErrShortRead, err)
		}
		mDecodeErrs.Inc()
		return nil, fmt.Errorf("wire: read length: %w: %v", ErrBadFrame, err)
	}
	if n > MaxFrame {
		mOversize.Inc()
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds max %d: %w", n, MaxFrame, ErrFrameTooLarge)
	}
	bp := getBuf()
	if cap(*bp) < int(n) {
		*bp = make([]byte, n)
	}
	body := (*bp)[:n]
	if _, err := io.ReadFull(c.r, body); err != nil {
		putBuf(bp)
		mShortReads.Inc()
		return nil, fmt.Errorf("wire: read body: %w: %w", ErrShortRead, err)
	}
	mBytesRecv.Add(int64(n) + 3)
	if c.strIntern == nil {
		c.strIntern = make(map[string]string, 64)
	}
	m, err := decodeBinaryBody(tag, ver, body, c.strIntern)
	putBuf(bp)
	if err != nil {
		mDecodeErrs.Inc()
		if !errors.Is(err, ErrBadFrame) {
			err = fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		return nil, fmt.Errorf("wire: decode tag %d: %w", tag, err)
	}
	mBinaryRecv.Inc()
	c.rx.Store(uint32(CodecBinary))
	return m, nil
}

// SetDeadline bounds the next read/write.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// SetWriteDeadline bounds the next write, so a send to a wedged peer
// fails instead of blocking the sender behind a full TCP window. Only
// meaningful in the default synchronous write mode (the election path
// relies on it); a coalescing Conn's writes happen on the writer
// goroutine instead. Clear with the zero time.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// Close shuts the connection down (idempotent). A coalescing Conn
// first stops intake and gives the writer a bounded grace period to
// drain and flush queued frames, so Close right after Send does not
// drop the frame on the floor.
func (c *Conn) Close() error {
	c.once.Do(func() {
		if c.coalesce {
			close(c.closing)
			select {
			case <-c.drained:
			case <-time.After(250 * time.Millisecond):
				// Writer is wedged on a dead peer; closing the socket
				// below unblocks it.
			}
		}
		c.closeErr = c.nc.Close()
	})
	return c.closeErr
}

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Label packs a demand id and tunnel id into the 24-bit VxLAN-style
// forwarding label of §4 (first 12 bits demand, last 12 bits tunnel).
func Label(demandID, tunnelID int) (uint32, error) {
	if demandID < 0 || demandID >= 1<<12 {
		return 0, fmt.Errorf("wire: demand id %d outside 12 bits", demandID)
	}
	if tunnelID < 0 || tunnelID >= 1<<12 {
		return 0, fmt.Errorf("wire: tunnel id %d outside 12 bits", tunnelID)
	}
	return uint32(demandID)<<12 | uint32(tunnelID), nil
}

// SplitLabel unpacks a forwarding label.
func SplitLabel(label uint32) (demandID, tunnelID int) {
	return int(label >> 12 & 0xfff), int(label & 0xfff)
}
