// Package wire implements the communication channel of §4: length-
// prefixed JSON messages over long-lived TCP connections between the
// central controller, the per-DC brokers, and user clients.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds a single message frame (1 MiB); larger frames are
// rejected to protect against corrupt peers.
const MaxFrame = 1 << 20

// Type discriminates messages.
type Type string

// Message types.
const (
	TypeHello       Type = "hello"        // broker/client -> controller
	TypeSubmit      Type = "submit"       // client -> controller: BA demand
	TypeAdmitResult Type = "admit-result" // controller -> client
	// TypeSubmitBatch submits several demands at once; the controller
	// admits them as one batch (parallel speculation, serial-equivalent
	// decisions) and answers with TypeAdmitBatchResult.
	TypeSubmitBatch      Type = "submit-batch"       // client -> controller
	TypeAdmitBatchResult Type = "admit-batch-result" // controller -> client
	TypeAllocUpdate      Type = "alloc-update"       // controller -> broker
	TypeLinkEvent        Type = "link-event"         // broker -> controller
	TypeWithdraw         Type = "withdraw"           // client -> controller: demand done
	TypeStats            Type = "stats"              // broker -> controller
	TypePing             Type = "ping"
	TypePong             Type = "pong"
	TypeError            Type = "error"
	TypePaxos            Type = "paxos"  // controller-replica election traffic
	TypeStatus           Type = "status" // client -> controller: demand status query
	TypeStatusReply      Type = "status-reply"
)

// Hello announces a peer. Role is "broker" or "client"; DC names the
// broker's datacenter.
type Hello struct {
	Role string `json:"role"`
	DC   string `json:"dc,omitempty"`
}

// Submit carries a BA demand request: bandwidth (Mbps) between two
// DCs with an availability target, a charge and a refund fraction.
type Submit struct {
	DemandID   int     `json:"demand_id"`
	Src        string  `json:"src_dc"`
	Dst        string  `json:"dst_dc"`
	Bandwidth  float64 `json:"bandwidth_mbps"`
	Target     float64 `json:"target"`
	Charge     float64 `json:"charge"`
	RefundFrac float64 `json:"refund_frac"`
}

// AdmitResult answers a Submit.
type AdmitResult struct {
	DemandID int    `json:"demand_id"`
	Admitted bool   `json:"admitted"`
	Method   string `json:"method"`
	// DelayMs is the controller-side admission latency.
	DelayMs float64 `json:"delay_ms"`
}

// TunnelAlloc is one tunnel's share of a demand's bandwidth. Label is
// the 24-bit forwarding label (12-bit demand, 12-bit tunnel; §4).
type TunnelAlloc struct {
	Label uint32   `json:"label"`
	Hops  []string `json:"hops"` // DC names, source first
	Rate  float64  `json:"rate_mbps"`
}

// AllocUpdate pushes the current allocations relevant to one broker.
type AllocUpdate struct {
	Epoch   uint64        `json:"epoch"`
	Tunnels []TunnelAlloc `json:"tunnels"`
	// Backup indicates this is a precomputed failure backup being
	// activated rather than a scheduled allocation.
	Backup bool `json:"backup,omitempty"`
}

// LinkEvent reports a link state change observed by a broker's
// network agent.
type LinkEvent struct {
	SrcDC    string  `json:"src_dc"`
	DstDC    string  `json:"dst_dc"`
	Up       bool    `json:"up"`
	AtUnixMs int64   `json:"at_unix_ms"`
	RateMbps float64 `json:"rate_mbps,omitempty"`
}

// Stats carries a broker's periodic rate observations.
type Stats struct {
	DC    string             `json:"dc"`
	Rates map[string]float64 `json:"rates_mbps"`
}

// DemandStatus is one demand's line in a status reply.
type DemandStatus struct {
	DemandID  int     `json:"demand_id"`
	Src       string  `json:"src_dc"`
	Dst       string  `json:"dst_dc"`
	Bandwidth float64 `json:"bandwidth_mbps"`
	Target    float64 `json:"target"`
	// Achieved is the controller's current availability estimate for
	// the installed allocation (post-processing over failure
	// scenarios).
	Achieved float64 `json:"achieved"`
	// Allocated is the bandwidth currently reserved across tunnels.
	Allocated float64 `json:"allocated_mbps"`
}

// StatusReply answers a TypeStatus query.
type StatusReply struct {
	Demands []DemandStatus `json:"demands"`
	Epoch   uint64         `json:"epoch"`
	// Counters is a snapshot of the controller's internal metrics
	// (admissions, scheduling solves, scenario-cache hit rates, worker
	// pool usage).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// PaxosMsg carries one Paxos protocol message between controller
// replicas (§4: master election).
type PaxosMsg struct {
	Kind           int8   `json:"kind"`
	From           int    `json:"from"`
	To             int    `json:"to"`
	BallotRound    uint64 `json:"ballot_round"`
	BallotNode     int    `json:"ballot_node"`
	AccBallotRound uint64 `json:"acc_ballot_round,omitempty"`
	AccBallotNode  int    `json:"acc_ballot_node,omitempty"`
	AccValue       string `json:"acc_value,omitempty"`
	HasAccepted    bool   `json:"has_accepted,omitempty"`
	Value          string `json:"value,omitempty"`
}

// Message is the frame envelope; exactly one payload field matching
// Type is set.
type Message struct {
	Type        Type         `json:"type"`
	Seq         uint64       `json:"seq,omitempty"`
	Hello       *Hello       `json:"hello,omitempty"`
	Submit      *Submit      `json:"submit,omitempty"`
	AdmitResult *AdmitResult `json:"admit_result,omitempty"`
	// SubmitBatch/AdmitBatchResult carry TypeSubmitBatch requests and
	// their per-demand answers, index-aligned with the request.
	SubmitBatch      []Submit      `json:"submit_batch,omitempty"`
	AdmitBatchResult []AdmitResult `json:"admit_batch_result,omitempty"`
	Alloc            *AllocUpdate  `json:"alloc,omitempty"`
	LinkEvent        *LinkEvent    `json:"link_event,omitempty"`
	Stats            *Stats        `json:"stats,omitempty"`
	Paxos            *PaxosMsg     `json:"paxos,omitempty"`
	Status           *StatusReply  `json:"status,omitempty"`
	WithdrawID       int           `json:"withdraw_id,omitempty"`
	Error            string        `json:"error,omitempty"`
}

// Conn is a framed, concurrency-safe message connection. Reads and
// writes may proceed concurrently; writes are serialized internally.
type Conn struct {
	nc   net.Conn
	r    *bufio.Reader
	wmu  sync.Mutex
	w    *bufio.Writer
	once sync.Once
	idle time.Duration
}

// SetIdleTimeout bounds how long Recv waits for the remainder of a
// frame once its first byte has arrived. Waiting for a frame to
// *start* is never bounded — long-lived control channels sit idle by
// design — but a peer that goes silent mid-frame (a half-written
// frame from a crashed or wedged sender) fails the read instead of
// blocking the reader goroutine forever. Zero (the default) disables
// the bound. Set before handing the Conn to a reader goroutine.
func (c *Conn) SetIdleTimeout(d time.Duration) { c.idle = d }

// New wraps an established net.Conn.
func New(nc net.Conn) *Conn {
	return &Conn{nc: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
}

// Dial connects to addr with a sane timeout and wraps the connection.
func Dial(addr string) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		// Long-lived control channel: keep-alives detect dead peers.
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
		tc.SetNoDelay(true)
	}
	return New(nc), nil
}

// Send writes one message frame.
func (c *Conn) Send(m *Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(data) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds max %d", len(data), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := c.w.Write(data); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return c.w.Flush()
}

// Recv reads the next message frame, blocking until one arrives or
// the connection fails. With an idle timeout set (SetIdleTimeout),
// the wait for the first byte is unbounded but the rest of the frame
// must arrive within the timeout.
func (c *Conn) Recv() (*Message, error) {
	var hdr [4]byte
	first, err := c.r.ReadByte()
	if err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	hdr[0] = first
	if c.idle > 0 {
		c.nc.SetReadDeadline(time.Now().Add(c.idle))
		defer c.nc.SetReadDeadline(time.Time{})
	}
	if _, err := io.ReadFull(c.r, hdr[1:]); err != nil {
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("wire: unmarshal: %w", err)
	}
	return &m, nil
}

// SetDeadline bounds the next read/write.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// SetWriteDeadline bounds the next write, so a send to a wedged peer
// fails instead of blocking the sender behind a full TCP window.
// Clear with the zero time.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// Close shuts the connection down (idempotent).
func (c *Conn) Close() error {
	var err error
	c.once.Do(func() { err = c.nc.Close() })
	return err
}

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Label packs a demand id and tunnel id into the 24-bit VxLAN-style
// forwarding label of §4 (first 12 bits demand, last 12 bits tunnel).
func Label(demandID, tunnelID int) (uint32, error) {
	if demandID < 0 || demandID >= 1<<12 {
		return 0, fmt.Errorf("wire: demand id %d outside 12 bits", demandID)
	}
	if tunnelID < 0 || tunnelID >= 1<<12 {
		return 0, fmt.Errorf("wire: tunnel id %d outside 12 bits", tunnelID)
	}
	return uint32(demandID)<<12 | uint32(tunnelID), nil
}

// SplitLabel unpacks a forwarding label.
func SplitLabel(label uint32) (demandID, tunnelID int) {
	return int(label >> 12 & 0xfff), int(label & 0xfff)
}
