package pricing

import (
	"math"
	"testing"
)

func TestRefundTiers(t *testing.T) {
	vm, err := ByName("Virtual Machines")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		achieved float64
		want     float64
	}{
		{0.99995, 0},   // SLA met
		{0.9995, 0.10}, // below 99.99
		{0.995, 0.25},  // below 99.9
		{0.90, 1.00},   // below 95
	}
	for _, c := range cases {
		if got := vm.Refund(c.achieved); got != c.want {
			t.Errorf("Refund(%v) = %v, want %v", c.achieved, got, c.want)
		}
	}
}

func TestFirstTierCredit(t *testing.T) {
	for _, s := range AzureServices {
		if got := s.FirstTierCredit(); got != 0.10 {
			t.Errorf("%s: first tier %v, want 0.10", s.Name, got)
		}
	}
	if (Service{}).FirstTierCredit() != 0 {
		t.Error("empty service should have no credit")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("Redis"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown service")
	}
}

func TestTenServices(t *testing.T) {
	if len(AzureServices) != 10 {
		t.Fatalf("got %d services, want the 10 of §5.2", len(AzureServices))
	}
	seen := map[string]bool{}
	for _, s := range AzureServices {
		if seen[s.Name] {
			t.Fatalf("duplicate service %s", s.Name)
		}
		seen[s.Name] = true
		if len(s.Tiers) == 0 {
			t.Fatalf("%s has no tiers", s.Name)
		}
		// Tiers must be ordered highest Below first and credits
		// non-decreasing.
		for i := 1; i < len(s.Tiers); i++ {
			if s.Tiers[i].Below >= s.Tiers[i-1].Below {
				t.Fatalf("%s tiers out of order", s.Name)
			}
			if s.Tiers[i].Credit < s.Tiers[i-1].Credit {
				t.Fatalf("%s credits decrease", s.Name)
			}
		}
	}
	if len(TestbedServices) != 3 {
		t.Fatalf("testbed services = %d, want 3 (Redis, CDN, VMs)", len(TestbedServices))
	}
}

func TestProfit(t *testing.T) {
	if Profit(100, 0.10, false) != 100 {
		t.Fatal("no violation should keep full charge")
	}
	if got := Profit(100, 0.10, true); math.Abs(got-90) > 1e-12 {
		t.Fatalf("Profit violated = %v, want 90", got)
	}
	if got := Profit(100, 1, true); got != 0 {
		t.Fatalf("full refund = %v, want 0", got)
	}
}

func TestAchievedRefund(t *testing.T) {
	redis, _ := ByName("Redis")
	if got := AchievedRefund(redis, 0.9999, 0.999); got != 0 {
		t.Fatalf("met SLA: refund %v, want 0", got)
	}
	if got := AchievedRefund(redis, 0.998, 0.999); got != 0.10 {
		t.Fatalf("mild violation: refund %v, want 0.10", got)
	}
	if got := AchievedRefund(redis, 0.94, 0.999); got != 1.00 {
		t.Fatalf("severe violation: refund %v, want 1.00", got)
	}
	// Violation of a target above the schedule's top tier still
	// triggers the mildest credit.
	if got := AchievedRefund(redis, 0.9995, 0.9999); got != 0.10 {
		t.Fatalf("above-schedule violation: refund %v, want 0.10", got)
	}
}
