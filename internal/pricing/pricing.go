// Package pricing implements the SLA pricing and refund model of §3.4:
// a demand is charged g_d, and if its bandwidth-availability target is
// violated a fraction μ_d is refunded. Refund schedules follow the ten
// Azure cloud services referenced in §5.2 (footnote 8) and the Amazon
// Compute SLA.
package pricing

import "fmt"

// Tier is one row of an SLA credit schedule: if the achieved
// availability falls below Below (a fraction), the customer is
// credited Credit (fraction of the charge).
type Tier struct {
	Below  float64
	Credit float64
}

// Service is a cloud service with a published SLA credit schedule,
// ordered from highest Below to lowest.
type Service struct {
	Name  string
	Tiers []Tier
}

// Refund returns the credited fraction of the charge for the achieved
// availability (0 if the SLA was met).
func (s Service) Refund(achieved float64) float64 {
	credit := 0.0
	for _, t := range s.Tiers {
		if achieved < t.Below {
			credit = t.Credit
		}
	}
	return credit
}

// FirstTierCredit returns the credit of the mildest violation tier,
// used as the paper's single μ_d per demand.
func (s Service) FirstTierCredit() float64 {
	if len(s.Tiers) == 0 {
		return 0
	}
	return s.Tiers[0].Credit
}

// The standard three-tier Azure schedule (credit 10%/25%/100% below
// 99.9%/99%/95%) and variants used by specific services.
var (
	threeNines = []Tier{{0.999, 0.10}, {0.99, 0.25}, {0.95, 1.00}}
	fourNines  = []Tier{{0.9999, 0.10}, {0.999, 0.25}, {0.95, 1.00}}
	twoNinesHi = []Tier{{0.995, 0.10}, {0.99, 0.25}, {0.95, 1.00}}
)

// AzureServices are the ten services of §5.2 footnote 8 with their SLA
// credit schedules.
var AzureServices = []Service{
	{Name: "API Management", Tiers: threeNines},
	{Name: "App Configuration", Tiers: threeNines},
	{Name: "Application Gateway", Tiers: twoNinesHi},
	{Name: "Application Insights", Tiers: threeNines},
	{Name: "Automation", Tiers: threeNines},
	{Name: "Virtual Machines", Tiers: fourNines},
	{Name: "BareMetal Infrastructure", Tiers: threeNines},
	{Name: "Redis", Tiers: threeNines},
	{Name: "CDN", Tiers: threeNines},
	{Name: "Storage Accounts", Tiers: fourNines},
}

// TestbedServices are the three services used by the testbed workload
// (§5.1): Redis, CDN and Virtual Machines.
var TestbedServices = []Service{
	AzureServices[7], AzureServices[8], AzureServices[5],
}

// ByName returns the named Azure service.
func ByName(name string) (Service, error) {
	for _, s := range AzureServices {
		if s.Name == name {
			return s, nil
		}
	}
	return Service{}, fmt.Errorf("pricing: unknown service %q", name)
}

// Profit returns r_d, the profit after refunding (§3.4): the full
// charge if every pair met its demand (violated == false), otherwise
// (1-μ)·g_d.
func Profit(charge, refundFrac float64, violated bool) float64 {
	if violated {
		return (1 - refundFrac) * charge
	}
	return charge
}

// AchievedRefund returns the refund fraction for a demand whose
// achieved availability is known, using the service's full tier
// schedule (a richer model than the single-μ simplification; used by
// the overall-profit experiments).
func AchievedRefund(s Service, achieved, target float64) float64 {
	if achieved >= target {
		return 0
	}
	if r := s.Refund(achieved); r > 0 {
		return r
	}
	// The SLA schedule may start below the demand's target; any
	// violation of the negotiated target still triggers the mildest
	// tier.
	return s.FirstTierCredit()
}
