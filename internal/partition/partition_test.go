package partition

import (
	"reflect"
	"strings"
	"testing"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/routing"
	"bate/internal/topo"
)

// plantedRegion extracts the region index from a RingOfRegions node
// name ("R3N7" -> "R3").
func plantedRegion(name string) string {
	return name[:strings.Index(name, "N")]
}

// TestNewRecoversPlantedRegions checks that the capacity-greedy merge
// finds the ring-of-regions structure exactly: every planted region
// maps to one partition region and the cut is exactly the border
// trunks.
func TestNewRecoversPlantedRegions(t *testing.T) {
	net := topo.Synth100()
	p := New(net, 10, nil)
	if p.Regions != 10 {
		t.Fatalf("Regions = %d, want 10", p.Regions)
	}
	// Same planted region <=> same partition region.
	byPlanted := make(map[string]int)
	for v := 0; v < net.NumNodes(); v++ {
		planted := plantedRegion(net.NodeName(topo.NodeID(v)))
		r := p.NodeRegion[v]
		if prev, ok := byPlanted[planted]; ok && prev != r {
			t.Fatalf("node %s: region %d, but %s already mapped to %d",
				net.NodeName(topo.NodeID(v)), r, planted, prev)
		}
		byPlanted[planted] = r
	}
	if len(byPlanted) != 10 {
		t.Fatalf("planted regions map to %d partition regions, want 10", len(byPlanted))
	}
	// Cut links are exactly the thin border trunks: 10 ring edges x 2
	// bidirectional trunks = 40 directed links of borderCap.
	if len(p.CutLinks) != 40 {
		t.Fatalf("|CutLinks| = %d, want 40", len(p.CutLinks))
	}
	for _, id := range p.CutLinks {
		l := net.Link(id)
		if l.Capacity != 20000 {
			t.Fatalf("cut link %d has capacity %v, want border trunk 20000", id, l.Capacity)
		}
		if p.LinkRegion[id] != -1 {
			t.Fatalf("cut link %d has LinkRegion %d, want -1", id, p.LinkRegion[id])
		}
	}
	for _, l := range net.Links() {
		if r := p.LinkRegion[l.ID]; r >= 0 && p.NodeRegion[l.Src] != p.NodeRegion[l.Dst] {
			t.Fatalf("link %d labeled region %d but spans regions %d-%d",
				l.ID, r, p.NodeRegion[l.Src], p.NodeRegion[l.Dst])
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	net := topo.Synth100()
	a, b := New(net, 10, nil), New(net, 10, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two New calls on the same inputs disagree")
	}
}

// TestNewBalanceCap merges an unstructured mesh and checks no region
// exceeds ceil(1.25 n / k) nodes.
func TestNewBalanceCap(t *testing.T) {
	net := topo.Rand100()
	k := 8
	p := New(net, k, nil)
	if p.Regions < 2 {
		t.Fatalf("Regions = %d, want >= 2", p.Regions)
	}
	maxSize := (5*net.NumNodes() + 4*k - 1) / (4 * k)
	count := make([]int, p.Regions)
	for _, r := range p.NodeRegion {
		count[r]++
	}
	for r, c := range count {
		if c > maxSize {
			t.Fatalf("region %d has %d nodes, cap %d", r, c, maxSize)
		}
		if c == 0 {
			t.Fatalf("region %d is empty", r)
		}
	}
}

func TestNewDegenerate(t *testing.T) {
	net := topo.B4()
	if p := New(net, 1, nil); p.Regions != 1 || len(p.CutLinks) != 0 {
		t.Fatalf("k=1: got %d regions, %d cut links; want 1 region, 0 cuts", p.Regions, len(p.CutLinks))
	}
	// k >= n: every node its own region, every link cut.
	p := New(net, net.NumNodes()+5, nil)
	if p.Regions != net.NumNodes() {
		t.Fatalf("k>n: Regions = %d, want %d", p.Regions, net.NumNodes())
	}
	if len(p.CutLinks) != net.NumLinks() {
		t.Fatalf("k>n: %d cut links, want all %d", len(p.CutLinks), net.NumLinks())
	}
}

func TestNewGeoHint(t *testing.T) {
	net := topo.Synth100()
	// Hint: planted region parity (2 labels). The partitioner must keep
	// hinted clusters together while coarsening to k=2.
	hint := make([]int, net.NumNodes())
	for v := range hint {
		r := int(plantedRegion(net.NodeName(topo.NodeID(v)))[1] - '0')
		hint[v] = r % 2
	}
	p := New(net, 2, hint)
	if p.Regions != 2 {
		t.Fatalf("Regions = %d, want 2", p.Regions)
	}
	for v := 1; v < net.NumNodes(); v++ {
		if hint[v] == hint[0] != (p.NodeRegion[v] == p.NodeRegion[0]) {
			t.Fatalf("node %d: hint %d vs node0 hint %d, but regions %d vs %d",
				v, hint[v], hint[0], p.NodeRegion[v], p.NodeRegion[0])
		}
	}
}

func TestClassify(t *testing.T) {
	net := topo.RingOfRegions("T", 2, 5, 40000, 20000, 7)
	tunnels := routing.Compute(net, routing.KShortest, 3)
	p := New(net, 2, nil)
	if p.Regions != 2 {
		t.Fatalf("Regions = %d, want 2", p.Regions)
	}
	name := func(s string) topo.NodeID {
		id, ok := net.NodeByName(s)
		if !ok {
			t.Fatalf("no node %s", s)
		}
		return id
	}
	intra := &demand.Demand{ID: 0, Target: 0.9,
		Pairs: []demand.PairDemand{{Src: name("R1N1"), Dst: name("R1N3"), Bandwidth: 100}}}
	cross := &demand.Demand{ID: 1, Target: 0.9,
		Pairs: []demand.PairDemand{{Src: name("R1N1"), Dst: name("R2N2"), Bandwidth: 100}}}
	in := &alloc.Input{Net: net, Tunnels: tunnels, Demands: []*demand.Demand{intra, cross}}
	g := p.Classify(in)
	r := p.NodeRegion[name("R1N1")]
	if len(g.Intra[r]) != 1 || g.Intra[r][0] != intra {
		t.Fatalf("intra demand not classified into region %d: %+v", r, g.Intra)
	}
	if len(g.Cross) != 1 || g.Cross[0] != cross {
		t.Fatalf("cross demand not classified as cross: %+v", g.Cross)
	}
	if g.MaxSpan != 2 {
		t.Fatalf("MaxSpan = %d, want 2", g.MaxSpan)
	}
}
