package partition

import (
	"context"
	"errors"
	"fmt"
	"math"

	"bate/internal/alloc"
	"bate/internal/lp"
	"bate/internal/metrics"
	"bate/internal/parallel"
	"bate/internal/topo"
)

// Hierarchical-scheduling health counters. partition.solves counts
// rounds the decomposition served end to end; partition.fallbacks the
// rounds bounced back to the global LP (the two sum to the rounds that
// attempted partitioning). The gauges record the largest region count
// and the worst observed gap bound (parts-per-million).
var (
	solvesCtr    = metrics.NewCounter("partition.solves")
	fallbacksCtr = metrics.NewCounter("partition.fallbacks")
	cutCtr       = metrics.NewCounter("partition.cut_demands")
	intraCtr     = metrics.NewCounter("partition.intra_demands")
	regionsGauge = metrics.NewMaxGauge("partition.regions")
	gapGauge     = metrics.NewMaxGauge("partition.max_gap_ppm")
)

// FallbackError reports that partitioned scheduling declined this
// round and the caller should run the global solve. It is a policy
// signal, not a failure: the decomposition either does not apply
// (demand spans too many regions, a region subproblem went infeasible
// under its residual capacities) or its quality bound is too loose.
type FallbackError struct{ Reason string }

func (e *FallbackError) Error() string { return "partition: fallback: " + e.Reason }

func fallback(format string, args ...interface{}) error {
	fallbacksCtr.Inc()
	return &FallbackError{Reason: fmt.Sprintf(format, args...)}
}

// SubResult is one sub-LP solve's output, produced by the SubSolver
// the caller supplies.
type SubResult struct {
	Alloc     alloc.Allocation
	Objective float64
	// CapDuals holds the raw dual of each link-capacity row (<= 0 for
	// the minimization: one more Mbps of capacity can only lower the
	// objective). Links without a capacity row are absent.
	CapDuals map[topo.LinkID]float64
	Basis    *lp.Basis
	// DualTol is the relative inexactness of Objective and CapDuals: 0
	// for a vertex-exact simplex solve; a first-order solve reports
	// its certified KKT/polish tolerance, and the stitching lower
	// bound widens by that factor instead of trusting approximate
	// duals as exact subgradients.
	DualTol float64

	Variables, Constraints, Iterations int
	WarmStarted                        bool
	ClassCacheHits, ClassCacheMisses   int
}

// SubSolver builds and solves one scheduling sub-LP: the given demands
// over the full network but with the given per-link capacities,
// optionally warm-started from a previous basis. Implemented by
// internal/bate so this package stays free of the LP formulation.
type SubSolver func(in *alloc.Input, caps []float64, warm *lp.Basis) (*SubResult, error)

// Stats reports one partitioned round.
type Stats struct {
	Regions      int
	IntraDemands int
	CutDemands   int
	// GapBound is the proved relative bound on how far the stitched
	// objective can sit above the global optimum.
	GapBound float64

	Variables, Constraints, Iterations int
	WarmStarted                        bool
	ClassCacheHits, ClassCacheMisses   int
}

// Result is a successful partitioned schedule.
type Result struct {
	Alloc alloc.Allocation
	Stats Stats
}

// State carries warm-start context between successive partitioned
// rounds: the cached partition (recomputed only when the network or k
// changes) and the previous optimal basis of the coordination LP and
// of every region LP. Not safe for concurrent use.
type State struct {
	net         *topo.Network
	k           int
	part        *Partition
	coordBasis  *lp.Basis
	regionBases []*lp.Basis
}

// partition returns the cached partition, recomputing on any change of
// network identity or region count.
func (st *State) partition(net *topo.Network, opts Options) *Partition {
	if st.part == nil || st.net != net || st.k != opts.Regions {
		st.net, st.k = net, opts.Regions
		st.part = New(net, opts.Regions, opts.GeoHint)
		st.coordBasis = nil
		st.regionBases = make([]*lp.Basis, st.part.Regions)
	}
	return st.part
}

// Schedule runs one hierarchical round: coordination solve for the
// cross-region demands over the full capacities, then the per-region
// LPs concurrently over what the cross traffic left behind, then the
// duality-gap check. st may be nil for a one-shot solve. It returns a
// *FallbackError when the caller should run the global LP instead;
// any other error is a genuine failure.
func Schedule(in *alloc.Input, opts Options, solve SubSolver, st *State) (*Result, error) {
	if opts.Regions <= 1 {
		return nil, fallback("k=%d disables partitioning", opts.Regions)
	}
	if st == nil {
		st = &State{}
	}
	part := st.partition(in.Net, opts)
	if part.Regions <= 1 {
		return nil, fallback("partition collapsed to %d region(s)", part.Regions)
	}
	groups := part.Classify(in)
	if groups.MaxSpan > opts.maxSpan() {
		return nil, fallback("a demand's tunnels span %d regions (max %d)", groups.MaxSpan, opts.maxSpan())
	}

	full := alloc.FullCapacities(in)
	stats := Stats{Regions: part.Regions, IntraDemands: 0, CutDemands: len(groups.Cross)}
	for _, ds := range groups.Intra {
		stats.IntraDemands += len(ds)
	}
	stats.WarmStarted = true
	merge := func(r *SubResult) {
		stats.Variables += r.Variables
		stats.Constraints += r.Constraints
		stats.Iterations += r.Iterations
		stats.ClassCacheHits += r.ClassCacheHits
		stats.ClassCacheMisses += r.ClassCacheMisses
		stats.WarmStarted = stats.WarmStarted && r.WarmStarted
	}

	// Phase 1 — coordination: the cross-region demands compete for the
	// cut links (and whatever intra-region links their tunnels ride)
	// at full capacity. Its allocation is the border-bandwidth budget:
	// each region's LP then sees only the leftover capacity.
	residual := full
	upperBound := 0.0
	coordLB := 0.0
	var coordAlloc alloc.Allocation
	if len(groups.Cross) > 0 {
		coordIn := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels, Demands: groups.Cross}
		res, err := solve(coordIn, full, st.coordBasis)
		if err != nil {
			if errors.Is(err, lp.ErrInfeasible) {
				// Cross demands alone don't fit at full capacity; the
				// global LP will prove (in)feasibility authoritatively.
				return nil, fallback("coordination LP infeasible")
			}
			return nil, err
		}
		st.coordBasis = res.Basis
		merge(res)
		upperBound += res.Objective
		// As a lower-bound contribution the coordination value must
		// under-estimate: an inexact (first-order) solve's objective
		// can sit up to DualTol·|obj| above its LP optimum.
		coordLB = res.Objective - res.DualTol*math.Abs(res.Objective)
		loads := res.Alloc.LinkLoads(coordIn)
		residual = make([]float64, len(full))
		for i := range full {
			residual[i] = full[i] - loads[i]
			if residual[i] < 0 {
				residual[i] = 0
			}
		}
		coordAlloc = res.Alloc
	}

	// Phase 2 — the region LPs are independent (an intra-region
	// demand's tunnels never leave its region, so no two regions share
	// a capacity row) and solve concurrently on the shared pool. Index-
	// slotted results keep the round deterministic at any worker count.
	results := make([]*SubResult, part.Regions)
	err := parallel.Default().ForEach(context.Background(), part.Regions, func(r int) error {
		if len(groups.Intra[r]) == 0 {
			return nil
		}
		sub := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels, Demands: groups.Intra[r]}
		res, err := solve(sub, residual, st.regionBases[r])
		if err != nil {
			return fmt.Errorf("region %d: %w", r, err)
		}
		results[r] = res
		return nil
	})
	if err != nil {
		if errors.Is(err, lp.ErrInfeasible) {
			return nil, fallback("region LP infeasible under residual capacities (%v)", err)
		}
		return nil, err
	}

	// Phase 3 — stitch and bound. The stitched objective (UB) is the
	// sum of the subproblem objectives; the lower bound on the global
	// optimum comes from LP duality: each region's value at full
	// capacity is at least its value at residual capacity plus
	// dual·(full-residual), duals being subgradients of the LP value
	// in the RHS. Cross demands contribute their coordination value
	// unchanged (they already solved at full capacity).
	out := make(alloc.Allocation, len(in.Demands))
	lowerBound := coordLB // coordination part
	for r, res := range results {
		if res == nil {
			continue
		}
		st.regionBases[r] = res.Basis
		merge(res)
		upperBound += res.Objective
		bound := res.Objective
		slack := math.Abs(res.Objective)
		for e, y := range res.CapDuals {
			if delta := full[e] - residual[e]; delta > 0 {
				bound += y * delta // y <= 0: full capacity can only help
				slack += math.Abs(y) * delta
			}
		}
		// First-order solves certify Objective and CapDuals only to a
		// relative tolerance; widen the bound by that budget (0 for
		// exact simplex solves — byte-identical to the untolerated
		// bound).
		bound -= res.DualTol * slack
		lowerBound += bound
		for id, rows := range res.Alloc {
			out[id] = rows
		}
	}
	for id, rows := range coordAlloc {
		out[id] = rows
	}
	denom := lowerBound
	if denom < 1 {
		denom = 1
	}
	stats.GapBound = (upperBound - lowerBound) / denom
	gapGauge.Observe(int64(stats.GapBound * 1e6))
	if stats.GapBound > opts.gapThreshold() {
		return nil, fallback("gap bound %.4f exceeds threshold %.4f", stats.GapBound, opts.gapThreshold())
	}

	solvesCtr.Inc()
	intraCtr.Add(int64(stats.IntraDemands))
	cutCtr.Add(int64(stats.CutDemands))
	regionsGauge.Observe(int64(part.Regions))
	return &Result{Alloc: out, Stats: stats}, nil
}
