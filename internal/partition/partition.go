// Package partition implements hierarchical scheduling for 100+-node
// WANs: it splits the topology into k regions by a capacity-greedy
// min-cut, classifies demands as intra- or cross-region, and stitches
// one coordination solve for the cross traffic with k independent
// per-region availability LPs solved concurrently. A dual-subgradient
// bound tracks how far the stitched solution can be from the global
// optimum; when the bound exceeds the caller's threshold (or the
// decomposition does not apply) it reports a fallback so the caller
// can run the global LP instead.
//
// The package deliberately does not import internal/bate: bate owns
// the LP formulation and passes it in as a SubSolver callback, so the
// dependency points bate -> partition only.
package partition

import (
	"fmt"
	"sort"
	"sync"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/topo"
)

// Options tunes partitioned scheduling.
type Options struct {
	// Regions is k, the number of regions to decompose into. Values
	// <= 1 disable partitioning (the caller runs the global solve).
	Regions int
	// GapThreshold is the largest acceptable relative optimality-gap
	// bound between the stitched solution and the global optimum;
	// above it the scheduler falls back to the global LP. Zero means
	// DefaultGapThreshold.
	GapThreshold float64
	// MaxSpan is the largest number of regions any single demand's
	// tunnel set may touch before the round falls back to the global
	// solve. Zero means 2 (intra-region plus one neighbor), matching
	// the coordination LP's border-budget model.
	MaxSpan int
	// GeoHint optionally seeds the partitioner with a region label per
	// node (indexed by NodeID); nodes sharing a label start in the same
	// cluster. The greedy merge then only has to coarsen the hint down
	// to k regions. len(GeoHint) != NumNodes disables the hint.
	GeoHint []int
}

// DefaultGapThreshold bounds the stitched solution at 2% above the
// global optimum, the acceptance bar of the scale benchmark.
const DefaultGapThreshold = 0.02

func (o Options) gapThreshold() float64 {
	if o.GapThreshold > 0 {
		return o.GapThreshold
	}
	return DefaultGapThreshold
}

func (o Options) maxSpan() int {
	if o.MaxSpan > 0 {
		return o.MaxSpan
	}
	return 2
}

// Partition is a k-way split of a network's nodes.
type Partition struct {
	Regions    int
	NodeRegion []int // region id per NodeID
	LinkRegion []int // region id per LinkID, -1 for inter-region cut links
	CutLinks   []topo.LinkID
}

// partitionCache memoizes hint-free partitions by (network identity,
// k): Network is immutable and the merge deterministic, so the
// *Partition is shared read-only. Without the cache every stateless
// Schedule call on a 1000-node graph would redo the O(n·links) greedy
// merge.
var partitionCache sync.Map // partitionKey -> *Partition

type partitionKey struct {
	net *topo.Network
	k   int
}

func clearPartitionCache() {
	partitionCache.Range(func(k, _ interface{}) bool {
		partitionCache.Delete(k)
		return true
	})
}

// New partitions the network into (at most) k regions by greedy
// agglomerative min-cut over link capacity: every node starts as its
// own cluster (or in its GeoHint cluster) and the pair of clusters
// joined by the largest total capacity is merged until k remain. The
// heaviest trunks are pulled inside regions first, so the links left
// crossing the cut are the thin ones — exactly the links we want the
// coordination LP, not the region LPs, to arbitrate. A balance cap
// (ceil(1.25·n/k) nodes) keeps any region from swallowing the graph;
// when every remaining merge would breach it the two smallest clusters
// merge instead. Deterministic (and memoized when hint-free) for a
// given (network, k, hint).
func New(net *topo.Network, k int, geoHint []int) *Partition {
	if geoHint == nil {
		if v, ok := partitionCache.Load(partitionKey{net, k}); ok {
			return v.(*Partition)
		}
	}
	p := build(net, k, geoHint)
	if geoHint == nil {
		partitionCache.Store(partitionKey{net, k}, p)
	}
	return p
}

func build(net *topo.Network, k int, geoHint []int) *Partition {
	n := net.NumNodes()
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	// Union-find over nodes.
	parent := make([]int, n)
	size := make([]int, n)
	for i := range parent {
		parent[i] = i
		size[i] = 1
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	clusters := n
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra // root at the smaller id: deterministic labels
		}
		parent[rb] = ra
		size[ra] += size[rb]
		clusters--
	}
	if len(geoHint) == n {
		for v := 1; v < n; v++ {
			for u := 0; u < v; u++ {
				if geoHint[u] == geoHint[v] {
					union(u, v)
					break
				}
			}
		}
	}
	maxSize := (5*n + 4*k - 1) / (4 * k) // ceil(1.25 n / k)
	if maxSize < 2 {
		maxSize = 2
	}
	for clusters > k {
		// Total inter-cluster capacity per root pair.
		type key struct{ a, b int }
		cap := make(map[key]float64)
		for _, l := range net.Links() {
			a, b := find(int(l.Src)), find(int(l.Dst))
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			cap[key{a, b}] += l.Capacity
		}
		bestA, bestB, bestCap := -1, -1, -1.0
		keys := make([]key, 0, len(cap))
		for kk := range cap {
			keys = append(keys, kk)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].a != keys[j].a {
				return keys[i].a < keys[j].a
			}
			return keys[i].b < keys[j].b
		})
		for _, kk := range keys {
			if size[kk.a]+size[kk.b] > maxSize {
				continue
			}
			if c := cap[kk]; c > bestCap {
				bestA, bestB, bestCap = kk.a, kk.b, c
			}
		}
		if bestA < 0 {
			// Every capacity-connected merge breached the balance cap
			// (or the graph is disconnected across clusters): merge the
			// two smallest clusters to guarantee progress.
			roots := make([]int, 0, clusters)
			for v := 0; v < n; v++ {
				if find(v) == v {
					roots = append(roots, v)
				}
			}
			sort.Slice(roots, func(i, j int) bool {
				if size[roots[i]] != size[roots[j]] {
					return size[roots[i]] < size[roots[j]]
				}
				return roots[i] < roots[j]
			})
			bestA, bestB = roots[0], roots[1]
		}
		union(bestA, bestB)
	}
	// Dense region ids in order of smallest member node.
	regionOf := make(map[int]int)
	node := make([]int, n)
	next := 0
	for v := 0; v < n; v++ {
		r := find(v)
		id, ok := regionOf[r]
		if !ok {
			id = next
			regionOf[r] = id
			next++
		}
		node[v] = id
	}
	p := &Partition{Regions: next, NodeRegion: node}
	p.LinkRegion = make([]int, net.NumLinks())
	for _, l := range net.Links() {
		if a, b := node[l.Src], node[l.Dst]; a == b {
			p.LinkRegion[l.ID] = a
		} else {
			p.LinkRegion[l.ID] = -1
			p.CutLinks = append(p.CutLinks, l.ID)
		}
	}
	return p
}

// Groups is the demand classification induced by a partition.
type Groups struct {
	// Intra[r] holds the demands whose every tunnel stays entirely
	// inside region r — their LPs are independent of every other
	// region's.
	Intra [][]*demand.Demand
	// Cross holds the demands whose tunnels touch more than one region
	// (or a cut link); the coordination solve handles them.
	Cross []*demand.Demand
	// MaxSpan is the largest number of regions any single demand's
	// tunnels touch.
	MaxSpan int
}

// Classify splits the input's demands by the partition. A demand is
// intra-region only if every link of every tunnel of every pair lies
// inside one region; anything touching a cut link or a second region
// is cross-region.
func (p *Partition) Classify(in *alloc.Input) Groups {
	g := Groups{Intra: make([][]*demand.Demand, p.Regions)}
	var regions []int // scratch, reused across demands
	for _, d := range in.Demands {
		regions = regions[:0]
		touch := func(r int) {
			for _, x := range regions {
				if x == r {
					return
				}
			}
			regions = append(regions, r)
		}
		cut := false
		for pi := range d.Pairs {
			touch(p.NodeRegion[d.Pairs[pi].Src])
			touch(p.NodeRegion[d.Pairs[pi].Dst])
			for _, t := range in.TunnelsFor(d, pi) {
				for _, e := range t.Links {
					if r := p.LinkRegion[e]; r < 0 {
						cut = true
					} else {
						touch(r)
					}
				}
			}
		}
		if len(regions) > g.MaxSpan {
			g.MaxSpan = len(regions)
		}
		if !cut && len(regions) == 1 {
			g.Intra[regions[0]] = append(g.Intra[regions[0]], d)
		} else {
			g.Cross = append(g.Cross, d)
		}
	}
	return g
}

// String summarizes the partition.
func (p *Partition) String() string {
	return fmt.Sprintf("partition(%d regions, %d cut links)", p.Regions, len(p.CutLinks))
}
