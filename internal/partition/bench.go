package partition

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchRow is one topology's partitioned-vs-global measurement in
// BENCH_partition.json. Speedup is global wall-clock over partitioned;
// Gap is the measured relative objective excess of the stitched
// solution ((partitioned - global) / global), GapBound the duality
// bound the solver proved without knowing the global optimum.
type BenchRow struct {
	Topology       string  `json:"topology"`
	Nodes          int     `json:"nodes"`
	Links          int     `json:"links"`
	Demands        int     `json:"demands"`
	Regions        int     `json:"regions"`
	GlobalMs       float64 `json:"global_ms"`
	PartitionedMs  float64 `json:"partitioned_ms"`
	Speedup        float64 `json:"speedup"`
	GlobalObj      float64 `json:"global_objective"`
	PartitionedObj float64 `json:"partitioned_objective"`
	Gap            float64 `json:"gap"`
	GapBound       float64 `json:"gap_bound"`
	CutDemands     int     `json:"cut_demands"`
	ClassCacheHits int     `json:"class_cache_hits"`
	Fallbacks      int     `json:"fallbacks"`
}

// BenchReport is the BENCH_partition.json schema.
type BenchReport struct {
	Schema string     `json:"schema"`
	Scale  string     `json:"scale"` // "full" or "smoke"
	Rows   []BenchRow `json:"rows"`
}

// BenchSchema names the current report layout.
const BenchSchema = "bate/partition-bench/v1"

// WriteBench writes the report as indented JSON.
func WriteBench(path string, r *BenchReport) error {
	r.Schema = BenchSchema
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadBench loads a report written by WriteBench.
func ReadBench(path string) (*BenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("partition: parse %s: %w", path, err)
	}
	return &r, nil
}

// CompareBench gates cur against a committed baseline: per topology,
// the speedup may not drop below base·(1-tol) and the measured gap may
// not exceed the larger of base·(1+tol) and DefaultGapThreshold (so a
// near-zero baseline gap doesn't fail on harmless noise). Fallbacks
// above the baseline count are regressions too. It returns
// human-readable regression lines; empty means the gate passes.
func CompareBench(cur, base *BenchReport, tol float64) []string {
	var regressions []string
	rows := make(map[string]BenchRow, len(cur.Rows))
	for _, r := range cur.Rows {
		rows[r.Topology] = r
	}
	for _, b := range base.Rows {
		c, ok := rows[b.Topology]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from current report", b.Topology))
			continue
		}
		if minSpeed := b.Speedup * (1 - tol); c.Speedup < minSpeed {
			regressions = append(regressions, fmt.Sprintf(
				"%s: speedup %.2fx below %.2fx (baseline %.2fx, tol %.0f%%)",
				b.Topology, c.Speedup, minSpeed, b.Speedup, tol*100))
		}
		maxGap := b.Gap * (1 + tol)
		if maxGap < DefaultGapThreshold {
			maxGap = DefaultGapThreshold
		}
		if c.Gap > maxGap {
			regressions = append(regressions, fmt.Sprintf(
				"%s: gap %.4f above %.4f (baseline %.4f, tol %.0f%%)",
				b.Topology, c.Gap, maxGap, b.Gap, tol*100))
		}
		if c.Fallbacks > b.Fallbacks {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d fallback(s), baseline %d", b.Topology, c.Fallbacks, b.Fallbacks))
		}
	}
	return regressions
}
