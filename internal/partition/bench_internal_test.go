package partition

import (
	"testing"

	"bate/internal/topo"
)

func BenchmarkNewSynth300(b *testing.B) {
	net := topo.Synth300()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clearPartitionCache()
		_ = New(net, 15, nil)
	}
}

func BenchmarkNewSynth300Cached(b *testing.B) {
	net := topo.Synth300()
	_ = New(net, 15, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = New(net, 15, nil)
	}
}
