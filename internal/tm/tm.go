// Package tm generates gravity-model traffic matrices standing in for
// the 200 measured matrices per topology the paper collected (§5.2,
// DESIGN.md substitution 4). Demands draw their bandwidth from these
// matrices with the paper's scale-down factor (5) so several demands
// fit per pair.
package tm

import (
	"fmt"
	"math"
	"math/rand"

	"bate/internal/topo"
)

// Matrix is a traffic matrix: Mbps demanded from src to dst, indexed
// [src][dst]. The diagonal is zero.
type Matrix [][]float64

// At returns the entry for (src, dst).
func (m Matrix) At(src, dst topo.NodeID) float64 { return m[src][dst] }

// Total returns the sum of all entries.
func (m Matrix) Total() float64 {
	sum := 0.0
	for _, row := range m {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// Generate produces count gravity-model matrices for net. Node masses
// are drawn lognormally (heavy-tailed DC sizes); each matrix gets an
// independent diurnal-style global scale in [0.5, 1.5]. The aggregate
// load is normalized so the busiest matrix fills roughly fill of the
// total egress capacity of the average node.
func Generate(net *topo.Network, count int, fill float64, rng *rand.Rand) []Matrix {
	if fill <= 0 {
		fill = 0.5
	}
	n := net.NumNodes()
	// Per-node egress capacity for normalization.
	egress := make([]float64, n)
	for _, l := range net.Links() {
		egress[l.Src] += l.Capacity
	}
	meanEgress := 0.0
	for _, e := range egress {
		meanEgress += e
	}
	meanEgress /= float64(n)

	out := make([]Matrix, count)
	for c := 0; c < count; c++ {
		mass := make([]float64, n)
		var massSum float64
		for i := range mass {
			// Lognormal-ish: exp(N(0, 0.8)).
			mass[i] = expNormal(rng, 0.8)
			massSum += mass[i]
		}
		scale := 0.5 + rng.Float64()
		m := make(Matrix, n)
		rowTotal := fill * meanEgress * scale
		for i := range m {
			m[i] = make([]float64, n)
			for j := range m[i] {
				if i == j {
					continue
				}
				// Gravity: proportional to mass_i * mass_j.
				m[i][j] = rowTotal * mass[i] * mass[j] / (massSum * massSum)
			}
		}
		out[c] = m
	}
	return out
}

// expNormal returns exp(sigma * N(0,1)).
func expNormal(rng *rand.Rand, sigma float64) float64 {
	return math.Exp(sigma * rng.NormFloat64())
}

// Pool builds the per-pair bandwidth sample pool consumed by
// demand.GeneratorConfig.BandwidthPool: every matrix entry for a pair,
// divided by scaleDown (the paper uses 5).
func Pool(net *topo.Network, matrices []Matrix, scaleDown float64) (map[[2]topo.NodeID][]float64, error) {
	if scaleDown <= 0 {
		return nil, fmt.Errorf("tm: scaleDown %v must be positive", scaleDown)
	}
	pool := make(map[[2]topo.NodeID][]float64)
	for _, m := range matrices {
		if len(m) != net.NumNodes() {
			return nil, fmt.Errorf("tm: matrix has %d rows for %d nodes", len(m), net.NumNodes())
		}
		for i := range m {
			for j := range m[i] {
				if i == j || m[i][j] <= 0 {
					continue
				}
				key := [2]topo.NodeID{topo.NodeID(i), topo.NodeID(j)}
				pool[key] = append(pool[key], m[i][j]/scaleDown)
			}
		}
	}
	return pool, nil
}
