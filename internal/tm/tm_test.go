package tm

import (
	"math/rand"
	"testing"

	"bate/internal/topo"
)

func TestGenerateShape(t *testing.T) {
	net := topo.B4()
	ms := Generate(net, 10, 0.5, rand.New(rand.NewSource(3)))
	if len(ms) != 10 {
		t.Fatalf("got %d matrices, want 10", len(ms))
	}
	for _, m := range ms {
		if len(m) != net.NumNodes() {
			t.Fatalf("matrix rows = %d", len(m))
		}
		for i := range m {
			if len(m[i]) != net.NumNodes() {
				t.Fatalf("matrix cols = %d", len(m[i]))
			}
			if m[i][i] != 0 {
				t.Fatal("diagonal not zero")
			}
			for j, v := range m[i] {
				if i != j && v < 0 {
					t.Fatalf("negative entry %v", v)
				}
			}
		}
		if m.Total() <= 0 {
			t.Fatal("empty matrix")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	net := topo.Testbed()
	a := Generate(net, 3, 0.5, rand.New(rand.NewSource(4)))
	b := Generate(net, 3, 0.5, rand.New(rand.NewSource(4)))
	for k := range a {
		for i := range a[k] {
			for j := range a[k][i] {
				if a[k][i][j] != b[k][i][j] {
					t.Fatal("non-deterministic matrices")
				}
			}
		}
	}
}

func TestAt(t *testing.T) {
	m := Matrix{{0, 5}, {7, 0}}
	if m.At(0, 1) != 5 || m.At(1, 0) != 7 {
		t.Fatal("At wrong")
	}
}

func TestPool(t *testing.T) {
	net := topo.Toy()
	ms := Generate(net, 5, 0.5, rand.New(rand.NewSource(8)))
	pool, err := Pool(net, ms, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Pairs() {
		samples := pool[p]
		if len(samples) != 5 {
			t.Fatalf("pair %v: %d samples, want 5", p, len(samples))
		}
		// Each sample is the matrix entry / 5.
		for k, s := range samples {
			if want := ms[k].At(p[0], p[1]) / 5; s != want {
				t.Fatalf("sample %v, want %v", s, want)
			}
		}
	}
}

func TestPoolErrors(t *testing.T) {
	net := topo.Toy()
	ms := Generate(net, 1, 0.5, rand.New(rand.NewSource(1)))
	if _, err := Pool(net, ms, 0); err == nil {
		t.Fatal("expected scaleDown error")
	}
	if _, err := Pool(topo.Testbed(), ms, 5); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

// Matrices should not overload the network: with fill 0.5 the per-node
// egress demand stays within a small multiple of egress capacity.
func TestGenerateLoadReasonable(t *testing.T) {
	net := topo.B4()
	ms := Generate(net, 20, 0.5, rand.New(rand.NewSource(12)))
	egress := make([]float64, net.NumNodes())
	for _, l := range net.Links() {
		egress[l.Src] += l.Capacity
	}
	for _, m := range ms {
		for i := range m {
			row := 0.0
			for _, v := range m[i] {
				row += v
			}
			if row > egress[i]*5 {
				t.Fatalf("node %d egress demand %v vastly exceeds capacity %v", i, row, egress[i])
			}
		}
	}
}
