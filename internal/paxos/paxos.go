// Package paxos implements single-decree Paxos, used by BATE's
// controller replicas to elect a master (§4: "controller failures can
// be remedied by using multiple replications, where the master
// controller is elected by the Paxos algorithm").
//
// Node is a pure message-in/messages-out state machine: callers own
// the transport (channels in tests, wire connections in deployments),
// which makes the protocol deterministic to test under drops,
// duplication and reordering.
package paxos

import "fmt"

// NodeID identifies a participant.
type NodeID int

// Value is the decided value (for leader election, the winning
// node's name or address).
type Value string

// Ballot is a Paxos ballot number, totally ordered by (Round, Node).
type Ballot struct {
	Round uint64
	Node  NodeID
}

// Less orders ballots.
func (b Ballot) Less(o Ballot) bool {
	if b.Round != o.Round {
		return b.Round < o.Round
	}
	return b.Node < o.Node
}

// IsZero reports an unset ballot.
func (b Ballot) IsZero() bool { return b.Round == 0 && b.Node == 0 }

// Kind discriminates protocol messages.
type Kind int8

// Message kinds of the two Paxos phases.
const (
	Prepare Kind = iota + 1
	Promise
	Reject // Promise/Accept refusal carrying the higher promised ballot
	Accept
	Accepted
)

func (k Kind) String() string {
	switch k {
	case Prepare:
		return "prepare"
	case Promise:
		return "promise"
	case Reject:
		return "reject"
	case Accept:
		return "accept"
	case Accepted:
		return "accepted"
	}
	return "unknown"
}

// Message is one Paxos protocol message.
type Message struct {
	Kind     Kind
	From, To NodeID
	Ballot   Ballot
	// Promise: previously accepted proposal, if any.
	AcceptedBallot Ballot
	AcceptedValue  Value
	HasAccepted    bool
	// Accept/Accepted: the proposed value.
	Value Value
}

// Node is one Paxos participant, acting as proposer, acceptor and
// learner. It is not safe for concurrent use; serialize calls.
type Node struct {
	id    NodeID
	peers []NodeID // all participants including self

	// Acceptor state.
	promised    Ballot
	accepted    Ballot
	acceptedVal Value
	hasAccepted bool

	// Proposer state.
	round     uint64
	proposal  Value
	proposing bool
	curBallot Ballot
	promises  map[NodeID]Message
	acceptOKs map[NodeID]bool

	// Learner state: Accepted counts per ballot.
	learned map[Ballot]map[NodeID]bool
	values  map[Ballot]Value
	chosen  *Value
}

// NewNode creates a participant; peers must include id and be the
// same set on every node.
func NewNode(id NodeID, peers []NodeID) *Node {
	n := &Node{
		id:      id,
		peers:   append([]NodeID(nil), peers...),
		learned: make(map[Ballot]map[NodeID]bool),
		values:  make(map[Ballot]Value),
	}
	return n
}

// ID returns the node's id.
func (n *Node) ID() NodeID { return n.id }

// Chosen returns the decided value once a majority has accepted one.
func (n *Node) Chosen() (Value, bool) {
	if n.chosen == nil {
		return "", false
	}
	return *n.chosen, true
}

func (n *Node) majority() int { return len(n.peers)/2 + 1 }

// Propose starts (or restarts, with a higher ballot) a proposal for
// value v, returning the Prepare messages to send to every peer.
// Paxos may decide a different value if one was already accepted.
func (n *Node) Propose(v Value) []Message {
	n.round++
	if n.promised.Round >= n.round {
		n.round = n.promised.Round + 1
	}
	n.proposal = v
	n.proposing = true
	n.curBallot = Ballot{Round: n.round, Node: n.id}
	n.promises = make(map[NodeID]Message)
	n.acceptOKs = make(map[NodeID]bool)
	out := make([]Message, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, Message{Kind: Prepare, From: n.id, To: p, Ballot: n.curBallot})
	}
	return out
}

// Handle processes one incoming message and returns the messages to
// send in response. Unknown or stale messages produce no output.
func (n *Node) Handle(m Message) []Message {
	switch m.Kind {
	case Prepare:
		return n.onPrepare(m)
	case Promise:
		return n.onPromise(m)
	case Reject:
		return n.onReject(m)
	case Accept:
		return n.onAccept(m)
	case Accepted:
		n.onAccepted(m)
		return nil
	}
	return nil
}

func (n *Node) onPrepare(m Message) []Message {
	if n.promised.Less(m.Ballot) {
		n.promised = m.Ballot
		return []Message{{
			Kind: Promise, From: n.id, To: m.From, Ballot: m.Ballot,
			AcceptedBallot: n.accepted, AcceptedValue: n.acceptedVal, HasAccepted: n.hasAccepted,
		}}
	}
	return []Message{{Kind: Reject, From: n.id, To: m.From, Ballot: n.promised}}
}

func (n *Node) onPromise(m Message) []Message {
	if !n.proposing || m.Ballot != n.curBallot {
		return nil
	}
	n.promises[m.From] = m
	if len(n.promises) != n.majority() {
		return nil // act exactly once, at quorum
	}
	// Adopt the highest-ballot accepted value among promises, if any.
	value := n.proposal
	var best Ballot
	for _, pm := range n.promises {
		if pm.HasAccepted && best.Less(pm.AcceptedBallot) {
			best = pm.AcceptedBallot
			value = pm.AcceptedValue
		}
	}
	out := make([]Message, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, Message{Kind: Accept, From: n.id, To: p, Ballot: n.curBallot, Value: value})
	}
	return out
}

func (n *Node) onReject(m Message) []Message {
	if !n.proposing || n.curBallot.Round > m.Ballot.Round {
		return nil
	}
	// A higher ballot exists; catch up so the next Propose outbids it.
	if n.round < m.Ballot.Round {
		n.round = m.Ballot.Round
	}
	n.proposing = false
	return nil
}

func (n *Node) onAccept(m Message) []Message {
	if m.Ballot.Less(n.promised) {
		return []Message{{Kind: Reject, From: n.id, To: m.From, Ballot: n.promised}}
	}
	n.promised = m.Ballot
	n.accepted = m.Ballot
	n.acceptedVal = m.Value
	n.hasAccepted = true
	// Announce to all learners (every peer).
	out := make([]Message, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, Message{Kind: Accepted, From: n.id, To: p, Ballot: m.Ballot, Value: m.Value})
	}
	return out
}

func (n *Node) onAccepted(m Message) {
	if n.learned[m.Ballot] == nil {
		n.learned[m.Ballot] = make(map[NodeID]bool)
	}
	n.learned[m.Ballot][m.From] = true
	n.values[m.Ballot] = m.Value
	if n.chosen == nil && len(n.learned[m.Ballot]) >= n.majority() {
		v := m.Value
		n.chosen = &v
	} else if n.chosen != nil && len(n.learned[m.Ballot]) >= n.majority() && *n.chosen != m.Value {
		// Paxos safety guarantees this cannot happen; panicking here
		// turns a protocol bug into a loud failure instead of a split
		// brain.
		panic(fmt.Sprintf("paxos: node %d learned conflicting values %q and %q", n.id, *n.chosen, m.Value))
	}
}
