package paxos_test

import (
	"fmt"
	"testing"

	"bate/internal/chaos"
	"bate/internal/paxos"
)

// chaosNet is a deterministic in-memory network driven by the chaos
// message front: every in-flight message is judged (drop, duplicate,
// reorder, deliver) and delivery order is scrambled by seeded picks.
// Single-goroutine, so a given seed replays the exact same run.
type chaosNet struct {
	nodes  map[paxos.NodeID]*paxos.Node
	faults *chaos.MsgFaults
	queue  []paxos.Message
}

func newChaosNet(seed int64, n int, cfg chaos.MsgConfig) *chaosNet {
	ids := make([]paxos.NodeID, n)
	for i := range ids {
		ids[i] = paxos.NodeID(i + 1)
	}
	net := &chaosNet{nodes: make(map[paxos.NodeID]*paxos.Node, n), faults: chaos.NewMsgFaults(seed, cfg)}
	for _, id := range ids {
		net.nodes[id] = paxos.NewNode(id, ids)
	}
	return net
}

func (c *chaosNet) send(msgs []paxos.Message) { c.queue = append(c.queue, msgs...) }

// step delivers one queued message through the fault judge; reports
// whether any work remains.
func (c *chaosNet) step() bool {
	if len(c.queue) == 0 {
		return false
	}
	// Seeded pick scrambles delivery order even without Reorder verdicts.
	i := c.faults.Pick(len(c.queue))
	m := c.queue[i]
	c.queue = append(c.queue[:i], c.queue[i+1:]...)
	switch c.faults.Judge() {
	case chaos.Drop:
		return true
	case chaos.Duplicate:
		c.queue = append(c.queue, m)
	case chaos.Reorder:
		c.queue = append(c.queue, m)
		return true
	}
	c.send(c.nodes[m.To].Handle(m))
	return true
}

// chosenValues returns the decided value of every node that has
// learned one.
func (c *chaosNet) chosenValues() map[paxos.NodeID]paxos.Value {
	out := make(map[paxos.NodeID]paxos.Value)
	for id, n := range c.nodes {
		if v, ok := n.Chosen(); ok {
			out[id] = v
		}
	}
	return out
}

// runSchedule drives one seeded fault schedule to a decision: nodes
// propose, the network delivers under faults, and on quiescence (all
// messages dropped or consumed without a decision) the next proposer
// re-proposes — the liveness-by-retry a real elector provides.
func runSchedule(t *testing.T, seed int64, nodes int, cfg chaos.MsgConfig) {
	t.Helper()
	net := newChaosNet(seed, nodes, cfg)
	// Deterministic initial proposers: between one and all nodes
	// propose concurrently, chosen by the seed.
	inj := chaos.New(seed)
	proposers := 1 + inj.Intn("test/proposers", 0, nodes)
	for i := 0; i < proposers; i++ {
		id := paxos.NodeID(i + 1)
		net.send(net.nodes[id].Propose(paxos.Value(fmt.Sprintf("node-%d", id))))
	}
	const stepCap = 200000
	steps, rounds := 0, uint64(0)
	for {
		for net.step() {
			steps++
			if steps > stepCap {
				t.Fatalf("seed %d: no decision within %d steps", seed, stepCap)
			}
		}
		if len(net.chosenValues()) > 0 {
			break
		}
		// Quiescent with no decision (faults ate a quorum's messages):
		// a deterministic node re-proposes with a higher ballot.
		rounds++
		if rounds > 500 {
			t.Fatalf("seed %d: no decision within %d re-propose rounds", seed, rounds)
		}
		id := paxos.NodeID(inj.Intn("test/reproposer", rounds, nodes) + 1)
		net.send(net.nodes[id].Propose(paxos.Value(fmt.Sprintf("node-%d", id))))
	}
	// Drain the remaining traffic: late Accepted messages must never
	// flip a learner to a different value (the Node panics if they do).
	for net.step() {
		steps++
		if steps > 2*stepCap {
			t.Fatalf("seed %d: drain did not quiesce", seed)
		}
	}
	// Agreement: every node that learned a value learned the same one.
	chosen := net.chosenValues()
	var first paxos.Value
	got := false
	for id, v := range chosen {
		if !got {
			first, got = v, true
			continue
		}
		if v != first {
			t.Fatalf("seed %d: node %d chose %q, others chose %q", seed, id, v, first)
		}
	}
	if !got {
		t.Fatalf("seed %d: drain lost the decision", seed)
	}
}

// TestChaosSchedules runs 500 seeded fault schedules over a 3-node
// ensemble with aggressive loss, duplication and reordering, asserting
// single-value agreement on every one.
func TestChaosSchedules(t *testing.T) {
	cfg := chaos.MsgConfig{DropProb: 0.15, DupProb: 0.10, ReorderProb: 0.15}
	for seed := int64(0); seed < 500; seed++ {
		runSchedule(t, seed, 3, cfg)
	}
}

// TestChaosSchedulesFiveNodes spot-checks a larger ensemble under the
// same adversary.
func TestChaosSchedulesFiveNodes(t *testing.T) {
	cfg := chaos.MsgConfig{DropProb: 0.10, DupProb: 0.10, ReorderProb: 0.20}
	for seed := int64(0); seed < 50; seed++ {
		runSchedule(t, seed, 5, cfg)
	}
}

// TestChaosScheduleReplay confirms the in-memory network itself is
// deterministic: the same seed yields the same decision.
func TestChaosScheduleReplay(t *testing.T) {
	cfg := chaos.MsgConfig{DropProb: 0.15, DupProb: 0.10, ReorderProb: 0.15}
	decide := func() paxos.Value {
		net := newChaosNet(42, 3, cfg)
		net.send(net.nodes[1].Propose("node-1"))
		net.send(net.nodes[2].Propose("node-2"))
		for i := 0; i < 100000 && net.step(); i++ {
		}
		inj := chaos.New(42)
		for rounds := uint64(1); len(net.chosenValues()) == 0; rounds++ {
			if rounds > 500 {
				t.Fatal("no decision")
			}
			id := paxos.NodeID(inj.Intn("test/reproposer", rounds, 3) + 1)
			net.send(net.nodes[id].Propose(paxos.Value(fmt.Sprintf("node-%d", id))))
			for i := 0; i < 100000 && net.step(); i++ {
			}
		}
		for _, v := range net.chosenValues() {
			return v
		}
		return ""
	}
	a, b := decide(), decide()
	if a != b || a == "" {
		t.Fatalf("replay diverged: %q vs %q", a, b)
	}
}
