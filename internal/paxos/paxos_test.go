package paxos

import (
	"fmt"
	"math/rand"
	"testing"
)

// cluster is an in-memory test harness delivering messages between
// nodes, optionally dropping or duplicating them.
type cluster struct {
	nodes map[NodeID]*Node
	queue []Message
	rng   *rand.Rand
	drop  float64 // probability of dropping a message
	dup   float64 // probability of duplicating a message
}

func newCluster(n int, seed int64) *cluster {
	c := &cluster{nodes: make(map[NodeID]*Node), rng: rand.New(rand.NewSource(seed))}
	peers := make([]NodeID, n)
	for i := range peers {
		peers[i] = NodeID(i + 1)
	}
	for _, id := range peers {
		c.nodes[id] = NewNode(id, peers)
	}
	return c
}

func (c *cluster) send(ms []Message) {
	for _, m := range ms {
		if c.rng.Float64() < c.drop {
			continue
		}
		c.queue = append(c.queue, m)
		if c.rng.Float64() < c.dup {
			c.queue = append(c.queue, m)
		}
	}
}

// run delivers queued messages (in shuffled order) until quiescent or
// the step budget is exhausted.
func (c *cluster) run(maxSteps int) {
	for steps := 0; len(c.queue) > 0 && steps < maxSteps; steps++ {
		i := c.rng.Intn(len(c.queue))
		m := c.queue[i]
		c.queue = append(c.queue[:i], c.queue[i+1:]...)
		if node, ok := c.nodes[m.To]; ok {
			c.send(node.Handle(m))
		}
	}
}

func (c *cluster) chosenValues() map[Value]bool {
	out := make(map[Value]bool)
	for _, n := range c.nodes {
		if v, ok := n.Chosen(); ok {
			out[v] = true
		}
	}
	return out
}

func TestSingleProposerElection(t *testing.T) {
	c := newCluster(3, 1)
	c.send(c.nodes[1].Propose("node-1"))
	c.run(10000)
	chosen := c.chosenValues()
	if len(chosen) != 1 || !chosen["node-1"] {
		t.Fatalf("chosen = %v, want {node-1}", chosen)
	}
	// Every node learned it.
	for id, n := range c.nodes {
		if _, ok := n.Chosen(); !ok {
			t.Fatalf("node %d did not learn the decision", id)
		}
	}
}

func TestCompetingProposersAgree(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		c := newCluster(5, seed)
		// All five propose themselves concurrently.
		for id := NodeID(1); id <= 5; id++ {
			c.send(c.nodes[id].Propose(Value(fmt.Sprintf("node-%d", id))))
		}
		// Re-propose on stalls: nodes whose proposal was rejected try
		// again with higher ballots.
		for round := 0; round < 20; round++ {
			c.run(100000)
			if len(c.chosenValues()) > 0 {
				break
			}
			for id := NodeID(1); id <= 5; id++ {
				c.send(c.nodes[id].Propose(Value(fmt.Sprintf("node-%d", id))))
			}
		}
		chosen := c.chosenValues()
		if len(chosen) != 1 {
			t.Fatalf("seed %d: chosen = %v, want exactly one value", seed, chosen)
		}
	}
}

func TestAgreementUnderDropsAndDuplicates(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := newCluster(3, seed)
		c.drop = 0.2
		c.dup = 0.2
		decided := false
		for attempt := 0; attempt < 50 && !decided; attempt++ {
			proposer := NodeID(c.rng.Intn(3) + 1)
			c.send(c.nodes[proposer].Propose(Value(fmt.Sprintf("node-%d", proposer))))
			c.run(100000)
			decided = len(c.chosenValues()) > 0
		}
		if !decided {
			t.Fatalf("seed %d: no decision after 50 attempts", seed)
		}
		if got := c.chosenValues(); len(got) != 1 {
			t.Fatalf("seed %d: conflicting decisions %v", seed, got)
		}
	}
}

// Once a value is chosen, later proposals must decide the same value.
func TestChosenValueStable(t *testing.T) {
	c := newCluster(3, 7)
	c.send(c.nodes[1].Propose("first"))
	c.run(10000)
	if got := c.chosenValues(); !got["first"] {
		t.Fatalf("setup: %v", got)
	}
	// A later competing proposal must converge to "first".
	c.send(c.nodes[2].Propose("second"))
	c.run(10000)
	got := c.chosenValues()
	if len(got) != 1 || !got["first"] {
		t.Fatalf("later proposal changed the decision: %v", got)
	}
}

func TestMinorityPartitionCannotDecide(t *testing.T) {
	c := newCluster(5, 3)
	// Deliver messages only among nodes 1-2 (a minority).
	c.send(c.nodes[1].Propose("isolated"))
	for steps := 0; len(c.queue) > 0 && steps < 10000; steps++ {
		m := c.queue[0]
		c.queue = c.queue[1:]
		if m.To > 2 {
			continue // partitioned away
		}
		c.send(c.nodes[m.To].Handle(m))
	}
	if got := c.chosenValues(); len(got) != 0 {
		t.Fatalf("minority decided: %v", got)
	}
}

func TestBallotOrdering(t *testing.T) {
	a := Ballot{Round: 1, Node: 2}
	b := Ballot{Round: 2, Node: 1}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("round dominates")
	}
	c := Ballot{Round: 1, Node: 3}
	if !a.Less(c) {
		t.Fatal("node breaks ties")
	}
	if !(Ballot{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Prepare, Promise, Reject, Accept, Accepted} {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("fallback")
	}
}
