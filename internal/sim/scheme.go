// Package sim provides the evaluation machinery of §5: a per-second
// time-stepped simulator reproducing the testbed's failure emulation
// (§5.1), an event-driven workload simulator for the large-scale
// experiments (§5.2), the proportional-rescaling/congestion model used
// to measure data loss (Fig. 11), and the TE-scheme dispatcher that
// lets every experiment run BATE and the five baselines side by side.
package sim

import (
	"fmt"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/lp"
	"bate/internal/partition"
	"bate/internal/scenario"
	"bate/internal/te"
)

// TEKind identifies a traffic-engineering scheme.
type TEKind int8

// The schemes compared in §5.
const (
	KindBATE TEKind = iota
	KindFFC
	KindTEAVAR
	KindSWAN
	KindSMORE
	KindB4
)

func (k TEKind) String() string {
	switch k {
	case KindBATE:
		return "BATE"
	case KindFFC:
		return te.NameFFC
	case KindTEAVAR:
		return te.NameTEAVAR
	case KindSWAN:
		return te.NameSWAN
	case KindSMORE:
		return te.NameSMORE
	case KindB4:
		return te.NameB4
	}
	return "unknown"
}

// AllKinds lists every scheme in display order.
func AllKinds() []TEKind {
	return []TEKind{KindBATE, KindTEAVAR, KindSWAN, KindSMORE, KindB4, KindFFC}
}

// TEConfig configures the scheme dispatcher.
type TEConfig struct {
	Kind TEKind
	// MaxFail is the scenario pruning depth for BATE and TEAVAR.
	MaxFail int
	// FFCK is FFC's protection level (paper: 1).
	FFCK int
	// TEAVARBeta is TEAVAR's single availability level (paper: 99.9%,
	// the maximum target in the workload).
	TEAVARBeta float64
	// Mode selects BATE's scheduling formulation.
	Mode bate.ScheduleMode
	// Groups are shared-risk link groups: BATE's scheduling and
	// hardening evaluate availability under the correlated failure
	// model (only the Aggregated mode supports them). Baseline schemes
	// ignore groups — they do not model availability at all.
	Groups []scenario.RiskGroup
	// Scheduler, when set, runs BATE's scheduling solves through the
	// sparse revised simplex and warm-starts each epoch from the
	// previous epoch's optimal basis (the admitted set usually changes
	// by a few demands per round). Share one Scheduler across the
	// rounds of a single simulation; it is not safe for concurrent use.
	Scheduler *bate.Scheduler
	// Partition, when non-nil, enables BATE's hierarchical
	// (partitioned) scheduling; see bate.ScheduleOptions.Partition.
	Partition *partition.Options
	// BatchLP routes BATE's scheduling rounds through the batched
	// matrix-form first-order engine (lp.EngineBatch): rounds above
	// the batch row threshold solve via PDHG with a transparent
	// revised-simplex fallback, smaller ones are unchanged. Ignored
	// when Scheduler is set — warm-started basis reuse and the
	// first-order path are mutually exclusive.
	BatchLP bool
}

// Defaults fills unset fields with the paper's defaults.
func (c TEConfig) Defaults() TEConfig {
	if c.MaxFail <= 0 {
		c.MaxFail = 2
	}
	if c.FFCK <= 0 {
		c.FFCK = 1
	}
	if c.TEAVARBeta <= 0 {
		c.TEAVARBeta = 0.999
	}
	return c
}

// Allocate runs the configured scheme on the input. For BATE, if the
// exact scheduling LP is infeasible (possible when admission control
// is disabled and the workload overloads the network), it degrades to
// the best-effort variant that maximizes granted bandwidth under the
// same per-demand availability machinery.
func (c TEConfig) Allocate(in *alloc.Input) (alloc.Allocation, error) {
	c = c.Defaults()
	if len(in.Demands) == 0 {
		return alloc.New(in), nil
	}
	switch c.Kind {
	case KindBATE:
		opts := bate.ScheduleOptions{MaxFail: c.MaxFail, Mode: c.Mode, Partition: c.Partition, Groups: c.Groups}
		if c.BatchLP {
			opts.Engine = lp.EngineBatch
		}
		var a alloc.Allocation
		var err error
		if c.Scheduler != nil {
			// Keep the follow-up hardening solves on the same engine.
			opts.Engine = lp.EngineRevised
			a, _, err = c.Scheduler.Schedule(in, opts)
		} else {
			a, _, err = bate.Schedule(in, opts)
		}
		if err == nil {
			// Upgrade the relaxation to the hard guarantee where
			// possible; keep the relaxed allocation if hardening has
			// no feasible solution.
			if hardened, herr := bate.Harden(in, opts, a); herr == nil {
				return hardened, nil
			}
			return a, nil
		}
		return bestEffortBATE(in, c.MaxFail, c.Groups)
	case KindFFC:
		return te.FFC(in, c.FFCK)
	case KindTEAVAR:
		return te.TEAVAR(in, c.TEAVARBeta, c.MaxFail)
	case KindSWAN:
		return te.SWAN(in)
	case KindSMORE:
		return te.SMORE(in)
	case KindB4:
		return te.B4(in)
	}
	return nil, fmt.Errorf("sim: unknown TE kind %d", c.Kind)
}

// bestEffortBATE is BATE's overload fallback: like the scheduling LP
// but with Eq. 1 and Eq. 4 softened — maximize total granted bandwidth
// plus the availability the grants achieve, weighted per demand by
// target stringency. Demands keep their heterogeneous β treatment
// (unlike TEAVAR's single level).
func bestEffortBATE(in *alloc.Input, maxFail int, groups []scenario.RiskGroup) (alloc.Allocation, error) {
	p := lp.NewProblem()
	p.SetMaximize()
	fv := alloc.AddFlowVars(p, in, alloc.FullCapacities(in), nil)
	for _, d := range in.Demands {
		var classes []scenario.Class
		var bvars []lp.VarID
		if d.Target > 0 {
			var err error
			classes, _, err = scenario.CachedClassesFor(in.Net, groups, in.AllTunnelsFor(d), maxFail)
			if err != nil {
				return nil, fmt.Errorf("sim: best-effort classes: %w", err)
			}
			// Availability bonus: same tie-break weighting as the exact
			// scheduler, kept strictly below 1 objective unit per Mbps.
			w := 900.0
			if s := 1 / (1 - d.Target); s < w {
				w = s
			}
			bonus := 1e-3 * d.TotalBandwidth() * w
			bvars = make([]lp.VarID, len(classes))
			for ci, cls := range classes {
				bvars[ci] = p.AddVariable(fmt.Sprintf("B[d%d,c%d]", d.ID, ci), 0, 1, bonus*cls.Prob)
			}
		}
		bit := 0
		for pi, pr := range d.Pairs {
			tunnels := in.TunnelsFor(d, pi)
			if pr.Bandwidth <= 0 {
				bit += len(tunnels)
				continue
			}
			// Granted bandwidth, capped by the demand.
			g := p.AddVariable(fmt.Sprintf("g[d%d,p%d]", d.ID, pi), 0, pr.Bandwidth, 1)
			terms := make([]lp.Term, 0, len(fv[d.ID][pi])+1)
			for _, v := range fv[d.ID][pi] {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
			terms = append(terms, lp.Term{Var: g, Coef: -1})
			p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: 0})
			// Discourage allocating more than granted (waste).
			for _, v := range fv[d.ID][pi] {
				p.SetCost(v, -1e-6)
			}
			// Class availability anchored to the grant:
			// delivered_cls ≥ b·B - (b - g).
			for ci, cls := range classes {
				cterms := make([]lp.Term, 0, len(tunnels)+2)
				for ti := range tunnels {
					if cls.TunnelUp(bit + ti) {
						cterms = append(cterms, lp.Term{Var: fv[d.ID][pi][ti], Coef: 1})
					}
				}
				cterms = append(cterms,
					lp.Term{Var: bvars[ci], Coef: -pr.Bandwidth},
					lp.Term{Var: g, Coef: -1})
				p.AddConstraint(lp.Constraint{Terms: cterms, Op: lp.GE, RHS: -pr.Bandwidth})
			}
			bit += len(tunnels)
		}
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, fmt.Errorf("sim: best-effort fallback: %w", err)
	}
	return fv.Extract(sol), nil
}
