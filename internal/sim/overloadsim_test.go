package sim

import (
	"testing"
	"time"

	"bate/internal/overload"
)

// TestOverloadSimGoodputAndSheds runs the full 1x/5x scenario at a
// test-sized duration and checks the issue's acceptance bar: goodput
// under 5x offered load stays ≥90% of calibrated capacity, shedding
// happens, is explicit, and never touches the critical class, and the
// demand book balances (every admission withdrawn, nothing silent).
func TestOverloadSimGoodputAndSheds(t *testing.T) {
	rep, err := RunOverloadSim(OverloadConfig{
		MaxInflight: 4, StubWork: 2 * time.Millisecond,
		Ramp: 5, Duration: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("goodput %.0f/s at 1x -> %.0f/s at 5x (ratio %.2f), sheds %d (submit %d, status %d), survivor p99 %.1fms",
		rep.Baseline.GoodputPerSec, rep.Overload.GoodputPerSec, rep.GoodputRatio,
		rep.ShedTotal, rep.Overload.ShedSubmit, rep.Overload.ShedStatus, rep.SurvivorP99Ms)
	if rep.Baseline.Admitted == 0 {
		t.Fatalf("calibration admitted nothing: %+v", rep.Baseline)
	}
	if rep.GoodputRatio < 0.9 {
		t.Fatalf("goodput ratio %.2f (overload %.0f/s vs calibrated %.0f/s), want ≥0.90",
			rep.GoodputRatio, rep.Overload.GoodputPerSec, rep.Baseline.GoodputPerSec)
	}
	if rep.ShedTotal == 0 {
		t.Fatal("5x offered load produced no sheds")
	}
	if rep.ShedCritical != 0 {
		t.Fatalf("critical sheds = %d, want 0", rep.ShedCritical)
	}
	if rep.Gate.ShedByPrio[overload.PCritical] != 0 {
		t.Fatalf("gate counted %d critical sheds", rep.Gate.ShedByPrio[overload.PCritical])
	}
	if rep.SurvivorP99Ms <= 0 || rep.SurvivorP99Ms > survivorP99BoundMs {
		t.Fatalf("survivor p99 = %.1fms, want in (0, %.0f]", rep.SurvivorP99Ms, survivorP99BoundMs)
	}
	for _, res := range []*OverloadResult{rep.Baseline, rep.Overload} {
		if res.Withdrawn != res.Admitted {
			t.Fatalf("%s phase: %d admitted vs %d withdrawn", res.Phase, res.Admitted, res.Withdrawn)
		}
		// Client-side accounting is closed: every offered submit was
		// admitted, explicitly shed, or (stub-)rejected — never silent.
		if res.Admitted+res.ShedSubmit > res.Offered {
			t.Fatalf("%s phase books more outcomes than offers: %+v", res.Phase, res)
		}
	}
	// The gate passes on its own output.
	if regs := CompareOverloadBench(rep, rep, 0.2); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %v", regs)
	}
}

func TestCompareOverloadBench(t *testing.T) {
	good := &OverloadBenchReport{
		Ramp: 5, GoodputRatio: 1.5, SurvivorP99Ms: 30, ShedTotal: 500,
		Overload: &OverloadResult{Admitted: 1000, Withdrawn: 1000},
	}
	if regs := CompareOverloadBench(good, good, 0.2); len(regs) != 0 {
		t.Fatalf("clean report regressed: %v", regs)
	}
	cases := []struct {
		name string
		mut  func(r *OverloadBenchReport)
	}{
		{"goodput below floor", func(r *OverloadBenchReport) { r.GoodputRatio = 0.8 }},
		{"goodput ratio regression", func(r *OverloadBenchReport) { r.GoodputRatio = 1.0 }},
		{"no sheds", func(r *OverloadBenchReport) { r.ShedTotal = 0 }},
		{"critical shed", func(r *OverloadBenchReport) { r.ShedCritical = 1 }},
		{"unbounded p99", func(r *OverloadBenchReport) { r.SurvivorP99Ms = survivorP99BoundMs + 1 }},
		{"book imbalance", func(r *OverloadBenchReport) { r.Overload = &OverloadResult{Admitted: 10, Withdrawn: 9} }},
	}
	for _, tc := range cases {
		bad := *good
		if good.Overload != nil {
			o := *good.Overload
			bad.Overload = &o
		}
		tc.mut(&bad)
		if regs := CompareOverloadBench(&bad, good, 0.2); len(regs) == 0 {
			t.Errorf("%s passed the gate", tc.name)
		}
	}
	if regs := CompareOverloadBench(nil, good, 0.2); len(regs) == 0 {
		t.Error("nil report passed the gate")
	}
}
