package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/routing"
	"bate/internal/topo"
)

func testbedSetup(t *testing.T) (*topo.Network, *routing.TunnelSet) {
	t.Helper()
	n := topo.Testbed()
	return n, routing.Compute(n, routing.KShortest, 4)
}

func mkDemand(t *testing.T, n *topo.Network, id int, src, dst string, bw, target, start, end float64) *demand.Demand {
	t.Helper()
	s, ok := n.NodeByName(src)
	if !ok {
		t.Fatalf("node %s", src)
	}
	d, _ := n.NodeByName(dst)
	return &demand.Demand{
		ID: id, Pairs: []demand.PairDemand{{Src: s, Dst: d, Bandwidth: bw}},
		Target: target, Start: start, End: end, Charge: bw, RefundFrac: 0.1,
	}
}

func TestTEConfigAllocateAllKinds(t *testing.T) {
	n, ts := testbedSetup(t)
	demands := []*demand.Demand{
		mkDemand(t, n, 0, "DC1", "DC3", 400, 0.99, 0, 100),
		mkDemand(t, n, 1, "DC2", "DC5", 300, 0.95, 0, 100),
	}
	in := &alloc.Input{Net: n, Tunnels: ts, Demands: demands}
	for _, kind := range AllKinds() {
		a, err := TEConfig{Kind: kind}.Allocate(in)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := a.CheckCapacity(in, 1e-3); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
	// Empty demand set.
	empty := &alloc.Input{Net: n, Tunnels: ts}
	cfgBATE := TEConfig{Kind: KindBATE}
	if a, err := cfgBATE.Allocate(empty); err != nil || a == nil {
		t.Fatalf("empty: %v", err)
	}
	bad := TEConfig{Kind: TEKind(9)}
	if _, err := bad.Allocate(in); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestBestEffortFallbackOnOverload(t *testing.T) {
	n, ts := testbedSetup(t)
	// 3 Gbps through a network whose DC1 egress cut is 3 Gbps total:
	// infeasible with the extra demands, triggers the fallback.
	demands := []*demand.Demand{
		mkDemand(t, n, 0, "DC1", "DC3", 2500, 0.99, 0, 100),
		mkDemand(t, n, 1, "DC1", "DC4", 2500, 0.999, 0, 100),
		mkDemand(t, n, 2, "DC1", "DC5", 2500, 0.95, 0, 100),
	}
	in := &alloc.Input{Net: n, Tunnels: ts, Demands: demands}
	a, err := TEConfig{Kind: KindBATE}.Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCapacity(in, 1e-3); err != nil {
		t.Fatal(err)
	}
	if a.Total() <= 0 {
		t.Fatal("fallback allocated nothing")
	}
}

func TestFailureInjector(t *testing.T) {
	n := topo.Testbed()
	rng := rand.New(rand.NewSource(7))
	fi := NewFailureInjector(n, 3, rng)
	// All links start up.
	for _, l := range n.Links() {
		if !fi.LinkUp(l.ID) {
			t.Fatal("link down at start")
		}
	}
	failures := 0
	for now := 0.0; now < 2000; now++ {
		fi.Step(now)
		failures = 0
		for _, c := range fi.FailCounts {
			failures += c
		}
	}
	if failures == 0 {
		t.Fatal("no failures in 2000s; L4 at 1%/s should fail often")
	}
	// L4 (links 6,7) must dominate the counts (Fig. 10).
	l4 := fi.FailCounts[6] + fi.FailCounts[7]
	others := 0
	for i, c := range fi.FailCounts {
		if i != 6 && i != 7 {
			others += c
		}
	}
	if l4 <= others {
		t.Fatalf("L4 failures %d should dominate others %d", l4, others)
	}
}

func TestFailureInjectorRepair(t *testing.T) {
	n := topo.Testbed()
	// Force a failure by stepping until one occurs, then check repair.
	rng := rand.New(rand.NewSource(3))
	fi := NewFailureInjector(n, 3, rng)
	var failedAt float64 = -1
	for now := 0.0; now < 5000; now++ {
		fi.Step(now)
		if len(fi.Down()) > 0 {
			failedAt = now
			break
		}
	}
	if failedAt < 0 {
		t.Fatal("no failure observed")
	}
	down := fi.Down()[0]
	// Must be repaired within repairSec (+1 step slack), unless it
	// re-failed (prob ~1% per step; seed 3 does not).
	for now := failedAt + 1; now <= failedAt+4; now++ {
		fi.Step(now)
	}
	if !fi.LinkUp(down) {
		t.Fatalf("link %d not repaired after 3s", down)
	}
}

func TestRescaleProportional(t *testing.T) {
	n, ts := testbedSetup(t)
	d := mkDemand(t, n, 0, "DC1", "DC3", 600, 0.99, 0, 100)
	in := &alloc.Input{Net: n, Tunnels: ts, Demands: []*demand.Demand{d}}
	a := alloc.New(in)
	a[0][0][0] = 400
	a[0][0][1] = 200
	tunnels := in.TunnelsFor(d, 0)
	// Kill tunnel 0 by failing its first link.
	dead := tunnels[0].Links[0]
	upFn := func(tn routing.Tunnel) bool { return !tn.Uses(dead) }
	rates := rescaleProportional(in, a, upFn)
	total := 0.0
	for ti, r := range rates[0][0] {
		if !upFn(tunnels[ti]) && r != 0 {
			t.Fatal("rescaled onto dead tunnel")
		}
		total += r
	}
	if math.Abs(total-600) > 1e-9 {
		t.Fatalf("rescaled total %v, want 600", total)
	}
}

func TestDeliveredWithCongestion(t *testing.T) {
	n := topo.NewBuilder("line").AddLink("a", "b", 100, 0.001).MustBuild()
	ts := routing.Compute(n, routing.KShortest, 1)
	a0, _ := n.NodeByName("a")
	b0, _ := n.NodeByName("b")
	d := &demand.Demand{ID: 0, Pairs: []demand.PairDemand{{Src: a0, Dst: b0, Bandwidth: 200}}}
	in := &alloc.Input{Net: n, Tunnels: ts, Demands: []*demand.Demand{d}}
	rates := sendRates{0: {{200}}} // 2x oversubscribed
	delivered, offered := deliveredWithCongestion(in, rates)
	if offered != 200 {
		t.Fatalf("offered %v", offered)
	}
	if math.Abs(delivered[0][0]-100) > 1e-9 {
		t.Fatalf("delivered %v, want 100 (congestion-throttled)", delivered[0][0])
	}
}

func TestRunTimeSimBasic(t *testing.T) {
	n, ts := testbedSetup(t)
	workload := []*demand.Demand{
		mkDemand(t, n, 0, "DC1", "DC3", 400, 0.95, 0, 300),
		mkDemand(t, n, 1, "DC1", "DC4", 300, 0.99, 10, 290),
		mkDemand(t, n, 2, "DC1", "DC5", 500, 0.95, 20, 280),
	}
	res, err := RunTimeSim(TimeSimConfig{
		Net: n, Tunnels: ts, Workload: workload,
		HorizonSec: 300, ScheduleEverySec: 60,
		TE: TEConfig{Kind: KindBATE}, Admission: AdmitBATE, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != 3 {
		t.Fatalf("arrived %d", res.Arrived)
	}
	if res.Admitted+res.Rejected != res.Arrived {
		t.Fatal("admission accounting broken")
	}
	if res.Admitted == 0 {
		t.Fatal("nothing admitted on an empty testbed")
	}
	for _, o := range res.Outcomes {
		if !o.Admitted {
			continue
		}
		if o.ActiveSec <= 0 {
			t.Fatalf("demand %d never active", o.ID)
		}
		if o.Availability < 0 || o.Availability > 1 {
			t.Fatalf("availability %v", o.Availability)
		}
	}
	if res.Profit <= 0 || res.Profit > res.FullCharge {
		t.Fatalf("profit %v / full %v", res.Profit, res.FullCharge)
	}
	if len(res.BwRatios) == 0 || len(res.UtilSamples) == 0 {
		t.Fatal("missing epoch samples")
	}
}

// With no failures possible (zero failure probabilities), BATE must
// satisfy every admitted demand every second.
func TestRunTimeSimNoFailuresFullAvailability(t *testing.T) {
	base := topo.Testbed()
	probs := make([]float64, base.NumLinks())
	n, err := base.WithFailProbs(probs)
	if err != nil {
		t.Fatal(err)
	}
	ts := routing.Compute(n, routing.KShortest, 4)
	workload := []*demand.Demand{
		mkDemand(t, n, 0, "DC1", "DC3", 400, 0.99, 0, 200),
		mkDemand(t, n, 1, "DC2", "DC6", 300, 0.95, 0, 200),
	}
	res, err := RunTimeSim(TimeSimConfig{
		Net: n, Tunnels: ts, Workload: workload,
		HorizonSec: 200, TE: TEConfig{Kind: KindBATE, MaxFail: 1},
		Admission: AdmitBATE, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.Admitted && o.Availability < 1 {
			t.Fatalf("demand %d availability %v with no failures", o.ID, o.Availability)
		}
	}
	if res.LossRatio != 0 {
		t.Fatalf("loss %v with no failures", res.LossRatio)
	}
}

func TestRunTimeSimAdmissionModes(t *testing.T) {
	n, ts := testbedSetup(t)
	var workload []*demand.Demand
	for i := 0; i < 6; i++ {
		workload = append(workload, mkDemand(t, n, i, "DC1", "DC3", 300, 0.95, float64(i), 120))
	}
	rejected := make(map[AdmissionMode]int)
	for _, mode := range []AdmissionMode{AdmitNone, AdmitFixedOnly, AdmitBATE} {
		res, err := RunTimeSim(TimeSimConfig{
			Net: n, Tunnels: ts, Workload: workload,
			HorizonSec: 120, TE: TEConfig{Kind: KindBATE}, Admission: mode, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		rejected[mode] = res.Rejected
	}
	if rejected[AdmitNone] != 0 {
		t.Fatal("AdmitNone must not reject")
	}
	// 6 × 300 Mbps between DC1 and DC3 exceeds what availability
	// targets allow; Fixed must reject at least as many as BATE.
	if rejected[AdmitFixedOnly] < rejected[AdmitBATE] {
		t.Fatalf("fixed rejected %d < BATE %d", rejected[AdmitFixedOnly], rejected[AdmitBATE])
	}
}

func TestRunEventSimBasic(t *testing.T) {
	n, ts := testbedSetup(t)
	rng := rand.New(rand.NewSource(31))
	gen := demand.NewGenerator(n, demand.GeneratorConfig{
		ArrivalsPerMinute: 0.2,
		MeanDurationSec:   600,
		MinBandwidth:      20, MaxBandwidth: 80,
		Targets: []float64{0.95, 0.99},
	}, rng)
	workload := gen.Generate(1800)
	res, err := RunEventSim(EventSimConfig{
		Net: n, Tunnels: ts, Workload: workload,
		HorizonSec: 1800, ScheduleEverySec: 300,
		TE: TEConfig{Kind: KindBATE}, Admission: AdmitBATE,
		ProfitSamples: 1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived == 0 || res.Arrived != res.Admitted+res.Rejected {
		t.Fatalf("accounting: %+v", res)
	}
	if res.Checked == 0 {
		t.Fatal("no satisfaction checks")
	}
	sr := res.SatisfactionRatio()
	if sr < 0.9 {
		t.Fatalf("BATE satisfaction %v under light load", sr)
	}
	if len(res.ProfitRatios) == 0 {
		t.Fatal("no profit samples")
	}
	for _, pr := range res.ProfitRatios {
		if pr < 0 || pr > 1+1e-9 {
			t.Fatalf("profit ratio %v", pr)
		}
	}
}

func TestRunEventSimShadow(t *testing.T) {
	n, ts := testbedSetup(t)
	var workload []*demand.Demand
	for i := 0; i < 8; i++ {
		workload = append(workload, mkDemand(t, n, i, "DC1", "DC4", 250, 0.95, float64(i*30), 1200))
	}
	res, err := RunEventSim(EventSimConfig{
		Net: n, Tunnels: ts, Workload: workload,
		HorizonSec: 1200, ScheduleEverySec: 600,
		TE: TEConfig{Kind: KindBATE}, Admission: AdmitBATE,
		Shadow: true, MaxFail: 1, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shadow deciders ran on every arrival.
	for _, mode := range []AdmissionMode{AdmitFixedOnly, AdmitBATE, AdmitOptimal} {
		if len(res.AdmissionDelaysSec[mode]) != res.Arrived {
			t.Fatalf("%v evaluated %d/%d arrivals", mode, len(res.AdmissionDelaysSec[mode]), res.Arrived)
		}
	}
	// False rejections can't exceed rejections.
	for mode, fr := range res.ShadowFalseReject {
		if fr > res.ShadowRejected[mode] {
			t.Fatalf("%v: false rejects %d > rejects %d", mode, fr, res.ShadowRejected[mode])
		}
	}
	// BATE's conjecture rejects no more than Fixed (it subsumes it).
	if res.ShadowRejected[AdmitBATE] > res.ShadowRejected[AdmitFixedOnly] {
		t.Fatalf("BATE rejected %d > fixed %d", res.ShadowRejected[AdmitBATE], res.ShadowRejected[AdmitFixedOnly])
	}
}

func TestRecoveryCompareSamples(t *testing.T) {
	n, ts := testbedSetup(t)
	workload := []*demand.Demand{
		mkDemand(t, n, 0, "DC1", "DC3", 500, 0.99, 0, 1200),
		mkDemand(t, n, 1, "DC1", "DC5", 400, 0.95, 0, 1200),
	}
	res, err := RunEventSim(EventSimConfig{
		Net: n, Tunnels: ts, Workload: workload,
		HorizonSec: 1200, ScheduleEverySec: 600,
		TE: TEConfig{Kind: KindBATE}, Admission: AdmitNone,
		ProfitSamples: 2, RecoveryCompare: true, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ApproxRatios) == 0 {
		t.Fatal("no approximation-ratio samples")
	}
	for _, r := range res.ApproxRatios {
		if r < 1-1e-6 {
			t.Fatalf("approx ratio %v < 1 (optimal worse than greedy?)", r)
		}
	}
}

func TestAdmissionModeString(t *testing.T) {
	if AdmitNone.String() != "None" || AdmitFixedOnly.String() != "Fixed" ||
		AdmitBATE.String() != "BATE" || AdmitOptimal.String() != "OPT" ||
		AdmissionMode(9).String() != "unknown" {
		t.Fatal("mode strings wrong")
	}
	for _, k := range AllKinds() {
		if k.String() == "unknown" {
			t.Fatal("kind string missing")
		}
	}
	if TEKind(9).String() != "unknown" {
		t.Fatal("fallback kind string")
	}
}

// Under a failure, TEAVAR-style rescaling can congest surviving links
// while FFC keeps its allocation; the loss model must reflect that
// (Fig. 11's ordering).
func TestFailureLossOrdering(t *testing.T) {
	// Force failures deterministically: one link with a huge failure
	// probability so it is down most of the run.
	base := topo.Testbed()
	probs := make([]float64, base.NumLinks())
	probs[6] = 0.3 // DC1->DC4 direction of L4
	n, err := base.WithFailProbs(probs)
	if err != nil {
		t.Fatal(err)
	}
	ts := routing.Compute(n, routing.KShortest, 4)
	workload := []*demand.Demand{
		mkDemand(t, n, 0, "DC1", "DC4", 600, 0.95, 0, 400),
		mkDemand(t, n, 1, "DC1", "DC5", 600, 0.95, 0, 400),
	}
	losses := make(map[TEKind]float64)
	for _, kind := range []TEKind{KindBATE, KindTEAVAR, KindFFC} {
		res, err := RunTimeSim(TimeSimConfig{
			Net: n, Tunnels: ts, Workload: workload,
			HorizonSec: 400, ScheduleEverySec: 400, RepairSec: 3,
			TE: TEConfig{Kind: kind, TEAVARBeta: 0.9}, Admission: AdmitNone, Seed: 9,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		losses[kind] = res.LossRatio
	}
	// All schemes lose the 1-second transients; BATE recovers with
	// capacity-aware backups so it must not lose more than TEAVAR's
	// rescale-and-congest reaction.
	if losses[KindBATE] > losses[KindTEAVAR]+1e-9 {
		t.Fatalf("BATE loss %v > TEAVAR loss %v", losses[KindBATE], losses[KindTEAVAR])
	}
	for kind, l := range losses {
		if l < 0 || l > 0.5 {
			t.Fatalf("%v loss ratio %v out of range", kind, l)
		}
	}
}

func TestEventSimProfitForBaselines(t *testing.T) {
	n, ts := testbedSetup(t)
	workload := []*demand.Demand{
		mkDemand(t, n, 0, "DC1", "DC3", 400, 0.99, 0, 1200),
		mkDemand(t, n, 1, "DC1", "DC4", 300, 0.95, 0, 1200),
	}
	for _, kind := range []TEKind{KindTEAVAR, KindFFC, KindSWAN} {
		res, err := RunEventSim(EventSimConfig{
			Net: n, Tunnels: ts, Workload: workload,
			HorizonSec: 1200, ScheduleEverySec: 600,
			TE: TEConfig{Kind: kind, TEAVARBeta: 0.99}, Admission: AdmitNone,
			ProfitSamples: 3, Seed: 77,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(res.ProfitRatios) == 0 {
			t.Fatalf("%v: no profit samples", kind)
		}
		for _, pr := range res.ProfitRatios {
			if pr < 0 || pr > 1+1e-9 {
				t.Fatalf("%v: profit ratio %v", kind, pr)
			}
		}
	}
}

// The rescale model must conserve traffic when survivors exist and
// drop everything when they do not.
func TestRescaleNoSurvivors(t *testing.T) {
	n := topo.NewBuilder("line").AddLink("a", "b", 1000, 0.001).MustBuild()
	ts := routing.Compute(n, routing.KShortest, 1)
	a0, _ := n.NodeByName("a")
	b0, _ := n.NodeByName("b")
	d := &demand.Demand{ID: 0, Pairs: []demand.PairDemand{{Src: a0, Dst: b0, Bandwidth: 500}}}
	in := &alloc.Input{Net: n, Tunnels: ts, Demands: []*demand.Demand{d}}
	a := alloc.New(in)
	a[0][0][0] = 500
	rates := rescaleProportional(in, a, func(routing.Tunnel) bool { return false })
	for _, r := range rates[0][0] {
		if r != 0 {
			t.Fatal("traffic rescaled onto nothing")
		}
	}
}

func TestTimeSimFFCKeepsAllocation(t *testing.T) {
	// FFC does not rescale: during a failure its surviving-tunnel rates
	// equal the scheduled allocation.
	n, ts := testbedSetup(t)
	d := mkDemand(t, n, 0, "DC1", "DC3", 400, 0.95, 0, 60)
	in := &alloc.Input{Net: n, Tunnels: ts, Demands: []*demand.Demand{d}}
	cfg := TEConfig{Kind: KindFFC}
	a, err := cfg.Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	tunnels := in.TunnelsFor(d, 0)
	dead := tunnels[0].Links[0]
	up := func(tn routing.Tunnel) bool { return !tn.Uses(dead) }
	rates := ratesFromAlloc(in, a, up)
	for ti, r := range rates[0][0] {
		if !up(tunnels[ti]) && r != 0 {
			t.Fatal("rate on dead tunnel")
		}
		if up(tunnels[ti]) && r != a[0][0][ti] {
			t.Fatalf("tunnel %d rate %v != allocation %v", ti, r, a[0][0][ti])
		}
	}
}

func TestParseTraceAndReplay(t *testing.T) {
	base := topo.Testbed()
	probs := make([]float64, base.NumLinks())
	n, err := base.WithFailProbs(probs) // pure replay: no random failures
	if err != nil {
		t.Fatal(err)
	}
	trace := `
# L4 outage then an L1 blip
DC1 DC4 10 20
DC1 DC2 15 16
`
	events, err := ParseTrace(strings.NewReader(trace), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].DownAt != 10 {
		t.Fatalf("events %+v", events)
	}
	fi := NewFailureInjector(n, 3, rand.New(rand.NewSource(1)))
	fi.ApplyTrace(events)
	dc1, _ := n.NodeByName("DC1")
	dc4, _ := n.NodeByName("DC4")
	l4, _ := n.LinkBetween(dc1, dc4)
	for now := 0.0; now < 30; now++ {
		fi.Step(now)
		wantDown := now >= 10 && now < 20
		if fi.LinkUp(l4.ID) == wantDown {
			t.Fatalf("t=%v: L4 up=%v, want down=%v", now, fi.LinkUp(l4.ID), wantDown)
		}
	}
	if fi.FailCounts[l4.ID] != 1 {
		t.Fatalf("L4 fail count %d", fi.FailCounts[l4.ID])
	}
}

func TestParseTraceErrors(t *testing.T) {
	n := topo.Testbed()
	cases := []string{
		"DC1 DC4 10",     // wrong arity
		"NOPE DC4 10 20", // unknown src
		"DC1 NOPE 10 20", // unknown dst
		"DC1 DC3 10 20",  // no direct link DC1->DC3
		"DC1 DC4 x 20",   // bad down
		"DC1 DC4 10 y",   // bad up
		"DC1 DC4 20 10",  // repair before failure
	}
	for _, src := range cases {
		if _, err := ParseTrace(strings.NewReader(src), n); err == nil {
			t.Errorf("ParseTrace(%q): expected error", src)
		}
	}
}

// A scripted outage drives a full time simulation: the affected demand
// loses availability exactly for the outage duration under BATE-TS
// (no recovery), and far less under BATE with backups.
func TestTimeSimWithTrace(t *testing.T) {
	base := topo.Testbed()
	probs := make([]float64, base.NumLinks())
	n, err := base.WithFailProbs(probs)
	if err != nil {
		t.Fatal(err)
	}
	ts := routing.Compute(n, routing.KShortest, 4)
	d := mkDemand(t, n, 0, "DC1", "DC4", 400, 0.99, 0, 100)
	trace, err := ParseTrace(strings.NewReader("DC1 DC4 50 60"), n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTimeSim(TimeSimConfig{
		Net: n, Tunnels: ts, Workload: []*demand.Demand{d},
		HorizonSec: 100, ScheduleEverySec: 100,
		TE: TEConfig{Kind: KindBATE}, Admission: AdmitNone,
		Trace: trace, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcomes[0]
	// Backups reroute instantly; the outage should barely dent
	// availability.
	if o.Availability < 0.99 {
		t.Fatalf("availability %v with instant backups", o.Availability)
	}
}

func TestRiskGroupCorrelatedFailures(t *testing.T) {
	base := topo.Testbed()
	probs := make([]float64, base.NumLinks()) // no independent failures
	n, err := base.WithFailProbs(probs)
	if err != nil {
		t.Fatal(err)
	}
	fi := NewFailureInjector(n, 3, rand.New(rand.NewSource(9)))
	fi.AddRiskGroup([]topo.LinkID{0, 1}, 0.05)
	sawBoth := false
	for now := 0.0; now < 500; now++ {
		fi.Step(now)
		if !fi.LinkUp(0) || !fi.LinkUp(1) {
			// Correlation: whenever one member is down the other is too.
			if fi.LinkUp(0) != fi.LinkUp(1) {
				t.Fatalf("t=%v: group members diverged", now)
			}
			sawBoth = true
		}
		for _, l := range n.Links() {
			if l.ID > 1 && !fi.LinkUp(l.ID) {
				t.Fatalf("non-member link %d failed", l.ID)
			}
		}
	}
	if !sawBoth {
		t.Fatal("risk group never fired in 500 steps at 5%/s")
	}
	if fi.FailCounts[0] == 0 || fi.FailCounts[0] != fi.FailCounts[1] {
		t.Fatalf("group fail counts %d/%d", fi.FailCounts[0], fi.FailCounts[1])
	}
}
