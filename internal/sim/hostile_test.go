package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"reflect"
	"strconv"
	"testing"

	"bate/internal/routing"
	"bate/internal/topo"
)

// hostileSeed lets CI rotate the soak seed (HOSTILE_SEED env); local
// runs default to 1 so failures reproduce.
func hostileSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("HOSTILE_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad HOSTILE_SEED %q: %v", s, err)
	}
	return v
}

// scenarioDigest hashes the fully-assembled scenario (workload +
// failure schedule), the byte-identical-replay witness.
func scenarioDigest(t *testing.T, h *HostileScenario) string {
	t.Helper()
	blob, err := json.Marshal(struct {
		Workload interface{}
		Schedule *Schedule
	}{h.Workload, h.Schedule})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// The hostile-soak gate: for each scenario family, the same seed must
// replay byte-identically, and the online SLO auditor must agree
// exactly with the offline recomputation — zero unnoticed (and zero
// phantom) violations.
func TestHostileSoak(t *testing.T) {
	seed := hostileSeed(t)
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	const horizon = 600.0

	for _, family := range ScenarioFamilies() {
		family := family
		t.Run(family, func(t *testing.T) {
			sc, err := BuildHostileScenario(family, n, horizon, seed)
			if err != nil {
				t.Fatal(err)
			}
			if len(sc.Workload) == 0 {
				t.Fatal("empty workload")
			}
			switch family {
			case "storm", "regional":
				if len(sc.Schedule.Groups) == 0 || len(sc.Schedule.Storms) == 0 {
					t.Fatalf("no correlated failures: %+v", sc.Schedule)
				}
			case "maintenance":
				if len(sc.Schedule.Maintenance) != 2 {
					t.Fatalf("maintenance plan %+v", sc.Schedule.Maintenance)
				}
			case "hostile":
				if len(sc.Schedule.Storms) == 0 || len(sc.Schedule.Maintenance) == 0 {
					t.Fatalf("hostile schedule missing layers: %+v", sc.Schedule)
				}
			}

			// Same seed → byte-identical scenario.
			sc2, err := BuildHostileScenario(family, n, horizon, seed)
			if err != nil {
				t.Fatal(err)
			}
			d1, d2 := scenarioDigest(t, sc), scenarioDigest(t, sc2)
			if d1 != d2 {
				t.Fatalf("scenario replay diverged: %s vs %s", d1, d2)
			}

			res, err := RunTimeSim(sc.SimConfig(ts))
			if err != nil {
				t.Fatal(err)
			}
			if res.Admitted == 0 {
				t.Fatal("nothing admitted — scenario exercises nothing")
			}
			if len(res.SLOReports) != res.Admitted {
				t.Fatalf("%d SLO reports for %d admitted demands", len(res.SLOReports), res.Admitted)
			}

			// Same seed → identical simulation results.
			res2, err := RunTimeSim(sc2.SimConfig(ts))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Outcomes, res2.Outcomes) {
				t.Fatal("outcomes diverged on same-seed replay")
			}
			if !reflect.DeepEqual(res.SLOReports, res2.SLOReports) {
				t.Fatal("SLO reports diverged on same-seed replay")
			}

			// Zero unnoticed violations: the offline recomputation from
			// the raw per-second log must match the online auditor.
			offline := RecomputeSLO(sc.Workload, res.SLOLog, 0.01)
			if err := CompareSLOReports(res.SLOReports, offline); err != nil {
				t.Fatalf("online/offline SLO mismatch: %v", err)
			}
		})
	}
}
