package sim

import (
	"bate/internal/chaos"
	"bate/internal/topo"
)

// ChaosTrace derives a seed-replayable failure trace from the chaos
// outage schedule: n outages over horizonSec seconds, concentrated on
// a seed-chosen "cursed" link the way real inter-DC WAN failures
// concentrate (Fig. 1(b)'s heavy tail). The same seed always yields
// the same trace, so a simulation run under it is reproducible without
// a trace file.
func ChaosTrace(net *topo.Network, seed int64, horizonSec float64, n int) []FailureEvent {
	outages := chaos.LinkOutages(seed, net.NumLinks(), horizonSec, n)
	out := make([]FailureEvent, 0, len(outages))
	for _, o := range outages {
		out = append(out, FailureEvent{Link: topo.LinkID(o.Link), DownAt: o.DownAt, UpAt: o.UpAt})
	}
	return out
}
