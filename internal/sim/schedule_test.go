package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"bate/internal/chaos"
	"bate/internal/scenario"
	"bate/internal/topo"
)

func mustLink(t testing.TB, net *topo.Network, src, dst string) topo.LinkID {
	t.Helper()
	s, ok := net.NodeByName(src)
	if !ok {
		t.Fatalf("no DC %s", src)
	}
	d, ok := net.NodeByName(dst)
	if !ok {
		t.Fatalf("no DC %s", dst)
	}
	l, ok := net.LinkBetween(s, d)
	if !ok {
		t.Fatalf("no link %s->%s", src, dst)
	}
	return l.ID
}

func testSchedule(t testing.TB, net *topo.Network) *Schedule {
	return &Schedule{
		Events: []FailureEvent{
			{Link: mustLink(t, net, "DC1", "DC4"), DownAt: 30, UpAt: 90.5},
			{Link: mustLink(t, net, "DC2", "DC5"), DownAt: 30, UpAt: 45},
		},
		Groups: []scenario.RiskGroup{
			{Name: "conduit-west", Prob: 0.002, Links: []topo.LinkID{
				mustLink(t, net, "DC1", "DC2"), mustLink(t, net, "DC1", "DC6"),
			}},
			{Name: "metro-dc5", Prob: 0, Links: []topo.LinkID{
				mustLink(t, net, "DC2", "DC5"), mustLink(t, net, "DC4", "DC5"), mustLink(t, net, "DC5", "DC6"),
			}},
		},
		Storms: []Storm{
			{Group: "conduit-west", AtSec: 120, DurationSec: 40},
			{Group: "metro-dc5", AtSec: 200, DurationSec: 25},
		},
		Maintenance: []MaintenanceWindow{
			{Link: mustLink(t, net, "DC3", "DC4"), StartSec: 300, EndSec: 360, LeadSec: 20},
		},
	}
}

// Write -> Parse must reproduce the schedule exactly: replay files are
// the determinism contract of every hostile scenario.
func TestScheduleRoundTrip(t *testing.T) {
	net := topo.Testbed()
	s := testSchedule(t, net)
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, net, s); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSchedule(bytes.NewReader(buf.Bytes()), net)
	if err != nil {
		t.Fatalf("parse of written schedule: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip changed schedule:\nwant %+v\ngot  %+v\ntext:\n%s", s, got, buf.String())
	}
}

// Bare 4-field lines (the plain failure-trace format) must keep
// parsing, with and without the explicit link keyword.
func TestScheduleTraceBackCompat(t *testing.T) {
	net := topo.Testbed()
	text := "# legacy trace\nDC1 DC4 120 180\nlink DC2 DC3 10 20\n"
	s, err := ParseSchedule(strings.NewReader(text), net)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := ParseTrace(strings.NewReader("DC1 DC4 120 180\nDC2 DC3 10 20\n"), net)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Events, trace) {
		t.Fatalf("schedule events %+v != trace %+v", s.Events, trace)
	}
	if len(s.Groups)+len(s.Storms)+len(s.Maintenance) != 0 {
		t.Fatalf("bare trace grew extra directives: %+v", s)
	}
}

// AllEvents must unroll storms over their group's links and include
// maintenance windows, sorted by failure time.
func TestScheduleAllEvents(t *testing.T) {
	net := topo.Testbed()
	s := testSchedule(t, net)
	events := s.AllEvents()
	// 2 scripted + 2-link storm + 3-link storm + 1 maintenance.
	if want := 2 + 2 + 3 + 1; len(events) != want {
		t.Fatalf("AllEvents returned %d events, want %d: %+v", len(events), want, events)
	}
	for i, ev := range events {
		if ev.UpAt <= ev.DownAt {
			t.Fatalf("event %d repairs before failing: %+v", i, ev)
		}
		if i > 0 && ev.DownAt < events[i-1].DownAt {
			t.Fatalf("events not sorted at %d", i)
		}
	}
	// The DC5 metro storm must cover all three of its links at t=200.
	covered := 0
	for _, ev := range events {
		if ev.DownAt == 200 && ev.UpAt == 225 {
			covered++
		}
	}
	if covered != 3 {
		t.Fatalf("metro storm expanded to %d links, want 3", covered)
	}
}

// Malformed schedules must be rejected with errors, not mangled.
func TestScheduleRejects(t *testing.T) {
	net := topo.Testbed()
	bad := []string{
		"DC1 DC4 100",                            // too few fields
		"DC1 DC9 100 200",                        // unknown DC
		"DC1 DC4 200 100",                        // repair before failure
		"link DC1 DC4 -5 100",                    // negative time
		"srlg g1 1.5 DC1>DC2",                    // probability out of range
		"srlg g1 0.1 DC1-DC2",                    // bad member syntax
		"srlg g1 0.1 DC1>DC2\nsrlg g1 0 DC2>DC3", // duplicate name
		"storm nope 10 20",                       // undeclared group
		"srlg g1 0 DC1>DC2\nstorm g1 10 0",       // zero storm duration
		"maint DC1 DC4 100 50 10",                // window ends before start
		"maint DC1 DC4 100 200",                  // missing lead
	}
	for i, text := range bad {
		if _, err := ParseSchedule(strings.NewReader(text), net); err == nil {
			t.Fatalf("bad schedule %d accepted: %q", i, text)
		}
	}
}

// Chaos storm schedules must be seed-deterministic and in-horizon.
func TestChaosStormsDeterministic(t *testing.T) {
	a := chaos.SRLGStorms(42, 4, 1000, 12)
	b := chaos.SRLGStorms(42, 4, 1000, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different storm schedules")
	}
	c := chaos.SRLGStorms(43, 4, 1000, 12)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical storm schedules")
	}
	for i, st := range a {
		if st.Group < 0 || st.Group >= 4 {
			t.Fatalf("storm %d hit out-of-range group %d", i, st.Group)
		}
		if st.DownAt < 0 || st.UpAt > 1000 || st.UpAt <= st.DownAt {
			t.Fatalf("storm %d outside horizon: %+v", i, st)
		}
		if i > 0 && st.DownAt < a[i-1].DownAt {
			t.Fatalf("storms not sorted at %d", i)
		}
	}
	d := chaos.RegionalDisasters(42, 6, 1000, 3)
	if !reflect.DeepEqual(d, chaos.RegionalDisasters(42, 6, 1000, 3)) {
		t.Fatal("same seed produced different disaster schedules")
	}
	for i, ev := range d {
		if ev.Group < 0 || ev.Group >= 6 || ev.UpAt <= ev.DownAt || ev.UpAt > 1000 {
			t.Fatalf("disaster %d invalid: %+v", i, ev)
		}
	}
}

// FuzzScenarioTrace hardens the schedule parser the way FuzzWALRecord
// hardens the WAL codec: anything ParseSchedule accepts must respect
// the documented invariants and survive WriteSchedule -> ParseSchedule
// unchanged; anything else must error, never panic.
func FuzzScenarioTrace(f *testing.F) {
	net := topo.Testbed()
	// Seed corpus: the canonical rendering of a full schedule, a legacy
	// trace, and assorted near-miss directives.
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, net, testSchedule(f, net)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("DC1 DC4 120 180\n")
	f.Add("# comment only\n\n")
	f.Add("srlg g 0.5 DC1>DC2 DC2>DC3\nstorm g 1 2\n")
	f.Add("maint DC5 DC6 10 20 5\nlink DC1 DC2 1 2\n")
	f.Add("srlg g 1e-9 DC1>DC2\nstorm g 0.5 1e3\n")

	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSchedule(strings.NewReader(text), net)
		if err != nil {
			return // rejected input: fine, as long as no panic
		}
		for i, ev := range s.Events {
			if ev.UpAt <= ev.DownAt || ev.DownAt < 0 {
				t.Fatalf("accepted event %d with bad times: %+v", i, ev)
			}
			if int(ev.Link) < 0 || int(ev.Link) >= net.NumLinks() {
				t.Fatalf("accepted event %d with bad link: %+v", i, ev)
			}
			if i > 0 && ev.DownAt < s.Events[i-1].DownAt {
				t.Fatalf("events not sorted at %d", i)
			}
		}
		for i, g := range s.Groups {
			if g.Name == "" || len(g.Links) == 0 || g.Prob < 0 || g.Prob >= 1 || g.Prob != g.Prob {
				t.Fatalf("accepted bad group %d: %+v", i, g)
			}
		}
		for i, st := range s.Storms {
			if _, ok := s.groupByName(st.Group); !ok {
				t.Fatalf("accepted storm %d over undeclared group %q", i, st.Group)
			}
			if st.DurationSec <= 0 || st.AtSec < 0 {
				t.Fatalf("accepted bad storm %d: %+v", i, st)
			}
		}
		for i, m := range s.Maintenance {
			if m.EndSec <= m.StartSec || m.StartSec < 0 || m.LeadSec < 0 {
				t.Fatalf("accepted bad maintenance %d: %+v", i, m)
			}
		}
		// Accepted schedules must round-trip exactly.
		var out bytes.Buffer
		if err := WriteSchedule(&out, net, s); err != nil {
			t.Fatalf("WriteSchedule of accepted schedule: %v", err)
		}
		again, err := ParseSchedule(bytes.NewReader(out.Bytes()), net)
		if err != nil {
			t.Fatalf("Parse(Write(Parse(x))): %v\n%s", err, out.String())
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round trip changed schedule:\nfirst  %+v\nsecond %+v\ntext:\n%s", s, again, out.String())
		}
	})
}
