package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/demand"
	"bate/internal/pricing"
	"bate/internal/routing"
	"bate/internal/scenario"
	"bate/internal/topo"
)

// EventSimConfig drives the large-scale event-driven simulation used
// by Figs. 12-19 (§5.2): demands arrive and depart, admission control
// decides, the TE scheme reallocates periodically, and satisfaction is
// computed by TEAVAR-style post-processing over failure scenarios
// rather than per-second emulation.
type EventSimConfig struct {
	Net              *topo.Network
	Tunnels          *routing.TunnelSet
	Workload         []*demand.Demand
	HorizonSec       float64
	ScheduleEverySec float64 // paper: TE activated every 10 minutes
	TE               TEConfig
	Admission        AdmissionMode
	MaxFail          int
	// Shadow additionally evaluates the Fixed, BATE and OPT admission
	// deciders on the same state at every arrival (without affecting
	// the run) to measure conjecture errors (Fig. 12(d)).
	Shadow bool
	// ProfitSamples, when positive, samples that many single-link
	// failure scenarios (weighted by link failure probability) at each
	// scheduling epoch and evaluates post-failure profit (Fig. 15).
	ProfitSamples int
	// RecoveryCompare additionally runs the optimal recovery MILP on
	// each sampled failure to measure the greedy's approximation ratio
	// and speedup (Figs. 19, 21).
	RecoveryCompare bool
	Seed            int64
	// Groups, when non-empty, evaluate epoch satisfaction under the
	// correlated (shared-risk group) failure model; pair with TE.Groups
	// so the scheduler sees the same model it is judged by.
	Groups []scenario.RiskGroup
}

func (c EventSimConfig) defaults() EventSimConfig {
	if c.HorizonSec <= 0 {
		c.HorizonSec = 3600
	}
	if c.ScheduleEverySec <= 0 {
		c.ScheduleEverySec = 600
	}
	if c.MaxFail <= 0 {
		c.MaxFail = 2
	}
	c.TE = c.TE.Defaults()
	return c
}

// EventSimResult aggregates an event-driven run.
type EventSimResult struct {
	Arrived, Admitted, Rejected int
	// ExpiredOnArrival counts demands already past their end time at
	// their own arrival event (zero-length lifetimes); they skip
	// admission entirely.
	ExpiredOnArrival int
	ByMethod         map[bate.AdmissionMethod]int
	// AdmissionDelaysSec per decider (primary plus shadows).
	AdmissionDelaysSec map[AdmissionMode][]float64
	// ShadowRejected counts rejections per shadow decider;
	// ShadowFalseReject counts rejections OPT would have admitted.
	ShadowRejected    map[AdmissionMode]int
	ShadowFalseReject map[AdmissionMode]int

	// Satisfaction via post-processing: Checked demand-epochs and how
	// many were satisfied.
	Satisfied, Checked int
	UtilSamples        []float64

	// Profit sampling.
	ProfitRatios  []float64 // post-failure profit / full charge
	ApproxRatios  []float64 // optimal profit / greedy profit (≥ 1)
	SpeedupRatios []float64 // optimal time / greedy time
}

// SatisfactionRatio is the fraction of demand-epochs whose achieved
// availability met the target.
func (r *EventSimResult) SatisfactionRatio() float64 {
	if r.Checked == 0 {
		return 1
	}
	return float64(r.Satisfied) / float64(r.Checked)
}

// RejectionRatio is rejected/arrived.
func (r *EventSimResult) RejectionRatio() float64 {
	if r.Arrived == 0 {
		return 0
	}
	return float64(r.Rejected) / float64(r.Arrived)
}

// MeanUtilization averages the epoch utilization samples.
func (r *EventSimResult) MeanUtilization() float64 {
	if len(r.UtilSamples) == 0 {
		return 0
	}
	sum := 0.0
	for _, u := range r.UtilSamples {
		sum += u
	}
	return sum / float64(len(r.UtilSamples))
}

// RunEventSim executes the event-driven simulation.
func RunEventSim(cfg EventSimConfig) (*EventSimResult, error) {
	cfg = cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	workload := append([]*demand.Demand(nil), cfg.Workload...)
	sort.Slice(workload, func(i, j int) bool { return workload[i].Start < workload[j].Start })

	res := &EventSimResult{
		ByMethod:           make(map[bate.AdmissionMethod]int),
		AdmissionDelaysSec: make(map[AdmissionMode][]float64),
		ShadowRejected:     make(map[AdmissionMode]int),
		ShadowFalseReject:  make(map[AdmissionMode]int),
	}

	var active []*demand.Demand
	input := func() *alloc.Input {
		return &alloc.Input{Net: cfg.Net, Tunnels: cfg.Tunnels, Demands: active}
	}
	current := alloc.Allocation{}
	nextArrival := 0

	expire := func(now float64) {
		kept := active[:0]
		for _, d := range active {
			if d.End > now {
				kept = append(kept, d)
			}
		}
		active = kept
	}

	// Cumulative link failure probabilities for weighted sampling.
	linkWeights := make([]float64, cfg.Net.NumLinks())
	totalW := 0.0
	for _, l := range cfg.Net.Links() {
		totalW += l.FailProb
		linkWeights[l.ID] = totalW
	}
	sampleLink := func() topo.LinkID {
		x := rng.Float64() * totalW
		for id, w := range linkWeights {
			if x <= w {
				return topo.LinkID(id)
			}
		}
		return topo.LinkID(len(linkWeights) - 1)
	}

	epoch := func(now float64) error {
		expire(now)
		in := input()
		a, err := cfg.TE.Allocate(in)
		if err != nil {
			return err
		}
		current = a
		res.UtilSamples = append(res.UtilSamples, a.MeanUtilization(in))
		// Post-processing satisfaction (§5.2 methodology).
		for _, d := range active {
			if d.Target <= 0 {
				res.Checked++
				res.Satisfied++
				continue
			}
			ok, err := alloc.SatisfiesGroups(in, a, d, cfg.MaxFail, cfg.Groups)
			if err != nil {
				return err
			}
			res.Checked++
			if ok {
				res.Satisfied++
			}
		}
		// Profit-after-failure sampling.
		for s := 0; s < cfg.ProfitSamples && len(active) > 0; s++ {
			link := sampleLink()
			if err := sampleProfit(cfg, in, current, link, res); err != nil {
				return err
			}
		}
		return nil
	}

	nextEpoch := 0.0
	for now := 0.0; now <= cfg.HorizonSec; {
		// Next event: arrival or epoch.
		nextT := cfg.HorizonSec + 1
		isArrival := false
		if nextArrival < len(workload) && workload[nextArrival].Start <= cfg.HorizonSec {
			nextT = workload[nextArrival].Start
			isArrival = true
		}
		if nextEpoch <= nextT {
			nextT = nextEpoch
			isArrival = false
		}
		if nextT > cfg.HorizonSec {
			break
		}
		now = nextT
		if !isArrival {
			if err := epoch(now); err != nil {
				return nil, err
			}
			nextEpoch += cfg.ScheduleEverySec
			continue
		}
		d := workload[nextArrival]
		nextArrival++
		expire(now)
		res.Arrived++
		if d.End <= now {
			// Expired on arrival (a zero-length lifetime): admitting
			// it would hold capacity until the next expire() for a
			// demand that was never live. Skip admission entirely.
			res.ExpiredOnArrival++
			continue
		}
		in := input()

		if cfg.Shadow {
			// Evaluate every decider on the same state; a rejection
			// that OPT would have admitted is a false (conjecture)
			// rejection (Fig. 12(d)).
			decisions := make(map[AdmissionMode]bool, 3)
			for _, mode := range []AdmissionMode{AdmitFixedOnly, AdmitBATE, AdmitOptimal} {
				r, err := admitWith(mode, in, current, active, d, cfg.MaxFail)
				if err != nil {
					return nil, err
				}
				res.AdmissionDelaysSec[mode] = append(res.AdmissionDelaysSec[mode], r.Elapsed.Seconds())
				decisions[mode] = r.Admitted
				if !r.Admitted {
					res.ShadowRejected[mode]++
				}
			}
			if decisions[AdmitOptimal] {
				for _, mode := range []AdmissionMode{AdmitFixedOnly, AdmitBATE} {
					if !decisions[mode] {
						res.ShadowFalseReject[mode]++
					}
				}
			}
		}

		adRes, err := admitWith(cfg.Admission, in, current, active, d, cfg.MaxFail)
		if err != nil {
			return nil, err
		}
		if !cfg.Shadow {
			res.AdmissionDelaysSec[cfg.Admission] = append(res.AdmissionDelaysSec[cfg.Admission], adRes.Elapsed.Seconds())
		}
		res.ByMethod[adRes.Method]++
		if !adRes.Admitted {
			res.Rejected++
			continue
		}
		res.Admitted++
		active = append(active, d)
		if adRes.NewAlloc != nil {
			current[d.ID] = adRes.NewAlloc
		}
	}
	return res, nil
}

// admitWith dispatches an admission decider without mutating state.
func admitWith(mode AdmissionMode, in *alloc.Input, current alloc.Allocation, active []*demand.Demand, d *demand.Demand, maxFail int) (*bate.AdmissionResult, error) {
	switch mode {
	case AdmitNone:
		return &bate.AdmissionResult{Admitted: true, Method: "none"}, nil
	case AdmitFixedOnly:
		return bate.AdmitFixed(in, current, d, maxFail)
	case AdmitBATE:
		return bate.Admit(in, current, active, d, maxFail)
	case AdmitOptimal:
		res, _, err := bate.AdmitOptimal(in, active, d, minInt(maxFail, 1))
		return res, err
	}
	return nil, fmt.Errorf("sim: unknown admission mode %d", mode)
}

// sampleProfit evaluates post-failure profit for one failed link.
func sampleProfit(cfg EventSimConfig, in *alloc.Input, current alloc.Allocation, link topo.LinkID, res *EventSimResult) error {
	full := 0.0
	for _, d := range in.Demands {
		full += d.Charge
	}
	if full <= 0 {
		return nil
	}
	var profit float64
	if cfg.TE.Kind == KindBATE {
		grd, err := bate.RecoverGreedy(in, []topo.LinkID{link})
		if err != nil {
			return err
		}
		profit = grd.Profit
		if cfg.RecoveryCompare {
			opt, err := bate.RecoverOptimal(in, []topo.LinkID{link})
			if err != nil {
				return err
			}
			if grd.Profit > 0 {
				res.ApproxRatios = append(res.ApproxRatios, opt.Profit/grd.Profit)
			}
			if grd.Elapsed > 0 {
				res.SpeedupRatios = append(res.SpeedupRatios, float64(opt.Elapsed)/float64(grd.Elapsed))
			}
		}
	} else {
		// Baselines rescale proportionally and take congestion losses.
		up := func(t routing.Tunnel) bool { return !t.Uses(link) }
		var rates sendRates
		if cfg.TE.Kind == KindFFC {
			rates = ratesFromAlloc(in, current, up)
		} else {
			rates = rescaleProportional(in, current, up)
		}
		delivered, _ := deliveredWithCongestion(in, rates)
		for _, d := range in.Demands {
			violated := false
			for pi, pr := range d.Pairs {
				if pr.Bandwidth <= 0 {
					continue
				}
				got := 0.0
				if per := delivered[d.ID]; per != nil && pi < len(per) {
					got = per[pi]
				}
				if got < pr.Bandwidth*0.99 {
					violated = true
					break
				}
			}
			profit += pricing.Profit(d.Charge, d.RefundFrac, violated)
		}
	}
	res.ProfitRatios = append(res.ProfitRatios, profit/full)
	return nil
}
