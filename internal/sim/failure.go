package sim

import (
	"math/rand"

	"bate/internal/alloc"
	"bate/internal/routing"
	"bate/internal/topo"
)

// FailureInjector emulates the testbed's link failure process (§5.1):
// every second, each up link fails independently with its failure
// probability; a failed link repairs after RepairSec seconds.
type FailureInjector struct {
	net       *topo.Network
	rng       *rand.Rand
	repairSec float64
	downUntil []float64 // 0 when up; repair time when down
	// FailCounts tallies failures per link (Fig. 10).
	FailCounts []int
	// Scripted outages (ApplyTrace), sorted by DownAt.
	trace     []FailureEvent
	traceNext int
	// Shared-risk groups: correlated whole-group failures.
	groups []riskGroup
}

type riskGroup struct {
	links []topo.LinkID
	prob  float64
}

// AddRiskGroup registers a shared-risk link group: every second the
// group fires with prob, taking all member links down together for the
// repair window (fiber-conduit cuts, optical segment faults).
func (fi *FailureInjector) AddRiskGroup(links []topo.LinkID, prob float64) {
	fi.groups = append(fi.groups, riskGroup{links: append([]topo.LinkID(nil), links...), prob: prob})
}

// NewFailureInjector returns an injector for net with the given repair
// time (the paper's default x is 3 seconds).
func NewFailureInjector(net *topo.Network, repairSec float64, rng *rand.Rand) *FailureInjector {
	if repairSec <= 0 {
		repairSec = 3
	}
	return &FailureInjector{
		net:        net,
		rng:        rng,
		repairSec:  repairSec,
		downUntil:  make([]float64, net.NumLinks()),
		FailCounts: make([]int, net.NumLinks()),
	}
}

// Step advances to time now (seconds), repairing expired failures,
// firing scripted trace outages, and rolling the per-second failure
// dice. It returns true if any link changed state.
func (fi *FailureInjector) Step(now float64) bool {
	changed := fi.stepTrace(now)
	for _, g := range fi.groups {
		if fi.rng.Float64() >= g.prob {
			continue
		}
		for _, e := range g.links {
			if fi.downUntil[e] == 0 {
				fi.FailCounts[e]++
				changed = true
			}
			if until := now + fi.repairSec; until > fi.downUntil[e] {
				fi.downUntil[e] = until
			}
		}
	}
	for _, l := range fi.net.Links() {
		id := l.ID
		if fi.downUntil[id] > 0 {
			if now >= fi.downUntil[id] {
				fi.downUntil[id] = 0
				changed = true
			}
			continue
		}
		// The testbed draws an integer p in [0,10000) each second and
		// fails the link when p/10000 < failProb; equivalently a
		// Bernoulli trial.
		if fi.rng.Float64() < l.FailProb {
			fi.downUntil[id] = now + fi.repairSec
			fi.FailCounts[id]++
			changed = true
		}
	}
	return changed
}

// LinkUp reports whether link e is currently up.
func (fi *FailureInjector) LinkUp(e topo.LinkID) bool { return fi.downUntil[e] == 0 }

// Down returns the ids of currently failed links.
func (fi *FailureInjector) Down() []topo.LinkID {
	var out []topo.LinkID
	for id, until := range fi.downUntil {
		if until > 0 {
			out = append(out, topo.LinkID(id))
		}
	}
	return out
}

// TunnelUp reports whether every link of t is up.
func (fi *FailureInjector) TunnelUp(t routing.Tunnel) bool {
	for _, e := range t.Links {
		if !fi.LinkUp(e) {
			return false
		}
	}
	return true
}

// sendRates is the per-demand per-pair per-tunnel sending rate during
// one simulated second (may differ from the scheduled allocation after
// rescaling).
type sendRates map[int][][]float64

// rescaleProportional models the baselines' failure reaction: each
// demand moves the traffic of its dead tunnels onto its surviving
// tunnels proportionally to their allocation, capacity-unaware (the
// congestion source of Fig. 11). Demands with no surviving tunnel
// lose everything.
func rescaleProportional(in *alloc.Input, a alloc.Allocation, up func(routing.Tunnel) bool) sendRates {
	out := make(sendRates, len(a))
	for _, d := range in.Demands {
		rows, ok := a[d.ID]
		if !ok {
			continue
		}
		nr := make([][]float64, len(rows))
		for pi := range d.Pairs {
			tunnels := in.TunnelsFor(d, pi)
			nr[pi] = make([]float64, len(rows[pi]))
			total, surviving := 0.0, 0.0
			for ti, f := range rows[pi] {
				total += f
				if up(tunnels[ti]) {
					surviving += f
				}
			}
			if surviving <= 0 {
				continue // everything lost
			}
			scale := total / surviving
			for ti, f := range rows[pi] {
				if up(tunnels[ti]) {
					nr[pi][ti] = f * scale
				}
			}
		}
		out[d.ID] = nr
	}
	return out
}

// ratesFromAlloc sends exactly the scheduled allocation on surviving
// tunnels (FFC's and BATE's behaviour: no capacity-unaware rescaling).
func ratesFromAlloc(in *alloc.Input, a alloc.Allocation, up func(routing.Tunnel) bool) sendRates {
	out := make(sendRates, len(a))
	for _, d := range in.Demands {
		rows, ok := a[d.ID]
		if !ok {
			continue
		}
		nr := make([][]float64, len(rows))
		for pi := range d.Pairs {
			tunnels := in.TunnelsFor(d, pi)
			nr[pi] = make([]float64, len(rows[pi]))
			for ti, f := range rows[pi] {
				if up(tunnels[ti]) {
					nr[pi][ti] = f
				}
			}
		}
		out[d.ID] = nr
	}
	return out
}

// deliveredWithCongestion computes, for every demand pair, the
// bandwidth actually delivered given sending rates and link
// capacities: when a link is oversubscribed every flow crossing it is
// throttled proportionally (its delivery fraction is the minimum
// cap/load ratio along the tunnel). It returns delivered bandwidth
// per demand per pair and the total offered rate.
func deliveredWithCongestion(in *alloc.Input, rates sendRates) (map[int][]float64, float64) {
	loads := make([]float64, in.Net.NumLinks())
	offered := 0.0
	for _, d := range in.Demands {
		rows, ok := rates[d.ID]
		if !ok {
			continue
		}
		for pi := range d.Pairs {
			tunnels := in.TunnelsFor(d, pi)
			for ti, r := range rows[pi] {
				if r <= 0 {
					continue
				}
				offered += r
				for _, e := range tunnels[ti].Links {
					loads[e] += r
				}
			}
		}
	}
	frac := make([]float64, in.Net.NumLinks())
	for _, l := range in.Net.Links() {
		if loads[l.ID] > l.Capacity {
			frac[l.ID] = l.Capacity / loads[l.ID]
		} else {
			frac[l.ID] = 1
		}
	}
	out := make(map[int][]float64, len(rates))
	for _, d := range in.Demands {
		rows, ok := rates[d.ID]
		if !ok {
			continue
		}
		per := make([]float64, len(d.Pairs))
		for pi := range d.Pairs {
			tunnels := in.TunnelsFor(d, pi)
			for ti, r := range rows[pi] {
				if r <= 0 {
					continue
				}
				f := 1.0
				for _, e := range tunnels[ti].Links {
					if frac[e] < f {
						f = frac[e]
					}
				}
				per[pi] += r * f
			}
		}
		out[d.ID] = per
	}
	return out, offered
}
