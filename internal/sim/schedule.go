package sim

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"bate/internal/scenario"
	"bate/internal/topo"
)

// Scenario schedules extend the plain failure-trace format with the
// correlated-failure and maintenance vocabulary of the adversarial
// scenario engine. One directive per line:
//
//	# comment
//	link SRC DST DOWN UP            scripted single-link outage
//	SRC DST DOWN UP                 (bare form, trace back-compat)
//	srlg NAME PROB SRC>DST ...      shared-risk group declaration;
//	                                PROB is its per-second storm
//	                                probability (0 = scripted only)
//	storm NAME AT DUR               scripted whole-group outage
//	maint SRC DST START END LEAD    planned maintenance window: the
//	                                link drains LEAD seconds before
//	                                START and is down [START, END)
//
// A schedule is the unit of replay: the same file (or the same
// generated schedule) always drives the injector identically.

// MaintenanceWindow is one planned link outage with a proactive drain
// lead: the scheduler routes traffic off Link from StartSec-LeadSec,
// the link is down during [StartSec, EndSec).
type MaintenanceWindow struct {
	Link             topo.LinkID
	StartSec, EndSec float64
	LeadSec          float64
}

// Storm is a scripted whole-group outage: every link of the named
// risk group goes down during [AtSec, AtSec+DurationSec).
type Storm struct {
	Group              string
	AtSec, DurationSec float64
}

// Schedule is a parsed scenario schedule.
type Schedule struct {
	// Events are scripted single-link outages (sorted by DownAt).
	Events []FailureEvent
	// Groups are the declared shared-risk link groups, in declaration
	// order. Prob > 0 arms the injector's stochastic storm process;
	// zero-probability groups exist for scripted storms and for
	// correlation-aware scheduling.
	Groups []scenario.RiskGroup
	// Storms are scripted whole-group outages.
	Storms []Storm
	// Maintenance are planned windows (sorted by StartSec).
	Maintenance []MaintenanceWindow
}

// groupByName returns the declared group with the given name.
func (s *Schedule) groupByName(name string) (scenario.RiskGroup, bool) {
	for _, g := range s.Groups {
		if g.Name == name {
			return g, true
		}
	}
	return scenario.RiskGroup{}, false
}

// AllEvents expands the schedule into plain per-link failure events:
// scripted link outages, storms unrolled over their group's links, and
// maintenance windows as outages (the drain lead is the simulator's
// business, not the injector's). Events are sorted by DownAt.
func (s *Schedule) AllEvents() []FailureEvent {
	out := append([]FailureEvent(nil), s.Events...)
	for _, st := range s.Storms {
		g, ok := s.groupByName(st.Group)
		if !ok {
			continue // Parse rejects this; generated schedules are trusted
		}
		for _, e := range g.Links {
			out = append(out, FailureEvent{Link: e, DownAt: st.AtSec, UpAt: st.AtSec + st.DurationSec})
		}
	}
	for _, m := range s.Maintenance {
		out = append(out, FailureEvent{Link: m.Link, DownAt: m.StartSec, UpAt: m.EndSec})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].DownAt != out[j].DownAt {
			return out[i].DownAt < out[j].DownAt
		}
		return out[i].Link < out[j].Link
	})
	return out
}

// resolveLink maps SRC DST names to a link id.
func resolveLink(net *topo.Network, src, dst string, lineNo int) (topo.LinkID, error) {
	s, ok := net.NodeByName(src)
	if !ok {
		return 0, fmt.Errorf("sim: schedule line %d: unknown DC %q", lineNo, src)
	}
	d, ok := net.NodeByName(dst)
	if !ok {
		return 0, fmt.Errorf("sim: schedule line %d: unknown DC %q", lineNo, dst)
	}
	l, ok := net.LinkBetween(s, d)
	if !ok {
		return 0, fmt.Errorf("sim: schedule line %d: no link %s->%s", lineNo, src, dst)
	}
	return l.ID, nil
}

func parseSec(field string, lineNo int, what string) (float64, error) {
	v, err := strconv.ParseFloat(field, 64)
	if err != nil {
		return 0, fmt.Errorf("sim: schedule line %d: bad %s: %v", lineNo, what, err)
	}
	if v != v || v < 0 {
		return 0, fmt.Errorf("sim: schedule line %d: %s %v must be a non-negative number", lineNo, what, v)
	}
	return v, nil
}

// ParseSchedule reads a scenario schedule, resolving DC names against
// net. Plain failure-trace files (bare SRC DST DOWN UP lines) parse as
// schedules with only Events.
func ParseSchedule(r io.Reader, net *topo.Network) (*Schedule, error) {
	out := &Schedule{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "link":
			fields = fields[1:]
			fallthrough
		default:
			if len(fields) != 4 {
				return nil, fmt.Errorf("sim: schedule line %d: want [link] SRC DST DOWN UP", lineNo)
			}
			link, err := resolveLink(net, fields[0], fields[1], lineNo)
			if err != nil {
				return nil, err
			}
			down, err := parseSec(fields[2], lineNo, "down time")
			if err != nil {
				return nil, err
			}
			up, err := parseSec(fields[3], lineNo, "up time")
			if err != nil {
				return nil, err
			}
			if up <= down {
				return nil, fmt.Errorf("sim: schedule line %d: repair %v before failure %v", lineNo, up, down)
			}
			out.Events = append(out.Events, FailureEvent{Link: link, DownAt: down, UpAt: up})
		case "srlg":
			if len(fields) < 4 {
				return nil, fmt.Errorf("sim: schedule line %d: want srlg NAME PROB SRC>DST...", lineNo)
			}
			name := fields[1]
			if _, dup := out.groupByName(name); dup {
				return nil, fmt.Errorf("sim: schedule line %d: duplicate srlg %q", lineNo, name)
			}
			prob, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || prob != prob || prob < 0 || prob >= 1 {
				return nil, fmt.Errorf("sim: schedule line %d: srlg probability %q out of [0,1)", lineNo, fields[2])
			}
			g := scenario.RiskGroup{Name: name, Prob: prob}
			for _, spec := range fields[3:] {
				src, dst, ok := strings.Cut(spec, ">")
				if !ok {
					return nil, fmt.Errorf("sim: schedule line %d: srlg member %q: want SRC>DST", lineNo, spec)
				}
				link, err := resolveLink(net, src, dst, lineNo)
				if err != nil {
					return nil, err
				}
				g.Links = append(g.Links, link)
			}
			out.Groups = append(out.Groups, g)
		case "storm":
			if len(fields) != 4 {
				return nil, fmt.Errorf("sim: schedule line %d: want storm NAME AT DUR", lineNo)
			}
			if _, ok := out.groupByName(fields[1]); !ok {
				return nil, fmt.Errorf("sim: schedule line %d: storm references undeclared srlg %q", lineNo, fields[1])
			}
			at, err := parseSec(fields[2], lineNo, "storm time")
			if err != nil {
				return nil, err
			}
			dur, err := parseSec(fields[3], lineNo, "storm duration")
			if err != nil {
				return nil, err
			}
			if dur <= 0 {
				return nil, fmt.Errorf("sim: schedule line %d: storm duration must be positive", lineNo)
			}
			out.Storms = append(out.Storms, Storm{Group: fields[1], AtSec: at, DurationSec: dur})
		case "maint":
			if len(fields) != 6 {
				return nil, fmt.Errorf("sim: schedule line %d: want maint SRC DST START END LEAD", lineNo)
			}
			link, err := resolveLink(net, fields[1], fields[2], lineNo)
			if err != nil {
				return nil, err
			}
			start, err := parseSec(fields[3], lineNo, "maintenance start")
			if err != nil {
				return nil, err
			}
			end, err := parseSec(fields[4], lineNo, "maintenance end")
			if err != nil {
				return nil, err
			}
			lead, err := parseSec(fields[5], lineNo, "maintenance lead")
			if err != nil {
				return nil, err
			}
			if end <= start {
				return nil, fmt.Errorf("sim: schedule line %d: maintenance ends %v before it starts %v", lineNo, end, start)
			}
			out.Maintenance = append(out.Maintenance, MaintenanceWindow{
				Link: link, StartSec: start, EndSec: end, LeadSec: lead,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(out.Events, func(i, j int) bool {
		if out.Events[i].DownAt != out.Events[j].DownAt {
			return out.Events[i].DownAt < out.Events[j].DownAt
		}
		return out.Events[i].Link < out.Events[j].Link
	})
	sort.SliceStable(out.Maintenance, func(i, j int) bool {
		if out.Maintenance[i].StartSec != out.Maintenance[j].StartSec {
			return out.Maintenance[i].StartSec < out.Maintenance[j].StartSec
		}
		return out.Maintenance[i].Link < out.Maintenance[j].Link
	})
	return out, nil
}

// fsec formats a seconds value so it round-trips exactly through
// ParseFloat.
func fsec(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// linkName renders a link as SRC DST fields.
func linkName(net *topo.Network, e topo.LinkID) (string, string) {
	l := net.Link(e)
	return net.NodeName(l.Src), net.NodeName(l.Dst)
}

// WriteSchedule serializes a schedule in the canonical text form; the
// output parses back (ParseSchedule) to an equal schedule.
func WriteSchedule(w io.Writer, net *topo.Network, s *Schedule) error {
	bw := bufio.NewWriter(w)
	for _, g := range s.Groups {
		fmt.Fprintf(bw, "srlg %s %s", g.Name, fsec(g.Prob))
		for _, e := range g.Links {
			src, dst := linkName(net, e)
			fmt.Fprintf(bw, " %s>%s", src, dst)
		}
		fmt.Fprintln(bw)
	}
	for _, ev := range s.Events {
		src, dst := linkName(net, ev.Link)
		fmt.Fprintf(bw, "link %s %s %s %s\n", src, dst, fsec(ev.DownAt), fsec(ev.UpAt))
	}
	for _, st := range s.Storms {
		fmt.Fprintf(bw, "storm %s %s %s\n", st.Group, fsec(st.AtSec), fsec(st.DurationSec))
	}
	for _, m := range s.Maintenance {
		src, dst := linkName(net, m.Link)
		fmt.Fprintf(bw, "maint %s %s %s %s %s\n", src, dst, fsec(m.StartSec), fsec(m.EndSec), fsec(m.LeadSec))
	}
	return bw.Flush()
}
