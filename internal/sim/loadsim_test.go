package sim

import (
	"testing"

	"bate/internal/wire"
)

func TestLoadSimSmoke(t *testing.T) {
	for _, codec := range []wire.Codec{wire.CodecBinary, wire.CodecJSON} {
		res, err := RunLoadSim(LoadConfig{Clients: 400, Conns: 4, Batch: 16, Codec: codec})
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if res.Admitted != 400 {
			t.Fatalf("%s: admitted %d of 400 (rejected %d)", codec, res.Admitted, res.Rejected)
		}
		if res.Withdrawn != res.Admitted {
			t.Fatalf("%s: withdrew %d of %d admitted", codec, res.Withdrawn, res.Admitted)
		}
		if res.StatusPolls == 0 {
			t.Fatalf("%s: no status polls ran", codec)
		}
		if res.AdmissionsPerSec <= 0 || res.P99AckMs <= 0 || res.AllocsPerOp <= 0 {
			t.Fatalf("%s: empty measurements: %+v", codec, res)
		}
	}
}

func TestLoadSimRealAdmission(t *testing.T) {
	// The full stack (solver included) must also hold up under the
	// harness, just at a smaller scale.
	res, err := RunLoadSim(LoadConfig{Clients: 64, Conns: 2, Batch: 8, RealAdmission: true, Codec: wire.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted == 0 {
		t.Fatalf("real admission admitted nothing: %+v", res)
	}
}

func TestLoadSimClampsIDSpace(t *testing.T) {
	// Conns×Batch beyond the 12-bit demand-id space must be clamped,
	// not wedge the run on id exhaustion.
	res, err := RunLoadSim(LoadConfig{Clients: 800, Conns: 64, Batch: 128, Codec: wire.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conns*res.Batch > 3500 {
		t.Fatalf("unclamped in-flight window: %d conns × %d batch", res.Conns, res.Batch)
	}
	if res.Admitted != 800 {
		t.Fatalf("admitted %d of 800", res.Admitted)
	}
}

func TestCompareWireBench(t *testing.T) {
	bin := &LoadResult{AdmissionsPerSec: 1000, AllocsPerOp: 10}
	js := &LoadResult{AdmissionsPerSec: 100, AllocsPerOp: 100}
	base := NewWireBenchReport("testbed6", 1000, bin, js)
	if base.SpeedupAdmissionsPerSec != 10 || base.AllocsPerOpRatio != 0.1 {
		t.Fatalf("ratios: %+v", base)
	}
	if regs := CompareWireBench(base, base, 0.2); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %v", regs)
	}
	slow := NewWireBenchReport("testbed6", 1000,
		&LoadResult{AdmissionsPerSec: 500, AllocsPerOp: 10}, js)
	if regs := CompareWireBench(slow, base, 0.2); len(regs) == 0 {
		t.Fatal("halved speedup passed the ±20% gate")
	}
	leaky := NewWireBenchReport("testbed6", 1000,
		&LoadResult{AdmissionsPerSec: 1000, AllocsPerOp: 20}, js)
	if regs := CompareWireBench(leaky, base, 0.2); len(regs) == 0 {
		t.Fatal("doubled allocs/op passed the ±20% gate")
	}
	within := NewWireBenchReport("testbed6", 1000,
		&LoadResult{AdmissionsPerSec: 900, AllocsPerOp: 11}, &LoadResult{AdmissionsPerSec: 100, AllocsPerOp: 100})
	if regs := CompareWireBench(within, base, 0.2); len(regs) != 0 {
		t.Fatalf("10%% drift failed the ±20%% gate: %v", regs)
	}
}
