package sim

import (
	"math"
	"testing"

	"bate/internal/demand"
	"bate/internal/routing"
	"bate/internal/topo"
)

// Per-second classification: satisfied, and the three causes with
// their severity order.
func TestClassifySecond(t *testing.T) {
	d := &demand.Demand{ID: 0, Pairs: []demand.PairDemand{
		{Src: 0, Dst: 1, Bandwidth: 100},
		{Src: 0, Dst: 2, Bandwidth: 100},
	}}
	tol := 0.99
	cases := []struct {
		name  string
		pairs []PairSecond
		ok    bool
		cause ViolationCause
	}{
		{"satisfied", []PairSecond{{Offered: 100, Delivered: 100}, {Offered: 100, Delivered: 99.5}}, true, CauseNone},
		{"outage-dead", []PairSecond{{Offered: 100, Dead: 60, Delivered: 40}, {Offered: 100, Delivered: 100}}, false, CauseOutage},
		{"outage-pathdown", []PairSecond{{Offered: 0, PathDown: true}, {Offered: 100, Delivered: 100}}, false, CauseOutage},
		{"congestion", []PairSecond{{Offered: 100, Delivered: 80}, {Offered: 100, Delivered: 100}}, false, CauseCongestion},
		{"shed", []PairSecond{{Offered: 50, Delivered: 50}, {Offered: 100, Delivered: 100}}, false, CauseShed},
		{"outage-beats-shed", []PairSecond{{Offered: 50, Delivered: 50}, {Offered: 100, Dead: 100}}, false, CauseOutage},
		{"congestion-beats-shed", []PairSecond{{Offered: 50, Delivered: 50}, {Offered: 100, Delivered: 70}}, false, CauseCongestion},
		{"nil-detail", nil, false, CauseShed},
	}
	for _, tc := range cases {
		ok, cause := classifySecond(d, tc.pairs, tol)
		if ok != tc.ok || cause != tc.cause {
			t.Errorf("%s: got ok=%v cause=%v, want ok=%v cause=%v", tc.name, ok, cause, tc.ok, tc.cause)
		}
	}
	// A zero-bandwidth pair never fails the second.
	free := &demand.Demand{ID: 1, Pairs: []demand.PairDemand{{Src: 0, Dst: 1, Bandwidth: 0}}}
	if ok, _ := classifySecond(free, nil, tol); !ok {
		t.Error("zero-bandwidth demand not satisfied")
	}
}

// The online auditor and the offline recomputation must agree on a
// synthetic stream, and the comparator must catch a doctored verdict.
func TestSLOAuditorOnlineOfflineAgree(t *testing.T) {
	d0 := &demand.Demand{ID: 0, Pairs: []demand.PairDemand{{Src: 0, Dst: 1, Bandwidth: 100}},
		Target: 0.95, Charge: 200, RefundFrac: 0.25}
	d1 := &demand.Demand{ID: 1, Pairs: []demand.PairDemand{{Src: 0, Dst: 2, Bandwidth: 50}},
		Target: 0.5, Charge: 80, RefundFrac: 0.1}
	workload := []*demand.Demand{d0, d1}

	aud := NewSLOAuditor(0.01)
	// d0: 8 good seconds, 1 outage, 1 congestion -> 0.8 < 0.95: violated.
	for i := 0; i < 8; i++ {
		aud.Observe(d0, []PairSecond{{Offered: 100, Delivered: 100}})
	}
	aud.Observe(d0, []PairSecond{{Offered: 100, Dead: 100}})
	aud.Observe(d0, []PairSecond{{Offered: 100, Delivered: 90}})
	// d1: 3 good, 2 shed -> 0.6 >= 0.5: fine.
	for i := 0; i < 3; i++ {
		aud.Observe(d1, []PairSecond{{Offered: 50, Delivered: 50}})
	}
	for i := 0; i < 2; i++ {
		aud.Observe(d1, []PairSecond{{Offered: 10, Delivered: 10}})
	}

	online := aud.Reports()
	offline := RecomputeSLO(workload, aud.Log(), 0.01)
	if err := CompareSLOReports(online, offline); err != nil {
		t.Fatalf("online and offline disagree: %v", err)
	}
	if len(online) != 2 {
		t.Fatalf("got %d reports", len(online))
	}
	r0 := online[0]
	if !r0.Violated || r0.Cause == CauseNone || r0.Availability != 0.8 {
		t.Fatalf("d0 report wrong: %+v", r0)
	}
	if r0.UnsatOutage != 1 || r0.UnsatCongestion != 1 || r0.UnsatShed != 0 {
		t.Fatalf("d0 cause split wrong: %+v", r0)
	}
	if want := 0.25 * 200; math.Abs(r0.RefundDue-want) > 1e-9 {
		t.Fatalf("d0 refund %v, want %v", r0.RefundDue, want)
	}
	r1 := online[1]
	if r1.Violated || r1.RefundDue != 0 || r1.UnsatShed != 2 {
		t.Fatalf("d1 report wrong: %+v", r1)
	}
	if want := r0.RefundDue; RefundExposure(online) != want {
		t.Fatalf("exposure %v, want %v", RefundExposure(online), want)
	}

	// Doctor the online verdict: the comparator must notice both an
	// unnoticed violation and a phantom one.
	doctored := append([]SLOReport(nil), online...)
	doctored[0].Violated = false
	if err := CompareSLOReports(doctored, offline); err == nil {
		t.Fatal("comparator missed an unnoticed violation")
	}
	doctored[0].Violated = true
	doctored[1].Violated = true
	if err := CompareSLOReports(doctored, offline); err == nil {
		t.Fatal("comparator missed a phantom violation")
	}
}

// An audited time simulation must (a) agree with its own outcome
// accounting second for second and (b) survive the offline
// recomputation gate.
func TestTimeSimAuditMatchesOutcomes(t *testing.T) {
	n, ts := testbedSetup(t)
	workload := []*demand.Demand{
		mkDemand(t, n, 0, "DC1", "DC3", 400, 0.95, 0, 300),
		mkDemand(t, n, 1, "DC1", "DC4", 300, 0.99, 10, 290),
		mkDemand(t, n, 2, "DC2", "DC6", 500, 0.95, 20, 280),
	}
	res, err := RunTimeSim(TimeSimConfig{
		Net: n, Tunnels: ts, Workload: workload,
		HorizonSec: 300, ScheduleEverySec: 60,
		TE: TEConfig{Kind: KindBATE}, Admission: AdmitBATE, Seed: 5,
		Audit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SLOReports) != res.Admitted {
		t.Fatalf("%d reports for %d admitted demands", len(res.SLOReports), res.Admitted)
	}
	byID := make(map[int]DemandOutcome)
	for _, o := range res.Outcomes {
		byID[o.ID] = o
	}
	for _, r := range res.SLOReports {
		o := byID[r.ID]
		if r.ActiveSec != o.ActiveSec || r.SatisfiedSec != o.SatisfiedSec ||
			r.Availability != o.Availability || r.Violated != o.Violated {
			t.Fatalf("auditor diverges from outcome accounting:\nreport  %+v\noutcome %+v", r, o)
		}
	}
	offline := RecomputeSLO(workload, res.SLOLog, 0.01)
	if err := CompareSLOReports(res.SLOReports, offline); err != nil {
		t.Fatalf("offline recomputation gate failed: %v", err)
	}
}

// Satellite regression: a demand whose whole lifetime falls between
// two ticks must not be activated, hold capacity, or be charged a
// phantom active second (previously it got ActiveSec=1 for a second
// entirely outside [Start, End)).
func TestTimeSimExpiredOnArrival(t *testing.T) {
	n, ts := testbedSetup(t)
	workload := []*demand.Demand{
		mkDemand(t, n, 0, "DC1", "DC3", 400, 0.95, 0, 100),
		mkDemand(t, n, 1, "DC1", "DC4", 300, 0.99, 5.2, 5.9), // sub-tick lifetime
	}
	res, err := RunTimeSim(TimeSimConfig{
		Net: n, Tunnels: ts, Workload: workload,
		HorizonSec: 100, TE: TEConfig{Kind: KindBATE},
		Admission: AdmitBATE, Seed: 3, Audit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpiredOnArrival != 1 {
		t.Fatalf("ExpiredOnArrival = %d, want 1", res.ExpiredOnArrival)
	}
	if res.Arrived != 2 {
		t.Fatalf("arrived %d", res.Arrived)
	}
	for _, o := range res.Outcomes {
		if o.ID != 1 {
			continue
		}
		if o.Admitted || o.ActiveSec != 0 || o.Violated {
			t.Fatalf("expired-on-arrival demand was activated: %+v", o)
		}
	}
	for _, r := range res.SLOReports {
		if r.ID == 1 {
			t.Fatalf("expired-on-arrival demand reached the auditor: %+v", r)
		}
	}
}

// The event simulator gets the same guard.
func TestEventSimExpiredOnArrival(t *testing.T) {
	n, ts := testbedSetup(t)
	dead := mkDemand(t, n, 1, "DC1", "DC4", 300, 0.99, 50, 50) // End == Start
	workload := []*demand.Demand{
		mkDemand(t, n, 0, "DC1", "DC3", 400, 0.95, 0, 400),
		dead,
	}
	res, err := RunEventSim(EventSimConfig{
		Net: n, Tunnels: ts, Workload: workload,
		HorizonSec: 400, ScheduleEverySec: 100,
		TE: TEConfig{Kind: KindBATE}, Admission: AdmitBATE, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpiredOnArrival != 1 {
		t.Fatalf("ExpiredOnArrival = %d, want 1", res.ExpiredOnArrival)
	}
	if res.Admitted+res.Rejected+res.ExpiredOnArrival != res.Arrived {
		t.Fatalf("accounting: admitted %d + rejected %d + expired %d != arrived %d",
			res.Admitted, res.Rejected, res.ExpiredOnArrival, res.Arrived)
	}
}

// Satellite regression: a demand departing mid-outage is charged
// exactly the outage seconds inside its lifetime — the downUntil
// repair time extending past d.End must not leak accounting beyond
// the departure, and the auditor must attribute the misses to the
// outage even after the TE reaction zeroes dead-tunnel rates.
func TestTimeSimDepartureMidOutage(t *testing.T) {
	// Single-link topology with failures disabled: the only failure is
	// the scripted one.
	n := topo.NewBuilder("line").AddLink("a", "b", 1000, 0).MustBuild()
	ts := routing.Compute(n, routing.KShortest, 1)
	a0, _ := n.NodeByName("a")
	b0, _ := n.NodeByName("b")
	d := &demand.Demand{
		ID: 0, Pairs: []demand.PairDemand{{Src: a0, Dst: b0, Bandwidth: 400}},
		Target: 0.95, Start: 0, End: 95.5, Charge: 100, RefundFrac: 0.25,
	}
	link, _ := n.LinkBetween(a0, b0)
	res, err := RunTimeSim(TimeSimConfig{
		Net: n, Tunnels: ts, Workload: []*demand.Demand{d},
		HorizonSec: 150, ScheduleEverySec: 60,
		TE: TEConfig{Kind: KindBATE}, DisableRecovery: true,
		Admission: AdmitNone, Seed: 1, Audit: true,
		// Outage 90..200: covers the demand's last six active seconds
		// (90..95) and repairs long after it departs at End=95.5.
		Trace: []FailureEvent{{Link: link.ID, DownAt: 90, UpAt: 200}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes: %+v", res.Outcomes)
	}
	o := res.Outcomes[0]
	if o.ActiveSec != 96 {
		t.Fatalf("ActiveSec = %d, want 96 (seconds 0..95)", o.ActiveSec)
	}
	if o.SatisfiedSec != 90 {
		t.Fatalf("SatisfiedSec = %d, want 90 (outage covers 90..95)", o.SatisfiedSec)
	}
	if want := 90.0 / 96.0; o.Availability != want {
		t.Fatalf("availability %v, want %v", o.Availability, want)
	}
	if !o.Violated {
		t.Fatal("0.9375 availability must violate the 0.95 target")
	}
	if len(res.SLOReports) != 1 {
		t.Fatalf("reports: %+v", res.SLOReports)
	}
	r := res.SLOReports[0]
	if r.Cause != CauseOutage || r.UnsatOutage != 6 || r.UnsatCongestion+r.UnsatShed != 0 {
		t.Fatalf("outage misattributed: %+v", r)
	}
	if want := 0.25 * 100; math.Abs(r.RefundDue-want) > 1e-9 {
		t.Fatalf("refund %v, want %v", r.RefundDue, want)
	}
	if err := CompareSLOReports(res.SLOReports, RecomputeSLO([]*demand.Demand{d}, res.SLOLog, 0.01)); err != nil {
		t.Fatalf("offline gate: %v", err)
	}
}
