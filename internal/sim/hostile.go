package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"bate/internal/chaos"
	"bate/internal/demand"
	"bate/internal/routing"
	"bate/internal/scenario"
	"bate/internal/topo"
)

// Hostile scenario presets: named adversarial (workload, failure
// schedule) combinations for the scenario engine. Each family stresses
// one assumption the paper's benign evaluation setup leaves untested —
// homogeneous Poisson arrivals, independent single-link failures, no
// planned work — and "hostile" combines all of them. Every preset is a
// pure function of (name, net, horizon, seed), so the same arguments
// replay the identical scenario.

// ScenarioFamilies lists the built-in hostile scenario presets in
// display order.
func ScenarioFamilies() []string {
	return []string{"diurnal", "flashcrowd", "tenants", "storm", "regional", "maintenance", "hostile"}
}

// HostileScenario is one assembled adversarial scenario.
type HostileScenario struct {
	Name       string
	Net        *topo.Network
	HorizonSec float64
	Seed       int64
	Workload   []*demand.Demand
	// Schedule carries the correlated-failure model: scripted outages,
	// shared-risk groups, storms and maintenance windows.
	Schedule *Schedule
}

// baseSpec is the benign Poisson layer every family modulates.
func baseSpec(horizon float64) demand.WorkloadSpec {
	return demand.WorkloadSpec{Base: demand.GeneratorConfig{
		ArrivalsPerMinute: 0.2,
		MeanDurationSec:   horizon / 3,
		MinBandwidth:      10, MaxBandwidth: 50,
		Targets: demand.TestbedTargets,
	}}
}

// BuildHostileScenario assembles a named preset over net. The horizon
// plays the role of one compressed day for the workload shapes; see
// ScenarioFamilies for valid names.
func BuildHostileScenario(name string, net *topo.Network, horizonSec float64, seed int64) (*HostileScenario, error) {
	if horizonSec <= 0 {
		return nil, fmt.Errorf("sim: scenario horizon %v must be positive", horizonSec)
	}
	spec := baseSpec(horizonSec)
	sched := &Schedule{}
	switch name {
	case "diurnal":
		spec.Diurnal = &demand.DiurnalSpec{PeriodSec: horizonSec, Peak: 2.5, Trough: 0.2}
	case "flashcrowd":
		spec.FlashCrowds = []demand.FlashCrowd{
			{AtSec: 0.3 * horizonSec, DurationSec: 0.15 * horizonSec, Multiplier: 4, HotPairs: 4, DurationFactor: 0.5},
			{AtSec: 0.7 * horizonSec, DurationSec: 0.1 * horizonSec, Multiplier: 3},
		}
	case "tenants":
		spec.Tenants = tenantMix()
	case "storm":
		sched.Groups = conduitGroups(net, 3, 0.0005)
		sched.Storms = stormsFor(sched.Groups, chaos.SRLGStorms(seed, len(sched.Groups), horizonSec, 6))
	case "regional":
		sched.Groups = regionGroups(net, 3, 0.0002)
		sched.Storms = stormsFor(sched.Groups, chaos.RegionalDisasters(seed, len(sched.Groups), horizonSec, 3))
	case "maintenance":
		sched.Maintenance = maintenancePlan(net, horizonSec)
	case "hostile":
		spec.Diurnal = &demand.DiurnalSpec{PeriodSec: horizonSec, Peak: 2.5, Trough: 0.2}
		spec.FlashCrowds = []demand.FlashCrowd{
			{AtSec: 0.3 * horizonSec, DurationSec: 0.15 * horizonSec, Multiplier: 4, HotPairs: 4, DurationFactor: 0.5},
		}
		spec.Tenants = tenantMix()
		sched.Groups = conduitGroups(net, 3, 0.0005)
		sched.Storms = stormsFor(sched.Groups, chaos.SRLGStorms(seed, len(sched.Groups), horizonSec, 4))
		sched.Maintenance = maintenancePlan(net, horizonSec)
	default:
		return nil, fmt.Errorf("sim: unknown scenario %q (families: %v)", name, ScenarioFamilies())
	}
	workload, err := demand.GenerateWorkload(net, spec, rand.New(rand.NewSource(seed)), horizonSec)
	if err != nil {
		return nil, err
	}
	return &HostileScenario{
		Name: name, Net: net, HorizonSec: horizonSec, Seed: seed,
		Workload: workload, Schedule: sched,
	}, nil
}

// SimConfig assembles the per-second simulation config that runs the
// scenario with the SLO auditor armed and the scheduler aware of the
// correlated failure model. Maintenance windows ride through
// cfg.Maintenance (drain lead + scripted outage), so the trace holds
// only the scripted and storm events.
func (h *HostileScenario) SimConfig(tunnels *routing.TunnelSet) TimeSimConfig {
	noMaint := *h.Schedule
	noMaint.Maintenance = nil
	return TimeSimConfig{
		Net: h.Net, Tunnels: tunnels, Workload: h.Workload,
		HorizonSec: h.HorizonSec, ScheduleEverySec: 60,
		TE:          TEConfig{Kind: KindBATE, Groups: h.Schedule.Groups},
		Admission:   AdmitBATE,
		Seed:        h.Seed,
		Trace:       noMaint.AllEvents(),
		RiskGroups:  h.Schedule.Groups,
		Maintenance: h.Schedule.Maintenance,
		Audit:       true,
	}
}

// tenantMix is the three-class multi-tenant workload: bulk transfers
// with loose targets, a standard tier, and a premium tier whose high
// targets and refunds concentrate the SLO exposure.
func tenantMix() []demand.TenantSpec {
	return []demand.TenantSpec{
		{Name: "bulk", Weight: 0.5, Targets: []float64{0.9, 0.95},
			BandwidthScale: 1.5, Refunds: []demand.RefundChoice{{Service: "bulk", Frac: 0.05}}},
		{Name: "standard", Weight: 0.3},
		{Name: "premium", Weight: 0.2, Targets: []float64{0.999, 0.9999},
			Refunds: []demand.RefundChoice{{Service: "premium", Frac: 0.5}}},
	}
}

// conduitGroups builds one shared-risk group per chosen node: every
// link touching the node shares its conduit and fails together. Nodes
// are chosen deterministically — the k nodes with the most incident
// links, ties broken by id — so the same topology always yields the
// same groups.
func conduitGroups(net *topo.Network, k int, prob float64) []scenario.RiskGroup {
	type nodeDeg struct {
		node topo.NodeID
		deg  int
	}
	deg := make([]nodeDeg, net.NumNodes())
	for i := range deg {
		deg[i].node = topo.NodeID(i)
	}
	for _, l := range net.Links() {
		deg[l.Src].deg++
		deg[l.Dst].deg++
	}
	sort.SliceStable(deg, func(i, j int) bool { return deg[i].deg > deg[j].deg })
	if k > len(deg) {
		k = len(deg)
	}
	var out []scenario.RiskGroup
	for _, nd := range deg[:k] {
		g := scenario.RiskGroup{Name: "conduit-" + net.NodeName(nd.node), Prob: prob}
		for _, l := range net.Links() {
			if l.Src == nd.node || l.Dst == nd.node {
				g.Links = append(g.Links, l.ID)
			}
		}
		if len(g.Links) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// regionGroups partitions the nodes into k contiguous-id regions and
// groups every link touching a region: a regional disaster takes the
// whole group down.
func regionGroups(net *topo.Network, k int, prob float64) []scenario.RiskGroup {
	n := net.NumNodes()
	if k > n {
		k = n
	}
	region := func(v topo.NodeID) int { return int(v) * k / n }
	out := make([]scenario.RiskGroup, k)
	for r := 0; r < k; r++ {
		out[r] = scenario.RiskGroup{Name: fmt.Sprintf("region-%d", r), Prob: prob}
	}
	for _, l := range net.Links() {
		rs := region(l.Src)
		out[rs].Links = append(out[rs].Links, l.ID)
		if rd := region(l.Dst); rd != rs {
			out[rd].Links = append(out[rd].Links, l.ID)
		}
	}
	kept := out[:0]
	for _, g := range out {
		if len(g.Links) > 0 {
			kept = append(kept, g)
		}
	}
	return kept
}

// GenerateSRLGStorms lays n seeded SRLG storms over the given risk
// groups — the -srlg-storm path that turns a static SRLG inventory
// into a correlated-failure storm schedule.
func GenerateSRLGStorms(groups []scenario.RiskGroup, seed int64, horizonSec float64, n int) []Storm {
	return stormsFor(groups, chaos.SRLGStorms(seed, len(groups), horizonSec, n))
}

// stormsFor maps index-based chaos group outages onto named storms.
func stormsFor(groups []scenario.RiskGroup, outages []chaos.GroupOutage) []Storm {
	var out []Storm
	for _, o := range outages {
		if o.Group < 0 || o.Group >= len(groups) || o.UpAt <= o.DownAt {
			continue
		}
		out = append(out, Storm{Group: groups[o.Group].Name, AtSec: o.DownAt, DurationSec: o.UpAt - o.DownAt})
	}
	return out
}

// maintenancePlan schedules planned windows on the two failure-
// heaviest links (the ones an operator would actually service), in
// the middle and late thirds of the horizon, each with a drain lead of
// 5% of the horizon.
func maintenancePlan(net *topo.Network, horizon float64) []MaintenanceWindow {
	links := append([]topo.Link(nil), net.Links()...)
	sort.SliceStable(links, func(i, j int) bool {
		if links[i].FailProb != links[j].FailProb {
			return links[i].FailProb > links[j].FailProb
		}
		return links[i].ID < links[j].ID
	})
	lead := 0.05 * horizon
	var out []MaintenanceWindow
	if len(links) > 0 {
		out = append(out, MaintenanceWindow{Link: links[0].ID, StartSec: 0.4 * horizon, EndSec: 0.5 * horizon, LeadSec: lead})
	}
	if len(links) > 1 {
		out = append(out, MaintenanceWindow{Link: links[1].ID, StartSec: 0.7 * horizon, EndSec: 0.8 * horizon, LeadSec: lead})
	}
	return out
}
