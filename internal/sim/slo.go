package sim

import (
	"fmt"
	"math"
	"sort"

	"bate/internal/demand"
	"bate/internal/metrics"
	"bate/internal/pricing"
)

// The SLO auditor watches every admitted demand's achieved
// availability against its contract (b_d, β_d) while the simulation
// runs, classifies each unsatisfied second by cause, and prices the
// resulting refund exposure. It exists to answer the operator question
// the aggregate satisfaction ratio hides: which demands are we
// failing, why, and what will it cost us.
//
// Every observation the online auditor consumes is also retained as a
// raw record, and RecomputeSLO re-derives the full violation set from
// those records alone with independently written logic. A run is only
// trusted when the two agree (CompareSLOReports): an online tally that
// misses a violation the offline pass finds means the auditor itself
// is broken — the zero-unnoticed-violations gate of the hostile soak.

// Auditor metrics, exported through the standard registry.
var (
	mSLOAudited    = metrics.NewCounter("slo.audited_demands")
	mSLOViolations = metrics.NewCounter("slo.violations")
	mSLOOutage     = metrics.NewCounter("slo.violations_outage")
	mSLOCongestion = metrics.NewCounter("slo.violations_congestion")
	mSLOShed       = metrics.NewCounter("slo.violations_shed")
	mSLOUnsatSec   = metrics.NewCounter("slo.unsat_seconds")
	mSLORefund     = metrics.NewCounter("slo.refund_exposure")
)

// PairSecond is one second of one demand pair as seen by the delivery
// model: Offered is the send rate including dead tunnels, Dead the
// portion sent into dead tunnels, Delivered what survived loss and
// congestion throttling.
type PairSecond struct {
	Offered   float64
	Dead      float64
	Delivered float64
	// PathDown reports that at least one tunnel of the pair was down
	// this second. Once the TE reaction moves traffic off dead tunnels
	// Dead reads zero, and PathDown is what still attributes the miss
	// to the outage rather than to scheduling shed.
	PathDown bool
}

// ViolationCause classifies why a second (or, dominantly, a demand)
// missed its bandwidth contract.
type ViolationCause int8

const (
	// CauseNone: no unsatisfied seconds.
	CauseNone ViolationCause = iota
	// CauseOutage: traffic was lost on dead tunnels — a (possibly
	// correlated) failure the allocation did not absorb.
	CauseOutage
	// CauseCongestion: enough was offered, but an oversubscribed link
	// throttled it — the capacity-unaware-rescaling failure mode.
	CauseCongestion
	// CauseShed: the scheduler offered less than the contract in the
	// first place — admission overcommitted or the LP sacrificed the
	// demand.
	CauseShed
)

func (c ViolationCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseOutage:
		return "outage"
	case CauseCongestion:
		return "congestion"
	case CauseShed:
		return "shed"
	}
	return "unknown"
}

// classifySecond applies the per-second contract: the second is
// satisfied iff every pair delivered at least Bandwidth·tolMul
// (tolMul = 1 - tolerance). For an unsatisfied second the cause is
// the most severe one across failing pairs: dead-tunnel loss or a
// down path is an outage; otherwise a pair that was offered enough
// but delivered short is congestion; otherwise the pair was shed.
func classifySecond(d *demand.Demand, pairs []PairSecond, tolMul float64) (bool, ViolationCause) {
	ok := true
	cause := CauseNone
	for pi, pr := range d.Pairs {
		if pr.Bandwidth <= 0 {
			continue
		}
		var ps PairSecond
		if pi < len(pairs) {
			ps = pairs[pi]
		}
		need := pr.Bandwidth * tolMul
		if ps.Delivered >= need {
			continue
		}
		ok = false
		var c ViolationCause
		switch {
		case ps.Dead > 0 || ps.PathDown:
			c = CauseOutage
		case ps.Offered >= need:
			c = CauseCongestion
		default:
			c = CauseShed
		}
		if cause == CauseNone || c < cause {
			cause = c
		}
	}
	return ok, cause
}

// SLOObservation is one audited demand-second: the raw record the
// offline recomputation replays.
type SLOObservation struct {
	Demand int
	Pairs  []PairSecond
}

// SLOReport is the per-demand audit verdict.
type SLOReport struct {
	ID         int
	Target     float64
	Charge     float64
	RefundFrac float64
	ActiveSec  int
	// SatisfiedSec counts seconds meeting the per-second contract.
	SatisfiedSec int
	// UnsatOutage/UnsatCongestion/UnsatShed split the unsatisfied
	// seconds by cause.
	UnsatOutage, UnsatCongestion, UnsatShed int
	// Availability is SatisfiedSec/ActiveSec.
	Availability float64
	// Violated reports Availability < Target for a guaranteed demand.
	Violated bool
	// Cause is the dominant cause over unsatisfied seconds (ties break
	// toward the more severe cause: outage > congestion > shed).
	Cause ViolationCause
	// RefundDue is the §3.4 refund μ_d·g_d owed if Violated.
	RefundDue float64
}

// finalize derives the verdict fields from the tallies.
func (r *SLOReport) finalize() {
	if r.ActiveSec > 0 {
		r.Availability = float64(r.SatisfiedSec) / float64(r.ActiveSec)
	}
	r.Violated = r.Target > 0 && r.ActiveSec > 0 && r.Availability < r.Target
	r.Cause = CauseNone
	best := 0
	for _, c := range []struct {
		cause ViolationCause
		n     int
	}{{CauseOutage, r.UnsatOutage}, {CauseCongestion, r.UnsatCongestion}, {CauseShed, r.UnsatShed}} {
		if c.n > best {
			best = c.n
			r.Cause = c.cause
		}
	}
	r.RefundDue = r.Charge - pricing.Profit(r.Charge, r.RefundFrac, r.Violated)
}

// SLOAuditor tracks achieved availability online. Not safe for
// concurrent use; the simulators drive it from their single loop.
type SLOAuditor struct {
	tolMul    float64
	states    map[int]*SLOReport
	order     []int
	log       []SLOObservation
	finalized bool
}

// NewSLOAuditor returns an auditor with the simulation's satisfied-
// second tolerance (e.g. 0.01: a second counts when delivered ≥
// 0.99·b).
func NewSLOAuditor(tolerance float64) *SLOAuditor {
	if tolerance <= 0 {
		tolerance = 0.01
	}
	return &SLOAuditor{tolMul: 1 - tolerance, states: make(map[int]*SLOReport)}
}

// Track registers an admitted demand, so demands with zero active
// seconds still appear in the reports.
func (a *SLOAuditor) Track(d *demand.Demand) {
	if _, ok := a.states[d.ID]; ok {
		return
	}
	a.states[d.ID] = &SLOReport{ID: d.ID, Target: d.Target, Charge: d.Charge, RefundFrac: d.RefundFrac}
	a.order = append(a.order, d.ID)
}

// Observe records one active second of demand d. pairs follows
// d.Pairs indexing; a nil/short slice reads as zero delivery.
func (a *SLOAuditor) Observe(d *demand.Demand, pairs []PairSecond) {
	a.Track(d)
	st := a.states[d.ID]
	st.ActiveSec++
	cp := append([]PairSecond(nil), pairs...)
	a.log = append(a.log, SLOObservation{Demand: d.ID, Pairs: cp})
	ok, cause := classifySecond(d, pairs, a.tolMul)
	if ok {
		st.SatisfiedSec++
		return
	}
	switch cause {
	case CauseOutage:
		st.UnsatOutage++
	case CauseCongestion:
		st.UnsatCongestion++
	case CauseShed:
		st.UnsatShed++
	}
}

// Log returns the raw observation stream (for offline recomputation).
func (a *SLOAuditor) Log() []SLOObservation { return a.log }

// Reports finalizes and returns the per-demand verdicts in admission
// order. The first call exports the slo.* metrics; later calls only
// recompute the reports.
func (a *SLOAuditor) Reports() []SLOReport {
	out := make([]SLOReport, 0, len(a.order))
	for _, id := range a.order {
		st := a.states[id]
		st.finalize()
		out = append(out, *st)
	}
	if !a.finalized {
		a.finalized = true
		exposure := 0.0
		for _, r := range out {
			mSLOAudited.Inc()
			mSLOUnsatSec.Add(int64(r.UnsatOutage + r.UnsatCongestion + r.UnsatShed))
			if !r.Violated {
				continue
			}
			mSLOViolations.Inc()
			exposure += r.RefundDue
			switch r.Cause {
			case CauseOutage:
				mSLOOutage.Inc()
			case CauseCongestion:
				mSLOCongestion.Inc()
			case CauseShed:
				mSLOShed.Inc()
			}
		}
		mSLORefund.Add(int64(math.Round(exposure)))
	}
	return out
}

// RefundExposure sums the refunds owed across violated demands.
func RefundExposure(reports []SLOReport) float64 {
	total := 0.0
	for _, r := range reports {
		total += r.RefundDue
	}
	return total
}

// RecomputeSLO is the offline ground truth: it rebuilds every report
// from the raw observation log and the demand contracts alone,
// sharing no tallies with the online auditor. Deliberately
// re-implemented (not calling the auditor's incremental path) so a
// bookkeeping bug there cannot hide from the comparison.
func RecomputeSLO(workload []*demand.Demand, log []SLOObservation, tolerance float64) []SLOReport {
	if tolerance <= 0 {
		tolerance = 0.01
	}
	tolMul := 1 - tolerance
	byID := make(map[int]*demand.Demand, len(workload))
	for _, d := range workload {
		byID[d.ID] = d
	}
	states := make(map[int]*SLOReport)
	var order []int
	for _, ob := range log {
		d := byID[ob.Demand]
		if d == nil {
			continue
		}
		st := states[ob.Demand]
		if st == nil {
			st = &SLOReport{ID: d.ID, Target: d.Target, Charge: d.Charge, RefundFrac: d.RefundFrac}
			states[ob.Demand] = st
			order = append(order, ob.Demand)
		}
		st.ActiveSec++
		// Independent per-second evaluation: worst failing pair wins.
		satisfied := true
		worst := CauseNone
		for pi, pr := range d.Pairs {
			if pr.Bandwidth <= 0 {
				continue
			}
			var ps PairSecond
			if pi < len(ob.Pairs) {
				ps = ob.Pairs[pi]
			}
			if ps.Delivered >= pr.Bandwidth*tolMul {
				continue
			}
			satisfied = false
			c := CauseShed
			if ps.Dead > 0 || ps.PathDown {
				c = CauseOutage
			} else if ps.Offered >= pr.Bandwidth*tolMul {
				c = CauseCongestion
			}
			if worst == CauseNone || c < worst {
				worst = c
			}
		}
		if satisfied {
			st.SatisfiedSec++
		} else {
			switch worst {
			case CauseOutage:
				st.UnsatOutage++
			case CauseCongestion:
				st.UnsatCongestion++
			case CauseShed:
				st.UnsatShed++
			}
		}
	}
	sort.Ints(order)
	out := make([]SLOReport, 0, len(order))
	for _, id := range order {
		st := states[id]
		st.finalize()
		out = append(out, *st)
	}
	return out
}

// CompareSLOReports checks the online auditor against the offline
// ground truth. It returns an error naming the first unnoticed
// violation (offline says violated, online did not), phantom violation
// (the reverse), or tally divergence. Demands the offline pass never
// saw (zero active seconds) are ignored — they carry no observations
// to disagree about.
func CompareSLOReports(online, offline []SLOReport) error {
	onlineByID := make(map[int]SLOReport, len(online))
	for _, r := range online {
		onlineByID[r.ID] = r
	}
	for _, truth := range offline {
		got, ok := onlineByID[truth.ID]
		if !ok {
			return fmt.Errorf("sim: slo audit missed demand %d entirely (offline: violated=%v)", truth.ID, truth.Violated)
		}
		if truth.Violated && !got.Violated {
			return fmt.Errorf("sim: unnoticed SLO violation for demand %d: offline availability %.6f < target %.6f, online reported %.6f",
				truth.ID, truth.Availability, truth.Target, got.Availability)
		}
		if !truth.Violated && got.Violated {
			return fmt.Errorf("sim: phantom SLO violation for demand %d: online availability %.6f, offline %.6f (target %.6f)",
				truth.ID, got.Availability, truth.Availability, truth.Target)
		}
		if got.ActiveSec != truth.ActiveSec || got.SatisfiedSec != truth.SatisfiedSec ||
			got.UnsatOutage != truth.UnsatOutage || got.UnsatCongestion != truth.UnsatCongestion ||
			got.UnsatShed != truth.UnsatShed || got.Cause != truth.Cause {
			return fmt.Errorf("sim: slo tallies diverge for demand %d:\nonline  %+v\noffline %+v", truth.ID, got, truth)
		}
	}
	return nil
}
