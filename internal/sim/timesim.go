package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/demand"
	"bate/internal/pricing"
	"bate/internal/routing"
	"bate/internal/scenario"
	"bate/internal/topo"
)

// AdmissionMode selects the admission-control strategy a simulation
// applies to arriving demands.
type AdmissionMode int8

// Admission modes compared in Figs. 7(a) and 12.
const (
	// AdmitNone disables admission control: every demand becomes
	// active (the Fig. 13 setting for baseline TE schemes).
	AdmitNone AdmissionMode = iota
	// AdmitFixedOnly is step (1) only: admit iff the remaining
	// capacity satisfies the demand with allocations held fixed.
	AdmitFixedOnly
	// AdmitBATE is the full §3.2 strategy: fixed check, then the
	// Algorithm 1 conjecture.
	AdmitBATE
	// AdmitOptimal solves the Appendix A MILP per arrival.
	AdmitOptimal
)

func (m AdmissionMode) String() string {
	switch m {
	case AdmitNone:
		return "None"
	case AdmitFixedOnly:
		return "Fixed"
	case AdmitBATE:
		return "BATE"
	case AdmitOptimal:
		return "OPT"
	}
	return "unknown"
}

// TimeSimConfig drives the per-second testbed-style simulation (§5.1).
type TimeSimConfig struct {
	Net     *topo.Network
	Tunnels *routing.TunnelSet
	// Workload is the time-ordered demand arrivals (IDs must be dense
	// and unique).
	Workload []*demand.Demand
	// HorizonSec is the simulated duration.
	HorizonSec float64
	// ScheduleEverySec is the traffic-scheduling period (testbed: 60).
	ScheduleEverySec float64
	// RepairSec is the link repair time x (default 3; Fig. 20 sweeps
	// 0.5..4).
	RepairSec float64
	TE        TEConfig
	Admission AdmissionMode
	// MaxFail is the pruning depth used by admission.
	MaxFail int
	// Tolerance is the satisfied-second threshold: a second counts as
	// satisfied when delivered ≥ (1-Tolerance)·b (paper: 1%).
	Tolerance float64
	Seed      int64
	// DisableRecovery turns off BATE's backup-based failure reaction
	// (the BATE-TS variant of Fig. 9).
	DisableRecovery bool
	// Trace pre-loads scripted link outages replayed on top of (or,
	// with zero failure probabilities, instead of) the Bernoulli
	// failure process.
	Trace []FailureEvent
	// RiskGroups arms correlated whole-group failures: groups with
	// Prob > 0 fire in the injector every second, and all groups flow
	// into TE.Groups is the caller's choice (set TE.Groups to make the
	// scheduler correlation-aware too).
	RiskGroups []scenario.RiskGroup
	// Maintenance schedules planned windows: each link is reported as
	// drained (zero capacity) from StartSec-LeadSec — forcing an
	// immediate reschedule that routes traffic off it — and is down
	// during [StartSec, EndSec).
	Maintenance []MaintenanceWindow
	// Audit attaches the online SLO auditor: per-demand achieved
	// availability, violation causes and refund exposure appear in
	// TimeSimResult.SLOReports, with the raw per-second observations in
	// SLOLog for offline recomputation.
	Audit bool
}

func (c TimeSimConfig) defaults() TimeSimConfig {
	if c.HorizonSec <= 0 {
		c.HorizonSec = 600
	}
	if c.ScheduleEverySec <= 0 {
		c.ScheduleEverySec = 60
	}
	if c.RepairSec <= 0 {
		c.RepairSec = 3
	}
	if c.MaxFail <= 0 {
		c.MaxFail = 2
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.01
	}
	c.TE = c.TE.Defaults()
	return c
}

// DemandOutcome summarizes one demand at the end of a simulation.
type DemandOutcome struct {
	ID         int
	Target     float64
	Charge     float64
	RefundFrac float64
	Admitted   bool
	Method     bate.AdmissionMethod
	ActiveSec  int
	// SatisfiedSec counts seconds with full (within tolerance)
	// delivery on every pair.
	SatisfiedSec int
	// Availability is SatisfiedSec/ActiveSec.
	Availability float64
	// Violated reports Availability < Target.
	Violated bool
	// Profit is the post-refund revenue r_d.
	Profit float64
}

// TimeSimResult aggregates a run.
type TimeSimResult struct {
	Outcomes  []DemandOutcome
	Arrived   int
	Admitted  int
	Rejected  int
	ByMethod  map[bate.AdmissionMethod]int
	FailCount []int // per link (Fig. 10)
	// LossRatio is lost/offered traffic over the run (Fig. 11).
	LossRatio float64
	// BwRatios samples min-pair allocated/demanded per admitted demand
	// per scheduling epoch (Fig. 8).
	BwRatios []float64
	// AdmissionDelaysSec records wall-clock admission latency.
	AdmissionDelaysSec []float64
	// UtilSamples records mean link utilization at scheduling epochs.
	UtilSamples []float64
	// Profit and FullCharge give the run's revenue after refunds and
	// the theoretical maximum.
	Profit     float64
	FullCharge float64
	// ExpiredOnArrival counts demands whose whole lifetime fell between
	// two simulation ticks: they arrive already expired and are never
	// activated (no capacity held, no phantom active second).
	ExpiredOnArrival int
	// SLOReports/SLOLog are filled when TimeSimConfig.Audit is set.
	SLOReports []SLOReport
	SLOLog     []SLOObservation
}

// SatisfactionRatio returns the fraction of admitted demands meeting
// their availability target over their lifetime.
func (r *TimeSimResult) SatisfactionRatio() float64 {
	total, ok := 0, 0
	for _, o := range r.Outcomes {
		if !o.Admitted || o.ActiveSec == 0 {
			continue
		}
		total++
		if !o.Violated {
			ok++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// RunTimeSim executes the per-second simulation.
func RunTimeSim(cfg TimeSimConfig) (*TimeSimResult, error) {
	cfg = cfg.defaults()
	if cfg.TE.Kind == KindBATE && cfg.TE.Scheduler == nil {
		// One basis cache for the whole run: consecutive scheduling
		// epochs differ by a handful of arrivals/departures, so each
		// epoch warm-starts from the previous optimal basis whenever the
		// LP shape is unchanged.
		cfg.TE.Scheduler = bate.NewScheduler()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	injector := NewFailureInjector(cfg.Net, cfg.RepairSec, rng)
	if len(cfg.Trace) > 0 {
		injector.ApplyTrace(cfg.Trace)
	}
	for _, g := range cfg.RiskGroups {
		if g.Prob > 0 {
			injector.AddRiskGroup(g.Links, g.Prob)
		}
	}
	if len(cfg.Maintenance) > 0 {
		// The planned outage itself is a scripted trace event; the
		// proactive drain is handled in the main loop.
		events := make([]FailureEvent, 0, len(cfg.Maintenance))
		for _, m := range cfg.Maintenance {
			events = append(events, FailureEvent{Link: m.Link, DownAt: m.StartSec, UpAt: m.EndSec})
		}
		injector.ApplyTrace(events)
	}
	var auditor *SLOAuditor
	if cfg.Audit {
		auditor = NewSLOAuditor(cfg.Tolerance)
	}

	// Sort workload by start time.
	workload := append([]*demand.Demand(nil), cfg.Workload...)
	sort.Slice(workload, func(i, j int) bool { return workload[i].Start < workload[j].Start })

	res := &TimeSimResult{ByMethod: make(map[bate.AdmissionMethod]int)}
	outcomes := make(map[int]*DemandOutcome)

	var active []*demand.Demand
	var drained []topo.LinkID
	input := func() *alloc.Input {
		return &alloc.Input{Net: cfg.Net, Tunnels: cfg.Tunnels, Demands: active, Drained: drained}
	}
	// drainSet lists the links inside a maintenance drain window
	// (lead-in through end) at time now, in cfg.Maintenance order.
	drainSet := func(now float64) []topo.LinkID {
		var out []topo.LinkID
		for _, m := range cfg.Maintenance {
			if now >= m.StartSec-m.LeadSec && now < m.EndSec {
				out = append(out, m.Link)
			}
		}
		return out
	}
	sameLinks := func(a, b []topo.LinkID) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	current := alloc.Allocation{} // scheduled allocation
	var backups map[topo.LinkID]*bate.RecoveryResult
	rates := sendRates{}
	nextArrival := 0
	var offeredTotal, lostTotal float64

	reschedule := func() error {
		in := input()
		a, err := cfg.TE.Allocate(in)
		if err != nil {
			return fmt.Errorf("sim: reschedule: %w", err)
		}
		current = a
		if cfg.TE.Kind == KindBATE && !cfg.DisableRecovery {
			// Backups are precomputed lazily: the first failure of a
			// link in this epoch computes and caches its backup
			// (equivalent to the §3.4 precomputation for the links
			// that matter, without paying for the rest).
			backups = make(map[topo.LinkID]*bate.RecoveryResult)
		}
		rates = ratesFromAlloc(in, current, func(t routing.Tunnel) bool { return injector.TunnelUp(t) })
		// Fig. 8 samples.
		for _, d := range active {
			minRatio := 1.0
			for pi, pr := range d.Pairs {
				if pr.Bandwidth <= 0 {
					continue
				}
				r := current.AllocatedFor(d, pi) / pr.Bandwidth
				if r < minRatio {
					minRatio = r
				}
			}
			res.BwRatios = append(res.BwRatios, minRatio)
		}
		res.UtilSamples = append(res.UtilSamples, current.MeanUtilization(in))
		return nil
	}

	react := func() {
		in := input()
		down := injector.Down()
		up := func(t routing.Tunnel) bool { return injector.TunnelUp(t) }
		switch {
		case len(down) == 0:
			rates = ratesFromAlloc(in, current, up)
		case cfg.TE.Kind == KindBATE && !cfg.DisableRecovery:
			if len(down) == 1 && backups != nil {
				if backups[down[0]] == nil {
					if rec, err := bate.RecoverGreedy(in, down); err == nil {
						backups[down[0]] = rec
					}
				}
				if b := backups[down[0]]; b != nil {
					rates = ratesFromAlloc(in, b.Alloc, up)
					break
				}
			}
			if rec, err := bate.RecoverGreedy(in, down); err == nil {
				rates = ratesFromAlloc(in, rec.Alloc, up)
			} else {
				rates = ratesFromAlloc(in, current, up)
			}
		case cfg.TE.Kind == KindFFC || (cfg.TE.Kind == KindBATE && cfg.DisableRecovery):
			// No rescaling: surviving tunnels keep their allocation.
			rates = ratesFromAlloc(in, current, up)
		default:
			// Capacity-unaware proportional rescaling (congestion risk).
			rates = rescaleProportional(in, current, up)
		}
	}

	lastSchedule := -cfg.ScheduleEverySec
	for now := 0.0; now < cfg.HorizonSec; now++ {
		// Maintenance drains: when the drained set changes (a lead-in
		// begins or a window ends), force a reschedule this second so
		// traffic moves off the link before it goes down — the
		// proactive half of a planned maintenance window.
		forceReschedule := false
		if len(cfg.Maintenance) > 0 {
			if nd := drainSet(now); !sameLinks(nd, drained) {
				drained = nd
				forceReschedule = true
			}
		}

		// Departures.
		kept := active[:0]
		for _, d := range active {
			if d.End <= now {
				continue
			}
			kept = append(kept, d)
		}
		active = kept

		// Arrivals. The bookkeeping for one decision is shared between
		// the serial and batched paths.
		applyDecision := func(d *demand.Demand, adRes *bate.AdmissionResult) {
			res.Arrived++
			out := &DemandOutcome{ID: d.ID, Target: d.Target, Charge: d.Charge, RefundFrac: d.RefundFrac}
			outcomes[d.ID] = out
			res.AdmissionDelaysSec = append(res.AdmissionDelaysSec, adRes.Elapsed.Seconds())
			res.ByMethod[adRes.Method]++
			if !adRes.Admitted {
				res.Rejected++
				return
			}
			res.Admitted++
			out.Admitted = true
			out.Method = adRes.Method
			if auditor != nil {
				auditor.Track(d)
			}
			active = append(active, d)
			if adRes.NewAlloc != nil {
				current[d.ID] = adRes.NewAlloc
				rates[d.ID] = adRes.NewAlloc
			}
		}
		var arrivals []*demand.Demand
		for nextArrival < len(workload) && workload[nextArrival].Start <= now {
			d := workload[nextArrival]
			nextArrival++
			if d.End <= now {
				// The demand's whole lifetime fell between two ticks:
				// it expired before this tick, so activating it would
				// hold capacity and charge a phantom active second
				// entirely outside [Start, End). Record the arrival
				// without running admission.
				res.Arrived++
				res.ExpiredOnArrival++
				outcomes[d.ID] = &DemandOutcome{ID: d.ID, Target: d.Target, Charge: d.Charge, RefundFrac: d.RefundFrac}
				continue
			}
			arrivals = append(arrivals, d)
		}
		if cfg.Admission == AdmitBATE && len(arrivals) > 1 {
			// Same-second arrivals are admitted as one batch: candidates
			// are speculated in parallel and committed with the exact
			// decisions of the one-at-a-time loop. A conjecture admit
			// stops the batch (its temporary allocation demands an
			// immediate reschedule, §3.2 footnote 5); the remainder is
			// re-batched against the rescheduled state, exactly as the
			// serial loop would see it.
			for len(arrivals) > 0 {
				br, err := bate.AdmitBatch(input(), current, active, arrivals,
					bate.BatchOptions{MaxFail: cfg.MaxFail, StopAfterConjecture: true})
				if err != nil {
					return nil, err
				}
				conjectured := false
				for _, dec := range br.Decisions {
					applyDecision(dec.Demand, dec.Result)
					conjectured = conjectured || dec.Result.Method == bate.MethodConjecture
				}
				if conjectured {
					if err := reschedule(); err != nil {
						return nil, err
					}
					lastSchedule = now
				}
				arrivals = br.Deferred
			}
		} else {
			for _, d := range arrivals {
				adRes, err := admitOne(cfg, input(), current, active, d)
				if err != nil {
					return nil, err
				}
				applyDecision(d, adRes)
				// A conjecture admit may carry only a partial temporary
				// allocation (§3.2 footnote 5); reschedule right away so
				// the demand is not left under-served until the next
				// periodic epoch.
				if adRes.Method == bate.MethodConjecture {
					if err := reschedule(); err != nil {
						return nil, err
					}
					lastSchedule = now
				}
			}
		}

		// Periodic scheduling (or a forced drain reschedule).
		if forceReschedule || now-lastSchedule >= cfg.ScheduleEverySec {
			if err := reschedule(); err != nil {
				return nil, err
			}
			lastSchedule = now
		}

		// Failure process. Traffic already in flight on dead tunnels
		// is lost during this transient second — the accounting below
		// runs with the stale rates (dead-tunnel traffic drops), and
		// react() below installs the post-failure rates for subsequent
		// seconds. BATE's precomputed backups are the exception: §3.4
		// activates them immediately ("so that the surviving tunnels
		// can be used immediately, and packet loss can be mitigated"),
		// so its reaction applies before this second is charged.
		changed := injector.Step(now)
		instant := changed && cfg.TE.Kind == KindBATE && !cfg.DisableRecovery
		if instant {
			react()
			changed = false
		}

		// Account this second.
		in := input()
		detail, offered := deliveredThisSecond(in, rates, injector)
		offeredTotal += offered.sent
		lostTotal += offered.lost
		tol := 1 - cfg.Tolerance
		for _, d := range active {
			out := outcomes[d.ID]
			out.ActiveSec++
			if ok, _ := classifySecond(d, detail[d.ID], tol); ok {
				out.SatisfiedSec++
			}
			if auditor != nil {
				auditor.Observe(d, detail[d.ID])
			}
		}

		// Reaction to state changes applies from the next second.
		if changed {
			react()
		}
	}

	// Final accounting.
	for _, d := range workload[:nextArrival] {
		out := outcomes[d.ID]
		if out == nil {
			continue
		}
		if out.ActiveSec > 0 {
			out.Availability = float64(out.SatisfiedSec) / float64(out.ActiveSec)
		}
		if out.Admitted {
			out.Violated = d.Target > 0 && out.Availability < d.Target
			out.Profit = pricing.Profit(d.Charge, d.RefundFrac, out.Violated)
			res.Profit += out.Profit
			res.FullCharge += d.Charge
		}
		res.Outcomes = append(res.Outcomes, *out)
	}
	if offeredTotal > 0 {
		res.LossRatio = lostTotal / offeredTotal
	}
	res.FailCount = injector.FailCounts
	if auditor != nil {
		res.SLOReports = auditor.Reports()
		res.SLOLog = auditor.Log()
	}
	return res, nil
}

// admitOne dispatches the configured admission mode.
func admitOne(cfg TimeSimConfig, in *alloc.Input, current alloc.Allocation, active []*demand.Demand, d *demand.Demand) (*bate.AdmissionResult, error) {
	switch cfg.Admission {
	case AdmitNone:
		return &bate.AdmissionResult{Admitted: true, Method: "none"}, nil
	case AdmitFixedOnly:
		return bate.AdmitFixed(in, current, d, cfg.MaxFail)
	case AdmitBATE:
		return bate.Admit(in, current, active, d, cfg.MaxFail)
	case AdmitOptimal:
		res, _, err := bate.AdmitOptimal(in, active, d, minInt(cfg.MaxFail, 1))
		return res, err
	}
	return nil, fmt.Errorf("sim: unknown admission mode %d", cfg.Admission)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// secondAccounting carries the sent/lost tally of one second.
type secondAccounting struct {
	sent, lost float64
}

// deliveredThisSecond computes per-demand-pair delivery detail for the
// current second: dead-tunnel traffic is lost entirely, surviving
// traffic is throttled by link congestion. The PairSecond breakdown
// (offered / dead / delivered) is what the SLO auditor classifies
// violation causes from.
func deliveredThisSecond(in *alloc.Input, rates sendRates, injector *FailureInjector) (map[int][]PairSecond, secondAccounting) {
	// Split rates into surviving and dead portions.
	surviving := make(sendRates, len(rates))
	detail := make(map[int][]PairSecond, len(rates))
	var acct secondAccounting
	for _, d := range in.Demands {
		rows, ok := rates[d.ID]
		if !ok {
			continue
		}
		nr := make([][]float64, len(rows))
		det := make([]PairSecond, len(d.Pairs))
		for pi := range d.Pairs {
			if pi >= len(rows) {
				nr[pi] = nil
				continue
			}
			tunnels := in.TunnelsFor(d, pi)
			for ti := range tunnels {
				if !injector.TunnelUp(tunnels[ti]) {
					det[pi].PathDown = true
					break
				}
			}
			nr[pi] = make([]float64, len(rows[pi]))
			for ti, r := range rows[pi] {
				if r <= 0 {
					continue
				}
				acct.sent += r
				det[pi].Offered += r
				if injector.TunnelUp(tunnels[ti]) {
					nr[pi][ti] = r
				} else {
					det[pi].Dead += r
					acct.lost += r
				}
			}
		}
		surviving[d.ID] = nr
		detail[d.ID] = det
	}
	delivered, offered := deliveredWithCongestion(in, surviving)
	// Congestion drops count as loss too. Sum in demand order, not map
	// order: the two totals differ by ulps, and a run-to-run iteration
	// order would flip the sign of a near-zero loss.
	deliveredSum := 0.0
	for _, d := range in.Demands {
		det := detail[d.ID]
		for pi, v := range delivered[d.ID] {
			if pi < len(det) {
				det[pi].Delivered = v
			}
			deliveredSum += v
		}
	}
	acct.lost += offered - deliveredSum
	if acct.lost < 0 {
		acct.lost = 0
	}
	return detail, acct
}
