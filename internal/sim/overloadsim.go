// Overload harness: measures how the controller's admission gate
// behaves when offered load exceeds capacity. Two phases run against
// identically configured controllers: a 1x calibration phase whose
// client population matches the gate's concurrency (measuring the
// controller's sustainable goodput), and an overload phase whose
// population is Ramp× larger. The acceptance bar from the paper-style
// robustness goal: goodput under Ramp× offered load stays ≥90% of the
// calibrated capacity, survivors keep a bounded p99, and every shed
// is an explicit retry-after — lowest priority first, never a
// withdrawal.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"bate/internal/controller"
	"bate/internal/metrics"
	"bate/internal/overload"
	"bate/internal/routing"
	"bate/internal/topo"
	"bate/internal/wire"
)

// survivorP99BoundMs is the hard latency bound for admitted requests
// under overload: queue sojourn is capped by the gate's queue timeout,
// so a p99 anywhere near this bound means shedding stopped protecting
// the queue. Generous enough for loaded CI machines, far below the
// multi-second latencies an unbounded queue produces.
const survivorP99BoundMs = 500.0

// OverloadConfig parameterizes RunOverloadSim.
type OverloadConfig struct {
	// Net/Tunnels default to the paper's 6-DC testbed with 4-shortest
	// tunnels.
	Net     *topo.Network
	Tunnels *routing.TunnelSet
	// MaxInflight is the gate's base concurrency (default 4); the AIMD
	// ceiling may grow it up to the gate's default 4× headroom when
	// observed latencies stay under target.
	MaxInflight int
	// StubWork is the simulated per-admission service time (default
	// 2ms); with MaxInflight it fixes the controller's capacity at
	// roughly MaxInflight/StubWork admissions per second.
	StubWork time.Duration
	// Ramp multiplies the client population for the overload phase
	// (default 5 — the 5x scenario from the issue).
	Ramp int
	// Duration is the wall-clock length of each phase (default 2s).
	Duration time.Duration
	// ShedPriority is the least-critical priority class the gate may
	// shed (default PSubmit; PCritical is never sheddable regardless).
	ShedPriority overload.Priority
	// RetryMax is how many consecutive retry-afters a client tolerates
	// for one submission intent before abandoning it (default 8).
	// Abandonments are counted, never silent.
	RetryMax int
	// Seed makes the client op mix and backoff jitter deterministic
	// (default 1).
	Seed int64
}

// OverloadResult is one phase's client-side measurements.
type OverloadResult struct {
	Phase      string  `json:"phase"`
	Clients    int     `json:"clients"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// Offered counts submit attempts, including retries after sheds.
	Offered  int64 `json:"offered"`
	Admitted int64 `json:"admitted"`
	// Withdrawn tracks the withdraw issued for every admitted demand;
	// the two must match for the book to stay clean.
	Withdrawn   int64 `json:"withdrawn"`
	StatusPolls int64 `json:"status_polls"`
	// Shed counts explicit TypeRetryAfter replies by the priority class
	// of the request they rejected.
	ShedSubmit   int64 `json:"shed_submit"`
	ShedStatus   int64 `json:"shed_status"`
	ShedCritical int64 `json:"shed_critical"`
	// GaveUp counts submission intents abandoned after RetryMax
	// consecutive sheds.
	GaveUp int64 `json:"gave_up"`
	// GoodputPerSec is admitted demands per wall-clock second.
	GoodputPerSec float64 `json:"goodput_per_sec"`
	// P50AckMs/P99AckMs are submit→admit round-trip percentiles for
	// survivors (admitted requests only).
	P50AckMs float64 `json:"p50_ack_ms"`
	P99AckMs float64 `json:"p99_ack_ms"`
}

// OverloadBenchReport pairs the calibration and overload phases with
// the derived ratios the CI gate checks. As with WireBenchReport,
// only machine-portable quantities gate: the overload/calibration
// goodput ratio and the shed-priority invariants transfer across
// hosts; absolute rates do not.
type OverloadBenchReport struct {
	Topology    string          `json:"topology"`
	MaxInflight int             `json:"max_inflight"`
	Ramp        int             `json:"ramp"`
	Baseline    *OverloadResult `json:"baseline_1x,omitempty"`
	Overload    *OverloadResult `json:"overload,omitempty"`
	// GoodputRatio = overload-phase goodput over calibrated goodput.
	// The acceptance floor is 0.90; submit coalescing typically pushes
	// it above 1.0.
	GoodputRatio float64 `json:"goodput_ratio"`
	// SurvivorP99Ms is the overload phase's admitted-request p99.
	SurvivorP99Ms float64 `json:"survivor_p99_ms"`
	ShedTotal     int64   `json:"shed_total"`
	ShedCritical  int64   `json:"shed_critical"`
	// Gate is the overload-phase controller's gate counter snapshot —
	// the server-side view the client-side tallies must agree with.
	Gate overload.Counters `json:"gate"`
}

type overloadClientStats struct {
	offered, admitted, withdrawn, polls  int64
	shedSubmit, shedStatus, shedCritical int64
	gaveUp                               int64
	ackMs                                []float64
	err                                  error
}

// RunOverloadSim runs both phases and derives the report.
func RunOverloadSim(cfg OverloadConfig) (*OverloadBenchReport, error) {
	if cfg.Net == nil {
		cfg.Net = topo.Testbed()
		cfg.Tunnels = routing.Compute(cfg.Net, routing.KShortest, 4)
	}
	if cfg.Tunnels == nil {
		cfg.Tunnels = routing.Compute(cfg.Net, routing.KShortest, 4)
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.StubWork <= 0 {
		cfg.StubWork = 2 * time.Millisecond
	}
	if cfg.Ramp <= 1 {
		cfg.Ramp = 5
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}

	base, _, err := runOverloadPhase(cfg, "1x", cfg.MaxInflight)
	if err != nil {
		return nil, fmt.Errorf("overloadsim: calibration: %w", err)
	}
	// A closed-loop client saturates about one execution slot, and the
	// AIMD ceiling can grow capacity to ceilingFactor× the base
	// concurrency. Sizing the overload population at Ramp× the fully
	// adapted concurrency keeps offered load Ramp× over capacity even
	// after the gate has adapted, so shedding is sustained rather than
	// a ramp-up transient.
	const ceilingFactor = 4 // the gate's default MaxCeiling headroom
	over, gate, err := runOverloadPhase(cfg, fmt.Sprintf("%dx", cfg.Ramp), cfg.MaxInflight*ceilingFactor*cfg.Ramp)
	if err != nil {
		return nil, fmt.Errorf("overloadsim: overload: %w", err)
	}

	rep := &OverloadBenchReport{
		Topology:    cfg.Net.Name(),
		MaxInflight: cfg.MaxInflight,
		Ramp:        cfg.Ramp,
		Baseline:    base,
		Overload:    over,
		Gate:        gate,
	}
	if base.GoodputPerSec > 0 {
		rep.GoodputRatio = over.GoodputPerSec / base.GoodputPerSec
	}
	rep.SurvivorP99Ms = over.P99AckMs
	rep.ShedTotal = over.ShedSubmit + over.ShedStatus + over.ShedCritical
	rep.ShedCritical = over.ShedCritical + gate.ShedByPrio[overload.PCritical]
	return rep, nil
}

// runOverloadPhase starts a fresh gated controller and drives it with
// the given closed-loop client population for cfg.Duration.
func runOverloadPhase(cfg OverloadConfig, phase string, clients int) (*OverloadResult, overload.Counters, error) {
	silentf := func(string, ...interface{}) {}
	ctrl, err := controller.New(controller.Config{
		Net: cfg.Net, Tunnels: cfg.Tunnels, MaxFail: 1,
		StubAdmission: true, StubWork: cfg.StubWork, Logf: silentf,
		Overload: &overload.Options{
			// The AIMD ceiling stays enabled (default 4× headroom): under
			// overload the coalescer's amortized release latencies are what
			// let the ceiling grow, which is the mechanism that keeps
			// goodput at capacity while the queue sheds the excess.
			MaxInflight:  cfg.MaxInflight,
			QueueBound:   2 * cfg.MaxInflight,
			QueueTimeout: 25 * time.Millisecond,
			ShedPriority: cfg.ShedPriority,
		},
	})
	if err != nil {
		return nil, overload.Counters{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, overload.Counters{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	go ctrl.Serve(ctx, ln)
	addr := ln.Addr().String()

	stats := make([]overloadClientStats, clients)
	start := time.Now()
	stopAt := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := &stats[i]
			st.err = driveOverloadClient(addr, cfg, int64(i), stopAt, st)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	gate, _ := ctrl.OverloadSnapshot()
	cancel()

	res := &OverloadResult{Phase: phase, Clients: clients, ElapsedSec: elapsed.Seconds()}
	var ackMs []float64
	for i := range stats {
		st := &stats[i]
		if st.err != nil {
			return nil, gate, fmt.Errorf("client %d: %w", i, st.err)
		}
		res.Offered += st.offered
		res.Admitted += st.admitted
		res.Withdrawn += st.withdrawn
		res.StatusPolls += st.polls
		res.ShedSubmit += st.shedSubmit
		res.ShedStatus += st.shedStatus
		res.ShedCritical += st.shedCritical
		res.GaveUp += st.gaveUp
		ackMs = append(ackMs, st.ackMs...)
	}
	if res.ElapsedSec > 0 {
		res.GoodputPerSec = float64(res.Admitted) / res.ElapsedSec
	}
	if len(ackMs) > 0 {
		cdf := metrics.NewCDF(ackMs)
		res.P50AckMs = cdf.Quantile(0.5)
		res.P99AckMs = cdf.Quantile(0.99)
	}
	return res, gate, nil
}

// driveOverloadClient is one closed-loop client: mostly fresh single
// submits (each immediately withdrawn when admitted, keeping the book
// and demand-id space small), with a status poll mixed in every ninth
// op. Sheds back off by the server's hint plus seeded jitter — the
// cooperative half of the protocol.
func driveOverloadClient(addr string, cfg OverloadConfig, id int64, stopAt time.Time, st *overloadClientStats) error {
	conn, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Role: "client", Codec: wire.CodecBinary}}); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + id*104729))
	var seq uint64
	retries := 0
	for i := 0; time.Now().Before(stopAt); i++ {
		seq++
		var sent wire.Type
		if i%9 == 8 {
			sent = wire.TypeStatus
			err = conn.Send(&wire.Message{Type: wire.TypeStatus, Seq: seq})
		} else {
			sent = wire.TypeSubmit
			st.offered++
			// The deadline rides the v2 binary header; the gate tightens
			// the queue sojourn bound to it.
			err = conn.Send(&wire.Message{Type: wire.TypeSubmit, Seq: seq, DeadlineMs: 200,
				Submit: &wire.Submit{Src: "DC1", Dst: "DC2",
					Bandwidth: 10 + rng.Float64()*40, Target: 0.99, Charge: 10, RefundFrac: 0.5}})
		}
		if err != nil {
			return err
		}
		t0 := time.Now()
		reply, err := conn.Recv()
		if err != nil {
			return err
		}
		if reply.Seq != seq {
			return fmt.Errorf("reply seq %d for request %d", reply.Seq, seq)
		}
		switch reply.Type {
		case wire.TypeRetryAfter:
			switch sent {
			case wire.TypeSubmit:
				st.shedSubmit++
				retries++
				if retries > cfg.RetryMax {
					st.gaveUp++
					retries = 0
				}
			case wire.TypeStatus:
				st.shedStatus++
			default:
				st.shedCritical++
			}
			backoffAfterShed(reply.RetryAfter, rng, stopAt)
		case wire.TypeAdmitResult:
			retries = 0
			st.ackMs = append(st.ackMs, float64(time.Since(t0).Microseconds())/1000)
			if reply.AdmitResult == nil || !reply.AdmitResult.Admitted {
				break // stub admission rejected: counted as offered, not admitted
			}
			st.admitted++
			seq++
			if err := conn.Send(&wire.Message{Type: wire.TypeWithdraw, Seq: seq, WithdrawID: reply.AdmitResult.DemandID}); err != nil {
				return err
			}
			wreply, err := conn.Recv()
			if err != nil {
				return err
			}
			switch wreply.Type {
			case wire.TypePong:
				st.withdrawn++
			case wire.TypeRetryAfter:
				// Withdrawals are PCritical and must never shed; record the
				// violation for the gate to fail on.
				st.shedCritical++
			default:
				return fmt.Errorf("withdraw reply %s", wreply.Type)
			}
		case wire.TypeStatusReply:
			st.polls++
		case wire.TypeError:
			return fmt.Errorf("controller error: %s", reply.Error)
		default:
			return fmt.Errorf("unexpected reply %s", reply.Type)
		}
	}
	return nil
}

// backoffAfterShed sleeps for the server's retry-after hint scaled by
// seeded jitter in [0.5, 1.5), clamped so a shed near the phase end
// does not overshoot the run.
func backoffAfterShed(ra *wire.RetryAfter, rng *rand.Rand, stopAt time.Time) {
	hint := 25 * time.Millisecond
	if ra != nil && ra.RetryAfterMs > 0 {
		hint = time.Duration(ra.RetryAfterMs) * time.Millisecond
	}
	d := time.Duration(float64(hint) * (0.5 + rng.Float64()))
	if max := time.Until(stopAt); d > max {
		d = max
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// CompareOverloadBench checks cur against the committed baseline with
// a fractional tolerance (0.2 = ±20%) and returns one message per
// regression (empty = gate passes). Two classes of check: absolute
// invariants from the issue's acceptance bar (goodput floor, bounded
// survivor p99, lowest-priority-first shedding) and the
// machine-portable goodput ratio against the baseline.
func CompareOverloadBench(cur, base *OverloadBenchReport, tol float64) []string {
	var regressions []string
	if cur == nil || base == nil {
		return []string{"missing report"}
	}
	if cur.GoodputRatio < 0.9 {
		regressions = append(regressions, fmt.Sprintf(
			"goodput at %dx offered load is %.2fx of calibrated capacity, below the 0.90 floor",
			cur.Ramp, cur.GoodputRatio))
	}
	if base.GoodputRatio > 0 && cur.GoodputRatio < base.GoodputRatio*(1-tol) {
		regressions = append(regressions, fmt.Sprintf(
			"goodput ratio %.2f below baseline %.2f (tolerance %.0f%%)",
			cur.GoodputRatio, base.GoodputRatio, tol*100))
	}
	if cur.ShedTotal == 0 {
		regressions = append(regressions, "overload phase shed nothing — offered load never exceeded capacity")
	}
	if cur.ShedCritical != 0 {
		regressions = append(regressions, fmt.Sprintf(
			"%d critical requests shed — withdrawals must never be dropped", cur.ShedCritical))
	}
	if cur.SurvivorP99Ms > survivorP99BoundMs {
		regressions = append(regressions, fmt.Sprintf(
			"survivor p99 %.1fms exceeds the %.0fms bound", cur.SurvivorP99Ms, survivorP99BoundMs))
	}
	if cur.Overload != nil && cur.Overload.Admitted <= 0 {
		regressions = append(regressions, "overload phase admitted nothing")
	}
	if cur.Overload != nil && cur.Overload.Withdrawn != cur.Overload.Admitted {
		regressions = append(regressions, fmt.Sprintf(
			"book imbalance: %d admitted vs %d withdrawn",
			cur.Overload.Admitted, cur.Overload.Withdrawn))
	}
	return regressions
}
