// Wire load harness: drives a population of simulated clients
// (submit/withdraw churn plus status polls) against one in-process
// controller over real TCP, and measures control-channel throughput —
// admissions/sec, ack latency percentiles, allocs/op — per wire
// codec. The controller runs with stub admission by default so the
// numbers isolate the wire layer from the solver (the solver has its
// own benchmarks).
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"time"

	"bate/internal/controller"
	"bate/internal/metrics"
	"bate/internal/routing"
	"bate/internal/topo"
	"bate/internal/wire"
)

// LoadConfig parameterizes RunLoadSim.
type LoadConfig struct {
	// Net/Tunnels default to the paper's 6-DC testbed with 4-shortest
	// tunnels.
	Net     *topo.Network
	Tunnels *routing.TunnelSet
	// Clients is the number of simulated clients; each submits one
	// demand and withdraws it (default 10000).
	Clients int
	// Conns is the number of TCP connections the clients multiplex
	// over (default 32).
	Conns int
	// Batch is the number of submits per submit-batch frame (default
	// 64). Conns×Batch is clamped to stay inside the controller's
	// 12-bit demand-id space.
	Batch int
	// StatusEvery issues a status poll every N batches per connection
	// (default 1, i.e. one poll per batch — a dashboard-style 1:Batch
	// poll:submit mix; 0 uses the default, negative disables).
	StatusEvery int
	// Codec selects the wire codec the clients negotiate.
	Codec wire.Codec
	// RealAdmission runs the actual admission pipeline instead of stub
	// admission, measuring the full stack.
	RealAdmission bool
	// Seed makes demand generation deterministic (default 1).
	Seed int64
}

// LoadResult is one harness run's measurements.
type LoadResult struct {
	Codec       string  `json:"codec"`
	Clients     int     `json:"clients"`
	Conns       int     `json:"conns"`
	Batch       int     `json:"batch"`
	Admitted    int64   `json:"admitted"`
	Rejected    int64   `json:"rejected"`
	Withdrawn   int64   `json:"withdrawn"`
	StatusPolls int64   `json:"status_polls"`
	OpsTotal    int64   `json:"ops_total"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	// AdmissionsPerSec is admitted demands per wall-clock second.
	AdmissionsPerSec float64 `json:"admissions_per_sec"`
	// P50AckMs/P99AckMs are submit-batch round-trip percentiles.
	P50AckMs float64 `json:"p50_ack_ms"`
	P99AckMs float64 `json:"p99_ack_ms"`
	// AllocsPerOp is heap allocations per wire operation (admission,
	// withdrawal or status poll) across the whole process — client
	// side, controller side and codec included.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

type loadConnStats struct {
	admitted, rejected, withdrawn, polls int64
	ackMs                                []float64
	err                                  error
}

// RunLoadSim runs the load harness and reports measurements.
func RunLoadSim(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Net == nil {
		cfg.Net = topo.Testbed()
		cfg.Tunnels = routing.Compute(cfg.Net, routing.KShortest, 4)
	}
	if cfg.Tunnels == nil {
		cfg.Tunnels = routing.Compute(cfg.Net, routing.KShortest, 4)
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 10000
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 32
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.StatusEvery == 0 {
		cfg.StatusEvery = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	// In-flight demands peak at Conns×Batch; the controller's demand
	// ids live in 12 bits (id 0 reserved), so keep a wide margin.
	if cfg.Conns*cfg.Batch > 3500 {
		cfg.Batch = 3500 / cfg.Conns
		if cfg.Batch < 1 {
			cfg.Batch = 1
			cfg.Conns = 3500
		}
	}

	silent := func(string, ...interface{}) {}
	ctrl, err := controller.New(controller.Config{
		Net: cfg.Net, Tunnels: cfg.Tunnels, MaxFail: 1,
		StubAdmission: !cfg.RealAdmission, Logf: silent,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ctrl.Serve(ctx, ln)
	addr := ln.Addr().String()

	names := make([]string, cfg.Net.NumNodes())
	for i := range names {
		names[i] = cfg.Net.NodeName(topo.NodeID(i))
	}

	stats := make([]loadConnStats, cfg.Conns)
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Conns; ci++ {
		myClients := cfg.Clients / cfg.Conns
		if ci < cfg.Clients%cfg.Conns {
			myClients++
		}
		if myClients == 0 {
			continue
		}
		wg.Add(1)
		go func(ci, myClients int) {
			defer wg.Done()
			st := &stats[ci]
			st.err = driveConn(addr, cfg, int64(ci), myClients, names, st)
		}(ci, myClients)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&msAfter)

	res := &LoadResult{
		Codec:   cfg.Codec.String(),
		Clients: cfg.Clients, Conns: cfg.Conns, Batch: cfg.Batch,
		ElapsedSec: elapsed.Seconds(),
	}
	var ackMs []float64
	for i := range stats {
		st := &stats[i]
		if st.err != nil {
			return nil, fmt.Errorf("loadsim: conn %d: %w", i, st.err)
		}
		res.Admitted += st.admitted
		res.Rejected += st.rejected
		res.Withdrawn += st.withdrawn
		res.StatusPolls += st.polls
		ackMs = append(ackMs, st.ackMs...)
	}
	res.OpsTotal = res.Admitted + res.Rejected + res.Withdrawn + res.StatusPolls
	if res.ElapsedSec > 0 {
		res.AdmissionsPerSec = float64(res.Admitted) / res.ElapsedSec
	}
	if len(ackMs) > 0 {
		cdf := metrics.NewCDF(ackMs)
		res.P50AckMs = cdf.Quantile(0.5)
		res.P99AckMs = cdf.Quantile(0.99)
	}
	if res.OpsTotal > 0 {
		res.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.OpsTotal)
		res.BytesPerOp = float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(res.OpsTotal)
	}
	return res, nil
}

// driveConn runs one connection's share of the client population:
// submit a batch, wait for the decisions (the ack RTT sample), then
// pipeline the withdrawals — coalesced into few syscalls — with a
// status poll mixed in every StatusEvery batches.
func driveConn(addr string, cfg LoadConfig, connID int64, myClients int, names []string, st *loadConnStats) error {
	conn, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.EnableCoalescing()
	if err := conn.Send(&wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Role: "client", Codec: cfg.Codec}}); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + connID*7919))
	var seq uint64
	// Send encodes synchronously (the coalescing queue holds encoded
	// bytes, not the Message), so request objects are reusable across
	// iterations.
	batchMsg := &wire.Message{Type: wire.TypeSubmitBatch}
	withdrawMsg := &wire.Message{Type: wire.TypeWithdraw}
	statusMsg := &wire.Message{Type: wire.TypeStatus}
	subs := make([]wire.Submit, 0, cfg.Batch)
	ids := make([]int, 0, cfg.Batch)
	for done, batches := 0, 0; done < myClients; batches++ {
		b := cfg.Batch
		if myClients-done < b {
			b = myClients - done
		}
		subs = subs[:0]
		for i := 0; i < b; i++ {
			si := rng.Intn(len(names))
			di := rng.Intn(len(names) - 1)
			if di >= si {
				di++
			}
			subs = append(subs, wire.Submit{
				Src: names[si], Dst: names[di],
				Bandwidth: 10 + rng.Float64()*40,
				Target:    0.99, Charge: 10, RefundFrac: 0.5,
			})
		}
		seq++
		batchMsg.Seq = seq
		batchMsg.SubmitBatch = subs
		t0 := time.Now()
		if err := conn.Send(batchMsg); err != nil {
			return err
		}
		reply, err := conn.Recv()
		if err != nil {
			return err
		}
		st.ackMs = append(st.ackMs, float64(time.Since(t0).Microseconds())/1000)
		if reply.Type != wire.TypeAdmitBatchResult || reply.Seq != seq {
			return fmt.Errorf("batch reply: got %s seq %d, want seq %d", reply.Type, reply.Seq, seq)
		}
		ids = ids[:0]
		for _, r := range reply.AdmitBatchResult {
			if r.Admitted {
				st.admitted++
				ids = append(ids, r.DemandID)
			} else {
				st.rejected++
			}
		}
		// Pipelined withdrawals: all sends queue before any reply is
		// read, so the coalescing writer batches them.
		expect := 0
		for _, id := range ids {
			seq++
			withdrawMsg.Seq = seq
			withdrawMsg.WithdrawID = id
			if err := conn.Send(withdrawMsg); err != nil {
				return err
			}
			expect++
		}
		poll := cfg.StatusEvery > 0 && batches%cfg.StatusEvery == 0
		if poll {
			seq++
			statusMsg.Seq = seq
			if err := conn.Send(statusMsg); err != nil {
				return err
			}
			expect++
		}
		for i := 0; i < expect; i++ {
			m, err := conn.Recv()
			if err != nil {
				return err
			}
			switch m.Type {
			case wire.TypePong:
				st.withdrawn++
			case wire.TypeStatusReply:
				st.polls++
			case wire.TypeError:
				return fmt.Errorf("controller error: %s", m.Error)
			}
		}
		done += b
	}
	return nil
}

// WireBenchReport pairs a binary and a JSON harness run with the
// derived ratios the CI gate checks. The ratios, not the absolute
// rates, are what transfer across machines: binary-vs-JSON speedup
// and allocations per operation are properties of the codec, while
// ops/sec is a property of the host.
type WireBenchReport struct {
	Topology string      `json:"topology"`
	Clients  int         `json:"clients"`
	Binary   *LoadResult `json:"binary,omitempty"`
	JSON     *LoadResult `json:"json,omitempty"`
	// SpeedupAdmissionsPerSec = binary admissions/sec over JSON's.
	SpeedupAdmissionsPerSec float64 `json:"speedup_admissions_per_sec,omitempty"`
	// AllocsPerOpRatio = binary allocs/op over JSON's (lower is
	// better; the acceptance bar is ≤0.2).
	AllocsPerOpRatio float64 `json:"allocs_per_op_ratio,omitempty"`
}

// NewWireBenchReport derives the cross-codec ratios.
func NewWireBenchReport(topology string, clients int, bin, js *LoadResult) *WireBenchReport {
	r := &WireBenchReport{Topology: topology, Clients: clients, Binary: bin, JSON: js}
	if bin != nil && js != nil {
		if js.AdmissionsPerSec > 0 {
			r.SpeedupAdmissionsPerSec = bin.AdmissionsPerSec / js.AdmissionsPerSec
		}
		if js.AllocsPerOp > 0 {
			r.AllocsPerOpRatio = bin.AllocsPerOp / js.AllocsPerOp
		}
	}
	return r
}

// CompareWireBench checks cur against a committed baseline with a
// fractional tolerance (0.2 = ±20%) and returns one message per
// regression (empty = gate passes). Only machine-portable quantities
// gate: the binary/JSON speedup and allocs/op; absolute rates are
// reported but never compared across hosts.
func CompareWireBench(cur, base *WireBenchReport, tol float64) []string {
	var regressions []string
	if cur == nil || base == nil {
		return []string{"missing report"}
	}
	if base.SpeedupAdmissionsPerSec > 0 && cur.SpeedupAdmissionsPerSec < base.SpeedupAdmissionsPerSec*(1-tol) {
		regressions = append(regressions, fmt.Sprintf(
			"admissions/sec speedup %.2fx below baseline %.2fx (tolerance %.0f%%)",
			cur.SpeedupAdmissionsPerSec, base.SpeedupAdmissionsPerSec, tol*100))
	}
	if base.Binary != nil && cur.Binary != nil && base.Binary.AllocsPerOp > 0 &&
		cur.Binary.AllocsPerOp > base.Binary.AllocsPerOp*(1+tol) {
		regressions = append(regressions, fmt.Sprintf(
			"binary allocs/op %.1f above baseline %.1f (tolerance %.0f%%)",
			cur.Binary.AllocsPerOp, base.Binary.AllocsPerOp, tol*100))
	}
	if base.AllocsPerOpRatio > 0 && cur.AllocsPerOpRatio > base.AllocsPerOpRatio*(1+tol) {
		regressions = append(regressions, fmt.Sprintf(
			"allocs/op ratio %.3f above baseline %.3f (tolerance %.0f%%)",
			cur.AllocsPerOpRatio, base.AllocsPerOpRatio, tol*100))
	}
	if cur.Binary != nil && cur.Binary.AdmissionsPerSec <= 0 {
		regressions = append(regressions, "binary run admitted nothing")
	}
	return regressions
}
