package sim

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"bate/internal/topo"
)

// Failure traces replay measured outages (the paper's Fig. 1(a)
// commercial-WAN measurements) instead of drawing Bernoulli failures.
// The text format is one event per line:
//
//	# comment
//	SRC DST DOWN_AT_SEC UP_AT_SEC
//
// e.g. "DC1 DC4 120 180" takes the DC1→DC4 link down for a minute.

// FailureEvent is one link outage.
type FailureEvent struct {
	Link   topo.LinkID
	DownAt float64
	UpAt   float64
}

// ParseTrace reads a failure trace, resolving DC names against net.
// Events are returned sorted by DownAt.
func ParseTrace(r io.Reader, net *topo.Network) ([]FailureEvent, error) {
	var out []FailureEvent
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 4 {
			return nil, fmt.Errorf("sim: trace line %d: want SRC DST DOWN UP", lineNo)
		}
		src, ok := net.NodeByName(fields[0])
		if !ok {
			return nil, fmt.Errorf("sim: trace line %d: unknown DC %q", lineNo, fields[0])
		}
		dst, ok := net.NodeByName(fields[1])
		if !ok {
			return nil, fmt.Errorf("sim: trace line %d: unknown DC %q", lineNo, fields[1])
		}
		link, ok := net.LinkBetween(src, dst)
		if !ok {
			return nil, fmt.Errorf("sim: trace line %d: no link %s->%s", lineNo, fields[0], fields[1])
		}
		down, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("sim: trace line %d: bad down time: %v", lineNo, err)
		}
		up, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("sim: trace line %d: bad up time: %v", lineNo, err)
		}
		if up <= down {
			return nil, fmt.Errorf("sim: trace line %d: repair %v before failure %v", lineNo, up, down)
		}
		out = append(out, FailureEvent{Link: link.ID, DownAt: down, UpAt: up})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DownAt < out[j].DownAt })
	return out, nil
}

// ApplyTrace pre-loads the injector with scripted outages. Scripted
// links still roll their Bernoulli dice unless the network's failure
// probabilities are zeroed; for pure replay use a topology with zero
// FailProb everywhere.
func (fi *FailureInjector) ApplyTrace(events []FailureEvent) {
	fi.trace = append(fi.trace, events...)
	sort.Slice(fi.trace, func(i, j int) bool { return fi.trace[i].DownAt < fi.trace[j].DownAt })
}

// stepTrace fires scripted events due at time now; callers are the
// injector's Step.
func (fi *FailureInjector) stepTrace(now float64) bool {
	changed := false
	for fi.traceNext < len(fi.trace) && fi.trace[fi.traceNext].DownAt <= now {
		ev := fi.trace[fi.traceNext]
		fi.traceNext++
		if fi.downUntil[ev.Link] < ev.UpAt {
			if fi.downUntil[ev.Link] == 0 {
				fi.FailCounts[ev.Link]++
			}
			fi.downUntil[ev.Link] = ev.UpAt
			changed = true
		}
	}
	return changed
}
