package demand

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bate/internal/topo"
)

// Adversarial workload composition: the paper evaluates BATE under a
// benign homogeneous Poisson process, but real inter-DC demand is
// diurnal, bursty and multi-tenant. WorkloadSpec layers those shapes
// on top of the base GeneratorConfig as a time-varying arrival-rate
// function realized by Poisson thinning: arrivals are drawn at each
// pair's peak rate and accepted with probability rate(t)/peak, which
// keeps the process exact and — because every draw flows through one
// seeded rng in a fixed pair order — byte-identical across replays of
// the same seed.

// DiurnalSpec modulates the arrival rate sinusoidally between Trough×
// and Peak× the base rate over PeriodSec (a compressed day).
type DiurnalSpec struct {
	// PeriodSec is the cycle length (e.g. the simulation horizon for
	// one compressed day). Must be positive.
	PeriodSec float64
	// Peak and Trough are the rate multipliers at the top and bottom
	// of the cycle (Peak >= Trough >= 0).
	Peak, Trough float64
	// PhaseSec shifts the cycle; 0 starts mid-slope rising.
	PhaseSec float64
}

// Factor returns the diurnal rate multiplier at time t.
func (s *DiurnalSpec) Factor(t float64) float64 {
	if s == nil || s.PeriodSec <= 0 {
		return 1
	}
	mid := (s.Peak + s.Trough) / 2
	amp := (s.Peak - s.Trough) / 2
	return mid + amp*math.Sin(2*math.Pi*(t+s.PhaseSec)/s.PeriodSec)
}

// FlashCrowd is a sudden demand surge: during [AtSec, AtSec+DurationSec)
// the arrival rate on HotPairs seed-chosen pairs (0 = every pair)
// multiplies by Multiplier, and surge demands may shrink their
// durations (flash traffic is short-lived) via DurationFactor.
type FlashCrowd struct {
	AtSec, DurationSec float64
	// Multiplier scales the arrival rate during the surge (>= 1).
	Multiplier float64
	// HotPairs is how many seed-chosen pairs the surge concentrates
	// on; 0 hits every pair.
	HotPairs int
	// DurationFactor scales surge demands' mean duration (0 = 1).
	DurationFactor float64
}

// active reports whether the crowd is surging at time t.
func (f *FlashCrowd) active(t float64) bool {
	return t >= f.AtSec && t < f.AtSec+f.DurationSec
}

// TenantSpec is one tenant class of a mixed workload. Each arrival is
// assigned a tenant by Weight-proportional draw; the tenant shapes the
// demand's targets, duration, bandwidth and refund schedule.
type TenantSpec struct {
	Name   string
	Weight float64
	// Targets overrides the base availability-target set (nil keeps it).
	Targets []float64
	// MeanDurationSec overrides the base mean duration (0 keeps it).
	MeanDurationSec float64
	// BandwidthScale multiplies the drawn bandwidth (0 = 1).
	BandwidthScale float64
	// Refunds overrides the base refund choices (nil keeps them).
	Refunds []RefundChoice
}

// WorkloadSpec composes a full adversarial workload.
type WorkloadSpec struct {
	// Base is the benign Poisson layer every shape modulates.
	Base GeneratorConfig
	// Diurnal, when non-nil, applies a diurnal rate cycle.
	Diurnal *DiurnalSpec
	// FlashCrowds are surge windows (may overlap; factors multiply).
	FlashCrowds []FlashCrowd
	// Tenants, when non-empty, assigns each demand a tenant class.
	Tenants []TenantSpec
}

// maxFactor bounds the total rate multiplier for a pair, for thinning.
func (s *WorkloadSpec) maxFactor(hot bool) float64 {
	f := 1.0
	if s.Diurnal != nil && s.Diurnal.Peak > 1 {
		f = s.Diurnal.Peak
	}
	for i := range s.FlashCrowds {
		fc := &s.FlashCrowds[i]
		if fc.Multiplier > 1 && (fc.HotPairs == 0 || hot) {
			f *= fc.Multiplier
		}
	}
	return f
}

// GenerateWorkload realizes spec over [0, horizonSec) for every s-d
// pair of net, sorted by start time with dense IDs — the adversarial
// counterpart of Generator.Generate. The same (net, spec, seed) always
// produces the identical slice.
func GenerateWorkload(net *topo.Network, spec WorkloadSpec, rng *rand.Rand, horizonSec float64) ([]*Demand, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	base := NewGenerator(net, spec.Base, rng) // normalizes defaults
	cfg := base.cfg
	pairs := base.pairs

	// Seed-deterministic hot-pair choice per flash crowd, drawn before
	// any arrival so the rng consumption order is fixed.
	hot := make([]map[int]bool, len(spec.FlashCrowds))
	for i := range spec.FlashCrowds {
		fc := &spec.FlashCrowds[i]
		if fc.HotPairs <= 0 || fc.HotPairs >= len(pairs) {
			continue
		}
		hot[i] = make(map[int]bool, fc.HotPairs)
		perm := rng.Perm(len(pairs))
		for _, pi := range perm[:fc.HotPairs] {
			hot[i][pi] = true
		}
	}
	isHot := func(crowd, pair int) bool {
		return hot[crowd] == nil || hot[crowd][pair]
	}

	// Tenant cumulative weights for proportional assignment.
	var tenantCum []float64
	totalW := 0.0
	for _, t := range spec.Tenants {
		totalW += t.Weight
		tenantCum = append(tenantCum, totalW)
	}

	factor := func(t float64, pair int) float64 {
		f := spec.Diurnal.Factor(t)
		for i := range spec.FlashCrowds {
			fc := &spec.FlashCrowds[i]
			if fc.active(t) && isHot(i, pair) {
				f *= fc.Multiplier
			}
		}
		return f
	}

	var out []*Demand
	ratePerSec := cfg.ArrivalsPerMinute / 60
	for pi, pair := range pairs {
		anyHot := false
		for i := range spec.FlashCrowds {
			if isHot(i, pi) {
				anyHot = true
				break
			}
		}
		peak := ratePerSec * spec.maxFactor(anyHot)
		if peak <= 0 {
			continue
		}
		t := 0.0
		for {
			t += rng.ExpFloat64() / peak
			if t >= horizonSec {
				break
			}
			// Thinning: accept with probability rate(t)/peak.
			f := factor(t, pi)
			if accept := f * ratePerSec / peak; rng.Float64() >= accept {
				continue
			}
			d := base.newDemand(pair, t)
			// Flash-crowd demands may be short-lived.
			for i := range spec.FlashCrowds {
				fc := &spec.FlashCrowds[i]
				if fc.active(t) && isHot(i, pi) && fc.DurationFactor > 0 && fc.DurationFactor != 1 {
					d.End = d.Start + (d.End-d.Start)*fc.DurationFactor
				}
			}
			if len(spec.Tenants) > 0 {
				applyTenant(d, &spec.Tenants[pickTenant(tenantCum, rng)], cfg, rng)
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	for i, d := range out {
		d.ID = i
	}
	return out, nil
}

// Validate rejects specs that would make thinning ill-defined.
func (s *WorkloadSpec) Validate() error {
	if d := s.Diurnal; d != nil {
		if d.PeriodSec <= 0 {
			return fmt.Errorf("demand: diurnal period %v must be positive", d.PeriodSec)
		}
		if d.Trough < 0 || d.Peak < d.Trough {
			return fmt.Errorf("demand: diurnal factors peak %v / trough %v invalid", d.Peak, d.Trough)
		}
	}
	for i := range s.FlashCrowds {
		fc := &s.FlashCrowds[i]
		if fc.Multiplier < 1 {
			return fmt.Errorf("demand: flash crowd %d multiplier %v < 1", i, fc.Multiplier)
		}
		if fc.DurationSec <= 0 {
			return fmt.Errorf("demand: flash crowd %d duration %v must be positive", i, fc.DurationSec)
		}
		if fc.DurationFactor < 0 {
			return fmt.Errorf("demand: flash crowd %d duration factor %v negative", i, fc.DurationFactor)
		}
	}
	for i, t := range s.Tenants {
		if t.Weight <= 0 {
			return fmt.Errorf("demand: tenant %d (%s) weight %v must be positive", i, t.Name, t.Weight)
		}
	}
	return nil
}

// pickTenant draws a tenant index proportional to weight.
func pickTenant(cum []float64, rng *rand.Rand) int {
	x := rng.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if x <= c {
			return i
		}
	}
	return len(cum) - 1
}

// applyTenant reshapes a freshly drawn demand for its tenant class.
// The duration redraw uses the tenant's mean but a fresh exponential
// draw, so tenants with the same mean still decorrelate.
func applyTenant(d *Demand, t *TenantSpec, cfg GeneratorConfig, rng *rand.Rand) {
	d.Service = t.Name
	if len(t.Targets) > 0 {
		d.Target = t.Targets[rng.Intn(len(t.Targets))]
	}
	if t.MeanDurationSec > 0 {
		d.End = d.Start + rng.ExpFloat64()*t.MeanDurationSec
	}
	if t.BandwidthScale > 0 && t.BandwidthScale != 1 {
		for i := range d.Pairs {
			d.Pairs[i].Bandwidth *= t.BandwidthScale
		}
		d.Charge = d.TotalBandwidth() * cfg.UnitPrice
	}
	if len(t.Refunds) > 0 {
		r := t.Refunds[rng.Intn(len(t.Refunds))]
		d.RefundFrac = r.Frac
		if r.Service != "" {
			d.Service = r.Service
		}
	}
}
