package demand

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"bate/internal/topo"
)

func TestDemandHelpers(t *testing.T) {
	d := &Demand{
		ID: 3,
		Pairs: []PairDemand{
			{Src: 0, Dst: 1, Bandwidth: 100},
			{Src: 0, Dst: 2, Bandwidth: 50},
		},
		Target: 0.99,
	}
	if d.TotalBandwidth() != 150 {
		t.Fatalf("TotalBandwidth = %v", d.TotalBandwidth())
	}
	if math.Abs(d.Weight()-148.5) > 1e-9 {
		t.Fatalf("Weight = %v, want 148.5", d.Weight())
	}
	if !strings.Contains(d.String(), "demand 3") {
		t.Fatalf("String = %q", d.String())
	}
}

func TestTargetSets(t *testing.T) {
	for _, set := range [][]float64{Table1Targets, TestbedTargets, SimulationTargets} {
		for _, v := range set {
			if v < 0 || v >= 1 {
				t.Fatalf("target %v out of [0,1)", v)
			}
		}
	}
	// Table 1 includes the four B4 tiers plus best-effort.
	if len(Table1Targets) != 5 || Table1Targets[0] != 0.9999 {
		t.Fatalf("Table1Targets = %v", Table1Targets)
	}
}

func TestGeneratorPoissonRate(t *testing.T) {
	net := topo.Testbed()
	rng := rand.New(rand.NewSource(11))
	g := NewGenerator(net, GeneratorConfig{
		ArrivalsPerMinute: 2,
		MeanDurationSec:   300,
		MinBandwidth:      10,
		MaxBandwidth:      50,
	}, rng)
	const horizon = 3600.0 // one hour
	ds := g.Generate(horizon)
	pairs := float64(len(net.Pairs()))
	want := 2.0 / 60 * horizon * pairs // expected arrivals
	got := float64(len(ds))
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("got %v arrivals, want ≈ %v", got, want)
	}
	// Sorted by start, IDs dense, fields in range.
	for i, d := range ds {
		if d.ID != i {
			t.Fatalf("IDs not dense: %d at %d", d.ID, i)
		}
		if i > 0 && d.Start < ds[i-1].Start {
			t.Fatal("not sorted by start")
		}
		if d.End <= d.Start {
			t.Fatalf("duration not positive: %v..%v", d.Start, d.End)
		}
		bw := d.Pairs[0].Bandwidth
		if bw < 10 || bw > 50 {
			t.Fatalf("bandwidth %v outside [10,50]", bw)
		}
		if d.Charge != bw {
			t.Fatalf("unit-price charge %v != bandwidth %v", d.Charge, bw)
		}
		if d.RefundFrac != 0.10 || d.Service != "default" {
			t.Fatalf("default refund not applied: %v %v", d.RefundFrac, d.Service)
		}
	}
}

func TestGeneratorMeanDuration(t *testing.T) {
	net := topo.Toy()
	rng := rand.New(rand.NewSource(5))
	g := NewGenerator(net, GeneratorConfig{
		ArrivalsPerMinute: 10,
		MeanDurationSec:   300,
	}, rng)
	ds := g.Generate(7200)
	sum := 0.0
	for _, d := range ds {
		sum += d.End - d.Start
	}
	mean := sum / float64(len(ds))
	if math.Abs(mean-300)/300 > 0.15 {
		t.Fatalf("mean duration %v, want ≈ 300", mean)
	}
}

func TestGeneratorBandwidthPool(t *testing.T) {
	net := topo.Toy()
	rng := rand.New(rand.NewSource(9))
	pool := make(map[[2]topo.NodeID][]float64)
	for _, p := range net.Pairs() {
		pool[p] = []float64{123}
	}
	g := NewGenerator(net, GeneratorConfig{
		ArrivalsPerMinute: 5,
		BandwidthPool:     pool,
		Targets:           []float64{0.99},
		Refunds:           []RefundChoice{{Service: "Redis", Frac: 0.25}},
	}, rng)
	ds := g.Generate(600)
	if len(ds) == 0 {
		t.Fatal("no demands generated")
	}
	for _, d := range ds {
		if d.Pairs[0].Bandwidth != 123 {
			t.Fatalf("bandwidth %v, want pool value 123", d.Pairs[0].Bandwidth)
		}
		if d.Target != 0.99 || d.Service != "Redis" || d.RefundFrac != 0.25 {
			t.Fatalf("config not honoured: %+v", d)
		}
	}
}

func TestGeneratorDefaults(t *testing.T) {
	g := NewGenerator(topo.Toy(), GeneratorConfig{}, rand.New(rand.NewSource(1)))
	if g.cfg.ArrivalsPerMinute != 2 || g.cfg.MeanDurationSec != 300 ||
		g.cfg.MinBandwidth != 10 || g.cfg.MaxBandwidth != 50 ||
		g.cfg.UnitPrice != 1 {
		t.Fatalf("defaults wrong: %+v", g.cfg)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	run := func() []*Demand {
		return NewGenerator(topo.Toy(), GeneratorConfig{ArrivalsPerMinute: 3},
			rand.New(rand.NewSource(77))).Generate(1200)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].Pairs[0].Bandwidth != b[i].Pairs[0].Bandwidth {
			t.Fatal("non-deterministic demands")
		}
	}
}
