package demand

import (
	"math"
	"math/rand"
	"testing"

	"bate/internal/topo"
)

func testSpec() WorkloadSpec {
	return WorkloadSpec{
		Base: GeneratorConfig{ArrivalsPerMinute: 6, MeanDurationSec: 120},
		Diurnal: &DiurnalSpec{
			PeriodSec: 600, Peak: 2.0, Trough: 0.25,
		},
		FlashCrowds: []FlashCrowd{
			{AtSec: 200, DurationSec: 60, Multiplier: 5, HotPairs: 3, DurationFactor: 0.25},
		},
		Tenants: []TenantSpec{
			{Name: "gold", Weight: 1, Targets: []float64{0.9999}, BandwidthScale: 2},
			{Name: "bulk", Weight: 3, Targets: []float64{0}, MeanDurationSec: 400},
		},
	}
}

// Same seed, same workload — the replay property every hostile
// scenario relies on.
func TestGenerateWorkloadDeterministic(t *testing.T) {
	net := topo.Testbed()
	a, err := GenerateWorkload(net, testSpec(), rand.New(rand.NewSource(7)), 600)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorkload(net, testSpec(), rand.New(rand.NewSource(7)), 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d demands", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.ID != y.ID || x.Start != y.Start || x.End != y.End || x.Target != y.Target ||
			x.Charge != y.Charge || x.Service != y.Service || len(x.Pairs) != len(y.Pairs) {
			t.Fatalf("demand %d differs across same-seed replays:\n %+v\n %+v", i, x, y)
		}
		for k := range x.Pairs {
			if x.Pairs[k] != y.Pairs[k] {
				t.Fatalf("demand %d pair %d differs: %+v vs %+v", i, k, x.Pairs[k], y.Pairs[k])
			}
		}
	}
	if len(a) == 0 {
		t.Fatal("spec generated no demands")
	}
	// Different seed must actually change the draw.
	c, err := GenerateWorkload(net, testSpec(), rand.New(rand.NewSource(8)), 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i].Start != c[i].Start {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seed 7 and seed 8 produced identical workloads")
		}
	}
}

// The flash crowd must visibly raise the arrival rate during its
// window, and the diurnal trough must lower it.
func TestGenerateWorkloadShapes(t *testing.T) {
	net := topo.Testbed()
	spec := WorkloadSpec{
		Base:        GeneratorConfig{ArrivalsPerMinute: 10, MeanDurationSec: 60},
		FlashCrowds: []FlashCrowd{{AtSec: 300, DurationSec: 100, Multiplier: 8}},
	}
	w, err := GenerateWorkload(net, spec, rand.New(rand.NewSource(3)), 600)
	if err != nil {
		t.Fatal(err)
	}
	inBurst, outBurst := 0, 0
	for _, d := range w {
		if d.Start >= 300 && d.Start < 400 {
			inBurst++
		} else {
			outBurst++
		}
	}
	// Burst window is 1/6 of the horizon at 8x rate: expect its
	// arrival density to dominate clearly.
	burstRate := float64(inBurst) / 100
	calmRate := float64(outBurst) / 500
	if burstRate < 3*calmRate {
		t.Fatalf("flash crowd not visible: %.3f arrivals/s in burst vs %.3f outside", burstRate, calmRate)
	}

	// Diurnal-only: the peak half of the cycle should out-arrive the
	// trough half.
	spec = WorkloadSpec{
		Base:    GeneratorConfig{ArrivalsPerMinute: 10, MeanDurationSec: 60},
		Diurnal: &DiurnalSpec{PeriodSec: 600, Peak: 3, Trough: 0.1},
	}
	w, err = GenerateWorkload(net, spec, rand.New(rand.NewSource(3)), 600)
	if err != nil {
		t.Fatal(err)
	}
	// Sin phase 0: rising through the first half (peak at t=150),
	// falling below 1 in the second half (trough at t=450).
	peakHalf, troughHalf := 0, 0
	for _, d := range w {
		if d.Start < 300 {
			peakHalf++
		} else {
			troughHalf++
		}
	}
	if peakHalf <= troughHalf {
		t.Fatalf("diurnal cycle not visible: %d peak-half vs %d trough-half arrivals", peakHalf, troughHalf)
	}
}

// Tenants must be assigned roughly by weight and carry their class
// parameters.
func TestGenerateWorkloadTenants(t *testing.T) {
	net := topo.Testbed()
	w, err := GenerateWorkload(net, testSpec(), rand.New(rand.NewSource(11)), 600)
	if err != nil {
		t.Fatal(err)
	}
	gold, bulk := 0, 0
	for _, d := range w {
		switch d.Service {
		case "gold":
			gold++
			if d.Target != 0.9999 {
				t.Fatalf("gold tenant got target %v", d.Target)
			}
		case "bulk":
			bulk++
			if d.Target != 0 {
				t.Fatalf("bulk tenant got target %v", d.Target)
			}
		default:
			t.Fatalf("demand %d has unknown tenant %q", d.ID, d.Service)
		}
	}
	if gold == 0 || bulk == 0 {
		t.Fatalf("tenant mix collapsed: %d gold, %d bulk", gold, bulk)
	}
	if bulk < gold {
		t.Fatalf("weight-3 bulk (%d) should outnumber weight-1 gold (%d)", bulk, gold)
	}
}

// IDs must be dense and sorted by start; durations positive unless a
// flash crowd shrank a zero-length draw.
func TestGenerateWorkloadInvariants(t *testing.T) {
	net := topo.B4()
	w, err := GenerateWorkload(net, testSpec(), rand.New(rand.NewSource(5)), 400)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range w {
		if d.ID != i {
			t.Fatalf("IDs not dense: demand %d has ID %d", i, d.ID)
		}
		if i > 0 && d.Start < w[i-1].Start {
			t.Fatalf("not sorted by start at %d", i)
		}
		if d.End < d.Start {
			t.Fatalf("demand %d ends (%v) before it starts (%v)", i, d.End, d.Start)
		}
		if math.IsNaN(d.Charge) || d.Charge < 0 {
			t.Fatalf("demand %d has charge %v", i, d.Charge)
		}
	}
}

// Bad specs must be rejected, not silently mangled.
func TestWorkloadSpecValidate(t *testing.T) {
	bad := []WorkloadSpec{
		{Diurnal: &DiurnalSpec{PeriodSec: 0, Peak: 1, Trough: 1}},
		{Diurnal: &DiurnalSpec{PeriodSec: 100, Peak: 0.5, Trough: 1}},
		{FlashCrowds: []FlashCrowd{{Multiplier: 0.5, DurationSec: 10}}},
		{FlashCrowds: []FlashCrowd{{Multiplier: 2, DurationSec: 0}}},
		{Tenants: []TenantSpec{{Name: "x", Weight: 0}}},
	}
	for i, spec := range bad {
		if _, err := GenerateWorkload(topo.Toy(), spec, rand.New(rand.NewSource(1)), 100); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}
