package demand

import (
	"bytes"
	"math"
	"testing"

	"bate/internal/topo"
)

// FuzzWorkloadRoundTrip hardens the JSON workload codec that the
// durable store's snapshots and WAL admit-records inherit: any bytes
// Load accepts must survive Save -> Load unchanged, and everything
// Load returns must respect the documented invariants (targets in
// [0,1), positive bandwidth, known DCs).
func FuzzWorkloadRoundTrip(f *testing.F) {
	// Seed corpus: real workloads over the toy and testbed topologies.
	for _, seed := range []struct {
		net     *topo.Network
		demands []*Demand
	}{
		{topo.Toy(), []*Demand{
			{ID: 0, Pairs: []PairDemand{{Src: 0, Dst: 3, Bandwidth: 6000}}, Target: 0.99, Charge: 6000, RefundFrac: 0.1},
			{ID: 1, Pairs: []PairDemand{{Src: 0, Dst: 3, Bandwidth: 12000}}, Target: 0.90, Charge: 12000, RefundFrac: 0.25, Service: "vm"},
		}},
		{topo.Testbed(), []*Demand{
			{ID: 3, Pairs: []PairDemand{{Src: 0, Dst: 2, Bandwidth: 400}, {Src: 1, Dst: 5, Bandwidth: 300}},
				Target: 0.9995, Start: 10, End: 610, Charge: 700, RefundFrac: 0.1},
		}},
	} {
		var buf bytes.Buffer
		if err := Save(&buf, seed.net, seed.demands); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"id":1,"pairs":[{"src":"DC1","dst":"DC6","bandwidth_mbps":1e308}],"target":0.999999}]`))

	net := topo.Testbed() // superset of the toy's DC names
	f.Fuzz(func(t *testing.T, data []byte) {
		demands, err := Load(bytes.NewReader(data), net)
		if err != nil {
			return // rejected input: fine, as long as no panic
		}
		for _, d := range demands {
			if d.Target < 0 || d.Target >= 1 {
				t.Fatalf("Load accepted target %v outside [0,1)", d.Target)
			}
			if len(d.Pairs) == 0 {
				t.Fatal("Load accepted a demand with no pairs")
			}
			for _, p := range d.Pairs {
				if !(p.Bandwidth > 0) || math.IsInf(p.Bandwidth, 0) {
					t.Fatalf("Load accepted bandwidth %v", p.Bandwidth)
				}
				if int(p.Src) < 0 || int(p.Src) >= net.NumNodes() ||
					int(p.Dst) < 0 || int(p.Dst) >= net.NumNodes() {
					t.Fatalf("Load resolved out-of-range node ids %v->%v", p.Src, p.Dst)
				}
			}
		}
		// Accepted workloads must round-trip exactly.
		var buf bytes.Buffer
		if err := Save(&buf, net, demands); err != nil {
			t.Fatalf("Save of loaded workload: %v", err)
		}
		again, err := Load(bytes.NewReader(buf.Bytes()), net)
		if err != nil {
			t.Fatalf("Load(Save(Load(x))): %v", err)
		}
		if len(again) != len(demands) {
			t.Fatalf("round trip changed demand count %d -> %d", len(demands), len(again))
		}
		for i := range demands {
			a, b := demands[i], again[i]
			if a.ID != b.ID || a.Target != b.Target || a.Start != b.Start || a.End != b.End ||
				a.Charge != b.Charge || a.RefundFrac != b.RefundFrac || a.Service != b.Service {
				t.Fatalf("demand %d changed in round trip:\n %+v\n %+v", i, a, b)
			}
			if len(a.Pairs) != len(b.Pairs) {
				t.Fatalf("demand %d pair count changed", i)
			}
			for k := range a.Pairs {
				if a.Pairs[k] != b.Pairs[k] {
					t.Fatalf("demand %d pair %d changed: %+v vs %+v", i, k, a.Pairs[k], b.Pairs[k])
				}
			}
		}
	})
}
