package demand

import (
	"encoding/json"
	"fmt"
	"io"

	"bate/internal/topo"
)

// The JSON workload format makes experiment inputs portable and
// reviewable: node references are by DC name so a workload file is
// meaningful independent of a topology's internal ids.

// jsonPair is one pair of a serialized demand.
type jsonPair struct {
	Src       string  `json:"src"`
	Dst       string  `json:"dst"`
	Bandwidth float64 `json:"bandwidth_mbps"`
}

// jsonDemand is the on-disk form of a Demand.
type jsonDemand struct {
	ID         int        `json:"id"`
	Pairs      []jsonPair `json:"pairs"`
	Target     float64    `json:"target"`
	Start      float64    `json:"start_sec"`
	End        float64    `json:"end_sec"`
	Charge     float64    `json:"charge"`
	RefundFrac float64    `json:"refund_frac"`
	Service    string     `json:"service,omitempty"`
}

// Save writes demands as a JSON array, resolving node ids to names
// via net.
func Save(w io.Writer, net *topo.Network, demands []*Demand) error {
	out := make([]jsonDemand, len(demands))
	for i, d := range demands {
		jd := jsonDemand{
			ID: d.ID, Target: d.Target, Start: d.Start, End: d.End,
			Charge: d.Charge, RefundFrac: d.RefundFrac, Service: d.Service,
		}
		for _, p := range d.Pairs {
			jd.Pairs = append(jd.Pairs, jsonPair{
				Src: net.NodeName(p.Src), Dst: net.NodeName(p.Dst), Bandwidth: p.Bandwidth,
			})
		}
		out[i] = jd
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load reads a JSON workload, resolving DC names against net.
func Load(r io.Reader, net *topo.Network) ([]*Demand, error) {
	var in []jsonDemand
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("demand: decode workload: %w", err)
	}
	out := make([]*Demand, len(in))
	for i, jd := range in {
		d := &Demand{
			ID: jd.ID, Target: jd.Target, Start: jd.Start, End: jd.End,
			Charge: jd.Charge, RefundFrac: jd.RefundFrac, Service: jd.Service,
		}
		if jd.Target < 0 || jd.Target >= 1 {
			return nil, fmt.Errorf("demand %d: target %v out of [0,1)", jd.ID, jd.Target)
		}
		if len(jd.Pairs) == 0 {
			return nil, fmt.Errorf("demand %d: no pairs", jd.ID)
		}
		for _, p := range jd.Pairs {
			src, ok := net.NodeByName(p.Src)
			if !ok {
				return nil, fmt.Errorf("demand %d: unknown DC %q", jd.ID, p.Src)
			}
			dst, ok := net.NodeByName(p.Dst)
			if !ok {
				return nil, fmt.Errorf("demand %d: unknown DC %q", jd.ID, p.Dst)
			}
			if p.Bandwidth <= 0 {
				return nil, fmt.Errorf("demand %d: bandwidth %v must be positive", jd.ID, p.Bandwidth)
			}
			d.Pairs = append(d.Pairs, PairDemand{Src: src, Dst: dst, Bandwidth: p.Bandwidth})
		}
		out[i] = d
	}
	return out, nil
}
