package demand

import (
	"bytes"
	"strings"
	"testing"

	"bate/internal/topo"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	net := topo.Testbed()
	dc := func(s string) topo.NodeID {
		id, _ := net.NodeByName(s)
		return id
	}
	demands := []*Demand{
		{ID: 0, Pairs: []PairDemand{{Src: dc("DC1"), Dst: dc("DC3"), Bandwidth: 400}},
			Target: 0.99, Start: 10, End: 300, Charge: 400, RefundFrac: 0.1, Service: "Redis"},
		{ID: 1, Pairs: []PairDemand{
			{Src: dc("DC2"), Dst: dc("DC5"), Bandwidth: 100},
			{Src: dc("DC4"), Dst: dc("DC6"), Bandwidth: 50},
		}, Target: 0.95, Charge: 150, RefundFrac: 0.25},
	}
	var buf bytes.Buffer
	if err := Save(&buf, net, demands); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, net)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d demands", len(got))
	}
	for i, d := range got {
		want := demands[i]
		if d.ID != want.ID || d.Target != want.Target || d.Charge != want.Charge ||
			d.RefundFrac != want.RefundFrac || d.Service != want.Service ||
			d.Start != want.Start || d.End != want.End || len(d.Pairs) != len(want.Pairs) {
			t.Fatalf("demand %d mismatch: %+v vs %+v", i, d, want)
		}
		for pi, p := range d.Pairs {
			if p != want.Pairs[pi] {
				t.Fatalf("pair mismatch: %+v vs %+v", p, want.Pairs[pi])
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	net := topo.Testbed()
	cases := []string{
		`not json`,
		`[{"id":0,"pairs":[],"target":0.9}]`,
		`[{"id":0,"pairs":[{"src":"NOPE","dst":"DC2","bandwidth_mbps":10}],"target":0.9}]`,
		`[{"id":0,"pairs":[{"src":"DC1","dst":"NOPE","bandwidth_mbps":10}],"target":0.9}]`,
		`[{"id":0,"pairs":[{"src":"DC1","dst":"DC2","bandwidth_mbps":-1}],"target":0.9}]`,
		`[{"id":0,"pairs":[{"src":"DC1","dst":"DC2","bandwidth_mbps":10}],"target":1.5}]`,
	}
	for _, src := range cases {
		if _, err := Load(strings.NewReader(src), net); err == nil {
			t.Errorf("Load(%q): expected error", src)
		}
	}
}
