// Package demand models bandwidth-availability (BA) demands
// d = (b_d, β_d, t^s_d, t^e_d) (§1, §3.1) and generates the Poisson
// workloads used in the paper's evaluation (§5).
package demand

import (
	"fmt"
	"math/rand"
	"sort"

	"bate/internal/topo"
)

// PairDemand is the bandwidth requested on one source-destination pair
// (one component of the vector b_d).
type PairDemand struct {
	Src, Dst  topo.NodeID
	Bandwidth float64 // Mbps
}

// Demand is a bandwidth-availability demand: bandwidth on each of its
// s-d pairs, guaranteed with probability at least Target over its
// lifetime [Start, End).
type Demand struct {
	ID    int
	Pairs []PairDemand
	// Target is the availability target β_d as a fraction (0.9999 for
	// "four nines"). Zero means best-effort (bulk transfer in Table 1).
	Target float64
	// Start and End are model times in seconds.
	Start, End float64
	// Charge is g_d, the price charged for serving the demand. The
	// paper charges a unit price per Mbps.
	Charge float64
	// RefundFrac is μ_d, the fraction of Charge refunded on an SLA
	// violation.
	RefundFrac float64
	// Service names the cloud service whose SLA schedule RefundFrac
	// was drawn from.
	Service string
}

// TotalBandwidth returns Σ_k b^k_d.
func (d *Demand) TotalBandwidth() float64 {
	sum := 0.0
	for _, p := range d.Pairs {
		sum += p.Bandwidth
	}
	return sum
}

// Weight returns Σ_k b^k_d · β_d, the ordering key of Algorithm 1.
func (d *Demand) Weight() float64 { return d.TotalBandwidth() * d.Target }

// String summarizes the demand.
func (d *Demand) String() string {
	return fmt.Sprintf("demand %d: %.0f Mbps @ %.4f%% over %d pair(s)",
		d.ID, d.TotalBandwidth(), d.Target*100, len(d.Pairs))
}

// Table1Targets are the B4 availability targets of Table 1 (bulk
// transfer is best-effort, represented as 0).
var Table1Targets = []float64{0.9999, 0.9995, 0.999, 0.99, 0}

// TestbedTargets are the availability targets used by the testbed
// evaluation (§5.1).
var TestbedTargets = []float64{0.95, 0.99, 0.999, 0.9995, 0.9999}

// SimulationTargets are the targets used by the large-scale
// simulations (§5.2).
var SimulationTargets = []float64{0, 0.90, 0.95, 0.99, 0.999, 0.9995, 0.9999}

// GeneratorConfig shapes a Poisson BA-demand workload (§5.1, §5.2).
type GeneratorConfig struct {
	// ArrivalsPerMinute is the Poisson mean arrival rate per s-d pair.
	ArrivalsPerMinute float64
	// MeanDurationSec is the mean of the exponential demand duration.
	MeanDurationSec float64
	// MinBandwidth/MaxBandwidth bound the uniform bandwidth draw
	// (Mbps). Used when BandwidthPool is nil.
	MinBandwidth, MaxBandwidth float64
	// BandwidthPool, when non-empty, supplies per-pair bandwidth
	// samples (e.g. traffic-matrix entries with the paper's scale-down
	// factor). Indexed by pair then sample.
	BandwidthPool map[[2]topo.NodeID][]float64
	// Targets is the availability-target set demands draw from
	// uniformly.
	Targets []float64
	// UnitPrice is the charge per Mbps (the paper assumes 1).
	UnitPrice float64
	// Refunds supplies (service, μ) choices; defaults to a single
	// anonymous 10% tier if empty.
	Refunds []RefundChoice
}

// RefundChoice is one (service name, refund fraction) option.
type RefundChoice struct {
	Service string
	Frac    float64
}

// Generator produces a time-ordered stream of BA demands.
type Generator struct {
	cfg   GeneratorConfig
	net   *topo.Network
	rng   *rand.Rand
	pairs [][2]topo.NodeID
	next  int
}

// NewGenerator returns a workload generator over all s-d pairs of net.
func NewGenerator(net *topo.Network, cfg GeneratorConfig, rng *rand.Rand) *Generator {
	if cfg.ArrivalsPerMinute <= 0 {
		cfg.ArrivalsPerMinute = 2
	}
	if cfg.MeanDurationSec <= 0 {
		cfg.MeanDurationSec = 300
	}
	if cfg.MinBandwidth <= 0 {
		cfg.MinBandwidth = 10
	}
	if cfg.MaxBandwidth < cfg.MinBandwidth {
		cfg.MaxBandwidth = cfg.MinBandwidth + 40
	}
	if len(cfg.Targets) == 0 {
		cfg.Targets = TestbedTargets
	}
	if cfg.UnitPrice <= 0 {
		cfg.UnitPrice = 1
	}
	if len(cfg.Refunds) == 0 {
		cfg.Refunds = []RefundChoice{{Service: "default", Frac: 0.10}}
	}
	return &Generator{cfg: cfg, net: net, rng: rng, pairs: net.Pairs()}
}

// Generate produces every demand arriving in [0, horizonSec), sorted
// by start time. Each s-d pair receives its own independent Poisson
// arrival process.
func (g *Generator) Generate(horizonSec float64) []*Demand {
	var out []*Demand
	ratePerSec := g.cfg.ArrivalsPerMinute / 60
	for _, pair := range g.pairs {
		t := 0.0
		for {
			t += g.rng.ExpFloat64() / ratePerSec
			if t >= horizonSec {
				break
			}
			d := g.newDemand(pair, t)
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	for i, d := range out {
		d.ID = i
	}
	return out
}

func (g *Generator) newDemand(pair [2]topo.NodeID, start float64) *Demand {
	bw := 0.0
	if pool := g.cfg.BandwidthPool[pair]; len(pool) > 0 {
		bw = pool[g.rng.Intn(len(pool))]
	} else {
		bw = g.cfg.MinBandwidth + g.rng.Float64()*(g.cfg.MaxBandwidth-g.cfg.MinBandwidth)
	}
	dur := g.rng.ExpFloat64() * g.cfg.MeanDurationSec
	refund := g.cfg.Refunds[g.rng.Intn(len(g.cfg.Refunds))]
	g.next++
	return &Demand{
		ID:         g.next - 1,
		Pairs:      []PairDemand{{Src: pair[0], Dst: pair[1], Bandwidth: bw}},
		Target:     g.cfg.Targets[g.rng.Intn(len(g.cfg.Targets))],
		Start:      start,
		End:        start + dur,
		Charge:     bw * g.cfg.UnitPrice,
		RefundFrac: refund.Frac,
		Service:    refund.Service,
	}
}
