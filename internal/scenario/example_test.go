package scenario_test

import (
	"fmt"

	"bate/internal/routing"
	"bate/internal/scenario"
	"bate/internal/topo"
)

// Example enumerates the pruned failure-scenario set of the toy WAN.
func Example() {
	n := topo.Toy()
	set, err := scenario.Enumerate(n, 1) // at most 1 concurrent failure
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d scenarios, residual probability %.6f\n", len(set.Scenarios), set.Residual)
	fmt.Printf("all-up probability %.4f\n", set.Scenarios[0].Prob)
	// Output:
	// 9 scenarios, residual probability 0.001755
	// all-up probability 0.9198
}

// ExampleClassesFor aggregates scenarios into tunnel-state classes —
// the trick that keeps BATE's scheduling LP small.
func ExampleClassesFor() {
	n := topo.Toy()
	dc1, _ := n.NodeByName("DC1")
	dc4, _ := n.NodeByName("DC4")
	tunnels := routing.YenKSP(n, dc1, dc4, 2)
	classes, err := scenario.ClassesFor(n, tunnels, 2)
	if err != nil {
		panic(err)
	}
	for _, c := range classes {
		fmt.Printf("tunnels up %02b: p=%.6f\n", c.UpMask, c.Prob)
	}
	// Output:
	// tunnels up 11: p=0.959038
	// tunnels up 10: p=0.039959
	// tunnels up 01: p=0.000961
	// tunnels up 00: p=0.000038
}
