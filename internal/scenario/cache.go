package scenario

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"bate/internal/metrics"
	"bate/internal/routing"
	"bate/internal/topo"
)

// Scenario-class computation is the single most repeated piece of work
// in the system: every scheduling round, every admission check and
// every availability audit recomputes the tunnel-state classes of each
// demand, yet between rounds the inputs — topology, failure
// probabilities, tunnel sets, pruning depth — almost never change.
// ClassCache memoizes ClassesForCorrelated keyed by a fingerprint of
// exactly those inputs, so repeated rounds hit a lock-guarded map
// lookup instead of the exponential subset enumeration.
//
// Cached class slices are shared between callers and MUST be treated
// as read-only; every consumer in this repo only iterates them.

var (
	cacheHits   = metrics.NewCounter("scenario.class_cache.hits")
	cacheMisses = metrics.NewCounter("scenario.class_cache.misses")
	cacheEvicts = metrics.NewCounter("scenario.class_cache.evictions")
)

// classKey fingerprints one ClassesForCorrelated call. The 128-bit
// FNV digests make accidental collisions between distinct topologies
// or tunnel sets vanishingly unlikely.
type classKey struct {
	topo    [16]byte // links + fail probs + risk groups
	tunnels [16]byte // tunnel link lists, in order
	maxFail int
}

func buildKey(net *topo.Network, groups []RiskGroup, tunnels []routing.Tunnel, maxFail int) classKey {
	var buf [8]byte
	// The topology digest is the Network's memoized fingerprint (node
	// count, link endpoints, failure probabilities) mixed with the risk
	// groups. Hashing the whole link list per lookup used to dominate
	// lookup cost on large networks — O(E) per call even on a hit — and
	// worse, partitioned scheduling issues one lookup per demand per
	// region subproblem, all over the same *Network. The memoized
	// fingerprint makes every subproblem hit the same entries for the
	// cost of hashing only the tunnel lists.
	th := fnv.New128a()
	fp := net.Fingerprint()
	th.Write(fp[:])
	for _, g := range groups {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(g.Prob))
		th.Write(buf[:])
		for _, e := range g.Links {
			binary.LittleEndian.PutUint64(buf[:], uint64(e))
			th.Write(buf[:])
		}
		binary.LittleEndian.PutUint64(buf[:], ^uint64(0)) // group separator
		th.Write(buf[:])
	}

	uh := fnv.New128a()
	for _, t := range tunnels {
		for _, e := range t.Links {
			binary.LittleEndian.PutUint64(buf[:], uint64(e))
			uh.Write(buf[:])
		}
		binary.LittleEndian.PutUint64(buf[:], ^uint64(0)) // tunnel separator
		uh.Write(buf[:])
	}

	var k classKey
	copy(k.topo[:], th.Sum(nil))
	copy(k.tunnels[:], uh.Sum(nil))
	k.maxFail = maxFail
	return k
}

// ClassCache memoizes scenario-class computations. The zero value is
// not usable; create with NewClassCache.
type ClassCache struct {
	mu      sync.RWMutex
	entries map[classKey][]Class
	max     int
}

// DefaultCacheEntries bounds the default cache; each entry is a small
// class slice, so thousands of entries cost a few MB at most.
const DefaultCacheEntries = 4096

// NewClassCache creates a cache holding at most max entries
// (max <= 0 uses DefaultCacheEntries). When full, arbitrary entries
// are evicted to make room; the cache is an accelerator, not a store.
func NewClassCache(max int) *ClassCache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	return &ClassCache{entries: make(map[classKey][]Class), max: max}
}

// DefaultClassCache is the process-wide cache used by CachedClassesFor.
var DefaultClassCache = NewClassCache(0)

// ClassesFor returns the tunnel-state classes for the inputs,
// memoized. The bool reports whether the result came from the cache.
// The returned slice is shared: callers must not modify it.
func (c *ClassCache) ClassesFor(net *topo.Network, groups []RiskGroup, tunnels []routing.Tunnel, maxFail int) ([]Class, bool, error) {
	key := buildKey(net, groups, tunnels, maxFail)
	c.mu.RLock()
	classes, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		cacheHits.Inc()
		return classes, true, nil
	}
	cacheMisses.Inc()
	classes, err := ClassesForCorrelated(net, groups, tunnels, maxFail)
	if err != nil {
		return nil, false, err // errors are cheap to rediscover; don't cache
	}
	c.mu.Lock()
	for len(c.entries) >= c.max {
		for k := range c.entries { // arbitrary eviction
			delete(c.entries, k)
			cacheEvicts.Inc()
			break
		}
	}
	c.entries[key] = classes
	c.mu.Unlock()
	return classes, false, nil
}

// Len returns the number of cached entries.
func (c *ClassCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Reset drops every cached entry (tests and topology reloads).
func (c *ClassCache) Reset() {
	c.mu.Lock()
	c.entries = make(map[classKey][]Class)
	c.mu.Unlock()
}

// CachedClassesFor is ClassesForCorrelated memoized through the
// process-wide DefaultClassCache. The returned slice is shared and
// read-only; the bool reports a cache hit.
func CachedClassesFor(net *topo.Network, groups []RiskGroup, tunnels []routing.Tunnel, maxFail int) ([]Class, bool, error) {
	return DefaultClassCache.ClassesFor(net, groups, tunnels, maxFail)
}

// CacheStats reports the process-wide class-cache counters.
func CacheStats() (hits, misses, evictions int64) {
	return cacheHits.Load(), cacheMisses.Load(), cacheEvicts.Load()
}
