package scenario

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"bate/internal/routing"
	"bate/internal/topo"
)

func cacheTestNet(t *testing.T) (*topo.Network, []routing.Tunnel) {
	t.Helper()
	net := topo.Testbed()
	ts := routing.Compute(net, routing.KShortest, 3)
	pairs := net.Pairs()
	var tunnels []routing.Tunnel
	tunnels = append(tunnels, ts.For(pairs[0][0], pairs[0][1])...)
	if len(tunnels) == 0 {
		t.Fatal("no tunnels")
	}
	return net, tunnels
}

func TestClassCacheHitMissCounts(t *testing.T) {
	net, tunnels := cacheTestNet(t)
	c := NewClassCache(16)

	first, hit, err := c.ClassesFor(net, nil, tunnels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first lookup reported a hit")
	}
	if c.Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", c.Len())
	}
	for i := 0; i < 5; i++ {
		again, hit, err := c.ClassesFor(net, nil, tunnels, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatalf("lookup %d missed", i)
		}
		if len(again) != len(first) {
			t.Fatalf("hit returned %d classes, want %d", len(again), len(first))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("class %d changed across hits", j)
			}
		}
	}

	// A different maxFail is a different key.
	if _, hit, err := c.ClassesFor(net, nil, tunnels, 1); err != nil || hit {
		t.Fatalf("maxFail=1 lookup: hit=%v err=%v", hit, err)
	}
	// A different tunnel subset is a different key.
	if _, hit, err := c.ClassesFor(net, nil, tunnels[:1], 2); err != nil || hit {
		t.Fatalf("subset lookup: hit=%v err=%v", hit, err)
	}
	if c.Len() != 3 {
		t.Fatalf("cache has %d entries, want 3", c.Len())
	}
}

func TestClassCacheDistinguishesFailProbs(t *testing.T) {
	net, tunnels := cacheTestNet(t)
	c := NewClassCache(16)
	if _, hit, err := c.ClassesFor(net, nil, tunnels, 2); err != nil || hit {
		t.Fatalf("first: hit=%v err=%v", hit, err)
	}
	// Same structure, different failure probabilities: must be a miss
	// with different class probabilities.
	probs := make([]float64, net.NumLinks())
	for i := range probs {
		probs[i] = 0.01 + 0.001*float64(i)
	}
	net2, err := net.WithFailProbs(probs)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := routing.Compute(net2, routing.KShortest, 3)
	pairs := net2.Pairs()
	tunnels2 := ts2.For(pairs[0][0], pairs[0][1])
	cl2, hit, err := c.ClassesFor(net2, nil, tunnels2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("different fail probs hit the cache")
	}
	want, err := ClassesForCorrelated(net2, nil, tunnels2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl2) != len(want) {
		t.Fatalf("got %d classes, want %d", len(cl2), len(want))
	}
	for i := range want {
		if cl2[i] != want[i] {
			t.Fatalf("class %d mismatch", i)
		}
	}
}

func TestClassCacheGroupsKeyed(t *testing.T) {
	net, tunnels := cacheTestNet(t)
	c := NewClassCache(16)
	groups := []RiskGroup{{Name: "conduit", Links: []topo.LinkID{0, 1}, Prob: 0.001}}
	a, hit, err := c.ClassesFor(net, groups, tunnels, 2)
	if err != nil || hit {
		t.Fatalf("grouped first: hit=%v err=%v", hit, err)
	}
	b, hit, err := c.ClassesFor(net, nil, tunnels, 2)
	if err != nil || hit {
		t.Fatalf("ungrouped after grouped: hit=%v err=%v", hit, err)
	}
	// Sanity: grouped and ungrouped results differ (group adds risk).
	sameAll := len(a) == len(b)
	if sameAll {
		for i := range a {
			if a[i] != b[i] {
				sameAll = false
				break
			}
		}
	}
	if sameAll {
		t.Fatal("grouped and ungrouped classes identical; key ignored groups?")
	}
	if _, hit, _ := c.ClassesFor(net, groups, tunnels, 2); !hit {
		t.Fatal("grouped lookup missed the second time")
	}
}

func TestClassCacheEviction(t *testing.T) {
	net, tunnels := cacheTestNet(t)
	c := NewClassCache(2)
	for mf := 1; mf <= 4; mf++ {
		if _, _, err := c.ClassesFor(net, nil, tunnels, mf); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 2 {
		t.Fatalf("cache grew to %d entries past cap 2", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("reset left %d entries", c.Len())
	}
}

// TestClassCacheConcurrent hammers one cache from many goroutines;
// run with -race.
func TestClassCacheConcurrent(t *testing.T) {
	net, tunnels := cacheTestNet(t)
	want, err := ClassesForCorrelated(net, nil, tunnels, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClassCache(8)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				mf := 1 + (g+i)%3
				got, _, err := c.ClassesFor(net, nil, tunnels, mf)
				if err != nil {
					errs <- err
					return
				}
				if mf == 2 {
					for j := range want {
						if got[j] != want[j] {
							t.Errorf("goroutine %d: class %d diverged", g, j)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEnumerateParallelMatchesSerial verifies the fan-out enumeration
// is byte-identical to the serial recursion on a topology large enough
// to cross the parallel threshold.
func TestEnumerateParallelMatchesSerial(t *testing.T) {
	// Build a ring big enough that C(n,2)+n+1 > parallelEnumerateThreshold.
	rng := rand.New(rand.NewSource(11))
	b := topo.NewBuilder("bigring")
	n := 96
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A'+i%26)) + string(rune('a'+i/26))
	}
	for i := 0; i < n; i++ {
		b.Bidi(names[i], names[(i+1)%n], 1000, 1e-4*(1+rng.Float64()))
	}
	net := b.MustBuild()
	if c := Count(net.NumLinks(), 2); c <= parallelEnumerateThreshold {
		t.Fatalf("test topology too small: %d scenarios", c)
	}

	got, err := Enumerate(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := enumerateSerialReference(net, 2)
	if len(got.Scenarios) != len(want.Scenarios) {
		t.Fatalf("got %d scenarios, want %d", len(got.Scenarios), len(want.Scenarios))
	}
	for i := range want.Scenarios {
		g, w := got.Scenarios[i], want.Scenarios[i]
		if g.Prob != w.Prob || len(g.Down) != len(w.Down) {
			t.Fatalf("scenario %d mismatch: %+v vs %+v", i, g, w)
		}
		for j := range w.Down {
			if g.Down[j] != w.Down[j] {
				t.Fatalf("scenario %d down set mismatch", i)
			}
		}
	}
	if got.Residual != want.Residual {
		t.Fatalf("residual %v != %v", got.Residual, want.Residual)
	}
	if math.Abs(got.Residual) > 1 {
		t.Fatalf("implausible residual %v", got.Residual)
	}
}

// enumerateSerialReference is the pre-parallel implementation, kept as
// the test oracle.
func enumerateSerialReference(net *topo.Network, maxFail int) *Set {
	links := net.Links()
	allUp := 1.0
	odds := make([]float64, len(links))
	for i, l := range links {
		allUp *= 1 - l.FailProb
		odds[i] = l.FailProb / (1 - l.FailProb)
	}
	set := &Set{Net: net, MaxFail: maxFail}
	var down []topo.LinkID
	total := 0.0
	var rec func(start int, prob float64)
	rec = func(start int, prob float64) {
		set.Scenarios = append(set.Scenarios, Scenario{Down: append([]topo.LinkID(nil), down...), Prob: prob})
		total += prob
		if len(down) == maxFail {
			return
		}
		for i := start; i < len(links); i++ {
			down = append(down, topo.LinkID(i))
			rec(i+1, prob*odds[i])
			down = down[:len(down)-1]
		}
	}
	rec(0, allUp)
	set.Residual = math.Max(0, 1-total)
	return set
}
