package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"bate/internal/routing"
	"bate/internal/topo"
)

func TestEnumerateToy(t *testing.T) {
	n := topo.Toy() // 8 links
	set, err := Enumerate(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Scenarios) != 9 { // all-up + 8 single failures
		t.Fatalf("got %d scenarios, want 9", len(set.Scenarios))
	}
	// Scenario 0 is all-up with probability Π(1-x).
	want := 1.0
	for _, l := range n.Links() {
		want *= 1 - l.FailProb
	}
	if math.Abs(set.Scenarios[0].Prob-want) > 1e-12 {
		t.Fatalf("all-up prob = %v, want %v", set.Scenarios[0].Prob, want)
	}
	// Probabilities plus residual sum to 1.
	sum := set.Residual
	for _, s := range set.Scenarios {
		sum += s.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("total probability = %v", sum)
	}
}

func TestEnumerateCountsMatch(t *testing.T) {
	n := topo.Testbed() // 16 links
	for y := 0; y <= 3; y++ {
		set, err := Enumerate(n, y)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(set.Scenarios)) != Count(16, y) {
			t.Fatalf("y=%d: %d scenarios, Count says %d", y, len(set.Scenarios), Count(16, y))
		}
	}
}

func TestCount(t *testing.T) {
	cases := []struct {
		n, y int
		want int64
	}{
		{38, 0, 1},
		{38, 1, 39},
		{38, 2, 39 + 703},
		{4, 4, 16},
		{4, 9, 16},
	}
	for _, c := range cases {
		if got := Count(c.n, c.y); got != c.want {
			t.Errorf("Count(%d,%d) = %d, want %d", c.n, c.y, got, c.want)
		}
	}
	if Count(200, 50) <= 0 {
		t.Error("Count should saturate, not overflow")
	}
}

func TestEnumerateLimits(t *testing.T) {
	if _, err := Enumerate(topo.ATT(), 4); err == nil {
		t.Fatal("expected limit error for ATT y=4")
	}
	if _, err := Enumerate(topo.Toy(), -1); err == nil {
		t.Fatal("expected error for negative maxFail")
	}
}

func TestLinkAndTunnelUp(t *testing.T) {
	n := topo.Toy()
	sc := Scenario{Down: []topo.LinkID{2, 5}}
	if sc.LinkUp(2) || sc.LinkUp(5) {
		t.Fatal("down links reported up")
	}
	if !sc.LinkUp(0) || !sc.LinkUp(7) {
		t.Fatal("up links reported down")
	}
	dc1, _ := n.NodeByName("DC1")
	dc4, _ := n.NodeByName("DC4")
	paths := routing.YenKSP(n, dc1, dc4, 2)
	for _, p := range paths {
		up := Scenario{}
		if !up.TunnelUp(p) {
			t.Fatal("tunnel down in all-up scenario")
		}
		down := Scenario{Down: []topo.LinkID{p.Links[0]}}
		if down.TunnelUp(p) {
			t.Fatal("tunnel up despite failed link")
		}
	}
}

// classesByEnumeration computes tunnel-state class probabilities by
// brute-force streaming over the enumerated scenario set.
func classesByEnumeration(t *testing.T, n *topo.Network, tunnels []routing.Tunnel, y int) map[uint64]float64 {
	t.Helper()
	set, err := Enumerate(n, y)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64]float64)
	for _, sc := range set.Scenarios {
		var mask uint64
		for i, tun := range tunnels {
			if sc.TunnelUp(tun) {
				mask |= 1 << uint(i)
			}
		}
		out[mask] += sc.Prob
	}
	return out
}

func TestClassesForMatchesEnumeration(t *testing.T) {
	for _, netName := range []string{"Toy4", "Testbed6"} {
		n, err := topo.ByName(netName)
		if err != nil {
			t.Fatal(err)
		}
		dc1, _ := n.NodeByName("DC1")
		dc4, _ := n.NodeByName("DC4")
		tunnels := routing.YenKSP(n, dc1, dc4, 4)
		for y := 0; y <= 3; y++ {
			want := classesByEnumeration(t, n, tunnels, y)
			classes, err := ClassesFor(n, tunnels, y)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[uint64]float64)
			for _, c := range classes {
				got[c.UpMask] += c.Prob
			}
			for mask, p := range want {
				if math.Abs(got[mask]-p) > 1e-12 {
					t.Fatalf("%s y=%d mask %b: got %v want %v", netName, y, mask, got[mask], p)
				}
			}
			for mask, p := range got {
				if p > 1e-15 && math.Abs(want[mask]-p) > 1e-12 {
					t.Fatalf("%s y=%d: unexpected class %b prob %v", netName, y, mask, p)
				}
			}
		}
	}
}

func TestClassesForB4DeepPruning(t *testing.T) {
	// y=4 on B4 would be 74k scenarios enumerated; the analytic path
	// must still be instant and sum to P(<=4 failures).
	n := topo.B4()
	tunnels := routing.YenKSP(n, 0, 7, 4)
	classes, err := ClassesFor(n, tunnels, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, c := range classes {
		sum += c.Prob
	}
	tail := atMostFailures(n, map[topo.LinkID]bool{}, 4)
	if math.Abs(sum-tail[4]) > 1e-9 {
		t.Fatalf("classes sum %v != P(<=4 failures) %v", sum, tail[4])
	}
	// The all-up class dominates on reliable links.
	if !classes[0].AllUp(len(tunnels)) || classes[0].Prob < 0.9 {
		t.Fatalf("first class %+v should be all-up with high prob", classes[0])
	}
}

func TestClassHelpers(t *testing.T) {
	c := Class{UpMask: 0b101}
	if !c.TunnelUp(0) || c.TunnelUp(1) || !c.TunnelUp(2) {
		t.Fatal("TunnelUp wrong")
	}
	if c.AllUp(3) {
		t.Fatal("AllUp(3) should be false for 0b101")
	}
	if !(Class{UpMask: 0b111}).AllUp(3) {
		t.Fatal("AllUp(3) should be true for 0b111")
	}
}

func TestClassesForErrors(t *testing.T) {
	n := topo.Toy()
	var many []routing.Tunnel
	dc1, _ := n.NodeByName("DC1")
	dc4, _ := n.NodeByName("DC4")
	paths := routing.YenKSP(n, dc1, dc4, 2)
	for i := 0; i < 70; i++ {
		many = append(many, paths[0])
	}
	if _, err := ClassesFor(n, many, 1); err == nil {
		t.Fatal("expected tunnel-count error")
	}
}

func TestWeibullMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const samples = 200000
	sum := 0.0
	for i := 0; i < samples; i++ {
		sum += Weibull(rng, 8, 0.6)
	}
	mean := sum / samples
	// E[Weibull(k=8, λ=0.6)] = 0.6·Γ(1+1/8) ≈ 0.5651.
	want := 0.6 * math.Gamma(1+1.0/8)
	if math.Abs(mean-want) > 0.01 {
		t.Fatalf("mean = %v, want ≈ %v", mean, want)
	}
}

func TestWeibullFailProbsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	probs := WeibullFailProbs(rng, 1000)
	for _, p := range probs {
		if p <= 0 || p > 2e-4 {
			t.Fatalf("failure probability %v outside Fig.1(b) band", p)
		}
	}
}

func TestAtMostFailuresUniform(t *testing.T) {
	// 4 links at x=0.5 each: P(<=1 failures) = C(4,0)/16 + C(4,1)/16 = 5/16.
	probs := make([]float64, 8)
	for i := range probs {
		probs[i] = 0.5
	}
	n, err := topo.Toy().WithFailProbs(probs)
	if err != nil {
		t.Fatal(err)
	}
	tail := atMostFailures(n, map[topo.LinkID]bool{}, 1)
	want := (1.0 + 8.0) / 256.0
	if math.Abs(tail[1]-want) > 1e-12 {
		t.Fatalf("tail[1] = %v, want %v", tail[1], want)
	}
}

// Randomized cross-check: on random small graphs with random failure
// probabilities, the analytic class aggregation must match streaming
// enumeration for every pruning depth.
func TestClassesForMatchesEnumerationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 15; trial++ {
		nodes := 4 + rng.Intn(3)
		b := topo.NewBuilder("rand")
		names := make([]string, nodes)
		for i := range names {
			names[i] = string(rune('A' + i))
			b.Node(names[i])
		}
		// Ring plus random chords, random failure probabilities.
		for i := 0; i < nodes; i++ {
			b.Bidi(names[i], names[(i+1)%nodes], 1000, rng.Float64()*0.05)
		}
		for c := 0; c < 2; c++ {
			a, d := rng.Intn(nodes), rng.Intn(nodes)
			if a != d && (a+1)%nodes != d && (d+1)%nodes != a {
				b.Bidi(names[a], names[d], 1000, rng.Float64()*0.05)
			}
		}
		n, err := b.Build()
		if err != nil {
			continue // duplicate chord; skip this trial
		}
		src := topo.NodeID(rng.Intn(nodes))
		dst := topo.NodeID((int(src) + 1 + rng.Intn(nodes-1)) % nodes)
		tunnels := routing.YenKSP(n, src, dst, 3)
		if len(tunnels) == 0 {
			continue
		}
		for y := 1; y <= 2; y++ {
			classes, err := ClassesFor(n, tunnels, y)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[uint64]float64)
			for _, c := range classes {
				got[c.UpMask] += c.Prob
			}
			want := classesByEnumeration(t, n, tunnels, y)
			for mask, p := range want {
				if math.Abs(got[mask]-p) > 1e-10 {
					t.Fatalf("trial %d y=%d mask %b: got %v want %v", trial, y, mask, got[mask], p)
				}
			}
		}
	}
}

// Class probabilities are monotone in the pruning depth: deeper
// pruning can only add probability mass to each class.
func TestClassesMonotoneInDepth(t *testing.T) {
	n := topo.Testbed()
	dc1, _ := n.NodeByName("DC1")
	dc5, _ := n.NodeByName("DC5")
	tunnels := routing.YenKSP(n, dc1, dc5, 4)
	prev := make(map[uint64]float64)
	prevTotal := 0.0
	for y := 0; y <= 4; y++ {
		classes, err := ClassesFor(n, tunnels, y)
		if err != nil {
			t.Fatal(err)
		}
		cur := make(map[uint64]float64)
		total := 0.0
		for _, c := range classes {
			cur[c.UpMask] += c.Prob
			total += c.Prob
		}
		if total < prevTotal-1e-12 {
			t.Fatalf("y=%d total %v < y=%d total %v", y, total, y-1, prevTotal)
		}
		for mask, p := range prev {
			if cur[mask] < p-1e-12 {
				t.Fatalf("y=%d class %b shrank: %v -> %v", y, mask, p, cur[mask])
			}
		}
		prev, prevTotal = cur, total
	}
}

func TestEnumerateCorrelated(t *testing.T) {
	n := topo.Toy()
	// The two directions of the DC1-DC2 fiber share a conduit.
	group := RiskGroup{Name: "conduit", Links: []topo.LinkID{0, 1}, Prob: 0.01}
	set, err := EnumerateCorrelated(n, []RiskGroup{group}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Units: 8 links + 1 group → 10 scenarios at maxFail 1, all with
	// distinct down sets.
	if len(set.Scenarios) != 10 {
		t.Fatalf("got %d scenarios", len(set.Scenarios))
	}
	// The group scenario takes both directions down at once.
	found := false
	for _, sc := range set.Scenarios {
		if len(sc.Down) == 2 && sc.Down[0] == 0 && sc.Down[1] == 1 {
			found = true
			if sc.Prob <= 0 {
				t.Fatal("group scenario has zero probability")
			}
		}
	}
	if !found {
		t.Fatal("correlated two-link scenario missing")
	}
	// Probabilities plus residual still sum to 1.
	sum := set.Residual
	for _, sc := range set.Scenarios {
		sum += sc.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("total %v", sum)
	}
}

func TestEnumerateCorrelatedMerging(t *testing.T) {
	// With maxFail 2, link-0-down can arise alone or inside the group;
	// identical down sets must merge into one scenario.
	n := topo.Toy()
	group := RiskGroup{Name: "g", Links: []topo.LinkID{0, 1}, Prob: 0.01}
	set, err := EnumerateCorrelated(n, []RiskGroup{group}, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, sc := range set.Scenarios {
		key := fmt.Sprint(sc.Down)
		seen[key]++
		if seen[key] > 1 {
			t.Fatalf("down set %v appears twice", sc.Down)
		}
	}
	// {0,1} is reachable as (group), (link0+link1), (group+link0),
	// (group+link1): its merged probability must exceed the pure
	// independent product.
	indep := 0.0
	for _, sc := range set.Scenarios {
		if fmt.Sprint(sc.Down) == fmt.Sprint([]topo.LinkID{0, 1}) {
			indep = sc.Prob
		}
	}
	l0 := n.Link(0).FailProb
	l1 := n.Link(1).FailProb
	if indep <= l0*l1 {
		t.Fatalf("correlated prob %v not above independent %v", indep, l0*l1)
	}
}

func TestEnumerateCorrelatedValidation(t *testing.T) {
	n := topo.Toy()
	cases := []RiskGroup{
		{Name: "bad-prob", Links: []topo.LinkID{0}, Prob: 1.5},
		{Name: "empty", Prob: 0.1},
		{Name: "bad-link", Links: []topo.LinkID{99}, Prob: 0.1},
	}
	for _, g := range cases {
		if _, err := EnumerateCorrelated(n, []RiskGroup{g}, 1); err == nil {
			t.Errorf("group %q: expected error", g.Name)
		}
	}
	if _, err := EnumerateCorrelated(n, nil, -1); err == nil {
		t.Error("expected negative maxFail error")
	}
}

// Without groups, the correlated enumeration degenerates to the
// independent one.
func TestEnumerateCorrelatedDegenerate(t *testing.T) {
	n := topo.Testbed()
	indep, err := Enumerate(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := EnumerateCorrelated(n, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(indep.Scenarios) != len(corr.Scenarios) {
		t.Fatalf("%d vs %d scenarios", len(indep.Scenarios), len(corr.Scenarios))
	}
	want := make(map[string]float64)
	for _, sc := range indep.Scenarios {
		want[fmt.Sprint(sc.Down)] = sc.Prob
	}
	for _, sc := range corr.Scenarios {
		if math.Abs(want[fmt.Sprint(sc.Down)]-sc.Prob) > 1e-12 {
			t.Fatalf("scenario %v prob mismatch", sc.Down)
		}
	}
}

// Correlated class aggregation must match brute force over the
// correlated scenario set.
func TestClassesForCorrelatedMatchesEnumeration(t *testing.T) {
	n := topo.Toy()
	dc1, _ := n.NodeByName("DC1")
	dc4, _ := n.NodeByName("DC4")
	tunnels := routing.YenKSP(n, dc1, dc4, 2)
	groups := []RiskGroup{
		{Name: "conduit12", Links: []topo.LinkID{0, 1}, Prob: 0.02},
		{Name: "conduit34", Links: []topo.LinkID{4, 5}, Prob: 0.005},
	}
	for y := 1; y <= 2; y++ {
		set, err := EnumerateCorrelated(n, groups, y)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[uint64]float64)
		for _, sc := range set.Scenarios {
			var mask uint64
			for i, tun := range tunnels {
				if sc.TunnelUp(tun) {
					mask |= 1 << uint(i)
				}
			}
			want[mask] += sc.Prob
		}
		classes, err := ClassesForCorrelated(n, groups, tunnels, y)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[uint64]float64)
		for _, c := range classes {
			got[c.UpMask] += c.Prob
		}
		for mask, p := range want {
			if math.Abs(got[mask]-p) > 1e-12 {
				t.Fatalf("y=%d mask %b: got %v want %v", y, mask, got[mask], p)
			}
		}
	}
}

// With no groups, the correlated aggregation equals the independent one.
func TestClassesForCorrelatedDegenerate(t *testing.T) {
	n := topo.Testbed()
	dc1, _ := n.NodeByName("DC1")
	dc5, _ := n.NodeByName("DC5")
	tunnels := routing.YenKSP(n, dc1, dc5, 4)
	for y := 1; y <= 3; y++ {
		a, err := ClassesFor(n, tunnels, y)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ClassesForCorrelated(n, nil, tunnels, y)
		if err != nil {
			t.Fatal(err)
		}
		am := map[uint64]float64{}
		for _, c := range a {
			am[c.UpMask] += c.Prob
		}
		for _, c := range b {
			if math.Abs(am[c.UpMask]-c.Prob) > 1e-12 {
				t.Fatalf("y=%d mask %b: %v vs %v", y, c.UpMask, am[c.UpMask], c.Prob)
			}
		}
	}
}

// A conduit group sharing both paths' first hops slashes achievable
// availability: the correlated model must report less class mass on
// the all-up combination than the independent model.
func TestCorrelationReducesAllUpMass(t *testing.T) {
	n := topo.Toy()
	dc1, _ := n.NodeByName("DC1")
	dc4, _ := n.NodeByName("DC4")
	tunnels := routing.YenKSP(n, dc1, dc4, 2)
	// Both paths' first hops (DC1->DC2 and DC1->DC3) share a conduit.
	var firstHops []topo.LinkID
	for _, t2 := range tunnels {
		firstHops = append(firstHops, t2.Links[0])
	}
	groups := []RiskGroup{{Name: "dc1-conduit", Links: firstHops, Prob: 0.01}}
	indep, err := ClassesFor(n, tunnels, 2)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := ClassesForCorrelated(n, groups, tunnels, 2)
	if err != nil {
		t.Fatal(err)
	}
	allUpMass := func(cs []Class) float64 {
		for _, c := range cs {
			if c.AllUp(len(tunnels)) {
				return c.Prob
			}
		}
		return 0
	}
	if allUpMass(corr) >= allUpMass(indep) {
		t.Fatalf("correlated all-up %v >= independent %v", allUpMass(corr), allUpMass(indep))
	}
	// And the both-down class gains mass.
	bothDown := func(cs []Class) float64 {
		for _, c := range cs {
			if c.UpMask == 0 {
				return c.Prob
			}
		}
		return 0
	}
	if bothDown(corr) <= bothDown(indep) {
		t.Fatalf("correlated both-down %v <= independent %v", bothDown(corr), bothDown(indep))
	}
}
