// Package scenario models network failure scenarios (§3.1): a
// scenario is a set of simultaneously failed links with probability
// p_z = Π z_i(1-x_i) + (1-z_i)x_i under independent link failures.
//
// BATE prunes the exponential scenario space by considering at most y
// concurrent link failures and aggregating everything else into one
// unqualified residual scenario (Fig. 3). This package provides both
// an explicit enumeration of the pruned set (used by failure recovery,
// FFC, and the paper-faithful LP of Fig. 16/17) and an exact analytic
// aggregation of scenarios into tunnel-state classes (used by the fast
// scheduling LP; see DESIGN.md).
package scenario

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bate/internal/parallel"
	"bate/internal/routing"
	"bate/internal/topo"
)

// Scenario is one network failure scenario: the set of down links and
// its probability.
type Scenario struct {
	Down []topo.LinkID // sorted ascending
	Prob float64
}

// LinkUp reports whether link e is up in the scenario (w^z_e).
func (s Scenario) LinkUp(e topo.LinkID) bool {
	i := sort.Search(len(s.Down), func(i int) bool { return s.Down[i] >= e })
	return i >= len(s.Down) || s.Down[i] != e
}

// TunnelUp reports whether every link of t is up (v^z_t).
func (s Scenario) TunnelUp(t routing.Tunnel) bool {
	for _, e := range t.Links {
		if !s.LinkUp(e) {
			return false
		}
	}
	return true
}

// Set is a pruned scenario set: all scenarios with at most MaxFail
// concurrent link failures, plus the aggregated residual probability
// of every pruned (and therefore unqualified) scenario.
type Set struct {
	Net       *topo.Network
	MaxFail   int
	Scenarios []Scenario
	// Residual is the total probability of pruned scenarios.
	Residual float64
}

// MaxEnumerated guards against materializing enormous scenario sets;
// Enumerate returns an error beyond this many scenarios.
const MaxEnumerated = 2_000_000

// Enumerate returns the pruned scenario set with at most maxFail
// concurrent link failures. Scenario 0 is always the all-up scenario.
//
// Large sets are enumerated in parallel, fanned out over the subtrees
// rooted at each first-failed link. The decomposition is exact: the
// serial depth-first order emits the all-up scenario followed by the
// subtree of scenarios whose smallest down link is e, for e ascending,
// and every scenario's probability is the same product chain either
// way — so the output is byte-identical at any worker count.
func Enumerate(net *topo.Network, maxFail int) (*Set, error) {
	if maxFail < 0 {
		return nil, fmt.Errorf("scenario: negative maxFail %d", maxFail)
	}
	count := Count(net.NumLinks(), maxFail)
	if count > MaxEnumerated {
		return nil, fmt.Errorf("scenario: %d scenarios exceed limit %d (links=%d, y=%d)",
			count, MaxEnumerated, net.NumLinks(), maxFail)
	}
	links := net.Links()
	allUp := 1.0
	odds := make([]float64, len(links)) // x_e / (1-x_e)
	for i, l := range links {
		allUp *= 1 - l.FailProb
		odds[i] = l.FailProb / (1 - l.FailProb)
	}

	// subtree enumerates every scenario whose down set starts with
	// prefix (depth-first, ascending link ids), appending to out.
	subtree := func(prefix []topo.LinkID, prob float64, out *[]Scenario) {
		var down []topo.LinkID
		down = append(down, prefix...)
		var rec func(start int, prob float64)
		rec = func(start int, prob float64) {
			*out = append(*out, Scenario{Down: append([]topo.LinkID(nil), down...), Prob: prob})
			if len(down) == maxFail {
				return
			}
			for i := start; i < len(links); i++ {
				down = append(down, topo.LinkID(i))
				rec(i+1, prob*odds[i])
				down = down[:len(down)-1]
			}
		}
		start := 0
		if len(prefix) > 0 {
			start = int(prefix[len(prefix)-1]) + 1
		}
		rec(start, prob)
	}

	set := &Set{Net: net, MaxFail: maxFail}
	pool := parallel.Default()
	if maxFail == 0 || count < parallelEnumerateThreshold || pool.Size() <= 1 {
		subtree(nil, allUp, &set.Scenarios)
	} else {
		// Root scenario first, then one fan-out task per first link.
		set.Scenarios = append(set.Scenarios, Scenario{Prob: allUp})
		buckets := make([][]Scenario, len(links))
		err := pool.ForEach(context.Background(), len(links), func(i int) error {
			subtree([]topo.LinkID{topo.LinkID(i)}, allUp*odds[i], &buckets[i])
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, b := range buckets {
			set.Scenarios = append(set.Scenarios, b...)
		}
	}
	// Sum serially over the final slice so Residual is bit-identical
	// to the serial enumeration regardless of worker count.
	total := 0.0
	for _, sc := range set.Scenarios {
		total += sc.Prob
	}
	set.Residual = math.Max(0, 1-total)
	return set, nil
}

// parallelEnumerateThreshold is the scenario count below which the
// fan-out overhead exceeds the enumeration cost.
const parallelEnumerateThreshold = 4096

// Count returns the number of scenarios with at most maxFail failures
// among nLinks links: sum_{i=0}^{y} C(n, i). Saturates at MaxInt64.
func Count(nLinks, maxFail int) int64 {
	var total int64 = 0
	c := int64(1) // C(n, 0)
	for i := 0; i <= maxFail && i <= nLinks; i++ {
		if total > math.MaxInt64-c {
			return math.MaxInt64
		}
		total += c
		if i == nLinks {
			break
		}
		// C(n, i+1) = C(n, i) * (n-i) / (i+1); guard overflow.
		if c > math.MaxInt64/int64(nLinks-i) {
			return math.MaxInt64
		}
		c = c * int64(nLinks-i) / int64(i+1)
	}
	return total
}

// Class aggregates all scenarios in which exactly the tunnels set in
// UpMask (bit i ↔ tunnel i) are up, within the ≤maxFail pruned space.
type Class struct {
	UpMask uint64
	Prob   float64
}

// AllUp reports whether every one of n tunnels is up in the class.
func (c Class) AllUp(n int) bool { return c.UpMask == (uint64(1)<<n)-1 }

// TunnelUp reports whether tunnel i is up in the class.
func (c Class) TunnelUp(i int) bool { return c.UpMask&(1<<uint(i)) != 0 }

// ClassesFor computes, exactly and without enumerating the full
// scenario space, the probability of every tunnel-up/down combination
// among the given tunnels, restricted to scenarios with at most
// maxFail total link failures. Scenarios beyond maxFail contribute to
// no class (they are the pruned residual). At most 63 tunnels are
// supported.
//
// This is exact because a scenario's effect on the tunnels depends
// only on the states of the links the tunnels traverse; for each
// assignment S of those "relevant" links we multiply by the
// Poisson-binomial probability that the remaining links suffer at most
// maxFail-|S| failures.
func ClassesFor(net *topo.Network, tunnels []routing.Tunnel, maxFail int) ([]Class, error) {
	if len(tunnels) > 63 {
		return nil, fmt.Errorf("scenario: %d tunnels exceed the 63-tunnel class limit", len(tunnels))
	}
	// Relevant links, deduplicated, in id order.
	relSet := make(map[topo.LinkID]bool)
	for _, t := range tunnels {
		for _, e := range t.Links {
			relSet[e] = true
		}
	}
	rel := make([]topo.LinkID, 0, len(relSet))
	for e := range relSet {
		rel = append(rel, e)
	}
	sort.Slice(rel, func(i, j int) bool { return rel[i] < rel[j] })
	if len(rel) > 30 {
		return nil, fmt.Errorf("scenario: %d relevant links exceed the 2^30 subset limit", len(rel))
	}

	// Tail DP: prob of at most m failures among the non-relevant links.
	tail := atMostFailures(net, relSet, maxFail)

	// Tunnel masks over relevant links.
	relIndex := make(map[topo.LinkID]int, len(rel))
	for i, e := range rel {
		relIndex[e] = i
	}
	tunMask := make([]uint32, len(tunnels)) // bit j ↔ relevant link j used
	for i, t := range tunnels {
		for _, e := range t.Links {
			tunMask[i] |= 1 << uint(relIndex[e])
		}
	}

	probs := make(map[uint64]float64)
	nRel := len(rel)
	// Enumerate down-subsets of relevant links with |S| <= maxFail.
	var downIdx []int
	var rec func(start int, prob float64)
	base := 1.0
	for _, e := range rel {
		base *= 1 - net.Link(e).FailProb
	}
	odds := make([]float64, nRel)
	for i, e := range rel {
		odds[i] = net.Link(e).FailProb / (1 - net.Link(e).FailProb)
	}
	rec = func(start int, prob float64) {
		var downMask uint32
		for _, i := range downIdx {
			downMask |= 1 << uint(i)
		}
		var up uint64
		for i := range tunnels {
			if tunMask[i]&downMask == 0 {
				up |= 1 << uint(i)
			}
		}
		budget := maxFail - len(downIdx)
		probs[up] += prob * tail[budget]
		if len(downIdx) == maxFail {
			return
		}
		for i := start; i < nRel; i++ {
			downIdx = append(downIdx, i)
			rec(i+1, prob*odds[i])
			downIdx = downIdx[:len(downIdx)-1]
		}
	}
	rec(0, base)

	classes := make([]Class, 0, len(probs))
	for m, p := range probs {
		classes = append(classes, Class{UpMask: m, Prob: p})
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].UpMask > classes[j].UpMask })
	return classes, nil
}

// atMostFailures returns tail[m] = P(at most m of the links outside
// exclude fail), for m = 0..maxFail, via a Poisson-binomial DP.
func atMostFailures(net *topo.Network, exclude map[topo.LinkID]bool, maxFail int) []float64 {
	// dp[j] = P(exactly j failures so far), truncated at maxFail.
	dp := make([]float64, maxFail+1)
	dp[0] = 1
	for _, l := range net.Links() {
		if exclude[l.ID] {
			continue
		}
		x := l.FailProb
		for j := maxFail; j >= 1; j-- {
			dp[j] = dp[j]*(1-x) + dp[j-1]*x
		}
		dp[0] *= 1 - x
	}
	tail := make([]float64, maxFail+1)
	sum := 0.0
	for m := 0; m <= maxFail; m++ {
		sum += dp[m]
		tail[m] = sum
	}
	return tail
}

// Weibull samples from a Weibull distribution with shape k and scale
// lambda: λ·(-ln U)^(1/k).
func Weibull(rng *rand.Rand, shape, scale float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// FailProbScale maps a Weibull(8, 0.6) sample into the empirical
// failure-probability band of Fig. 1(b) (1e-4 % to 1e-2 %): a sample w
// becomes the fraction w·1e-4.
const FailProbScale = 1e-4

// WeibullFailProbs draws n link failure probabilities matching the
// paper's simulation setup (§5.2: Weibull, shape 8, scale 0.6, fitted
// to Fig. 1(b)). Results are fractions in (0, ~1e-4·1.2].
func WeibullFailProbs(rng *rand.Rand, n int) []float64 {
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = Weibull(rng, 8, 0.6) * FailProbScale
	}
	return probs
}
