package scenario

import (
	"fmt"
	"math"
	"sort"

	"bate/internal/routing"
	"bate/internal/topo"
)

// Shared-risk link groups (SRLGs) relax the paper's independence
// assumption (§3.1 footnote 3): links sharing a fiber conduit, an
// optical segment or a line card fail together. A RiskGroup is one
// such set with its own failure probability; correlated scenarios
// enumerate link failures and group failures as independent *units*,
// where a link is down if its own failure fires or any containing
// group fires.

// RiskGroup is a set of links that fail together with probability
// Prob.
type RiskGroup struct {
	Name  string
	Links []topo.LinkID
	Prob  float64
}

// EnumerateCorrelated returns the pruned scenario set under the
// correlated model: at most maxFail failure units (individual links or
// whole groups) down simultaneously. Scenarios with identical down-link
// sets (reachable through different unit combinations) are merged.
func EnumerateCorrelated(net *topo.Network, groups []RiskGroup, maxFail int) (*Set, error) {
	if maxFail < 0 {
		return nil, fmt.Errorf("scenario: negative maxFail %d", maxFail)
	}
	for _, g := range groups {
		if g.Prob < 0 || g.Prob >= 1 {
			return nil, fmt.Errorf("scenario: group %q probability %v out of [0,1)", g.Name, g.Prob)
		}
		if len(g.Links) == 0 {
			return nil, fmt.Errorf("scenario: group %q has no links", g.Name)
		}
		for _, e := range g.Links {
			if int(e) < 0 || int(e) >= net.NumLinks() {
				return nil, fmt.Errorf("scenario: group %q references unknown link %d", g.Name, e)
			}
		}
	}
	// Units: every link, then every group.
	type unit struct {
		links []topo.LinkID
		prob  float64
	}
	units := make([]unit, 0, net.NumLinks()+len(groups))
	for _, l := range net.Links() {
		units = append(units, unit{links: []topo.LinkID{l.ID}, prob: l.FailProb})
	}
	for _, g := range groups {
		units = append(units, unit{links: append([]topo.LinkID(nil), g.Links...), prob: g.Prob})
	}
	count := Count(len(units), maxFail)
	if count > MaxEnumerated {
		return nil, fmt.Errorf("scenario: %d correlated scenarios exceed limit %d", count, MaxEnumerated)
	}

	allUp := 1.0
	odds := make([]float64, len(units))
	for i, u := range units {
		allUp *= 1 - u.prob
		odds[i] = u.prob / (1 - u.prob)
	}
	merged := make(map[string]*Scenario)
	var order []string
	var downIdx []int
	total := 0.0
	var rec func(start int, prob float64)
	rec = func(start int, prob float64) {
		downSet := map[topo.LinkID]bool{}
		for _, ui := range downIdx {
			for _, e := range units[ui].links {
				downSet[e] = true
			}
		}
		down := make([]topo.LinkID, 0, len(downSet))
		for e := range downSet {
			down = append(down, e)
		}
		sort.Slice(down, func(i, j int) bool { return down[i] < down[j] })
		key := fmt.Sprint(down)
		if sc, ok := merged[key]; ok {
			sc.Prob += prob
		} else {
			merged[key] = &Scenario{Down: down, Prob: prob}
			order = append(order, key)
		}
		total += prob
		if len(downIdx) == maxFail {
			return
		}
		for i := start; i < len(units); i++ {
			downIdx = append(downIdx, i)
			rec(i+1, prob*odds[i])
			downIdx = downIdx[:len(downIdx)-1]
		}
	}
	rec(0, allUp)

	set := &Set{Net: net, MaxFail: maxFail, Residual: math.Max(0, 1-total)}
	for _, key := range order {
		set.Scenarios = append(set.Scenarios, *merged[key])
	}
	return set, nil
}

// ClassesForCorrelated is ClassesFor under the correlated model: the
// probability of every tunnel-up combination among the given tunnels,
// restricted to scenarios with at most maxFail failure units (links or
// risk groups). A unit is "relevant" when any of its links appears on
// a tunnel; the non-relevant units contribute through the same
// Poisson-binomial tail as the independent case, which stays exact
// because units are mutually independent.
func ClassesForCorrelated(net *topo.Network, groups []RiskGroup, tunnels []routing.Tunnel, maxFail int) ([]Class, error) {
	if len(tunnels) > 63 {
		return nil, fmt.Errorf("scenario: %d tunnels exceed the 63-tunnel class limit", len(tunnels))
	}
	for _, g := range groups {
		if g.Prob < 0 || g.Prob >= 1 {
			return nil, fmt.Errorf("scenario: group %q probability %v out of [0,1)", g.Name, g.Prob)
		}
	}
	relLinks := make(map[topo.LinkID]bool)
	for _, t := range tunnels {
		for _, e := range t.Links {
			relLinks[e] = true
		}
	}
	// Units relevant to the tunnels: their own links plus groups
	// touching them. Each relevant unit's "kill mask" marks the
	// tunnels it takes down.
	type unit struct {
		prob float64
		kill uint64
	}
	killOf := func(links []topo.LinkID) uint64 {
		var mask uint64
		for ti, t := range tunnels {
			for _, e := range t.Links {
				for _, d := range links {
					if d == e {
						mask |= 1 << uint(ti)
					}
				}
			}
		}
		return mask
	}
	var rel []unit
	otherProbs := make([]float64, 0, net.NumLinks()+len(groups))
	for _, l := range net.Links() {
		if relLinks[l.ID] {
			rel = append(rel, unit{prob: l.FailProb, kill: killOf([]topo.LinkID{l.ID})})
		} else {
			otherProbs = append(otherProbs, l.FailProb)
		}
	}
	for _, g := range groups {
		if k := killOf(g.Links); k != 0 {
			rel = append(rel, unit{prob: g.Prob, kill: k})
		} else {
			otherProbs = append(otherProbs, g.Prob)
		}
	}
	if len(rel) > 30 {
		return nil, fmt.Errorf("scenario: %d relevant units exceed the 2^30 subset limit", len(rel))
	}
	// Tail DP over non-relevant units.
	tail := make([]float64, maxFail+1)
	dp := make([]float64, maxFail+1)
	dp[0] = 1
	for _, x := range otherProbs {
		for j := maxFail; j >= 1; j-- {
			dp[j] = dp[j]*(1-x) + dp[j-1]*x
		}
		dp[0] *= 1 - x
	}
	sum := 0.0
	for m := 0; m <= maxFail; m++ {
		sum += dp[m]
		tail[m] = sum
	}

	base := 1.0
	odds := make([]float64, len(rel))
	for i, u := range rel {
		base *= 1 - u.prob
		odds[i] = u.prob / (1 - u.prob)
	}
	allUp := (uint64(1) << uint(len(tunnels))) - 1
	probs := make(map[uint64]float64)
	var downIdx []int
	var rec func(start int, prob float64)
	rec = func(start int, prob float64) {
		up := allUp
		for _, i := range downIdx {
			up &^= rel[i].kill
		}
		probs[up] += prob * tail[maxFail-len(downIdx)]
		if len(downIdx) == maxFail {
			return
		}
		for i := start; i < len(rel); i++ {
			downIdx = append(downIdx, i)
			rec(i+1, prob*odds[i])
			downIdx = downIdx[:len(downIdx)-1]
		}
	}
	rec(0, base)

	classes := make([]Class, 0, len(probs))
	for m, p := range probs {
		classes = append(classes, Class{UpMask: m, Prob: p})
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].UpMask > classes[j].UpMask })
	return classes, nil
}
