package alloc

import (
	"fmt"
	"math"

	"bate/internal/lp"
	"bate/internal/routing"
	"bate/internal/topo"
)

// FlowVars holds the LP variables f^t_d for every (demand, pair,
// tunnel) triple, in the same shape as Allocation.
type FlowVars map[int][][]lp.VarID

// AddFlowVars adds one nonnegative variable per (demand, pair, tunnel)
// to p and the per-link capacity constraints (Eq. 6) using the given
// per-link capacities. Tunnels for which usable returns false get a
// fixed zero upper bound (used by failure recovery, where tunnels
// through failed links carry nothing). usable may be nil.
func AddFlowVars(p *lp.Problem, in *Input, caps []float64, usable func(routing.Tunnel) bool) FlowVars {
	fv, _ := AddFlowVarsIndexed(p, in, caps, usable)
	return fv
}

// AddFlowVarsIndexed is AddFlowVars that additionally reports the LP
// constraint index of each link's capacity row, enabling shadow-price
// (dual) lookups after the solve. Links carrying no tunnel have no
// capacity row and are absent from the map.
func AddFlowVarsIndexed(p *lp.Problem, in *Input, caps []float64, usable func(routing.Tunnel) bool) (FlowVars, map[topo.LinkID]int) {
	fv := make(FlowVars, len(in.Demands))
	linkTerms := make([][]lp.Term, in.Net.NumLinks())
	for _, d := range in.Demands {
		rows := make([][]lp.VarID, len(d.Pairs))
		for pi := range d.Pairs {
			tunnels := in.TunnelsFor(d, pi)
			rows[pi] = make([]lp.VarID, len(tunnels))
			for ti, t := range tunnels {
				upper := math.Inf(1)
				if usable != nil && !usable(t) {
					upper = 0
				}
				v := p.AddVariable(fmt.Sprintf("f[d%d,p%d,t%d]", d.ID, pi, ti), 0, upper, 0)
				rows[pi][ti] = v
				if upper > 0 {
					for _, e := range t.Links {
						linkTerms[e] = append(linkTerms[e], lp.Term{Var: v, Coef: 1})
					}
				}
			}
		}
		fv[d.ID] = rows
	}
	capIdx := make(map[topo.LinkID]int)
	for _, l := range in.Net.Links() {
		if len(linkTerms[l.ID]) == 0 {
			continue
		}
		capIdx[l.ID] = p.NumConstraints()
		p.AddConstraint(lp.Constraint{
			Name:  fmt.Sprintf("cap[e%d]", l.ID),
			Terms: linkTerms[l.ID],
			Op:    lp.LE,
			RHS:   caps[l.ID],
		})
	}
	return fv, capIdx
}

// FullCapacities returns the link capacities of the input's network,
// with links under a maintenance drain (Input.Drained) reported as
// zero so every capacity-aware consumer routes around them.
func FullCapacities(in *Input) []float64 {
	caps := make([]float64, in.Net.NumLinks())
	for _, l := range in.Net.Links() {
		caps[l.ID] = l.Capacity
	}
	for _, e := range in.Drained {
		if int(e) >= 0 && int(e) < len(caps) {
			caps[e] = 0
		}
	}
	return caps
}

// Extract reads the solved values of the flow variables into an
// Allocation, dropping sub-epsilon noise.
func (fv FlowVars) Extract(sol *lp.Solution) Allocation {
	a := make(Allocation, len(fv))
	for id, rows := range fv {
		nr := make([][]float64, len(rows))
		for pi, r := range rows {
			nr[pi] = make([]float64, len(r))
			for ti, v := range r {
				x := sol.Value(v)
				if x > 1e-7 {
					nr[pi][ti] = x
				}
			}
		}
		a[id] = nr
	}
	return a
}
