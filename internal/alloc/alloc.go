// Package alloc defines the shared allocation model: which demands
// exist, which tunnels each may use, how much bandwidth f^t_d each
// tunnel carries, and how allocations are evaluated against failure
// scenarios (effective-bandwidth ratios R, achieved availability,
// link loads). Both BATE and the baseline TE schemes produce
// Allocations; the simulator and experiments consume them.
package alloc

import (
	"fmt"
	"math"

	"bate/internal/demand"
	"bate/internal/routing"
	"bate/internal/scenario"
	"bate/internal/topo"
)

// Input bundles a network, its precomputed tunnel sets and the demand
// set a TE scheme must allocate.
type Input struct {
	Net     *topo.Network
	Tunnels *routing.TunnelSet
	Demands []*demand.Demand
	// Drained lists links scheduled for maintenance: FullCapacities
	// reports them as zero-capacity, so every consumer — scheduling,
	// admission, recovery, the baseline schemes — routes traffic off
	// them *before* they actually go down (the proactive drain of a
	// planned maintenance window). Scenario/availability machinery is
	// unaffected: a drained link can still fail while it drains.
	Drained []topo.LinkID
}

// TunnelsFor returns the tunnels demand d may use on its pair with
// index pairIdx.
func (in *Input) TunnelsFor(d *demand.Demand, pairIdx int) []routing.Tunnel {
	p := d.Pairs[pairIdx]
	return in.Tunnels.For(p.Src, p.Dst)
}

// AllTunnelsFor returns the concatenated tunnels of every pair of d,
// in pair order. This is the tunnel ordering used for scenario
// classes.
func (in *Input) AllTunnelsFor(d *demand.Demand) []routing.Tunnel {
	var out []routing.Tunnel
	for i := range d.Pairs {
		out = append(out, in.TunnelsFor(d, i)...)
	}
	return out
}

// Allocation maps demand ID -> pair index -> tunnel index -> Mbps
// (the f^t_d output variables of Table 2).
type Allocation map[int][][]float64

// New returns an all-zero allocation shaped for the input's demands.
func New(in *Input) Allocation {
	a := make(Allocation, len(in.Demands))
	for _, d := range in.Demands {
		rows := make([][]float64, len(d.Pairs))
		for i := range d.Pairs {
			rows[i] = make([]float64, len(in.TunnelsFor(d, i)))
		}
		a[d.ID] = rows
	}
	return a
}

// Clone deep-copies the allocation.
func (a Allocation) Clone() Allocation {
	out := make(Allocation, len(a))
	for id, rows := range a {
		nr := make([][]float64, len(rows))
		for i, r := range rows {
			nr[i] = append([]float64(nil), r...)
		}
		out[id] = nr
	}
	return out
}

// Total returns Σ f^t_d over all demands, pairs and tunnels (the
// objective of the scheduling LP, Eq. 7).
func (a Allocation) Total() float64 {
	sum := 0.0
	for _, rows := range a {
		for _, r := range rows {
			for _, f := range r {
				sum += f
			}
		}
	}
	return sum
}

// AllocatedFor returns Σ_t f^t_d for one pair of demand d.
func (a Allocation) AllocatedFor(d *demand.Demand, pairIdx int) float64 {
	rows, ok := a[d.ID]
	if !ok || pairIdx >= len(rows) {
		return 0
	}
	sum := 0.0
	for _, f := range rows[pairIdx] {
		sum += f
	}
	return sum
}

// Delivered returns the effective bandwidth of demand d's pair under a
// tunnel-up predicate (Σ_t f^t_d · v^z_t of Eq. 2).
func (a Allocation) Delivered(in *Input, d *demand.Demand, pairIdx int, up func(routing.Tunnel) bool) float64 {
	rows, ok := a[d.ID]
	if !ok || pairIdx >= len(rows) {
		return 0
	}
	tunnels := in.TunnelsFor(d, pairIdx)
	sum := 0.0
	for ti, f := range rows[pairIdx] {
		if f > 0 && up(tunnels[ti]) {
			sum += f
		}
	}
	return sum
}

// Ratio returns R^z_dk = delivered/demanded for pair pairIdx of d
// under the tunnel-up predicate (Eq. 2). A zero-bandwidth pair counts
// as fully satisfied.
func (a Allocation) Ratio(in *Input, d *demand.Demand, pairIdx int, up func(routing.Tunnel) bool) float64 {
	b := d.Pairs[pairIdx].Bandwidth
	if b <= 0 {
		return 1
	}
	return a.Delivered(in, d, pairIdx, up) / b
}

// LinkLoads returns the total allocated bandwidth per link (the LHS of
// the capacity constraint, Eq. 6).
func (a Allocation) LinkLoads(in *Input) []float64 {
	loads := make([]float64, in.Net.NumLinks())
	for _, d := range in.Demands {
		rows, ok := a[d.ID]
		if !ok {
			continue
		}
		for pi := range d.Pairs {
			if pi >= len(rows) {
				continue
			}
			tunnels := in.TunnelsFor(d, pi)
			for ti, f := range rows[pi] {
				if f <= 0 {
					continue
				}
				for _, e := range tunnels[ti].Links {
					loads[e] += f
				}
			}
		}
	}
	return loads
}

// MaxUtilization returns the maximum link load / capacity ratio.
func (a Allocation) MaxUtilization(in *Input) float64 {
	loads := a.LinkLoads(in)
	maxU := 0.0
	for _, l := range in.Net.Links() {
		if u := loads[l.ID] / l.Capacity; u > maxU {
			maxU = u
		}
	}
	return maxU
}

// MeanUtilization returns the capacity-weighted mean link utilization.
func (a Allocation) MeanUtilization(in *Input) float64 {
	loads := a.LinkLoads(in)
	var load, capacity float64
	for _, l := range in.Net.Links() {
		load += loads[l.ID]
		capacity += l.Capacity
	}
	if capacity == 0 {
		return 0
	}
	return load / capacity
}

// CheckCapacity verifies Eq. 6: no link carries more than its
// capacity (within tol).
func (a Allocation) CheckCapacity(in *Input, tol float64) error {
	loads := a.LinkLoads(in)
	for _, l := range in.Net.Links() {
		if loads[l.ID] > l.Capacity+tol {
			return fmt.Errorf("alloc: link %d overloaded: %.3f > %.3f", l.ID, loads[l.ID], l.Capacity)
		}
	}
	return nil
}

// AchievedAvailability computes the probability (over failure
// scenarios with at most maxFail concurrent failures) that every pair
// of demand d receives its full bandwidth — the Σ_{z qualified} p_z of
// §3.1. Pruned scenarios count as unqualified.
func AchievedAvailability(in *Input, a Allocation, d *demand.Demand, maxFail int) (float64, error) {
	return AchievedAvailabilityGroups(in, a, d, maxFail, nil)
}

// AchievedAvailabilityGroups is AchievedAvailability under the
// correlated failure model: shared-risk link groups fail as units (see
// scenario.RiskGroup). Nil groups reduce to the independent model.
func AchievedAvailabilityGroups(in *Input, a Allocation, d *demand.Demand, maxFail int, groups []scenario.RiskGroup) (float64, error) {
	tunnels := in.AllTunnelsFor(d)
	classes, _, err := scenario.CachedClassesFor(in.Net, groups, tunnels, maxFail)
	if err != nil {
		return 0, err
	}
	avail := 0.0
	for _, cls := range classes {
		if classQualified(in, a, d, cls) {
			avail += cls.Prob
		}
	}
	return avail, nil
}

// classQualified reports whether allocation a fully satisfies every
// pair of d in tunnel-state class cls (mask bits follow
// Input.AllTunnelsFor ordering). The tolerance is relative so that
// solver-epsilon slack (schemes constrain delivery with (1-1e-9)
// factors) never flips a fully-served pair to unqualified.
func classQualified(in *Input, a Allocation, d *demand.Demand, cls scenario.Class) bool {
	bit := 0
	rows := a[d.ID]
	for pi, p := range d.Pairs {
		tunnels := in.TunnelsFor(d, pi)
		delivered := 0.0
		for ti := range tunnels {
			if cls.TunnelUp(bit) && rows != nil && pi < len(rows) && ti < len(rows[pi]) {
				delivered += rows[pi][ti]
			}
			bit++
		}
		if delivered < p.Bandwidth*(1-1e-7)-1e-6 {
			return false
		}
	}
	return true
}

// RelaxedAvailability computes the Eq. 3-4 B-relaxed availability of
// allocation a for demand d under independent failures: per
// tunnel-state class, B = min over pairs of min(1, delivered/b), and
// the result is Σ p_class · B. This is exactly the quantity the
// scheduling LP constrains to be ≥ β_d, so verification of LP outputs
// (e.g. the partitioned-scheduling property test) checks it rather
// than the stricter all-or-nothing AchievedAvailability.
func RelaxedAvailability(in *Input, a Allocation, d *demand.Demand, maxFail int) (float64, error) {
	tunnels := in.AllTunnelsFor(d)
	classes, _, err := scenario.CachedClassesFor(in.Net, nil, tunnels, maxFail)
	if err != nil {
		return 0, err
	}
	rows := a[d.ID]
	total := 0.0
	for _, cls := range classes {
		b := 1.0
		bit := 0
		for pi, p := range d.Pairs {
			nt := len(in.TunnelsFor(d, pi))
			delivered := 0.0
			for ti := 0; ti < nt; ti++ {
				if cls.TunnelUp(bit) && rows != nil && pi < len(rows) && ti < len(rows[pi]) {
					delivered += rows[pi][ti]
				}
				bit++
			}
			if p.Bandwidth > 0 {
				if r := delivered / p.Bandwidth; r < b {
					b = r
				}
			}
		}
		if b > 0 {
			total += cls.Prob * b
		}
	}
	return total, nil
}

// Satisfies reports whether the achieved availability of d meets its
// target β_d under ≤maxFail-failure scenarios.
func Satisfies(in *Input, a Allocation, d *demand.Demand, maxFail int) (bool, error) {
	return SatisfiesGroups(in, a, d, maxFail, nil)
}

// SatisfiesGroups is Satisfies under the correlated failure model.
func SatisfiesGroups(in *Input, a Allocation, d *demand.Demand, maxFail int, groups []scenario.RiskGroup) (bool, error) {
	if d.Target <= 0 {
		return true, nil // best-effort
	}
	av, err := AchievedAvailabilityGroups(in, a, d, maxFail, groups)
	if err != nil {
		return false, err
	}
	return av >= d.Target-1e-9, nil
}

// ResidualCapacities returns per-link capacity minus current load,
// floored at zero.
func (a Allocation) ResidualCapacities(in *Input) []float64 {
	loads := a.LinkLoads(in)
	out := make([]float64, in.Net.NumLinks())
	for _, l := range in.Net.Links() {
		out[l.ID] = math.Max(0, l.Capacity-loads[l.ID])
	}
	return out
}
