package alloc

import (
	"math"
	"testing"

	"bate/internal/lp"
	"bate/internal/routing"
)

func TestAddFlowVarsIndexedAndExtract(t *testing.T) {
	in, u1, u2 := toyInput(t)
	p := lp.NewProblem()
	fv, capIdx := AddFlowVarsIndexed(p, in, FullCapacities(in), nil)
	// Every (demand, pair, tunnel) has a variable.
	for _, d := range in.Demands {
		rows := fv[d.ID]
		if len(rows) != len(d.Pairs) {
			t.Fatalf("demand %d: %d rows", d.ID, len(rows))
		}
		for pi := range d.Pairs {
			if len(rows[pi]) != len(in.TunnelsFor(d, pi)) {
				t.Fatalf("demand %d pair %d: %d vars", d.ID, pi, len(rows[pi]))
			}
		}
	}
	// All toy links carry DC1->DC4 tunnels in the forward direction
	// only: exactly the 4 forward links have capacity rows.
	if len(capIdx) != 4 {
		t.Fatalf("capacity rows for %d links, want 4", len(capIdx))
	}
	// Minimize total flow with both demands forced: capacity duals
	// exist and the extracted allocation meets the demand rows.
	for _, d := range in.Demands {
		terms := make([]lp.Term, 0, 2)
		for _, v := range fv[d.ID][0] {
			p.SetCost(v, 1)
			terms = append(terms, lp.Term{Var: v, Coef: 1})
		}
		p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: d.Pairs[0].Bandwidth})
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	a := fv.Extract(sol)
	if got := a.AllocatedFor(u1, 0); got < u1.Pairs[0].Bandwidth-1 {
		t.Fatalf("u1 allocated %v", got)
	}
	if got := a.AllocatedFor(u2, 0); got < u2.Pairs[0].Bandwidth-1 {
		t.Fatalf("u2 allocated %v", got)
	}
	if err := a.CheckCapacity(in, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestAddFlowVarsUsablePredicate(t *testing.T) {
	in, u1, _ := toyInput(t)
	dc2, _ := in.Net.NodeByName("DC2")
	// Ban the via-DC2 tunnel: its variable is pinned to zero.
	usable := func(tn routing.Tunnel) bool {
		return in.Net.Link(tn.Links[0]).Dst != dc2
	}
	p := lp.NewProblem()
	fv := AddFlowVars(p, in, FullCapacities(in), usable)
	terms := make([]lp.Term, 0, 2)
	for _, v := range fv[u1.ID][0] {
		p.SetCost(v, 1)
		terms = append(terms, lp.Term{Var: v, Coef: 1})
	}
	p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: 6000})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	a := fv.Extract(sol)
	via2 := tunnelVia(t, in, u1, "DC2")
	if a[u1.ID][0][via2] != 0 {
		t.Fatalf("banned tunnel carries %v", a[u1.ID][0][via2])
	}
	if math.Abs(a[u1.ID][0][1-via2]-6000) > 1e-6 {
		t.Fatalf("surviving tunnel carries %v", a[u1.ID][0][1-via2])
	}
}

func TestFullCapacities(t *testing.T) {
	in, _, _ := toyInput(t)
	caps := FullCapacities(in)
	if len(caps) != in.Net.NumLinks() {
		t.Fatalf("%d caps", len(caps))
	}
	for _, l := range in.Net.Links() {
		if caps[l.ID] != l.Capacity {
			t.Fatalf("link %d cap %v != %v", l.ID, caps[l.ID], l.Capacity)
		}
	}
}

func TestRatioZeroBandwidthPair(t *testing.T) {
	in, u1, _ := toyInput(t)
	u1.Pairs[0].Bandwidth = 0
	a := New(in)
	if r := a.Ratio(in, u1, 0, func(routing.Tunnel) bool { return true }); r != 1 {
		t.Fatalf("zero-bandwidth ratio %v, want 1", r)
	}
}
