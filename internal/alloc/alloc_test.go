package alloc

import (
	"math"
	"testing"

	"bate/internal/demand"
	"bate/internal/routing"
	"bate/internal/topo"
)

// toyInput builds the Fig. 2 setting: two demands DC1->DC4 over the
// two 2-hop tunnels.
func toyInput(t *testing.T) (*Input, *demand.Demand, *demand.Demand) {
	t.Helper()
	n := topo.Toy()
	ts := routing.Compute(n, routing.KShortest, 2)
	dc1, _ := n.NodeByName("DC1")
	dc4, _ := n.NodeByName("DC4")
	u1 := &demand.Demand{ID: 0, Pairs: []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 6000}}, Target: 0.99, Charge: 6000, RefundFrac: 0.1}
	u2 := &demand.Demand{ID: 1, Pairs: []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 12000}}, Target: 0.90, Charge: 12000, RefundFrac: 0.1}
	return &Input{Net: n, Tunnels: ts, Demands: []*demand.Demand{u1, u2}}, u1, u2
}

// tunnelVia returns the index of u's tunnel whose first hop goes to
// the named node.
func tunnelVia(t *testing.T, in *Input, d *demand.Demand, via string) int {
	t.Helper()
	id, _ := in.Net.NodeByName(via)
	for ti, tun := range in.TunnelsFor(d, 0) {
		if in.Net.Link(tun.Links[0]).Dst == id {
			return ti
		}
	}
	t.Fatalf("no tunnel via %s", via)
	return -1
}

func TestAllocationAccounting(t *testing.T) {
	in, u1, u2 := toyInput(t)
	a := New(in)
	via3 := tunnelVia(t, in, u1, "DC3")
	via2 := tunnelVia(t, in, u2, "DC2")
	a[u1.ID][0][via3] = 6000
	a[u2.ID][0][via2] = 10000
	a[u2.ID][0][1-via2] = 2000

	if got := a.Total(); got != 18000 {
		t.Fatalf("Total = %v", got)
	}
	if got := a.AllocatedFor(u2, 0); got != 12000 {
		t.Fatalf("AllocatedFor(u2) = %v", got)
	}
	allUp := func(routing.Tunnel) bool { return true }
	if got := a.Delivered(in, u1, 0, allUp); got != 6000 {
		t.Fatalf("Delivered = %v", got)
	}
	if got := a.Ratio(in, u2, 0, allUp); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Ratio = %v", got)
	}
	if err := a.CheckCapacity(in, 1e-6); err != nil {
		t.Fatal(err)
	}
	loads := a.LinkLoads(in)
	// DC1->DC3 and DC3->DC4 carry u1's 6000 plus u2's 2000.
	dc1, _ := in.Net.NodeByName("DC1")
	dc3, _ := in.Net.NodeByName("DC3")
	l, _ := in.Net.LinkBetween(dc1, dc3)
	if loads[l.ID] != 8000 {
		t.Fatalf("load on DC1->DC3 = %v, want 8000", loads[l.ID])
	}
	if u := a.MaxUtilization(in); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("MaxUtilization = %v, want 1.0 (DC1->DC2 full)", u)
	}
	if m := a.MeanUtilization(in); m <= 0 || m >= 1 {
		t.Fatalf("MeanUtilization = %v", m)
	}
}

func TestCheckCapacityOverload(t *testing.T) {
	in, u1, _ := toyInput(t)
	a := New(in)
	a[u1.ID][0][0] = 20000
	if err := a.CheckCapacity(in, 1e-6); err == nil {
		t.Fatal("expected overload error")
	}
}

func TestAchievedAvailabilityFig2(t *testing.T) {
	in, u1, u2 := toyInput(t)
	a := New(in)
	via3u1 := tunnelVia(t, in, u1, "DC3")
	via2u2 := tunnelVia(t, in, u2, "DC2")
	// The Fig. 2(d) BATE allocation.
	a[u1.ID][0][via3u1] = 6000
	a[u2.ID][0][via2u2] = 10000
	a[u2.ID][0][1-via2u2] = 2000

	// u1 entirely on the DC3 path: availability ≈ 0.999 · 0.999999.
	av1, err := AchievedAvailability(in, a, u1, 3)
	if err != nil {
		t.Fatal(err)
	}
	want1 := 0.999 * 0.999999
	if math.Abs(av1-want1) > 1e-4 {
		t.Fatalf("u1 availability = %v, want ≈ %v", av1, want1)
	}
	// u2 needs both paths: availability ≈ product of all four links.
	av2, err := AchievedAvailability(in, a, u2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want2 := 0.96 * 0.999999 * 0.999 * 0.999999
	if math.Abs(av2-want2) > 1e-4 {
		t.Fatalf("u2 availability = %v, want ≈ %v", av2, want2)
	}
	// Both targets met (the Fig. 2(d) claim).
	for _, d := range []*demand.Demand{u1, u2} {
		ok, err := Satisfies(in, a, d, 3)
		if err != nil || !ok {
			t.Fatalf("demand %d not satisfied: %v", d.ID, err)
		}
	}
}

func TestSatisfiesBestEffort(t *testing.T) {
	in, u1, _ := toyInput(t)
	u1.Target = 0
	a := New(in) // nothing allocated
	ok, err := Satisfies(in, a, u1, 2)
	if err != nil || !ok {
		t.Fatal("best-effort demand should always be satisfied")
	}
}

func TestCloneIndependent(t *testing.T) {
	in, u1, _ := toyInput(t)
	a := New(in)
	a[u1.ID][0][0] = 5
	b := a.Clone()
	b[u1.ID][0][0] = 7
	if a[u1.ID][0][0] != 5 {
		t.Fatal("Clone shares storage")
	}
}

func TestResidualCapacities(t *testing.T) {
	in, u1, _ := toyInput(t)
	a := New(in)
	via3 := tunnelVia(t, in, u1, "DC3")
	a[u1.ID][0][via3] = 4000
	res := a.ResidualCapacities(in)
	dc1, _ := in.Net.NodeByName("DC1")
	dc3, _ := in.Net.NodeByName("DC3")
	l, _ := in.Net.LinkBetween(dc1, dc3)
	if res[l.ID] != 6000 {
		t.Fatalf("residual = %v, want 6000", res[l.ID])
	}
}

func TestDeliveredUnderFailure(t *testing.T) {
	in, _, u2 := toyInput(t)
	a := New(in)
	via2 := tunnelVia(t, in, u2, "DC2")
	a[u2.ID][0][via2] = 10000
	a[u2.ID][0][1-via2] = 2000
	dc1, _ := in.Net.NodeByName("DC1")
	dc2, _ := in.Net.NodeByName("DC2")
	failedLink, _ := in.Net.LinkBetween(dc1, dc2)
	up := func(tn routing.Tunnel) bool { return !tn.Uses(failedLink.ID) }
	if got := a.Delivered(in, u2, 0, up); got != 2000 {
		t.Fatalf("Delivered under DC1->DC2 failure = %v, want 2000", got)
	}
}
