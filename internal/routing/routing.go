// Package routing computes the tunnel sets T_k used by BATE and the
// baseline TE schemes (§3.1, §4 "Offline Routing"): k-shortest paths,
// edge-disjoint paths, and oblivious (low-stretch randomized-tree)
// routing.
package routing

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bate/internal/topo"
)

// Tunnel is a loop-free path between one source-destination pair,
// identified by the ordered list of link ids it traverses.
type Tunnel struct {
	Src, Dst topo.NodeID
	Links    []topo.LinkID
}

// Nodes returns the node sequence of the tunnel (Src first, Dst last).
func (t Tunnel) Nodes(n *topo.Network) []topo.NodeID {
	nodes := []topo.NodeID{t.Src}
	for _, id := range t.Links {
		nodes = append(nodes, n.Link(id).Dst)
	}
	return nodes
}

// Uses reports whether the tunnel traverses link e (the u^e_t input of
// Table 2).
func (t Tunnel) Uses(e topo.LinkID) bool {
	for _, id := range t.Links {
		if id == e {
			return true
		}
	}
	return false
}

// Availability returns the probability that every link of the tunnel
// is up, assuming independent link failures (§2.2).
func (t Tunnel) Availability(n *topo.Network) float64 {
	p := 1.0
	for _, id := range t.Links {
		p *= 1 - n.Link(id).FailProb
	}
	return p
}

// Bottleneck returns the minimum link capacity along the tunnel.
func (t Tunnel) Bottleneck(n *topo.Network) float64 {
	c := math.Inf(1)
	for _, id := range t.Links {
		if cap := n.Link(id).Capacity; cap < c {
			c = cap
		}
	}
	return c
}

// Format renders the tunnel as node names joined by "->".
func (t Tunnel) Format(n *topo.Network) string {
	s := n.NodeName(t.Src)
	for _, id := range t.Links {
		s += "->" + n.NodeName(n.Link(id).Dst)
	}
	return s
}

// key returns a comparable identity for deduplication.
func (t Tunnel) key() string {
	return fmt.Sprint(t.Links)
}

// Scheme selects a tunnel-computation algorithm.
type Scheme int8

// Tunnel selection schemes evaluated in Fig. 18.
const (
	KShortest Scheme = iota
	EdgeDisjoint
	Oblivious
)

func (s Scheme) String() string {
	switch s {
	case KShortest:
		return "KSP"
	case EdgeDisjoint:
		return "Edge-disjoint"
	case Oblivious:
		return "Oblivious"
	}
	return "unknown"
}

// TunnelSet holds the precomputed tunnels for every s-d pair of a
// network (the T_k sets).
type TunnelSet struct {
	Net     *topo.Network
	Scheme  Scheme
	K       int
	byPair  map[[2]topo.NodeID][]Tunnel
	tunnels []Tunnel // all tunnels, stable order
}

// For returns the tunnels for the pair (src, dst). The returned slice
// must not be modified.
func (ts *TunnelSet) For(src, dst topo.NodeID) []Tunnel {
	return ts.byPair[[2]topo.NodeID{src, dst}]
}

// All returns every tunnel across all pairs in deterministic order.
func (ts *TunnelSet) All() []Tunnel { return ts.tunnels }

// Compute builds the tunnel set for net using the given scheme with k
// tunnels per pair (the paper defaults to 4-shortest paths).
func Compute(net *topo.Network, scheme Scheme, k int) *TunnelSet {
	return ComputeForPairs(net, scheme, k, net.Pairs())
}

// ComputeForPairs builds tunnels only for the given ordered pairs
// (duplicates are computed once). All-pairs Compute runs n·(n-1) Yen
// searches — prohibitive on the 1000-node scale topologies when a
// workload only ever references a few hundred pairs.
func ComputeForPairs(net *topo.Network, scheme Scheme, k int, pairs [][2]topo.NodeID) *TunnelSet {
	if k <= 0 {
		k = 4
	}
	ts := &TunnelSet{Net: net, Scheme: scheme, K: k, byPair: make(map[[2]topo.NodeID][]Tunnel)}
	for _, pair := range pairs {
		if _, done := ts.byPair[pair]; done {
			continue
		}
		var tun []Tunnel
		switch scheme {
		case KShortest:
			tun = YenKSP(net, pair[0], pair[1], k)
		case EdgeDisjoint:
			tun = EdgeDisjointPaths(net, pair[0], pair[1], k)
		case Oblivious:
			tun = ObliviousPaths(net, pair[0], pair[1], k, 1)
		}
		ts.byPair[pair] = tun
		ts.tunnels = append(ts.tunnels, tun...)
	}
	return ts
}

// linkWeight is the routing metric: unit hop cost. A separate weighted
// variant supports the oblivious sampler.
type weightFunc func(topo.Link) float64

func hopWeight(topo.Link) float64 { return 1 }

// dijkstra returns the shortest path from src to dst under w, as a
// link sequence, or nil if unreachable. banned links/nodes are skipped
// (bannedNode[src] is ignored so Yen's spur node works).
func dijkstra(n *topo.Network, src, dst topo.NodeID, w weightFunc,
	bannedLink map[topo.LinkID]bool, bannedNode map[topo.NodeID]bool) []topo.LinkID {

	const inf = math.MaxFloat64
	dist := make([]float64, n.NumNodes())
	prev := make([]topo.LinkID, n.NumNodes())
	done := make([]bool, n.NumNodes())
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[src] = 0
	pq := &nodePQ{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		if v == dst {
			break
		}
		for _, id := range n.Out(v) {
			if bannedLink[id] {
				continue
			}
			l := n.Link(id)
			if bannedNode[l.Dst] && l.Dst != dst {
				continue
			}
			nd := dist[v] + w(l)
			if nd < dist[l.Dst] {
				dist[l.Dst] = nd
				prev[l.Dst] = id
				heap.Push(pq, nodeItem{node: l.Dst, dist: nd})
			}
		}
	}
	if prev[dst] == -1 && src != dst {
		if dist[dst] == inf {
			return nil
		}
	}
	// Reconstruct.
	var rev []topo.LinkID
	for v := dst; v != src; {
		id := prev[v]
		if id == -1 {
			return nil
		}
		rev = append(rev, id)
		v = n.Link(id).Src
	}
	links := make([]topo.LinkID, len(rev))
	for i := range rev {
		links[i] = rev[len(rev)-1-i]
	}
	return links
}

type nodeItem struct {
	node topo.NodeID
	dist float64
}

type nodePQ []nodeItem

func (q nodePQ) Len() int            { return len(q) }
func (q nodePQ) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nodePQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodePQ) Push(x interface{}) { *q = append(*q, x.(nodeItem)) }
func (q *nodePQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// YenKSP returns up to k loop-free shortest paths from src to dst by
// hop count (Yen's algorithm), in non-decreasing length order.
func YenKSP(n *topo.Network, src, dst topo.NodeID, k int) []Tunnel {
	first := dijkstra(n, src, dst, hopWeight, nil, nil)
	if first == nil {
		return nil
	}
	paths := [][]topo.LinkID{first}
	seen := map[string]bool{Tunnel{Links: first}.key(): true}
	var candidates [][]topo.LinkID

	for len(paths) < k {
		last := paths[len(paths)-1]
		// Spur from every node of the previous path.
		prefixNodes := []topo.NodeID{src}
		for _, id := range last {
			prefixNodes = append(prefixNodes, n.Link(id).Dst)
		}
		for i := 0; i < len(last); i++ {
			spur := prefixNodes[i]
			rootLinks := last[:i]
			bannedLink := make(map[topo.LinkID]bool)
			for _, p := range paths {
				if sharesPrefix(p, rootLinks) && len(p) > i {
					bannedLink[p[i]] = true
				}
			}
			bannedNode := make(map[topo.NodeID]bool)
			for _, v := range prefixNodes[:i] {
				bannedNode[v] = true
			}
			spurPath := dijkstra(n, spur, dst, hopWeight, bannedLink, bannedNode)
			if spurPath == nil {
				continue
			}
			full := append(append([]topo.LinkID(nil), rootLinks...), spurPath...)
			key := Tunnel{Links: full}.key()
			if !seen[key] {
				seen[key] = true
				candidates = append(candidates, full)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if len(candidates[a]) != len(candidates[b]) {
				return len(candidates[a]) < len(candidates[b])
			}
			return Tunnel{Links: candidates[a]}.key() < Tunnel{Links: candidates[b]}.key()
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	out := make([]Tunnel, len(paths))
	for i, p := range paths {
		out[i] = Tunnel{Src: src, Dst: dst, Links: p}
	}
	return out
}

func sharesPrefix(p, prefix []topo.LinkID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

// EdgeDisjointPaths returns up to k mutually edge-disjoint paths from
// src to dst, greedily shortest-first (the risk-aware edge-disjoint
// routing of [49] reduces to disjoint shortest paths on these
// topologies).
func EdgeDisjointPaths(n *topo.Network, src, dst topo.NodeID, k int) []Tunnel {
	banned := make(map[topo.LinkID]bool)
	var out []Tunnel
	for len(out) < k {
		p := dijkstra(n, src, dst, hopWeight, banned, nil)
		if p == nil {
			break
		}
		out = append(out, Tunnel{Src: src, Dst: dst, Links: p})
		for _, id := range p {
			banned[id] = true
		}
	}
	return out
}

// ObliviousPaths approximates Räcke-style oblivious routing by
// sampling low-stretch shortest paths under exponentially perturbed,
// capacity-biased link weights, keeping the k most diverse distinct
// paths (DESIGN.md substitution 5). seed makes the sampling
// deterministic.
func ObliviousPaths(n *topo.Network, src, dst topo.NodeID, k int, seed int64) []Tunnel {
	rng := rand.New(rand.NewSource(seed*1000003 + int64(src)*131 + int64(dst)))
	base := dijkstra(n, src, dst, hopWeight, nil, nil)
	if base == nil {
		return nil
	}
	maxStretch := float64(len(base)) * 2.5
	seen := map[string]bool{Tunnel{Links: base}.key(): true}
	out := []Tunnel{{Src: src, Dst: dst, Links: base}}
	samples := 8 * k
	for s := 0; s < samples && len(out) < k; s++ {
		w := func(l topo.Link) float64 {
			// Capacity bias: prefer fat links; exponential perturbation
			// yields the randomized low-stretch trees of Räcke-style
			// schemes.
			return (1 + rng.ExpFloat64()) * (1 + 10000/l.Capacity) / 2
		}
		p := dijkstra(n, src, dst, w, nil, nil)
		if p == nil || float64(len(p)) > maxStretch {
			continue
		}
		key := Tunnel{Links: p}.key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Tunnel{Src: src, Dst: dst, Links: p})
	}
	// Fall back to Yen to fill up if sampling found too few, keeping
	// the low-stretch property.
	if len(out) < k {
		for _, t := range YenKSP(n, src, dst, k) {
			if len(out) >= k {
				break
			}
			if float64(len(t.Links)) > maxStretch {
				continue
			}
			if !seen[t.key()] {
				seen[t.key()] = true
				out = append(out, t)
			}
		}
	}
	return out
}
