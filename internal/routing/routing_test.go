package routing

import (
	"math"
	"testing"

	"bate/internal/topo"
)

func nodesOf(t *testing.T, n *topo.Network, names ...string) []topo.NodeID {
	t.Helper()
	out := make([]topo.NodeID, len(names))
	for i, name := range names {
		id, ok := n.NodeByName(name)
		if !ok {
			t.Fatalf("node %s missing", name)
		}
		out[i] = id
	}
	return out
}

// validPath checks the link sequence is connected src->dst and loop free.
func validPath(t *testing.T, n *topo.Network, tun Tunnel) {
	t.Helper()
	if len(tun.Links) == 0 {
		t.Fatal("empty tunnel")
	}
	cur := tun.Src
	visited := map[topo.NodeID]bool{cur: true}
	for _, id := range tun.Links {
		l := n.Link(id)
		if l.Src != cur {
			t.Fatalf("disconnected tunnel at link %d: %v != %v", id, l.Src, cur)
		}
		cur = l.Dst
		if visited[cur] {
			t.Fatalf("loop at node %v", cur)
		}
		visited[cur] = true
	}
	if cur != tun.Dst {
		t.Fatalf("tunnel ends at %v, want %v", cur, tun.Dst)
	}
}

func TestYenToyTopology(t *testing.T) {
	n := topo.Toy()
	ids := nodesOf(t, n, "DC1", "DC4")
	paths := YenKSP(n, ids[0], ids[1], 4)
	if len(paths) < 2 {
		t.Fatalf("got %d paths, want >= 2", len(paths))
	}
	for _, p := range paths {
		validPath(t, n, p)
	}
	// Both 2-hop paths (via DC2 and via DC3) must be found first.
	if len(paths[0].Links) != 2 || len(paths[1].Links) != 2 {
		t.Fatalf("first two paths have lengths %d, %d; want 2, 2",
			len(paths[0].Links), len(paths[1].Links))
	}
	// Paths are sorted by length.
	for i := 1; i < len(paths); i++ {
		if len(paths[i].Links) < len(paths[i-1].Links) {
			t.Fatal("paths not sorted by length")
		}
	}
}

func TestYenDistinctPaths(t *testing.T) {
	n := topo.Testbed()
	ids := nodesOf(t, n, "DC1", "DC3")
	paths := YenKSP(n, ids[0], ids[1], 4)
	if len(paths) != 4 {
		t.Fatalf("got %d paths, want 4", len(paths))
	}
	seen := map[string]bool{}
	for _, p := range paths {
		validPath(t, n, p)
		k := p.key()
		if seen[k] {
			t.Fatalf("duplicate path %v", p.Links)
		}
		seen[k] = true
	}
}

func TestYenUnreachable(t *testing.T) {
	n := topo.NewBuilder("t").
		AddLink("a", "b", 1, 0).
		AddLink("c", "d", 1, 0).
		MustBuild()
	a, _ := n.NodeByName("a")
	d, _ := n.NodeByName("d")
	if paths := YenKSP(n, a, d, 3); paths != nil {
		t.Fatalf("got %v for unreachable pair", paths)
	}
}

func TestEdgeDisjoint(t *testing.T) {
	n := topo.Toy()
	ids := nodesOf(t, n, "DC1", "DC4")
	paths := EdgeDisjointPaths(n, ids[0], ids[1], 4)
	if len(paths) != 2 {
		t.Fatalf("got %d disjoint paths, want 2", len(paths))
	}
	used := map[topo.LinkID]bool{}
	for _, p := range paths {
		validPath(t, n, p)
		for _, id := range p.Links {
			if used[id] {
				t.Fatalf("link %d reused across disjoint paths", id)
			}
			used[id] = true
		}
	}
}

func TestObliviousPaths(t *testing.T) {
	n := topo.B4()
	src, dst := topo.NodeID(0), topo.NodeID(7)
	paths := ObliviousPaths(n, src, dst, 4, 1)
	if len(paths) == 0 {
		t.Fatal("no oblivious paths")
	}
	seen := map[string]bool{}
	for _, p := range paths {
		validPath(t, n, p)
		if seen[p.key()] {
			t.Fatal("duplicate oblivious path")
		}
		seen[p.key()] = true
	}
	// Deterministic given the same seed.
	again := ObliviousPaths(n, src, dst, 4, 1)
	if len(again) != len(paths) {
		t.Fatalf("non-deterministic: %d vs %d paths", len(again), len(paths))
	}
	for i := range paths {
		if paths[i].key() != again[i].key() {
			t.Fatal("non-deterministic path ordering")
		}
	}
}

func TestTunnelHelpers(t *testing.T) {
	n := topo.Toy()
	ids := nodesOf(t, n, "DC1", "DC4")
	paths := YenKSP(n, ids[0], ids[1], 2)
	p := paths[0]
	if got := p.Format(n); got == "" {
		t.Fatal("empty Format")
	}
	if !p.Uses(p.Links[0]) {
		t.Fatal("Uses(first link) = false")
	}
	var unused topo.LinkID
	for _, l := range n.Links() {
		if !p.Uses(l.ID) {
			unused = l.ID
			break
		}
	}
	if p.Uses(unused) {
		t.Fatal("Uses(unused link) = true")
	}
	if b := p.Bottleneck(n); b != 10000 {
		t.Fatalf("Bottleneck = %v, want 10000", b)
	}
	av := p.Availability(n)
	if av <= 0 || av > 1 {
		t.Fatalf("Availability = %v", av)
	}
	nodes := p.Nodes(n)
	if nodes[0] != p.Src || nodes[len(nodes)-1] != p.Dst {
		t.Fatalf("Nodes = %v", nodes)
	}
}

// The toy example's path availabilities must match §2.2:
// via-DC2 ≈ 0.95999904, via-DC3 ≈ 0.998999001 (we use slightly
// different per-link decimals; check ordering and magnitude).
func TestToyPathAvailabilities(t *testing.T) {
	n := topo.Toy()
	ids := nodesOf(t, n, "DC1", "DC4")
	paths := YenKSP(n, ids[0], ids[1], 2)
	var viaDC2, viaDC3 float64
	dc2, _ := n.NodeByName("DC2")
	for _, p := range paths {
		mid := n.Link(p.Links[0]).Dst
		if mid == dc2 {
			viaDC2 = p.Availability(n)
		} else {
			viaDC3 = p.Availability(n)
		}
	}
	if math.Abs(viaDC2-0.96*0.999999) > 1e-9 {
		t.Fatalf("via DC2 availability = %v", viaDC2)
	}
	if math.Abs(viaDC3-0.999*0.999999) > 1e-9 {
		t.Fatalf("via DC3 availability = %v", viaDC3)
	}
	if viaDC3 <= viaDC2 {
		t.Fatal("via-DC3 path should be more available")
	}
}

func TestComputeAllSchemes(t *testing.T) {
	n := topo.Testbed()
	for _, s := range []Scheme{KShortest, EdgeDisjoint, Oblivious} {
		ts := Compute(n, s, 4)
		if ts.Scheme != s || ts.K != 4 {
			t.Fatalf("scheme/k not recorded: %+v", ts)
		}
		pairs := n.Pairs()
		for _, pr := range pairs {
			tun := ts.For(pr[0], pr[1])
			if len(tun) == 0 {
				t.Fatalf("%v: no tunnels for %v", s, pr)
			}
			for _, p := range tun {
				validPath(t, n, p)
				if p.Src != pr[0] || p.Dst != pr[1] {
					t.Fatalf("%v: tunnel endpoints wrong", s)
				}
			}
		}
		if len(ts.All()) == 0 {
			t.Fatalf("%v: All() empty", s)
		}
	}
	if Compute(n, KShortest, 0).K != 4 {
		t.Fatal("default k != 4")
	}
}

func TestSchemeString(t *testing.T) {
	if KShortest.String() != "KSP" || EdgeDisjoint.String() != "Edge-disjoint" ||
		Oblivious.String() != "Oblivious" || Scheme(9).String() != "unknown" {
		t.Fatal("Scheme strings wrong")
	}
}

// Table 3 requires exactly the four 4-shortest paths per demand pair on
// the testbed. Verify DC1->DC3's set includes the two 2-hop paths.
func TestTestbedKSPMatchesTable3(t *testing.T) {
	n := topo.Testbed()
	ids := nodesOf(t, n, "DC1", "DC3")
	paths := YenKSP(n, ids[0], ids[1], 4)
	var formats []string
	for _, p := range paths {
		formats = append(formats, p.Format(n))
	}
	want := map[string]bool{
		"DC1->DC2->DC3": false,
		"DC1->DC4->DC3": false,
	}
	for _, f := range formats {
		if _, ok := want[f]; ok {
			want[f] = true
		}
	}
	for f, ok := range want {
		if !ok {
			t.Fatalf("missing path %s in %v", f, formats)
		}
	}
}

func TestStretchAndDiversity(t *testing.T) {
	n := topo.Toy()
	ids := nodesOf(t, n, "DC1", "DC4")
	paths := YenKSP(n, ids[0], ids[1], 2)
	for _, p := range paths {
		if s := Stretch(n, p); s != 1 {
			t.Fatalf("2-hop path stretch %v, want 1", s)
		}
	}
	if d := Diversity(paths); d != 1 {
		t.Fatalf("disjoint paths diversity %v, want 1", d)
	}
	// Duplicated path halves diversity.
	if d := Diversity([]Tunnel{paths[0], paths[0]}); d != 0.5 {
		t.Fatalf("duplicate diversity %v, want 0.5", d)
	}
	if Diversity(nil) != 1 {
		t.Fatal("empty diversity should be 1")
	}
	if m := MaxStretch(n, paths); m != 1 {
		t.Fatalf("MaxStretch %v", m)
	}
}

func TestQualityReport(t *testing.T) {
	n := topo.B4()
	for _, scheme := range []Scheme{KShortest, EdgeDisjoint, Oblivious} {
		ts := Compute(n, scheme, 4)
		q := Quality(ts)
		if q.Pairs != len(n.Pairs()) {
			t.Fatalf("%v: %d pairs", scheme, q.Pairs)
		}
		if q.MeanStretch < 1 || q.MaxStretch < q.MeanStretch {
			t.Fatalf("%v: stretch mean %v max %v", scheme, q.MeanStretch, q.MaxStretch)
		}
		if q.MeanDiversity <= 0 || q.MeanDiversity > 1 {
			t.Fatalf("%v: diversity %v", scheme, q.MeanDiversity)
		}
		if q.MaxLinkShare <= 0 || q.MaxLinkShare > 1 {
			t.Fatalf("%v: link share %v", scheme, q.MaxLinkShare)
		}
		// Edge-disjoint tunnels are perfectly diverse by construction.
		if scheme == EdgeDisjoint && q.MeanDiversity < 1-1e-9 {
			t.Fatalf("edge-disjoint diversity %v, want 1", q.MeanDiversity)
		}
	}
}

// Oblivious sampling respects its stretch ceiling (2.5x shortest).
func TestObliviousStretchBound(t *testing.T) {
	n := topo.ATT()
	for _, pair := range n.Pairs()[:40] {
		for _, p := range ObliviousPaths(n, pair[0], pair[1], 4, 3) {
			if s := Stretch(n, p); s > 2.5+1e-9 {
				t.Fatalf("oblivious path stretch %v exceeds bound", s)
			}
		}
	}
}
