package routing

import "bate/internal/topo"

// Tunnel-set quality metrics. Fig. 18's finding — oblivious routing
// works slightly better "because it finds diverse and low-stretch
// paths and avoids link over-utilization" — rests on these properties;
// they are measurable here for any tunnel set.

// Stretch returns the hop-count stretch of tunnel t relative to the
// shortest path between its endpoints (1.0 = shortest possible).
func Stretch(n *topo.Network, t Tunnel) float64 {
	sp := dijkstra(n, t.Src, t.Dst, hopWeight, nil, nil)
	if len(sp) == 0 {
		return 1
	}
	return float64(len(t.Links)) / float64(len(sp))
}

// MaxStretch returns the largest stretch across a pair's tunnels.
func MaxStretch(n *topo.Network, tunnels []Tunnel) float64 {
	max := 0.0
	for _, t := range tunnels {
		if s := Stretch(n, t); s > max {
			max = s
		}
	}
	return max
}

// Diversity measures how link-disjoint a pair's tunnels are: 1 means
// fully edge-disjoint, approaching 0 as every tunnel reuses the same
// links. Defined as distinct links used / total link traversals.
func Diversity(tunnels []Tunnel) float64 {
	total := 0
	distinct := make(map[topo.LinkID]bool)
	for _, t := range tunnels {
		for _, e := range t.Links {
			total++
			distinct[e] = true
		}
	}
	if total == 0 {
		return 1
	}
	return float64(len(distinct)) / float64(total)
}

// QualityReport summarizes a tunnel set's stretch and diversity.
type QualityReport struct {
	Pairs         int
	MeanTunnels   float64
	MeanStretch   float64
	MaxStretch    float64
	MeanDiversity float64
	// MaxLinkShare is the fraction of all tunnels traversing the most
	// popular link — a proxy for over-utilization risk.
	MaxLinkShare float64
}

// Quality computes the report for a whole tunnel set.
func Quality(ts *TunnelSet) QualityReport {
	r := QualityReport{}
	n := ts.Net
	linkUse := make(map[topo.LinkID]int)
	totalTunnels, totalStretch := 0, 0.0
	for _, pair := range n.Pairs() {
		tunnels := ts.For(pair[0], pair[1])
		if len(tunnels) == 0 {
			continue
		}
		r.Pairs++
		r.MeanTunnels += float64(len(tunnels))
		r.MeanDiversity += Diversity(tunnels)
		for _, t := range tunnels {
			totalTunnels++
			s := Stretch(n, t)
			totalStretch += s
			if s > r.MaxStretch {
				r.MaxStretch = s
			}
			for _, e := range t.Links {
				linkUse[e]++
			}
		}
	}
	if r.Pairs > 0 {
		r.MeanTunnels /= float64(r.Pairs)
		r.MeanDiversity /= float64(r.Pairs)
	}
	if totalTunnels > 0 {
		r.MeanStretch = totalStretch / float64(totalTunnels)
		maxUse := 0
		for _, u := range linkUse {
			if u > maxUse {
				maxUse = u
			}
		}
		r.MaxLinkShare = float64(maxUse) / float64(totalTunnels)
	}
	return r
}
