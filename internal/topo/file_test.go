package topo

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	src := `
# a small WAN
topology Demo
node DC1
link DC1 DC2 10000 0.001   # one way
bidi DC2 DC3 20000 0.0001
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "Demo" || n.NumNodes() != 3 || n.NumLinks() != 3 {
		t.Fatalf("got %s with %d nodes %d links", n.Name(), n.NumNodes(), n.NumLinks())
	}
	dc1, _ := n.NodeByName("DC1")
	dc2, _ := n.NodeByName("DC2")
	if _, ok := n.LinkBetween(dc2, dc1); ok {
		t.Fatal("one-way link got a reverse")
	}
	l, _ := n.LinkBetween(dc1, dc2)
	if l.Capacity != 10000 || l.FailProb != 0.001 {
		t.Fatalf("link = %+v", l)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"topology a b",
		"node",
		"link DC1 DC2 100",
		"link DC1 DC2 x 0.1",
		"link DC1 DC2 100 y",
		"frob DC1",
		"link DC1 DC2 100 1.5", // failProb out of range (builder error)
		"",                     // empty topology
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

// Round trip: every built-in topology survives Write→Parse unchanged.
func TestWriteParseRoundTrip(t *testing.T) {
	for _, name := range Names() {
		orig, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Parse(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Name() != orig.Name() || got.NumNodes() != orig.NumNodes() || got.NumLinks() != orig.NumLinks() {
			t.Fatalf("%s: round trip changed shape: %s vs %s", name, got, orig)
		}
		for _, l := range orig.Links() {
			rl, ok := got.LinkBetween(l.Src, l.Dst)
			if !ok || rl.Capacity != l.Capacity || rl.FailProb != l.FailProb {
				t.Fatalf("%s: link %d changed: %+v vs %+v", name, l.ID, rl, l)
			}
		}
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wan.topo")
	if err := Testbed().Save(path); err != nil {
		t.Fatal(err)
	}
	n, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumNodes() != 6 || n.NumLinks() != 16 {
		t.Fatalf("loaded %s", n)
	}
	if _, err := Load(filepath.Join(dir, "missing.topo")); err == nil {
		t.Fatal("expected missing-file error")
	}
	// Corrupt file.
	bad := filepath.Join(dir, "bad.topo")
	os.WriteFile(bad, []byte("link a"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Fatal("expected parse error")
	}
}
