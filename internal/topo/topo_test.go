package topo

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	n, err := NewBuilder("t").
		AddLink("a", "b", 100, 0.01).
		AddLink("b", "c", 200, 0.02).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if n.NumNodes() != 3 || n.NumLinks() != 2 {
		t.Fatalf("got %d nodes %d links, want 3/2", n.NumNodes(), n.NumLinks())
	}
	a, ok := n.NodeByName("a")
	if !ok {
		t.Fatal("node a missing")
	}
	b, _ := n.NodeByName("b")
	l, ok := n.LinkBetween(a, b)
	if !ok || l.Capacity != 100 || l.FailProb != 0.01 {
		t.Fatalf("LinkBetween(a,b) = %+v, %v", l, ok)
	}
	if got := l.Availability(); got != 0.99 {
		t.Fatalf("Availability = %v, want 0.99", got)
	}
	if _, ok := n.LinkBetween(b, a); ok {
		t.Fatal("unexpected reverse link")
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
	}{
		{"zero capacity", NewBuilder("t").AddLink("a", "b", 0, 0.1)},
		{"negative capacity", NewBuilder("t").AddLink("a", "b", -5, 0.1)},
		{"failProb 1", NewBuilder("t").AddLink("a", "b", 1, 1)},
		{"failProb negative", NewBuilder("t").AddLink("a", "b", 1, -0.1)},
		{"self loop", NewBuilder("t").AddLink("a", "a", 1, 0.1)},
		{"duplicate", NewBuilder("t").AddLink("a", "b", 1, 0.1).AddLink("a", "b", 2, 0.1)},
	}
	for _, c := range cases {
		if _, err := c.b.Build(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAdjacency(t *testing.T) {
	n := NewBuilder("t").
		AddLink("a", "b", 1, 0).
		AddLink("a", "c", 1, 0).
		AddLink("b", "c", 1, 0).
		MustBuild()
	a, _ := n.NodeByName("a")
	c, _ := n.NodeByName("c")
	if len(n.Out(a)) != 2 {
		t.Fatalf("Out(a) = %v, want 2 links", n.Out(a))
	}
	if len(n.In(c)) != 2 {
		t.Fatalf("In(c) = %v, want 2 links", n.In(c))
	}
	if len(n.Out(c)) != 0 || len(n.In(a)) != 0 {
		t.Fatal("unexpected adjacency")
	}
}

func TestPairs(t *testing.T) {
	n := Toy()
	pairs := n.Pairs()
	want := n.NumNodes() * (n.NumNodes() - 1)
	if len(pairs) != want {
		t.Fatalf("got %d pairs, want %d", len(pairs), want)
	}
	seen := make(map[[2]NodeID]bool)
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatalf("self pair %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

// Table 4 sizes must match the paper exactly.
func TestTable4Sizes(t *testing.T) {
	cases := []struct {
		n            *Network
		nodes, links int
	}{
		{B4(), 12, 38},
		{IBM(), 18, 48},
		{ATT(), 25, 112},
		{FITI(), 14, 32},
	}
	for _, c := range cases {
		if c.n.NumNodes() != c.nodes || c.n.NumLinks() != c.links {
			t.Errorf("%s: %d nodes %d links, want %d/%d",
				c.n.Name(), c.n.NumNodes(), c.n.NumLinks(), c.nodes, c.links)
		}
	}
}

func TestToyMatchesFigure2(t *testing.T) {
	n := Toy()
	if n.NumNodes() != 4 || n.NumLinks() != 8 {
		t.Fatalf("toy: %d nodes %d links", n.NumNodes(), n.NumLinks())
	}
	dc1, _ := n.NodeByName("DC1")
	dc2, _ := n.NodeByName("DC2")
	l, ok := n.LinkBetween(dc1, dc2)
	if !ok || l.FailProb != 0.04 {
		t.Fatalf("DC1->DC2 = %+v, want failProb 0.04", l)
	}
}

func TestTestbedLabels(t *testing.T) {
	n := Testbed()
	if n.NumNodes() != 6 || n.NumLinks() != 16 {
		t.Fatalf("testbed: %d nodes %d links", n.NumNodes(), n.NumLinks())
	}
	if got := TestbedLinkName(0); got != "L1" {
		t.Fatalf("TestbedLinkName(0) = %s", got)
	}
	if got := TestbedLinkName(7); got != "L4" {
		t.Fatalf("TestbedLinkName(7) = %s", got)
	}
	// L4 (DC1-DC4) has the highest failure probability, 1%.
	dc1, _ := n.NodeByName("DC1")
	dc4, _ := n.NodeByName("DC4")
	l, ok := n.LinkBetween(dc1, dc4)
	if !ok || l.FailProb != 0.01 {
		t.Fatalf("L4 = %+v, want failProb 0.01", l)
	}
	for _, other := range n.Links() {
		if other.Src == dc1 && other.Dst == dc4 {
			continue
		}
		if other.Dst == dc1 && other.Src == dc4 {
			continue
		}
		if other.FailProb >= l.FailProb {
			t.Fatalf("link %d has failProb %v >= L4's", other.ID, other.FailProb)
		}
	}
}

func TestStronglyConnected(t *testing.T) {
	for _, name := range Names() {
		n, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		// BFS from node 0 along out-links, then along in-links.
		for _, dir := range []string{"out", "in"} {
			visited := make([]bool, n.NumNodes())
			queue := []NodeID{0}
			visited[0] = true
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				var adj []LinkID
				if dir == "out" {
					adj = n.Out(v)
				} else {
					adj = n.In(v)
				}
				for _, id := range adj {
					l := n.Link(id)
					next := l.Dst
					if dir == "in" {
						next = l.Src
					}
					if !visited[next] {
						visited[next] = true
						queue = append(queue, next)
					}
				}
			}
			for v, ok := range visited {
				if !ok {
					t.Fatalf("%s: node %d unreachable (%s)", name, v, dir)
				}
			}
		}
	}
}

func TestHeavyTailedProbsInRange(t *testing.T) {
	f := func(seed uint64) bool {
		probs := heavyTailedProbs(64, seed|1)
		for _, p := range probs {
			if p < 1e-5 || p >= 0.01+0.005 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScale(t *testing.T) {
	n := Testbed().Scale(2)
	for _, l := range n.Links() {
		if l.Capacity != 2000 {
			t.Fatalf("scaled capacity = %v, want 2000", l.Capacity)
		}
	}
}

func TestWithFailProbs(t *testing.T) {
	n := Toy()
	probs := make([]float64, n.NumLinks())
	for i := range probs {
		probs[i] = 0.5
	}
	m, err := n.WithFailProbs(probs)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range m.Links() {
		if l.FailProb != 0.5 {
			t.Fatalf("failProb = %v, want 0.5", l.FailProb)
		}
	}
	if _, err := n.WithFailProbs(probs[:2]); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown topology")
	}
}

func TestDescribeAndString(t *testing.T) {
	n := Toy()
	if !strings.Contains(n.String(), "Toy4") {
		t.Fatalf("String() = %q", n.String())
	}
	d := n.Describe()
	if !strings.Contains(d, "DC1 -> DC2") || !strings.Contains(d, "pfail") {
		t.Fatalf("Describe() missing link lines:\n%s", d)
	}
}
