package topo

import "fmt"

// Built-in topologies used by the paper's evaluation (§2.2, §5, Table 4).
//
// B4 matches the published 12-site map of Google's B4; IBM, ATT and
// FITI are reconstructed at the node/link counts reported in Table 4
// (see DESIGN.md substitution 6). Failure probabilities follow the
// heavy-tailed pattern of Fig. 1(b): most links are very reliable and
// a small fraction contributes most failures.

// Toy returns the 4-DC motivating topology of Fig. 2: two disjoint
// DC1→DC4 paths, one through DC2 (4% failure on the first hop) and one
// through DC3 (0.1% on the first hop). Capacities are 10 Gbps.
func Toy() *Network {
	const g = 10000 // 10 Gbps in Mbps
	return NewBuilder("Toy4").
		Bidi("DC1", "DC2", g, 0.04).
		Bidi("DC2", "DC4", g, 0.000001).
		Bidi("DC1", "DC3", g, 0.001).
		Bidi("DC3", "DC4", g, 0.000001).
		MustBuild()
}

// Testbed returns the 6-DC testbed topology of Fig. 6 with the eight
// labelled links L1..L8. Link capacities are 1 Gbps, failure
// probabilities as annotated in the figure; L4 (the direct DC1–DC4
// link) carries the highest probability, 1%, matching the Fig. 10
// observation that L4 fails most frequently.
func Testbed() *Network {
	const g = 1000 // 1 Gbps in Mbps
	return NewBuilder("Testbed6").
		Bidi("DC1", "DC2", g, 0.00001). // L1
		Bidi("DC2", "DC3", g, 0.00002). // L2
		Bidi("DC3", "DC4", g, 0.00001). // L3
		Bidi("DC1", "DC4", g, 0.01).    // L4
		Bidi("DC2", "DC5", g, 0.0001).  // L5
		Bidi("DC4", "DC5", g, 0.0002).  // L6
		Bidi("DC5", "DC6", g, 0.0002).  // L7
		Bidi("DC1", "DC6", g, 0.0001).  // L8
		MustBuild()
}

// TestbedLinkName returns the paper's L1..L8 label for a testbed link
// id (each label covers both directions of the bidirectional fiber).
func TestbedLinkName(id LinkID) string {
	return fmt.Sprintf("L%d", int(id)/2+1)
}

// heavyTailedProbs returns n failure probabilities following the
// Fig. 1(b) pattern: ~70% of links near 1e-5..1e-4, ~25% around
// 1e-4..1e-3, and ~5% "bad" links at 5e-3..1e-2. Deterministic.
func heavyTailedProbs(n int, seed uint64) []float64 {
	probs := make([]float64, n)
	x := seed
	next := func() uint64 { // xorshift64
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := range probs {
		r := next() % 100
		u := float64(next()%1000) / 1000 // [0,1)
		switch {
		case r < 70:
			probs[i] = 1e-5 + u*9e-5
		case r < 95:
			probs[i] = 1e-4 + u*9e-4
		default:
			probs[i] = 5e-3 + u*5e-3
		}
	}
	return probs
}

// meshBuilder builds a name-indexed ring-plus-chords graph with the
// requested number of nodes and bidirectional edges. The ring
// guarantees strong connectivity; chords are spread deterministically.
func meshBuilder(name string, nodes, edges int, caps []float64, seed uint64) *Network {
	b := NewBuilder(name)
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("%s%d", name, i+1)
		b.Node(names[i])
	}
	probs := heavyTailedProbs(edges, seed)
	type pair struct{ a, c int }
	var chosen []pair
	seen := make(map[pair]bool)
	add := func(a, c int) bool {
		if a == c {
			return false
		}
		if a > c {
			a, c = c, a
		}
		p := pair{a, c}
		if seen[p] {
			return false
		}
		seen[p] = true
		chosen = append(chosen, p)
		return true
	}
	for i := 0; i < nodes; i++ { // ring
		add(i, (i+1)%nodes)
	}
	// Chords: widening strides keep the graph mesh-like and give
	// multiple disjoint paths between most pairs.
	stride := 2
	for len(chosen) < edges {
		added := false
		for i := 0; i < nodes && len(chosen) < edges; i++ {
			if add(i, (i+stride)%nodes) {
				added = true
			}
		}
		stride++
		if !added && stride > nodes {
			break
		}
	}
	for i, p := range chosen {
		b.Bidi(names[p.a], names[p.c], caps[i%len(caps)], probs[i])
	}
	return b.MustBuild()
}

// B4 returns the 12-node, 38-directed-link Google B4 topology
// (Table 4). The 19 bidirectional edges follow the published B4 site
// map; capacities model mixed 10/20 Gbps WAN trunks.
func B4() *Network {
	b := NewBuilder("B4")
	// Sites numbered 1..12 (North America 1-6, Europe 7-9, Asia 10-12).
	edges := []struct {
		a, c string
		cap  float64
	}{
		{"B4-1", "B4-2", 10000}, {"B4-1", "B4-3", 10000},
		{"B4-2", "B4-3", 10000}, {"B4-2", "B4-4", 20000},
		{"B4-3", "B4-5", 10000}, {"B4-4", "B4-5", 10000},
		{"B4-4", "B4-6", 20000}, {"B4-5", "B4-6", 10000},
		{"B4-5", "B4-7", 10000}, {"B4-6", "B4-8", 20000},
		{"B4-7", "B4-8", 10000}, {"B4-7", "B4-9", 10000},
		{"B4-8", "B4-9", 10000}, {"B4-8", "B4-10", 10000},
		{"B4-9", "B4-11", 10000}, {"B4-10", "B4-11", 10000},
		{"B4-10", "B4-12", 10000}, {"B4-11", "B4-12", 10000},
		{"B4-6", "B4-10", 10000},
	}
	probs := heavyTailedProbs(len(edges), 0xB4B4B4B4)
	for i, e := range edges {
		b.Bidi(e.a, e.c, e.cap, probs[i])
	}
	return b.MustBuild()
}

// IBM returns the 18-node, 48-directed-link IBM backbone of Table 4.
func IBM() *Network {
	return meshBuilder("IBM", 18, 24, []float64{10000, 10000, 20000}, 0x1B3C5D7E)
}

// ATT returns the 25-node, 112-directed-link AT&T backbone of Table 4.
func ATT() *Network {
	return meshBuilder("ATT", 25, 56, []float64{10000, 20000, 40000}, 0xA77A77A7)
}

// FITI returns the 14-node, 32-directed-link FITI (Future Internet
// Technology Infrastructure) topology of Table 4.
func FITI() *Network {
	return meshBuilder("FITI", 14, 16, []float64{10000, 10000, 20000}, 0xF171F171)
}

// ByName returns a built-in topology by its Table 4 name.
func ByName(name string) (*Network, error) {
	switch name {
	case "Toy4", "toy":
		return Toy(), nil
	case "Testbed6", "testbed":
		return Testbed(), nil
	case "B4", "b4":
		return B4(), nil
	case "IBM", "ibm":
		return IBM(), nil
	case "ATT", "att":
		return ATT(), nil
	case "FITI", "fiti":
		return FITI(), nil
	case "Synth100", "synth100":
		return Synth100(), nil
	case "Synth300", "synth300":
		return Synth300(), nil
	case "Synth1000", "synth1000":
		return Synth1000(), nil
	case "Rand100", "rand100":
		return Rand100(), nil
	case "Rand300", "rand300":
		return Rand300(), nil
	}
	return nil, fmt.Errorf("topo: unknown topology %q", name)
}

// Names lists the built-in topology names accepted by ByName.
func Names() []string {
	return []string{"Toy4", "Testbed6", "B4", "IBM", "ATT", "FITI",
		"Synth100", "Synth300", "Synth1000", "Rand100", "Rand300"}
}
