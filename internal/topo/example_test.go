package topo_test

import (
	"fmt"
	"strings"

	"bate/internal/topo"
)

// Example builds a custom WAN with the Builder.
func Example() {
	n := topo.NewBuilder("MyWAN").
		Bidi("FRA", "AMS", 10000, 0.001).
		Bidi("AMS", "LON", 10000, 0.0005).
		Bidi("FRA", "LON", 20000, 0.002).
		MustBuild()
	fmt.Println(n)
	fra, _ := n.NodeByName("FRA")
	lon, _ := n.NodeByName("LON")
	l, _ := n.LinkBetween(fra, lon)
	fmt.Printf("FRA->LON: %.0f Mbps, %.4f%% availability\n", l.Capacity, l.Availability()*100)
	// Output:
	// MyWAN(3 nodes, 6 links)
	// FRA->LON: 20000 Mbps, 99.8000% availability
}

// ExampleParse loads a topology from the text file format.
func ExampleParse() {
	const src = `
topology EuroRing
bidi FRA AMS 10000 0.001   # primary fiber
bidi AMS LON 10000 0.0005
link LON FRA 5000 0.01     # one-way leased wave
`
	n, err := topo.Parse(strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	fmt.Println(n)
	// Output:
	// EuroRing(3 nodes, 5 links)
}
