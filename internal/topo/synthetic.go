package topo

import "fmt"

// Synthetic 100/300/1000-node topologies for the hierarchical-scheduling
// scale experiments. Paper-scale WANs (Table 4) top out at 25 nodes;
// these generators produce deterministic larger graphs in two families:
//
//   - RingOfRegions: dense regional meshes joined in a ring by thinner
//     border trunks — the structure partitioned scheduling exploits.
//     Intra-region trunks are fatter than border trunks, so a
//     capacity-greedy min-cut recovers the regions exactly.
//   - FatRandom: a ring-plus-chords mesh with no planted structure, the
//     adversarial case for partitioning (most demands cross any cut).
//
// Both are deterministic functions of their parameters (failure
// probabilities come from the seeded heavy-tailed generator), so
// benchmarks and chaos replays are reproducible byte-for-byte.

// RingOfRegions builds `regions` meshes of `perRegion` nodes each,
// joined in a ring: region r connects to region (r+1) mod regions by
// two bidirectional border trunks. Node names are R<r>N<i> (1-based).
// Intra-region trunks carry intraCap Mbps, border trunks borderCap;
// callers wanting a partition-friendly graph keep borderCap < intraCap.
func RingOfRegions(name string, regions, perRegion int, intraCap, borderCap float64, seed uint64) *Network {
	if regions < 2 || perRegion < 3 {
		panic(fmt.Sprintf("topo: RingOfRegions needs >=2 regions of >=3 nodes, got %dx%d", regions, perRegion))
	}
	b := NewBuilder(name)
	names := make([][]string, regions)
	for r := 0; r < regions; r++ {
		names[r] = make([]string, perRegion)
		for i := 0; i < perRegion; i++ {
			names[r][i] = fmt.Sprintf("R%dN%d", r+1, i+1)
			b.Node(names[r][i])
		}
	}
	// Intra-region mesh: a ring plus stride-2 and stride-3 chords keeps
	// diameters small (k-shortest tunnels stay short and local) and
	// gives several disjoint paths inside every region.
	type edge struct{ r, a, c int }
	var intra []edge
	for r := 0; r < regions; r++ {
		seen := make(map[[2]int]bool)
		add := func(a, c int) {
			if a == c {
				return
			}
			if a > c {
				a, c = c, a
			}
			if seen[[2]int{a, c}] {
				return
			}
			seen[[2]int{a, c}] = true
			intra = append(intra, edge{r, a, c})
		}
		for i := 0; i < perRegion; i++ {
			add(i, (i+1)%perRegion)
		}
		for _, stride := range []int{2, 3} {
			if stride < perRegion {
				for i := 0; i < perRegion; i++ {
					add(i, (i+stride)%perRegion)
				}
			}
		}
	}
	// Scale probabilities down 10x from the paper-scale defaults: the
	// qualified scenario mass P(<= y network-wide failures) bounds every
	// demand's achievable availability, and at 1000 nodes (~6400 links)
	// the default rates leave P(<=2) near 0.3 — no target is feasible.
	probs := heavyTailedProbs(len(intra)+2*regions, seed)
	for i := range probs {
		probs[i] *= 0.1
	}
	for i, e := range intra {
		b.Bidi(names[e.r][e.a], names[e.r][e.c], intraCap, probs[i])
	}
	// Border trunks: two per ring edge, anchored at deterministic nodes
	// so the inter-region cut is exactly 2*borderCap per direction. With
	// exactly two regions the ring has one edge, not two, so the r=1
	// trunks would duplicate r=0's.
	ringEdges := regions
	if regions == 2 {
		ringEdges = 1
	}
	for r := 0; r < ringEdges; r++ {
		next := (r + 1) % regions
		p0 := probs[len(intra)+2*r]
		p1 := probs[len(intra)+2*r+1]
		b.Bidi(names[r][0], names[next][perRegion/2], borderCap, p0)
		b.Bidi(names[r][perRegion/2], names[next][0], borderCap, p1)
	}
	return b.MustBuild()
}

// FatRandom builds an unstructured nodes-node mesh with roughly
// degree*nodes/2 bidirectional edges (ring plus widening-stride
// chords), mixed trunk capacities, and seeded heavy-tailed failure
// probabilities.
func FatRandom(name string, nodes, degree int, seed uint64) *Network {
	edges := nodes * degree / 2
	if edges < nodes {
		edges = nodes
	}
	return meshBuilder(name, nodes, edges, []float64{10000, 20000, 40000}, seed)
}

// Synth100 returns the 100-node ring-of-regions scale topology:
// 10 regions of 10 nodes.
func Synth100() *Network {
	return RingOfRegions("Synth100", 10, 10, 40000, 20000, 0x5E100100)
}

// Synth300 returns the 300-node ring-of-regions scale topology:
// 15 regions of 20 nodes. This is the acceptance benchmark graph.
func Synth300() *Network {
	return RingOfRegions("Synth300", 15, 20, 40000, 20000, 0x5E300300)
}

// Synth1000 returns the 1000-node ring-of-regions scale topology:
// 25 regions of 40 nodes.
func Synth1000() *Network {
	return RingOfRegions("Synth1000", 25, 40, 40000, 20000, 0x5E1000AA)
}

// Rand100 returns a 100-node unstructured fat random mesh.
func Rand100() *Network { return FatRandom("Rand100", 100, 4, 0xFA100100) }

// Rand300 returns a 300-node unstructured fat random mesh.
func Rand300() *Network { return FatRandom("Rand300", 300, 4, 0xFA300300) }
