package topo

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text topology format lets operators load their own WAN instead
// of the built-ins:
//
//	# comment
//	topology MyWAN
//	node DC1                      # optional; links create nodes too
//	link DC1 DC2 10000 0.001      # src dst capacity_mbps fail_prob
//	bidi DC1 DC3 10000 0.0001     # both directions
//
// Capacities are Mbps; failure probabilities are fractions in [0,1).

// Parse reads a topology from r in the text format.
func Parse(r io.Reader) (*Network, error) {
	b := NewBuilder("")
	name := "custom"
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "topology":
			if len(fields) != 2 {
				return nil, fmt.Errorf("topo: line %d: topology wants one name", lineNo)
			}
			name = fields[1]
		case "node":
			if len(fields) != 2 {
				return nil, fmt.Errorf("topo: line %d: node wants one name", lineNo)
			}
			b.Node(fields[1])
		case "link", "bidi":
			if len(fields) != 5 {
				return nil, fmt.Errorf("topo: line %d: %s wants src dst capacity failprob", lineNo, fields[0])
			}
			capacity, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("topo: line %d: bad capacity %q: %v", lineNo, fields[3], err)
			}
			failProb, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("topo: line %d: bad failprob %q: %v", lineNo, fields[4], err)
			}
			if fields[0] == "link" {
				b.AddLink(fields[1], fields[2], capacity, failProb)
			} else {
				b.Bidi(fields[1], fields[2], capacity, failProb)
			}
		default:
			return nil, fmt.Errorf("topo: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	b.name = name
	n, err := b.Build()
	if err != nil {
		return nil, err
	}
	if n.NumNodes() == 0 {
		return nil, fmt.Errorf("topo: empty topology")
	}
	return n, nil
}

// Load reads a topology file from disk.
func Load(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return n, nil
}

// Write renders the network in the text format, pairing reverse links
// into bidi lines when capacity and failure probability match.
func (n *Network) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "topology %s\n", n.name); err != nil {
		return err
	}
	for _, name := range n.nodeNames {
		if _, err := fmt.Fprintf(w, "node %s\n", name); err != nil {
			return err
		}
	}
	done := make([]bool, len(n.links))
	for _, l := range n.links {
		if done[l.ID] {
			continue
		}
		done[l.ID] = true
		kind := "link"
		if rev, ok := n.LinkBetween(l.Dst, l.Src); ok && !done[rev.ID] &&
			rev.Capacity == l.Capacity && rev.FailProb == l.FailProb {
			done[rev.ID] = true
			kind = "bidi"
		}
		if _, err := fmt.Fprintf(w, "%s %s %s %g %g\n",
			kind, n.nodeNames[l.Src], n.nodeNames[l.Dst], l.Capacity, l.FailProb); err != nil {
			return err
		}
	}
	return nil
}

// Save writes the network to a file.
func (n *Network) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := n.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Resolve interprets s as a built-in topology name first, then as a
// path to a topology file. Commands use it for their -topology flag.
func Resolve(s string) (*Network, error) {
	if n, err := ByName(s); err == nil {
		return n, nil
	}
	if _, statErr := os.Stat(s); statErr == nil {
		return Load(s)
	}
	return nil, fmt.Errorf("topo: %q is neither a built-in topology (%v) nor a readable file", s, Names())
}
