// Package topo models the inter-DC WAN as a directed graph whose nodes
// are datacenters and whose links carry a capacity (Mbps) and an
// independent failure probability, following §3.1 of the BATE paper.
package topo

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
)

// NodeID identifies a datacenter in a Network. IDs are dense and start
// at zero so they can index slices directly.
type NodeID int

// LinkID identifies a directed link in a Network. IDs are dense and
// start at zero.
type LinkID int

// Link is a directed edge of the WAN graph.
type Link struct {
	ID       LinkID
	Src, Dst NodeID
	// Capacity is the link capacity in Mbps.
	Capacity float64
	// FailProb is the probability (fraction in [0,1]) that the link
	// is down, estimated from historical data (§3.1).
	FailProb float64
}

// Availability returns 1 - FailProb.
func (l Link) Availability() float64 { return 1 - l.FailProb }

// Network is an immutable directed graph of datacenters and links.
// Construct one with NewBuilder; a zero Network is empty.
type Network struct {
	name      string
	nodeNames []string
	nodeIndex map[string]NodeID
	links     []Link
	out       [][]LinkID // outgoing links per node
	in        [][]LinkID // incoming links per node
	byPair    map[[2]NodeID]LinkID

	fpOnce sync.Once
	fp     [16]byte
}

// Name returns the topology name (e.g. "B4").
func (n *Network) Name() string { return n.name }

// NumNodes returns the number of datacenters.
func (n *Network) NumNodes() int { return len(n.nodeNames) }

// NumLinks returns the number of directed links.
func (n *Network) NumLinks() int { return len(n.links) }

// NodeName returns the name of node id.
func (n *Network) NodeName(id NodeID) string { return n.nodeNames[id] }

// NodeByName returns the id of the named node.
func (n *Network) NodeByName(name string) (NodeID, bool) {
	id, ok := n.nodeIndex[name]
	return id, ok
}

// Link returns the link with the given id.
func (n *Network) Link(id LinkID) Link { return n.links[id] }

// Links returns all links in id order. The returned slice must not be
// modified.
func (n *Network) Links() []Link { return n.links }

// Out returns the ids of links leaving node v. The returned slice must
// not be modified.
func (n *Network) Out(v NodeID) []LinkID { return n.out[v] }

// In returns the ids of links entering node v. The returned slice must
// not be modified.
func (n *Network) In(v NodeID) []LinkID { return n.in[v] }

// LinkBetween returns the link from src to dst, if one exists.
func (n *Network) LinkBetween(src, dst NodeID) (Link, bool) {
	id, ok := n.byPair[[2]NodeID{src, dst}]
	if !ok {
		return Link{}, false
	}
	return n.links[id], true
}

// Fingerprint returns a 128-bit digest of the failure-relevant
// structure of the network: the node count plus every link's endpoints
// and failure probability (capacities are excluded — they never enter
// scenario-class computation). Networks are immutable, so the digest is
// computed once and memoized; hot callers such as the scenario class
// cache key every lookup with it for the cost of a pointer read instead
// of an O(links) hash.
func (n *Network) Fingerprint() [16]byte {
	n.fpOnce.Do(func() {
		h := fnv.New128a()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(len(n.nodeNames)))
		h.Write(buf[:])
		for _, l := range n.links {
			binary.LittleEndian.PutUint64(buf[:], uint64(l.Src)<<32|uint64(uint32(l.Dst)))
			h.Write(buf[:])
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(l.FailProb))
			h.Write(buf[:])
		}
		copy(n.fp[:], h.Sum(nil))
	})
	return n.fp
}

// Pairs returns every ordered (src, dst) node pair with src != dst, in
// deterministic order. This is the demand pair set K of the paper.
func (n *Network) Pairs() [][2]NodeID {
	pairs := make([][2]NodeID, 0, n.NumNodes()*(n.NumNodes()-1))
	for s := 0; s < n.NumNodes(); s++ {
		for d := 0; d < n.NumNodes(); d++ {
			if s != d {
				pairs = append(pairs, [2]NodeID{NodeID(s), NodeID(d)})
			}
		}
	}
	return pairs
}

// String returns a short human-readable summary.
func (n *Network) String() string {
	return fmt.Sprintf("%s(%d nodes, %d links)", n.name, n.NumNodes(), n.NumLinks())
}

// Describe returns a multi-line listing of nodes and links, useful in
// examples and debugging output.
func (n *Network) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology %s: %d nodes, %d links\n", n.name, n.NumNodes(), n.NumLinks())
	for _, l := range n.links {
		fmt.Fprintf(&b, "  %s -> %s  cap=%.0f Mbps  pfail=%.6g\n",
			n.nodeNames[l.Src], n.nodeNames[l.Dst], l.Capacity, l.FailProb)
	}
	return b.String()
}

// Builder accumulates nodes and links and produces an immutable
// Network. Node and Bidi/AddLink calls may be freely interleaved.
type Builder struct {
	name  string
	nodes []string
	index map[string]NodeID
	links []Link
	err   error
}

// NewBuilder returns a Builder for a topology with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, index: make(map[string]NodeID)}
}

// Node adds (or finds) a node by name and returns its id.
func (b *Builder) Node(name string) NodeID {
	if id, ok := b.index[name]; ok {
		return id
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, name)
	b.index[name] = id
	return id
}

// AddLink adds a directed link. Capacity is in Mbps, failProb in [0,1].
func (b *Builder) AddLink(src, dst string, capacity, failProb float64) *Builder {
	if b.err != nil {
		return b
	}
	if capacity <= 0 {
		b.err = fmt.Errorf("topo: link %s->%s: capacity %v must be positive", src, dst, capacity)
		return b
	}
	if failProb < 0 || failProb >= 1 {
		b.err = fmt.Errorf("topo: link %s->%s: failProb %v out of [0,1)", src, dst, failProb)
		return b
	}
	s, d := b.Node(src), b.Node(dst)
	if s == d {
		b.err = fmt.Errorf("topo: self loop on %s", src)
		return b
	}
	b.links = append(b.links, Link{
		ID: LinkID(len(b.links)), Src: s, Dst: d,
		Capacity: capacity, FailProb: failProb,
	})
	return b
}

// Bidi adds a pair of directed links, one in each direction, with the
// same capacity and failure probability. WAN links in the paper's
// topologies are bidirectional fibers modeled as two directed links.
func (b *Builder) Bidi(a, c string, capacity, failProb float64) *Builder {
	return b.AddLink(a, c, capacity, failProb).AddLink(c, a, capacity, failProb)
}

// Build finalizes the Network. It fails on duplicate links or if any
// prior Add call reported an error.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := &Network{
		name:      b.name,
		nodeNames: append([]string(nil), b.nodes...),
		nodeIndex: make(map[string]NodeID, len(b.nodes)),
		links:     append([]Link(nil), b.links...),
		out:       make([][]LinkID, len(b.nodes)),
		in:        make([][]LinkID, len(b.nodes)),
		byPair:    make(map[[2]NodeID]LinkID, len(b.links)),
	}
	for name, id := range b.index {
		n.nodeIndex[name] = id
	}
	for _, l := range n.links {
		key := [2]NodeID{l.Src, l.Dst}
		if _, dup := n.byPair[key]; dup {
			return nil, fmt.Errorf("topo: duplicate link %s->%s",
				n.nodeNames[l.Src], n.nodeNames[l.Dst])
		}
		n.byPair[key] = l.ID
		n.out[l.Src] = append(n.out[l.Src], l.ID)
		n.in[l.Dst] = append(n.in[l.Dst], l.ID)
	}
	for v := range n.out {
		sort.Slice(n.out[v], func(i, j int) bool { return n.out[v][i] < n.out[v][j] })
		sort.Slice(n.in[v], func(i, j int) bool { return n.in[v][i] < n.in[v][j] })
	}
	return n, nil
}

// MustBuild is Build that panics on error, for static topology tables.
func (b *Builder) MustBuild() *Network {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

// Scale returns a copy of the network with every link capacity
// multiplied by factor. Used to scale testbed topologies between Gbps
// and Mbps experiments.
func (n *Network) Scale(factor float64) *Network {
	b := NewBuilder(n.name)
	for _, name := range n.nodeNames {
		b.Node(name)
	}
	for _, l := range n.links {
		b.AddLink(n.nodeNames[l.Src], n.nodeNames[l.Dst], l.Capacity*factor, l.FailProb)
	}
	return b.MustBuild()
}

// WithFailProbs returns a copy of the network whose link failure
// probabilities are replaced by probs (indexed by LinkID).
func (n *Network) WithFailProbs(probs []float64) (*Network, error) {
	if len(probs) != len(n.links) {
		return nil, fmt.Errorf("topo: got %d probs for %d links", len(probs), len(n.links))
	}
	b := NewBuilder(n.name)
	for _, name := range n.nodeNames {
		b.Node(name)
	}
	for _, l := range n.links {
		b.AddLink(n.nodeNames[l.Src], n.nodeNames[l.Dst], l.Capacity, probs[l.ID])
	}
	return b.Build()
}
