// Package controller implements the central BATE controller of §4: it
// accepts BA demand submissions from clients, runs admission control
// in near real time, periodically re-optimizes allocations with the
// scheduling LP, precomputes failure backups, and pushes per-DC
// allocations to the brokers over long-lived TCP sessions.
package controller

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/demand"
	"bate/internal/lp"
	"bate/internal/metrics"
	"bate/internal/overload"
	"bate/internal/partition"
	"bate/internal/routing"
	"bate/internal/store"
	"bate/internal/topo"
	"bate/internal/wire"
)

// Config configures a Controller.
type Config struct {
	Net     *topo.Network
	Tunnels *routing.TunnelSet
	// MaxFail is the scenario pruning depth (default 2).
	MaxFail int
	// BackupDepth is how many concurrent link failures get precomputed
	// backup allocations (default 1; §3.4). Combination counts grow as
	// C(|E|, depth); BackupBudget caps them (0 = |E|·4).
	BackupDepth  int
	BackupBudget int
	// SchedulePeriod is the online scheduler's cadence (§3.3 suggests
	// ~10 minutes in production; examples use seconds). Zero disables
	// the periodic loop (scheduling still runs after each admission).
	SchedulePeriod time.Duration
	// Store, when non-nil, makes the controller durable: New restores
	// the full demand book, allocation, link-down set, epoch and id
	// allocator from it, and every mutating transition is appended to
	// its WAL before the client is acked.
	Store *store.Store
	// CompactEvery is the store compaction cadence: the controller
	// snapshots its state and trims the WAL on this period (0 disables;
	// ignored without a Store). Admissions pause briefly during a
	// compaction.
	CompactEvery time.Duration
	// FrameTimeout bounds how long a peer may take to finish sending a
	// message frame once its first byte arrives (a half-written frame
	// would otherwise block the reader goroutine forever). Zero means
	// the 30s default; negative disables the deadline.
	FrameTimeout time.Duration
	// RecoveryDeadline bounds the failure-recovery pipeline per link
	// event: backup hit, then a budgeted optimal MILP racing the
	// remaining deadline, then the greedy floor (default 2s; see
	// bate.Recover).
	RecoveryDeadline time.Duration
	// SolverGate, when non-nil, is consulted before solver-backed
	// operations ("schedule", "recover"); an error makes the operation
	// degrade (keep the current allocation / fall down the recovery
	// ladder) instead of running. The chaos solver-budget front hooks
	// in here.
	SolverGate func(op string) error
	// SolverWatch, when non-nil, supplies a per-solve cancellation
	// probe for solver-backed operations: the returned func is polled
	// from inside the pivot/iteration loop and an error aborts the
	// solve mid-flight (the reschedule then keeps the current
	// allocation). The chaos mid-solve front hooks in here; nil
	// returned probes cost nothing.
	SolverWatch func(op string) func() error
	// BatchLP routes every reschedule through the batched matrix-form
	// first-order engine (lp.EngineBatch): instances above the batch
	// row threshold solve via PDHG with a transparent revised-simplex
	// fallback, smaller ones take the exact simplex path unchanged.
	BatchLP bool
	// StubAdmission admits every structurally valid demand without
	// consulting the solver (method "stub"). The wire load harness uses
	// it so throughput numbers measure the control channel, not LP
	// cost. Durability and id allocation behave exactly as in real
	// admission.
	StubAdmission bool
	// ForceJSONWire pins every session's outgoing codec to the JSON
	// debug codec, ignoring Hello negotiation. Peers may still *send*
	// binary frames (the codec is sniffed per frame); this only forces
	// the controller's replies, which is what the mixed-version matrix
	// tests exercise.
	ForceJSONWire bool
	// Partition, when non-nil, runs every reschedule through BATE's
	// hierarchical (partitioned) scheduling; rounds the decomposition
	// declines fall back to the global solve transparently. See
	// bate.ScheduleOptions.Partition.
	Partition *partition.Options
	// Overload, when non-nil, puts the admission gate of
	// internal/overload in front of every client session: a bounded
	// priority queue (withdraw > submit > status) with CoDel-style
	// sojourn shedding, per-client rate limits and an adaptive
	// concurrency ceiling. Shed requests are answered with explicit
	// TypeRetryAfter frames — never silently dropped. Under sustained
	// overload the controller additionally serves status from the last
	// snapshot, coalesces fresh single submits into shared AdmitBatch
	// calls, and defers periodic reschedules. Nil disables all of it.
	Overload *overload.Options
	// StubWork simulates per-request admission cost in StubAdmission
	// mode: every submit (or coalesced batch — the batch pays ONE
	// unit, which is what makes coalescing raise goodput) sleeps this
	// long outside the controller lock. The overload harness uses it
	// to give the controller a known capacity. Zero disables.
	StubWork time.Duration
	// Maintenance schedules proactive drains around planned link work
	// (§3.4 in reverse: the failure is known in advance). Serve walks
	// the windows by wall clock, draining each link Lead before its
	// Start and undraining it at End. Operators can also call
	// DrainLink/UndrainLink directly.
	Maintenance []MaintenanceWindow
	// Logf receives diagnostics; nil uses the standard logger.
	Logf func(string, ...interface{})
}

// MaintenanceWindow is one planned link outage: the controller drains
// the link Lead before Start — the reschedule routes all traffic off
// it while it is still up, so the later outage hits a link carrying
// nothing — and undrains it at End. Drain state is deliberately not
// durable: a failed-over replica re-derives it from its own window
// list rather than trusting a dead master's clock. Windows on the
// same link must not overlap (drains are not refcounted; the earliest
// End returns the link to service).
type MaintenanceWindow struct {
	SrcDC, DstDC string
	Start, End   time.Time
	// Lead is how long before Start the drain begins (default 30s).
	Lead time.Duration
}

var (
	mAppendRetries = metrics.NewCounter("controller.append_retries")

	// Session-teardown classification: a clean disconnect (EOF between
	// frames) is routine churn; a typed wire error is frame damage.
	mPeerDisconnects = metrics.NewCounter("controller.peer_disconnects")
	mFrameErrors     = metrics.NewCounter("controller.frame_errors")
	mOversizeFrames  = metrics.NewCounter("controller.oversize_frames")

	// Overload degradations.
	mStatusSnapshot  = metrics.NewCounter("controller.status_from_snapshot")
	mSubmitCoalesced = metrics.NewCounter("controller.submits_coalesced")
	mDeferredResched = metrics.NewCounter("controller.deferred_reschedules")
	mSlowBrokerEvict = metrics.NewCounter("controller.slow_broker_evictions")

	// Maintenance drains.
	mDrains   = metrics.NewCounter("controller.drains")
	mUndrains = metrics.NewCounter("controller.undrains")
)

// countRecvErr classifies the error that ended a session's receive
// loop, using the wire package's typed errors so damaged peers and
// departing peers land in different counters.
func countRecvErr(err error) {
	switch {
	case err == nil, errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed):
		mPeerDisconnects.Inc()
	case errors.Is(err, wire.ErrFrameTooLarge):
		mOversizeFrames.Inc()
	case errors.Is(err, wire.ErrShortRead), errors.Is(err, wire.ErrBadMagic),
		errors.Is(err, wire.ErrBadVersion), errors.Is(err, wire.ErrBadFrame):
		mFrameErrors.Inc()
	default:
		mPeerDisconnects.Inc()
	}
}

// appendDurable runs one store append with bounded jittered-backoff
// retries. The store repairs its WAL tail after a failed append, so a
// retry is safe (no duplicate or torn record can result); transient
// disk hiccups therefore cost latency, not a refused admission. The
// final error after all retries is the caller's to fail closed on.
func (c *Controller) appendDurable(what string, fn func() error) error {
	delay := 5 * time.Millisecond
	var err error
	for attempt := 0; ; attempt++ {
		if err = fn(); err == nil {
			if attempt > 0 {
				c.logf("controller: store %s succeeded after %d retries", what, attempt)
			}
			return nil
		}
		if attempt == 3 {
			return err
		}
		mAppendRetries.Inc()
		c.logf("controller: store %s failed (attempt %d), retrying: %v", what, attempt+1, err)
		time.Sleep(delay + time.Duration(rand.Int63n(int64(delay))))
		delay *= 2
	}
}

// Controller is the system brain. Create with New, start with Serve,
// stop by closing the listener or cancelling the context.
type Controller struct {
	cfg  Config
	logf func(string, ...interface{})

	// scheduler carries the revised-simplex basis across rounds so a
	// reschedule over an unchanged demand set warm-starts.
	scheduler *bate.Scheduler

	mu       sync.Mutex
	demands  map[int]*demand.Demand
	current  alloc.Allocation
	backups  *bate.BackupSet
	brokers  map[string]*wire.Conn
	linkDown map[topo.LinkID]bool
	drained  map[topo.LinkID]bool
	epoch    uint64
	nextID   int
	restored bool // state came from the store; reschedule once on Serve

	// Overload control (nil gate = disabled). submitq feeds the
	// submit coalescer; statusCache holds the last full status reply
	// for degraded service under pressure.
	gate    *overload.Gate
	submitq chan pendingSubmit

	statusMu    sync.Mutex
	statusCache *wire.StatusReply

	// Session accounting: every handleConn goroutine is registered so
	// Serve teardown can close live sessions and drain in-flight
	// requests instead of racing them.
	sessMu   sync.Mutex
	conns    map[*wire.Conn]struct{}
	sessions sync.WaitGroup
}

// pendingSubmit is one fresh submission parked for batch coalescing;
// the submitter's gate slot travels with it and is released by the
// coalescer.
type pendingSubmit struct {
	conn  *wire.Conn
	seq   uint64
	sub   *wire.Submit
	start time.Time
}

// New creates a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Net == nil || cfg.Tunnels == nil {
		return nil, fmt.Errorf("controller: Net and Tunnels are required")
	}
	if cfg.MaxFail <= 0 {
		cfg.MaxFail = 2
	}
	if cfg.BackupDepth <= 0 {
		cfg.BackupDepth = 1
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	c := &Controller{
		cfg:       cfg,
		logf:      logf,
		scheduler: bate.NewScheduler(),
		demands:   make(map[int]*demand.Demand),
		current:   alloc.Allocation{},
		brokers:   make(map[string]*wire.Conn),
		linkDown:  make(map[topo.LinkID]bool),
		drained:   make(map[topo.LinkID]bool),
		conns:     make(map[*wire.Conn]struct{}),
	}
	if cfg.Overload != nil {
		c.gate = overload.NewGate(*cfg.Overload)
		c.submitq = make(chan pendingSubmit, 256)
	}
	if cfg.Store != nil {
		// Durable restart / warm failover: resume with the replayed
		// demand book, allocation, link state and id allocator exactly as
		// the dead master acked them.
		st := cfg.Store.Restored()
		c.demands = st.Demands
		c.current = st.Current
		c.linkDown = st.LinkDown
		c.epoch = st.Epoch
		c.nextID = st.NextID
		c.restored = len(st.Demands) > 0
		if c.restored {
			logf("controller: restored %d demands, epoch %d, %d links down, next id %d from %s",
				len(st.Demands), st.Epoch, len(st.LinkDown), st.NextID, cfg.Store.Dir())
		}
	}
	return c, nil
}

// Serve accepts controller connections on ln until ctx is cancelled
// or ln is closed.
func (c *Controller) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	if c.restored {
		// Re-prime the scheduler over the restored demand book so backups
		// exist and the warm-start basis is seeded before traffic arrives.
		go func() {
			if err := c.reschedule(); err != nil {
				c.logf("controller: post-restore reschedule: %v", err)
			}
		}()
	}
	if c.cfg.SchedulePeriod > 0 {
		go c.scheduleLoop(ctx)
	}
	if c.cfg.Store != nil && c.cfg.CompactEvery > 0 {
		go c.compactLoop(ctx)
	}
	if len(c.cfg.Maintenance) > 0 {
		go c.maintenanceLoop(ctx)
	}
	if c.gate != nil {
		go c.coalesceLoop(ctx)
	}
	defer c.drainSessions()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		conn := wire.New(nc)
		// Sessions are pipelined (batch submits, withdraw bursts,
		// status polls), so replies coalesce into one flush per burst.
		// Enabled here, before the conn is registered for teardown:
		// EnableCoalescing must not race a drainSessions Close.
		conn.EnableCoalescing()
		c.sessMu.Lock()
		c.conns[conn] = struct{}{}
		c.sessMu.Unlock()
		c.sessions.Add(1)
		go func() {
			defer c.sessions.Done()
			defer func() {
				c.sessMu.Lock()
				delete(c.conns, conn)
				c.sessMu.Unlock()
			}()
			c.handleConn(ctx, conn)
		}()
	}
}

// drainSessions runs at Serve teardown: it sheds every queued
// admission waiter, closes the live session connections (unblocking
// their reader goroutines), and waits for every in-flight request
// handler to finish. Shutdown therefore drains, never races.
func (c *Controller) drainSessions() {
	if c.gate != nil {
		c.gate.Close()
	}
	c.sessMu.Lock()
	for conn := range c.conns {
		conn.Close()
	}
	c.sessMu.Unlock()
	c.sessions.Wait()
}

func (c *Controller) scheduleLoop(ctx context.Context) {
	t := time.NewTicker(c.cfg.SchedulePeriod)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			// Non-urgent work yields to admission under pressure: a
			// deferred reschedule costs allocation freshness, a starved
			// request path costs clients. The next calm tick catches up.
			if c.gate != nil && c.gate.Overloaded() {
				mDeferredResched.Inc()
				c.logf("controller: reschedule deferred under overload")
				continue
			}
			if err := c.reschedule(); err != nil {
				c.logf("controller: reschedule: %v", err)
			}
		}
	}
}

func (c *Controller) compactLoop(ctx context.Context) {
	t := time.NewTicker(c.cfg.CompactEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := c.CompactStore(); err != nil {
				c.logf("controller: compact: %v", err)
			}
		}
	}
}

// CompactStore snapshots the controller's state into the store and
// trims the WAL. Mutations are held off for the duration so no acked
// record can fall between the snapshot and the trim.
func (c *Controller) CompactStore() error {
	if c.cfg.Store == nil {
		return fmt.Errorf("controller: no store configured")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &store.State{
		Demands:  c.demands,
		Current:  c.current,
		LinkDown: c.linkDown,
		Epoch:    c.epoch,
		NextID:   c.nextID,
	}
	before := c.cfg.Store.WALRecords()
	if err := c.cfg.Store.Compact(st); err != nil {
		return err
	}
	c.logf("controller: compacted store: %d WAL records folded into snapshot (%d demands)",
		before, len(c.demands))
	return nil
}

func (c *Controller) handleConn(ctx context.Context, conn *wire.Conn) {
	defer conn.Close()
	switch {
	case c.cfg.FrameTimeout > 0:
		conn.SetIdleTimeout(c.cfg.FrameTimeout)
	case c.cfg.FrameTimeout == 0:
		conn.SetIdleTimeout(30 * time.Second)
	}
	// Codec negotiation rides the peer's Hello unless operators
	// forced JSON.
	if c.cfg.ForceJSONWire {
		conn.LockCodec(wire.CodecJSON)
	}
	hello, err := conn.Recv()
	if err != nil {
		countRecvErr(err)
		return
	}
	if hello.Type != wire.TypeHello || hello.Hello == nil {
		conn.Send(&wire.Message{Type: wire.TypeError, Error: "expected hello"})
		return
	}
	switch hello.Hello.Role {
	case "broker":
		c.serveBroker(conn, hello.Hello.DC)
	case "client":
		c.serveClient(conn)
	default:
		conn.Send(&wire.Message{Type: wire.TypeError, Error: "unknown role " + hello.Hello.Role})
	}
}

func (c *Controller) serveBroker(conn *wire.Conn, dc string) {
	if _, ok := c.cfg.Net.NodeByName(dc); !ok {
		conn.Send(&wire.Message{Type: wire.TypeError, Error: "unknown DC " + dc})
		return
	}
	c.mu.Lock()
	c.brokers[dc] = conn
	// Late joiner gets the current allocation immediately.
	msg := c.allocMessageLocked(dc, c.current, false)
	c.mu.Unlock()
	conn.Send(msg)
	defer func() {
		c.mu.Lock()
		if c.brokers[dc] == conn {
			delete(c.brokers, dc)
		}
		c.mu.Unlock()
	}()
	for {
		m, err := conn.Recv()
		if err != nil {
			countRecvErr(err)
			return
		}
		switch m.Type {
		case wire.TypeLinkEvent:
			c.onLinkEvent(m.LinkEvent)
		case wire.TypeStats:
			// Monitoring input; logged only.
			c.logf("controller: stats from %s: %d tunnels", dc, len(m.Stats.Rates))
		case wire.TypePing:
			// Echoed Seq makes Ping/Pong a barrier: when the reply
			// arrives, every earlier message on this session — link
			// events included — has been processed.
			conn.Send(&wire.Message{Type: wire.TypePong, Seq: m.Seq})
		case wire.TypePong:
		default:
			c.logf("controller: broker %s sent %s", dc, m.Type)
		}
	}
}

func (c *Controller) serveClient(conn *wire.Conn) {
	client := ""
	if addr := conn.RemoteAddr(); addr != nil {
		client = addr.String()
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			countRecvErr(err)
			return
		}
		c.handleClientMsg(conn, client, m)
	}
}

// msgPriority maps a client message type to its admission class:
// withdrawals are never shed (dropping one leaks booked bandwidth),
// submissions cost a customer, status polls cost only observability.
func msgPriority(t wire.Type) overload.Priority {
	switch t {
	case wire.TypeWithdraw:
		return overload.PCritical
	case wire.TypeStatus:
		return overload.PStatus
	}
	return overload.PSubmit
}

// handleClientMsg runs one client request through the admission gate
// (when configured) and dispatches it. Every shed is answered with an
// explicit TypeRetryAfter frame carrying the backoff hint and reason.
func (c *Controller) handleClientMsg(conn *wire.Conn, client string, m *wire.Message) {
	if c.gate == nil {
		c.dispatchClient(conn, m)
		return
	}
	// Degraded status under pressure: answer from the last full reply
	// without competing for an execution slot. Correct-but-stale beats
	// shed — a poll never observes anything atomic anyway.
	if m.Type == wire.TypeStatus && c.gate.Overloaded() {
		if cached := c.cachedStatus(); cached != nil {
			mStatusSnapshot.Inc()
			conn.Send(&wire.Message{Type: wire.TypeStatusReply, Seq: m.Seq, Status: cached})
			return
		}
	}
	dec := c.gate.Acquire(client, msgPriority(m.Type), time.Duration(m.DeadlineMs)*time.Millisecond)
	if !dec.OK {
		conn.Send(&wire.Message{Type: wire.TypeRetryAfter, Seq: m.Seq,
			RetryAfter: &wire.RetryAfter{RetryAfterMs: dec.RetryAfterMs, Reason: dec.Reason}})
		return
	}
	// Under sustained overload, fresh single submits coalesce into a
	// shared AdmitBatch: one lock acquisition and one admission-work
	// unit amortize over the whole batch. Resubmissions (DemandID set)
	// stay on the direct path — only submit() detects duplicates.
	if m.Type == wire.TypeSubmit && m.Submit != nil && m.Submit.DemandID == 0 &&
		c.submitq != nil && c.gate.Overloaded() {
		select {
		case c.submitq <- pendingSubmit{conn: conn, seq: m.Seq, sub: m.Submit, start: time.Now()}:
			return // the coalescer answers and releases the slot
		default:
			// Coalescer saturated; fall through to the direct path.
		}
	}
	start := time.Now()
	c.dispatchClient(conn, m)
	c.gate.Release(time.Since(start))
}

// dispatchClient is the ungated request dispatch.
func (c *Controller) dispatchClient(conn *wire.Conn, m *wire.Message) {
	switch m.Type {
	case wire.TypeSubmit:
		// The reply carries the controller-assigned demand id;
		// clients correlate via Seq.
		c.stubWorkDelay()
		res := c.submit(m.Submit)
		conn.Send(&wire.Message{Type: wire.TypeAdmitResult, Seq: m.Seq, AdmitResult: res})
	case wire.TypeSubmitBatch:
		c.stubWorkDelay()
		res := c.submitBatch(m.SubmitBatch)
		conn.Send(&wire.Message{Type: wire.TypeAdmitBatchResult, Seq: m.Seq, AdmitBatchResult: res})
	case wire.TypeWithdraw:
		if err := c.withdraw(m.WithdrawID); err != nil {
			conn.Send(&wire.Message{Type: wire.TypeError, Seq: m.Seq, Error: err.Error()})
		} else {
			conn.Send(&wire.Message{Type: wire.TypePong, Seq: m.Seq})
		}
	case wire.TypeStatus:
		reply := c.status()
		c.setStatusCache(reply)
		conn.Send(&wire.Message{Type: wire.TypeStatusReply, Seq: m.Seq, Status: reply})
	default:
		conn.Send(&wire.Message{Type: wire.TypeError, Error: "unexpected " + string(m.Type)})
	}
}

// stubWorkDelay simulates admission cost for the load harness. It
// runs outside the controller lock so capacity scales with the
// concurrency ceiling, as real solver work would.
func (c *Controller) stubWorkDelay() {
	if c.cfg.StubWork > 0 {
		time.Sleep(c.cfg.StubWork)
	}
}

func (c *Controller) setStatusCache(r *wire.StatusReply) {
	c.statusMu.Lock()
	c.statusCache = r
	c.statusMu.Unlock()
}

func (c *Controller) cachedStatus() *wire.StatusReply {
	c.statusMu.Lock()
	defer c.statusMu.Unlock()
	return c.statusCache
}

// coalesceLoop is the submit coalescer: it greedily drains whatever
// fresh submissions are parked on submitq into one AdmitBatch call.
// Each item arrived holding a gate slot; the coalescer answers each
// submitter individually (index-aligned) and releases the slots with
// the amortized latency, which is what lets the AIMD ceiling see the
// improvement coalescing buys.
func (c *Controller) coalesceLoop(ctx context.Context) {
	const maxCoalesce = 64
	for {
		var first pendingSubmit
		select {
		case <-ctx.Done():
			c.drainSubmitQueue()
			return
		case first = <-c.submitq:
		}
		batch := []pendingSubmit{first}
		for len(batch) < maxCoalesce {
			grab := false
			select {
			case p := <-c.submitq:
				batch = append(batch, p)
				grab = true
			default:
			}
			if !grab {
				break
			}
		}
		c.runCoalesced(batch)
	}
}

// drainSubmitQueue answers every parked submission with an explicit
// retry-after at shutdown: a request that entered the gate is never
// silently dropped.
func (c *Controller) drainSubmitQueue() {
	for {
		select {
		case p := <-c.submitq:
			p.conn.Send(&wire.Message{Type: wire.TypeRetryAfter, Seq: p.seq,
				RetryAfter: &wire.RetryAfter{RetryAfterMs: 100, Reason: "shutdown"}})
			c.gate.Release(time.Since(p.start))
		default:
			return
		}
	}
}

func (c *Controller) runCoalesced(batch []pendingSubmit) {
	c.stubWorkDelay() // one work unit amortized over the whole batch
	subs := make([]wire.Submit, len(batch))
	for i, p := range batch {
		subs[i] = *p.sub
	}
	res := c.submitBatch(subs)
	if len(batch) > 1 {
		mSubmitCoalesced.Add(int64(len(batch) - 1))
	}
	for i, p := range batch {
		r := res[i]
		p.conn.Send(&wire.Message{Type: wire.TypeAdmitResult, Seq: p.seq, AdmitResult: &r})
		c.gate.Release(time.Since(p.start))
	}
}

// submit runs admission control for one demand (§3.2) and, when
// admitted, installs it and pushes updated allocations.
func (c *Controller) submit(s *wire.Submit) *wire.AdmitResult {
	if s == nil {
		return &wire.AdmitResult{Admitted: false, Method: "invalid"}
	}
	src, ok1 := c.cfg.Net.NodeByName(s.Src)
	dst, ok2 := c.cfg.Net.NodeByName(s.Dst)
	if !ok1 || !ok2 || src == dst || s.Bandwidth <= 0 {
		return &wire.AdmitResult{Admitted: false, Method: "invalid"}
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	// Idempotent resubmission: a client retrying after a controller
	// failover echoes the id it was assigned (DemandID 0 is the wire
	// sentinel for "unassigned"). If that demand is already on the
	// book with the same parameters, answer without double-admitting.
	if s.DemandID != 0 {
		if prev, ok := c.demands[s.DemandID]; ok && demandMatches(prev, src, dst, s) {
			return &wire.AdmitResult{Admitted: true, DemandID: prev.ID, Method: "duplicate"}
		}
	}

	id := c.allocateIDLocked()
	if id < 0 {
		return &wire.AdmitResult{Admitted: false, Method: "id-space-full"}
	}
	d := &demand.Demand{
		ID:     id,
		Pairs:  []demand.PairDemand{{Src: src, Dst: dst, Bandwidth: s.Bandwidth}},
		Target: s.Target, Charge: s.Charge, RefundFrac: s.RefundFrac,
	}
	if c.cfg.StubAdmission {
		if c.cfg.Store != nil {
			if err := c.appendDurable("admit", func() error { return c.cfg.Store.AppendAdmit(d, nil) }); err != nil {
				c.logf("controller: store admit %d: %v", id, err)
				return &wire.AdmitResult{Admitted: false, Method: "store-error"}
			}
		}
		c.demands[id] = d
		return &wire.AdmitResult{Admitted: true, DemandID: id, Method: "stub"}
	}
	in, active := c.inputLocked()
	res, err := bate.Admit(in, c.current, active, d, c.cfg.MaxFail)
	if err != nil {
		c.logf("controller: admit: %v", err)
		return &wire.AdmitResult{Admitted: false, Method: "error"}
	}
	out := &wire.AdmitResult{
		Admitted: res.Admitted,
		Method:   string(res.Method),
		DelayMs:  float64(res.Elapsed.Microseconds()) / 1000,
	}
	if !res.Admitted {
		return out
	}
	// Durability before the ack, fail closed with retry: the admit
	// record must be on stable storage before the client hears
	// "admitted"; if it cannot be made durable the admission is
	// refused, never acked on hope.
	if c.cfg.Store != nil {
		if err := c.appendDurable("admit", func() error { return c.cfg.Store.AppendAdmit(d, res.NewAlloc) }); err != nil {
			c.logf("controller: store admit %d: %v", id, err)
			return &wire.AdmitResult{Admitted: false, Method: "store-error"}
		}
	}
	out.DemandID = id
	c.demands[id] = d
	if res.NewAlloc != nil {
		c.current[id] = res.NewAlloc
	}
	c.pushAllLocked(false)
	return out
}

// demandMatches reports whether an existing single-pair demand is the
// same submission (used for idempotent retries).
func demandMatches(d *demand.Demand, src, dst topo.NodeID, s *wire.Submit) bool {
	return len(d.Pairs) == 1 &&
		d.Pairs[0].Src == src && d.Pairs[0].Dst == dst &&
		d.Pairs[0].Bandwidth == s.Bandwidth && d.Target == s.Target
}

// submitBatch admits several demands as one batch: candidates are
// speculated in parallel and committed with decisions identical to
// submitting them one at a time in order (see bate.AdmitBatch).
// Results are index-aligned with the request. Allocations are pushed
// to brokers once, after the whole batch.
func (c *Controller) submitBatch(subs []wire.Submit) []wire.AdmitResult {
	out := make([]wire.AdmitResult, len(subs))
	if len(subs) == 0 {
		return out
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	// Validate and assign ids up front; invalid entries get an answer
	// but never reach admission.
	batch := make([]*demand.Demand, 0, len(subs))
	slot := make([]int, 0, len(subs)) // batch index -> reply index
	taken := make(map[int]bool, len(subs))
	for i, s := range subs {
		src, ok1 := c.cfg.Net.NodeByName(s.Src)
		dst, ok2 := c.cfg.Net.NodeByName(s.Dst)
		if !ok1 || !ok2 || src == dst || s.Bandwidth <= 0 {
			out[i] = wire.AdmitResult{Admitted: false, Method: "invalid"}
			continue
		}
		id := c.allocateIDLocked()
		for id >= 0 && taken[id] {
			id = c.allocateIDLocked()
		}
		if id < 0 {
			out[i] = wire.AdmitResult{Admitted: false, Method: "id-space-full"}
			continue
		}
		taken[id] = true
		batch = append(batch, &demand.Demand{
			ID:     id,
			Pairs:  []demand.PairDemand{{Src: src, Dst: dst, Bandwidth: s.Bandwidth}},
			Target: s.Target, Charge: s.Charge, RefundFrac: s.RefundFrac,
		})
		slot = append(slot, i)
	}
	if len(batch) == 0 {
		return out
	}
	if c.cfg.StubAdmission {
		for bi, d := range batch {
			i := slot[bi]
			if c.cfg.Store != nil {
				d := d
				if err := c.appendDurable("admit", func() error { return c.cfg.Store.AppendAdmit(d, nil) }); err != nil {
					c.logf("controller: store admit %d: %v", d.ID, err)
					out[i] = wire.AdmitResult{Admitted: false, Method: "store-error"}
					continue
				}
			}
			c.demands[d.ID] = d
			out[i] = wire.AdmitResult{Admitted: true, DemandID: d.ID, Method: "stub"}
		}
		return out
	}
	in, active := c.inputLocked()
	br, err := bate.AdmitBatch(in, c.current, active, batch, bate.BatchOptions{MaxFail: c.cfg.MaxFail})
	if err != nil {
		c.logf("controller: admit batch: %v", err)
		for _, i := range slot {
			out[i] = wire.AdmitResult{Admitted: false, Method: "error"}
		}
		return out
	}
	admitted := 0
	for bi, dec := range br.Decisions {
		i := slot[bi]
		out[i] = wire.AdmitResult{
			Admitted: dec.Result.Admitted,
			Method:   string(dec.Result.Method),
			DelayMs:  float64(dec.Result.Elapsed.Microseconds()) / 1000,
		}
		if !dec.Result.Admitted {
			continue
		}
		d := dec.Demand
		if c.cfg.Store != nil {
			if err := c.appendDurable("admit", func() error { return c.cfg.Store.AppendAdmit(d, dec.Result.NewAlloc) }); err != nil {
				c.logf("controller: store admit %d: %v", d.ID, err)
				out[i] = wire.AdmitResult{Admitted: false, Method: "store-error"}
				continue
			}
		}
		out[i].DemandID = d.ID
		c.demands[d.ID] = d
		if dec.Result.NewAlloc != nil {
			c.current[d.ID] = dec.Result.NewAlloc
		}
		admitted++
	}
	c.logf("controller: batch of %d: %d admitted, %d speculative, %d serial fallback",
		len(batch), admitted, br.SpecReused, br.SerialFallbacks)
	c.pushAllLocked(false)
	return out
}

func (c *Controller) withdraw(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.demands[id]; !ok {
		return nil // unknown id: idempotent no-op
	}
	if c.cfg.Store != nil {
		if err := c.appendDurable("withdraw", func() error { return c.cfg.Store.AppendWithdraw(id) }); err != nil {
			c.logf("controller: store withdraw %d: %v", id, err)
			return fmt.Errorf("withdraw not durable: %v", err)
		}
	}
	delete(c.demands, id)
	delete(c.current, id)
	c.pushAllLocked(false)
	return nil
}

// allocateIDLocked finds a free 12-bit demand id. Id 0 is never
// assigned: it is the wire protocol's "unassigned" sentinel, which is
// what makes idempotent resubmission detectable.
func (c *Controller) allocateIDLocked() int {
	for tries := 0; tries < 1<<12; tries++ {
		id := c.nextID
		c.nextID = (c.nextID + 1) % (1 << 12)
		if id == 0 {
			continue
		}
		if _, used := c.demands[id]; !used {
			return id
		}
	}
	return -1
}

// inputLocked builds the alloc.Input over the admitted demands in a
// deterministic order.
func (c *Controller) inputLocked() (*alloc.Input, []*demand.Demand) {
	active := make([]*demand.Demand, 0, len(c.demands))
	for _, d := range c.demands {
		active = append(active, d)
	}
	sort.Slice(active, func(i, j int) bool { return active[i].ID < active[j].ID })
	in := &alloc.Input{Net: c.cfg.Net, Tunnels: c.cfg.Tunnels, Demands: active}
	if len(c.drained) > 0 {
		// Drained links are invisible capacity to every solver-backed
		// path — scheduling, admission, hardening, backups, recovery —
		// without being marked down: the link still forwards whatever
		// the pre-drain allocation put on it until the reschedule lands.
		in.Drained = make([]topo.LinkID, 0, len(c.drained))
		for id := range c.drained {
			in.Drained = append(in.Drained, id)
		}
		sort.Slice(in.Drained, func(i, j int) bool { return in.Drained[i] < in.Drained[j] })
	}
	return in, active
}

// linkByNames resolves a DC name pair to the link between them.
func (c *Controller) linkByNames(srcDC, dstDC string) (topo.Link, error) {
	src, ok1 := c.cfg.Net.NodeByName(srcDC)
	dst, ok2 := c.cfg.Net.NodeByName(dstDC)
	if !ok1 || !ok2 {
		return topo.Link{}, fmt.Errorf("controller: unknown DC pair %s-%s", srcDC, dstDC)
	}
	link, ok := c.cfg.Net.LinkBetween(src, dst)
	if !ok {
		return topo.Link{}, fmt.Errorf("controller: no link %s-%s", srcDC, dstDC)
	}
	return link, nil
}

// DrainLink marks the link between two DCs as drained for upcoming
// maintenance and reschedules so traffic moves off it while it is
// still up. An error means the link does not exist; a failed or gated
// reschedule keeps the drain marked (the next periodic round honors
// it) and is only logged — stale but feasible beats absent, same as
// the periodic loop. Idempotent.
func (c *Controller) DrainLink(srcDC, dstDC string) error {
	link, err := c.linkByNames(srcDC, dstDC)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.drained[link.ID] {
		c.mu.Unlock()
		return nil
	}
	c.drained[link.ID] = true
	c.mu.Unlock()
	mDrains.Inc()
	c.logf("controller: maintenance drain %s-%s: rescheduling traffic off the link", srcDC, dstDC)
	if err := c.reschedule(); err != nil {
		c.logf("controller: drain reschedule (allocation kept): %v", err)
	}
	return nil
}

// UndrainLink returns a drained link to service and reschedules so
// traffic can use it again. Idempotent; same error contract as
// DrainLink.
func (c *Controller) UndrainLink(srcDC, dstDC string) error {
	link, err := c.linkByNames(srcDC, dstDC)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if !c.drained[link.ID] {
		c.mu.Unlock()
		return nil
	}
	delete(c.drained, link.ID)
	c.mu.Unlock()
	mUndrains.Inc()
	c.logf("controller: maintenance complete %s-%s: link back in service", srcDC, dstDC)
	if err := c.reschedule(); err != nil {
		c.logf("controller: undrain reschedule (allocation kept): %v", err)
	}
	return nil
}

// DrainedLinks returns the currently drained link ids in ascending
// order (empty when nothing is drained).
func (c *Controller) DrainedLinks() []topo.LinkID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]topo.LinkID, 0, len(c.drained))
	for id := range c.drained {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// maintenanceLoop walks the configured windows by wall clock: each
// window contributes a drain transition at Start-Lead and an undrain
// at End. Transitions already in the past fire immediately (in
// order), so a controller started mid-window still drains.
func (c *Controller) maintenanceLoop(ctx context.Context) {
	type transition struct {
		at       time.Time
		src, dst string
		drain    bool
	}
	var ts []transition
	for _, m := range c.cfg.Maintenance {
		lead := m.Lead
		if lead <= 0 {
			lead = 30 * time.Second
		}
		if !m.End.After(m.Start) {
			c.logf("controller: maintenance window %s-%s has end <= start; skipped", m.SrcDC, m.DstDC)
			continue
		}
		ts = append(ts,
			transition{at: m.Start.Add(-lead), src: m.SrcDC, dst: m.DstDC, drain: true},
			transition{at: m.End, src: m.SrcDC, dst: m.DstDC, drain: false})
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].at.Before(ts[j].at) })
	for _, tr := range ts {
		if wait := time.Until(tr.at); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
		if ctx.Err() != nil {
			return
		}
		var err error
		if tr.drain {
			err = c.DrainLink(tr.src, tr.dst)
		} else {
			err = c.UndrainLink(tr.src, tr.dst)
		}
		if err != nil {
			c.logf("controller: maintenance %s-%s: %v", tr.src, tr.dst, err)
		}
	}
}

// Reschedule runs the periodic optimization (§3.3): the scheduling LP
// plus backup precomputation, then pushes to brokers.
func (c *Controller) Reschedule() error { return c.reschedule() }

func (c *Controller) reschedule() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, _ := c.inputLocked()
	if len(in.Demands) == 0 {
		c.current = alloc.Allocation{}
		c.backups = nil
		c.pushAllLocked(false)
		return nil
	}
	sopts := bate.ScheduleOptions{
		MaxFail: c.cfg.MaxFail, Gate: c.cfg.SolverGate, Partition: c.cfg.Partition,
	}
	if c.cfg.BatchLP {
		sopts.Engine = lp.EngineBatch
	}
	if c.cfg.SolverWatch != nil {
		sopts.Cancel = c.cfg.SolverWatch("schedule")
	}
	a, stats, err := c.scheduler.Schedule(in, sopts)
	if err != nil {
		// A gated or failed solve keeps the current allocation — stale
		// but feasible beats absent.
		return err
	}
	start := "cold"
	if stats.WarmStarted {
		start = "warm"
	}
	c.logf("controller: scheduled %d demands: %d vars, %d constraints, %d iterations (%s start) in %v (class cache %d hit/%d miss, %d workers)",
		len(in.Demands), stats.Variables, stats.Constraints, stats.Iterations, start, stats.Elapsed,
		stats.ClassCacheHits, stats.ClassCacheMisses, stats.PoolWorkers)
	if stats.Partitioned {
		c.logf("controller: partitioned round: %d regions, %d cut demands, gap bound %.4f",
			stats.Regions, stats.CutDemands, stats.GapBound)
	}
	if hardened, herr := bate.Harden(in, bate.ScheduleOptions{MaxFail: c.cfg.MaxFail}, a); herr == nil {
		a = hardened
	}
	if c.cfg.Store != nil {
		if err := c.appendDurable("schedule", func() error { return c.cfg.Store.AppendSchedule(a) }); err != nil {
			return fmt.Errorf("schedule not durable: %w", err)
		}
	}
	c.current = a
	budget := c.cfg.BackupBudget
	if budget <= 0 {
		budget = in.Net.NumLinks() * 4
	}
	c.backups, err = bate.PrecomputeBackups(in, c.cfg.BackupDepth, budget)
	if err != nil {
		return err
	}
	c.pushAllLocked(false)
	return nil
}

// onLinkEvent reacts to a broker's link report: a failure activates
// the precomputed backup allocation (§3.4); a repair restores the
// scheduled allocation.
func (c *Controller) onLinkEvent(ev *wire.LinkEvent) {
	if ev == nil {
		return
	}
	src, ok1 := c.cfg.Net.NodeByName(ev.SrcDC)
	dst, ok2 := c.cfg.Net.NodeByName(ev.DstDC)
	if !ok1 || !ok2 {
		return
	}
	link, ok := c.cfg.Net.LinkBetween(src, dst)
	if !ok {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Store != nil {
		// Best-effort with retry: link state is continuously re-reported
		// by brokers, so a failed append degrades recovery freshness,
		// not correctness.
		if err := c.appendDurable("link", func() error { return c.cfg.Store.AppendLink(ev.SrcDC, ev.DstDC, ev.Up) }); err != nil {
			c.logf("controller: store link event: %v", err)
		}
	}
	if ev.Up {
		delete(c.linkDown, link.ID)
		c.pushAllLocked(false)
		return
	}
	c.linkDown[link.ID] = true
	var down []topo.LinkID
	for id := range c.linkDown {
		down = append(down, id)
	}
	// Deadline-bounded recovery ladder: precomputed backup → budgeted
	// optimal → greedy floor. A recovery always lands within the
	// deadline; only its quality degrades.
	in, _ := c.inputLocked()
	rec, stage, err := bate.Recover(in, down, bate.RecoverOptions{
		Backups:  c.backups,
		Deadline: c.cfg.RecoveryDeadline,
		Gate:     c.cfg.SolverGate,
		Logf:     c.logf,
	})
	if err != nil {
		c.logf("controller: recovery: %v", err)
		return
	}
	c.logf("controller: recovered %d-link failure via %s stage in %v (profit %.1f)",
		len(down), stage, rec.Elapsed, rec.Profit)
	c.pushAllocationLocked(rec.Alloc, true)
}

// pushAllLocked pushes the scheduled allocation to every broker.
func (c *Controller) pushAllLocked(backup bool) {
	c.pushAllocationLocked(c.current, backup)
}

func (c *Controller) pushAllocationLocked(a alloc.Allocation, backup bool) {
	c.epoch++
	if c.cfg.Store != nil {
		if err := c.appendDurable("epoch", func() error { return c.cfg.Store.AppendEpoch(c.epoch) }); err != nil {
			c.logf("controller: store epoch: %v", err)
		}
	}
	for dc, conn := range c.brokers {
		msg := c.allocMessageLocked(dc, a, backup)
		if err := conn.Send(msg); err != nil {
			c.logf("controller: push to %s: %v", dc, err)
			// Slow-peer isolation: a broker whose bounded send queue
			// stayed full past the grace is evicted so it cannot pin
			// frame buffers or stall future pushes. Its reconnect loop
			// brings it back with a fresh session and the full current
			// allocation.
			if errors.Is(err, wire.ErrSendQueueFull) {
				delete(c.brokers, dc)
				mSlowBrokerEvict.Inc()
				c.logf("controller: evicted slow broker %s", dc)
				go conn.Close() // Close drains briefly; don't hold c.mu for it
			}
		}
	}
}

// allocMessageLocked builds the AllocUpdate for one broker: every
// tunnel allocation whose path traverses that DC.
func (c *Controller) allocMessageLocked(dc string, a alloc.Allocation, backup bool) *wire.Message {
	update := &wire.AllocUpdate{Epoch: c.epoch, Backup: backup}
	in, _ := c.inputLocked()
	for _, d := range in.Demands {
		rows, ok := a[d.ID]
		if !ok {
			continue
		}
		for pi := range d.Pairs {
			if pi >= len(rows) {
				continue
			}
			tunnels := in.TunnelsFor(d, pi)
			for ti, rate := range rows[pi] {
				if rate <= 0 {
					continue
				}
				label, err := wire.Label(d.ID, ti)
				if err != nil {
					continue
				}
				hops := hopNames(c.cfg.Net, tunnels[ti])
				if !contains(hops[:len(hops)-1], dc) {
					continue // this DC never forwards the tunnel
				}
				update.Tunnels = append(update.Tunnels, wire.TunnelAlloc{
					Label: label, Hops: hops, Rate: rate,
				})
			}
		}
	}
	return &wire.Message{Type: wire.TypeAllocUpdate, Alloc: update}
}

func hopNames(n *topo.Network, t routing.Tunnel) []string {
	nodes := t.Nodes(n)
	out := make([]string, len(nodes))
	for i, v := range nodes {
		out[i] = n.NodeName(v)
	}
	return out
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Snapshot returns the controller's admitted demand count and epoch,
// for tests and tooling.
func (c *Controller) Snapshot() (demands int, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.demands), c.epoch
}

// OverloadSnapshot returns the admission gate's counters; ok is false
// when overload control is disabled.
func (c *Controller) OverloadSnapshot() (overload.Counters, bool) {
	if c.gate == nil {
		return overload.Counters{}, false
	}
	return c.gate.Snapshot(), true
}

// status reports every admitted demand with its current availability
// estimate under the installed allocation.
func (c *Controller) status() *wire.StatusReply {
	c.mu.Lock()
	in, active := c.inputLocked()
	// Shallow-copy the allocation map: concurrent withdrawals delete
	// entries (the per-demand rows themselves are never mutated in
	// place), and the availability loop below runs unlocked.
	current := make(alloc.Allocation, len(c.current))
	for id, rows := range c.current {
		current[id] = rows
	}
	epoch := c.epoch
	c.mu.Unlock()
	reply := &wire.StatusReply{Epoch: epoch, Counters: metrics.Snapshot()}
	for _, d := range active {
		allocated := 0.0
		for pi := range d.Pairs {
			allocated += current.AllocatedFor(d, pi)
		}
		// A demand with no installed allocation has availability 0 by
		// definition; skip the scenario enumeration it would otherwise
		// pay for (status polls are hot under wire load).
		achieved := 0.0
		if allocated > 0 {
			var err error
			achieved, err = alloc.AchievedAvailability(in, current, d, c.cfg.MaxFail)
			if err != nil {
				achieved = 0
			}
		}
		reply.Demands = append(reply.Demands, wire.DemandStatus{
			DemandID:  d.ID,
			Src:       c.cfg.Net.NodeName(d.Pairs[0].Src),
			Dst:       c.cfg.Net.NodeName(d.Pairs[0].Dst),
			Bandwidth: d.TotalBandwidth(),
			Target:    d.Target,
			Achieved:  achieved,
			Allocated: allocated,
		})
	}
	return reply
}

// State persistence: the master controller can snapshot its admitted
// demands so a newly elected replica (see Elector) resumes with the
// same commitments and recomputes allocations from them.

// SaveState writes the admitted demand set as JSON.
func (c *Controller) SaveState(w io.Writer) error {
	c.mu.Lock()
	_, active := c.inputLocked()
	c.mu.Unlock()
	return demand.Save(w, c.cfg.Net, active)
}

// RestoreState replaces the controller's demand set with a snapshot
// and reschedules. Demand ids from the snapshot are preserved.
func (c *Controller) RestoreState(r io.Reader) error {
	demands, err := demand.Load(r, c.cfg.Net)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.demands = make(map[int]*demand.Demand, len(demands))
	maxID := -1
	for _, d := range demands {
		if _, dup := c.demands[d.ID]; dup {
			c.mu.Unlock()
			return fmt.Errorf("controller: duplicate demand id %d in snapshot", d.ID)
		}
		c.demands[d.ID] = d
		if d.ID > maxID {
			maxID = d.ID
		}
	}
	c.nextID = (maxID + 1) % (1 << 12)
	c.current = alloc.Allocation{}
	c.mu.Unlock()
	return c.reschedule()
}
