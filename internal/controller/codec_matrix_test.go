package controller

import (
	"context"
	"net"
	"testing"

	"bate/internal/routing"
	"bate/internal/topo"
	"bate/internal/wire"
)

// startCodecSystem is startSystem without brokers, with an optional
// ForceJSONWire controller (a stand-in for an old controller build
// that predates the binary codec).
func startCodecSystem(t *testing.T, forceJSON bool) string {
	t.Helper()
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	ctrl, err := New(Config{Net: n, Tunnels: ts, MaxFail: 2, Logf: silent, ForceJSONWire: forceJSON})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go ctrl.Serve(ctx, ln)
	return ln.Addr().String()
}

// dialCodec connects a client that negotiates (or, for CodecJSON,
// sticks with) the given codec.
func dialCodec(t *testing.T, addr string, codec wire.Codec) *wire.Conn {
	t.Helper()
	conn, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	err = conn.Send(&wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Role: "client", Codec: codec}})
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestCodecMatrixIdenticalDecisions runs the same submit/withdraw
// sequence through every client-codec × controller-codec pairing — a
// mixed-version deployment where either side may still speak only
// JSON — and asserts the admission decisions are identical, while the
// reply codec on each connection matches what that pairing should
// negotiate.
func TestCodecMatrixIdenticalDecisions(t *testing.T) {
	type cell struct {
		name      string
		client    wire.Codec
		forceJSON bool
		// wantReply is the codec the controller's replies arrive in;
		// the client's own transmit codec stays whatever it negotiated
		// (the controller sniffs per frame, so a binary client still
		// interoperates with a JSON-only controller).
		wantReply wire.Codec
	}
	matrix := []cell{
		{"binary-client/binary-controller", wire.CodecBinary, false, wire.CodecBinary},
		{"json-client/binary-controller", wire.CodecJSON, false, wire.CodecJSON},
		{"binary-client/json-controller", wire.CodecBinary, true, wire.CodecJSON},
		{"json-client/json-controller", wire.CodecJSON, true, wire.CodecJSON},
	}

	type decision struct {
		admitted bool
		method   string
	}
	var baseline []decision
	for i, c := range matrix {
		t.Run(c.name, func(t *testing.T) {
			addr := startCodecSystem(t, c.forceJSON)
			conn := dialCodec(t, addr, c.client)

			var got []decision
			// Two distinct demands, then an oversubscribed one: the mix
			// exercises both admit and reject paths.
			reqs := []*wire.Submit{
				{Src: "A", Dst: "B", Bandwidth: 10, Target: 0.99, Charge: 10, RefundFrac: 0.1},
				{Src: "B", Dst: "C", Bandwidth: 20, Target: 0.999, Charge: 20, RefundFrac: 0.1},
				{Src: "A", Dst: "C", Bandwidth: 1e9, Target: 0.99, Charge: 1, RefundFrac: 0.1},
			}
			for _, s := range reqs {
				if err := conn.Send(&wire.Message{Type: wire.TypeSubmit, Submit: s}); err != nil {
					t.Fatal(err)
				}
				reply, err := conn.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if reply.Type != wire.TypeAdmitResult || reply.AdmitResult == nil {
					t.Fatalf("reply %+v", reply)
				}
				got = append(got, decision{reply.AdmitResult.Admitted, reply.AdmitResult.Method})
			}
			if rc := conn.RecvCodec(); rc != c.wantReply {
				t.Fatalf("reply codec = %v, want %v", rc, c.wantReply)
			}
			if sc := conn.SendCodec(); sc != c.client {
				t.Fatalf("send codec = %v, want %v", sc, c.client)
			}
			if i == 0 {
				baseline = got
				return
			}
			if len(got) != len(baseline) {
				t.Fatalf("decisions %v, baseline %v", got, baseline)
			}
			for j := range got {
				if got[j] != baseline[j] {
					t.Fatalf("decision[%d] = %+v, baseline %+v (codec must not change admission)", j, got[j], baseline[j])
				}
			}
		})
	}
}

// TestForcedJSONControllerNeverSendsBinary pins the compat guarantee
// directly: a ForceJSONWire controller answers a binary-requesting
// hello in JSON, so a legacy JSON-only peer on the same deployment
// can always parse what the controller emits.
func TestForcedJSONControllerNeverSendsBinary(t *testing.T) {
	addr := startCodecSystem(t, true)
	conn := dialCodec(t, addr, wire.CodecBinary)
	if err := conn.Send(&wire.Message{Type: wire.TypeStatus}); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypeStatusReply {
		t.Fatalf("reply %+v", reply)
	}
	if rc := conn.RecvCodec(); rc != wire.CodecJSON {
		t.Fatalf("forced-JSON controller replied in %v", rc)
	}
}
