package controller

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"bate/internal/paxos"
	"bate/internal/wire"
)

// Elector elects a master among controller replicas with single-decree
// Paxos over TCP (§4: "controller failures can be remedied by using
// multiple replications, where the master controller is elected by the
// Paxos algorithm"). Each replica advertises its own controller
// address as the proposed value; the decided value is the master every
// replica agrees on.
type Elector struct {
	id        paxos.NodeID
	peers     map[paxos.NodeID]string // election addresses, including self
	advertise string                  // this replica's controller address

	dialTimeout time.Duration
	sendTimeout time.Duration
	dialer      func(addr string, timeout time.Duration) (net.Conn, error)

	mu       sync.Mutex
	node     *paxos.Node
	conns    map[paxos.NodeID]*wire.Conn
	nextDial map[paxos.NodeID]time.Time     // negative cache: no redial before this
	dialWait map[paxos.NodeID]time.Duration // current per-peer backoff
	logf     func(string, ...interface{})
}

// NewElector creates an election participant. peers maps every
// replica id (including id itself) to its election listen address;
// advertise is the controller address proposed as master.
func NewElector(id paxos.NodeID, peers map[paxos.NodeID]string, advertise string, logf func(string, ...interface{})) (*Elector, error) {
	if _, ok := peers[id]; !ok {
		return nil, fmt.Errorf("controller: elector %d missing from peer map", id)
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	ids := make([]paxos.NodeID, 0, len(peers))
	for pid := range peers {
		ids = append(ids, pid)
	}
	return &Elector{
		id:          id,
		peers:       peers,
		advertise:   advertise,
		dialTimeout: time.Second,
		sendTimeout: time.Second,
		node:        paxos.NewNode(id, ids),
		conns:       make(map[paxos.NodeID]*wire.Conn),
		nextDial:    make(map[paxos.NodeID]time.Time),
		dialWait:    make(map[paxos.NodeID]time.Duration),
		logf:        logf,
	}, nil
}

// SetDialTimeout bounds each peer dial attempt (default 1s). Set
// before Run.
func (e *Elector) SetDialTimeout(d time.Duration) {
	if d > 0 {
		e.dialTimeout = d
	}
}

// SetSendTimeout bounds each peer send (default 1s); a peer that
// stops draining its socket costs one timeout, not a wedged proposer.
// Set before Run.
func (e *Elector) SetSendTimeout(d time.Duration) {
	if d > 0 {
		e.sendTimeout = d
	}
}

// SetDialer replaces the TCP dialer, e.g. with a chaos-wrapped one.
// Set before Run.
func (e *Elector) SetDialer(dial func(addr string, timeout time.Duration) (net.Conn, error)) {
	e.dialer = dial
}

// Leader returns the elected master's controller address once decided.
func (e *Elector) Leader() (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.node.Chosen()
	return string(v), ok
}

// IsLeader reports whether this replica won the election.
func (e *Elector) IsLeader() bool {
	l, ok := e.Leader()
	return ok && l == e.advertise
}

// Run serves election traffic on ln and proposes this replica as
// master (with randomized retry backoff) until a decision is reached
// or ctx is cancelled. It returns the decided master address.
func (e *Elector) Run(ctx context.Context, ln net.Listener) (string, error) {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	go e.acceptLoop(ctx, ln)

	rng := rand.New(rand.NewSource(int64(e.id)*2654435761 + 1))
	backoff := 20 * time.Millisecond
	for {
		if leader, ok := e.Leader(); ok {
			return leader, nil
		}
		e.mu.Lock()
		out := e.node.Propose(paxos.Value(e.advertise))
		e.mu.Unlock()
		e.sendAll(out)

		// Wait for the decision or retry with jittered backoff (two
		// dueling proposers must eventually desynchronize).
		deadline := time.Now().Add(backoff + time.Duration(rng.Intn(40))*time.Millisecond)
		for time.Now().Before(deadline) {
			if leader, ok := e.Leader(); ok {
				return leader, nil
			}
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(5 * time.Millisecond):
			}
		}
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

func (e *Elector) acceptLoop(ctx context.Context, ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			conn := wire.New(nc)
			defer conn.Close()
			for {
				m, err := conn.Recv()
				if err != nil {
					return
				}
				if m.Type != wire.TypePaxos || m.Paxos == nil {
					continue
				}
				e.handle(fromWire(m.Paxos))
			}
		}()
	}
}

func (e *Elector) handle(m paxos.Message) {
	e.mu.Lock()
	out := e.node.Handle(m)
	e.mu.Unlock()
	e.sendAll(out)
}

// sendAll delivers protocol messages, dialing peers lazily and
// dropping messages to unreachable peers (Paxos tolerates loss).
func (e *Elector) sendAll(msgs []paxos.Message) {
	for _, m := range msgs {
		if m.To == e.id {
			e.handle(m) // self-delivery without a socket
			continue
		}
		conn := e.conn(m.To)
		if conn == nil {
			continue
		}
		// A write deadline keeps a wedged or partitioned peer from
		// blocking the proposer; Paxos tolerates the lost message.
		conn.SetWriteDeadline(time.Now().Add(e.sendTimeout))
		err := conn.Send(&wire.Message{Type: wire.TypePaxos, Paxos: toWire(m)})
		conn.SetWriteDeadline(time.Time{})
		if err != nil {
			e.logf("elector %d: send to %d: %v", e.id, m.To, err)
			e.dropConn(m.To, conn)
		}
	}
}

func (e *Elector) conn(to paxos.NodeID) *wire.Conn {
	e.mu.Lock()
	c := e.conns[to]
	addr := e.peers[to]
	wait, until := e.dialWait[to], e.nextDial[to]
	e.mu.Unlock()
	if c != nil {
		return c
	}
	// Negative cache with jittered exponential backoff: a dead or
	// partitioned peer costs one dial timeout per backoff window, not
	// one per message.
	if time.Now().Before(until) {
		return nil
	}
	dial := e.dialer
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(addr, e.dialTimeout)
	if err != nil {
		if wait <= 0 {
			wait = 50 * time.Millisecond
		} else if wait < 2*time.Second {
			wait *= 2
		}
		e.mu.Lock()
		e.dialWait[to] = wait
		e.nextDial[to] = time.Now().Add(wait/2 + time.Duration(rand.Int63n(int64(wait/2+1))))
		e.mu.Unlock()
		return nil
	}
	c = wire.New(nc)
	e.mu.Lock()
	delete(e.dialWait, to)
	delete(e.nextDial, to)
	if existing := e.conns[to]; existing != nil {
		e.mu.Unlock()
		c.Close()
		return existing
	}
	e.conns[to] = c
	e.mu.Unlock()
	return c
}

func (e *Elector) dropConn(to paxos.NodeID, c *wire.Conn) {
	e.mu.Lock()
	if e.conns[to] == c {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	c.Close()
}

func toWire(m paxos.Message) *wire.PaxosMsg {
	return &wire.PaxosMsg{
		Kind: int8(m.Kind), From: int(m.From), To: int(m.To),
		BallotRound: m.Ballot.Round, BallotNode: int(m.Ballot.Node),
		AccBallotRound: m.AcceptedBallot.Round, AccBallotNode: int(m.AcceptedBallot.Node),
		AccValue: string(m.AcceptedValue), HasAccepted: m.HasAccepted,
		Value: string(m.Value),
	}
}

func fromWire(w *wire.PaxosMsg) paxos.Message {
	return paxos.Message{
		Kind: paxos.Kind(w.Kind), From: paxos.NodeID(w.From), To: paxos.NodeID(w.To),
		Ballot:         paxos.Ballot{Round: w.BallotRound, Node: paxos.NodeID(w.BallotNode)},
		AcceptedBallot: paxos.Ballot{Round: w.AccBallotRound, Node: paxos.NodeID(w.AccBallotNode)},
		AcceptedValue:  paxos.Value(w.AccValue), HasAccepted: w.HasAccepted,
		Value: paxos.Value(w.Value),
	}
}
