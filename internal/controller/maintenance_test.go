package controller

import (
	"context"
	"net"
	"testing"
	"time"

	"bate/internal/routing"
	"bate/internal/topo"
)

// Draining a link must move all allocated traffic off it while the
// link is still up, and undraining must return it to service.
func TestDrainLinkReroutes(t *testing.T) {
	ctrl, _, client := startSystem(t)

	// DC1-DC4 is the direct L4 link; DC1-DC2-DC3-DC4 and
	// DC1-DC6-DC5-DC4 remain as detours with ample capacity.
	res := submit(t, client, "DC1", "DC4", 300, 0.99)
	if !res.Admitted {
		t.Fatalf("admission refused: %+v", res)
	}

	if err := ctrl.DrainLink("DC1", "DC9"); err == nil {
		t.Fatal("unknown DC accepted")
	}
	if err := ctrl.DrainLink("DC2", "DC4"); err == nil {
		t.Fatal("nonexistent link accepted")
	}

	if err := ctrl.DrainLink("DC1", "DC4"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.DrainLink("DC1", "DC4"); err != nil {
		t.Fatalf("drain not idempotent: %v", err)
	}
	n := ctrl.cfg.Net
	src, _ := n.NodeByName("DC1")
	dst, _ := n.NodeByName("DC4")
	link, _ := n.LinkBetween(src, dst)
	if got := ctrl.DrainedLinks(); len(got) != 1 || got[0] != link.ID {
		t.Fatalf("drained set %v, want [%d]", got, link.ID)
	}

	// The synchronous reschedule has already landed: the demand keeps
	// its bandwidth, but no tunnel crossing the drained link carries
	// any of it.
	ctrl.mu.Lock()
	in, active := ctrl.inputLocked()
	total := 0.0
	for _, d := range active {
		rows := ctrl.current[d.ID]
		for pi := range d.Pairs {
			tunnels := in.TunnelsFor(d, pi)
			for ti, rate := range rows[pi] {
				total += rate
				if rate > 0 && tunnels[ti].Uses(link.ID) {
					ctrl.mu.Unlock()
					t.Fatalf("drained link still carries %.1f Mbps on tunnel %d", rate, ti)
				}
			}
		}
	}
	ctrl.mu.Unlock()
	if total < 300*0.999 {
		t.Fatalf("demand lost bandwidth under drain: %.1f Mbps", total)
	}

	if err := ctrl.UndrainLink("DC1", "DC4"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.UndrainLink("DC1", "DC4"); err != nil {
		t.Fatalf("undrain not idempotent: %v", err)
	}
	if got := ctrl.DrainedLinks(); len(got) != 0 {
		t.Fatalf("drained set %v after undrain", got)
	}
}

// A configured maintenance window must drain by wall clock (Lead
// before Start) and undrain at End without any operator call.
func TestMaintenanceWindowLoop(t *testing.T) {
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	now := time.Now()
	ctrl, err := New(Config{
		Net: n, Tunnels: ts, MaxFail: 2, Logf: silent,
		Maintenance: []MaintenanceWindow{{
			SrcDC: "DC1", DstDC: "DC4",
			Start: now.Add(100 * time.Millisecond),
			End:   now.Add(400 * time.Millisecond),
			Lead:  80 * time.Millisecond,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go ctrl.Serve(ctx, ln)

	waitFor(t, "maintenance drain", func() bool { return len(ctrl.DrainedLinks()) == 1 })
	waitFor(t, "maintenance undrain", func() bool { return len(ctrl.DrainedLinks()) == 0 })
}
