package controller

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"bate/internal/overload"
	"bate/internal/routing"
	"bate/internal/topo"
	"bate/internal/wire"
)

// startOverloaded launches a controller with a tight admission gate
// and stub admission, returning its address.
func startOverloaded(t *testing.T, opts overload.Options, stubWork time.Duration) (*Controller, string, context.CancelFunc) {
	t.Helper()
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	ctrl, err := New(Config{
		Net: n, Tunnels: ts, MaxFail: 2, Logf: silent,
		StubAdmission: true, StubWork: stubWork, Overload: &opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go ctrl.Serve(ctx, ln)
	return ctrl, ln.Addr().String(), cancel
}

func dialClient(t *testing.T, addr string) *wire.Conn {
	t.Helper()
	conn, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := conn.Send(&wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Role: "client", Codec: wire.CodecBinary}}); err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestOverloadShedsWithRetryAfter floods a one-slot controller and
// checks that every request is answered — admitted or an explicit
// TypeRetryAfter — and that shed replies carry a positive hint.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	ctrl, addr, _ := startOverloaded(t, overload.Options{
		MaxInflight: 1, MaxCeiling: 1, QueueBound: 1,
		QueueTimeout: 10 * time.Millisecond, LatencyTarget: -1,
	}, 20*time.Millisecond)

	const clients, perClient = 4, 8
	var (
		mu                    sync.Mutex
		admitted, shed, other int
		sawHint               bool
		unanswered            int
		wg                    sync.WaitGroup
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := dialClient(t, addr)
			for j := 0; j < perClient; j++ {
				if err := conn.Send(&wire.Message{Type: wire.TypeSubmit, Seq: uint64(j + 1),
					Submit: &wire.Submit{Src: "DC1", Dst: "DC2", Bandwidth: 1, Target: 0.9}}); err != nil {
					return
				}
				reply, err := conn.Recv()
				mu.Lock()
				switch {
				case err != nil:
					unanswered++
				case reply.Type == wire.TypeAdmitResult:
					admitted++
				case reply.Type == wire.TypeRetryAfter:
					shed++
					if reply.RetryAfter != nil && reply.RetryAfter.RetryAfterMs > 0 {
						sawHint = true
					}
					if reply.Seq != uint64(j+1) {
						t.Errorf("retry-after Seq = %d, want %d", reply.Seq, j+1)
					}
				default:
					other++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if unanswered != 0 || other != 0 {
		t.Fatalf("unanswered=%d other=%d, want 0/0", unanswered, other)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if shed == 0 {
		t.Fatal("one-slot gate under 4x flood shed nothing")
	}
	if !sawHint {
		t.Fatal("no shed reply carried a retry-after hint")
	}
	snap, ok := ctrl.OverloadSnapshot()
	if !ok {
		t.Fatal("overload snapshot unavailable despite configured gate")
	}
	if snap.ShedByPrio[overload.PCritical] != 0 {
		t.Fatalf("critical sheds = %d, want 0", snap.ShedByPrio[overload.PCritical])
	}
}

// TestWithdrawNeverShed verifies the priority floor end to end:
// withdrawals queue through the same flood that sheds submits.
func TestWithdrawNeverShed(t *testing.T) {
	_, addr, _ := startOverloaded(t, overload.Options{
		MaxInflight: 1, MaxCeiling: 1, QueueBound: 1,
		QueueTimeout: 10 * time.Millisecond, LatencyTarget: -1,
	}, 5*time.Millisecond)
	// Background flood keeps the slot busy.
	stop := make(chan struct{})
	var floodWG sync.WaitGroup
	for i := 0; i < 3; i++ {
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			conn := dialClient(t, addr)
			for seq := uint64(1); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := conn.Send(&wire.Message{Type: wire.TypeSubmit, Seq: seq,
					Submit: &wire.Submit{Src: "DC1", Dst: "DC2", Bandwidth: 1, Target: 0.9}}); err != nil {
					return
				}
				if _, err := conn.Recv(); err != nil {
					return
				}
			}
		}()
	}
	defer func() { close(stop); floodWG.Wait() }()

	conn := dialClient(t, addr)
	for i := 0; i < 10; i++ {
		if err := conn.Send(&wire.Message{Type: wire.TypeWithdraw, Seq: uint64(100 + i), WithdrawID: 1}); err != nil {
			t.Fatal(err)
		}
		reply, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if reply.Type == wire.TypeRetryAfter {
			t.Fatalf("withdraw %d was shed: %+v", i, reply.RetryAfter)
		}
	}
}

// TestServeDrainsSessionsOnShutdown: cancelling the serve context
// must close live sessions and return only after in-flight handlers
// finish — the handleConn WaitGroup satellite.
func TestServeDrainsSessionsOnShutdown(t *testing.T) {
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	ctrl, err := New(Config{Net: n, Tunnels: ts, MaxFail: 2, Logf: silent, StubAdmission: true})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- ctrl.Serve(ctx, ln) }()

	conn := dialClient(t, ln.Addr().String())
	if _, err := submitOne(conn, 1); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain sessions within 5s of cancel")
	}
	// The session was force-closed by the drain: the client sees EOF
	// rather than hanging forever.
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Recv(); err == nil {
		t.Fatal("drained session still delivered frames")
	}
}

func submitOne(conn *wire.Conn, seq uint64) (*wire.Message, error) {
	if err := conn.Send(&wire.Message{Type: wire.TypeSubmit, Seq: seq,
		Submit: &wire.Submit{Src: "DC1", Dst: "DC2", Bandwidth: 1, Target: 0.9}}); err != nil {
		return nil, err
	}
	return conn.Recv()
}

// TestSlowBrokerEvicted: a broker whose send queue wedges is removed
// from the push set (white-box — the wedge is produced directly).
func TestSlowBrokerEvicted(t *testing.T) {
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	ctrl, err := New(Config{Net: n, Tunnels: ts, MaxFail: 2, Logf: silent})
	if err != nil {
		t.Fatal(err)
	}
	// Wedge a coalescing conn: nobody reads the pipe, so the writer
	// blocks on flush and the bounded queue fills.
	a, b := net.Pipe()
	defer b.Close()
	wc := wire.New(a)
	wc.SetCodec(wire.CodecBinary)
	wc.SetEnqueueGrace(time.Millisecond)
	wc.EnableCoalescing()
	// Frames larger than the bufio buffer force the writer to block on
	// the very first flush instead of absorbing the burst.
	pad := make([]byte, 8192)
	for i := range pad {
		pad[i] = 'x'
	}
	var wedged bool
	for i := 0; i < wire.SendQueueDepth+50; i++ {
		if err := wc.Send(&wire.Message{Type: wire.TypeError, Seq: uint64(i), Error: string(pad)}); err != nil {
			if !errors.Is(err, wire.ErrSendQueueFull) {
				t.Fatalf("wedge err = %v", err)
			}
			wedged = true
			break
		}
	}
	if !wedged {
		t.Fatal("could not wedge the broker conn")
	}
	ctrl.mu.Lock()
	ctrl.brokers["DC1"] = wc
	ctrl.pushAllLocked(false)
	_, still := ctrl.brokers["DC1"]
	ctrl.mu.Unlock()
	if still {
		t.Fatal("slow broker survived a failed push")
	}
}

// TestStatusFromSnapshotUnderOverload: with the gate saturated, a
// status poll is served from the cached reply without a slot.
func TestStatusFromSnapshotUnderOverload(t *testing.T) {
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	ctrl, err := New(Config{
		Net: n, Tunnels: ts, MaxFail: 2, Logf: silent, StubAdmission: true,
		Overload: &overload.Options{MaxInflight: 1, MaxCeiling: 1, LatencyTarget: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cached := &wire.StatusReply{Epoch: 777}
	ctrl.setStatusCache(cached)
	// Saturate the gate: one acquired slot = at the ceiling.
	if d := ctrl.gate.Acquire("x", overload.PSubmit, 0); !d.OK {
		t.Fatalf("saturating acquire shed: %+v", d)
	}
	defer ctrl.gate.Release(time.Millisecond)

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	server, client := wire.New(a), wire.New(b)
	go ctrl.handleClientMsg(server, "c", &wire.Message{Type: wire.TypeStatus, Seq: 9})
	client.SetDeadline(time.Now().Add(5 * time.Second))
	reply, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypeStatusReply || reply.Status == nil || reply.Status.Epoch != 777 {
		t.Fatalf("reply %+v, want cached epoch 777", reply)
	}
}
