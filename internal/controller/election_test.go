package controller

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"bate/internal/paxos"
)

// startElectors launches n electors on localhost and returns them with
// their Run result channels.
func startElectors(t *testing.T, n int) ([]*Elector, chan string) {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make(map[paxos.NodeID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		peers[paxos.NodeID(i+1)] = ln.Addr().String()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)

	electors := make([]*Elector, n)
	results := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := paxos.NodeID(i + 1)
		e, err := NewElector(id, peers, fmt.Sprintf("controller-%d:7001", id), nil)
		if err != nil {
			t.Fatal(err)
		}
		electors[i] = e
		wg.Add(1)
		go func(e *Elector, ln net.Listener) {
			defer wg.Done()
			leader, err := e.Run(ctx, ln)
			if err != nil {
				t.Errorf("elector: %v", err)
				return
			}
			results <- leader
		}(e, listeners[i])
	}
	t.Cleanup(wg.Wait)
	return electors, results
}

func TestElectionThreeReplicas(t *testing.T) {
	electors, results := startElectors(t, 3)
	var leaders []string
	for i := 0; i < 3; i++ {
		select {
		case l := <-results:
			leaders = append(leaders, l)
		case <-time.After(15 * time.Second):
			t.Fatal("election did not converge")
		}
	}
	for _, l := range leaders[1:] {
		if l != leaders[0] {
			t.Fatalf("split brain: %v", leaders)
		}
	}
	// Exactly one replica believes it is the leader.
	count := 0
	for _, e := range electors {
		if e.IsLeader() {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d replicas claim leadership", count)
	}
}

func TestElectionSingleReplica(t *testing.T) {
	_, results := startElectors(t, 1)
	select {
	case l := <-results:
		if l != "controller-1:7001" {
			t.Fatalf("leader = %q", l)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("solo election did not converge")
	}
}

func TestElectionFiveReplicas(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica election in -short mode")
	}
	_, results := startElectors(t, 5)
	first := ""
	for i := 0; i < 5; i++ {
		select {
		case l := <-results:
			if first == "" {
				first = l
			} else if l != first {
				t.Fatalf("split brain: %q vs %q", first, l)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("election did not converge")
		}
	}
}

func TestNewElectorValidation(t *testing.T) {
	if _, err := NewElector(1, map[paxos.NodeID]string{2: "x"}, "a", nil); err == nil {
		t.Fatal("expected missing-self error")
	}
}
