package controller

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"bate/internal/broker"
	"bate/internal/routing"
	"bate/internal/topo"
	"bate/internal/wire"
)

func silent(string, ...interface{}) {}

// lastAddr records the most recent startSystem listener address so
// tests can open additional client connections.
var lastAddr string

// startSystem launches a controller plus brokers for every DC over
// localhost TCP and returns a connected client conn.
func startSystem(t *testing.T) (*Controller, map[string]*broker.Broker, *wire.Conn) {
	t.Helper()
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	ctrl, err := New(Config{Net: n, Tunnels: ts, MaxFail: 2, Logf: silent})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go ctrl.Serve(ctx, ln)
	lastAddr = ln.Addr().String()

	brokers := make(map[string]*broker.Broker)
	for i := 0; i < n.NumNodes(); i++ {
		dc := n.NodeName(topo.NodeID(i))
		b := broker.New(dc, ln.Addr().String())
		b.SetLogf(silent)
		brokers[dc] = b
		go b.Run(ctx)
	}

	client, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	if err := client.Send(&wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Role: "client"}}); err != nil {
		t.Fatal(err)
	}
	return ctrl, brokers, client
}

func submit(t *testing.T, client *wire.Conn, src, dst string, bw, target float64) *wire.AdmitResult {
	t.Helper()
	err := client.Send(&wire.Message{Type: wire.TypeSubmit, Submit: &wire.Submit{
		Src: src, Dst: dst, Bandwidth: bw, Target: target, Charge: bw, RefundFrac: 0.1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	reply, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypeAdmitResult || reply.AdmitResult == nil {
		t.Fatalf("reply %+v", reply)
	}
	return reply.AdmitResult
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestEndToEndAdmissionAndPush(t *testing.T) {
	ctrl, brokers, client := startSystem(t)

	res := submit(t, client, "DC1", "DC3", 400, 0.99)
	if !res.Admitted {
		t.Fatalf("admission refused: %+v", res)
	}
	if res.DelayMs <= 0 {
		t.Fatal("no admission delay recorded")
	}
	nd, _ := ctrl.Snapshot()
	if nd != 1 {
		t.Fatalf("controller has %d demands", nd)
	}
	// DC1 (the source) must install at least one forwarding entry.
	waitFor(t, "DC1 forwarding entries", func() bool {
		return brokers["DC1"].NumEntries() > 0
	})
	// Every entry enforces a positive rate toward a real next hop.
	label, _ := wire.Label(res.DemandID, 0)
	_ = label
}

func TestEndToEndRejection(t *testing.T) {
	_, _, client := startSystem(t)
	res := submit(t, client, "DC1", "DC3", 99999, 0.99)
	if res.Admitted {
		t.Fatal("100 Gbps must be rejected on 1 Gbps links")
	}
	if res.Method != "rejected" {
		t.Fatalf("method = %q", res.Method)
	}
}

func TestEndToEndInvalidSubmissions(t *testing.T) {
	_, _, client := startSystem(t)
	cases := []*wire.Submit{
		{Src: "nope", Dst: "DC2", Bandwidth: 10},
		{Src: "DC1", Dst: "DC1", Bandwidth: 10},
		{Src: "DC1", Dst: "DC2", Bandwidth: -5},
	}
	for _, s := range cases {
		client.Send(&wire.Message{Type: wire.TypeSubmit, Submit: s})
		reply, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if reply.AdmitResult == nil || reply.AdmitResult.Admitted {
			t.Fatalf("invalid submit accepted: %+v", reply)
		}
	}
}

func TestWithdrawFreesCapacity(t *testing.T) {
	ctrl, _, client := startSystem(t)
	// Saturate DC1->DC3 capacity, withdraw, then admit again.
	r1 := submit(t, client, "DC1", "DC3", 900, 0.95)
	if !r1.Admitted {
		t.Fatal("first demand refused")
	}
	var ids []int
	ids = append(ids, r1.DemandID)
	for i := 0; i < 4; i++ {
		r := submit(t, client, "DC1", "DC3", 900, 0.95)
		if !r.Admitted {
			break
		}
		ids = append(ids, r.DemandID)
	}
	rFull := submit(t, client, "DC1", "DC3", 900, 0.95)
	if rFull.Admitted {
		t.Fatal("network should be saturated by now")
	}
	// Withdraw everything.
	for _, id := range ids {
		client.Send(&wire.Message{Type: wire.TypeWithdraw, WithdrawID: id})
		if _, err := client.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	nd, _ := ctrl.Snapshot()
	if nd != 0 {
		t.Fatalf("still %d demands after withdraw", nd)
	}
	rAgain := submit(t, client, "DC1", "DC3", 900, 0.95)
	if !rAgain.Admitted {
		t.Fatal("capacity not freed after withdraw")
	}
}

func TestLinkFailureActivatesBackup(t *testing.T) {
	ctrl, brokers, client := startSystem(t)
	res := submit(t, client, "DC1", "DC4", 400, 0.99)
	if !res.Admitted {
		t.Fatal("admission refused")
	}
	// Run the periodic scheduler once to compute backups.
	if err := ctrl.Reschedule(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "entries before failure", func() bool {
		return brokers["DC1"].NumEntries() > 0
	})
	_, epochBefore := ctrl.Snapshot()
	// A broker reports the direct DC1-DC4 link down.
	if err := brokers["DC1"].ReportLink("DC1", "DC4", false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "backup push", func() bool {
		_, e := ctrl.Snapshot()
		return e > epochBefore
	})
	// Repair restores the scheduled allocation.
	_, epochMid := ctrl.Snapshot()
	if err := brokers["DC1"].ReportLink("DC1", "DC4", true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restore push", func() bool {
		_, e := ctrl.Snapshot()
		return e > epochMid
	})
}

func TestRescheduleEmpty(t *testing.T) {
	ctrl, _, _ := startSystem(t)
	if err := ctrl.Reschedule(); err != nil {
		t.Fatal(err)
	}
}

func TestBadHello(t *testing.T) {
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	ctrl, _ := New(Config{Net: n, Tunnels: ts, Logf: silent})
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ctrl.Serve(ctx, ln)

	c, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Send(&wire.Message{Type: wire.TypePing})
	reply, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypeError {
		t.Fatalf("got %+v, want error", reply)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected config validation error")
	}
}

func TestConcurrentClients(t *testing.T) {
	ctrl, _, _ := startSystem(t)
	addr := lastAddr
	const clients = 5
	done := make(chan int, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			conn, err := wire.Dial(addr)
			if err != nil {
				done <- -1
				return
			}
			defer conn.Close()
			conn.Send(&wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Role: "client"}})
			admitted := 0
			for i := 0; i < 4; i++ {
				conn.Send(&wire.Message{Type: wire.TypeSubmit, Submit: &wire.Submit{
					Src: "DC1", Dst: "DC5", Bandwidth: 50, Target: 0.95, Charge: 50, RefundFrac: 0.1,
				}})
				reply, err := conn.Recv()
				if err != nil || reply.AdmitResult == nil {
					done <- -1
					return
				}
				if reply.AdmitResult.Admitted {
					admitted++
				}
			}
			done <- admitted
		}(c)
	}
	total := 0
	for c := 0; c < clients; c++ {
		n := <-done
		if n < 0 {
			t.Fatal("client failed")
		}
		total += n
	}
	nd, _ := ctrl.Snapshot()
	if nd != total {
		t.Fatalf("controller holds %d demands, clients admitted %d", nd, total)
	}
	if total == 0 {
		t.Fatal("nothing admitted")
	}
}

func TestStateSnapshotFailover(t *testing.T) {
	// Master admits demands, snapshots; a fresh replica restores and
	// serves them with identical commitments.
	ctrl, _, client := startSystem(t)
	r1 := submit(t, client, "DC1", "DC3", 400, 0.99)
	r2 := submit(t, client, "DC2", "DC6", 300, 0.95)
	if !r1.Admitted || !r2.Admitted {
		t.Fatal("setup admission failed")
	}
	var snap bytes.Buffer
	if err := ctrl.SaveState(&snap); err != nil {
		t.Fatal(err)
	}

	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	replica, err := New(Config{Net: n, Tunnels: ts, MaxFail: 2, Logf: silent})
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.RestoreState(&snap); err != nil {
		t.Fatal(err)
	}
	nd, _ := replica.Snapshot()
	if nd != 2 {
		t.Fatalf("replica holds %d demands, want 2", nd)
	}
	// New ids must not collide with restored ones.
	replica.mu.Lock()
	id := replica.allocateIDLocked()
	replica.mu.Unlock()
	if id == r1.DemandID || id == r2.DemandID {
		t.Fatalf("id %d collides with restored demands", id)
	}
	// Duplicate-id snapshots are rejected.
	bad := strings.NewReader(`[
	  {"id":1,"pairs":[{"src":"DC1","dst":"DC2","bandwidth_mbps":10}],"target":0.9},
	  {"id":1,"pairs":[{"src":"DC1","dst":"DC3","bandwidth_mbps":10}],"target":0.9}
	]`)
	if err := replica.RestoreState(bad); err == nil {
		t.Fatal("expected duplicate-id error")
	}
}

func TestStatusQuery(t *testing.T) {
	_, _, client := startSystem(t)
	r := submit(t, client, "DC1", "DC4", 400, 0.99)
	if !r.Admitted {
		t.Fatal("setup admission failed")
	}
	client.Send(&wire.Message{Type: wire.TypeStatus})
	reply, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypeStatusReply || reply.Status == nil {
		t.Fatalf("reply %+v", reply)
	}
	if len(reply.Status.Demands) != 1 {
		t.Fatalf("%d demands in status", len(reply.Status.Demands))
	}
	d := reply.Status.Demands[0]
	if d.Src != "DC1" || d.Dst != "DC4" || d.Bandwidth != 400 {
		t.Fatalf("status row %+v", d)
	}
	if d.Achieved < d.Target {
		t.Fatalf("admitted demand at risk: achieved %v < target %v", d.Achieved, d.Target)
	}
	if d.Allocated < 400-1 {
		t.Fatalf("allocated %v", d.Allocated)
	}
}

func TestEndToEndBatchSubmit(t *testing.T) {
	ctrl, _, client := startSystem(t)
	batch := []wire.Submit{
		{Src: "DC1", Dst: "DC3", Bandwidth: 300, Target: 0.99, Charge: 300, RefundFrac: 0.1},
		{Src: "DC2", Dst: "DC5", Bandwidth: 300, Target: 0.9, Charge: 300, RefundFrac: 0.1},
		{Src: "bogus", Dst: "DC2", Bandwidth: 10},
		{Src: "DC1", Dst: "DC3", Bandwidth: 99999, Target: 0.99},
	}
	if err := client.Send(&wire.Message{Type: wire.TypeSubmitBatch, SubmitBatch: batch}); err != nil {
		t.Fatal(err)
	}
	reply, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypeAdmitBatchResult || len(reply.AdmitBatchResult) != len(batch) {
		t.Fatalf("reply %+v", reply)
	}
	r := reply.AdmitBatchResult
	if !r[0].Admitted || !r[1].Admitted {
		t.Fatalf("feasible demands refused: %+v", r[:2])
	}
	if r[0].DemandID == r[1].DemandID {
		t.Fatalf("duplicate ids assigned in one batch: %+v", r[:2])
	}
	if r[2].Admitted || r[2].Method != "invalid" {
		t.Fatalf("invalid entry: %+v", r[2])
	}
	if r[3].Admitted {
		t.Fatalf("oversized demand admitted: %+v", r[3])
	}
	nd, _ := ctrl.Snapshot()
	if nd != 2 {
		t.Fatalf("controller has %d demands, want 2", nd)
	}
}

func TestStatusCountersExposed(t *testing.T) {
	_, _, client := startSystem(t)
	if res := submit(t, client, "DC1", "DC3", 200, 0.99); !res.Admitted {
		t.Fatalf("admission refused: %+v", res)
	}
	if err := client.Send(&wire.Message{Type: wire.TypeStatus}); err != nil {
		t.Fatal(err)
	}
	reply, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status == nil || reply.Status.Counters == nil {
		t.Fatalf("status reply carries no counters: %+v", reply)
	}
	if reply.Status.Counters["scenario.class_cache.misses"] == 0 {
		t.Fatal("admission ran but the class cache counted no misses")
	}
}
