package controller

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bate/internal/demand"
	"bate/internal/routing"
	"bate/internal/store"
	"bate/internal/topo"
	"bate/internal/wire"
)

func newStoreController(t *testing.T, dir string) (*Controller, *store.Store) {
	t.Helper()
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	st, err := store.Open(dir, n, store.Options{NoSync: true, Logf: silent})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ctrl, err := New(Config{Net: n, Tunnels: ts, MaxFail: 2, Logf: silent, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, st
}

// stateOf snapshots a controller's demand book and allocation by
// value for exact comparison.
func stateOf(c *Controller) (map[int]demand.Demand, map[int][][]float64, uint64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	demands := make(map[int]demand.Demand, len(c.demands))
	for id, d := range c.demands {
		demands[id] = *d
	}
	current := make(map[int][][]float64, len(c.current))
	for id, rows := range c.current {
		cp := make([][]float64, len(rows))
		for i, r := range rows {
			cp[i] = append([]float64(nil), r...)
		}
		current[id] = cp
	}
	return demands, current, c.epoch, c.nextID
}

type step struct {
	src, dst   string
	bw, target float64
}

func runSequence(c *Controller, steps []step) []*wire.AdmitResult {
	out := make([]*wire.AdmitResult, len(steps))
	for i, s := range steps {
		out[i] = c.submit(&wire.Submit{
			Src: s.src, Dst: s.dst, Bandwidth: s.bw, Target: s.target,
			Charge: s.bw, RefundFrac: 0.1,
		})
	}
	return out
}

// TestCrashRecoveryTornAppend is the headline §4 failure drill: a
// master admits demands, dies kill -9-style in the middle of a WAL
// append (before acking anyone), and the recovered controller must
// hold byte-identical demand/allocation state and make decisions
// identical to a master that never crashed.
func TestCrashRecoveryTornAppend(t *testing.T) {
	dir := t.TempDir()
	ctrl, st := newStoreController(t, dir)

	initial := []step{
		{"DC1", "DC3", 400, 0.99},
		{"DC2", "DC6", 300, 0.95},
		{"DC1", "DC4", 99999, 0.99}, // rejected: over capacity
		{"DC1", "DC4", 200, 0.999},
		{"DC5", "DC6", 250, 0.9},
	}
	initialRes := runSequence(ctrl, initial)
	for i, want := range []bool{true, true, false, true, true} {
		if initialRes[i].Admitted != want {
			t.Fatalf("setup step %d: admitted=%v, want %v (%+v)", i, initialRes[i].Admitted, want, initialRes[i])
		}
	}
	wantDemands, wantAlloc, wantEpoch, wantNextID := stateOf(ctrl)

	// Crash mid-append: the process dies after writing part of the next
	// record. Nothing past the last complete record was ever acked.
	st.Close()
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 77, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered, _ := newStoreController(t, dir)
	gotDemands, gotAlloc, gotEpoch, gotNextID := stateOf(recovered)
	if !reflect.DeepEqual(gotDemands, wantDemands) {
		t.Fatalf("recovered demand book differs:\n got %+v\nwant %+v", gotDemands, wantDemands)
	}
	if !reflect.DeepEqual(gotAlloc, wantAlloc) {
		t.Fatalf("recovered allocation differs:\n got %+v\nwant %+v", gotAlloc, wantAlloc)
	}
	if gotEpoch != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", gotEpoch, wantEpoch)
	}
	if gotNextID != wantNextID {
		t.Fatalf("recovered next id %d, want %d", gotNextID, wantNextID)
	}

	// A client retrying its unacked submit (echoing the id it was
	// assigned before the crash) is answered idempotently.
	dup := recovered.submit(&wire.Submit{
		DemandID: initialRes[0].DemandID,
		Src:      "DC1", Dst: "DC3", Bandwidth: 400, Target: 0.99, Charge: 400, RefundFrac: 0.1,
	})
	if !dup.Admitted || dup.Method != "duplicate" || dup.DemandID != initialRes[0].DemandID {
		t.Fatalf("retry after failover not idempotent: %+v", dup)
	}
	if nd, _ := recovered.Snapshot(); nd != 4 {
		t.Fatalf("retry double-admitted: %d demands, want 4", nd)
	}

	// Identical subsequent decisions: an uninterrupted control
	// controller that ran the same history must decide the follow-up
	// sequence exactly like the recovered one.
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	control, err := New(Config{Net: n, Tunnels: ts, MaxFail: 2, Logf: silent})
	if err != nil {
		t.Fatal(err)
	}
	controlInitial := runSequence(control, initial)
	for i := range initialRes {
		if initialRes[i].Admitted != controlInitial[i].Admitted ||
			initialRes[i].Method != controlInitial[i].Method ||
			initialRes[i].DemandID != controlInitial[i].DemandID {
			t.Fatalf("control run diverged on setup step %d: %+v vs %+v",
				i, initialRes[i], controlInitial[i])
		}
	}
	followUp := []step{
		{"DC2", "DC3", 150, 0.99},
		{"DC1", "DC3", 900, 0.95}, // contended after the book above
		{"DC4", "DC5", 100, 0.9995},
		{"DC1", "DC6", 99999, 0.9}, // rejected
	}
	gotRes := runSequence(recovered, followUp)
	wantRes := runSequence(control, followUp)
	for i := range followUp {
		if gotRes[i].Admitted != wantRes[i].Admitted ||
			gotRes[i].Method != wantRes[i].Method ||
			gotRes[i].DemandID != wantRes[i].DemandID {
			t.Fatalf("follow-up step %d diverged after recovery:\nrecovered %+v\ncontrol   %+v",
				i, gotRes[i], wantRes[i])
		}
	}
}

func TestRecoveryAfterWithdrawAndCompaction(t *testing.T) {
	dir := t.TempDir()
	ctrl, _ := newStoreController(t, dir)
	res := runSequence(ctrl, []step{
		{"DC1", "DC3", 400, 0.99},
		{"DC2", "DC6", 300, 0.95},
		{"DC1", "DC6", 100, 0.9},
	})
	if err := ctrl.withdraw(res[1].DemandID); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.CompactStore(); err != nil {
		t.Fatal(err)
	}
	// More mutations on top of the fresh snapshot.
	after := runSequence(ctrl, []step{{"DC4", "DC5", 120, 0.99}})
	if !after[0].Admitted {
		t.Fatalf("post-compaction admission refused: %+v", after[0])
	}
	wantDemands, wantAlloc, wantEpoch, wantNextID := stateOf(ctrl)

	recovered, _ := newStoreController(t, dir)
	gotDemands, gotAlloc, gotEpoch, gotNextID := stateOf(recovered)
	if !reflect.DeepEqual(gotDemands, wantDemands) {
		t.Fatalf("demand book differs:\n got %+v\nwant %+v", gotDemands, wantDemands)
	}
	if !reflect.DeepEqual(gotAlloc, wantAlloc) {
		t.Fatalf("allocation differs:\n got %+v\nwant %+v", gotAlloc, wantAlloc)
	}
	if gotEpoch != wantEpoch || gotNextID != wantNextID {
		t.Fatalf("epoch/nextID %d/%d, want %d/%d", gotEpoch, gotNextID, wantEpoch, wantNextID)
	}
}

func TestRecoveryReplaysLinkDownAndSchedule(t *testing.T) {
	dir := t.TempDir()
	ctrl, _ := newStoreController(t, dir)
	if res := runSequence(ctrl, []step{{"DC1", "DC4", 200, 0.99}}); !res[0].Admitted {
		t.Fatal("setup admission refused")
	}
	if err := ctrl.Reschedule(); err != nil {
		t.Fatal(err)
	}
	ctrl.onLinkEvent(&wire.LinkEvent{SrcDC: "DC1", DstDC: "DC4", Up: false})

	wantDemands, wantAlloc, _, _ := stateOf(ctrl)
	recovered, _ := newStoreController(t, dir)
	gotDemands, gotAlloc, _, _ := stateOf(recovered)
	if !reflect.DeepEqual(gotDemands, wantDemands) {
		t.Fatal("demand book lost across reschedule+failure recovery")
	}
	if !reflect.DeepEqual(gotAlloc, wantAlloc) {
		t.Fatalf("scheduled allocation not replayed:\n got %+v\nwant %+v", gotAlloc, wantAlloc)
	}
	n := topo.Testbed()
	src, _ := n.NodeByName("DC1")
	dst, _ := n.NodeByName("DC4")
	link, _ := n.LinkBetween(src, dst)
	recovered.mu.Lock()
	down := recovered.linkDown[link.ID]
	recovered.mu.Unlock()
	if !down {
		t.Fatal("link-down fact lost across recovery")
	}
}

func TestIdempotentResubmitOverTCP(t *testing.T) {
	ctrl, _, client := startSystem(t)
	first := submit(t, client, "DC1", "DC3", 400, 0.99)
	if !first.Admitted {
		t.Fatalf("admission refused: %+v", first)
	}
	// Retry with the assigned id: answered without double-admitting.
	if err := client.Send(&wire.Message{Type: wire.TypeSubmit, Submit: &wire.Submit{
		DemandID: first.DemandID,
		Src:      "DC1", Dst: "DC3", Bandwidth: 400, Target: 0.99, Charge: 400, RefundFrac: 0.1,
	}}); err != nil {
		t.Fatal(err)
	}
	reply, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	r := reply.AdmitResult
	if r == nil || !r.Admitted || r.DemandID != first.DemandID || r.Method != "duplicate" {
		t.Fatalf("resubmit reply %+v", reply)
	}
	if nd, _ := ctrl.Snapshot(); nd != 1 {
		t.Fatalf("%d demands after idempotent retry, want 1", nd)
	}
	// A stale id that names no live demand falls through to a fresh
	// admission under a new id.
	if err := client.Send(&wire.Message{Type: wire.TypeSubmit, Submit: &wire.Submit{
		DemandID: 3999,
		Src:      "DC2", Dst: "DC5", Bandwidth: 100, Target: 0.9, Charge: 100, RefundFrac: 0.1,
	}}); err != nil {
		t.Fatal(err)
	}
	reply, err = client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	r = reply.AdmitResult
	if r == nil || !r.Admitted || r.DemandID == 3999 || r.DemandID == 0 {
		t.Fatalf("stale-id resubmit reply %+v", reply)
	}
}

func TestDemandIDZeroNeverAssigned(t *testing.T) {
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	ctrl, err := New(Config{Net: n, Tunnels: ts, MaxFail: 2, Logf: silent})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.mu.Lock()
	defer ctrl.mu.Unlock()
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		id := ctrl.allocateIDLocked()
		if id == 0 {
			t.Fatal("id 0 assigned: it is the wire sentinel for unassigned")
		}
		if seen[id] {
			// allocateIDLocked reuses free ids; mark them used.
			t.Fatalf("id %d assigned twice while marked used", id)
		}
		seen[id] = true
		ctrl.demands[id] = &demand.Demand{ID: id}
	}
}
