package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryTask(t *testing.T) {
	for _, size := range []int{0, 1, 2, 7, 64} {
		p := NewPool(size)
		n := 137
		hits := make([]int32, n)
		if err := p.ForEach(context.Background(), n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("size %d: task %d ran %d times", size, i, h)
			}
		}
	}
}

func TestForEachDeterministicOrdering(t *testing.T) {
	// Results keyed by index must land in their slots regardless of
	// scheduling; run several times to shake interleavings.
	p := NewPool(8)
	for round := 0; round < 20; round++ {
		out, err := Map(context.Background(), p, 64, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("round %d: out[%d] = %d", round, i, v)
			}
		}
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	p := NewPool(8)
	errAt := func(bad map[int]bool) error {
		return p.ForEach(context.Background(), 50, func(i int) error {
			if bad[i] {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
	}
	err := errAt(map[int]bool{3: true, 40: true, 41: true})
	if err == nil {
		t.Fatal("expected error")
	}
	// The reported error must be the lowest-index one that was
	// recorded; with 8 workers task 3 always starts before 40.
	if got := err.Error(); got != "task 3 failed" {
		t.Fatalf("got %q, want task 3 failure", got)
	}
}

func TestForEachStopsAfterError(t *testing.T) {
	p := NewPool(2)
	var started atomic.Int64
	err := p.ForEach(context.Background(), 1000, func(i int) error {
		started.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if s := started.Load(); s > 100 {
		t.Fatalf("started %d tasks after early error", s)
	}
}

func TestForEachContextCancellation(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := p.ForEach(ctx, 10000, func(i int) error {
		if started.Add(1) == 4 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if s := started.Load(); s > 1000 {
		t.Fatalf("started %d tasks after cancel", s)
	}
}

func TestMapError(t *testing.T) {
	p := NewPool(4)
	_, err := Map(context.Background(), p, 10, func(i int) (string, error) {
		if i == 2 {
			return "", errors.New("nope")
		}
		return "ok", nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

// autoSize is what a GOMAXPROCS-tracking pool should resolve to:
// GOMAXPROCS capped at the machine's usable CPUs.
func autoSize() int {
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < n {
		n = c
	}
	return n
}

func TestPoolSizeResolution(t *testing.T) {
	if got := NewPool(5).Size(); got != 5 {
		t.Fatalf("explicit size: got %d", got)
	}
	if got, want := NewPool(0).Size(), autoSize(); got != want {
		t.Fatalf("auto size: got %d, want %d", got, want)
	}
	if got, want := NewPool(-3).Size(), autoSize(); got != want {
		t.Fatalf("negative size: got %d, want %d", got, want)
	}
}

func TestDefaultPoolOverride(t *testing.T) {
	defer SetDefaultSize(0)
	SetDefaultSize(3)
	if got := Default().Size(); got != 3 {
		t.Fatalf("override: got %d", got)
	}
	SetDefaultSize(0)
	if got, want := Default().Size(), autoSize(); got != want {
		t.Fatalf("reset: got %d, want %d", got, want)
	}
}

// TestForEachRaceStress hammers the pool with overlapping ForEach
// batches touching shared counters through atomics; `go test -race`
// flags any synchronization hole in the pool itself.
func TestForEachRaceStress(t *testing.T) {
	p := NewPool(8)
	var total atomic.Int64
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int) {
			var local int64
			err := p.ForEach(context.Background(), 500, func(i int) error {
				atomic.AddInt64(&local, int64(i))
				total.Add(1)
				return nil
			})
			if err == nil && local != 500*499/2 {
				err = fmt.Errorf("seed %d: partial sum %d", seed, local)
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := total.Load(); got != 8*500 {
		t.Fatalf("total tasks %d, want %d", got, 8*500)
	}
}
