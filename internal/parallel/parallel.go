// Package parallel provides the bounded worker pool behind BATE's
// concurrent hot paths: batch admission speculation, scenario-class
// prefetching, constraint-row assembly and experiment fan-out.
//
// The pool is deliberately simple: ForEach partitions n index-addressed
// tasks over at most Size workers, results land in caller-owned slots
// keyed by index (so output ordering is deterministic regardless of
// scheduling), and the first error — by lowest task index — wins.
// Cancellation is cooperative via context: no new task starts once the
// context is done or an error is recorded.
//
// A Pool with size 0 resolves min(runtime.GOMAXPROCS, runtime.NumCPU)
// at each call, so one process-wide Default() pool behaves correctly
// under `go test -cpu 1,4,8` and under runtime GOMAXPROCS changes,
// while never oversubscribing a machine whose GOMAXPROCS exceeds its
// usable CPUs (the hot paths are CPU-bound; extra workers only add
// contention there).
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"bate/internal/metrics"
)

var (
	tasksRun    = metrics.NewCounter("parallel.tasks")
	batchesRun  = metrics.NewCounter("parallel.batches")
	serialRuns  = metrics.NewCounter("parallel.serial_batches")
	busyWorkers atomic.Int64
	maxBusy     = metrics.NewMaxGauge("parallel.max_busy_workers")
)

// Pool is a bounded worker pool. The zero value is ready to use and
// sizes itself by runtime.GOMAXPROCS at each call.
type Pool struct {
	size int
}

// NewPool returns a pool running at most size concurrent tasks.
// size <= 0 means "resolve runtime.GOMAXPROCS(0) at each call".
func NewPool(size int) *Pool {
	if size < 0 {
		size = 0
	}
	return &Pool{size: size}
}

// Size returns the worker bound the pool would use right now.
// Auto-sized pools never exceed the machine's usable CPUs: the tasks
// they run are CPU-bound, so workers beyond NumCPU only contend.
// Explicit sizes are honoured as given.
func (p *Pool) Size() int {
	if p == nil || p.size <= 0 {
		n := runtime.GOMAXPROCS(0)
		if c := runtime.NumCPU(); c < n {
			n = c
		}
		return n
	}
	return p.size
}

// ForEach runs fn(i) for every i in [0, n) using at most Size()
// concurrent workers and blocks until all started tasks finish. Task
// results must be written by fn into caller-owned, index-addressed
// slots; because slots are keyed by index, output ordering is
// deterministic no matter how tasks interleave.
//
// On error, no further tasks are started and the error with the lowest
// task index is returned (tasks already running complete first). When
// ctx is cancelled, ForEach stops starting tasks and returns ctx.Err()
// unless a task error takes precedence.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := p.Size()
	if workers > n {
		workers = n
	}
	batchesRun.Inc()
	if workers <= 1 {
		// Serial fast path: no goroutines, byte-identical semantics.
		serialRuns.Inc()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			tasksRun.Inc()
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				tasksRun.Inc()
				maxBusy.Observe(busyWorkers.Add(1))
				err := fn(i)
				busyWorkers.Add(-1)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Map runs fn(i) for every i in [0, n) on pool p and returns the
// results in index order. It is ForEach with the result slots managed
// for the caller.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(ctx, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// defaultPool is the process-wide pool. Its size is configurable once
// from main via SetDefaultSize (flag plumbing); 0 tracks GOMAXPROCS.
var defaultPool atomic.Pointer[Pool]

// Default returns the process-wide pool, sized by GOMAXPROCS unless
// SetDefaultSize overrode it.
func Default() *Pool {
	if p := defaultPool.Load(); p != nil {
		return p
	}
	p := NewPool(0)
	if defaultPool.CompareAndSwap(nil, p) {
		return p
	}
	return defaultPool.Load()
}

// SetDefaultSize bounds the process-wide pool at size workers
// (0 = track GOMAXPROCS). Intended for main-package flag plumbing.
func SetDefaultSize(size int) {
	defaultPool.Store(NewPool(size))
}

// Stats reports pool activity for diagnostics: total tasks executed,
// ForEach batches, and the high-water mark of concurrently busy
// workers across every pool in the process.
func Stats() (tasks, batches, maxBusyWorkers int64) {
	return tasksRun.Load(), batchesRun.Load(), maxBusy.Load()
}
