package experiments

import (
	"fmt"
	"io"
	"time"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/lp"
	"bate/internal/lp/batch"
	"bate/internal/metrics"
	"bate/internal/partition"
	"bate/internal/routing"
	"bate/internal/scenario"
	"bate/internal/topo"
)

// batchMaxFail is the scenario-tree depth of the batchscale matrix:
// all failure classes up to three concurrent link failures, the
// deepest tree the scenario model enumerates at these tunnel fans.
const batchMaxFail = 3

// batchTunnelFan is the per-pair tunnel count. Four is the widest fan
// whose relevant-link count stays under the scenario enumerator's
// subset limit on the 1000-node graph.
const batchTunnelFan = 4

// BatchCase is one topology of the batchscale table.
type BatchCase struct {
	Name    string
	Build   func() *topo.Network
	Regions int
	Demands int
}

// BatchCases returns the batchscale measurement matrix: the synthetic
// ring-of-regions topologies at 100/300/1000 nodes under deep
// scenario trees (MaxFail 3, 4-wide tunnel fans). Workloads are
// heavier than partitionscale's because the first-order solver's
// advantage grows with LP size; Quick shrinks to the 100-node graph,
// the CI smoke scale.
func BatchCases(quick bool) []BatchCase {
	if quick {
		return []BatchCase{
			{Name: "Synth100", Build: topo.Synth100, Regions: 10, Demands: 120},
		}
	}
	return []BatchCase{
		{Name: "Synth100", Build: topo.Synth100, Regions: 10, Demands: 120},
		{Name: "Synth300", Build: topo.Synth300, Regions: 15, Demands: 220},
		{Name: "Synth1000", Build: topo.Synth1000, Regions: 25, Demands: 500},
	}
}

// BatchInput builds the case's scheduling input: the locality-biased
// partitionscale workload with a wider 4-shortest tunnel fan for
// exactly the workload's pairs.
func BatchInput(c BatchCase, seed int64) *alloc.Input {
	net := c.Build()
	part := partition.New(net, c.Regions, nil)
	ds := PartitionWorkload(net, part, c.Demands, uint64(seed)*0x9E3779B9+1)
	var pairs [][2]topo.NodeID
	for _, d := range ds {
		for _, p := range d.Pairs {
			pairs = append(pairs, [2]topo.NodeID{p.Src, p.Dst})
		}
	}
	tunnels := routing.ComputeForPairs(net, routing.KShortest, batchTunnelFan, pairs)
	return &alloc.Input{Net: net, Tunnels: tunnels, Demands: ds}
}

// countBatchViolations verifies the batch schedule the same way the
// property suite does: capacity within 1e-6 and every demand's
// relaxed availability within 1e-6 of its target. The returned count
// must be zero for the report to be acceptable.
func countBatchViolations(in *alloc.Input, a alloc.Allocation) (int, error) {
	violations := 0
	if err := a.CheckCapacity(in, 1e-6); err != nil {
		violations++
	}
	for _, d := range in.Demands {
		av, err := alloc.RelaxedAvailability(in, a, d, batchMaxFail)
		if err != nil {
			return violations, fmt.Errorf("batchscale: availability of demand %d: %w", d.ID, err)
		}
		if av < d.Target-1e-6 {
			violations++
		}
	}
	return violations, nil
}

// MeasureBatch times the revised-simplex scheduling solve against the
// batched first-order solve on one case and returns the BenchRow. The
// scenario class cache is pre-warmed for every demand so both sides
// measure LP cost, not class enumeration; repeats takes the fastest
// run per side. The batch side's allocation is re-verified for
// capacity and availability; failures land in Violations.
func MeasureBatch(c BatchCase, seed int64, repeats int) (batch.BenchRow, error) {
	if repeats < 1 {
		repeats = 1
	}
	in := BatchInput(c, seed)
	net, ds := in.Net, in.Demands
	for _, d := range ds {
		if _, _, err := scenario.CachedClassesFor(net, nil, in.AllTunnelsFor(d), batchMaxFail); err != nil {
			return batch.BenchRow{}, fmt.Errorf("batchscale: warm classes: %w", err)
		}
	}

	rOpts := bate.ScheduleOptions{MaxFail: batchMaxFail, Engine: lp.EngineRevised}
	var rAlloc alloc.Allocation
	revisedBest := time.Duration(0)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		a, _, err := bate.Schedule(in, rOpts)
		el := time.Since(start)
		if err != nil {
			return batch.BenchRow{}, fmt.Errorf("batchscale: revised solve: %w", err)
		}
		if r == 0 || el < revisedBest {
			revisedBest, rAlloc = el, a
		}
	}

	bOpts := rOpts
	bOpts.Engine = lp.EngineBatch
	var bAlloc alloc.Allocation
	var bStats *bate.ScheduleStats
	batchBest := time.Duration(0)
	fallbacks := int64(0)
	for r := 0; r < repeats; r++ {
		before := metrics.Snapshot()["bate.batch_fallbacks"]
		start := time.Now()
		a, stats, err := bate.Schedule(in, bOpts)
		el := time.Since(start)
		if err != nil {
			return batch.BenchRow{}, fmt.Errorf("batchscale: batch solve: %w", err)
		}
		fallbacks += metrics.Snapshot()["bate.batch_fallbacks"] - before
		if r == 0 || el < batchBest {
			batchBest, bAlloc, bStats = el, a, stats
		}
	}

	violations, err := countBatchViolations(in, bAlloc)
	if err != nil {
		return batch.BenchRow{}, err
	}
	rTotal, bTotal := rAlloc.Total(), bAlloc.Total()
	gap := 0.0
	if rTotal > 0 {
		gap = (bTotal - rTotal) / rTotal
	}
	row := batch.BenchRow{
		Topology:   c.Name,
		Nodes:      net.NumNodes(),
		Links:      net.NumLinks(),
		Demands:    len(ds),
		MaxFail:    batchMaxFail,
		Rows:       bStats.Constraints,
		Cols:       bStats.Variables,
		RevisedMs:  float64(revisedBest.Microseconds()) / 1000,
		BatchMs:    float64(batchBest.Microseconds()) / 1000,
		RevisedObj: rTotal,
		BatchObj:   bTotal,
		ObjGap:     gap,
		Iterations: bStats.Iterations,
		Violations: violations,
		Fallbacks:  int(fallbacks),
	}
	if row.BatchMs > 0 {
		row.Speedup = row.RevisedMs / row.BatchMs
	}
	return row, nil
}

// BatchScale is the batchscale runner: the batched matrix-form
// first-order scheduling solver against the revised simplex on the
// 100/300/1000-node synthetic topologies with deep scenario trees,
// optionally written to (and gated against) a BENCH_batch.json
// report.
func BatchScale(w io.Writer, opts Options) error {
	fmt.Fprintln(w, "Batched first-order scheduling: PDHG vs revised simplex (deep scenario trees)")
	scale := "full"
	if opts.Quick {
		scale = "smoke"
	}
	repeats := opts.repeats(3, 1)
	t := metrics.NewTable("topology", "nodes", "demands", "lp rows",
		"revised (ms)", "batch (ms)", "speedup", "obj gap", "iters", "viol", "fallbacks")
	report := &batch.BenchReport{Scale: scale}
	for _, c := range BatchCases(opts.Quick) {
		row, err := MeasureBatch(c, opts.Seed, repeats)
		if err != nil {
			return err
		}
		report.Rows = append(report.Rows, row)
		t.AddRow(row.Topology,
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%d", row.Demands),
			fmt.Sprintf("%d", row.Rows),
			fmt.Sprintf("%.1f", row.RevisedMs),
			fmt.Sprintf("%.1f", row.BatchMs),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%.5f", row.ObjGap),
			fmt.Sprintf("%d", row.Iterations),
			fmt.Sprintf("%d", row.Violations),
			fmt.Sprintf("%d", row.Fallbacks))
	}
	fmt.Fprint(w, t.String())
	if opts.BenchOut != "" {
		if err := batch.WriteBench(opts.BenchOut, report); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", opts.BenchOut)
	}
	if opts.Baseline != "" {
		base, err := batch.ReadBench(opts.Baseline)
		if err != nil {
			return err
		}
		tol := opts.Tolerance
		if tol <= 0 {
			tol = 0.2
		}
		if regs := batch.CompareBench(report, base, tol); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(w, "REGRESSION: %s\n", r)
			}
			return fmt.Errorf("batchscale: %d regression(s) vs %s", len(regs), opts.Baseline)
		}
		fmt.Fprintf(w, "solver-bench gate: within ±%.0f%% of %s\n", tol*100, opts.Baseline)
	}
	return nil
}
