package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/metrics"
	"bate/internal/pricing"
	"bate/internal/routing"
	"bate/internal/sim"
	"bate/internal/tm"
	"bate/internal/topo"
)

// simEnv bundles the §5.2 large-scale simulation setting: a Table 4
// topology with Weibull failure probabilities, tunnels, and a
// traffic-matrix bandwidth pool with the paper's scale-down factor 5.
type simEnv struct {
	net     *topo.Network
	tunnels *routing.TunnelSet
	pool    map[[2]topo.NodeID][]float64
}

func newSimEnv(name string, scheme routing.Scheme, seed int64) (simEnv, error) {
	base, err := topo.ByName(name)
	if err != nil {
		return simEnv{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	// Replace the static failure probabilities with Weibull(8, 0.6)
	// draws, matching §5.2.
	net, err := base.WithFailProbs(weibullProbs(rng, base.NumLinks()))
	if err != nil {
		return simEnv{}, err
	}
	matrices := tm.Generate(net, 20, 0.4, rng)
	pool, err := tm.Pool(net, matrices, 5)
	if err != nil {
		return simEnv{}, err
	}
	return simEnv{net: net, tunnels: routing.Compute(net, scheme, 4), pool: pool}, nil
}

func weibullProbs(rng *rand.Rand, n int) []float64 {
	probs := make([]float64, n)
	for i := range probs {
		// Scale into the same band as the built-in topologies so the
		// pruning depth keeps its meaning, preserving the heavy tail.
		probs[i] = 1e-4 + 5e-3*pow8(rng.Float64())
	}
	return probs
}

// pow8 is x^8: a cheap heavy-tail shaper (most links reliable, a few
// bad ones), mirroring the Weibull shape-8 concentration.
func pow8(x float64) float64 {
	x2 := x * x
	x4 := x2 * x2
	return x4 * x4
}

// b4LoadScale multiplies the traffic-matrix bandwidth pool so that the
// paper's "normal load" (5-6 arrivals/min) genuinely contends for the
// 10-20 Gbps B4 trunks.
const b4LoadScale = 25

// workload draws the §5.2 Poisson workload: total arrival rate
// ratePerMin spread across all pairs, availability targets from the
// simulation set, refunds from the ten Azure services.
func (e simEnv) workload(rng *rand.Rand, ratePerMin, meanDurSec, horizonSec, bwScale float64) []*demand.Demand {
	var refunds []demand.RefundChoice
	for _, s := range pricing.AzureServices {
		refunds = append(refunds, demand.RefundChoice{Service: s.Name, Frac: s.FirstTierCredit()})
	}
	pairs := float64(len(e.net.Pairs()))
	pool := e.pool
	if bwScale != 1 {
		pool = make(map[[2]topo.NodeID][]float64, len(e.pool))
		for k, vs := range e.pool {
			scaled := make([]float64, len(vs))
			for i, v := range vs {
				scaled[i] = v * bwScale
			}
			pool[k] = scaled
		}
	}
	gen := demand.NewGenerator(e.net, demand.GeneratorConfig{
		ArrivalsPerMinute: ratePerMin / pairs,
		MeanDurationSec:   meanDurSec,
		BandwidthPool:     pool,
		Targets:           demand.SimulationTargets,
		Refunds:           refunds,
	}, rng)
	return gen.Generate(horizonSec)
}

// Fig12 reproduces the four admission panels of Fig. 12 on B4:
// rejection ratio, link utilization, admission delay and conjecture
// error for Fixed vs BATE vs OPT across arrival rates.
func Fig12(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 12", "Admission control in simulation (B4)")
	env, err := newSimEnv("B4", routing.KShortest, opts.Seed+12)
	if err != nil {
		return err
	}
	rates := []float64{1, 2, 3, 4}
	if opts.Quick {
		rates = []float64{1, 2}
	}
	horizon := opts.scale(2400, 1200)
	meanDur := opts.scale(600, 300)

	ta := metrics.NewTable("rate/min", "Fixed rej", "BATE rej", "OPT rej",
		"Fixed util", "BATE util", "OPT util",
		"Fixed err", "BATE err", "delay Fixed (ms)", "delay BATE (ms)", "delay OPT (ms)")
	for _, rate := range rates {
		rng := rand.New(rand.NewSource(opts.Seed + int64(rate*1000)))
		workload := env.workload(rng, rate, meanDur, horizon, b4LoadScale)
		res, err := sim.RunEventSim(sim.EventSimConfig{
			Net: env.net, Tunnels: env.tunnels, Workload: workload,
			HorizonSec: horizon, ScheduleEverySec: 600,
			TE:        sim.TEConfig{Kind: sim.KindBATE},
			Admission: sim.AdmitBATE, Shadow: true, MaxFail: 1,
			Seed: opts.Seed,
		})
		if err != nil {
			return err
		}
		arrived := float64(res.Arrived)
		if arrived == 0 {
			continue
		}
		rej := func(m sim.AdmissionMode) string {
			return percent(float64(res.ShadowRejected[m]) / arrived)
		}
		errRate := func(m sim.AdmissionMode) string {
			return percent(float64(res.ShadowFalseReject[m]) / arrived)
		}
		delay := func(m sim.AdmissionMode) string {
			return fmt.Sprintf("%.2f", metrics.Mean(res.AdmissionDelaysSec[m])*1000)
		}
		// Utilization per decider requires independent runs; the
		// shadow run's utilization follows the primary (BATE). Run the
		// other two primaries without shadows.
		utils := map[sim.AdmissionMode]string{sim.AdmitBATE: percent(res.MeanUtilization())}
		for _, mode := range []sim.AdmissionMode{sim.AdmitFixedOnly, sim.AdmitOptimal} {
			r2, err := sim.RunEventSim(sim.EventSimConfig{
				Net: env.net, Tunnels: env.tunnels, Workload: workload,
				HorizonSec: horizon, ScheduleEverySec: 600,
				TE:        sim.TEConfig{Kind: sim.KindBATE},
				Admission: mode, MaxFail: 1, Seed: opts.Seed,
			})
			if err != nil {
				return err
			}
			utils[mode] = percent(r2.MeanUtilization())
		}
		ta.AddRow(fmt.Sprintf("%.0f", rate),
			rej(sim.AdmitFixedOnly), rej(sim.AdmitBATE), rej(sim.AdmitOptimal),
			utils[sim.AdmitFixedOnly], utils[sim.AdmitBATE], utils[sim.AdmitOptimal],
			errRate(sim.AdmitFixedOnly), errRate(sim.AdmitBATE),
			delay(sim.AdmitFixedOnly), delay(sim.AdmitBATE), delay(sim.AdmitOptimal))
	}
	_, err = fmt.Fprint(w, ta.String())
	return err
}

// satisfactionSweep runs the Fig. 13/14 sweep: satisfaction ratio per
// TE scheme per arrival rate. admFor picks the admission mode per
// scheme.
func satisfactionSweep(w io.Writer, opts Options, admFor func(sim.TEKind) sim.AdmissionMode) error {
	env, err := newSimEnv("B4", routing.KShortest, opts.Seed+13)
	if err != nil {
		return err
	}
	rates := []float64{1, 2, 3, 4, 5, 6}
	if opts.Quick {
		rates = []float64{1, 3}
	}
	horizon := opts.scale(2400, 1200)
	meanDur := opts.scale(600, 300)
	kinds := sim.AllKinds()
	header := []string{"rate/min"}
	for _, k := range kinds {
		header = append(header, k.String())
	}
	t := metrics.NewTable(header...)
	for _, rate := range rates {
		rng := rand.New(rand.NewSource(opts.Seed + int64(rate*7)))
		workload := env.workload(rng, rate, meanDur, horizon, b4LoadScale)
		row := []string{fmt.Sprintf("%.0f", rate)}
		for _, kind := range kinds {
			res, err := sim.RunEventSim(sim.EventSimConfig{
				Net: env.net, Tunnels: env.tunnels, Workload: workload,
				HorizonSec: horizon, ScheduleEverySec: 600,
				TE:        sim.TEConfig{Kind: kind, TEAVARBeta: 0.999},
				Admission: admFor(kind), MaxFail: 2, Seed: opts.Seed,
			})
			if err != nil {
				return fmt.Errorf("%v rate %v: %w", kind, rate, err)
			}
			row = append(row, percent(res.SatisfactionRatio()))
		}
		t.AddRow(row...)
	}
	_, err = fmt.Fprint(w, t.String())
	return err
}

// Fig13 compares BATE (with its own admission) against the baseline TE
// schemes serving every arrival, reporting the satisfied-demand
// percentage per arrival rate (Fig. 13).
func Fig13(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 13", "Satisfaction percentage vs arrival rate (B4)")
	return satisfactionSweep(w, opts, func(k sim.TEKind) sim.AdmissionMode {
		if k == sim.KindBATE {
			return sim.AdmitBATE
		}
		return sim.AdmitNone
	})
}

// Fig14 repeats the sweep with every scheme behind the fixed admission
// control (Fig. 14).
func Fig14(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 14", "Satisfaction with fixed admission control")
	return satisfactionSweep(w, opts, func(sim.TEKind) sim.AdmissionMode {
		return sim.AdmitFixedOnly
	})
}

// Fig15 reports the average profit retained after single-link failures
// per TE scheme and arrival rate (Fig. 15).
func Fig15(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 15", "Profit gain after failures (B4)")
	env, err := newSimEnv("B4", routing.KShortest, opts.Seed+15)
	if err != nil {
		return err
	}
	rates := []float64{1, 3, 5}
	if opts.Quick {
		rates = []float64{1, 3}
	}
	horizon := opts.scale(2400, 1200)
	meanDur := opts.scale(600, 300)
	kinds := sim.AllKinds()
	header := []string{"rate/min"}
	for _, k := range kinds {
		header = append(header, k.String())
	}
	t := metrics.NewTable(header...)
	for _, rate := range rates {
		rng := rand.New(rand.NewSource(opts.Seed + int64(rate*11)))
		workload := env.workload(rng, rate, meanDur, horizon, b4LoadScale)
		row := []string{fmt.Sprintf("%.0f", rate)}
		for _, kind := range kinds {
			adm := sim.AdmitFixedOnly
			if kind == sim.KindBATE {
				adm = sim.AdmitBATE
			}
			res, err := sim.RunEventSim(sim.EventSimConfig{
				Net: env.net, Tunnels: env.tunnels, Workload: workload,
				HorizonSec: horizon, ScheduleEverySec: 600,
				TE:        sim.TEConfig{Kind: kind, TEAVARBeta: 0.999},
				Admission: adm, MaxFail: 2, ProfitSamples: 2, Seed: opts.Seed,
			})
			if err != nil {
				return fmt.Errorf("%v rate %v: %w", kind, rate, err)
			}
			row = append(row, percent(metrics.Mean(res.ProfitRatios)))
		}
		t.AddRow(row...)
	}
	_, err = fmt.Fprint(w, t.String())
	return err
}

// Fig18 compares tunnel-selection schemes (KSP-4, edge-disjoint,
// oblivious) by the mean achieved availability of BATE's schedules
// across load levels (Fig. 18).
func Fig18(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 18", "Achieved availability by routing scheme (B4)")
	rates := []float64{1, 2, 3, 4}
	if opts.Quick {
		rates = []float64{1, 2}
	}
	schemes := []routing.Scheme{routing.Oblivious, routing.EdgeDisjoint, routing.KShortest}
	t := metrics.NewTable("rate/min", "Oblivious", "Edge-disjoint", "KSP-4")
	envs := make(map[routing.Scheme]simEnv)
	for _, s := range schemes {
		env, err := newSimEnv("B4", s, opts.Seed+18)
		if err != nil {
			return err
		}
		envs[s] = env
	}
	for _, rate := range rates {
		row := []string{fmt.Sprintf("%.0f", rate)}
		for _, s := range schemes {
			env := envs[s]
			rng := rand.New(rand.NewSource(opts.Seed + int64(rate)))
			nDemands := int(rate) * 8
			demands := staticDemands(env, rng, nDemands, 0)
			in := &alloc.Input{Net: env.net, Tunnels: env.tunnels, Demands: demands}
			cfg := sim.TEConfig{Kind: sim.KindBATE, MaxFail: 2}
			a, err := cfg.Allocate(in)
			if err != nil {
				return err
			}
			var avs []float64
			for _, d := range demands {
				av, err := alloc.AchievedAvailability(in, a, d, 3)
				if err != nil {
					return err
				}
				avs = append(avs, av)
			}
			row = append(row, percent(metrics.Mean(avs)))
		}
		t.AddRow(row...)
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// staticDemands draws n demands from the environment's bandwidth pool
// with simulation targets capped at maxTarget (0 = no cap). The
// pruning experiments cap at 99.9% so a y=1 schedule stays certifiable
// (a 99.99% target cannot be certified when the pruned probability
// mass already exceeds 0.01%).
func staticDemands(env simEnv, rng *rand.Rand, n int, maxTarget float64) []*demand.Demand {
	pairs := env.net.Pairs()
	out := make([]*demand.Demand, n)
	for i := range out {
		p := pairs[rng.Intn(len(pairs))]
		var bw float64 = 100
		if pool := env.pool[p]; len(pool) > 0 {
			bw = pool[rng.Intn(len(pool))]
		}
		target := demand.SimulationTargets[rng.Intn(len(demand.SimulationTargets))]
		if maxTarget > 0 && target > maxTarget {
			target = maxTarget
		}
		out[i] = &demand.Demand{
			ID:     i,
			Pairs:  []demand.PairDemand{{Src: p[0], Dst: p[1], Bandwidth: bw}},
			Target: target,
			Charge: bw, RefundFrac: 0.1,
		}
	}
	return out
}

// Fig19 reports the greedy failure recovery's empirical approximation
// ratio (optimal profit / greedy profit) per arrival rate (Fig. 19),
// and Fig21 the corresponding time speedup (Fig. 21, Appendix E).
func Fig19And21(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 19 & 21", "Greedy recovery: approximation ratio and speedup")
	env, err := newSimEnv("B4", routing.KShortest, opts.Seed+19)
	if err != nil {
		return err
	}
	rates := []float64{1, 2, 3, 4, 5, 6}
	if opts.Quick {
		rates = []float64{1, 3}
	}
	horizon := opts.scale(1800, 900)
	t := metrics.NewTable("rate/min", "approx ratio (avg)", "approx (max)", "time ratio OPT/greedy")
	for _, rate := range rates {
		rng := rand.New(rand.NewSource(opts.Seed + int64(rate*13)))
		workload := env.workload(rng, rate, opts.scale(600, 300), horizon, b4LoadScale)
		res, err := sim.RunEventSim(sim.EventSimConfig{
			Net: env.net, Tunnels: env.tunnels, Workload: workload,
			HorizonSec: horizon, ScheduleEverySec: 600,
			TE:        sim.TEConfig{Kind: sim.KindBATE},
			Admission: sim.AdmitBATE, MaxFail: 2,
			ProfitSamples: 2, RecoveryCompare: true, Seed: opts.Seed,
		})
		if err != nil {
			return err
		}
		eb := metrics.NewErrorBar(res.ApproxRatios)
		t.AddRow(fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.3f", eb.Avg),
			fmt.Sprintf("%.3f", eb.Max),
			fmt.Sprintf("%.1fx", metrics.Mean(res.SpeedupRatios)))
	}
	_, err = fmt.Fprint(w, t.String())
	return err
}
