package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner is one regenerable paper artifact.
type Runner struct {
	ID    string // subcommand name, e.g. "fig13"
	Title string
	Run   func(io.Writer, Options) error
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"table1", "B4 availability targets", func(w io.Writer, _ Options) error { return Table1(w) }},
		{"fig1", "Weibull link-failure CDF", Fig1},
		{"fig2", "Motivating example allocations", func(w io.Writer, _ Options) error { return Fig2(w) }},
		{"table3", "Parallel-demand scheduled paths", func(w io.Writer, _ Options) error { return Table3(w) }},
		{"fig7", "Testbed admission/scheduling/profit", Fig7},
		{"fig8", "Allocated/demanded CDF", Fig8},
		{"fig9", "Per-demand availability", Fig9},
		{"fig10", "Link failure counts", Fig10},
		{"fig11", "Data loss CDF", Fig11},
		{"fig12", "Admission control in simulation", Fig12},
		{"fig13", "Satisfaction vs arrival rate", Fig13},
		{"fig14", "Satisfaction with fixed admission", Fig14},
		{"fig15", "Profit gain after failures", Fig15},
		{"fig16", "Pruning bandwidth loss", Fig16},
		{"fig17", "Scheduling time vs pruning depth", Fig17},
		{"fig18", "Routing-scheme robustness", Fig18},
		{"fig19", "Recovery approximation ratio (and Fig 21 speedup)", Fig19And21},
		{"fig20", "Satisfaction vs failure time", Fig20},
		{"wireload", "Wire codec load harness (binary vs JSON)", WireLoad},
		{"partitionscale", "Partitioned vs global scheduling at 100-1000 nodes", PartitionScale},
		{"batchscale", "Batched first-order vs revised-simplex scheduling", BatchScale},
	}
}

// ByID returns the runner with the given id.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
}

// IDs lists the experiment ids in order.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, r := range all {
		ids[i] = r.ID
	}
	sort.Strings(ids)
	return ids
}
