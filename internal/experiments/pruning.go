package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/metrics"
	"bate/internal/routing"
	"bate/internal/scenario"
)

// pruningTopologies are the Table 4 networks swept in Figs. 16/17.
func pruningTopologies(opts Options) []string {
	if opts.Quick {
		return []string{"B4", "FITI"}
	}
	return []string{"B4", "IBM", "ATT", "FITI"}
}

// Fig16 measures the bandwidth cost of scenario pruning: the total
// bandwidth allocated by the scheduling LP at pruning depth y relative
// to the y=4 reference (standing in for the unpruned optimum, whose
// residual probability is negligible), per topology (Fig. 16).
func Fig16(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 16", "Relative bandwidth loss vs pruning depth y")
	t := metrics.NewTable("topology", "y=1", "y=2", "y=3", "y=4 (ref)")
	for _, name := range pruningTopologies(opts) {
		env, err := newSimEnv(name, routing.KShortest, opts.Seed+16)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(opts.Seed + 161))
		nDemands := 8
		if opts.Quick {
			nDemands = 4
		}
		demands := staticDemands(env, rng, nDemands, 0.999)
		in := &alloc.Input{Net: env.net, Tunnels: env.tunnels, Demands: demands}
		totals := make(map[int]float64, 4)
		for y := 1; y <= 4; y++ {
			// Shallow pruning discards probability mass, so a target can
			// be uncertifiable at y=1 yet fine at y=2 (the cell is
			// genuinely infeasible, not an error).
			if a, _, err := bate.Schedule(in, bate.ScheduleOptions{MaxFail: y}); err == nil {
				totals[y] = a.Total()
			}
		}
		ref, ok := totals[4]
		row := []string{name}
		for y := 1; y <= 3; y++ {
			total, okY := totals[y]
			if !ok || !okY {
				row = append(row, "infeasible")
				continue
			}
			loss := total/ref - 1
			if loss < 0 {
				loss = 0 // LP epsilon noise
			}
			row = append(row, percent(loss))
		}
		if ok {
			row = append(row, fmt.Sprintf("%.0f Mbps", ref))
		} else {
			row = append(row, "infeasible")
		}
		t.AddRow(row...)
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// Fig17 measures scheduling time as the pruning depth grows, using the
// paper-faithful Enumerated formulation (one B variable per explicit
// scenario, Eq. 3-4) where the dense LP fits in memory, and the exact
// Aggregated formulation everywhere. The enumerated column is the
// paper's Fig. 17 series: its cost explodes with the scenario count
// (see EXPERIMENTS.md for the dense-solver scale note).
func Fig17(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 17", "Scheduling time vs pruning depth y")
	t := metrics.NewTable("topology", "y", "#scenarios", "enumerated", "aggregated")
	// Keep the enumerated LP's B-variable count within the dense
	// simplex's comfort zone.
	maxEnumVars := int64(1600)
	if opts.Quick {
		maxEnumVars = 400
	}
	const maxY = 2
	for _, name := range pruningTopologies(opts) {
		env, err := newSimEnv(name, routing.KShortest, opts.Seed+17)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(opts.Seed + 171))
		demands := staticDemands(env, rng, 2, 0.99)
		in := &alloc.Input{Net: env.net, Tunnels: env.tunnels, Demands: demands}
		for y := 1; y <= maxY; y++ {
			scenarios := scenario.Count(env.net.NumLinks(), y)
			enumCell := "skipped (LP too large)"
			if scenarios*int64(len(demands)) <= maxEnumVars {
				if _, stats, err := bate.Schedule(in, bate.ScheduleOptions{MaxFail: y, Mode: bate.Enumerated}); err == nil {
					enumCell = stats.Elapsed.String()
				} else {
					enumCell = "infeasible"
				}
			}
			aggCell := "infeasible"
			if _, stats, err := bate.Schedule(in, bate.ScheduleOptions{MaxFail: y, Mode: bate.Aggregated}); err == nil {
				aggCell = stats.Elapsed.String()
			}
			t.AddRow(name, fmt.Sprint(y), fmt.Sprint(scenarios), enumCell, aggCell)
		}
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}
