package experiments

import (
	"fmt"
	"io"

	"bate/internal/sim"
	"bate/internal/wire"
)

// WireLoad runs the wire-protocol load harness for both codecs and
// prints the per-codec throughput plus the binary-vs-JSON ratios the
// CI bench gate watches. Quick shrinks the client count to a smoke
// size; the full run drives 10^5 clients.
func WireLoad(w io.Writer, opt Options) error {
	clients := 100000
	if opt.Quick {
		clients = 2000
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	results := map[wire.Codec]*sim.LoadResult{}
	for _, codec := range []wire.Codec{wire.CodecBinary, wire.CodecJSON} {
		res, err := sim.RunLoadSim(sim.LoadConfig{Clients: clients, Codec: codec, Seed: seed})
		if err != nil {
			return fmt.Errorf("wireload (%s): %v", codec, err)
		}
		results[codec] = res
		fmt.Fprintf(w, "wire=%s clients=%d: %.0f admissions/sec, p99=%.3fms, %.1f allocs/op\n",
			res.Codec, res.Clients, res.AdmissionsPerSec, res.P99AckMs, res.AllocsPerOp)
	}
	rep := sim.NewWireBenchReport("Testbed6", clients,
		results[wire.CodecBinary], results[wire.CodecJSON])
	fmt.Fprintf(w, "binary vs json: %.2fx admissions/sec, %.3fx allocs/op\n",
		rep.SpeedupAdmissionsPerSec, rep.AllocsPerOpRatio)
	return nil
}
