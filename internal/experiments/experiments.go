// Package experiments regenerates every table and figure of the
// paper's evaluation (§5). Each Fig*/Table* function runs the
// corresponding workload and prints the same rows or series the paper
// reports; cmd/bateexp exposes them as subcommands and bench_test.go
// wraps them as benchmarks. Workload sizes are scaled down from the
// paper's 150,000-minute runs so a laptop regenerates every artifact
// in minutes; EXPERIMENTS.md records the scaling next to each result.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/pricing"
	"bate/internal/routing"
	"bate/internal/sim"
	"bate/internal/topo"
)

// Options controls experiment scale.
type Options struct {
	// Quick shrinks workloads further (used by benchmarks and smoke
	// tests).
	Quick bool
	// Seed makes runs reproducible.
	Seed int64
	// Repeats overrides the per-experiment repetition count (0 =
	// experiment default, shrunk under Quick).
	Repeats int
	// BenchOut, when set, makes bench-style runners (partitionscale,
	// wireload) write their machine-readable report here.
	BenchOut string
	// Baseline, when set, gates bench-style runners against the
	// committed report at this path; regressions beyond Tolerance make
	// the run fail.
	Baseline string
	// Tolerance is the fractional regression tolerance for Baseline
	// (0 = 20%).
	Tolerance float64
}

func (o Options) repeats(def, quick int) int {
	if o.Repeats > 0 {
		return o.Repeats
	}
	if o.Quick {
		return quick
	}
	return def
}

func (o Options) scale(def, quick float64) float64 {
	if o.Quick {
		return quick
	}
	return def
}

// testbedEnv bundles the §5.1 testbed setting.
type testbedEnv struct {
	net     *topo.Network
	tunnels *routing.TunnelSet
}

func newTestbedEnv() testbedEnv {
	n := topo.Testbed()
	return testbedEnv{net: n, tunnels: routing.Compute(n, routing.KShortest, 4)}
}

// testbedWorkload generates the §5.1 Poisson workload: per-pair
// Poisson arrivals, exponential durations, uniform bandwidth, targets
// from the testbed set, refunds from Redis/CDN/VMs.
func (e testbedEnv) workload(rng *rand.Rand, arrivalsPerMin, meanDurSec, horizonSec, minBw, maxBw float64) []*demand.Demand {
	var refunds []demand.RefundChoice
	for _, s := range pricing.TestbedServices {
		refunds = append(refunds, demand.RefundChoice{Service: s.Name, Frac: s.FirstTierCredit()})
	}
	gen := demand.NewGenerator(e.net, demand.GeneratorConfig{
		ArrivalsPerMinute: arrivalsPerMin,
		MeanDurationSec:   meanDurSec,
		MinBandwidth:      minBw,
		MaxBandwidth:      maxBw,
		Targets:           demand.TestbedTargets,
		Refunds:           refunds,
	}, rng)
	return gen.Generate(horizonSec)
}

// table3Demands are the three parallel demands of §5.1 "Evaluations on
// parallel demands" (Table 3, Figs. 9-11).
func (e testbedEnv) table3Demands() []*demand.Demand {
	name := func(s string) topo.NodeID {
		id, _ := e.net.NodeByName(s)
		return id
	}
	return []*demand.Demand{
		{ID: 0, Pairs: []demand.PairDemand{{Src: name("DC1"), Dst: name("DC3"), Bandwidth: 1000}},
			Target: 0.995, Charge: 1000, RefundFrac: 0.10, Service: "Redis"},
		{ID: 1, Pairs: []demand.PairDemand{{Src: name("DC1"), Dst: name("DC4"), Bandwidth: 500}},
			Target: 0.999, Charge: 500, RefundFrac: 0.10, Service: "CDN"},
		{ID: 2, Pairs: []demand.PairDemand{{Src: name("DC1"), Dst: name("DC5"), Bandwidth: 1500}},
			Target: 0.95, Charge: 1500, RefundFrac: 0.10, Service: "Virtual Machines"},
	}
}

func (e testbedEnv) input(demands []*demand.Demand) *alloc.Input {
	return &alloc.Input{Net: e.net, Tunnels: e.tunnels, Demands: demands}
}

// schemesForTestbed are the three schemes implemented on the testbed
// (§5.1): BATE, TEAVAR, FFC.
func schemesForTestbed() []sim.TEKind {
	return []sim.TEKind{sim.KindBATE, sim.KindTEAVAR, sim.KindFFC}
}

// percent formats a fraction as a percentage.
func percent(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }

// fprintHeader prints a figure banner.
func fprintHeader(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n=== %s — %s ===\n", id, title)
}
