package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Quick: true, Seed: 1, Repeats: 2} }

func runExperiment(t *testing.T, id string) string {
	t.Helper()
	r, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Run(&buf, quickOpts()); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatalf("%s: empty output", id)
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Fatalf("registry has %d experiments, want 21 artifacts", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if seen[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Title == "" || r.Run == nil {
			t.Fatalf("incomplete runner %q", r.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("expected unknown-id error")
	}
	if len(IDs()) != len(all) {
		t.Fatal("IDs() incomplete")
	}
}

func TestTable1(t *testing.T) {
	out := runExperiment(t, "table1")
	for _, want := range []string{"99.99%", "99.95%", "99.9%", "99%", "Bulk transfer"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig1(t *testing.T) {
	out := runExperiment(t, "fig1")
	if !strings.Contains(out, "CDF") {
		t.Fatalf("fig1 output:\n%s", out)
	}
}

func TestFig2Shapes(t *testing.T) {
	out := runExperiment(t, "fig2")
	// FFC must not meet either target; BATE must meet both.
	ffc := section(out, "[FFC")
	if strings.Contains(ffc, "true") {
		t.Fatalf("FFC satisfied a demand:\n%s", ffc)
	}
	bate := section(out, "[BATE")
	if strings.Count(bate, "true") < 4 { // both users, both paths rows
		t.Fatalf("BATE should meet both targets:\n%s", bate)
	}
}

// section returns out from the marker to the next blank-line-separated
// block.
func section(out, marker string) string {
	i := strings.Index(out, marker)
	if i < 0 {
		return ""
	}
	rest := out[i:]
	if j := strings.Index(rest[1:], "\n["); j > 0 {
		return rest[:j+1]
	}
	return rest
}

func TestTable3Shapes(t *testing.T) {
	out := runExperiment(t, "table3")
	for _, want := range []string{"demand-1 (99.5%)", "demand-2 (99.9%)", "demand-3 (95%)", "BATE", "TEAVAR", "FFC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table3 missing %q:\n%s", want, out)
		}
	}
}

func TestFig16AndFig17(t *testing.T) {
	if testing.Short() {
		t.Skip("pruning sweep in -short mode")
	}
	out := runExperiment(t, "fig16")
	if !strings.Contains(out, "y=1") {
		t.Fatalf("fig16 output:\n%s", out)
	}
	out = runExperiment(t, "fig17")
	if !strings.Contains(out, "aggregated") || !strings.Contains(out, "µs") && !strings.Contains(out, "ms") {
		t.Fatalf("fig17 output:\n%s", out)
	}
}

func TestFig18(t *testing.T) {
	if testing.Short() {
		t.Skip("routing sweep in -short mode")
	}
	out := runExperiment(t, "fig18")
	for _, want := range []string{"Oblivious", "Edge-disjoint", "KSP-4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig18 missing %q:\n%s", want, out)
		}
	}
}

func TestFig9And10And11(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed repetition sweep in -short mode")
	}
	out := runExperiment(t, "fig9")
	if !strings.Contains(out, "BATE-TS") {
		t.Fatalf("fig9 output:\n%s", out)
	}
	out = runExperiment(t, "fig10")
	if !strings.Contains(out, "L4") {
		t.Fatalf("fig10 output:\n%s", out)
	}
	out = runExperiment(t, "fig11")
	if !strings.Contains(out, "p99") {
		t.Fatalf("fig11 output:\n%s", out)
	}
}

func TestFig13Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("satisfaction sweep in -short mode")
	}
	out := runExperiment(t, "fig13")
	for _, want := range []string{"BATE", "TEAVAR", "SWAN", "SMORE", "B4", "FFC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig13 missing %q:\n%s", want, out)
		}
	}
}

func TestWireLoadQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness in -short mode")
	}
	out := runExperiment(t, "wireload")
	for _, want := range []string{"wire=binary", "wire=json", "binary vs json:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("wireload missing %q:\n%s", want, out)
		}
	}
}

func TestPartitionScaleQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("scale measurement in -short mode")
	}
	out := runExperiment(t, "partitionscale")
	for _, want := range []string{"Synth100", "speedup", "gap bound"} {
		if !strings.Contains(out, want) {
			t.Fatalf("partitionscale missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsHelpers(t *testing.T) {
	o := Options{}
	if o.repeats(10, 3) != 10 {
		t.Fatal("default repeats")
	}
	o.Quick = true
	if o.repeats(10, 3) != 3 {
		t.Fatal("quick repeats")
	}
	o.Repeats = 7
	if o.repeats(10, 3) != 7 {
		t.Fatal("override repeats")
	}
	if o.scale(100, 10) != 10 {
		t.Fatal("quick scale")
	}
	o.Quick = false
	if o.scale(100, 10) != 100 {
		t.Fatal("default scale")
	}
}

// TestAllExperimentsQuick runs every remaining artifact at benchmark
// scale so the registry stays executable end to end. Slower sweeps are
// already covered individually above; this catches regressions in the
// rest.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep in -short mode")
	}
	for _, id := range []string{"fig7", "fig8", "fig11", "fig12", "fig14", "fig15", "fig19", "fig20"} {
		id := id
		t.Run(id, func(t *testing.T) {
			out := runExperiment(t, id)
			if !strings.Contains(out, "===") {
				t.Fatalf("%s produced no banner:\n%s", id, out)
			}
		})
	}
}
