package experiments

import (
	"fmt"
	"io"
	"time"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/demand"
	"bate/internal/lp"
	"bate/internal/metrics"
	"bate/internal/partition"
	"bate/internal/routing"
	"bate/internal/scenario"
	"bate/internal/topo"
)

// PartitionCase is one topology of the partitionscale table.
type PartitionCase struct {
	Name    string
	Build   func() *topo.Network
	Regions int
	Demands int
}

// PartitionCases returns the partitionscale measurement matrix: the
// synthetic ring-of-regions topologies at 100/300/1000 nodes (Quick
// shrinks to the 100-node graph with a small workload, the CI smoke
// scale).
func PartitionCases(quick bool) []PartitionCase {
	if quick {
		// Same topology and workload as the full-scale Synth100 row: 40
		// demands make too small an LP for the decomposition's speedup
		// to stand clear of timing noise in the CI gate.
		return []PartitionCase{
			{Name: "Synth100", Build: topo.Synth100, Regions: 10, Demands: 80},
		}
	}
	return []PartitionCase{
		{Name: "Synth100", Build: topo.Synth100, Regions: 10, Demands: 80},
		{Name: "Synth300", Build: topo.Synth300, Regions: 15, Demands: 150},
		{Name: "Synth1000", Build: topo.Synth1000, Regions: 25, Demands: 250},
	}
}

// PartitionWorkload builds the deterministic locality-biased demand
// set of the scale experiments: ~90% of demands stay inside one region
// (inter-DC traffic is overwhelmingly intra-continental), the rest
// cross to the ring neighbor. Bandwidths and targets cycle through
// small deterministic menus.
func PartitionWorkload(net *topo.Network, part *partition.Partition, count int, seed uint64) []*demand.Demand {
	byRegion := make([][]topo.NodeID, part.Regions)
	for v := 0; v < net.NumNodes(); v++ {
		r := part.NodeRegion[v]
		byRegion[r] = append(byRegion[r], topo.NodeID(v))
	}
	x := seed | 1
	next := func() uint64 { // xorshift64
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	// Modest targets: the qualified scenario mass P(<= 2 failures) on
	// the 1000-node graph is ~0.994, so 0.99 is the highest target that
	// stays feasible at every scale.
	targets := []float64{0.9, 0.95, 0.99}
	ds := make([]*demand.Demand, 0, count)
	for i := 0; i < count; i++ {
		r := i % part.Regions
		nodes := byRegion[r]
		src := nodes[int(next()%uint64(len(nodes)))]
		var dst topo.NodeID
		if next()%10 == 0 && part.Regions > 1 {
			// Cross-region: destination in the next region.
			peer := byRegion[(r+1)%part.Regions]
			dst = peer[int(next()%uint64(len(peer)))]
		} else {
			for {
				dst = nodes[int(next()%uint64(len(nodes)))]
				if dst != src {
					break
				}
			}
		}
		if dst == src { // single-node region edge case
			continue
		}
		bw := 50 + float64(next()%150)
		ds = append(ds, &demand.Demand{
			ID:     i,
			Pairs:  []demand.PairDemand{{Src: src, Dst: dst, Bandwidth: bw}},
			Target: targets[i%len(targets)],
		})
	}
	return ds
}

// PartitionInput builds the case's full scheduling input: the
// locality-biased workload plus 3-shortest tunnels for exactly the
// workload's pairs (the scenario model caps relevant links per demand,
// so wider tunnel fans are off the table at this scale, and all-pairs
// routing on 1000 nodes would dwarf the measurement).
func PartitionInput(c PartitionCase, seed int64) *alloc.Input {
	net := c.Build()
	part := partition.New(net, c.Regions, nil)
	ds := PartitionWorkload(net, part, c.Demands, uint64(seed)*0x9E3779B9+1)
	var pairs [][2]topo.NodeID
	for _, d := range ds {
		for _, p := range d.Pairs {
			pairs = append(pairs, [2]topo.NodeID{p.Src, p.Dst})
		}
	}
	tunnels := routing.ComputeForPairs(net, routing.KShortest, 3, pairs)
	return &alloc.Input{Net: net, Tunnels: tunnels, Demands: ds}
}

// MeasurePartition times the global scheduling LP against the
// partitioned solve on one case and returns the BenchRow. The scenario
// class cache is pre-warmed for every demand so both sides measure LP
// cost, not class enumeration; repeats takes the fastest run per side.
func MeasurePartition(c PartitionCase, seed int64, repeats int) (partition.BenchRow, error) {
	if repeats < 1 {
		repeats = 1
	}
	in := PartitionInput(c, seed)
	net, ds := in.Net, in.Demands
	for _, d := range ds {
		if _, _, err := scenario.CachedClassesFor(net, nil, in.AllTunnelsFor(d), 2); err != nil {
			return partition.BenchRow{}, fmt.Errorf("partitionscale: warm classes: %w", err)
		}
	}

	gOpts := bate.ScheduleOptions{MaxFail: 2, Engine: lp.EngineRevised}
	var gAlloc alloc.Allocation
	globalBest := time.Duration(0)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		a, _, err := bate.Schedule(in, gOpts)
		el := time.Since(start)
		if err != nil {
			return partition.BenchRow{}, fmt.Errorf("partitionscale: global solve: %w", err)
		}
		if r == 0 || el < globalBest {
			globalBest, gAlloc = el, a
		}
	}

	pOpts := gOpts
	pOpts.Partition = &partition.Options{Regions: c.Regions}
	var pAlloc alloc.Allocation
	var pStats *bate.ScheduleStats
	partBest := time.Duration(0)
	fallbacks := int64(0)
	for r := 0; r < repeats; r++ {
		before := metrics.Snapshot()["partition.fallbacks"]
		start := time.Now()
		a, stats, err := bate.Schedule(in, pOpts)
		el := time.Since(start)
		if err != nil {
			return partition.BenchRow{}, fmt.Errorf("partitionscale: partitioned solve: %w", err)
		}
		fallbacks += metrics.Snapshot()["partition.fallbacks"] - before
		if r == 0 || el < partBest {
			partBest, pAlloc, pStats = el, a, stats
		}
	}

	gTotal, pTotal := gAlloc.Total(), pAlloc.Total()
	gap := 0.0
	if gTotal > 0 {
		gap = (pTotal - gTotal) / gTotal
	}
	row := partition.BenchRow{
		Topology:       c.Name,
		Nodes:          net.NumNodes(),
		Links:          net.NumLinks(),
		Demands:        len(ds),
		Regions:        pStats.Regions,
		GlobalMs:       float64(globalBest.Microseconds()) / 1000,
		PartitionedMs:  float64(partBest.Microseconds()) / 1000,
		GlobalObj:      gTotal,
		PartitionedObj: pTotal,
		Gap:            gap,
		GapBound:       pStats.GapBound,
		CutDemands:     pStats.CutDemands,
		ClassCacheHits: pStats.ClassCacheHits,
		Fallbacks:      int(fallbacks),
	}
	if row.PartitionedMs > 0 {
		row.Speedup = row.GlobalMs / row.PartitionedMs
	}
	if !pStats.Partitioned {
		row.Regions = 0 // the round fell back; make it visible in the row
	}
	return row, nil
}

// PartitionScale is the partitionscale runner: the speedup/gap table
// for hierarchical scheduling on the 100/300/1000-node synthetic
// topologies, optionally written to (and gated against) a
// BENCH_partition.json report.
func PartitionScale(w io.Writer, opts Options) error {
	fmt.Fprintln(w, "Hierarchical scheduling: partitioned vs global LP")
	scale := "full"
	if opts.Quick {
		scale = "smoke"
	}
	repeats := opts.repeats(3, 1)
	t := metrics.NewTable("topology", "nodes", "demands", "regions", "cut",
		"global (ms)", "partitioned (ms)", "speedup", "gap", "gap bound", "cache hits")
	report := &partition.BenchReport{Scale: scale}
	for _, c := range PartitionCases(opts.Quick) {
		row, err := MeasurePartition(c, opts.Seed, repeats)
		if err != nil {
			return err
		}
		report.Rows = append(report.Rows, row)
		t.AddRow(row.Topology,
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%d", row.Demands),
			fmt.Sprintf("%d", row.Regions),
			fmt.Sprintf("%d", row.CutDemands),
			fmt.Sprintf("%.1f", row.GlobalMs),
			fmt.Sprintf("%.1f", row.PartitionedMs),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%.4f", row.Gap),
			fmt.Sprintf("%.4f", row.GapBound),
			fmt.Sprintf("%d", row.ClassCacheHits))
	}
	fmt.Fprint(w, t.String())
	if opts.BenchOut != "" {
		if err := partition.WriteBench(opts.BenchOut, report); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", opts.BenchOut)
	}
	if opts.Baseline != "" {
		base, err := partition.ReadBench(opts.Baseline)
		if err != nil {
			return err
		}
		tol := opts.Tolerance
		if tol <= 0 {
			tol = 0.2
		}
		if regs := partition.CompareBench(report, base, tol); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(w, "REGRESSION: %s\n", r)
			}
			return fmt.Errorf("partitionscale: %d regression(s) vs %s", len(regs), opts.Baseline)
		}
		fmt.Fprintf(w, "partition-bench gate: within ±%.0f%% of %s\n", tol*100, opts.Baseline)
	}
	return nil
}
