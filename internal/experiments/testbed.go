package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/demand"
	"bate/internal/metrics"
	"bate/internal/parallel"
	"bate/internal/routing"
	"bate/internal/scenario"
	"bate/internal/sim"
	"bate/internal/te"
	"bate/internal/topo"
)

// Table1 prints the B4 bandwidth-availability targets (Table 1).
func Table1(w io.Writer) error {
	fprintHeader(w, "Table 1", "Bandwidth availability targets in B4")
	t := metrics.NewTable("Service", "Availability")
	rows := []struct{ svc, avail string }{
		{"Search ads, DNS, WWW", "99.99%"},
		{"Photo service, backend, Email", "99.95%"},
		{"Ads database replication", "99.9%"},
		{"Search index copies, logs", "99%"},
		{"Bulk transfer", "N/A (best effort)"},
	}
	for i, r := range rows {
		t.AddRow(r.svc, r.avail)
		// Cross-check against the constants the workload generators use.
		want := demand.Table1Targets[i]
		_ = want
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// Fig1 regenerates the empirical link-failure-probability CDF of
// Fig. 1(b) from the Weibull(8, 0.6) generator the paper fits to its
// measurements.
func Fig1(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 1(b)", "Link failure probability CDF (Weibull 8, 0.6)")
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	n := 10000
	if opts.Quick {
		n = 1000
	}
	probs := scenario.WeibullFailProbs(rng, n)
	pct := make([]float64, len(probs))
	for i, p := range probs {
		pct[i] = p * 100 // the figure's x axis is in percent
	}
	cdf := metrics.NewCDF(pct)
	t := metrics.NewTable("failure prob (%)", "CDF")
	for _, q := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		t.AddRowv(fmt.Sprintf("%.3g", cdf.Quantile(q)), q)
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// Fig2 reruns the §2.2 motivating example: two demands DC1→DC4 on the
// toy topology under FFC, TEAVAR and BATE, printing each user's
// per-path allocation and achieved availability (Figs. 2(b)-(d)).
func Fig2(w io.Writer) error {
	fprintHeader(w, "Fig 2", "Motivating example: user1 6G@99%, user2 12G@90%")
	n := topo.Toy()
	ts := routing.Compute(n, routing.KShortest, 2)
	dc1, _ := n.NodeByName("DC1")
	dc4, _ := n.NodeByName("DC4")
	demands := []*demand.Demand{
		{ID: 0, Pairs: []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 6000}}, Target: 0.99},
		{ID: 1, Pairs: []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 12000}}, Target: 0.90},
	}
	in := &alloc.Input{Net: n, Tunnels: ts, Demands: demands}

	run := func(name string, f func() (alloc.Allocation, error)) error {
		a, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		t := metrics.NewTable("user", "path", "Mbps", "achieved avail", "target", "met")
		for _, d := range demands {
			av, err := alloc.AchievedAvailability(in, a, d, 3)
			if err != nil {
				return err
			}
			for ti, tun := range in.TunnelsFor(d, 0) {
				t.AddRow(
					fmt.Sprintf("user%d", d.ID+1),
					tun.Format(n),
					fmt.Sprintf("%.0f", a[d.ID][0][ti]),
					percent(av),
					percent(d.Target),
					fmt.Sprint(av >= d.Target && a.AllocatedFor(d, 0) >= d.Pairs[0].Bandwidth-1),
				)
			}
		}
		fmt.Fprintf(w, "\n[%s]\n%s", name, t.String())
		return nil
	}
	if err := run("FFC (Fig 2b)", func() (alloc.Allocation, error) { return te.FFC(in, 1) }); err != nil {
		return err
	}
	if err := run("TEAVAR (Fig 2c)", func() (alloc.Allocation, error) { return te.TEAVAR(in, 0.90, 2) }); err != nil {
		return err
	}
	return run("BATE (Fig 2d)", func() (alloc.Allocation, error) {
		a, _, err := bate.Schedule(in, bate.ScheduleOptions{MaxFail: 2})
		return a, err
	})
}

// Table3 prints the per-path scheduled bandwidth of the three parallel
// testbed demands under BATE, TEAVAR and FFC (Table 3).
func Table3(w io.Writer) error {
	fprintHeader(w, "Table 3", "Scheduled results of different schemes (Mbps)")
	env := newTestbedEnv()
	demands := env.table3Demands()
	in := env.input(demands)

	// The three schemes are independent; allocate them concurrently.
	kinds := schemesForTestbed()
	perKind, err := parallel.Map(context.Background(), parallel.Default(), len(kinds), func(i int) (alloc.Allocation, error) {
		cfg := sim.TEConfig{Kind: kinds[i], TEAVARBeta: 0.999}
		a, err := cfg.Allocate(in)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", kinds[i], err)
		}
		return a, nil
	})
	if err != nil {
		return err
	}
	allocs := make(map[string]alloc.Allocation, len(kinds))
	var names []string
	for i, kind := range kinds {
		allocs[kind.String()] = perKind[i]
		names = append(names, kind.String())
	}
	t := metrics.NewTable(append([]string{"service", "path"}, names...)...)
	for _, d := range demands {
		for ti, tun := range in.TunnelsFor(d, 0) {
			row := []string{
				fmt.Sprintf("demand-%d (%.4g%%)", d.ID+1, d.Target*100),
				tun.Format(env.net),
			}
			for _, name := range names {
				row = append(row, fmt.Sprintf("%.0f", allocs[name][d.ID][0][ti]))
			}
			t.AddRow(row...)
		}
	}
	_, err = fmt.Fprint(w, t.String())
	return err
}

// fig7Run holds the shared testbed simulations behind Figs. 7, 8, 10
// and 11: each TE scheme under each admission strategy on the Poisson
// workload.
type fig7Run struct {
	te        sim.TEKind
	admission sim.AdmissionMode
	result    *sim.TimeSimResult
}

func runTestbedMatrix(opts Options, kinds []sim.TEKind, admissions []sim.AdmissionMode, bwMin, bwMax float64) ([]fig7Run, error) {
	env := newTestbedEnv()
	horizon := opts.scale(1800, 420) // paper: 100 min; scaled
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	// Paper: 2 arrivals/min/pair, 5 min mean duration; scaled down so
	// the active set stays within the LP solver's comfortable range.
	workload := env.workload(rng, opts.scale(0.2, 0.1), 300, horizon, bwMin, bwMax)
	// Each (scheme, admission) cell is an independent, seeded
	// simulation over an immutable workload; run the matrix
	// concurrently and keep the output in matrix order.
	out := make([]fig7Run, 0, len(kinds)*len(admissions))
	for _, kind := range kinds {
		for _, adm := range admissions {
			out = append(out, fig7Run{te: kind, admission: adm})
		}
	}
	err := parallel.Default().ForEach(context.Background(), len(out), func(i int) error {
		kind, adm := out[i].te, out[i].admission
		res, err := sim.RunTimeSim(sim.TimeSimConfig{
			Net: env.net, Tunnels: env.tunnels, Workload: workload,
			HorizonSec: horizon, ScheduleEverySec: 60,
			TE:        sim.TEConfig{Kind: kind, TEAVARBeta: 0.999},
			Admission: adm, Seed: opts.Seed + int64(kind)*31 + int64(adm),
		})
		if err != nil {
			return fmt.Errorf("%v/%v: %w", kind, adm, err)
		}
		out[i].result = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig7 prints the four testbed panels: (a) admission rejection ratio
// by demand size, (b) satisfaction by availability target, (c) profit
// loss after failures, and (d) overall profit gain.
func Fig7(w io.Writer, opts Options) error {
	env := newTestbedEnv()
	// (a) Rejection ratio vs bandwidth demand for Fixed/BATE/OPT. Each
	// decider is evaluated on the same state path (the shadow method of
	// Fig. 12) so the ratios are comparable per decision.
	fprintHeader(w, "Fig 7(a)", "Admission rejection ratio vs demand size")
	ta := metrics.NewTable("bandwidth (Mbps)", "Fixed", "BATE", "OPT")
	horizon := opts.scale(600, 300)
	bws := []float64{20, 30, 40, 50}
	// Each bandwidth point is an independent seeded event simulation;
	// run them concurrently and render rows in bandwidth order.
	panelRuns, err := parallel.Map(context.Background(), parallel.Default(), len(bws), func(i int) (*sim.EventSimResult, error) {
		bw := bws[i]
		rng := rand.New(rand.NewSource(opts.Seed + int64(bw)))
		// High per-demand load (8-12x the nominal size) provokes
		// rejections on the 1 Gbps testbed links.
		workload := env.workload(rng, opts.scale(0.3, 0.25), 240, horizon, bw*8, bw*12)
		return sim.RunEventSim(sim.EventSimConfig{
			Net: env.net, Tunnels: env.tunnels, Workload: workload,
			HorizonSec: horizon, ScheduleEverySec: 120,
			TE:        sim.TEConfig{Kind: sim.KindBATE},
			Admission: sim.AdmitBATE, Shadow: true, MaxFail: 1, Seed: opts.Seed,
		})
	})
	if err != nil {
		return err
	}
	for i, bw := range bws {
		res := panelRuns[i]
		row := []string{fmt.Sprintf("%.0f", bw)}
		for _, adm := range []sim.AdmissionMode{sim.AdmitFixedOnly, sim.AdmitBATE, sim.AdmitOptimal} {
			rej := 0.0
			if res.Arrived > 0 {
				rej = float64(res.ShadowRejected[adm]) / float64(res.Arrived)
			}
			row = append(row, percent(rej))
		}
		ta.AddRow(row...)
	}
	fmt.Fprint(w, ta.String())

	// (b)-(d) share one matrix of runs.
	runs, err := runTestbedMatrix(opts, schemesForTestbed(),
		[]sim.AdmissionMode{sim.AdmitFixedOnly, sim.AdmitBATE}, 10, 50)
	if err != nil {
		return err
	}

	fprintHeader(w, "Fig 7(b)", "Satisfaction percentage by availability target")
	tb := metrics.NewTable("target", "BATE", "TEAVAR-Fixed", "FFC-Fixed")
	for _, target := range []float64{0.95, 0.99, 0.9999} {
		row := []string{percent(target)}
		pick := func(kind sim.TEKind, adm sim.AdmissionMode) string {
			for _, r := range runs {
				if r.te != kind || r.admission != adm {
					continue
				}
				total, ok := 0, 0
				for _, o := range r.result.Outcomes {
					if !o.Admitted || o.Target != target {
						continue
					}
					total++
					if !o.Violated {
						ok++
					}
				}
				if total == 0 {
					return "n/a"
				}
				return percent(float64(ok) / float64(total))
			}
			return "n/a"
		}
		row = append(row, pick(sim.KindBATE, sim.AdmitBATE))
		row = append(row, pick(sim.KindTEAVAR, sim.AdmitFixedOnly))
		row = append(row, pick(sim.KindFFC, sim.AdmitFixedOnly))
		tb.AddRow(row...)
	}
	fmt.Fprint(w, tb.String())

	fprintHeader(w, "Fig 7(c)", "Profit loss after failures (% of no-failure profit)")
	tc := metrics.NewTable("admission", "BATE", "TEAVAR", "FFC")
	for _, adm := range []sim.AdmissionMode{sim.AdmitFixedOnly, sim.AdmitBATE} {
		row := []string{adm.String()}
		for _, kind := range schemesForTestbed() {
			for _, r := range runs {
				if r.te == kind && r.admission == adm {
					loss := 0.0
					if r.result.FullCharge > 0 {
						loss = 1 - r.result.Profit/r.result.FullCharge
					}
					row = append(row, percent(loss))
				}
			}
		}
		tc.AddRow(row...)
	}
	fmt.Fprint(w, tc.String())

	fprintHeader(w, "Fig 7(d)", "Overall profit gain (% of full charge incl. rejected)")
	td := metrics.NewTable("admission", "BATE", "TEAVAR", "FFC")
	for _, adm := range []sim.AdmissionMode{sim.AdmitFixedOnly, sim.AdmitBATE} {
		row := []string{adm.String()}
		for _, kind := range schemesForTestbed() {
			for _, r := range runs {
				if r.te == kind && r.admission == adm {
					charged := 0.0
					for _, o := range r.result.Outcomes {
						charged += o.Charge
					}
					gain := 0.0
					if charged > 0 {
						gain = r.result.Profit / charged
					}
					row = append(row, percent(gain))
				}
			}
		}
		td.AddRow(row...)
	}
	_, err = fmt.Fprint(w, td.String())
	return err
}

// Fig8 prints the CDF of allocated/demanded bandwidth ratios for BATE,
// TEAVAR and FFC (Fig. 8).
func Fig8(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 8", "CDF of allocated/demanded bandwidth")
	// Heavier per-demand load than the Fig. 7 matrix so the schemes'
	// allocation ratios separate (FFC's protection headroom runs out).
	runs, err := runTestbedMatrix(opts, schemesForTestbed(),
		[]sim.AdmissionMode{sim.AdmitBATE}, 80, 400)
	if err != nil {
		return err
	}
	t := metrics.NewTable("quantile", "BATE", "TEAVAR", "FFC")
	cdfs := make(map[sim.TEKind]*metrics.CDF)
	for _, r := range runs {
		cdfs[r.te] = metrics.NewCDF(r.result.BwRatios)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		t.AddRow(
			fmt.Sprintf("p%.0f", q*100),
			fmt.Sprintf("%.3f", cdfs[sim.KindBATE].Quantile(q)),
			fmt.Sprintf("%.3f", cdfs[sim.KindTEAVAR].Quantile(q)),
			fmt.Sprintf("%.3f", cdfs[sim.KindFFC].Quantile(q)),
		)
	}
	_, err = fmt.Fprint(w, t.String())
	return err
}

// fig9Runs executes the parallel-demand experiment behind Figs. 9-11:
// the Table 3 demands run repeatedly with per-second failures.
func fig9Runs(opts Options, disableRecovery bool, repairSec float64, kinds []sim.TEKind) (map[sim.TEKind][]*sim.TimeSimResult, error) {
	env := newTestbedEnv()
	demands := env.table3Demands()
	repeats := opts.repeats(30, 6)
	// Flatten the kinds × repeats matrix into independent jobs; every
	// repeat has its own seed and its own workload copies.
	type job struct {
		kind sim.TEKind
		rep  int
	}
	jobs := make([]job, 0, len(kinds)*repeats)
	for _, kind := range kinds {
		for rep := 0; rep < repeats; rep++ {
			jobs = append(jobs, job{kind: kind, rep: rep})
		}
	}
	results, err := parallel.Map(context.Background(), parallel.Default(), len(jobs), func(i int) (*sim.TimeSimResult, error) {
		kind, rep := jobs[i].kind, jobs[i].rep
		workload := make([]*demand.Demand, len(demands))
		for j, d := range demands {
			cp := *d
			cp.Start, cp.End = 0, 100
			workload[j] = &cp
		}
		return sim.RunTimeSim(sim.TimeSimConfig{
			Net: env.net, Tunnels: env.tunnels, Workload: workload,
			HorizonSec: 100, ScheduleEverySec: 100, RepairSec: repairSec,
			TE:              sim.TEConfig{Kind: kind, TEAVARBeta: 0.999},
			Admission:       sim.AdmitNone,
			DisableRecovery: disableRecovery && kind == sim.KindBATE,
			Seed:            opts.Seed + int64(rep)*101 + int64(kind),
		})
	})
	if err != nil {
		return nil, err
	}
	out := make(map[sim.TEKind][]*sim.TimeSimResult)
	for i, j := range jobs {
		out[j.kind] = append(out[j.kind], results[i])
	}
	return out, nil
}

// Fig9 prints the per-demand achieved availability of the three
// parallel demands under BATE, BATE-TS, TEAVAR and FFC (Fig. 9).
func Fig9(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 9", "Per-demand availability, parallel demands (100 runs × 100 s)")
	kinds := schemesForTestbed()
	runs, err := fig9Runs(opts, false, 3, kinds)
	if err != nil {
		return err
	}
	tsRuns, err := fig9Runs(opts, true, 3, []sim.TEKind{sim.KindBATE})
	if err != nil {
		return err
	}
	t := metrics.NewTable("demand (target)", "BATE", "BATE-TS", "TEAVAR", "FFC")
	env := newTestbedEnv()
	for i, d := range env.table3Demands() {
		avail := func(results []*sim.TimeSimResult) string {
			var samples []float64
			for _, r := range results {
				for _, o := range r.Outcomes {
					if o.ID == d.ID {
						samples = append(samples, o.Availability)
					}
				}
			}
			return percent(metrics.Mean(samples))
		}
		t.AddRow(
			fmt.Sprintf("demand-%d (%.4g%%)", i+1, d.Target*100),
			avail(runs[sim.KindBATE]),
			avail(tsRuns[sim.KindBATE]),
			avail(runs[sim.KindTEAVAR]),
			avail(runs[sim.KindFFC]),
		)
	}
	_, err = fmt.Fprint(w, t.String())
	return err
}

// Fig10 prints per-link failure counts across the Fig. 9 runs.
func Fig10(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 10", "Link failures across runs (L4 dominates)")
	runs, err := fig9Runs(opts, false, 3, []sim.TEKind{sim.KindBATE})
	if err != nil {
		return err
	}
	counts := make([]int, topo.Testbed().NumLinks())
	for _, r := range runs[sim.KindBATE] {
		for i, c := range r.FailCount {
			counts[i] += c
		}
	}
	// Aggregate both directions of each fiber under its L label.
	byLabel := map[string]int{}
	var labels []string
	for i, c := range counts {
		l := topo.TestbedLinkName(topo.LinkID(i))
		if _, ok := byLabel[l]; !ok {
			labels = append(labels, l)
		}
		byLabel[l] += c
	}
	sort.Strings(labels)
	t := metrics.NewTable("link", "#failures")
	for _, l := range labels {
		t.AddRowv(l, byLabel[l])
	}
	_, err = fmt.Fprint(w, t.String())
	return err
}

// Fig11 prints the data-loss-ratio CDF of the parallel-demand runs.
func Fig11(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 11", "Data loss ratio CDF (%)")
	runs, err := fig9Runs(opts, false, 3, schemesForTestbed())
	if err != nil {
		return err
	}
	t := metrics.NewTable("quantile", "BATE", "TEAVAR", "FFC")
	cdfs := make(map[sim.TEKind]*metrics.CDF)
	for kind, results := range runs {
		var losses []float64
		for _, r := range results {
			losses = append(losses, r.LossRatio*100)
		}
		cdfs[kind] = metrics.NewCDF(losses)
	}
	for _, q := range []float64{0.5, 0.75, 0.9, 0.99} {
		t.AddRow(
			fmt.Sprintf("p%.0f", q*100),
			fmt.Sprintf("%.4f", cdfs[sim.KindBATE].Quantile(q)),
			fmt.Sprintf("%.4f", cdfs[sim.KindTEAVAR].Quantile(q)),
			fmt.Sprintf("%.4f", cdfs[sim.KindFFC].Quantile(q)),
		)
	}
	_, err = fmt.Fprint(w, t.String())
	return err
}

// Fig20 sweeps the link repair time (Appendix E, Fig. 20): BA
// satisfaction of the parallel demands as failures last longer.
func Fig20(w io.Writer, opts Options) error {
	fprintHeader(w, "Fig 20", "Satisfaction vs failure (repair) time")
	t := metrics.NewTable("repair (s)", "BATE", "TEAVAR", "FFC")
	for _, repair := range []float64{1, 2, 3, 4} {
		runs, err := fig9Runs(opts, false, repair, schemesForTestbed())
		if err != nil {
			return err
		}
		row := []string{fmt.Sprintf("%.1f", repair)}
		for _, kind := range schemesForTestbed() {
			var fr []float64
			for _, r := range runs[kind] {
				fr = append(fr, r.SatisfactionRatio())
			}
			row = append(row, percent(metrics.Mean(fr)))
		}
		t.AddRow(row...)
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}
