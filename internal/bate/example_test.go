package bate_test

import (
	"fmt"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/demand"
	"bate/internal/routing"
	"bate/internal/topo"
)

// Example schedules the paper's motivating example (§2.2): user1 needs
// 6 Gbps at 99%, user2 needs 12 Gbps at 90%, both DC1→DC4 over one
// flaky and one reliable path.
func Example() {
	network := topo.Toy()
	tunnels := routing.Compute(network, routing.KShortest, 2)
	dc1, _ := network.NodeByName("DC1")
	dc4, _ := network.NodeByName("DC4")
	in := &alloc.Input{
		Net:     network,
		Tunnels: tunnels,
		Demands: []*demand.Demand{
			{ID: 0, Pairs: []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 6000}}, Target: 0.99},
			{ID: 1, Pairs: []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 12000}}, Target: 0.90},
		},
	}
	allocation, _, err := bate.Schedule(in, bate.ScheduleOptions{MaxFail: 2})
	if err != nil {
		panic(err)
	}
	for _, d := range in.Demands {
		achieved, _ := alloc.AchievedAvailability(in, allocation, d, 3)
		fmt.Printf("user%d: achieved %.4f%% (target %.0f%%)\n", d.ID+1, achieved*100, d.Target*100)
	}
	// Output:
	// user1: achieved 99.8999% (target 99%)
	// user2: achieved 95.9038% (target 90%)
}

// ExampleAdmit shows the three-step admission strategy on an empty
// testbed: the residual-capacity check (step 1) admits immediately.
func ExampleAdmit() {
	network := topo.Testbed()
	tunnels := routing.Compute(network, routing.KShortest, 4)
	dc1, _ := network.NodeByName("DC1")
	dc3, _ := network.NodeByName("DC3")
	in := &alloc.Input{Net: network, Tunnels: tunnels}
	d := &demand.Demand{
		ID:     0,
		Pairs:  []demand.PairDemand{{Src: dc1, Dst: dc3, Bandwidth: 500}},
		Target: 0.999,
	}
	res, err := bate.Admit(in, alloc.New(in), nil, d, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("admitted=%v method=%s\n", res.Admitted, res.Method)
	// Output:
	// admitted=true method=fixed
}

// ExampleRecoverGreedy reroutes around a failed link with the
// 2-approximation of Algorithm 2.
func ExampleRecoverGreedy() {
	network := topo.Testbed()
	tunnels := routing.Compute(network, routing.KShortest, 4)
	dc1, _ := network.NodeByName("DC1")
	dc4, _ := network.NodeByName("DC4")
	in := &alloc.Input{
		Net:     network,
		Tunnels: tunnels,
		Demands: []*demand.Demand{{
			ID:     0,
			Pairs:  []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 400}},
			Target: 0.99, Charge: 400, RefundFrac: 0.10,
		}},
	}
	// The direct DC1→DC4 fiber (L4) fails.
	l4, _ := network.LinkBetween(dc1, dc4)
	rec, err := bate.RecoverGreedy(in, []topo.LinkID{l4.ID})
	if err != nil {
		panic(err)
	}
	fmt.Printf("demand kept full profit: %v (profit %.0f of %.0f)\n",
		rec.FullProfit[0], rec.Profit, in.Demands[0].Charge)
	// Output:
	// demand kept full profit: true (profit 400 of 400)
}
