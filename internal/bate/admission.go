package bate

import (
	"fmt"
	"math"
	"sort"
	"time"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/lp"
	"bate/internal/routing"
	"bate/internal/scenario"
)

// AdmissionMethod labels which step of the §3.2 strategy admitted a
// demand.
type AdmissionMethod string

// Admission methods.
const (
	MethodFixed      AdmissionMethod = "fixed"      // step (1): residual capacity
	MethodConjecture AdmissionMethod = "conjecture" // step (2): Algorithm 1
	MethodRejected   AdmissionMethod = "rejected"
	MethodOptimal    AdmissionMethod = "optimal" // Appendix A MILP
)

// AdmissionResult reports an admission decision.
type AdmissionResult struct {
	Admitted bool
	Method   AdmissionMethod
	// NewAlloc is the first-time allocation for the new demand
	// (possibly temporary and below the demanded bandwidth after a
	// conjecture admit; the periodic scheduler will fix it, see §3.2
	// footnote 5).
	NewAlloc [][]float64
	Elapsed  time.Duration
}

// AdmitFixed implements step (1): holding the allocation of every
// admitted demand fixed, can the new demand meet its bandwidth and
// availability target with the remaining capacity alone? The check is
// a hard guarantee: when the Eq. 3-4 relaxation certifies availability
// that the extracted allocation does not truly achieve, the LP is
// re-solved with explicit full-delivery class constraints before
// admitting. On success it returns the cheapest such allocation.
func AdmitFixed(in *alloc.Input, current alloc.Allocation, d *demand.Demand, maxFail int) (*AdmissionResult, error) {
	start := time.Now()
	residual := current.ResidualCapacities(in)
	one := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels, Demands: []*demand.Demand{d}}

	solve := func(hard bool) ([][]float64, error) {
		p := lp.NewProblem()
		fv := alloc.AddFlowVars(p, one, residual, nil)
		for _, rows := range fv {
			for _, r := range rows {
				for _, v := range r {
					p.SetCost(v, 1)
				}
			}
		}
		for pi, pr := range d.Pairs {
			if pr.Bandwidth <= 0 {
				continue
			}
			terms := make([]lp.Term, 0, len(fv[d.ID][pi]))
			for _, v := range fv[d.ID][pi] {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
			p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: pr.Bandwidth})
		}
		var err error
		if hard && d.Target > 0 {
			err = addHardGuarantee(p, one, fv, d, maxFail, nil)
		} else {
			err = addAvailabilityAggregated(p, one, fv, maxFail)
		}
		if err != nil {
			return nil, err
		}
		sol, err := p.Solve()
		if err != nil {
			return nil, err
		}
		return fv.Extract(sol)[d.ID], nil
	}

	res := &AdmissionResult{}
	rows, err := solve(false)
	if err == nil && d.Target > 0 {
		// Posterior check against the true achieved availability.
		trial := alloc.Allocation{d.ID: rows}
		ok, satErr := alloc.Satisfies(one, trial, d, maxFail)
		if satErr != nil {
			return nil, satErr
		}
		if !ok {
			rows, err = solve(true)
		}
	}
	res.Elapsed = time.Since(start)
	if err != nil {
		res.Method = MethodRejected
		return res, nil
	}
	res.Admitted = true
	res.Method = MethodFixed
	res.NewAlloc = rows
	return res, nil
}

// Conjecture implements Algorithm 1: a greedy feasibility conjecture
// over all demands (admitted plus the new one) against the full
// network capacity. It returns true iff every demand can be greedily
// packed while its availability estimate s_d stays at or above β_d.
// Theorem 1: a true return guarantees a satisfying allocation exists.
func Conjecture(in *alloc.Input, demands []*demand.Demand) bool {
	// Remaining link capacities.
	capRem := alloc.FullCapacities(in)
	remaining := append([]*demand.Demand(nil), demands...)
	// Process in increasing Σ_k b_k·β order (line 2).
	sort.Slice(remaining, func(i, j int) bool {
		wi, wj := remaining[i].Weight(), remaining[j].Weight()
		if wi != wj {
			return wi < wj
		}
		return remaining[i].ID < remaining[j].ID
	})
	for _, d := range remaining {
		sd := 1.0
		for pi, pr := range d.Pairs {
			need := pr.Bandwidth
			if need <= 0 {
				continue
			}
			tunnels := in.TunnelsFor(d, pi)
			// Line 4: give up if the pair's remaining capacity cannot
			// cover the demand (upper bound: Σ tunnel bottlenecks,
			// refreshed as links drain inside the loop below).
			avail := make([]bool, len(tunnels))
			for i := range avail {
				avail[i] = true
			}
			for need > 1e-9 {
				// Pick the usable tunnel with the smallest
				// c_t · p_t product (line 8).
				best, bestScore := -1, math.Inf(1)
				for ti, t := range tunnels {
					if !avail[ti] {
						continue
					}
					ct := bottleneck(capRem, t)
					if ct <= 1e-9 {
						avail[ti] = false
						continue
					}
					score := ct * t.Availability(in.Net)
					if score < bestScore {
						bestScore = score
						best = ti
					}
				}
				if best < 0 {
					return false // line 4-5: not enough capacity
				}
				t := tunnels[best]
				f := math.Min(bottleneck(capRem, t), need)
				for _, e := range t.Links {
					capRem[e] -= f
				}
				avail[best] = false // line 10: T' = T' \ t
				sd *= t.Availability(in.Net)
				need -= f
			}
		}
		if d.Target > 0 && sd < d.Target {
			return false // line 14-15
		}
	}
	return true
}

func bottleneck(capRem []float64, t routing.Tunnel) float64 {
	c := math.Inf(1)
	for _, e := range t.Links {
		if capRem[e] < c {
			c = capRem[e]
		}
	}
	return c
}

// Admit runs the full three-step admission strategy of §3.2 for a new
// demand d given the currently admitted demands and their allocation:
// (1) try the fixed-allocation check; (2) fall back to the Algorithm 1
// conjecture, admitting with a temporary best-effort allocation from
// residual capacity; (3) reject.
func Admit(in *alloc.Input, current alloc.Allocation, admitted []*demand.Demand, d *demand.Demand, maxFail int) (*AdmissionResult, error) {
	start := time.Now()
	res, err := AdmitFixed(in, current, d, maxFail)
	if err != nil {
		return nil, err
	}
	if res.Admitted {
		return res, nil
	}
	all := append(append([]*demand.Demand(nil), admitted...), d)
	if Conjecture(in, all) {
		// Temporary allocation from residual capacity, as much as fits
		// (§3.2 step 2; may be below the demanded bandwidth until the
		// next scheduling round).
		tmp := greedyFill(in, current.ResidualCapacities(in), d)
		return &AdmissionResult{
			Admitted: true,
			Method:   MethodConjecture,
			NewAlloc: tmp,
			Elapsed:  time.Since(start),
		}, nil
	}
	return &AdmissionResult{Method: MethodRejected, Elapsed: time.Since(start)}, nil
}

// greedyFill packs as much of d's demand as possible into the residual
// capacities, preferring high-availability tunnels.
func greedyFill(in *alloc.Input, capRem []float64, d *demand.Demand) [][]float64 {
	rows := make([][]float64, len(d.Pairs))
	for pi, pr := range d.Pairs {
		tunnels := in.TunnelsFor(d, pi)
		rows[pi] = make([]float64, len(tunnels))
		order := make([]int, len(tunnels))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return tunnels[order[a]].Availability(in.Net) > tunnels[order[b]].Availability(in.Net)
		})
		need := pr.Bandwidth
		for _, ti := range order {
			if need <= 1e-9 {
				break
			}
			f := math.Min(bottleneck(capRem, tunnels[ti]), need)
			if f <= 0 {
				continue
			}
			rows[pi][ti] = f
			for _, e := range tunnels[ti].Links {
				capRem[e] -= f
			}
			need -= f
		}
	}
	return rows
}

// AdmitOptimal solves the Appendix A MILP for online admission: with
// every previously admitted demand pinned to acceptance (FCFS, no
// preemption), maximize acceptance of the new demand. It returns
// whether the new demand is admitted and, if so, a full reallocation
// satisfying everyone.
func AdmitOptimal(in *alloc.Input, admitted []*demand.Demand, d *demand.Demand, maxFail int) (*AdmissionResult, alloc.Allocation, error) {
	start := time.Now()
	all := append(append([]*demand.Demand(nil), admitted...), d)
	full := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels, Demands: all}

	p := lp.NewProblem()
	p.SetMaximize()
	fv := alloc.AddFlowVars(p, full, alloc.FullCapacities(full), nil)
	aNew := p.AddBinary(fmt.Sprintf("a[d%d]", d.ID), 1)
	for _, dd := range all {
		pinned := dd.ID != d.ID
		if err := addQualifiedScenarioConstraints(p, full, fv, dd, maxFail, aNew, pinned); err != nil {
			return nil, nil, err
		}
	}
	// Bound the branch & bound so a pathological instance degrades to a
	// best-effort incumbent instead of stalling the control loop; the
	// up-branch-first dive finds an integral admit certificate within
	// roughly one dive when one exists.
	sol, err := p.SolveOpts(lp.Options{MaxNodes: 40})
	res := &AdmissionResult{Method: MethodOptimal, Elapsed: time.Since(start)}
	if err != nil {
		switch {
		case sol != nil && sol.Status == lp.Infeasible:
			// Even the pinned demands cannot be satisfied; reject.
			res.Method = MethodRejected
			return res, nil, nil
		case sol != nil && sol.Status == lp.IterLimit && len(sol.Values()) > 0:
			// Node budget exhausted with an incumbent: use it.
		case sol != nil && sol.Status == lp.IterLimit:
			// Inconclusive within budget: reject conservatively.
			res.Method = MethodRejected
			return res, nil, nil
		default:
			return nil, nil, fmt.Errorf("bate: optimal admission: %w", err)
		}
	}
	if sol.Value(aNew) < 0.5 {
		res.Method = MethodRejected
		return res, nil, nil
	}
	res.Admitted = true
	a := fv.Extract(sol)
	res.NewAlloc = a[d.ID]
	return res, a, nil
}

// addQualifiedScenarioConstraints adds the Appendix A machinery for
// one demand: q per tunnel-state class with delivered ≥ b·q, and
// Σ p·q ≥ β gated on acceptance. The new demand's q variables are
// binary (a scenario either qualifies or not); previously admitted
// demands are pinned to acceptance with the same continuous relaxation
// the periodic scheduler applies (Eq. 3-4), which keeps the MILP's
// binary count independent of the admitted-set size.
func addQualifiedScenarioConstraints(p *lp.Problem, in *alloc.Input, fv alloc.FlowVars, d *demand.Demand, maxFail int, aVar lp.VarID, pinned bool) error {
	if d.Target <= 0 {
		return nil
	}
	classes, _, err := scenario.CachedClassesFor(in.Net, nil, in.AllTunnelsFor(d), maxFail)
	if err != nil {
		return err
	}
	availTerms := make([]lp.Term, 0, len(classes))
	for ci, cls := range classes {
		var q lp.VarID
		if pinned {
			q = p.AddVariable(fmt.Sprintf("q[d%d,c%d]", d.ID, ci), 0, 1, 0)
		} else {
			// Rewarding covered probability steers the feasibility
			// dive toward the most probable classes first.
			q = p.AddBinary(fmt.Sprintf("q[d%d,c%d]", d.ID, ci), cls.Prob)
		}
		availTerms = append(availTerms, lp.Term{Var: q, Coef: cls.Prob})
		bit := 0
		for pi, pr := range d.Pairs {
			tunnels := in.TunnelsFor(d, pi)
			if pr.Bandwidth <= 0 {
				bit += len(tunnels)
				continue
			}
			terms := make([]lp.Term, 0, len(tunnels)+1)
			for ti := range tunnels {
				if cls.TunnelUp(bit) {
					terms = append(terms, lp.Term{Var: fv[d.ID][pi][ti], Coef: 1})
				}
				bit++
			}
			terms = append(terms, lp.Term{Var: q, Coef: -pr.Bandwidth})
			p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: 0})
		}
	}
	if pinned {
		p.AddConstraint(lp.Constraint{Terms: availTerms, Op: lp.GE, RHS: d.Target})
	} else {
		// Σ p·q - β·a ≥ 0: acceptance requires the availability target.
		terms := append(availTerms, lp.Term{Var: aVar, Coef: -d.Target})
		p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: 0})
	}
	return nil
}
