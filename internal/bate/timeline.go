package bate

import (
	"fmt"
	"sort"

	"bate/internal/alloc"
	"bate/internal/demand"
)

// Time-window-aware admission. §3.1 footnote 4 notes that a demand's
// start and end times are "implicitly considered in our online
// admission and traffic scheduling": a demand booked for next week
// must not be blocked by traffic that will have departed by then, and
// conversely an advance reservation must hold capacity against later
// bookings. AdmitTimeline makes that explicit: it checks the
// Algorithm 1 conjecture in every time interval the new demand
// overlaps, against exactly the demands active in that interval.

// TimelineDecision reports a window-aware admission outcome.
type TimelineDecision struct {
	Admitted bool
	// Intervals lists the [start, end) windows that were checked.
	Intervals [][2]float64
	// BlockingInterval is the first window whose conjecture failed
	// (valid when !Admitted).
	BlockingInterval [2]float64
}

// AdmitTimeline decides admission for a demand with a lifetime
// [d.Start, d.End) against previously booked demands (each with its
// own lifetime), by running the Algorithm 1 conjecture per overlapping
// interval. Theorem 1 applies interval-wise: if every window's
// conjecture holds, a satisfying allocation exists for every instant
// of the demand's life.
func AdmitTimeline(in *alloc.Input, booked []*demand.Demand, d *demand.Demand) (*TimelineDecision, error) {
	if d.End <= d.Start {
		return nil, fmt.Errorf("bate: demand %d has empty lifetime [%v, %v)", d.ID, d.Start, d.End)
	}
	// Interval boundaries: the demand's own window, cut at every
	// booked start/end inside it.
	cuts := []float64{d.Start, d.End}
	for _, b := range booked {
		if b.Start > d.Start && b.Start < d.End {
			cuts = append(cuts, b.Start)
		}
		if b.End > d.Start && b.End < d.End {
			cuts = append(cuts, b.End)
		}
	}
	sort.Float64s(cuts)
	dec := &TimelineDecision{Admitted: true}
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if hi-lo <= 1e-12 {
			continue
		}
		dec.Intervals = append(dec.Intervals, [2]float64{lo, hi})
		// Demands active anywhere in (lo, hi).
		active := []*demand.Demand{d}
		for _, b := range booked {
			if b.Start < hi && b.End > lo {
				active = append(active, b)
			}
		}
		win := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels, Demands: active}
		if !Conjecture(win, active) {
			dec.Admitted = false
			dec.BlockingInterval = [2]float64{lo, hi}
			return dec, nil
		}
	}
	return dec, nil
}
