package bate

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/lp"
	"bate/internal/partition"
	"bate/internal/routing"
	"bate/internal/topo"
)

// checkBatchProperties asserts the batched matrix-form schedule's
// safety invariants against the revised-simplex solve on one input:
// capacity is never violated, every demand meets its availability
// target within the verification tolerance, and the objective matches
// the simplex optimum within first-order tolerance.
func checkBatchProperties(t *testing.T, name string, in *alloc.Input) {
	t.Helper()
	rOpts := ScheduleOptions{MaxFail: 2, Engine: lp.EngineRevised}
	ref, _, err := Schedule(in, rOpts)
	if err != nil {
		t.Fatalf("%s: revised schedule: %v", name, err)
	}
	bOpts := rOpts
	bOpts.Engine = lp.EngineBatch
	bOpts.BatchMinRows = 1 // force the batch path regardless of size
	got, stats, err := Schedule(in, bOpts)
	if err != nil {
		t.Fatalf("%s: batch schedule: %v", name, err)
	}
	if err := got.CheckCapacity(in, 1e-6); err != nil {
		t.Fatalf("%s: batch: %v", name, err)
	}
	for _, d := range in.Demands {
		av, err := alloc.RelaxedAvailability(in, got, d, rOpts.MaxFail)
		if err != nil {
			t.Fatalf("%s: availability of demand %d: %v", name, d.ID, err)
		}
		if av < d.Target-1e-6 {
			t.Fatalf("%s: batch: demand %d availability %.8f < target %.6f (iters %d)",
				name, d.ID, av, d.Target, stats.Iterations)
		}
	}
	// Eq. 7 minimizes total bandwidth; the polished first-order total
	// may sit slightly off the vertex optimum in either direction.
	rTotal, bTotal := ref.Total(), got.Total()
	if tol := 1e-3*rTotal + 1e-6; bTotal > rTotal+tol || bTotal < rTotal-tol {
		t.Fatalf("%s: batch total %.6f vs revised %.6f (tol %.6f)", name, bTotal, rTotal, tol)
	}
}

// TestBatchScheduleProperties sweeps the paper topologies plus 50
// seeded random meshes, comparing the batch path against the revised
// simplex on every one.
func TestBatchScheduleProperties(t *testing.T) {
	for _, name := range []string{"B4", "ATT", "FITI"} {
		net, err := topo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(len(name))))
		in := &alloc.Input{
			Net:     net,
			Tunnels: routing.Compute(net, routing.KShortest, 3),
			Demands: partitionTestWorkload(net, 6, rng),
		}
		checkBatchProperties(t, name, in)
	}
	for seed := 0; seed < 50; seed++ {
		name := fmt.Sprintf("FatRandom#%d", seed)
		net := topo.FatRandom(name, 12, 3, uint64(seed)*0x9E3779B9+7)
		rng := rand.New(rand.NewSource(int64(seed)))
		in := &alloc.Input{
			Net:     net,
			Tunnels: routing.Compute(net, routing.KShortest, 3),
			Demands: partitionTestWorkload(net, 5, rng),
		}
		checkBatchProperties(t, name, in)
	}
}

// TestBatchScheduleSmallIdenticalToRevised: under the default size
// threshold the batch engine must be the revised solve, allocation
// bytes included (the k=1 guarantee of the batch rollout).
func TestBatchScheduleSmallIdenticalToRevised(t *testing.T) {
	net, err := topo.ByName("B4")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	in := &alloc.Input{
		Net:     net,
		Tunnels: routing.Compute(net, routing.KShortest, 3),
		Demands: partitionTestWorkload(net, 4, rng),
	}
	ref, _, err := Schedule(in, ScheduleOptions{MaxFail: 1, Engine: lp.EngineRevised})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Schedule(in, ScheduleOptions{MaxFail: 1, Engine: lp.EngineBatch})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("small-instance batch allocation differs from the revised solve")
	}
}

// TestBatchPartitionedScheduleFeasible: a partitioned round whose
// region sub-solves run on the batch engine must pass the same
// acceptance gate as the global batch path — the merged allocation
// never violates a link capacity and every availability target holds,
// with the region solves checked against their *residual* capacities
// (the coordination solve's traffic already on the links).
func TestBatchPartitionedScheduleFeasible(t *testing.T) {
	net := topo.RingOfRegions("BP3", 3, 6, 40000, 20000, 13)
	tunnels := routing.Compute(net, routing.KShortest, 3)
	name := func(s string) topo.NodeID {
		id, ok := net.NodeByName(s)
		if !ok {
			t.Fatalf("no node %s", s)
		}
		return id
	}
	var ds []*demand.Demand
	for r := 1; r <= 3; r++ {
		ds = append(ds, &demand.Demand{
			ID: r - 1,
			Pairs: []demand.PairDemand{{
				Src: name(fmt.Sprintf("R%dN1", r)), Dst: name(fmt.Sprintf("R%dN4", r)), Bandwidth: 200}},
			Target: 0.9,
		})
	}
	ds = append(ds, &demand.Demand{
		ID:     3,
		Pairs:  []demand.PairDemand{{Src: name("R1N2"), Dst: name("R2N5"), Bandwidth: 150}},
		Target: 0.9,
	})
	in := &alloc.Input{Net: net, Tunnels: tunnels, Demands: ds}
	global, _, err := Schedule(in, ScheduleOptions{MaxFail: 2, Engine: lp.EngineRevised})
	if err != nil {
		t.Fatal(err)
	}
	rounds0 := batchRounds.Load()
	a, stats, err := Schedule(in, ScheduleOptions{
		MaxFail: 2, Engine: lp.EngineBatch, BatchMinRows: 1,
		Partition: &partition.Options{Regions: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if batchRounds.Load() == rounds0 {
		t.Fatal("no sub-solve took the batch path (BatchMinRows=1 should force it)")
	}
	if err := a.CheckCapacity(in, 1e-6); err != nil {
		t.Fatalf("partitioned batch round violates capacity: %v", err)
	}
	for _, d := range ds {
		av, err := alloc.RelaxedAvailability(in, a, d, 2)
		if err != nil {
			t.Fatal(err)
		}
		if av < d.Target-1e-6 {
			t.Fatalf("demand %d availability %.6f < %.6f", d.ID, av, d.Target)
		}
	}
	// Whether the round partitioned or fell back, the objective must
	// stay within the gap threshold of the global optimum.
	gTotal, pTotal := global.Total(), a.Total()
	if maxTotal := gTotal*(1+partition.DefaultGapThreshold) + 1e-3*gTotal + 1e-6; pTotal > maxTotal {
		t.Fatalf("objective %.3f above %.3f (global %.3f, partitioned=%v, bound %.4f)",
			pTotal, maxTotal, gTotal, stats.Partitioned, stats.GapBound)
	}
}

// TestBatchEnumeratedModeUsesSimplex: the batch assembly only exists
// for the Aggregated mode; an Enumerated-mode round requesting
// EngineBatch must re-solve on the revised simplex (never the generic
// ungated lowering), producing the exact simplex allocation.
func TestBatchEnumeratedModeUsesSimplex(t *testing.T) {
	net, err := topo.ByName("B4")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	in := &alloc.Input{
		Net:     net,
		Tunnels: routing.Compute(net, routing.KShortest, 3),
		Demands: partitionTestWorkload(net, 4, rng),
	}
	ref, _, err := Schedule(in, ScheduleOptions{MaxFail: 1, Mode: Enumerated, Engine: lp.EngineRevised})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Schedule(in, ScheduleOptions{MaxFail: 1, Mode: Enumerated, Engine: lp.EngineBatch, BatchMinRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("enumerated-mode batch request differs from the revised solve")
	}
}

// TestBatchScheduleCancelAborts: a firing Cancel aborts the round
// with lp.ErrAborted instead of delivering a partial allocation.
func TestBatchScheduleCancelAborts(t *testing.T) {
	net, err := topo.ByName("ATT")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	in := &alloc.Input{
		Net:     net,
		Tunnels: routing.Compute(net, routing.KShortest, 3),
		Demands: partitionTestWorkload(net, 6, rng),
	}
	stop := errors.New("deadline")
	_, _, err = Schedule(in, ScheduleOptions{
		MaxFail: 2, Engine: lp.EngineBatch, BatchMinRows: 1,
		Cancel: func() error { return stop },
	})
	if !errors.Is(err, lp.ErrAborted) {
		t.Fatalf("err = %v, want lp.ErrAborted", err)
	}
	// The revised path honours the same hook.
	_, _, err = Schedule(in, ScheduleOptions{
		MaxFail: 2, Engine: lp.EngineRevised,
		Cancel: func() error { return stop },
	})
	if !errors.Is(err, lp.ErrAborted) {
		t.Fatalf("revised: err = %v, want lp.ErrAborted", err)
	}
}
