package bate

import (
	"context"
	"fmt"
	"time"

	"bate/internal/alloc"
	"bate/internal/lp"
	"bate/internal/metrics"
	"bate/internal/topo"
)

// The deadline-bounded recovery pipeline: when links fail, the
// controller must install a rerouted allocation before the outage is
// user-visible, so recovery quality degrades in stages rather than
// blocking on the best answer — precomputed backup plan, then a
// node-budgeted MILP racing the remaining deadline, then the
// Algorithm 2 greedy as the floor that always lands. Every rung down
// the ladder increments bate.recovery_fallback.

var (
	recBackupHits = metrics.NewCounter("bate.recovery_backup_hits")
	recOptimal    = metrics.NewCounter("bate.recovery_optimal")
	recGreedy     = metrics.NewCounter("bate.recovery_greedy")
	recFallback   = metrics.NewCounter("bate.recovery_fallback")
	recMaxMs      = metrics.NewMaxGauge("bate.recovery_max_ms")
)

// RecoveryStage identifies which rung of the degraded-mode ladder
// produced a recovery allocation.
type RecoveryStage int8

// Ladder rungs, best first.
const (
	StageBackup RecoveryStage = iota
	StageOptimal
	StageGreedy
)

func (s RecoveryStage) String() string {
	switch s {
	case StageBackup:
		return "backup"
	case StageOptimal:
		return "optimal"
	case StageGreedy:
		return "greedy"
	}
	return "unknown"
}

// RecoverOptions tunes the deadline-bounded recovery pipeline.
type RecoverOptions struct {
	// Backups are the precomputed §3.4 plans; a covered failure set is
	// served from here instantly.
	Backups *BackupSet
	// Deadline bounds the whole Recover call. The optimal stage gets
	// most of it; the greedy floor keeps a reserve. <= 0 means 2s.
	Deadline time.Duration
	// MaxNodes bounds the optimal stage's branch-and-bound search so a
	// hard MILP degrades to its incumbent instead of running away from
	// the deadline. <= 0 means 20000.
	MaxNodes int
	// Gate, when non-nil, is consulted before each solver-backed stage
	// ("recover"); an error skips the stage. The chaos solver front
	// hooks in here.
	Gate func(op string) error
	// Logf receives stage-transition diagnostics; nil silences them.
	Logf func(string, ...interface{})
}

func (o *RecoverOptions) deadline() time.Duration {
	if o.Deadline <= 0 {
		return 2 * time.Second
	}
	return o.Deadline
}

func (o *RecoverOptions) maxNodes() int {
	if o.MaxNodes <= 0 {
		return 20000
	}
	return o.MaxNodes
}

func (o *RecoverOptions) logf(format string, args ...interface{}) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Recover computes a rerouted allocation for the failure set within
// opts.Deadline, degrading through the ladder: precomputed backup →
// budgeted optimal MILP → greedy 2-approximation. It never returns an
// absent recovery: the greedy floor is pure bounded computation, so
// the worst outcome is a 2-approximate allocation, not a miss. The
// reported stage tells the caller (and the soak harness) which rung
// answered.
func Recover(in *alloc.Input, down []topo.LinkID, opts RecoverOptions) (*RecoveryResult, RecoveryStage, error) {
	start := time.Now()
	defer func() { recMaxMs.Observe(time.Since(start).Milliseconds()) }()

	if r, ok := opts.Backups.For(down); ok {
		recBackupHits.Inc()
		return r, StageBackup, nil
	}
	recFallback.Inc()
	opts.logf("bate: recovery for %v: no precomputed backup, falling back to budgeted optimal", down)

	if r := recoverOptimalBudgeted(in, down, &opts, start); r != nil {
		recOptimal.Inc()
		return r, StageOptimal, nil
	}
	recFallback.Inc()

	r, err := RecoverGreedy(in, down)
	if err != nil {
		// Greedy cannot fail on a well-formed input; surface rather
		// than invent an allocation.
		return nil, StageGreedy, fmt.Errorf("bate: greedy recovery floor: %w", err)
	}
	recGreedy.Inc()
	opts.logf("bate: recovery for %v: greedy floor answered after %v (profit %.1f)", down, time.Since(start), r.Profit)
	return r, StageGreedy, nil
}

// recoverOptimalBudgeted races the node-budgeted MILP against the
// share of the deadline the greedy floor can spare. Returns nil when
// the stage is skipped (gate denial), errors, or loses the race. The
// deadline also feeds the solver's Cancel hook, so a losing solve
// aborts mid-pivot instead of burning a core in the background until
// its node budget runs out.
func recoverOptimalBudgeted(in *alloc.Input, down []topo.LinkID, opts *RecoverOptions, start time.Time) *RecoveryResult {
	if opts.Gate != nil {
		if err := opts.Gate("recover"); err != nil {
			opts.logf("bate: recovery for %v: optimal stage gated: %v", down, err)
			return nil
		}
	}
	// Keep a reserve for the greedy floor; it is cheap but not free.
	budget := opts.deadline()*8/10 - time.Since(start)
	if budget <= 0 {
		opts.logf("bate: recovery for %v: no deadline budget left for optimal stage", down)
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	type outcome struct {
		r   *RecoveryResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := RecoverOptimalOpts(in, down, lp.Options{MaxNodes: opts.maxNodes(), Cancel: ctx.Err})
		ch <- outcome{r, err}
	}()
	t := time.NewTimer(budget)
	defer t.Stop()
	select {
	case out := <-ch:
		if out.err != nil {
			opts.logf("bate: recovery for %v: optimal stage failed: %v", down, out.err)
			return nil
		}
		return out.r
	case <-t.C:
		opts.logf("bate: recovery for %v: optimal stage missed its %v budget", down, budget)
		return nil
	}
}
